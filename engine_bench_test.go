// Benchmarks for the event-driven simulation engine and the parallel sweep
// runner. Run with:
//
//	go test -bench 'PolicyLifetime|Engine' -benchmem
//
// BenchmarkPolicyLifetime compares the two stepping engines on the
// discretized policy-lifetime path (the Table 5 inner loop);
// BenchmarkEngine/sweep-* compare the serial and parallel execution of a
// full 10-load × 3-policy grid, which scales with GOMAXPROCS.
package batsched_test

import (
	"runtime"
	"testing"

	"batsched/internal/battery"
	"batsched/internal/dkibam"
	"batsched/internal/load"
	"batsched/internal/sched"
	"batsched/internal/sweep"
)

// benchSystem builds one reusable system plus its initial snapshot, so the
// benchmark loop measures the stepping engine rather than per-run
// construction; production sweeps amortize construction the same way via the
// shared compiled artifact.
func benchSystem(b *testing.B, ds []*dkibam.Discretization, cl load.Compiled, e dkibam.Engine) (*dkibam.System, dkibam.State) {
	b.Helper()
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		b.Fatal(err)
	}
	sys.SetEngine(e)
	return sys, sys.SaveState(nil)
}

func policyLifetime(b *testing.B, sys *dkibam.System, start dkibam.State, p sched.Policy) float64 {
	b.Helper()
	sys.RestoreState(start)
	lifetime, err := sys.Run(sched.AdaptChooser(p.NewChooser()))
	if err != nil {
		b.Fatal(err)
	}
	return lifetime
}

// BenchmarkPolicyLifetime measures one best-of-two policy-lifetime
// computation (two B1 batteries) per iteration, under the tick-stepping
// oracle and the event-driven engine. Both must report the same lifetime;
// the event engine does it in O(events) instead of O(steps).
func BenchmarkPolicyLifetime(b *testing.B) {
	ds := discPair(b, battery.B1())
	for _, loadName := range []string{"CL 250", "ILs alt", "ILl 500"} {
		cl := benchCompiled(b, loadName)
		for _, e := range []dkibam.Engine{dkibam.EngineTick, dkibam.EngineEvent} {
			b.Run(loadName+"/engine="+e.String(), func(b *testing.B) {
				sys, start := benchSystem(b, ds, cl, e)
				var lifetime float64
				for i := 0; i < b.N; i++ {
					lifetime = policyLifetime(b, sys, start, sched.BestAvailable())
				}
				b.ReportMetric(lifetime, "lifetime-min")
			})
		}
	}
}

// BenchmarkEngine covers the two engine comparisons end to end: single-run
// stepping (tick vs event, all three deterministic policies on ILs alt) and
// the sweep runner (serial vs GOMAXPROCS-parallel on the full 10-load ×
// 3-policy Table 5 grid).
func BenchmarkEngine(b *testing.B) {
	ds := discPair(b, battery.B1())
	cl := benchCompiled(b, "ILs alt")
	for _, e := range []dkibam.Engine{dkibam.EngineTick, dkibam.EngineEvent} {
		b.Run("step="+e.String(), func(b *testing.B) {
			sys, start := benchSystem(b, ds, cl, e)
			var lifetime float64
			for i := 0; i < b.N; i++ {
				for _, p := range []sched.Policy{sched.Sequential(), sched.RoundRobin(), sched.BestAvailable()} {
					lifetime = policyLifetime(b, sys, start, p)
				}
			}
			b.ReportMetric(lifetime, "lifetime-min")
		})
	}

	loads, err := sweep.PaperLoads(nil, 200)
	if err != nil {
		b.Fatal(err)
	}
	spec := sweep.Spec{
		Banks:    []sweep.Bank{sweep.BankOf("2xB1", battery.B1(), 2)},
		Loads:    loads,
		Policies: sweep.Policies(sched.Sequential(), sched.RoundRobin(), sched.BestAvailable()),
	}
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"sweep-serial", 1},
		{"sweep-parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var lifetime float64
			for i := 0; i < b.N; i++ {
				results, err := sweep.Run(spec, sweep.Options{Workers: tc.workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
					lifetime = r.Lifetime
				}
			}
			b.ReportMetric(lifetime, "last-lifetime-min")
		})
	}
}
