// Package batsched is a Go reproduction of "Maximizing System Lifetime by
// Battery Scheduling" (Jongerden, Haverkort, Bohnenkamp, Katoen; DSN 2009).
//
// Mobile devices powered by several batteries can extend the time until all
// batteries are empty — the system lifetime — by scheduling which battery
// serves each job. Batteries are kinetic (KiBaM): a high discharge current
// extracts less total charge (rate-capacity effect) and idle periods
// recover available charge from the bound-charge well (recovery effect), so
// the schedule matters.
//
// The package offers four ways to evaluate a battery bank under a
// piecewise-constant load:
//
//   - the continuous KiBaM with exact closed-form stepping (AnalyticLifetime),
//   - the discretized KiBaM of the paper's Section 2.3 (DiscreteLifetime),
//   - deterministic scheduling schemes — Sequential, RoundRobin,
//     BestAvailable — simulated on the discretized model (PolicyLifetime),
//   - the optimal schedule, computed either by direct branch-and-bound over
//     the scheduling decisions (OptimalLifetime) or, as in the paper, by
//     minimum-cost reachability on a network of priced timed automata
//     (OptimalLifetimeTA).
//
// # Quick start
//
//	l, _ := batsched.PaperLoad("ILs alt", 120)
//	p, _ := batsched.NewProblem([]batsched.BatteryParams{batsched.B1(), batsched.B1()}, l)
//	best, _ := p.PolicyLifetime(batsched.BestAvailable())
//	opt, _, _ := p.OptimalLifetime()
//	fmt.Printf("best-of-two %.2f min, optimal %.2f min\n", best, opt)
//
// See the examples directory for complete programs and EXPERIMENTS.md for
// the reproduction of every table and figure of the paper.
package batsched

import (
	"context"
	"io"

	"batsched/internal/battery"
	"batsched/internal/core"
	"batsched/internal/dkibam"
	"batsched/internal/jobs"
	"batsched/internal/load"
	"batsched/internal/mc"
	"batsched/internal/mcarlo"
	"batsched/internal/obs"
	"batsched/internal/sched"
	"batsched/internal/service"
	"batsched/internal/session"
	"batsched/internal/spec"
	"batsched/internal/store"
	"batsched/internal/sweep"
	"batsched/internal/takibam"
)

// PaperStepMin and PaperUnitAmpMin are the paper's discretization grid:
// time step T in minutes and charge unit Gamma in A·min.
const (
	PaperStepMin    = dkibam.PaperStepMin
	PaperUnitAmpMin = dkibam.PaperUnitAmpMin
)

// DefaultHorizonMin is the default load horizon in minutes, matching the
// paper experiments.
const DefaultHorizonMin = spec.DefaultHorizonMin

// BatteryParams holds the KiBaM parameters of one battery: total capacity C
// (A·min), available-charge fraction c, and transformed rate constant k'
// (1/min).
type BatteryParams = battery.Params

// B1 returns the paper's 5.5 A·min battery (Itsy Li-ion parameters).
func B1() BatteryParams { return battery.B1() }

// B2 returns the paper's 11 A·min battery.
func B2() BatteryParams { return battery.B2() }

// Bank returns n identical copies of a battery.
func Bank(p BatteryParams, n int) []BatteryParams { return battery.Bank(p, n) }

// Load is a piecewise-constant discharge load: a sequence of epochs, each a
// job (positive current) or an idle period.
type Load = load.Load

// Segment is one epoch of a load: Duration minutes at Current amperes.
type Segment = load.Segment

// NewLoad builds a load from segments.
func NewLoad(name string, segments ...Segment) (Load, error) {
	return load.New(name, segments...)
}

// PaperLoad builds one of the ten Section 5 test loads by its table name
// ("CL 250", "ILs alt", "ILl 500", ...), covering at least horizon minutes.
func PaperLoad(name string, horizon float64) (Load, error) {
	return load.Paper(name, horizon)
}

// PaperLoadNames lists the ten Section 5 test loads in table order.
func PaperLoadNames() []string {
	return append([]string(nil), load.PaperLoadNames...)
}

// ParseLoad reads a load from the text format documented at
// internal/load.Parse: one "duration current" pair per line, with comments
// and an Nx(...) repeat form.
func ParseLoad(name string, r io.Reader) (Load, error) {
	return load.Parse(name, r)
}

// ParseLoadFile reads a load file; the load is named after the file.
func ParseLoadFile(path string) (Load, error) {
	return load.ParseFile(path)
}

// WriteLoad renders a load in the ParseLoad text format.
func WriteLoad(w io.Writer, l Load) error {
	return load.Write(w, l)
}

// Policy is a deterministic battery-scheduling scheme.
type Policy = sched.Policy

// Sequential drains the batteries one after the other (the worst schedule).
func Sequential() Policy { return sched.Sequential() }

// RoundRobin assigns job k to battery k mod B in a fixed rotation.
func RoundRobin() Policy { return sched.RoundRobin() }

// BestAvailable picks the battery with the most available charge at each
// job start (the paper's best-of-two, for any number of batteries).
func BestAvailable() Policy { return sched.BestAvailable() }

// Lookahead returns the online model-predictive policy: at each scheduling
// point it rolls every candidate battery forward horizonMin minutes on the
// discretized model and commits to the best outcome. It recovers most of
// the gap between best-of-two and the clairvoyant optimum; see
// EXPERIMENTS.md.
func Lookahead(horizonMin float64) Policy { return sched.Lookahead(horizonMin) }

// Schedule is a sequence of scheduling decisions; Choice is one decision.
type (
	Schedule = sched.Schedule
	Choice   = sched.Choice
)

// Problem couples a battery bank with a load on a discretization grid and
// exposes lifetime computations; see package core for the full API.
type Problem = core.Problem

// Option customises a Problem.
type Option = core.Option

// WithGrid overrides the discretization grid (default: the paper's
// T = 0.01 min, Gamma = 0.01 A·min).
func WithGrid(stepMin, unitAmpMin float64) Option { return core.WithGrid(stepMin, unitAmpMin) }

// NewProblem validates the inputs and builds a problem.
func NewProblem(batteries []BatteryParams, ld Load, opts ...Option) (*Problem, error) {
	return core.NewProblem(batteries, ld, opts...)
}

// Compiled is the immutable, concurrency-safe compiled form of a Problem:
// shared discretization tables plus the compiled load. Build one with
// Problem.Compile and run any number of concurrent simulations on it.
type Compiled = core.Compiled

// TracePoint samples the bank state at one instant (Figure 6 curves).
type TracePoint = core.TracePoint

// Scenario sweeps: a SweepSpec declares a grid of banks × loads × policies
// (× discretization grids) and RunSweep executes every combination over a
// bounded worker pool with deterministic result ordering.
type (
	// SweepSpec is a declarative scenario grid.
	SweepSpec = sweep.Spec
	// SweepBank is one battery-bank configuration of a sweep.
	SweepBank = sweep.Bank
	// SweepLoad is one load of a sweep.
	SweepLoad = sweep.LoadCase
	// SweepPolicy is one scheduling scheme of a sweep.
	SweepPolicy = sweep.PolicyCase
	// SweepGrid is one discretization grid of a sweep.
	SweepGrid = sweep.GridSpec
	// SweepResult is the outcome of one sweep scenario.
	SweepResult = sweep.Result
	// SweepOptions tune a sweep run (worker pool size).
	SweepOptions = sweep.Options
)

// RunSweep expands the spec and runs every scenario over a worker pool
// bounded by opts.Workers (0 = number of CPUs), returning one result per
// scenario in deterministic nested order.
func RunSweep(spec SweepSpec, opts SweepOptions) ([]SweepResult, error) {
	return sweep.Run(spec, opts)
}

// SweepBankOf builds a sweep bank of n identical batteries.
func SweepBankOf(name string, p BatteryParams, n int) SweepBank { return sweep.BankOf(name, p, n) }

// SweepPaperLoads builds the named Section 5 test loads (nil = all ten) as
// sweep cases, each covering at least horizon minutes.
func SweepPaperLoads(names []string, horizon float64) ([]SweepLoad, error) {
	return sweep.PaperLoads(names, horizon)
}

// SweepPolicies wraps deterministic policies as sweep cases.
func SweepPolicies(ps ...Policy) []SweepPolicy { return sweep.Policies(ps...) }

// SweepOptimal returns the optimal-search sweep case.
func SweepOptimal() SweepPolicy { return sweep.OptimalCase() }

// SearchOptions bound the state space of the timed-automata search.
type SearchOptions = mc.Options

// OptimalSearchStats counts the work of the direct optimal search (states
// expanded, memo hits, pruned branches); sweeps and the evaluation service
// attach it to optimal-solver results.
type OptimalSearchStats = sched.SearchStats

// TASolution is the outcome of the priced-timed-automata optimal search.
type TASolution = takibam.Solution

// ContinuousResult is the outcome of simulating a policy on the continuous
// (non-discretized) KiBaM.
type ContinuousResult = sched.ContinuousResult

// ContinuousRun simulates a scheduling policy on the continuous KiBaM.
func ContinuousRun(batteries []BatteryParams, l Load, p Policy) (ContinuousResult, error) {
	return sched.ContinuousRun(batteries, l, p)
}

// Serializable scenario layer: a Scenario is a JSON-round-trippable grid of
// banks × loads × solvers (× grids). Solvers are addressed by registry name
// with optional parameters; Scenario.Compile resolves everything into a
// runnable SweepSpec. See internal/spec for the wire format.
type (
	// Scenario is a serializable scenario grid.
	Scenario = spec.Scenario
	// RunSpec is a serializable single-cell request.
	RunSpec = spec.Run
	// BankSpec describes one battery bank.
	BankSpec = spec.Bank
	// BatterySpec describes one battery (preset or custom KiBaM params).
	BatterySpec = spec.Battery
	// LoadSpec describes one load (paper name, inline segments, or text).
	LoadSpec = spec.Load
	// SegmentSpec is one serializable load epoch.
	SegmentSpec = spec.Segment
	// GridSpec describes one discretization grid.
	GridSpec = spec.Grid
	// SolverSpec addresses a solver by registry name plus parameters.
	SolverSpec = spec.Solver
	// SolverBuilder is one registry entry (name, aliases, doc, builder).
	SolverBuilder = spec.Builder
	// LookaheadParams parameterise the "lookahead" solver.
	LookaheadParams = spec.LookaheadParams
	// OptimalParams parameterise the "optimal" solver.
	OptimalParams = spec.OptimalParams
	// OptimalTAParams parameterise the "optimal-ta" solver.
	OptimalTAParams = spec.OptimalTAParams
	// MonteCarloParams parameterise the "montecarlo" solver.
	MonteCarloParams = spec.MonteCarloParams
)

// ErrUnknownSolver is returned when a solver name is not in the registry.
var ErrUnknownSolver = spec.ErrUnknownSolver

// ParseScenario decodes scenario JSON, rejecting unknown fields.
func ParseScenario(data []byte) (Scenario, error) { return spec.ParseScenario(data) }

// ParseRun decodes single-cell run JSON, rejecting unknown fields.
func ParseRun(data []byte) (RunSpec, error) { return spec.ParseRun(data) }

// NamedSolver builds a SolverSpec from a registry name and a params struct.
func NamedSolver(name string, params any) (SolverSpec, error) {
	return spec.NamedSolver(name, params)
}

// SolverNames lists the canonical registered solver names, sorted.
func SolverNames() []string { return spec.SolverNames() }

// Solvers returns the registered solver builders in registration order.
func Solvers() []SolverBuilder { return spec.Builders() }

// RegisterSolver adds a scheme to the registry, making it addressable from
// scenario JSON, sweeps, and the HTTP service without touching callers.
func RegisterSolver(b SolverBuilder) { spec.Register(b) }

// BuildSolver resolves a solver reference into a runnable sweep case.
func BuildSolver(s SolverSpec) (SweepPolicy, error) { return spec.BuildSolver(s) }

// CLIBattery resolves the tools' -battery flag grammar: a preset name
// ("B1", "b2") with an optional capacity override in A·min.
func CLIBattery(name string, capacity float64) (BatteryParams, error) {
	return spec.CLIBattery(name, capacity)
}

// CLIBank parses the sweep bank grammar "NxB1" into a bank description.
func CLIBank(s string) (BankSpec, error) { return spec.CLIBank(s) }

// CLISolver parses the -policy flag grammar (registry names and aliases,
// plus "lookahead:MIN") into a solver reference.
func CLISolver(s string) (SolverSpec, error) { return spec.CLISolver(s) }

// CLILoad resolves the -load flag grammar: a paper load name, or the path
// of a load file when such a file exists (0 horizon = the default 200 min).
func CLILoad(name string, horizon float64) (Load, error) { return spec.CLILoad(name, horizon) }

// Evaluation service: a long-lived Service answers Evaluate/Sweep requests
// with bounded concurrency and a shared Compiled-artifact cache keyed by
// the resolved (bank, load, grid) content. cmd/batserve exposes it over
// HTTP.
type (
	// EvalService is the long-lived evaluation service.
	EvalService = service.Service
	// EvalOptions tune an EvalService (concurrency bound, cache size).
	EvalOptions = service.Options
	// EvalStats reports the service's cache counters.
	EvalStats = service.Stats
	// EvalResult is one evaluated scenario cell in wire form.
	EvalResult = service.Result
	// RunRequest asks the service for a single scenario cell.
	RunRequest = service.RunRequest
	// SweepRequest asks the service for a whole scenario grid.
	SweepRequest = service.SweepRequest
	// SweepLine is one emitted sweep cell in NDJSON-line form (the
	// EvalService.SweepStreamLines payload): pre-encoded bytes plus whether
	// the cell came from the result store.
	SweepLine = service.SweepLine
	// InvalidRequestError marks spec-level validation failures.
	InvalidRequestError = service.InvalidRequestError
)

// NewEvalService builds an evaluation service.
func NewEvalService(opts EvalOptions) *EvalService { return service.New(opts) }

// LocalOnly returns a context that disables cluster forwarding for sweeps
// run under it; the peer evaluate endpoint uses it so forwarded cells are
// always computed by the receiving node (no forwarding chains).
func LocalOnly(ctx context.Context) context.Context { return service.LocalOnly(ctx) }

// CellEvaluator is the cluster hook an EvalService forwards owned-elsewhere
// cells through (implemented by internal/cluster.Cluster).
type CellEvaluator = service.CellEvaluator

// CellDigests returns the per-cell content digests of a sweep request in
// the sweep's deterministic result order, plus the whole-request digest.
// A cell digest covers the cell's resolved display names, its resolved
// physics, and its solver's canonical identity with parameters — the
// result store's keying rule (see DESIGN.md).
func CellDigests(req SweepRequest) (cells []string, request string, err error) {
	return service.CellDigests(req)
}

// DigestSweep returns the content digest of a sweep request — the key of
// the result store's whole-request index — plus the number of scenario
// cells it expands to. The digest is derived from the ordered per-cell
// digests; see CellDigests.
func DigestSweep(req SweepRequest) (digest string, cases int, err error) {
	return service.DigestSweep(req)
}

// Asynchronous job orchestration (internal/jobs) over a cell-granular
// content-addressed result store (internal/store): sweeps submitted as jobs
// run on a bounded priority worker pool, report per-case progress (split
// into evaluated and cache-served cells), cancel via context, dedup against
// the store per cell — identical resubmissions are one whole-request index
// probe, overlapping ones evaluate only their novel cells — and, with a
// file-backed store, survive restarts. cmd/batserve exposes the job API
// over HTTP (POST/GET/DELETE /v1/jobs, GET /v1/jobs/{id}/results,
// GET /metrics). Wire the same store into EvalOptions.Store so synchronous
// sweeps and jobs reuse each other's cells.
type (
	// JobManager owns the job table, priority queue, and worker pool.
	JobManager = jobs.Manager
	// JobOptions tune a JobManager (worker count, queue depth).
	JobOptions = jobs.Options
	// JobRequest submits a sweep for asynchronous evaluation.
	JobRequest = jobs.Request
	// JobStatus is the wire form of a job (state, progress, stats).
	JobStatus = jobs.Status
	// JobState is a job lifecycle state.
	JobState = jobs.State
	// JobMetrics snapshots the manager's operational counters.
	JobMetrics = jobs.Metrics
	// ResultStore is the content-addressed result store.
	ResultStore = store.Store
	// StoreCounters snapshots the store's entry/hit/miss counters.
	StoreCounters = store.Counters
	// StoreBackend is the interface both the plain ResultStore and the
	// cluster-aware TieredStore satisfy; the service and job layers accept
	// any implementation.
	StoreBackend = store.Backend
	// TieredStore consults a local backend first and a remote tier (cluster
	// peers) on miss, writing remote hits through locally.
	TieredStore = store.Tiered
	// StoreRemoteTier is the remote half of a TieredStore (implemented by
	// the cluster peer client).
	StoreRemoteTier = store.RemoteTier
	// StoreTierCounters snapshots a TieredStore's remote hit/miss ledger.
	StoreTierCounters = store.TierCounters
)

// Job lifecycle states.
const (
	JobQueued    = jobs.StateQueued
	JobRunning   = jobs.StateRunning
	JobDone      = jobs.StateDone
	JobFailed    = jobs.StateFailed
	JobCancelled = jobs.StateCancelled
)

// Job errors.
var (
	// ErrJobNotFound marks an unknown job id.
	ErrJobNotFound = jobs.ErrNotFound
	// ErrJobQueueFull rejects submissions beyond the queue bound.
	ErrJobQueueFull = jobs.ErrQueueFull
	// ErrJobNotDone rejects result reads of unfinished jobs.
	ErrJobNotDone = jobs.ErrNotDone
	// ErrJobFinished rejects cancelling an already-terminal job.
	ErrJobFinished = jobs.ErrFinished
	// ErrJobsShuttingDown rejects submissions after Shutdown began.
	ErrJobsShuttingDown = jobs.ErrShuttingDown
)

// OpenResultStore opens a content-addressed result store. An empty path is
// memory-only; otherwise the path is an append-only NDJSON file replayed on
// open, so completed job results survive restarts.
func OpenResultStore(path string) (*ResultStore, error) { return store.Open(path) }

// Store durability and robustness knobs (internal/store): StoreOptions
// selects the fsync policy — the crash-safety tradeoff — and the
// retry/breaker tuning; ErrStoreDegraded is the fail-fast error of the
// degraded read-only mode entered after persistent write failure.
type (
	// StoreOptions tune a result store (fsync policy, retry/backoff,
	// breaker cooldown).
	StoreOptions = store.Options
	// StoreSyncPolicy says when the store fsyncs its append-only file.
	StoreSyncPolicy = store.SyncPolicy
)

// Fsync policies: never (the OS decides, fastest, a crash can lose recent
// results), interval (bounded loss window, the default), always (every put
// durable before it is acknowledged, slowest).
const (
	StoreSyncNever    = store.SyncNever
	StoreSyncInterval = store.SyncInterval
	StoreSyncAlways   = store.SyncAlways
)

// ErrStoreDegraded is returned by store puts while the write circuit is
// open: the store keeps serving reads (and the service keeps evaluating),
// it just stops caching until a cooldown probe succeeds.
var ErrStoreDegraded = store.ErrDegraded

// ParseStoreSyncPolicy parses "never", "interval", or "always".
func ParseStoreSyncPolicy(s string) (StoreSyncPolicy, error) { return store.ParseSyncPolicy(s) }

// OpenResultStoreWith opens a result store with explicit durability and
// robustness options.
func OpenResultStoreWith(opts StoreOptions) (*ResultStore, error) { return store.OpenWith(opts) }

// NewJobManager builds a job manager executing through svc and
// deduplicating against st (any StoreBackend — the plain store or a
// cluster-aware tiered one), and starts its worker pool.
func NewJobManager(svc *EvalService, st StoreBackend, opts JobOptions) *JobManager {
	return jobs.New(svc, st, opts)
}

// NewTieredStore layers a remote tier (cluster peers) over a local backend;
// a nil remote is a transparent pass-through to local.
func NewTieredStore(local StoreBackend, remote StoreRemoteTier) *TieredStore {
	return store.NewTiered(local, remote)
}

// Monte-Carlo lifetime estimation (internal/mcarlo): sample random loads,
// simulate each on the continuous KiBaM, and summarise the lifetime
// distribution. Also addressable in sweeps as the "montecarlo" solver.
type (
	// MCDistribution summarises sampled lifetimes.
	MCDistribution = mcarlo.Distribution
	// MCGenerator draws one random load.
	MCGenerator = mcarlo.Generator
)

// MCRandomIntermittent generates the paper-style random intermittent loads.
func MCRandomIntermittent(idle, horizon, pHigh float64) MCGenerator {
	return mcarlo.RandomIntermittent(idle, horizon, pHigh)
}

// MCMarkovBurst generates bursty loads from a two-state Markov chain.
func MCMarkovBurst(idle, horizon, pStay float64) MCGenerator {
	return mcarlo.MarkovBurst(idle, horizon, pStay)
}

// MCLifetimeDistribution estimates the lifetime distribution of a policy
// over n sampled loads; deterministic for a fixed seed.
func MCLifetimeDistribution(batteries []BatteryParams, p Policy, gen MCGenerator, n int, seed int64) (MCDistribution, error) {
	return mcarlo.LifetimeDistribution(batteries, p, gen, n, seed)
}

// MCComparePolicies estimates the distributions of several policies on the
// same sampled load sequence (common random numbers), keyed by policy name.
func MCComparePolicies(batteries []BatteryParams, policies []Policy, gen MCGenerator, n int, seed int64) (map[string]MCDistribution, error) {
	return mcarlo.ComparePolicies(batteries, policies, gen, n, seed)
}

// Online session scheduling (internal/session): where the sweep API
// consumes whole recorded loads, a session holds one persistent discrete
// KiBaM system and schedules draw events as they arrive, with an online
// policy deciding against live battery state. Replaying a recorded load
// through a session is bit-identical to the offline run under the same
// policy. cmd/batserve exposes sessions over HTTP (POST /v1/sessions,
// POST /v1/sessions/{id}/step, SSE GET /v1/sessions/{id}/events).
type (
	// SchedSession is one streaming scheduling session.
	SchedSession = session.Session
	// SessionManager owns the session table: bounded opens, idle
	// eviction, step accounting, graceful shutdown.
	SessionManager = session.Manager
	// SessionOptions tune a SessionManager.
	SessionOptions = session.Options
	// SessionTelemetry is the per-step state report.
	SessionTelemetry = session.Telemetry
	// SessionEvent is one server-sent session update.
	SessionEvent = session.Event
	// SessionMetrics snapshots a manager's counters.
	SessionMetrics = session.Metrics
	// SessionSpec is the wire form of a session request (bank, online
	// policy, optional grid).
	SessionSpec = spec.Session
	// OnlinePolicyBuilder is one online-policy registry entry.
	OnlinePolicyBuilder = spec.OnlineBuilder
)

// Session errors.
var (
	// ErrSessionBusy means another step is in flight on the session.
	ErrSessionBusy = session.ErrBusy
	// ErrSessionClosed marks a closed (or evicted) session.
	ErrSessionClosed = session.ErrClosed
	// ErrSessionDead means the session's bank is exhausted for good.
	ErrSessionDead = session.ErrDead
	// ErrSessionNotFound marks an unknown session id.
	ErrSessionNotFound = session.ErrNotFound
	// ErrTooManySessions rejects opens beyond the manager's bound.
	ErrTooManySessions = session.ErrTooManySessions
	// ErrSessionShutdown rejects opens after the manager began draining.
	ErrSessionShutdown = session.ErrShutdown
	// ErrUnknownOnlinePolicy marks a solver name with no online form.
	ErrUnknownOnlinePolicy = spec.ErrUnknownOnlinePolicy
)

// NewSessionManager builds a session manager and starts its idle janitor.
func NewSessionManager(opts SessionOptions) *SessionManager { return session.NewManager(opts) }

// ParseSession strictly decodes a session request.
func ParseSession(data []byte) (SessionSpec, error) { return spec.ParseSession(data) }

// OnlinePolicies lists every registered online policy.
func OnlinePolicies() []OnlinePolicyBuilder { return spec.OnlineBuilders() }

// OnlinePolicyNames lists the registered online policy names, sorted.
func OnlinePolicyNames() []string { return spec.OnlinePolicyNames() }

// GreedySOC schedules each decision onto the battery with the most
// available charge (online form of BestAvailable).
func GreedySOC() Policy { return sched.GreedySOC() }

// EFQ schedules by energy fair queueing: each decision goes to the battery
// with the least virtual time (energy served over capacity weight).
func EFQ() Policy { return sched.EFQ() }

// Observability (internal/obs): a dependency-free metrics registry with
// Prometheus-compatible text exposition, bounded in-memory tracing with
// W3C traceparent propagation, and trace-aware structured logging.
// cmd/batserve wires one registry and tracer across every layer; embedders
// can thread the same instruments through EvalOptions.CellLatency,
// JobOptions.QueueWait/RunLatency, SessionOptions.StepLatency, and
// StoreOptions.AppendLatency.
type (
	// MetricsRegistry owns named counters, gauges, and histograms and
	// renders them as a plain-text exposition.
	MetricsRegistry = obs.Registry
	// Histogram is a fixed-bucket latency histogram; a nil Histogram is a
	// no-op, so instrument hooks cost nothing when unset.
	Histogram = obs.Histogram
	// HistogramSnapshot is a point-in-time histogram copy with Mean and
	// interpolated Quantile.
	HistogramSnapshot = obs.HistogramSnapshot
	// Tracer records completed spans in a bounded ring.
	Tracer = obs.Tracer
	// Span is one traced operation; a nil Span is a no-op.
	Span = obs.Span
	// TraceLink carries a trace identity across an async boundary (e.g.
	// into a queued job); the zero TraceLink is inert.
	TraceLink = obs.Link
)

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewHistogram builds a standalone histogram; nil bounds mean the default
// latency buckets (100ns to 10s).
func NewHistogram(bounds []float64) *Histogram { return obs.NewHistogram(bounds) }

// NewTracer builds a tracer whose span ring holds size completed spans
// (<= 0 means the 4096 default).
func NewTracer(size int) *Tracer { return obs.NewTracer(size) }

// WithTracer arms tracing on a context; StartSpan opens a span on an armed
// context and is free (no allocation, nil span) on an unarmed one.
func WithTracer(ctx context.Context, t *Tracer) context.Context { return obs.WithTracer(ctx, t) }

// StartSpan opens a span named name if ctx is armed with a tracer; the
// returned context parents later spans under it.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return obs.StartSpan(ctx, name)
}
