module batsched

go 1.24
