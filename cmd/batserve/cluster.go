package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"batsched"
	"batsched/internal/cluster"
)

// The peer API is the node-to-node surface of a batserve cluster. Every
// route operates on this node's LOCAL store tier only — peers ask each
// other for what each one actually holds; routing through the tiered
// backend here would recurse a remote miss back into the cluster.
//
//	GET  /v1/cells/{digest}           one stored cell line (404 when absent)
//	PUT  /v1/cells/{digest}           accept a replicated cell line
//	POST /v1/cells/lookup             batched probe: digests -> lines/nulls
//	POST /v1/cells/{digest}/evaluate  evaluate one owned cell (single-flight)
//	POST /v1/cluster/gossip           symmetric digest/health exchange
//	GET  /v1/cluster                  this node's cluster view

// maxCellBytes bounds a pushed cell line; result lines are a few hundred
// bytes.
const maxCellBytes = 1 << 20

// clusterRoutes registers the peer API; called from newHandler only when
// the node runs clustered, so single-node servers expose no peer surface.
func (a *app) clusterRoutes(route func(pattern string, h http.HandlerFunc)) {
	route("GET /v1/cells/{digest}", a.handleCellGet)
	route("PUT /v1/cells/{digest}", a.handleCellPut)
	route("POST /v1/cells/lookup", a.handleCellLookup)
	route("POST /v1/cells/{digest}/evaluate", a.guard(a.handleCellEvaluate))
	route("POST /v1/cluster/gossip", a.handleGossip)
	route("GET /v1/cluster", a.handleClusterView)
}

// handleCellGet serves one cell line from the local tier.
func (a *app) handleCellGet(w http.ResponseWriter, r *http.Request) {
	line, ok := a.st.PeekCell(r.PathValue("digest"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("cell not stored here"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(line)
}

// handleCellPut accepts a cell line replicated by a peer (the async push
// after the peer evaluated a cell this node owns) into the local tier.
func (a *app) handleCellPut(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCellBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !json.Valid(body) {
		writeError(w, http.StatusBadRequest, errors.New("cell line is not valid JSON"))
		return
	}
	if err := a.st.PutCell(r.PathValue("digest"), body); err != nil {
		if errors.Is(err, batsched.ErrStoreDegraded) {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// cellLookupRequest / cellLookupResponse are the batched probe wire shapes
// (mirrored by the cluster peer client).
type cellLookupRequest struct {
	Digests []string `json:"digests"`
}

type cellLookupResponse struct {
	Lines []json.RawMessage `json:"lines"`
}

// handleCellLookup probes the local tier for a batch of digests. Absent
// cells answer null in their slot — one round trip resolves a whole sweep's
// worth of misses. Probes bypass the store's hit/miss ledger (PeekCell):
// a peer's fishing expedition is not this node's cache traffic.
func (a *app) handleCellLookup(w http.ResponseWriter, r *http.Request) {
	var req cellLookupRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := cellLookupResponse{Lines: make([]json.RawMessage, len(req.Digests))}
	for i, d := range req.Digests {
		if line, ok := a.st.PeekCell(d); ok {
			resp.Lines[i] = line
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCellEvaluate evaluates one cell this node owns on behalf of a peer.
// The body must be a single-cell sweep request whose cell digest equals the
// path digest — the forwarding contract; anything else is a 400. The
// evaluation runs under LocalOnly (a forwarded cell is never re-forwarded)
// and lands in the service's flight table, so concurrent forwards of the
// same cell from every node in the cluster still evaluate it exactly once.
func (a *app) handleCellEvaluate(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	var req batsched.SweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cells, _, err := batsched.CellDigests(req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if len(cells) != 1 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("evaluate body expands to %d cells, want exactly 1", len(cells)))
		return
	}
	if cells[0] != digest {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("evaluate body digests to %s, not the addressed cell", cells[0][:12]))
		return
	}
	var line []byte
	err = a.svc.SweepStreamLines(batsched.LocalOnly(r.Context()), req, func(sl batsched.SweepLine) error {
		line = append(line[:0], sl.Line...)
		return nil
	})
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(line)
}

// handleGossip answers a peer's gossip exchange with this node's own view.
func (a *app) handleGossip(w http.ResponseWriter, r *http.Request) {
	var msg cluster.GossipMsg
	if err := decodeBody(w, r, &msg); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, a.cluster.HandleGossip(msg))
}

// handleClusterView reports this node's view of the cluster: membership,
// per-peer health, and the operational counters, for operators and tests.
func (a *app) handleClusterView(w http.ResponseWriter, r *http.Request) {
	c := a.cluster
	st := c.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"self":              c.Self(),
		"members":           c.Ring().Members(),
		"ring_replicas":     c.Ring().Replicas(),
		"peers":             c.Health(),
		"unreachable_share": c.UnreachableShare(),
		"stats": map[string]int64{
			"fetches":         st.Fetches,
			"fetched_cells":   st.FetchedCells,
			"fetch_errors":    st.FetchErrors,
			"pushes":          st.Pushes,
			"push_errors":     st.PushErrors,
			"pushes_dropped":  st.PushesDropped,
			"evaluates":       st.Evaluates,
			"evaluate_errors": st.EvaluateErr,
			"gossip_sent":     st.GossipSent,
			"gossip_recv":     st.GossipRecv,
			"gossip_errors":   st.GossipErrors,
			"hint_cells":      int64(st.HintCells),
			"hint_hits":       st.HintHits,
			"breaker_trips":   st.BreakerTrips,
		},
	})
}
