package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"batsched"
)

// maxRequestBytes bounds request bodies; scenario JSON is small, and an
// open evaluation service should not buffer arbitrary uploads.
const maxRequestBytes = 4 << 20

// streamWriteTimeout bounds each NDJSON line write so a connected client
// that stops reading cannot wedge a sweep's workers behind a full TCP
// buffer.
const streamWriteTimeout = 30 * time.Second

// newHandler wires the API routes onto a fresh mux. It takes the service
// (not a global) so httptest can stand up isolated instances.
func newHandler(svc *batsched.EvalService) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", handleHealth(svc))
	mux.HandleFunc("GET /v1/policies", handlePolicies)
	mux.HandleFunc("POST /v1/run", handleRun(svc))
	mux.HandleFunc("POST /v1/sweep", handleSweep(svc))
	return mux
}

// writeJSON writes v as a single JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps an error to a JSON {"error": ...} payload.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// decodeBody strictly decodes one JSON value from the request body.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// handleHealth reports liveness plus the compiled-cache counters, which
// double as a cheap load indicator.
func handleHealth(svc *batsched.EvalService) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st := svc.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":         "ok",
			"cache_entries":  st.Entries,
			"cache_compiles": st.Compiles,
			"cache_hits":     st.Hits,
		})
	}
}

// policyInfo is one registry entry in wire form.
type policyInfo struct {
	Name    string   `json:"name"`
	Aliases []string `json:"aliases,omitempty"`
	Doc     string   `json:"doc"`
}

// handlePolicies lists every solver the registry (and thus the whole API
// surface) can address by name.
func handlePolicies(w http.ResponseWriter, r *http.Request) {
	builders := batsched.Solvers()
	out := make([]policyInfo, len(builders))
	for i, b := range builders {
		out[i] = policyInfo{Name: b.Name, Aliases: b.Aliases, Doc: b.Doc}
	}
	writeJSON(w, http.StatusOK, map[string]any{"policies": out})
}

// handleRun evaluates a single scenario cell.
func handleRun(svc *batsched.EvalService) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req batsched.RunRequest
		if err := decodeBody(w, r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		res, err := svc.Evaluate(r.Context(), req)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		if res.Error != "" {
			// The cell is well-formed but the solver failed (budget
			// exhausted, horizon too short, ...): the request itself is not
			// at fault.
			writeJSON(w, http.StatusUnprocessableEntity, res)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
}

// handleSweep evaluates a scenario grid, streaming one NDJSON line per cell
// in deterministic nested order as soon as each result's predecessors are
// done.
func handleSweep(svc *batsched.EvalService) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req batsched.SweepRequest
		if err := decodeBody(w, r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// The header is deferred until the first result: SweepStream
		// validates the scenario itself (once — no separate Validate pass),
		// so spec errors still surface with a proper status code.
		flusher, _ := w.(http.Flusher)
		rc := http.NewResponseController(w)
		enc := json.NewEncoder(w)
		streaming := false
		// The connection outlives this handler (keep-alive), so the per-line
		// deadline must not leak into the next request on it.
		defer func() { _ = rc.SetWriteDeadline(time.Time{}) }()
		err := svc.SweepStream(r.Context(), req, func(res batsched.EvalResult) error {
			if !streaming {
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.WriteHeader(http.StatusOK)
				streaming = true
			}
			// A connected client that stops reading would otherwise block
			// this write forever — and with it the sweep's workers and a
			// service concurrency slot. Bound each line; a missed deadline
			// fails the emit, which cancels the sweep's remaining cells.
			_ = rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
			if err := enc.Encode(res); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
		if err != nil && !streaming {
			var invalid *batsched.InvalidRequestError
			if errors.As(err, &invalid) {
				writeError(w, http.StatusBadRequest, err)
			} else {
				writeError(w, http.StatusInternalServerError, err)
			}
			return
		}
		// After the first line the headers are out; an error mid-stream can
		// only cut the stream short.
	}
}

// statusFor distinguishes caller mistakes (bad spec → 400) from server
// trouble.
func statusFor(err error) int {
	var invalid *batsched.InvalidRequestError
	if errors.As(err, &invalid) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}
