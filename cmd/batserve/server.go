package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"batsched"
	"batsched/internal/cluster"
)

// maxRequestBytes bounds request bodies; scenario JSON is small, and an
// open evaluation service should not buffer arbitrary uploads.
const maxRequestBytes = 4 << 20

// streamWriteTimeout bounds each NDJSON line write so a connected client
// that stops reading cannot wedge a sweep's workers behind a full TCP
// buffer.
const streamWriteTimeout = 30 * time.Second

// nl terminates NDJSON lines; a shared slice so streaming writes do not
// allocate per line.
var nl = []byte{'\n'}

// app bundles the long-lived server state the handlers share: the
// synchronous evaluation service, the asynchronous job manager, the result
// store (for the readiness probe), and the start instant for uptime
// reporting.
type app struct {
	svc      *batsched.EvalService
	jobs     *batsched.JobManager
	sessions *batsched.SessionManager
	// st is this node's LOCAL store tier: the readiness probe and the peer
	// API read and write it directly. The service and job layers may wrap
	// it in a cluster-aware tiered backend; the peer endpoints must not,
	// or a remote miss would recurse back into the cluster.
	st    *batsched.ResultStore
	start time.Time

	// cluster is the multi-node tier; nil on single-node servers (the peer
	// API is then not even routed).
	cluster *cluster.Cluster

	// requestTimeout bounds each synchronous evaluation request; 0 means
	// unbounded. A missed deadline answers 504.
	requestTimeout time.Duration
	// maxInflight bounds concurrently executing synchronous evaluation
	// requests; past it requests are shed with 429 instead of queueing on
	// the service semaphore. 0 means unbounded.
	maxInflight int64
	inflight    atomic.Int64
	shed        atomic.Uint64
	// draining flips when graceful shutdown begins: /readyz goes not-ready
	// (so load balancers stop routing here) while in-flight work finishes.
	draining atomic.Bool

	// obs is the observability kit: metrics registry, tracer, logger, and
	// the layer histograms. main threads a kit through the layer options
	// before building the app; when tests construct an app literal without
	// one, newHandler fills it in lazily via initObs.
	obs     *obsKit
	obsOnce sync.Once
}

// newHandler wires the API routes onto a fresh mux. It takes the app state
// (not globals) so httptest can stand up isolated instances. Every route
// runs under the instrument middleware — request id, tracing, and latency
// accounting — with guard (shedding, deadlines) inside it, so even 429/503
// rejections are traced and carry X-Request-ID.
func newHandler(a *app) http.Handler {
	a.initObs()
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, a.instrument(pattern, h))
	}
	route("GET /healthz", a.handleHealth)
	route("GET /readyz", a.handleReady)
	route("GET /metrics", a.handleMetrics)
	route("GET /debug/traces", a.handleTraces)
	route("GET /v1/policies", handlePolicies)
	route("POST /v1/run", a.guard(a.handleRun))
	route("POST /v1/sweep", a.guard(a.handleSweep))
	route("POST /v1/jobs", a.handleJobSubmit)
	route("GET /v1/jobs", a.handleJobList)
	route("GET /v1/jobs/{id}", a.handleJobGet)
	route("GET /v1/jobs/{id}/results", a.handleJobResults)
	route("DELETE /v1/jobs/{id}", a.handleJobCancel)
	route("POST /v1/sessions", a.handleSessionOpen)
	route("GET /v1/sessions/{id}", a.handleSessionGet)
	route("POST /v1/sessions/{id}/step", a.handleSessionStep)
	route("GET /v1/sessions/{id}/events", a.handleSessionEvents)
	route("DELETE /v1/sessions/{id}", a.handleSessionClose)
	if a.cluster != nil {
		a.clusterRoutes(route)
	}
	return mux
}

// handleTraces dumps the tracer's span ring as JSON, filterable with
// ?trace=<hex id> (the id a job status reports as trace_id) and ?limit=.
func (a *app) handleTraces(w http.ResponseWriter, r *http.Request) {
	a.obs.tracer.ServeDump(w, r)
}

// writeJSON writes v as a single JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps an error to a JSON {"error": ...} payload. Backpressure
// statuses carry Retry-After so well-behaved clients back off instead of
// hammering an already-saturated (or draining) server. The payload echoes
// the request id the instrument middleware stamped on the response header,
// so an error report alone is enough to find the request in logs and traces.
func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	payload := map[string]string{"error": err.Error()}
	if id := w.Header().Get("X-Request-ID"); id != "" {
		payload["request_id"] = id
	}
	writeJSON(w, status, payload)
}

// Load-shedding errors.
var (
	errOverloaded = errors.New("server overloaded: too many requests in flight")
	errDraining   = errors.New("server is draining")
)

// guard is the load-shedding and deadline middleware on the synchronous
// evaluation endpoints: a draining server answers 503, one past its
// in-flight bound sheds with 429 (both with Retry-After), and accepted
// requests run under the per-request timeout.
func (a *app) guard(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if a.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, errDraining)
			return
		}
		if a.maxInflight > 0 {
			if a.inflight.Add(1) > a.maxInflight {
				a.inflight.Add(-1)
				a.shed.Add(1)
				writeError(w, http.StatusTooManyRequests, errOverloaded)
				return
			}
			defer a.inflight.Add(-1)
		}
		if a.requestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), a.requestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next(w, r)
	}
}

// decodeBody strictly decodes one JSON value from the request body.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// buildVersion resolves the server's build identity once (module version
// plus toolchain); "unknown" outside module builds.
var buildVersion = func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	return v + " " + bi.GoVersion
}()

// handleHealth reports liveness plus the operational gauges a load balancer
// or operator polls cheaply: uptime, build identity, compiled-cache
// counters, and the job-queue depth.
func (a *app) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := a.svc.Stats()
	jm := a.jobs.Metrics()
	resp := map[string]any{
		"status":          "ok",
		"uptime_seconds":  int64(time.Since(a.start).Seconds()),
		"build":           buildVersion,
		"cache_entries":   st.Entries,
		"cache_compiles":  st.Compiles,
		"cache_hits":      st.Hits,
		"job_queue_depth": jm.QueueDepth,
		"jobs_running":    jm.JobsByState[batsched.JobRunning],
		"sessions_open":   a.sessions.Metrics().Open,
	}
	if a.cluster != nil {
		cs := a.cluster.Stats()
		resp["cluster_self"] = a.cluster.Self()
		resp["cluster_members"] = cs.Members
		resp["cluster_peers_healthy"] = cs.PeersHealthy
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReady is the readiness probe, distinct from /healthz liveness: a
// live server is not ready while draining (shutdown began; stop routing
// new work here) or while the store's write circuit is open (results are
// still served and evaluated, but nothing new is cached — prefer a healthy
// replica when there is one).
func (a *app) handleReady(w http.ResponseWriter, r *http.Request) {
	var reasons []string
	if a.draining.Load() {
		reasons = append(reasons, "draining")
	}
	if a.st.Degraded() {
		reasons = append(reasons, "store degraded: write circuit open")
	}
	notReady := len(reasons) > 0
	// Cluster health is reported per peer but only flips readiness when a
	// majority of the ring is owned by unreachable peers: below that the
	// local-fallback rule keeps every sweep completing (the minority of
	// forwarded cells are just evaluated here), so the node is still
	// useful — a load balancer draining it would lose capacity for nothing.
	if a.cluster != nil {
		for _, ps := range a.cluster.Health() {
			if !ps.Healthy {
				reasons = append(reasons, fmt.Sprintf("peer:%s unreachable (%s)", ps.Addr, ps.Reason))
			}
		}
		if a.cluster.UnreachableShare() > 0.5 {
			notReady = true
			reasons = append(reasons, "majority of owned shards unservable")
		}
	}
	if notReady {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "not ready", "reasons": reasons,
		})
		return
	}
	resp := map[string]any{"status": "ready"}
	if len(reasons) > 0 {
		// Peer trouble below the majority threshold: still ready, but the
		// reasons surface so operators see the degradation before it grows.
		resp["reasons"] = reasons
	}
	writeJSON(w, http.StatusOK, resp)
}

// policyInfo is one registry entry in wire form.
type policyInfo struct {
	Name    string   `json:"name"`
	Aliases []string `json:"aliases,omitempty"`
	Doc     string   `json:"doc"`
}

// handlePolicies lists every solver the registry (and thus the whole API
// surface) can address by name, plus the online policies sessions accept.
func handlePolicies(w http.ResponseWriter, r *http.Request) {
	builders := batsched.Solvers()
	out := make([]policyInfo, len(builders))
	for i, b := range builders {
		out[i] = policyInfo{Name: b.Name, Aliases: b.Aliases, Doc: b.Doc}
	}
	onlines := batsched.OnlinePolicies()
	online := make([]policyInfo, len(onlines))
	for i, b := range onlines {
		online[i] = policyInfo{Name: b.Name, Aliases: b.Aliases, Doc: b.Doc}
	}
	writeJSON(w, http.StatusOK, map[string]any{"policies": out, "online": online})
}

// handleRun evaluates a single scenario cell.
func (a *app) handleRun(w http.ResponseWriter, r *http.Request) {
	var req batsched.RunRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := a.svc.Evaluate(r.Context(), req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if res.Error != "" {
		// The cell is well-formed but the solver failed (budget
		// exhausted, horizon too short, ...): the request itself is not
		// at fault.
		writeJSON(w, http.StatusUnprocessableEntity, res)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleSweep evaluates a scenario grid, streaming one NDJSON line per cell
// in deterministic nested order as soon as each result's predecessors are
// done.
func (a *app) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req batsched.SweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The header is deferred until the first result: SweepStreamLines
	// validates the scenario itself (once — no separate Validate pass),
	// so spec errors still surface with a proper status code.
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	streaming := false
	// The connection outlives this handler (keep-alive), so the per-line
	// deadline must not leak into the next request on it.
	defer func() { _ = rc.SetWriteDeadline(time.Time{}) }()
	err := a.svc.SweepStreamLines(r.Context(), req, func(sl batsched.SweepLine) error {
		if !streaming {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			streaming = true
		}
		// A connected client that stops reading would otherwise block
		// this write forever — and with it the sweep's workers and a
		// service concurrency slot. Bound each line; a missed deadline
		// fails the emit, which cancels the sweep's remaining cells.
		// The service hands over pre-encoded line bytes (cached cells
		// pass store bytes straight through), so the handler writes, it
		// never marshals.
		_ = rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
		if _, err := w.Write(sl.Line); err != nil {
			return err
		}
		if _, err := w.Write(nl); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil && !streaming {
		writeError(w, statusFor(err), err)
		return
	}
	// After the first line the headers are out; an error mid-stream can
	// only cut the stream short.
}

// statusFor distinguishes caller mistakes (bad spec → 400) from a missed
// per-request deadline (504) and the rest of server trouble.
func statusFor(err error) int {
	var invalid *batsched.InvalidRequestError
	switch {
	case errors.As(err, &invalid):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}
