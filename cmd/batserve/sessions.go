package main

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"batsched"
	"batsched/internal/obs"
)

// stepRequest is one draw event in wire form: a current draw held for a
// duration. Zero current is an idle period (recovery time for the bank).
type stepRequest struct {
	CurrentA    float64 `json:"current_a"`
	DurationMin float64 `json:"duration_min"`
}

// sessionInfo is the wire form of an open session.
type sessionInfo struct {
	ID     string                    `json:"id"`
	Policy string                    `json:"policy"`
	State  batsched.SessionTelemetry `json:"state"`
}

// handleSessionOpen opens a streaming scheduling session: the body names a
// bank and an online policy (optionally a grid), the response carries the
// session id and the initial bank state.
func (a *app) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	var sp batsched.SessionSpec
	if err := decodeBody(w, r, &sp); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s, err := a.sessions.Open(sp)
	if err != nil {
		writeError(w, sessionStatusFor(err), err)
		return
	}
	info := sessionInfo{ID: s.ID(), Policy: s.Policy()}
	if err := s.Snapshot(&info.State); err != nil {
		writeError(w, sessionStatusFor(err), err)
		return
	}
	w.Header().Set("Location", "/v1/sessions/"+s.ID())
	writeJSON(w, http.StatusCreated, info)
}

// handleSessionGet reports a session's current state without stepping it.
func (a *app) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	s, err := a.sessions.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, sessionStatusFor(err), err)
		return
	}
	info := sessionInfo{ID: s.ID(), Policy: s.Policy()}
	if err := s.Snapshot(&info.State); err != nil {
		writeError(w, sessionStatusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleSessionStep feeds one draw event into a session and answers with
// the resulting telemetry. Overlapping steps on one session answer 409
// rather than queueing; a step on an exhausted bank answers 410 with the
// final lifetime in the error.
func (a *app) handleSessionStep(w http.ResponseWriter, r *http.Request) {
	var req stepRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	_, span := obs.StartSpan(r.Context(), "session.step")
	span.Set("session", r.PathValue("id"))
	var tel batsched.SessionTelemetry
	err := a.sessions.Step(r.PathValue("id"), req.CurrentA, req.DurationMin, &tel)
	if err != nil {
		span.Set("error", err.Error())
		span.End()
		writeError(w, sessionStatusFor(err), err)
		return
	}
	span.End()
	writeJSON(w, http.StatusOK, tel)
}

// handleSessionEvents streams a session's telemetry as server-sent events:
// one "step" event per step, a final "closed" event when the session ends
// (explicit delete, idle eviction, or server drain), then EOF. The request
// blocks until the session closes or the client disconnects — the session
// manager's shutdown runs before the HTTP server's for exactly this
// reason.
func (a *app) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	s, err := a.sessions.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, sessionStatusFor(err), err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	ch, cancel, err := s.Subscribe()
	if err != nil {
		writeError(w, sessionStatusFor(err), err)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	rc := http.NewResponseController(w)
	defer func() { _ = rc.SetWriteDeadline(time.Time{}) }()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				return
			}
			// Same guard as the sweep stream: a client that stops reading
			// must not wedge the handler behind a full TCP buffer.
			_ = rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, ev.Data); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// handleSessionClose deletes a session, delivering the final "closed"
// event to any open event streams.
func (a *app) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := a.sessions.Close(id); err != nil {
		writeError(w, sessionStatusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "closed"})
}

// sessionStatusFor maps session-layer errors to HTTP statuses.
func sessionStatusFor(err error) int {
	switch {
	case errors.Is(err, batsched.ErrSessionNotFound):
		return http.StatusNotFound
	case errors.Is(err, batsched.ErrSessionBusy):
		return http.StatusConflict
	case errors.Is(err, batsched.ErrSessionDead), errors.Is(err, batsched.ErrSessionClosed):
		return http.StatusGone
	case errors.Is(err, batsched.ErrTooManySessions):
		return http.StatusTooManyRequests
	case errors.Is(err, batsched.ErrSessionShutdown):
		return http.StatusServiceUnavailable
	default:
		// The rest are spec or event validation failures (unknown policy,
		// empty bank, a draw that does not discretize on the grid).
		return http.StatusBadRequest
	}
}
