package main

import (
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"batsched"
	"batsched/internal/obs"
)

// obsKit bundles the server's observability state: the metrics registry
// behind /metrics, the tracer behind /debug/traces, the structured logger,
// and the latency histograms threaded into the store, job, sweep, and
// session layers. main builds one explicitly so it can wire the histograms
// into layer options before the layers exist; tests that construct an app
// literal get one lazily from newHandler.
type obsKit struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	logger *slog.Logger

	appendLatency *obs.Histogram // store commit (write+retries+fsync)
	queueWait     *obs.Histogram // job submit -> start
	runLatency    *obs.Histogram // job start -> terminal
	cellLatency   *obs.Histogram // one evaluated sweep cell
}

// newObsKit builds the registry, tracer, and the eagerly-registered
// histogram families. Eager registration means the bucket families exist in
// the exposition from the first scrape — like the jobs-by-state gauges,
// they are visible at zero — including one step-latency series per
// registered online policy.
func newObsKit() *obsKit {
	reg := obs.NewRegistry()
	k := &obsKit{
		reg:           reg,
		tracer:        obs.NewTracer(0),
		logger:        obs.NewLogger(io.Discard, slog.LevelInfo),
		appendLatency: reg.Histogram("batserve_store_append_seconds", nil),
		queueWait:     reg.Histogram("batserve_job_queue_wait_seconds", nil),
		runLatency:    reg.Histogram("batserve_job_run_seconds", nil),
		cellLatency:   reg.Histogram("batserve_sweep_cell_eval_seconds", nil),
	}
	for _, name := range batsched.OnlinePolicyNames() {
		k.stepLatency(name)
	}
	return k
}

// stepLatency is the session manager's StepLatency hook: one registry
// histogram per online policy.
func (k *obsKit) stepLatency(policy string) *obs.Histogram {
	return k.reg.Histogram("batserve_session_policy_step_seconds", nil, obs.L("policy", policy))
}

// peerLatency is the cluster's RPCLatency hook: one histogram per peer RPC
// kind (fetch, push, evaluate, gossip). Families appear on first use, so a
// single-node server's exposition carries no cluster series at all.
func (k *obsKit) peerLatency(op string) *obs.Histogram {
	return k.reg.Histogram("batserve_peer_rpc_seconds", nil, obs.L("op", op))
}

// httpLatency resolves the request-latency histogram for a route/status
// pair.
func (k *obsKit) httpLatency(route string, status int) *obs.Histogram {
	return k.reg.Histogram("batserve_http_request_seconds", nil,
		obs.L("route", route), obs.L("status", strconv.Itoa(status)))
}

// statusWriter records the response status for the instrument middleware. It
// forwards Flush and unwraps for http.NewResponseController, so the SSE and
// NDJSON streaming handlers behave identically under instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// instrument is the per-route observability middleware: it assigns (or
// echoes) X-Request-ID, arms tracing on the request context — continuing an
// incoming W3C traceparent when one parses — opens the route's span,
// answers with the span's traceparent, and observes the request latency
// into the route/status histogram. It wraps every route, including the ones
// guard later sheds with 429/503, so those responses carry the request id
// too.
func (a *app) instrument(route string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		ctx := obs.WithTracer(r.Context(), a.obs.tracer)
		if trace, parent, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
			ctx = obs.WithRemoteParent(ctx, trace, parent)
		}
		ctx, span := obs.StartSpan(ctx, "http "+route)
		span.Set("request_id", reqID)
		if tp := span.Traceparent(); tp != "" {
			w.Header().Set("traceparent", tp)
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next(sw, r.WithContext(ctx))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		elapsed := time.Since(start)
		span.SetInt("status", int64(status))
		span.End()
		a.obs.httpLatency(route, status).Observe(elapsed.Seconds())
		a.obs.logger.LogAttrs(ctx, slog.LevelDebug, "request",
			slog.String("route", route), slog.Int("status", status),
			slog.String("request_id", reqID), slog.Duration("elapsed", elapsed))
	}
}

// initObs makes the app's observability state usable no matter how the app
// was constructed: main wires a fully-threaded kit before the layers exist,
// while tests building an app literal get a standalone kit here. The legacy
// metrics collector is registered exactly once per app.
func (a *app) initObs() {
	a.obsOnce.Do(func() {
		if a.obs == nil {
			a.obs = newObsKit()
		}
		a.obs.reg.Collect(a.legacyMetrics)
	})
}

// legacyMetrics bridges the pre-registry operational counters into the
// exposition. Every line is byte-identical to what the fprintf-based
// /metrics handler produced — names, label rendering, and order — so
// existing scrape configs and dashboards keep working unchanged. It runs as
// a registry collector: one snapshot of each layer per scrape, emitted
// before the registry's native families.
func (a *app) legacyMetrics(e *obs.Exposition) {
	jm := a.jobs.Metrics()
	cs := a.svc.Stats()
	for _, s := range []batsched.JobState{
		batsched.JobQueued, batsched.JobRunning, batsched.JobDone,
		batsched.JobFailed, batsched.JobCancelled,
	} {
		e.ValL("batserve_jobs", "state", string(s), int64(jm.JobsByState[s]))
	}
	e.Val("batserve_job_queue_depth", int64(jm.QueueDepth))
	e.Val("batserve_job_queue_bound", int64(jm.QueueBound))
	e.Val("batserve_job_cases_evaluated_total", jm.CasesEvaluated)
	e.Val("batserve_job_cases_from_cache_total", jm.CasesFromCache)
	e.Val("batserve_workers_busy", int64(jm.WorkersBusy))
	e.Val("batserve_workers_total", int64(jm.WorkersTotal))
	e.Val("batserve_store_entries", int64(jm.Store.Entries))
	e.Val("batserve_store_requests", int64(jm.Store.Requests))
	e.Val("batserve_store_hits_total", jm.Store.Hits)
	e.Val("batserve_store_misses_total", jm.Store.Misses)
	e.Val("batserve_store_cell_hits_total", jm.Store.CellHits)
	e.Val("batserve_store_cell_misses_total", jm.Store.CellMisses)
	e.Val("batserve_store_quarantined_total", jm.Store.Quarantined)
	e.Val("batserve_store_append_errors_total", jm.Store.AppendErrors)
	e.Val("batserve_store_append_retries_total", jm.Store.AppendRetries)
	e.Val("batserve_store_dropped_puts_total", jm.Store.DroppedPuts)
	e.Val("batserve_store_sync_errors_total", jm.Store.SyncErrors)
	degraded := int64(0)
	if jm.Store.Degraded {
		degraded = 1
	}
	e.Val("batserve_store_degraded", degraded)
	e.Val("batserve_job_retries_total", jm.Retries)
	e.Val("batserve_job_panics_total", jm.Panics)
	e.Val("batserve_requests_shed_total", int64(a.shed.Load()))
	e.Val("batserve_cache_entries", int64(cs.Entries))
	e.Val("batserve_cache_compiles_total", cs.Compiles)
	e.Val("batserve_cache_hits_total", cs.Hits)
	e.Val("batserve_sweep_cell_hits_total", cs.CellHits)
	e.Val("batserve_sweep_cells_evaluated_total", cs.CellsEvaluated)
	e.Val("batserve_sweep_cells_forwarded_total", cs.CellsForwarded)
	e.Val("batserve_sweep_forward_fallbacks_total", cs.ForwardFallbacks)
	e.Val("batserve_store_errors_total", cs.StoreErrors)
	e.Val("batserve_search_states_total", cs.Search.States)
	e.Val("batserve_search_leaves_total", cs.Search.Leaves)
	e.Val("batserve_search_memo_hits_total", cs.Search.MemoHits)
	e.Val("batserve_search_pruned_total", cs.Search.Pruned)
	e.Val("batserve_search_lp_bounds_total", cs.Search.LPBounds)
	e.Val("batserve_search_lp_pruned_total", cs.Search.LPPruned)
	e.Val("batserve_search_steals_total", cs.Search.Steals)
	e.Val("batserve_search_shared_memo_hits_total", cs.Search.SharedMemoHits)
	sm := a.sessions.Metrics()
	e.Val("batserve_sessions_open", int64(sm.Open))
	e.Val("batserve_sessions_opened_total", int64(sm.Opened))
	e.Val("batserve_sessions_closed_total", int64(sm.Closed))
	e.Val("batserve_sessions_evicted_total", int64(sm.Evicted))
	e.Val("batserve_session_steps_total", int64(sm.Steps))
	e.Val("batserve_session_events_dropped_total", int64(sm.EventsDropped))
	for _, pl := range sm.PerPolicy {
		e.ValL("batserve_session_policy_steps_total", "policy", pl.Policy, int64(pl.Steps))
		e.ValL("batserve_session_policy_step_mean_nanos", "policy", pl.Policy, int64(pl.MeanNanos))
		e.ValL("batserve_session_policy_step_p50_nanos", "policy", pl.Policy, int64(pl.P50Nanos))
		e.ValL("batserve_session_policy_step_p95_nanos", "policy", pl.Policy, int64(pl.P95Nanos))
		e.ValL("batserve_session_policy_step_p99_nanos", "policy", pl.Policy, int64(pl.P99Nanos))
	}
	// Cluster counters appear only on clustered nodes; single-node
	// expositions are byte-for-byte what they were before clustering
	// existed.
	if a.cluster != nil {
		cl := a.cluster.Stats()
		e.Val("batserve_cluster_members", int64(cl.Members))
		e.Val("batserve_cluster_peers_healthy", int64(cl.PeersHealthy))
		e.Val("batserve_cluster_ring_replicas", int64(cl.RingReplicas))
		e.Val("batserve_cluster_fetches_total", cl.Fetches)
		e.Val("batserve_cluster_fetched_cells_total", cl.FetchedCells)
		e.Val("batserve_cluster_fetch_errors_total", cl.FetchErrors)
		e.Val("batserve_cluster_pushes_total", cl.Pushes)
		e.Val("batserve_cluster_push_errors_total", cl.PushErrors)
		e.Val("batserve_cluster_pushes_dropped_total", cl.PushesDropped)
		e.Val("batserve_cluster_evaluates_total", cl.Evaluates)
		e.Val("batserve_cluster_evaluate_errors_total", cl.EvaluateErr)
		e.Val("batserve_cluster_gossip_sent_total", cl.GossipSent)
		e.Val("batserve_cluster_gossip_recv_total", cl.GossipRecv)
		e.Val("batserve_cluster_gossip_errors_total", cl.GossipErrors)
		e.Val("batserve_cluster_hint_cells", int64(cl.HintCells))
		e.Val("batserve_cluster_hint_hits_total", cl.HintHits)
		e.Val("batserve_cluster_breaker_trips_total", cl.BreakerTrips)
		e.Val("batserve_cluster_unreachable_share_permille",
			int64(a.cluster.UnreachableShare()*1000))
		for _, ps := range a.cluster.Health() {
			healthy := int64(0)
			if ps.Healthy {
				healthy = 1
			}
			e.ValL("batserve_cluster_peer_healthy", "peer", ps.Addr, healthy)
		}
	}
	e.Val("batserve_uptime_seconds", int64(time.Since(a.start).Seconds()))
}
