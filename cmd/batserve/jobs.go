package main

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"batsched"
)

// handleJobSubmit accepts a sweep for asynchronous evaluation. A store hit
// answers 200 with the already-done job; a fresh submission answers 202
// Accepted. Both carry a Location header for polling.
func (a *app) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req batsched.JobRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := a.jobs.Submit(req)
	if err != nil {
		writeError(w, jobStatusFor(err), err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	code := http.StatusAccepted
	if st.FromStore {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// handleJobList returns every job in submission order.
func (a *app) handleJobList(w http.ResponseWriter, r *http.Request) {
	list := a.jobs.List()
	if list == nil {
		list = []batsched.JobStatus{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": list})
}

// handleJobGet reports one job's status, progress, and aggregated search
// stats.
func (a *app) handleJobGet(w http.ResponseWriter, r *http.Request) {
	st, err := a.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, jobStatusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobResults streams a done job's results as NDJSON — byte-identical
// to what the synchronous sweep endpoint produces for the same request.
func (a *app) handleJobResults(w http.ResponseWriter, r *http.Request) {
	lines, err := a.jobs.Results(r.PathValue("id"))
	if err != nil {
		writeError(w, jobStatusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	defer func() { _ = rc.SetWriteDeadline(time.Time{}) }()
	for _, line := range lines {
		_ = rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
		// Two writes, not append(line, '\n'): the lines are shared across
		// concurrent fetches of the same job, and append could write the
		// newline into the shared backing array.
		if _, err := w.Write(line); err != nil {
			return
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			return
		}
	}
}

// handleJobCancel cancels a queued or running job.
func (a *app) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, err := a.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, jobStatusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleMetrics serves the operational counters as a plain-text exposition
// (stdlib only, prometheus-compatible line format): jobs by state, queue
// and worker gauges, cases evaluated, result-store and compiled-cache
// counters.
func (a *app) handleMetrics(w http.ResponseWriter, r *http.Request) {
	jm := a.jobs.Metrics()
	cs := a.svc.Stats()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, s := range []batsched.JobState{
		batsched.JobQueued, batsched.JobRunning, batsched.JobDone,
		batsched.JobFailed, batsched.JobCancelled,
	} {
		fmt.Fprintf(w, "batserve_jobs{state=%q} %d\n", s, jm.JobsByState[s])
	}
	fmt.Fprintf(w, "batserve_job_queue_depth %d\n", jm.QueueDepth)
	fmt.Fprintf(w, "batserve_job_queue_bound %d\n", jm.QueueBound)
	fmt.Fprintf(w, "batserve_job_cases_evaluated_total %d\n", jm.CasesEvaluated)
	fmt.Fprintf(w, "batserve_job_cases_from_cache_total %d\n", jm.CasesFromCache)
	fmt.Fprintf(w, "batserve_workers_busy %d\n", jm.WorkersBusy)
	fmt.Fprintf(w, "batserve_workers_total %d\n", jm.WorkersTotal)
	fmt.Fprintf(w, "batserve_store_entries %d\n", jm.Store.Entries)
	fmt.Fprintf(w, "batserve_store_requests %d\n", jm.Store.Requests)
	fmt.Fprintf(w, "batserve_store_hits_total %d\n", jm.Store.Hits)
	fmt.Fprintf(w, "batserve_store_misses_total %d\n", jm.Store.Misses)
	fmt.Fprintf(w, "batserve_store_cell_hits_total %d\n", jm.Store.CellHits)
	fmt.Fprintf(w, "batserve_store_cell_misses_total %d\n", jm.Store.CellMisses)
	fmt.Fprintf(w, "batserve_store_quarantined_total %d\n", jm.Store.Quarantined)
	fmt.Fprintf(w, "batserve_store_append_errors_total %d\n", jm.Store.AppendErrors)
	fmt.Fprintf(w, "batserve_store_append_retries_total %d\n", jm.Store.AppendRetries)
	fmt.Fprintf(w, "batserve_store_dropped_puts_total %d\n", jm.Store.DroppedPuts)
	fmt.Fprintf(w, "batserve_store_sync_errors_total %d\n", jm.Store.SyncErrors)
	degraded := 0
	if jm.Store.Degraded {
		degraded = 1
	}
	fmt.Fprintf(w, "batserve_store_degraded %d\n", degraded)
	fmt.Fprintf(w, "batserve_job_retries_total %d\n", jm.Retries)
	fmt.Fprintf(w, "batserve_job_panics_total %d\n", jm.Panics)
	fmt.Fprintf(w, "batserve_requests_shed_total %d\n", a.shed.Load())
	fmt.Fprintf(w, "batserve_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "batserve_cache_compiles_total %d\n", cs.Compiles)
	fmt.Fprintf(w, "batserve_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "batserve_sweep_cell_hits_total %d\n", cs.CellHits)
	fmt.Fprintf(w, "batserve_sweep_cells_evaluated_total %d\n", cs.CellsEvaluated)
	fmt.Fprintf(w, "batserve_store_errors_total %d\n", cs.StoreErrors)
	fmt.Fprintf(w, "batserve_search_states_total %d\n", cs.Search.States)
	fmt.Fprintf(w, "batserve_search_leaves_total %d\n", cs.Search.Leaves)
	fmt.Fprintf(w, "batserve_search_memo_hits_total %d\n", cs.Search.MemoHits)
	fmt.Fprintf(w, "batserve_search_pruned_total %d\n", cs.Search.Pruned)
	fmt.Fprintf(w, "batserve_search_lp_bounds_total %d\n", cs.Search.LPBounds)
	fmt.Fprintf(w, "batserve_search_lp_pruned_total %d\n", cs.Search.LPPruned)
	fmt.Fprintf(w, "batserve_search_steals_total %d\n", cs.Search.Steals)
	fmt.Fprintf(w, "batserve_search_shared_memo_hits_total %d\n", cs.Search.SharedMemoHits)
	sm := a.sessions.Metrics()
	fmt.Fprintf(w, "batserve_sessions_open %d\n", sm.Open)
	fmt.Fprintf(w, "batserve_sessions_opened_total %d\n", sm.Opened)
	fmt.Fprintf(w, "batserve_sessions_closed_total %d\n", sm.Closed)
	fmt.Fprintf(w, "batserve_sessions_evicted_total %d\n", sm.Evicted)
	fmt.Fprintf(w, "batserve_session_steps_total %d\n", sm.Steps)
	fmt.Fprintf(w, "batserve_session_events_dropped_total %d\n", sm.EventsDropped)
	for _, pl := range sm.PerPolicy {
		fmt.Fprintf(w, "batserve_session_policy_steps_total{policy=%q} %d\n", pl.Policy, pl.Steps)
		fmt.Fprintf(w, "batserve_session_policy_step_mean_nanos{policy=%q} %d\n", pl.Policy, pl.MeanNanos)
	}
	fmt.Fprintf(w, "batserve_uptime_seconds %d\n", int64(time.Since(a.start).Seconds()))
}

// jobStatusFor maps job-layer errors to HTTP statuses.
func jobStatusFor(err error) int {
	var invalid *batsched.InvalidRequestError
	switch {
	case errors.As(err, &invalid):
		return http.StatusBadRequest
	case errors.Is(err, batsched.ErrJobNotFound):
		return http.StatusNotFound
	case errors.Is(err, batsched.ErrJobQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, batsched.ErrJobsShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, batsched.ErrJobNotDone), errors.Is(err, batsched.ErrJobFinished):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}
