package main

import (
	"errors"
	"net/http"
	"time"

	"batsched"
)

// handleJobSubmit accepts a sweep for asynchronous evaluation. A store hit
// answers 200 with the already-done job; a fresh submission answers 202
// Accepted. Both carry a Location header for polling.
func (a *app) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req batsched.JobRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// SubmitContext carries the request's trace link into the job, so the
	// queued run continues this trace and the status reports its trace_id.
	st, err := a.jobs.SubmitContext(r.Context(), req)
	if err != nil {
		writeError(w, jobStatusFor(err), err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	code := http.StatusAccepted
	if st.FromStore {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// handleJobList returns every job in submission order.
func (a *app) handleJobList(w http.ResponseWriter, r *http.Request) {
	list := a.jobs.List()
	if list == nil {
		list = []batsched.JobStatus{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": list})
}

// handleJobGet reports one job's status, progress, and aggregated search
// stats.
func (a *app) handleJobGet(w http.ResponseWriter, r *http.Request) {
	st, err := a.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, jobStatusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobResults streams a done job's results as NDJSON — byte-identical
// to what the synchronous sweep endpoint produces for the same request.
func (a *app) handleJobResults(w http.ResponseWriter, r *http.Request) {
	lines, err := a.jobs.Results(r.PathValue("id"))
	if err != nil {
		writeError(w, jobStatusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	defer func() { _ = rc.SetWriteDeadline(time.Time{}) }()
	for _, line := range lines {
		_ = rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
		// Two writes, not append(line, '\n'): the lines are shared across
		// concurrent fetches of the same job, and append could write the
		// newline into the shared backing array.
		if _, err := w.Write(line); err != nil {
			return
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			return
		}
	}
}

// handleJobCancel cancels a queued or running job.
func (a *app) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, err := a.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, jobStatusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleMetrics serves the operational counters as a plain-text exposition
// (stdlib only, prometheus-compatible line format). The legacy fprintf body
// now lives in legacyMetrics (obs.go), registered as a registry collector,
// so its lines come out byte-identical and first — followed by the
// registry's native histogram families (request, store-append, job
// queue/run, sweep-cell, and per-policy step latency buckets).
func (a *app) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = a.obs.reg.Expose(w)
}

// jobStatusFor maps job-layer errors to HTTP statuses.
func jobStatusFor(err error) int {
	var invalid *batsched.InvalidRequestError
	switch {
	case errors.As(err, &invalid):
		return http.StatusBadRequest
	case errors.Is(err, batsched.ErrJobNotFound):
		return http.StatusNotFound
	case errors.Is(err, batsched.ErrJobQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, batsched.ErrJobsShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, batsched.ErrJobNotDone), errors.Is(err, batsched.ErrJobFinished):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}
