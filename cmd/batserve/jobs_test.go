package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"batsched"
	"batsched/internal/core"
	"batsched/internal/sched"
)

const jobScenario = `{
	"banks":   [{"battery": {"preset": "B1"}, "count": 2}],
	"loads":   [{"paper": "CL alt"}, {"paper": "ILs alt"}],
	"solvers": ["sequential", "bestof", "optimal"]
}`

func submitJob(t *testing.T, ts *testServer, body string) batsched.JobStatus {
	t.Helper()
	resp, data := postJSON(t, ts.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d: %s", resp.StatusCode, data)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Fatalf("submit Location %q", loc)
	}
	var st batsched.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func pollJobDone(t *testing.T, ts *testServer, id string) batsched.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, data := getBody(t, ts.URL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", resp.StatusCode, data)
		}
		var st batsched.JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return batsched.JobStatus{}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func metricValue(t *testing.T, ts *testServer, name string) int64 {
	t.Helper()
	resp, data := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line, name+" %d", &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s missing from:\n%s", name, data)
	return 0
}

// TestJobEquivalenceAndDedup is the issue's acceptance test: a sweep
// submitted as a job yields byte-identical NDJSON to the synchronous
// endpoint, and an identical resubmission is a store hit with zero cases
// re-evaluated, asserted via /metrics.
func TestJobEquivalenceAndDedup(t *testing.T) {
	ts := newTestServer(t)

	// The job runs first (cold store), so it evaluates every cell and
	// carries the aggregated search stats.
	sub := submitJob(t, ts, `{"scenario":`+jobScenario+`}`)
	final := pollJobDone(t, ts, sub.ID)
	if final.State != batsched.JobDone || final.Error != "" {
		t.Fatalf("job finished %+v", final)
	}
	if final.TotalCases != 6 || final.DoneCases != 6 {
		t.Fatalf("progress %d/%d, want 6/6", final.DoneCases, final.TotalCases)
	}
	if final.CachedCases != 0 {
		t.Fatalf("cold job reports %d cached cases", final.CachedCases)
	}
	if final.Stats == nil || final.Stats.States == 0 {
		t.Fatalf("job with optimal cells carries no aggregated stats: %+v", final)
	}

	resp, gotBytes := getBody(t, ts.URL+"/v1/jobs/"+sub.ID+"/results")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status %d: %s", resp.StatusCode, gotBytes)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content type %q", ct)
	}

	// The synchronous sweep of the same scenario is now served from the
	// shared cell store — and must still be byte-identical to the job's
	// evaluated output.
	resp, wantBytes := postJSON(t, ts.URL+"/v1/sweep", `{"scenario":`+jobScenario+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, wantBytes)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("job results differ from synchronous sweep:\njob:\n%s\nsweep:\n%s", gotBytes, wantBytes)
	}
	if evals := metricValue(t, ts, "batserve_sweep_cells_evaluated_total"); evals != 6 {
		t.Fatalf("cache-served sync sweep re-evaluated cells: %d evaluations, want 6", evals)
	}
	// The optimal cells' search work shows up in the cumulative search
	// counters — and a cache-served sweep must not re-count it.
	statesAfterJob := metricValue(t, ts, "batserve_search_states_total")
	if statesAfterJob == 0 {
		t.Fatal("cold job with optimal cells left batserve_search_states_total at 0")
	}

	// Identical resubmission: served from the store, zero extra cases.
	casesBefore := metricValue(t, ts, "batserve_job_cases_evaluated_total")
	resp, data := postJSON(t, ts.URL+"/v1/jobs", `{"scenario":`+jobScenario+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit status %d (want 200 for a store hit): %s", resp.StatusCode, data)
	}
	var re batsched.JobStatus
	if err := json.Unmarshal(data, &re); err != nil {
		t.Fatal(err)
	}
	if !re.FromStore || re.State != batsched.JobDone {
		t.Fatalf("resubmission not from store: %+v", re)
	}
	if re.Digest != final.Digest {
		t.Fatalf("digest drifted: %s vs %s", re.Digest, final.Digest)
	}
	if after := metricValue(t, ts, "batserve_job_cases_evaluated_total"); after != casesBefore {
		t.Fatalf("resubmission evaluated %d extra cases", after-casesBefore)
	}
	if hits := metricValue(t, ts, "batserve_store_hits_total"); hits != 1 {
		t.Fatalf("store hits %d, want 1", hits)
	}
	_, reBytes := getBody(t, ts.URL+"/v1/jobs/"+re.ID+"/results")
	if !bytes.Equal(reBytes, wantBytes) {
		t.Fatal("store-served results differ from synchronous sweep")
	}
	if states := metricValue(t, ts, "batserve_search_states_total"); states != statesAfterJob {
		t.Fatalf("store-served traffic re-counted search work: %d states, want %d", states, statesAfterJob)
	}
}

// TestJobResultsSurviveRestart: with the file backend, a fresh server on
// the same store path serves the results without re-running the sweep.
func TestJobResultsSurviveRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.ndjson")

	ts1 := newTestServerWithStore(t, path)
	sub := submitJob(t, ts1, `{"scenario":`+jobScenario+`}`)
	pollJobDone(t, ts1, sub.ID)
	_, wantBytes := getBody(t, ts1.URL+"/v1/jobs/"+sub.ID+"/results")
	ts1.Close()
	if err := ts1.mgr.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	if err := ts1.st.Close(); err != nil {
		t.Fatal(err)
	}

	ts2 := newTestServerWithStore(t, path)
	resp, data := postJSON(t, ts2.URL+"/v1/jobs", `{"scenario":`+jobScenario+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart submit status %d: %s", resp.StatusCode, data)
	}
	var re batsched.JobStatus
	if err := json.Unmarshal(data, &re); err != nil {
		t.Fatal(err)
	}
	if !re.FromStore {
		t.Fatalf("restarted server re-ran the sweep: %+v", re)
	}
	_, gotBytes := getBody(t, ts2.URL+"/v1/jobs/"+re.ID+"/results")
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatal("results drifted across restart")
	}
	if evaluated := metricValue(t, ts2, "batserve_job_cases_evaluated_total"); evaluated != 0 {
		t.Fatalf("restarted server evaluated %d cases", evaluated)
	}
}

func TestJobList(t *testing.T) {
	ts := newTestServer(t)
	resp, data := getBody(t, ts.URL+"/v1/jobs")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte(`"jobs":[]`)) {
		t.Fatalf("empty list: %d %s", resp.StatusCode, data)
	}
	sub := submitJob(t, ts, `{"scenario":`+jobScenario+`}`)
	pollJobDone(t, ts, sub.ID)
	_, data = getBody(t, ts.URL+"/v1/jobs")
	var list struct {
		Jobs []batsched.JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != sub.ID {
		t.Fatalf("list %s", data)
	}
}

func TestJobErrors(t *testing.T) {
	ts := newTestServer(t)

	// Unknown ids → 404 on every per-job route.
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/jobs/job-404"},
		{"GET", "/v1/jobs/job-404/results"},
		{"DELETE", "/v1/jobs/job-404"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}

	// Invalid scenario → 400.
	resp, data := postJSON(t, ts.URL+"/v1/jobs",
		`{"scenario":{"banks":[{"battery":{"preset":"B1"}}],"loads":[{"paper":"ILs alt"}],"solvers":["greedy"]}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad scenario status %d: %s", resp.StatusCode, data)
	}

	// Results of a finished-but-cancelled job → 409 (after cancel below);
	// here: cancelling a done job → 409.
	sub := submitJob(t, ts, `{"scenario":`+jobScenario+`}`)
	pollJobDone(t, ts, sub.ID)
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel of done job: status %d, want 409", resp.StatusCode)
	}
}

// The test-only "test-gate-http" solver lets shutdown/cancel tests hold a
// cell mid-flight: each run signals entered, then blocks on the gate.
var (
	httpGateRegister sync.Once
	httpGateMu       sync.Mutex
	httpGate         chan struct{}
	httpEntered      chan struct{}
)

func setHTTPGate(gate, entered chan struct{}) {
	httpGateMu.Lock()
	httpGate, httpEntered = gate, entered
	httpGateMu.Unlock()
}

func registerHTTPGateSolver() {
	httpGateRegister.Do(func() {
		batsched.RegisterSolver(batsched.SolverBuilder{
			Name: "test-gate-http",
			Doc:  "test-only solver blocking on a gate channel",
			Build: func(json.RawMessage) (batsched.SweepPolicy, error) {
				return batsched.SweepPolicy{
					Name: "test-gate-http",
					Run: func(c *core.Compiled) (float64, int, error) {
						httpGateMu.Lock()
						gate, entered := httpGate, httpEntered
						httpGateMu.Unlock()
						if entered != nil {
							entered <- struct{}{}
						}
						if gate != nil {
							<-gate
						}
						lt, err := c.PolicyLifetime(sched.BestAvailable())
						return lt, 0, err
					},
				}, nil
			},
		})
	})
}

const gatedRunBody = `{
	"bank":   {"battery": {"preset": "B1"}, "count": 2},
	"load":   {"paper": "ILs alt"},
	"solver": "test-gate-http"
}`

// TestJobCancelRunningViaHTTP: DELETE on a running job cancels it.
func TestJobCancelRunningViaHTTP(t *testing.T) {
	registerHTTPGateSolver()
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	setHTTPGate(gate, entered)
	defer setHTTPGate(nil, nil)

	ts := newTestServer(t)
	sub := submitJob(t, ts, `{"scenario": {
		"banks":   [{"battery": {"preset": "B1"}, "count": 2}],
		"loads":   [{"paper": "ILs alt"}],
		"solvers": ["test-gate-http"]
	}}`)
	<-entered // the job's cell is in flight

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	close(gate)
	final := pollJobDone(t, ts, sub.ID)
	if final.State != batsched.JobCancelled {
		t.Fatalf("cancelled job finished as %s", final.State)
	}
	// Results of a cancelled job are a 409.
	resp, data := getBody(t, ts.URL+"/v1/jobs/"+sub.ID+"/results")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("results of cancelled job: %d %s", resp.StatusCode, data)
	}
}

// TestGracefulShutdownDrains is the satellite's test: during drainAndClose,
// an in-flight synchronous request and a running job both finish, the
// listener stops accepting, and the store is closed cleanly.
func TestGracefulShutdownDrains(t *testing.T) {
	registerHTTPGateSolver()
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	setHTTPGate(gate, entered)
	defer setHTTPGate(nil, nil)

	storePath := filepath.Join(t.TempDir(), "results.ndjson")
	st, err := batsched.OpenResultStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	svc := batsched.NewEvalService(batsched.EvalOptions{MaxConcurrent: 8})
	mgr := batsched.NewJobManager(svc, st, batsched.JobOptions{Workers: 2})
	sess := batsched.NewSessionManager(batsched.SessionOptions{CompileBank: svc.CompileBank})
	srv := &http.Server{Handler: newHandler(&app{svc: svc, jobs: mgr, sessions: sess, start: time.Now()})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	// One synchronous request and one job, both held mid-cell.
	syncDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(gatedRunBody))
		if err != nil {
			syncDone <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			syncDone <- fmt.Errorf("sync run status %d", resp.StatusCode)
			return
		}
		syncDone <- nil
	}()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(`{"scenario": {
		"banks":   [{"battery": {"preset": "B1"}, "count": 2}],
		"loads":   [{"name": "shutdown-load", "paper": "ILs alt", "horizon_min": 80}],
		"solvers": ["test-gate-http"]
	}}`))
	if err != nil {
		t.Fatal(err)
	}
	var jobSt batsched.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&jobSt); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	<-entered
	<-entered // both the sync cell and the job cell are in flight

	drainDone := make(chan error, 1)
	go func() { drainDone <- drainAndClose(srv, sess, mgr, st, 30*time.Second) }()
	// Give the drain a moment to begin, then release the held cells.
	time.Sleep(50 * time.Millisecond)
	close(gate)

	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-syncDone; err != nil {
		t.Fatalf("in-flight sync request: %v", err)
	}
	final, err := mgr.Get(jobSt.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != batsched.JobDone {
		t.Fatalf("running job drained to %s, want done", final.State)
	}
	// The listener is closed: new requests must fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after drain")
	}
	// The store was synced and closed: a reopen sees the drained job's entry.
	re, err := batsched.OpenResultStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if c := re.Counters(); c.Entries != 1 {
		t.Fatalf("store entries after drain %d, want 1", c.Entries)
	}
}
