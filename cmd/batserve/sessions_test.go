package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"batsched"
)

const sessionBody = `{
	"bank":   {"battery": {"preset": "B1"}, "count": 2},
	"policy": "roundrobin"
}`

// openHTTPSession posts a session and decodes the created info.
func openHTTPSession(t *testing.T, base, body string) sessionInfo {
	t.Helper()
	resp, data := postJSON(t, base+"/v1/sessions", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open session: status %d: %s", resp.StatusCode, data)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/sessions/") {
		t.Fatalf("Location = %q", loc)
	}
	var info sessionInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

// stepHTTP posts one draw event and decodes the telemetry.
func stepHTTP(t *testing.T, base, id string, currentA, durationMin float64) batsched.SessionTelemetry {
	t.Helper()
	body := fmt.Sprintf(`{"current_a": %g, "duration_min": %g}`, currentA, durationMin)
	resp, data := postJSON(t, base+"/v1/sessions/"+id+"/step", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step: status %d: %s", resp.StatusCode, data)
	}
	var tel batsched.SessionTelemetry
	if err := json.Unmarshal(data, &tel); err != nil {
		t.Fatal(err)
	}
	return tel
}

func TestSessionLifecycleHTTP(t *testing.T) {
	ts := newTestServer(t)
	info := openHTTPSession(t, ts.URL, sessionBody)
	if info.Policy != "roundrobin" || info.ID == "" {
		t.Fatalf("session info = %+v", info)
	}
	if info.State.Seq != 0 || len(info.State.Available) != 2 {
		t.Fatalf("initial state = %+v", info.State)
	}

	tel := stepHTTP(t, ts.URL, info.ID, 0.25, 2.0)
	if tel.Seq != 1 || tel.Chosen != 0 || tel.Minutes != 2.0 {
		t.Fatalf("first step = %+v", tel)
	}
	tel = stepHTTP(t, ts.URL, info.ID, 0.25, 2.0)
	if tel.Seq != 2 || tel.Chosen != 1 {
		t.Fatalf("second step = %+v", tel)
	}

	// GET reports the same state without stepping.
	resp, data := getBody(t, ts.URL+"/v1/sessions/"+info.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get session: status %d: %s", resp.StatusCode, data)
	}
	var got sessionInfo
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.State.Seq != 2 || got.State.Minutes != 4.0 {
		t.Fatalf("snapshot = %+v", got.State)
	}

	// Delete closes it; further use answers 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+info.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	if resp, _ := getBody(t, ts.URL+"/v1/sessions/"+info.ID); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", resp.StatusCode)
	}
}

func TestSessionHTTPErrors(t *testing.T) {
	ts := newTestServer(t)
	for _, tc := range []struct {
		name, url, body string
		status          int
	}{
		{"offline-only policy", "/v1/sessions", `{"bank": {"battery": {"preset": "B1"}, "count": 2}, "policy": "optimal"}`, http.StatusBadRequest},
		{"empty bank", "/v1/sessions", `{"policy": "seq"}`, http.StatusBadRequest},
		{"unknown field", "/v1/sessions", `{"bank": {"battery": {"preset": "B1"}}, "policy": "seq", "what": 1}`, http.StatusBadRequest},
		{"step unknown id", "/v1/sessions/nope/step", `{"current_a": 0.25, "duration_min": 1}`, http.StatusNotFound},
	} {
		resp, data := postJSON(t, ts.URL+tc.url, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, data)
		}
	}

	// Events that do not discretize on the grid answer 400.
	info := openHTTPSession(t, ts.URL, sessionBody)
	resp, data := postJSON(t, ts.URL+"/v1/sessions/"+info.ID+"/step", `{"current_a": 0.25, "duration_min": 0}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero-duration step: status %d (%s)", resp.StatusCode, data)
	}

	// An exhausted bank answers 410 Gone with the final lifetime.
	var tel batsched.SessionTelemetry
	for i := 0; i < 10000 && !tel.Dead; i++ {
		tel = stepHTTP(t, ts.URL, info.ID, 0.5, 5.0)
	}
	if !tel.Dead {
		t.Fatal("bank never died")
	}
	resp, data = postJSON(t, ts.URL+"/v1/sessions/"+info.ID+"/step", `{"current_a": 0.5, "duration_min": 5}`)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("step on dead bank: status %d (%s)", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "exhausted") {
		t.Fatalf("dead-bank error = %s", data)
	}
}

// TestSessionEventsSSE drives the full streaming loop: subscribe, step,
// receive one SSE event per step, delete, receive the closed event and EOF.
func TestSessionEventsSSE(t *testing.T) {
	ts := newTestServer(t)
	info := openHTTPSession(t, ts.URL, sessionBody)

	resp, err := http.Get(ts.URL + "/v1/sessions/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	for i := 0; i < 3; i++ {
		stepHTTP(t, ts.URL, info.ID, 0.25, 1.0)
	}
	sc := bufio.NewScanner(resp.Body)
	var tel batsched.SessionTelemetry
	for i := 1; i <= 3; i++ {
		kind, data := readSSE(t, sc)
		if kind != "step" {
			t.Fatalf("event %d kind = %q", i, kind)
		}
		if err := json.Unmarshal([]byte(data), &tel); err != nil {
			t.Fatal(err)
		}
		if int(tel.Seq) != i {
			t.Fatalf("event %d seq = %d", i, tel.Seq)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+info.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	kind, data := readSSE(t, sc)
	if kind != "closed" || !strings.Contains(data, "closed") {
		t.Fatalf("final event = %q %q", kind, data)
	}
	if sc.Scan() {
		t.Fatalf("stream continued after closed: %q", sc.Text())
	}
}

// readSSE reads one "event:"/"data:" pair off the stream.
func readSSE(t *testing.T, sc *bufio.Scanner) (kind, data string) {
	t.Helper()
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && kind != "":
			return kind, data
		}
	}
	t.Fatalf("stream ended mid-event (kind=%q): %v", kind, sc.Err())
	return "", ""
}

// TestMetricsReportSessions checks the session counters in /metrics.
func TestMetricsReportSessions(t *testing.T) {
	ts := newTestServer(t)
	info := openHTTPSession(t, ts.URL, sessionBody)
	stepHTTP(t, ts.URL, info.ID, 0.25, 1.0)
	stepHTTP(t, ts.URL, info.ID, 0, 1.0)

	_, data := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"batserve_sessions_open 1\n",
		"batserve_sessions_opened_total 1\n",
		"batserve_session_steps_total 2\n",
		`batserve_session_policy_steps_total{policy="roundrobin"} 2` + "\n",
		`batserve_session_policy_step_mean_nanos{policy="roundrobin"} `,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestShutdownClosesOpenSSE: drainAndClose must terminate open event
// streams (via the session manager's shutdown) or the HTTP drain would
// wait on them forever.
func TestShutdownClosesOpenSSE(t *testing.T) {
	st, err := batsched.OpenResultStore("")
	if err != nil {
		t.Fatal(err)
	}
	svc := batsched.NewEvalService(batsched.EvalOptions{})
	mgr := batsched.NewJobManager(svc, st, batsched.JobOptions{})
	sess := batsched.NewSessionManager(batsched.SessionOptions{CompileBank: svc.CompileBank})
	srv := &http.Server{Handler: newHandler(&app{svc: svc, jobs: mgr, sessions: sess, start: time.Now()})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	info := openHTTPSession(t, base, sessionBody)
	resp, err := http.Get(base + "/v1/sessions/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	drainDone := make(chan error, 1)
	go func() { drainDone <- drainAndClose(srv, sess, mgr, st, 30*time.Second) }()

	sc := bufio.NewScanner(resp.Body)
	kind, data := readSSE(t, sc)
	if kind != "closed" || !strings.Contains(data, "shutdown") {
		t.Fatalf("drain event = %q %q", kind, data)
	}
	if sc.Scan() {
		t.Fatalf("stream survived drain: %q", sc.Text())
	}
	select {
	case err := <-drainDone:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain never finished")
	}
	// The manager refuses new sessions after the drain (the handler would
	// answer 503, but the listener is down too).
	sp, err := batsched.ParseSession([]byte(sessionBody))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Open(sp); err == nil || sessionStatusFor(err) != http.StatusServiceUnavailable {
		t.Fatalf("open after drain = %v", err)
	}
}

// TestSessionBoundHTTP: opens beyond the manager's bound answer 429.
func TestSessionBoundHTTP(t *testing.T) {
	st, err := batsched.OpenResultStore("")
	if err != nil {
		t.Fatal(err)
	}
	svc := batsched.NewEvalService(batsched.EvalOptions{})
	mgr := batsched.NewJobManager(svc, st, batsched.JobOptions{})
	sess := batsched.NewSessionManager(batsched.SessionOptions{MaxSessions: 1, CompileBank: svc.CompileBank})
	h := newHandler(&app{svc: svc, jobs: mgr, sessions: sess, start: time.Now()})
	srv := newLocalServer(t, h)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		sess.Shutdown(ctx)
		mgr.Shutdown(ctx)
		st.Close()
	})
	openHTTPSession(t, srv, sessionBody)
	if resp, data := postJSON(t, srv+"/v1/sessions", sessionBody); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second open: status %d (%s)", resp.StatusCode, data)
	}
}

// newLocalServer serves h on a loopback listener closed with the test.
func newLocalServer(t *testing.T, h http.Handler) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}
