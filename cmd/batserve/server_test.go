package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"batsched"
)

// testServer bundles an httptest instance with its backing state so tests
// can reach past HTTP into the service, manager, store, and app.
type testServer struct {
	*httptest.Server
	app  *app
	svc  *batsched.EvalService
	mgr  *batsched.JobManager
	sess *batsched.SessionManager
	st   *batsched.ResultStore
}

func newTestServer(t *testing.T) *testServer { return newTestServerWithStore(t, "") }

func newTestServerWithStore(t *testing.T, storePath string) *testServer {
	t.Helper()
	st, err := batsched.OpenResultStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	return newTestServerOn(t, st, nil)
}

// newTestServerOn stands a server up on a caller-built store; tune (may be
// nil) adjusts the app before the listener starts.
func newTestServerOn(t *testing.T, st *batsched.ResultStore, tune func(*app)) *testServer {
	t.Helper()
	// Mirror main.go: the observability kit is built first so its
	// histograms thread into the layer options, and the service and the
	// job manager share the store, so sync sweeps and jobs reuse each
	// other's cells.
	kit := newObsKit()
	svc := batsched.NewEvalService(batsched.EvalOptions{Store: st, CellLatency: kit.cellLatency})
	mgr := batsched.NewJobManager(svc, st, batsched.JobOptions{
		QueueWait: kit.queueWait, RunLatency: kit.runLatency,
	})
	sess := batsched.NewSessionManager(batsched.SessionOptions{
		CompileBank: svc.CompileBank, StepLatency: kit.stepLatency,
	})
	a := &app{svc: svc, jobs: mgr, sessions: sess, st: st, start: time.Now(), obs: kit}
	if tune != nil {
		tune(a)
	}
	ts := httptest.NewServer(newHandler(a))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		sess.Shutdown(ctx)
		mgr.Shutdown(ctx)
		st.Close()
	})
	return &testServer{Server: ts, app: a, svc: svc, mgr: mgr, sess: sess, st: st}
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

const runBody = `{
	"bank":   {"battery": {"preset": "B1"}, "count": 2},
	"load":   {"paper": "ILs alt"},
	"solver": "bestof"
}`

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body struct {
		Status        string `json:"status"`
		UptimeSeconds *int64 `json:"uptime_seconds"`
		Build         string `json:"build"`
		QueueDepth    *int   `json:"job_queue_depth"`
		CacheEntries  int    `json:"cache_entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" {
		t.Fatalf("status %q", body.Status)
	}
	// The satellite fields: uptime, build info, and queue depth must be
	// present (zero is fine, absent is not).
	if body.UptimeSeconds == nil || *body.UptimeSeconds < 0 {
		t.Fatal("healthz misses uptime_seconds")
	}
	if body.Build == "" {
		t.Fatal("healthz misses build info")
	}
	if body.QueueDepth == nil {
		t.Fatal("healthz misses job_queue_depth")
	}
}

func TestPolicies(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/policies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Policies []struct {
			Name    string   `json:"name"`
			Aliases []string `json:"aliases"`
			Doc     string   `json:"doc"`
		} `json:"policies"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, p := range body.Policies {
		names[p.Name] = true
		if p.Doc == "" {
			t.Errorf("policy %q has no doc", p.Name)
		}
	}
	// Every scheme the root package exports must be name-addressable here.
	for _, want := range []string{
		"sequential", "roundrobin", "bestof", "lookahead",
		"optimal", "optimal-ta", "analytic", "montecarlo",
	} {
		if !names[want] {
			t.Errorf("/v1/policies misses %q (have %v)", want, names)
		}
	}
	if got := len(body.Policies); got != len(batsched.Solvers()) {
		t.Errorf("listed %d policies, registry has %d", got, len(batsched.Solvers()))
	}
}

func TestRun(t *testing.T) {
	ts := newTestServer(t)
	resp, data := postJSON(t, ts.URL+"/v1/run", runBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var res batsched.EvalResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.LifetimeMin < 16.27 || res.LifetimeMin > 16.29 {
		t.Fatalf("lifetime %.2f, want ~16.28 (Table 5)", res.LifetimeMin)
	}
	if res.Bank != "2xB1" || res.Load != "ILs alt" || res.Solver != "best-of-two" {
		t.Fatalf("labels: %+v", res)
	}
}

func TestRunOptimalReportsSearchStats(t *testing.T) {
	ts := newTestServer(t)
	body := `{
		"bank":   {"battery": {"preset": "B1"}, "count": 2},
		"load":   {"paper": "ILs alt"},
		"solver": "optimal"
	}`
	resp, data := postJSON(t, ts.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var res batsched.EvalResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.LifetimeMin < 16.89 || res.LifetimeMin > 16.91 {
		t.Fatalf("optimal lifetime %.2f, want 16.90 (Table 5)", res.LifetimeMin)
	}
	if res.Stats == nil || res.Stats.States == 0 {
		t.Fatalf("optimal run carries no search stats: %s", data)
	}
	// The wire field must actually serialize (it is how perf is observed).
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["stats"]; !ok {
		t.Fatalf("no stats field on the wire: %s", data)
	}
}

func TestRunParameterisedSolver(t *testing.T) {
	ts := newTestServer(t)
	body := `{
		"bank":   {"battery": {"preset": "B1"}, "count": 2},
		"load":   {"paper": "ILs alt"},
		"solver": {"lookahead": {"horizon": 5}}
	}`
	resp, data := postJSON(t, ts.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var res batsched.EvalResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Solver != "lookahead-5min" || res.LifetimeMin <= 0 {
		t.Fatalf("lookahead run: %+v", res)
	}
}

func TestRunBadRequests(t *testing.T) {
	ts := newTestServer(t)
	cases := map[string]string{
		"not json":         `{`,
		"unknown field":    `{"bank":{},"load":{},"solver":"bestof","frob":1}`,
		"unknown solver":   `{"bank":{"battery":{"preset":"B1"}},"load":{"paper":"ILs alt"},"solver":"greedy"}`,
		"unknown preset":   `{"bank":{"battery":{"preset":"B9"}},"load":{"paper":"ILs alt"},"solver":"bestof"}`,
		"17xB1 optimal":    `{"bank":{"battery":{"preset":"B1"},"count":17},"load":{"paper":"ILs alt"},"solver":"optimal"}`,
		"negative horizon": `{"bank":{"battery":{"preset":"B1"}},"load":{"paper":"ILs alt","horizon_min":-5},"solver":"bestof"}`,
	}
	for name, body := range cases {
		resp, data := postJSON(t, ts.URL+"/v1/run", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, resp.StatusCode, data)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error payload %s", name, data)
		}
	}
}

func TestRunSolverFailureIs422(t *testing.T) {
	ts := newTestServer(t)
	body := `{
		"bank":   {"battery": {"preset": "B1"}, "count": 2},
		"load":   {"paper": "ILs alt"},
		"solver": {"optimal-ta": {"budget": 1}}
	}`
	resp, data := postJSON(t, ts.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, data)
	}
	var res batsched.EvalResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Error, "budget") {
		t.Fatalf("cell error %q", res.Error)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run status %d, want 405", resp.StatusCode)
	}
}

const sweepBody = `{
	"scenario": {
		"banks":   [{"battery": {"preset": "B1"}, "count": 2}],
		"loads":   [{"paper": "CL alt"}, {"paper": "ILs alt"}],
		"solvers": ["sequential", "bestof", "optimal"]
	}
}`

func TestSweepNDJSON(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q, want application/x-ndjson", ct)
	}
	var results []batsched.EvalResult
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r batsched.EvalResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("%d lines, want 6", len(results))
	}
	// Deterministic nested order and Table 5 values.
	wantOrder := []string{
		"CL alt/sequential", "CL alt/best-of-two", "CL alt/optimal",
		"ILs alt/sequential", "ILs alt/best-of-two", "ILs alt/optimal",
	}
	for i, r := range results {
		if got := r.Load + "/" + r.Solver; got != wantOrder[i] {
			t.Errorf("line %d = %q, want %q", i, got, wantOrder[i])
		}
		if r.Error != "" || r.LifetimeMin <= 0 {
			t.Errorf("line %d: %+v", i, r)
		}
	}
	if lt := results[3].LifetimeMin; fmt.Sprintf("%.2f", lt) != "12.38" {
		t.Errorf("ILs alt sequential %.2f, want 12.38 (Table 5)", lt)
	}
	if lt := results[5].LifetimeMin; fmt.Sprintf("%.2f", lt) != "16.90" {
		t.Errorf("ILs alt optimal %.2f, want 16.90 (Table 5)", lt)
	}
}

// TestSweepMatchesLibraryBytes is the issue's acceptance check: the same
// scenario JSON produces byte-identical lifetimes via the library and via
// POST /v1/sweep.
func TestSweepMatchesLibraryBytes(t *testing.T) {
	const scenarioJSON = `{
		"banks":   [{"battery": {"preset": "B1"}, "count": 2}],
		"loads":   [{"paper": "ILs alt"}],
		"solvers": ["sequential", "bestof"]
	}`
	sc, err := batsched.ParseScenario([]byte(scenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	library, err := batsched.RunSweep(sp, batsched.SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	ts := newTestServer(t)
	resp, data := postJSON(t, ts.URL+"/v1/sweep", `{"scenario":`+scenarioJSON+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) != len(library) {
		t.Fatalf("%d lines vs %d library results", len(lines), len(library))
	}
	for i, line := range lines {
		var r batsched.EvalResult
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatal(err)
		}
		if wire := fmt.Sprintf("%v", r.LifetimeMin); wire != fmt.Sprintf("%v", library[i].Lifetime) {
			t.Errorf("cell %d: HTTP %s != library %v", i, wire, library[i].Lifetime)
		}
	}
}

func TestSweepBadScenario(t *testing.T) {
	ts := newTestServer(t)
	resp, data := postJSON(t, ts.URL+"/v1/sweep",
		`{"scenario":{"banks":[{"battery":{"preset":"B1"}}],"loads":[{"paper":"ILs alt"}],"solvers":["greedy"]}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
	}
	if !bytes.Contains(data, []byte("unknown solver")) {
		t.Fatalf("error payload %s", data)
	}
}

// TestConcurrentClientsShareCompiledArtifact drives many concurrent HTTP
// clients at the same cell and asserts the service compiled it exactly
// once.
func TestConcurrentClientsShareCompiledArtifact(t *testing.T) {
	ts := newTestServer(t)
	const clients = 12
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(runBody))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var res batsched.EvalResult
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				errs <- err
				return
			}
			if res.LifetimeMin < 16.27 || res.LifetimeMin > 16.29 {
				errs <- fmt.Errorf("lifetime %v", res.LifetimeMin)
				return
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := ts.svc.Stats()
	if st.Compiles != 1 {
		t.Fatalf("compiled %d times for %d identical clients, want 1", st.Compiles, clients)
	}
	// With the cell store wired in, identical clients do not even share the
	// compiled artifact — they share the evaluated cell: one evaluation, the
	// rest served from the store or the in-flight table.
	if st.CellsEvaluated != 1 {
		t.Fatalf("evaluated %d cells for %d identical clients, want 1", st.CellsEvaluated, clients)
	}
	if st.CellHits != clients-1 {
		t.Fatalf("cell hits %d, want %d", st.CellHits, clients-1)
	}
}

// TestRunDiverseBankRejected: past 8 batteries the optimal search requires
// interchangeable batteries (canonicalization is what makes 9..12 feasible);
// an all-distinct bank must be rejected at the spec layer with a 400, never
// reach the search.
func TestRunDiverseBankRejected(t *testing.T) {
	ts := newTestServer(t)
	body := `{"bank":{"batteries":[` +
		`{"preset":"B1","capacity":5.5},{"preset":"B1","capacity":6.5},{"preset":"B1","capacity":7.5},` +
		`{"preset":"B1","capacity":8.5},{"preset":"B1","capacity":9.5},{"preset":"B1","capacity":10.5},` +
		`{"preset":"B1","capacity":11.5},{"preset":"B1","capacity":12.5},{"preset":"B1","capacity":13.5}]},` +
		`"load":{"paper":"ILs alt"},"solver":"optimal"}`
	resp, data := postJSON(t, ts.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
	}
}
