// HTTP-layer robustness: the readiness probe, load shedding, per-request
// deadlines, and the /metrics exposition of the failure-mode counters.
package main

import (
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"batsched"
	"batsched/internal/core"
	"batsched/internal/faults"
	"batsched/internal/spec"
	"batsched/internal/store"
	"batsched/internal/sweep"
)

// Test-only solvers, registered once for the whole package: a gate solver
// that blocks until released (drives the shedding test) and a sleeper
// (drives the deadline test).
var (
	registerServerSolvers sync.Once
	gateMu                sync.Mutex
	gateCh                chan struct{}
)

func serverSolvers() {
	registerServerSolvers.Do(func() {
		spec.Register(spec.Builder{
			Name: "test-gate",
			Doc:  "test-only solver that blocks until the package gate opens",
			Build: func(json.RawMessage) (sweep.PolicyCase, error) {
				return sweep.PolicyCase{Name: "test-gate", Run: func(*core.Compiled) (float64, int, error) {
					gateMu.Lock()
					ch := gateCh
					gateMu.Unlock()
					if ch != nil {
						<-ch
					}
					return 1, 0, nil
				}}, nil
			},
		})
		spec.Register(spec.Builder{
			Name: "test-sleep",
			Doc:  "test-only solver that sleeps 200ms per cell",
			Build: func(json.RawMessage) (sweep.PolicyCase, error) {
				return sweep.PolicyCase{Name: "test-sleep", Run: func(*core.Compiled) (float64, int, error) {
					time.Sleep(200 * time.Millisecond)
					return 1, 0, nil
				}}, nil
			},
		})
	})
}

func getReady(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// /readyz is ready on a healthy server and flips to 503 (with Retry-After)
// the moment draining begins, while /healthz liveness stays 200 — the two
// probes must answer differently during a drain.
func TestReadyzDraining(t *testing.T) {
	ts := newTestServer(t)
	resp, data := getReady(t, ts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy readyz = %d: %s", resp.StatusCode, data)
	}

	ts.app.draining.Store(true)
	resp, data = getReady(t, ts.URL)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz carries no Retry-After")
	}
	if !strings.Contains(string(data), "draining") {
		t.Fatalf("readyz body names no reason: %s", data)
	}
	// Liveness is unaffected: the process is healthy, just not accepting
	// new work.
	live, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	live.Body.Close()
	if live.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200", live.StatusCode)
	}
	// The synchronous evaluation endpoints shed during the drain.
	resp2, data2 := postJSON(t, ts.URL+"/v1/run", runBody)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run during drain = %d, want 503: %s", resp2.StatusCode, data2)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("shed response carries no Retry-After")
	}
}

// A store whose writes persistently fail goes degraded; /readyz reports it
// while /v1/run keeps answering 200 — degraded means "stops caching", not
// "stops serving".
func TestReadyzStoreDegraded(t *testing.T) {
	inj := faults.New(1, faults.Rule{Op: faults.OpStoreWrite, P: 1})
	st, err := store.OpenWith(store.Options{
		Path:     filepath.Join(t.TempDir(), "s.ndjson"),
		WrapFile: faults.WrapStore(inj),
		Sleep:    func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServerOn(t, st, nil)

	resp, data := postJSON(t, ts.URL+"/v1/run", runBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run with failing store = %d, want 200: %s", resp.StatusCode, data)
	}
	resp2, data2 := getReady(t, ts.URL)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded readyz = %d, want 503: %s", resp2.StatusCode, data2)
	}
	if !strings.Contains(string(data2), "degraded") {
		t.Fatalf("readyz body does not name the degraded store: %s", data2)
	}
	// The degraded gauge is on /metrics for alerting.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mdata), "batserve_store_degraded 1") {
		t.Fatal("metrics do not report batserve_store_degraded 1")
	}
}

// Past -max-inflight concurrently executing evaluations the server sheds
// with 429 + Retry-After instead of queueing, and counts the shed request.
func TestLoadSheddingMaxInflight(t *testing.T) {
	serverSolvers()
	gateMu.Lock()
	gateCh = make(chan struct{})
	gateMu.Unlock()
	defer func() {
		gateMu.Lock()
		if gateCh != nil {
			close(gateCh)
			gateCh = nil
		}
		gateMu.Unlock()
	}()

	ts := newTestServerOn(t, mustMemStore(t), func(a *app) { a.maxInflight = 1 })
	gateBody := `{
		"bank":   {"battery": {"preset": "B1"}, "count": 2},
		"load":   {"paper": "ILs alt"},
		"solver": "test-gate"
	}`

	done := make(chan int, 1)
	go func() {
		resp, _ := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(gateBody))
		if resp != nil {
			resp.Body.Close()
			done <- resp.StatusCode
		} else {
			done <- 0
		}
	}()
	// Wait until the gated request is actually in flight.
	deadline := time.Now().Add(5 * time.Second)
	for ts.app.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("gated request never went in flight")
		}
		time.Sleep(time.Millisecond)
	}

	resp, data := postJSON(t, ts.URL+"/v1/run", runBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}

	gateMu.Lock()
	close(gateCh)
	gateCh = nil
	gateMu.Unlock()
	if code := <-done; code != http.StatusOK {
		t.Fatalf("gated request finished %d, want 200", code)
	}

	// The shed is counted, and capacity is back: the same request now runs.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mdata), "batserve_requests_shed_total 1") {
		t.Fatal("metrics do not count the shed request")
	}
	resp2, data2 := postJSON(t, ts.URL+"/v1/run", runBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("request after release = %d: %s", resp2.StatusCode, data2)
	}
}

// A synchronous evaluation that outlives -request-timeout answers 504.
func TestRequestTimeoutMapsTo504(t *testing.T) {
	serverSolvers()
	ts := newTestServerOn(t, mustMemStore(t), func(a *app) { a.requestTimeout = 30 * time.Millisecond })
	body := `{
		"bank":   {"battery": {"preset": "B1"}, "count": 2},
		"load":   {"paper": "ILs alt"},
		"solver": "test-sleep"
	}`
	resp, data := postJSON(t, ts.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("slow run = %d, want 504: %s", resp.StatusCode, data)
	}
}

// The failure-model counters are all on /metrics, zero-valued on a healthy
// server — operators can alert on names that exist before trouble starts.
func TestMetricsExposeRobustnessCounters(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{
		"batserve_store_quarantined_total",
		"batserve_store_append_errors_total",
		"batserve_store_append_retries_total",
		"batserve_store_dropped_puts_total",
		"batserve_store_sync_errors_total",
		"batserve_store_degraded",
		"batserve_job_retries_total",
		"batserve_job_panics_total",
		"batserve_requests_shed_total",
		"batserve_session_events_dropped_total",
	} {
		if !strings.Contains(string(data), name+" ") {
			t.Errorf("/metrics misses %s", name)
		}
	}
}

// The -store-sync flag grammar round-trips through the root package.
func TestStoreSyncPolicyFlag(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want batsched.StoreSyncPolicy
	}{
		{"never", batsched.StoreSyncNever},
		{"interval", batsched.StoreSyncInterval},
		{"always", batsched.StoreSyncAlways},
	} {
		got, err := batsched.ParseStoreSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseStoreSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := batsched.ParseStoreSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad sync policy accepted")
	}
}

func mustMemStore(t *testing.T) *batsched.ResultStore {
	t.Helper()
	st, err := batsched.OpenResultStore("")
	if err != nil {
		t.Fatal(err)
	}
	return st
}
