// Command batserve is the long-lived HTTP evaluation service of the
// battery-scheduling reproduction. It serves the serializable scenario API
// synchronously and as durable asynchronous jobs:
//
//	GET    /healthz              liveness: uptime, build, cache + queue gauges
//	GET    /readyz               readiness: 503 while draining or store-degraded
//	GET    /metrics              plain-text operational counters + histograms
//	GET    /debug/traces         recent spans (JSON), ?trace= filters one trace
//	GET    /v1/policies          every solver addressable by name (with aliases)
//	POST   /v1/run               evaluate one scenario cell -> one JSON object
//	POST   /v1/sweep             evaluate a scenario grid   -> NDJSON stream
//	POST   /v1/jobs              submit a sweep as a job    -> 202 + job status
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         job status + progress + aggregated stats
//	GET    /v1/jobs/{id}/results completed job results      -> NDJSON,
//	                             byte-identical to /v1/sweep on the same spec
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	POST   /v1/sessions          open a streaming scheduling session
//	GET    /v1/sessions/{id}     current session state (no step)
//	POST   /v1/sessions/{id}/step feed one draw event -> per-step telemetry
//	GET    /v1/sessions/{id}/events telemetry stream (server-sent events)
//	DELETE /v1/sessions/{id}     close a session
//
// Jobs run on a bounded priority worker pool and dedup against a
// content-addressed result store keyed by the request digest: resubmitting
// an identical sweep is served from the store without re-evaluating a cell,
// and with -store the results survive restarts.
//
// Sessions hold a persistent discrete KiBaM system and schedule draw
// events online as they arrive — the load need not be known up front. The
// session table is bounded (-max-sessions) and idle sessions are evicted
// (-session-ttl). SIGINT/SIGTERM drain gracefully: open sessions close
// (ending their event streams), in-flight requests and running jobs finish
// (up to -drain), then the store is closed.
//
// The store hardens against mid-file corruption (per-line checksums;
// corrupt lines are quarantined on replay, not served), transient write
// errors (bounded retries with backoff), and persistent ones (a write
// circuit breaker: the store goes degraded read-only — still serving and
// still evaluating, just not caching — until a cooldown probe succeeds;
// /readyz reports it). -store-sync picks the crash-safety tradeoff:
//
//	never     fastest; the OS decides when results reach disk, a crash can
//	          lose anything since the last natural flush
//	interval  fsync at most once per -store-sync-interval (default 1s); a
//	          crash loses at most that window (the default)
//	always    fsync before every put is acknowledged; nothing is lost short
//	          of device failure, at a per-put latency cost
//
// Usage:
//
//	batserve [-addr :8080] [-concurrency N] [-cache N]
//	         [-job-workers N] [-queue N] [-store results.ndjson]
//	         [-store-sync interval] [-store-sync-interval 1s]
//	         [-max-sessions N] [-session-ttl 5m] [-drain 30s]
//	         [-request-timeout 2m] [-max-inflight N]
//	         [-debug-addr :6060] [-log-level info]
//
// Example:
//
//	curl -s localhost:8080/v1/jobs -d '{"scenario": {
//	  "banks":   [{"battery": {"preset": "B1"}, "count": 2}],
//	  "loads":   [{"paper": "ILs alt"}],
//	  "solvers": ["bestof", "optimal"]
//	}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"batsched"
	"batsched/internal/cluster"
	"batsched/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	concurrency := flag.Int("concurrency", 0, "max concurrently executing requests (0 = number of CPUs)")
	cacheSize := flag.Int("cache", 0, "compiled-artifact cache entries (0 = default)")
	jobWorkers := flag.Int("job-workers", 0, "jobs executing concurrently (0 = number of CPUs)")
	queueDepth := flag.Int("queue", 0, "max queued jobs (0 = default)")
	retainJobs := flag.Int("retain-jobs", 0, "finished jobs kept in the table (0 = default; results stay in the store)")
	storePath := flag.String("store", "", "append-only result-store file (empty = in-memory only)")
	storeSync := flag.String("store-sync", "interval", "store fsync policy: never, interval, or always (crash-safety vs latency)")
	storeSyncInterval := flag.Duration("store-sync-interval", 0, "max unsynced window under -store-sync interval (0 = default 1s)")
	maxSessions := flag.Int("max-sessions", 0, "max concurrently open streaming sessions (0 = default)")
	sessionTTL := flag.Duration("session-ttl", 0, "idle streaming sessions are evicted after this long (0 = default)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	requestTimeout := flag.Duration("request-timeout", 2*time.Minute, "per-request deadline on synchronous evaluation endpoints (0 = none)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently executing synchronous evaluations before shedding with 429 (0 = unlimited)")
	debugAddr := flag.String("debug-addr", "", "debug listen address for pprof, /debug/traces, and runtime metrics (empty = disabled)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, or error")
	peers := flag.String("peers", "", "comma-separated base URLs of the other cluster members (empty = single-node)")
	advertise := flag.String("advertise", "", "this node's base URL as the peers address it (required with -peers)")
	gossipInterval := flag.Duration("gossip-interval", 2*time.Second, "how often to gossip store-hit digests and health with a random peer")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "batserve: -log-level: %v\n", err)
		os.Exit(1)
	}
	// The observability kit is built before any layer so its histograms can
	// be threaded into the layer options: store append, job queue wait and
	// run time, per-cell sweep evaluation, and per-policy session stepping
	// all land in registry-owned bucket families on /metrics.
	kit := newObsKit()
	kit.logger = obs.NewLogger(os.Stderr, level)
	logger := kit.logger

	syncPolicy, err := batsched.ParseStoreSyncPolicy(*storeSync)
	if err != nil {
		fmt.Fprintf(os.Stderr, "batserve: -store-sync: %v\n", err)
		os.Exit(1)
	}
	st, err := batsched.OpenResultStoreWith(batsched.StoreOptions{
		Path:          *storePath,
		Sync:          syncPolicy,
		SyncInterval:  *storeSyncInterval,
		AppendLatency: kit.appendLatency,
	})
	if err != nil {
		logger.Error("store open failed", "error", err)
		os.Exit(1)
	}
	// Clustering: with -peers the node joins a consistent-hash ring over
	// the cell-digest space. The service and job layers then run on a
	// tiered backend (local store first, ring peers on miss) and forward
	// owned-elsewhere cells to their owners; without -peers everything
	// below collapses to the exact single-node configuration.
	var clu *cluster.Cluster
	backend := batsched.StoreBackend(st)
	if *peers != "" {
		if *advertise == "" {
			fmt.Fprintln(os.Stderr, "batserve: -peers requires -advertise (this node's base URL)")
			os.Exit(1)
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, strings.TrimRight(p, "/"))
			}
		}
		clu = cluster.New(cluster.Options{
			Self:       strings.TrimRight(*advertise, "/"),
			Peers:      peerList,
			RPCLatency: kit.peerLatency,
		})
		backend = batsched.NewTieredStore(st, clu)
		logger.Info("clustered", "self", clu.Self(), "members", len(clu.Ring().Members()))
	}
	// The service and the job manager share one store: synchronous sweeps
	// and jobs then reuse each other's cells, and an overlapping submission
	// on either path evaluates only what neither has produced.
	evalOpts := batsched.EvalOptions{
		MaxConcurrent: *concurrency,
		CacheEntries:  *cacheSize,
		Store:         backend,
		CellLatency:   kit.cellLatency,
	}
	if clu != nil {
		evalOpts.Cluster = clu
	}
	svc := batsched.NewEvalService(evalOpts)
	mgr := batsched.NewJobManager(svc, backend, batsched.JobOptions{
		Workers:    *jobWorkers,
		QueueDepth: *queueDepth,
		RetainJobs: *retainJobs,
		QueueWait:  kit.queueWait,
		RunLatency: kit.runLatency,
	})
	// Sessions compile bank artifacts through the service so streaming
	// sessions and sweeps on the same bank share one cached artifact (and
	// its pooled systems).
	sess := batsched.NewSessionManager(batsched.SessionOptions{
		MaxSessions: *maxSessions,
		IdleTTL:     *sessionTTL,
		CompileBank: svc.CompileBank,
		StepLatency: kit.stepLatency,
	})
	a := &app{
		svc: svc, jobs: mgr, sessions: sess, st: st, start: time.Now(),
		requestTimeout: *requestTimeout,
		maxInflight:    int64(*maxInflight),
		obs:            kit,
		cluster:        clu,
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(a),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)
	if clu != nil {
		clu.StartGossip(*gossipInterval)
	}

	// The optional debug listener carries the heavier diagnostics — pprof,
	// the span ring, and runtime-metrics gauges folded into the exposition —
	// on a separate address an operator can keep off the public interface.
	if *debugAddr != "" {
		obs.RegisterRuntimeMetrics(kit.reg)
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           obs.DebugMux(kit.reg, kit.tracer),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "error", err)
			}
		}()
		defer dbg.Close()
		logger.Info("debug listening", "addr", *debugAddr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Error("serve failed", "error", err)
		os.Exit(1)
	case sig := <-stop:
		logger.Info("draining", "signal", sig.String(), "timeout", drain.String())
	}

	// Flip readiness first: /readyz answers 503 (and the sync endpoints
	// shed) for the whole drain, so a load balancer stops routing here
	// while in-flight work finishes.
	a.draining.Store(true)
	if clu != nil {
		clu.StopGossip()
	}
	if err := drainAndClose(srv, sess, mgr, st, *drain); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// The deadline path is still clean: remaining jobs were cancelled
			// and the store closed; report it without failing the exit.
			logger.Warn("drain timeout, running jobs cancelled")
			return
		}
		logger.Error("shutdown failed", "error", err)
		os.Exit(1)
	}
}

// drainAndClose shuts the server down gracefully within timeout: close
// every streaming session (their final "closed" events end the otherwise
// never-ending SSE requests — this MUST precede the HTTP shutdown, which
// waits for in-flight requests), stop accepting connections and wait for
// in-flight HTTP requests, drain the job manager (running jobs finish;
// past the deadline they are cancelled), then close the result store so
// every appended record is synced. Split from main so the drain path is
// testable without signals.
func drainAndClose(srv *http.Server, sess *batsched.SessionManager, mgr *batsched.JobManager, st *batsched.ResultStore, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var firstErr error
	if err := sess.Shutdown(ctx); err != nil {
		firstErr = fmt.Errorf("sessions drain: %w", err)
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) && firstErr == nil {
		firstErr = fmt.Errorf("http shutdown: %w", err)
	}
	if err := mgr.Shutdown(ctx); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("jobs drain: %w", err)
	}
	// Close the store last: a drained-on-deadline job may append its entry
	// right up to the manager shutdown returning.
	if err := st.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
