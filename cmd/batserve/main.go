// Command batserve is the long-lived HTTP evaluation service of the
// battery-scheduling reproduction. It serves the serializable scenario API
// over four endpoints:
//
//	GET  /healthz      liveness plus compiled-cache counters
//	GET  /v1/policies  every solver addressable by name (with aliases)
//	POST /v1/run       evaluate one scenario cell  -> one JSON object
//	POST /v1/sweep     evaluate a scenario grid    -> NDJSON, one cell per
//	                   line in deterministic nested order, streamed as
//	                   results complete
//
// Scenarios are JSON (see internal/spec): banks are presets or custom KiBaM
// parameters, loads are paper names, inline segments, or load-file text,
// and solvers are registry names with optional parameters. Compiled
// artifacts are cached across requests keyed by the resolved
// (bank, load, grid) content, so many clients probing the same grid share
// one discretization.
//
// Usage:
//
//	batserve [-addr :8080] [-concurrency N] [-cache N]
//
// Example:
//
//	curl -s localhost:8080/v1/run -d '{
//	  "bank":   {"battery": {"preset": "B1"}, "count": 2},
//	  "load":   {"paper": "ILs alt"},
//	  "solver": "bestof"
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"batsched"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	concurrency := flag.Int("concurrency", 0, "max concurrently executing requests (0 = number of CPUs)")
	cacheSize := flag.Int("cache", 0, "compiled-artifact cache entries (0 = default)")
	flag.Parse()

	svc := batsched.NewEvalService(batsched.EvalOptions{
		MaxConcurrent: *concurrency,
		CacheEntries:  *cacheSize,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("batserve: listening on %s\n", *addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "batserve: %v\n", err)
		os.Exit(1)
	case <-stop:
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "batserve: shutdown: %v\n", err)
		os.Exit(1)
	}
}
