package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"batsched"
	"batsched/internal/cluster"
)

// swapHandler lets a listener start before the app behind it exists: the
// cluster needs every member's URL at construction, but httptest only hands
// out a URL once the listener is up. Each node's server starts on an empty
// swapHandler; the real handler is stored once all URLs are known.
type swapHandler struct{ v atomic.Value }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, _ := s.v.Load().(http.Handler); h != nil {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "node not ready", http.StatusServiceUnavailable)
}

// clusterNode is one in-process batserve instance of a test cluster.
type clusterNode struct {
	url string
	ts  *httptest.Server
	app *app
	svc *batsched.EvalService
	st  *batsched.ResultStore
	clu *cluster.Cluster
}

// newTestCluster stands up n fully wired batserve nodes that form one
// consistent-hash ring, mirroring main.go's clustered construction: each
// node's service and job manager run on a tiered backend (local store +
// cluster), while the app's peer API serves the local tier directly. Gossip
// is not started — tests drive exchanges explicitly so counts stay exact.
func newTestCluster(t *testing.T, n int) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	swaps := make([]*swapHandler, n)
	urls := make([]string, n)
	for i := range nodes {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
		nodes[i] = &clusterNode{url: ts.URL, ts: ts}
	}
	for i, node := range nodes {
		st, err := batsched.OpenResultStore("")
		if err != nil {
			t.Fatal(err)
		}
		var peerList []string
		for j, u := range urls {
			if j != i {
				peerList = append(peerList, u)
			}
		}
		clu := cluster.New(cluster.Options{Self: urls[i], Peers: peerList})
		backend := batsched.NewTieredStore(st, clu)
		kit := newObsKit()
		svc := batsched.NewEvalService(batsched.EvalOptions{
			Store: backend, Cluster: clu, CellLatency: kit.cellLatency,
		})
		mgr := batsched.NewJobManager(svc, backend, batsched.JobOptions{
			QueueWait: kit.queueWait, RunLatency: kit.runLatency,
		})
		sess := batsched.NewSessionManager(batsched.SessionOptions{
			CompileBank: svc.CompileBank, StepLatency: kit.stepLatency,
		})
		a := &app{
			svc: svc, jobs: mgr, sessions: sess, st: st, start: time.Now(),
			obs: kit, cluster: clu,
		}
		swaps[i].v.Store(newHandler(a))
		node.app, node.svc, node.st, node.clu = a, svc, st, clu
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			sess.Shutdown(ctx)
			mgr.Shutdown(ctx)
			st.Close()
		})
	}
	return nodes
}

// clusterSweepBody spans the full index decomposition — 2 grids x 2 banks x
// 3 loads x 2 solvers = 24 cells — enough that every node of a 3-member
// ring owns some cells with near certainty (ownership follows the random
// listener ports, so the split itself varies run to run).
const clusterSweepBody = `{"scenario": {
	"banks":   [{"battery": {"preset": "B1"}, "count": 2},
	            {"battery": {"preset": "B2"}, "count": 2}],
	"loads":   [{"paper": "CL alt"}, {"paper": "ILs alt"}, {"paper": "CL 250"}],
	"solvers": ["sequential", "bestof"],
	"grids":   [{}, {"step_min": 2}]
}}`

// clusterSweepDigests resolves the sweep body's cell digests so tests can
// derive exact per-node ownership from the ring.
func clusterSweepDigests(t *testing.T) []string {
	t.Helper()
	var req batsched.SweepRequest
	if err := json.Unmarshal([]byte(clusterSweepBody), &req); err != nil {
		t.Fatal(err)
	}
	digests, _, err := batsched.CellDigests(req)
	if err != nil {
		t.Fatal(err)
	}
	return digests
}

// ownershipByNode counts how many of digests each member URL owns, in
// nodes[0]'s ring view (every node computes the identical placement).
func ownershipByNode(nodes []*clusterNode, digests []string) map[string]int {
	owned := make(map[string]int, len(nodes))
	for _, d := range digests {
		owned[nodes[0].clu.Owner(d)]++
	}
	return owned
}

// sweepNDJSON posts a sweep to url and returns the NDJSON lines.
func sweepNDJSON(t *testing.T, url, body string) []string {
	t.Helper()
	resp, data := postJSON(t, url+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, data)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	return lines
}

func nodeMetric(t *testing.T, node *clusterNode, name string) int64 {
	t.Helper()
	resp, err := http.Get(node.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line, name+" %d", &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s missing on %s", name, node.url)
	return 0
}

// TestClusterSweepMatchesSingleNode is the issue's acceptance test: a sweep
// against one node of a 3-node cluster streams byte-identical NDJSON to a
// single-node server, and the summed per-node /metrics prove each cell was
// evaluated exactly once cluster-wide — owned cells locally, the rest
// forwarded to their ring owners.
func TestClusterSweepMatchesSingleNode(t *testing.T) {
	nodes := newTestCluster(t, 3)
	digests := clusterSweepDigests(t)
	owned := ownershipByNode(nodes, digests)

	solo := newTestServer(t)
	soloLines := sweepNDJSON(t, solo.URL, clusterSweepBody)
	if len(soloLines) != len(digests) {
		t.Fatalf("solo sweep: %d lines, want %d", len(soloLines), len(digests))
	}

	gotLines := sweepNDJSON(t, nodes[0].url, clusterSweepBody)
	if len(gotLines) != len(digests) {
		t.Fatalf("cluster sweep: %d lines, want %d", len(gotLines), len(digests))
	}
	for i := range gotLines {
		if gotLines[i] != soloLines[i] {
			t.Fatalf("line %d differs from single-node run:\ncluster: %s\nsolo:    %s",
				i, gotLines[i], soloLines[i])
		}
	}

	// Exactly-once, proven from the same /metrics surface operators scrape:
	// each node evaluated precisely the cells it owns, and the cluster-wide
	// sum is the grid size.
	var sum int64
	for _, node := range nodes {
		evaluated := nodeMetric(t, node, "batserve_sweep_cells_evaluated_total")
		if want := int64(owned[node.url]); evaluated != want {
			t.Fatalf("%s evaluated %d cells, owns %d", node.url, evaluated, want)
		}
		sum += evaluated
	}
	if sum != int64(len(digests)) {
		t.Fatalf("cluster evaluated %d cells total, want %d", sum, len(digests))
	}
	if fwd := nodeMetric(t, nodes[0], "batserve_sweep_cells_forwarded_total"); fwd != int64(len(digests)-owned[nodes[0].url]) {
		t.Fatalf("node0 forwarded %d cells, want %d", fwd, len(digests)-owned[nodes[0].url])
	}
	if fb := nodeMetric(t, nodes[0], "batserve_sweep_forward_fallbacks_total"); fb != 0 {
		t.Fatalf("node0 fell back on %d cells with all peers healthy", fb)
	}

	// The same sweep submitted to EACH remaining node re-evaluates
	// nothing: their local misses resolve through the tiered backend's
	// remote fetch from the owners, so every node streams the identical
	// bytes and the cluster-wide total stays the grid size.
	for _, node := range nodes[1:] {
		againLines := sweepNDJSON(t, node.url, clusterSweepBody)
		for i := range againLines {
			if againLines[i] != soloLines[i] {
				t.Fatalf("overlapping sweep via %s: line %d differs from single-node run", node.url, i)
			}
		}
	}
	sum = 0
	for _, node := range nodes {
		sum += nodeMetric(t, node, "batserve_sweep_cells_evaluated_total")
	}
	if sum != int64(len(digests)) {
		t.Fatalf("after overlapping sweeps the cluster evaluated %d cells total, want still %d", sum, len(digests))
	}
}

// TestClusterPartitionFallsBackLocally kills one member mid-sweep: the
// surviving requester must complete the sweep — cells owned by the dead
// node fall back to local evaluation — and still stream byte-identical
// NDJSON, because a fallback evaluation is the same deterministic solver
// run the owner would have done.
func TestClusterPartitionFallsBackLocally(t *testing.T) {
	nodes := newTestCluster(t, 3)
	digests := clusterSweepDigests(t)
	owned := ownershipByNode(nodes, digests)

	// Kill the peer that owns the most cells, so the partition is exercised
	// by as many forwards as the run's ring placement allows.
	victim := 1
	if owned[nodes[2].url] > owned[nodes[1].url] {
		victim = 2
	}
	if owned[nodes[victim].url] == 0 {
		// Vanishingly unlikely (the ring left both peers empty-handed), but
		// then the test would not exercise the partition at all.
		t.Skipf("ring placement left peers owning no cells: %v", owned)
	}

	solo := newTestServer(t)
	soloLines := sweepNDJSON(t, solo.URL, clusterSweepBody)

	resp, err := http.Post(nodes[0].url+"/v1/sweep", "application/json",
		strings.NewReader(clusterSweepBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	var gotLines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		gotLines = append(gotLines, sc.Text())
		if len(gotLines) == 1 {
			// First line arrived: the sweep is in flight. Kill the victim —
			// in-flight forwards to it now fail and the survivors fall back.
			nodes[victim].ts.CloseClientConnections()
			nodes[victim].ts.Close()
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream broken after %d lines: %v", len(gotLines), err)
	}
	if len(gotLines) != len(digests) {
		t.Fatalf("sweep completed %d lines, want %d (survivors must finish the dead node's cells)",
			len(gotLines), len(digests))
	}
	for i := range gotLines {
		if gotLines[i] != soloLines[i] {
			t.Fatalf("line %d differs from single-node run after partition:\ncluster: %s\nsolo:    %s",
				i, gotLines[i], soloLines[i])
		}
	}

	// Every victim-owned cell reached the stream exactly one way: its
	// forward completed before the kill, or the requester fell back
	// locally. (The victim may have *evaluated* more cells than the
	// completed forwards — a response cut mid-flight still counts as a
	// fallback on the requester; duplicate work is the designed partition
	// cost, duplicate or missing lines are not.)
	st := nodes[0].svc.Stats()
	forwardedToVictim := st.CellsForwarded - int64(owned[nodes[3-victim].url])
	if st.ForwardFallbacks+forwardedToVictim != int64(owned[nodes[victim].url]) {
		t.Fatalf("fallbacks (%d) + completed victim forwards (%d) != victim-owned cells (%d; ownership %v)",
			st.ForwardFallbacks, forwardedToVictim, owned[nodes[victim].url], owned)
	}
	if st.CellsEvaluated != int64(owned[nodes[0].url])+st.ForwardFallbacks {
		t.Fatalf("requester evaluated %d cells, want its %d owned plus %d fallbacks",
			st.CellsEvaluated, owned[nodes[0].url], st.ForwardFallbacks)
	}
}

// TestReadyzReportsPeerOutages drives the readiness rule: peer trouble is
// reported by name but keeps the node ready (local fallback preserves
// capacity) until a majority of the ring is owned by unreachable peers.
func TestReadyzReportsPeerOutages(t *testing.T) {
	nodes := newTestCluster(t, 3)

	readyz := func() (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(nodes[0].url + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := readyz(); code != http.StatusOK || body["reasons"] != nil {
		t.Fatalf("healthy cluster: readyz = %d %v, want clean 200", code, body)
	}

	// tripBreaker kills a node and burns its breaker threshold with fetches
	// routed at digests it owns (scanned deterministically off the ring).
	tripBreaker := func(i int) {
		t.Helper()
		nodes[i].ts.CloseClientConnections()
		nodes[i].ts.Close()
		var d string
		for j := 0; ; j++ {
			d = fmt.Sprintf("readyz-probe-%d", j)
			if nodes[0].clu.Owner(d) == nodes[i].url {
				break
			}
		}
		for j := 0; j < 3; j++ {
			if n := nodes[0].clu.FetchCells([]string{d}, make([]json.RawMessage, 1)); n != 0 {
				t.Fatalf("fetch from dead peer filled %d cells", n)
			}
		}
	}

	tripBreaker(1)
	code, body := readyz()
	if code != http.StatusOK {
		t.Fatalf("one dead peer: readyz = %d %v, want 200 (minority outage keeps the node serving)", code, body)
	}
	reasons := fmt.Sprint(body["reasons"])
	if !strings.Contains(reasons, "peer:"+nodes[1].url+" unreachable") {
		t.Fatalf("readyz reasons %q do not name the dead peer %s", reasons, nodes[1].url)
	}

	tripBreaker(2)
	code, body = readyz()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("both peers dead: readyz = %d %v, want 503", code, body)
	}
	reasons = fmt.Sprint(body["reasons"])
	if !strings.Contains(reasons, "majority of owned shards unservable") {
		t.Fatalf("readyz reasons %q missing the majority-outage verdict", reasons)
	}
	if !strings.Contains(reasons, nodes[1].url) || !strings.Contains(reasons, nodes[2].url) {
		t.Fatalf("readyz reasons %q do not name both dead peers", reasons)
	}
}

// TestClusterViewAndPeerAPI exercises the node-to-node surface directly:
// cell get/put round-trips through the local tier, batched lookup answers
// nulls for absent digests, and /v1/cluster reports membership.
func TestClusterViewAndPeerAPI(t *testing.T) {
	nodes := newTestCluster(t, 3)

	// PUT a cell line, read it back, and see it in a batched lookup.
	line := `{"solver":"bestof","lifetime_min":12.5}`
	req, err := http.NewRequest(http.MethodPut, nodes[0].url+"/v1/cells/test-digest", strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("cell put status %d", resp.StatusCode)
	}
	getResp, data := getBody(t, nodes[0].url+"/v1/cells/test-digest")
	if getResp.StatusCode != http.StatusOK || string(data) != line {
		t.Fatalf("cell get = %d %q, want the stored line", getResp.StatusCode, data)
	}
	lookupResp, data := postJSON(t, nodes[0].url+"/v1/cells/lookup",
		`{"digests":["test-digest","absent-digest"]}`)
	if lookupResp.StatusCode != http.StatusOK {
		t.Fatalf("lookup status %d", lookupResp.StatusCode)
	}
	var lookup struct {
		Lines []json.RawMessage `json:"lines"`
	}
	if err := json.Unmarshal(data, &lookup); err != nil {
		t.Fatal(err)
	}
	if len(lookup.Lines) != 2 || string(lookup.Lines[0]) != line || string(lookup.Lines[1]) != "null" {
		t.Fatalf("lookup = %s, want [line, null]", data)
	}

	// The stored-but-unowned cell is absent on the peers: peer puts are
	// local-tier writes, never re-replicated.
	peerResp, _ := getBody(t, nodes[1].url+"/v1/cells/test-digest")
	if peerResp.StatusCode != http.StatusNotFound {
		t.Fatalf("peer serves a cell it never stored: %d", peerResp.StatusCode)
	}

	viewResp, data := getBody(t, nodes[0].url+"/v1/cluster")
	if viewResp.StatusCode != http.StatusOK {
		t.Fatalf("cluster view status %d", viewResp.StatusCode)
	}
	var view struct {
		Self    string   `json:"self"`
		Members []string `json:"members"`
	}
	if err := json.Unmarshal(data, &view); err != nil {
		t.Fatal(err)
	}
	if view.Self != nodes[0].url || len(view.Members) != 3 {
		t.Fatalf("cluster view = %s, want self %s among 3 members", data, nodes[0].url)
	}

	// Single-node servers must not expose the peer surface at all.
	solo := newTestServer(t)
	soloResp, _ := getBody(t, solo.URL+"/v1/cluster")
	if soloResp.StatusCode != http.StatusNotFound {
		t.Fatalf("single-node server answered /v1/cluster with %d, want 404", soloResp.StatusCode)
	}
}
