package main

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"batsched"
	"batsched/internal/faults"
	"batsched/internal/obs"
	"batsched/internal/store"
)

// legacyMetricNames is the golden list: every metric name the fprintf-based
// /metrics handler exposed before the registry existed. The exposition must
// keep emitting each one — same name, same label rendering — or deployed
// scrape configs silently lose data.
var legacyMetricNames = []string{
	`batserve_jobs{state="queued"}`,
	`batserve_jobs{state="running"}`,
	`batserve_jobs{state="done"}`,
	`batserve_jobs{state="failed"}`,
	`batserve_jobs{state="cancelled"}`,
	"batserve_job_queue_depth",
	"batserve_job_queue_bound",
	"batserve_job_cases_evaluated_total",
	"batserve_job_cases_from_cache_total",
	"batserve_workers_busy",
	"batserve_workers_total",
	"batserve_store_entries",
	"batserve_store_requests",
	"batserve_store_hits_total",
	"batserve_store_misses_total",
	"batserve_store_cell_hits_total",
	"batserve_store_cell_misses_total",
	"batserve_store_quarantined_total",
	"batserve_store_append_errors_total",
	"batserve_store_append_retries_total",
	"batserve_store_dropped_puts_total",
	"batserve_store_sync_errors_total",
	"batserve_store_degraded",
	"batserve_job_retries_total",
	"batserve_job_panics_total",
	"batserve_requests_shed_total",
	"batserve_cache_entries",
	"batserve_cache_compiles_total",
	"batserve_cache_hits_total",
	"batserve_sweep_cell_hits_total",
	"batserve_sweep_cells_evaluated_total",
	"batserve_store_errors_total",
	"batserve_search_states_total",
	"batserve_search_leaves_total",
	"batserve_search_memo_hits_total",
	"batserve_search_pruned_total",
	"batserve_search_lp_bounds_total",
	"batserve_search_lp_pruned_total",
	"batserve_search_steals_total",
	"batserve_search_shared_memo_hits_total",
	"batserve_sessions_open",
	"batserve_sessions_opened_total",
	"batserve_sessions_closed_total",
	"batserve_sessions_evicted_total",
	"batserve_session_steps_total",
	"batserve_session_events_dropped_total",
	"batserve_uptime_seconds",
}

// expositionLine matches one exposition sample: name, optional labels, and
// an integer or float value. Label values may contain braces and spaces
// (route patterns like "GET /v1/jobs/{id}"), so the label block is matched
// greedily up to the closing brace before the value.
var expositionLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (-?[0-9.eE+\-]+|\+Inf|NaN)$`)

// scrapeMetrics fetches /metrics and fails on anything but a parseable 200.
func scrapeMetrics(t *testing.T, ts *testServer) string {
	t.Helper()
	resp, data := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type %q", ct)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("unparseable exposition line %q", line)
		}
	}
	return string(data)
}

// TestMetricsGoldenNames pins the compatibility contract of the registry
// migration: every pre-registry metric name is still present, and the new
// histogram families joined them.
func TestMetricsGoldenNames(t *testing.T) {
	ts := newTestServer(t)
	// Touch the job path once so lifetime counters have moved and the
	// per-policy session families would show up if sessions had stepped.
	st := submitJob(t, ts, `{"scenario": `+jobScenario+`}`)
	pollJobDone(t, ts, st.ID)
	text := scrapeMetrics(t, ts)
	for _, name := range legacyMetricNames {
		if !strings.Contains(text, "\n"+name+" ") && !strings.HasPrefix(text, name+" ") {
			t.Errorf("legacy metric %s missing from exposition", name)
		}
	}
	// The histogram families the issue demands: at least five *_bucket
	// families, each with a cumulative +Inf bucket equal to its _count.
	families := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if i := strings.Index(line, "_bucket{"); i > 0 {
			families[line[:i]] = true
		}
	}
	for _, want := range []string{
		"batserve_store_append_seconds",
		"batserve_job_queue_wait_seconds",
		"batserve_job_run_seconds",
		"batserve_sweep_cell_eval_seconds",
		"batserve_session_policy_step_seconds",
		"batserve_http_request_seconds",
	} {
		if !families[want] {
			t.Errorf("histogram family %s has no buckets in exposition", want)
		}
	}
	if len(families) < 5 {
		t.Fatalf("want >= 5 bucket families, got %d: %v", len(families), families)
	}
	checkHistogramConsistency(t, text)
	// The job actually ran, so its latency histograms must have counted it.
	for _, name := range []string{"batserve_job_run_seconds_count", "batserve_sweep_cell_eval_seconds_count"} {
		if v := metricValue(t, ts, name); v == 0 {
			t.Errorf("%s = 0 after a completed job", name)
		}
	}
}

// checkHistogramConsistency verifies every bucket family in the text is
// cumulative (monotone non-decreasing in le) and ends with +Inf == _count.
func checkHistogramConsistency(t *testing.T, text string) {
	t.Helper()
	type state struct {
		last    uint64
		inf     uint64
		hasInf  bool
		samples int
	}
	fams := map[string]*state{}
	counts := map[string]uint64{}
	for _, line := range strings.Split(text, "\n") {
		// Label values may contain spaces (route patterns), so split on the
		// last space: series on the left, sample value on the right.
		cut := strings.LastIndex(line, " ")
		if cut < 0 {
			continue
		}
		series, value := line[:cut], line[cut+1:]
		if strings.Contains(series, "_bucket{") {
			v, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			// Key on the full series (labels minus le) so labeled families
			// like the per-policy and per-route histograms check per series.
			key := stripLE(series)
			s := fams[key]
			if s == nil {
				s = &state{}
				fams[key] = s
			}
			if v < s.last {
				t.Errorf("non-monotone buckets in %q: %d after %d", line, v, s.last)
			}
			s.last = v
			s.samples++
			if strings.Contains(series, `le="+Inf"`) {
				s.inf, s.hasInf = v, true
			}
			continue
		}
		if strings.HasSuffix(series, "_count") || strings.Contains(series, "_count{") {
			if v, err := strconv.ParseUint(value, 10, 64); err == nil {
				counts[strings.Replace(series, "_count", "", 1)] = v
			}
		}
	}
	for key, s := range fams {
		if !s.hasInf {
			t.Errorf("series %q has no +Inf bucket", key)
			continue
		}
		if c, ok := counts[key]; ok && c != s.inf {
			t.Errorf("series %q: +Inf bucket %d != _count %d", key, s.inf, c)
		}
	}
}

// stripLE removes the le label from a bucket series name, yielding the
// name+labels key its _count line uses.
func stripLE(series string) string {
	i := strings.Index(series, "_bucket")
	name, labels := series[:i], series[i+len("_bucket"):]
	labels = strings.TrimPrefix(labels, "{")
	labels = strings.TrimSuffix(labels, "}")
	var kept []string
	for _, part := range strings.Split(labels, ",") {
		if part != "" && !strings.HasPrefix(part, "le=") {
			kept = append(kept, part)
		}
	}
	if len(kept) == 0 {
		return name
	}
	return name + "{" + strings.Join(kept, ",") + "}"
}

// TestJobTraceEndToEnd is the issue's tracing acceptance test: one job
// submission produces a retrievable trace spanning the HTTP handler, the
// queued run, the service sweep, the store lookup, and the per-cell work.
func TestJobTraceEndToEnd(t *testing.T) {
	ts := newTestServer(t)
	st := submitJob(t, ts, `{"scenario": `+jobScenario+`}`)
	if st.TraceID == "" {
		t.Fatal("job status has no trace_id")
	}
	done := pollJobDone(t, ts, st.ID)
	if done.TraceID != st.TraceID {
		t.Fatalf("trace_id changed across polls: %q then %q", st.TraceID, done.TraceID)
	}
	resp, data := getBody(t, ts.URL+"/debug/traces?trace="+st.TraceID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces status %d", resp.StatusCode)
	}
	var dump obs.TraceDump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("trace dump: %v", err)
	}
	if len(dump.Spans) < 4 {
		t.Fatalf("want >= 4 spans in the job trace, got %d: %s", len(dump.Spans), data)
	}
	names := map[string]bool{}
	for _, s := range dump.Spans {
		if s.Trace != st.TraceID {
			t.Fatalf("span %q leaked from trace %q into filter %q", s.Name, s.Trace, st.TraceID)
		}
		names[s.Name] = true
	}
	for _, want := range []string{"http POST /v1/jobs", "jobs.run", "service.sweep", "store.lookup", "sweep.cell"} {
		if !names[want] {
			t.Errorf("span %q missing from job trace (have %v)", want, names)
		}
	}
}

// TestTraceNoSpanLeak pins the span-accounting invariant: after traffic
// quiesces, started == ended (Active is zero) — no handler or worker path
// forgets to End a span.
func TestTraceNoSpanLeak(t *testing.T) {
	ts := newTestServer(t)
	st := submitJob(t, ts, `{"scenario": `+jobScenario+`}`)
	pollJobDone(t, ts, st.ID)
	postJSON(t, ts.URL+"/v1/run", runBody)
	postJSON(t, ts.URL+"/v1/run", `{"bad":`) // 400 path
	resp, data := getBody(t, ts.URL+"/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces status %d", resp.StatusCode)
	}
	var dump obs.TraceDump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatal(err)
	}
	// The /debug/traces request itself is the only span possibly open.
	if dump.Active > 1 {
		t.Fatalf("span leak: %d spans still active after traffic quiesced", dump.Active)
	}
	if dump.Started == 0 {
		t.Fatal("tracer recorded no spans")
	}
}

// TestRequestIDHeader pins the request-id contract: every response carries
// X-Request-ID — generated when absent, echoed when supplied — and error
// payloads repeat it in JSON.
func TestRequestIDHeader(t *testing.T) {
	ts := newTestServer(t)

	resp, _ := getBody(t, ts.URL+"/healthz")
	if id := resp.Header.Get("X-Request-ID"); len(id) != 16 {
		t.Fatalf("generated X-Request-ID %q, want 16 hex chars", id)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "my-correlation-id")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "my-correlation-id" {
		t.Fatalf("echoed X-Request-ID %q, want my-correlation-id", got)
	}

	// Error payloads carry the id too, including guard rejections: a
	// draining server sheds with 503 before the handler runs, and the
	// rejection must still be correlatable.
	ts.app.draining.Store(true)
	resp3, data := postJSON(t, ts.URL+"/v1/run", runBody)
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status %d, want 503", resp3.StatusCode)
	}
	if id := resp3.Header.Get("X-Request-ID"); id == "" {
		t.Fatal("503 rejection missing X-Request-ID")
	}
	var payload map[string]string
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatal(err)
	}
	if payload["request_id"] != resp3.Header.Get("X-Request-ID") {
		t.Fatalf("error payload request_id %q != header %q", payload["request_id"], resp3.Header.Get("X-Request-ID"))
	}
	ts.app.draining.Store(false)
}

// TestRequestIDOn429 covers the other guard rejection: load shedding keeps
// the request-id contract too.
func TestRequestIDOn429(t *testing.T) {
	st, err := batsched.OpenResultStore("")
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServerOn(t, st, func(a *app) {
		a.maxInflight = 1
	})
	// Saturate the single slot from inside the guard: inflate the counter
	// directly so the next request sheds deterministically.
	ts.app.inflight.Add(1)
	defer ts.app.inflight.Add(-1)
	resp, data := postJSON(t, ts.URL+"/v1/run", runBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if id := resp.Header.Get("X-Request-ID"); id == "" {
		t.Fatal("429 rejection missing X-Request-ID")
	}
	var payload map[string]string
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatal(err)
	}
	if payload["request_id"] == "" {
		t.Fatal("429 payload missing request_id")
	}
}

// TestTraceparentPropagation pins W3C trace-context interop: an incoming
// traceparent is continued (same trace id out), and responses always carry
// a traceparent for downstream correlation.
func TestTraceparentPropagation(t *testing.T) {
	ts := newTestServer(t)
	const trace = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("traceparent", "00-"+trace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tp := resp.Header.Get("traceparent")
	if !strings.Contains(tp, trace) {
		t.Fatalf("response traceparent %q does not continue trace %s", tp, trace)
	}

	// Without an incoming header a fresh trace is minted, well-formed.
	resp2, _ := getBody(t, ts.URL+"/healthz")
	if tp := resp2.Header.Get("traceparent"); !regexp.MustCompile(`^00-[0-9a-f]{32}-[0-9a-f]{16}-01$`).MatchString(tp) {
		t.Fatalf("fresh traceparent %q malformed", tp)
	}
}

// TestChaosJobTracingNoSpanLeak runs a job against a store with injected
// transient write faults while tracing is armed: every span opened along
// the retried, fault-ridden path must still be closed once the job is
// terminal — error handling may not leak spans.
func TestChaosJobTracingNoSpanLeak(t *testing.T) {
	inj := faults.New(20260807,
		faults.Rule{Op: faults.OpStoreWrite, P: 0.5, Count: 8})
	st, err := store.OpenWith(store.Options{
		Path:     filepath.Join(t.TempDir(), "chaos.ndjson"),
		WrapFile: faults.WrapStore(inj),
		Sleep:    func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServerOn(t, st, nil)
	job := submitJob(t, ts, `{"scenario": `+jobScenario+`}`)
	if job.TraceID == "" {
		t.Fatal("chaos job has no trace_id")
	}
	pollJobDone(t, ts, job.ID)
	tr := ts.app.obs.tracer
	if active := tr.Active(); active != 0 {
		t.Fatalf("span leak under injected store faults: %d spans still active", active)
	}
	if tr.Started() == 0 {
		t.Fatal("tracer recorded no spans for the chaos job")
	}
}
