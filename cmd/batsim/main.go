// Command batsim simulates a bank of KiBaM batteries serving one of the
// paper's test loads under a chosen scheduling policy and reports the
// system lifetime; with -trace it additionally writes the charge evolution
// as TSV.
//
// Usage:
//
//	batsim [-battery B1|B2] [-capacity AMPMIN] [-n COUNT] [-load NAME]
//	       [-policy sequential|roundrobin|bestof|lookahead:MIN] [-horizon MIN]
//	       [-continuous] [-trace FILE] [-sample N]
//
// With -sweep it instead expands a scenario grid — banks × loads × policies
// — and runs every combination over a parallel worker pool, printing one
// result row per scenario in deterministic order:
//
//	batsim -sweep [-banks 2xB1,2xB2] [-loads all|NAME,NAME,...]
//	       [-policies seq,rr,bestof,optimal] [-workers N] [-horizon MIN]
//
// With -spec it runs a serializable scenario file (the same JSON the
// batserve HTTP service accepts) and prints one row per cell:
//
//	batsim -spec scenario.json [-workers N]
//
// Examples:
//
//	batsim -n 2 -load "ILs alt" -policy bestof
//	batsim -battery B2 -load "CL 250" -policy sequential -continuous
//	batsim -sweep -banks 2xB1 -loads all -policies seq,rr,bestof,optimal
//	batsim -spec table5.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"batsched"
)

func main() {
	batteryName := flag.String("battery", "B1", "battery preset: B1 (5.5 A·min) or B2 (11 A·min)")
	capacity := flag.Float64("capacity", 0, "override the battery capacity in A·min")
	count := flag.Int("n", 1, "number of identical batteries")
	loadName := flag.String("load", "ILs alt", "paper load name (CL 250, ILs alt, ILl 500, ...)")
	loadFile := flag.String("loadfile", "", "read the load from a file instead (see internal/load.Parse for the format)")
	policyName := flag.String("policy", "bestof", "scheduling policy: sequential, roundrobin, bestof, lookahead:MIN")
	horizon := flag.Float64("horizon", batsched.DefaultHorizonMin, "load horizon in minutes")
	continuous := flag.Bool("continuous", false, "simulate on the continuous KiBaM instead of the discretized model")
	tracePath := flag.String("trace", "", "write a TSV charge trace to this file (discrete mode only)")
	sample := flag.Int("sample", 10, "trace sampling interval in steps")
	doSweep := flag.Bool("sweep", false, "run a scenario sweep instead of a single simulation")
	specPath := flag.String("spec", "", "run a serializable scenario file (JSON) instead of flag wiring")
	banksSpec := flag.String("banks", "2xB1", "sweep banks, comma-separated NxB1/NxB2 (e.g. 2xB1,1xB2)")
	loadsSpec := flag.String("loads", "all", "sweep loads: 'all' or comma-separated paper load names")
	policiesSpec := flag.String("policies", "seq,rr,bestof", "sweep policies, comma-separated registry names (seq, rr, bestof, lookahead:MIN, optimal, optimal-ta, montecarlo)")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = number of CPUs)")
	flag.Parse()

	var err error
	switch {
	case *specPath != "":
		err = runSpecFile(*specPath, *workers, os.Stdout)
	case *doSweep:
		err = runSweep(*banksSpec, *loadsSpec, *policiesSpec, *horizon, *workers, os.Stdout)
	default:
		if *loadFile != "" {
			*loadName = *loadFile
		}
		err = run(*batteryName, *capacity, *count, *loadName, *policyName, *horizon, *continuous, *tracePath, *sample)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "batsim: %v\n", err)
		os.Exit(1)
	}
}

// runSpecFile executes a serializable scenario file — the exact JSON the
// batserve /v1/sweep endpoint accepts — and prints one row per cell.
func runSpecFile(path string, workers int, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	scenario, err := batsched.ParseScenario(data)
	if err != nil {
		return err
	}
	spec, err := scenario.Compile()
	if err != nil {
		return err
	}
	results, err := batsched.RunSweep(spec, batsched.SweepOptions{Workers: workers})
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "grid\tbank\tload\tpolicy\tlifetime-min\tdecisions")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\terror: %v\t\n", r.Grid, r.Bank, r.Load, r.Policy, r.Err)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.2f\t%d\n", r.Grid, r.Bank, r.Load, r.Policy, r.Lifetime, r.Decisions)
	}
	return tw.Flush()
}

// runSweep expands the flag grammar into a compiled scenario, runs it, and
// prints one aligned row per scenario.
func runSweep(banksSpec, loadsSpec, policiesSpec string, horizon float64, workers int, w io.Writer) error {
	spec, err := buildSweepSpec(banksSpec, loadsSpec, policiesSpec, horizon)
	if err != nil {
		return err
	}
	results, err := batsched.RunSweep(spec, batsched.SweepOptions{Workers: workers})
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "bank\tload\tpolicy\tlifetime-min\tdecisions")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(tw, "%s\t%s\t%s\terror: %v\t\n", r.Bank, r.Load, r.Policy, r.Err)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\t%d\n", r.Bank, r.Load, r.Policy, r.Lifetime, r.Decisions)
	}
	return tw.Flush()
}

// buildSweepSpec parses the comma-separated bank, load, and policy lists
// into a serializable scenario and compiles it.
func buildSweepSpec(banksSpec, loadsSpec, policiesSpec string, horizon float64) (batsched.SweepSpec, error) {
	var scenario batsched.Scenario
	for _, s := range strings.Split(banksSpec, ",") {
		bank, err := batsched.CLIBank(s)
		if err != nil {
			return batsched.SweepSpec{}, err
		}
		scenario.Banks = append(scenario.Banks, bank)
	}
	loadNames := batsched.PaperLoadNames()
	if strings.TrimSpace(loadsSpec) != "all" {
		loadNames = nil
		for _, s := range strings.Split(loadsSpec, ",") {
			loadNames = append(loadNames, strings.TrimSpace(s))
		}
	}
	for _, name := range loadNames {
		scenario.Loads = append(scenario.Loads, batsched.LoadSpec{Paper: name, HorizonMin: horizon})
	}
	for _, s := range strings.Split(policiesSpec, ",") {
		solver, err := batsched.CLISolver(s)
		if err != nil {
			return batsched.SweepSpec{}, err
		}
		scenario.Solvers = append(scenario.Solvers, solver)
	}
	return scenario.Compile()
}

func run(batteryName string, capacity float64, count int, loadName, policyName string, horizon float64, continuous bool, tracePath string, sample int) error {
	b, err := pickBattery(batteryName, capacity)
	if err != nil {
		return err
	}
	policy, err := pickPolicy(policyName)
	if err != nil {
		return err
	}
	l, err := pickLoad(loadName, horizon)
	if err != nil {
		return err
	}
	bank := batsched.Bank(b, count)

	if continuous {
		res, err := batsched.ContinuousRun(bank, l, policy)
		if err != nil {
			return err
		}
		fmt.Printf("%d x %s on %s under %s (continuous KiBaM)\n", count, b, loadName, policy.Name())
		fmt.Printf("lifetime: %.4f min; charge left: %.1f%%\n",
			res.LifetimeMinutes, 100*res.RemainingFraction(bank))
		return nil
	}

	p, err := batsched.NewProblem(bank, l)
	if err != nil {
		return err
	}
	lifetime, schedule, err := p.PolicyRun(policy)
	if err != nil {
		return err
	}
	fmt.Printf("%d x %s on %s under %s (discretized KiBaM)\n", count, b, loadName, policy.Name())
	fmt.Printf("lifetime: %.2f min over %d scheduling decisions\n", lifetime, len(schedule))
	if tracePath == "" {
		return nil
	}
	points, err := p.TraceSchedule(schedule, sample)
	if err != nil {
		return err
	}
	f, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "# time\tper-battery total...\tper-battery available...\tactive")
	for _, pt := range points {
		fmt.Fprintf(f, "%.2f", pt.Minutes)
		for _, g := range pt.Total {
			fmt.Fprintf(f, "\t%.4f", g)
		}
		for _, a := range pt.Available {
			fmt.Fprintf(f, "\t%.4f", a)
		}
		fmt.Fprintf(f, "\t%d\n", pt.Active+1)
	}
	fmt.Printf("trace: %s (%d samples)\n", tracePath, len(points))
	return nil
}

// pickBattery, pickPolicy, and pickLoad delegate to the shared spec-layer
// flag grammars (the former per-main switch statements are gone).
func pickBattery(name string, capacity float64) (batsched.BatteryParams, error) {
	return batsched.CLIBattery(name, capacity)
}

// pickPolicy resolves a solver name to a simulable deterministic policy.
func pickPolicy(name string) (batsched.Policy, error) {
	solver, err := batsched.CLISolver(name)
	if err != nil {
		return nil, err
	}
	pc, err := batsched.BuildSolver(solver)
	if err != nil {
		return nil, err
	}
	if pc.Policy == nil {
		return nil, fmt.Errorf("%q is not a step-by-step policy; use -sweep or -spec for it", pc.Name)
	}
	return pc.Policy, nil
}

func pickLoad(name string, horizon float64) (batsched.Load, error) {
	return batsched.CLILoad(name, horizon)
}
