// Command batsim simulates a bank of KiBaM batteries serving one of the
// paper's test loads under a chosen scheduling policy and reports the
// system lifetime; with -trace it additionally writes the charge evolution
// as TSV.
//
// Usage:
//
//	batsim [-battery B1|B2] [-capacity AMPMIN] [-n COUNT] [-load NAME]
//	       [-policy sequential|roundrobin|bestof] [-horizon MIN]
//	       [-continuous] [-trace FILE] [-sample N]
//
// With -sweep it instead expands a scenario grid — banks × loads × policies
// — and runs every combination over a parallel worker pool, printing one
// result row per scenario in deterministic order:
//
//	batsim -sweep [-banks 2xB1,2xB2] [-loads all|NAME,NAME,...]
//	       [-policies seq,rr,bestof,optimal] [-workers N] [-horizon MIN]
//
// Examples:
//
//	batsim -n 2 -load "ILs alt" -policy bestof
//	batsim -battery B2 -load "CL 250" -policy sequential -continuous
//	batsim -sweep -banks 2xB1 -loads all -policies seq,rr,bestof,optimal
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"batsched/internal/battery"
	"batsched/internal/core"
	"batsched/internal/experiments"
	"batsched/internal/load"
	"batsched/internal/sched"
	"batsched/internal/sweep"
)

func main() {
	batteryName := flag.String("battery", "B1", "battery preset: B1 (5.5 A·min) or B2 (11 A·min)")
	capacity := flag.Float64("capacity", 0, "override the battery capacity in A·min")
	count := flag.Int("n", 1, "number of identical batteries")
	loadName := flag.String("load", "ILs alt", "paper load name (CL 250, ILs alt, ILl 500, ...)")
	loadFile := flag.String("loadfile", "", "read the load from a file instead (see internal/load.Parse for the format)")
	policyName := flag.String("policy", "bestof", "scheduling policy: sequential, roundrobin, bestof, lookahead:MIN")
	horizon := flag.Float64("horizon", experiments.Horizon, "load horizon in minutes")
	continuous := flag.Bool("continuous", false, "simulate on the continuous KiBaM instead of the discretized model")
	tracePath := flag.String("trace", "", "write a TSV charge trace to this file (discrete mode only)")
	sample := flag.Int("sample", 10, "trace sampling interval in steps")
	doSweep := flag.Bool("sweep", false, "run a scenario sweep instead of a single simulation")
	banksSpec := flag.String("banks", "2xB1", "sweep banks, comma-separated NxB1/NxB2 (e.g. 2xB1,1xB2)")
	loadsSpec := flag.String("loads", "all", "sweep loads: 'all' or comma-separated paper load names")
	policiesSpec := flag.String("policies", "seq,rr,bestof", "sweep policies, comma-separated (seq, rr, bestof, lookahead:MIN, optimal)")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = number of CPUs)")
	flag.Parse()

	if *doSweep {
		if err := runSweep(*banksSpec, *loadsSpec, *policiesSpec, *horizon, *workers, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "batsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *loadFile != "" {
		*loadName = *loadFile
	}
	if err := run(*batteryName, *capacity, *count, *loadName, *policyName, *horizon, *continuous, *tracePath, *sample); err != nil {
		fmt.Fprintf(os.Stderr, "batsim: %v\n", err)
		os.Exit(1)
	}
}

// runSweep expands the flag grammar into a sweep.Spec, runs it, and prints
// one aligned row per scenario.
func runSweep(banksSpec, loadsSpec, policiesSpec string, horizon float64, workers int, w io.Writer) error {
	spec, err := buildSweepSpec(banksSpec, loadsSpec, policiesSpec, horizon)
	if err != nil {
		return err
	}
	results, err := sweep.Run(spec, sweep.Options{Workers: workers})
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "bank\tload\tpolicy\tlifetime-min\tdecisions")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(tw, "%s\t%s\t%s\terror: %v\t\n", r.Bank, r.Load, r.Policy, r.Err)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\t%d\n", r.Bank, r.Load, r.Policy, r.Lifetime, r.Decisions)
	}
	return tw.Flush()
}

// buildSweepSpec parses the comma-separated bank, load, and policy lists.
func buildSweepSpec(banksSpec, loadsSpec, policiesSpec string, horizon float64) (sweep.Spec, error) {
	var spec sweep.Spec
	for _, s := range strings.Split(banksSpec, ",") {
		s = strings.TrimSpace(s)
		countStr, batName, ok := strings.Cut(s, "x")
		if !ok {
			return spec, fmt.Errorf("bad bank %q (want NxB1 or NxB2)", s)
		}
		n, err := strconv.Atoi(countStr)
		if err != nil || n < 1 {
			return spec, fmt.Errorf("bad bank count in %q", s)
		}
		b, err := pickBattery(batName, 0)
		if err != nil {
			return spec, err
		}
		spec.Banks = append(spec.Banks, sweep.BankOf(s, b, n))
	}
	var loadNames []string
	if strings.TrimSpace(loadsSpec) != "all" {
		for _, s := range strings.Split(loadsSpec, ",") {
			loadNames = append(loadNames, strings.TrimSpace(s))
		}
	}
	loads, err := sweep.PaperLoads(loadNames, horizon)
	if err != nil {
		return spec, err
	}
	spec.Loads = loads
	for _, s := range strings.Split(policiesSpec, ",") {
		s = strings.TrimSpace(s)
		if strings.EqualFold(s, "optimal") || strings.EqualFold(s, "opt") {
			spec.Policies = append(spec.Policies, sweep.OptimalCase())
			continue
		}
		p, err := pickPolicy(s)
		if err != nil {
			return spec, err
		}
		spec.Policies = append(spec.Policies, sweep.Policies(p)...)
	}
	return spec, nil
}

func run(batteryName string, capacity float64, count int, loadName, policyName string, horizon float64, continuous bool, tracePath string, sample int) error {
	b, err := pickBattery(batteryName, capacity)
	if err != nil {
		return err
	}
	policy, err := pickPolicy(policyName)
	if err != nil {
		return err
	}
	l, err := pickLoad(loadName, horizon)
	if err != nil {
		return err
	}
	bank := battery.Bank(b, count)

	if continuous {
		res, err := sched.ContinuousRun(bank, l, policy)
		if err != nil {
			return err
		}
		fmt.Printf("%d x %s on %s under %s (continuous KiBaM)\n", count, b, loadName, policy.Name())
		fmt.Printf("lifetime: %.4f min; charge left: %.1f%%\n",
			res.LifetimeMinutes, 100*res.RemainingFraction(bank))
		return nil
	}

	p, err := core.NewProblem(bank, l)
	if err != nil {
		return err
	}
	lifetime, schedule, err := p.PolicyRun(policy)
	if err != nil {
		return err
	}
	fmt.Printf("%d x %s on %s under %s (discretized KiBaM)\n", count, b, loadName, policy.Name())
	fmt.Printf("lifetime: %.2f min over %d scheduling decisions\n", lifetime, len(schedule))
	if tracePath == "" {
		return nil
	}
	points, err := p.TraceSchedule(schedule, sample)
	if err != nil {
		return err
	}
	f, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "# time\tper-battery total...\tper-battery available...\tactive")
	for _, pt := range points {
		fmt.Fprintf(f, "%.2f", pt.Minutes)
		for _, g := range pt.Total {
			fmt.Fprintf(f, "\t%.4f", g)
		}
		for _, a := range pt.Available {
			fmt.Fprintf(f, "\t%.4f", a)
		}
		fmt.Fprintf(f, "\t%d\n", pt.Active+1)
	}
	fmt.Printf("trace: %s (%d samples)\n", tracePath, len(points))
	return nil
}

func pickBattery(name string, capacity float64) (battery.Params, error) {
	var b battery.Params
	switch strings.ToUpper(name) {
	case "B1":
		b = battery.B1()
	case "B2":
		b = battery.B2()
	default:
		return battery.Params{}, fmt.Errorf("unknown battery %q (want B1 or B2)", name)
	}
	if capacity != 0 {
		if capacity < 0 {
			return battery.Params{}, fmt.Errorf("capacity override must be positive (got %v)", capacity)
		}
		b = b.WithCapacity(capacity)
	}
	return b, b.Validate()
}

func pickPolicy(name string) (sched.Policy, error) {
	lower := strings.ToLower(name)
	if rest, ok := strings.CutPrefix(lower, "lookahead:"); ok {
		horizon, err := strconv.ParseFloat(rest, 64)
		if err != nil || horizon <= 0 {
			return nil, fmt.Errorf("bad lookahead horizon %q (want lookahead:MINUTES)", rest)
		}
		return sched.Lookahead(horizon), nil
	}
	switch lower {
	case "sequential", "seq":
		return sched.Sequential(), nil
	case "roundrobin", "rr":
		return sched.RoundRobin(), nil
	case "bestof", "best", "bestoftwo":
		return sched.BestAvailable(), nil
	default:
		return nil, fmt.Errorf("unknown policy %q (want sequential, roundrobin, bestof, lookahead:MIN)", name)
	}
}

// pickLoad resolves a paper load name, or a load file when the name refers
// to an existing file.
func pickLoad(name string, horizon float64) (load.Load, error) {
	if _, err := os.Stat(name); err == nil {
		return load.ParseFile(name)
	}
	return load.Paper(name, horizon)
}
