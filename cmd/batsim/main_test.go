package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSweepMode drives the -sweep path end to end and spot-checks the
// Table 5 values in the printed rows.
func TestRunSweepMode(t *testing.T) {
	var buf strings.Builder
	if err := runSweep("2xB1", "CL alt,ILs alt", "seq,bestof,optimal", 200, 2, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+2*3 {
		t.Fatalf("got %d lines, want header + 6 rows:\n%s", len(lines), buf.String())
	}
	for _, want := range []string{
		"2xB1  CL alt   sequential   5.40",
		"2xB1  CL alt   optimal      6.46",
		"2xB1  ILs alt  best-of-two  16.28",
		"2xB1  ILs alt  optimal      16.90",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output misses %q:\n%s", want, buf.String())
		}
	}
}

func TestBuildSweepSpec(t *testing.T) {
	spec, err := buildSweepSpec("2xB1,1xB2", "all", "rr,optimal", 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Banks) != 2 || len(spec.Loads) != 10 || len(spec.Policies) != 2 {
		t.Fatalf("spec %d banks, %d loads, %d policies", len(spec.Banks), len(spec.Loads), len(spec.Policies))
	}
	if !spec.Policies[1].Optimal {
		t.Error("optimal policy case not flagged")
	}
	for _, bad := range []string{"B1", "0xB1", "2xB9", "twoxB1"} {
		if _, err := buildSweepSpec(bad, "all", "rr", 200); err == nil {
			t.Errorf("accepted bank spec %q", bad)
		}
	}
	if _, err := buildSweepSpec("2xB1", "no such load", "rr", 200); err == nil {
		t.Error("accepted unknown load")
	}
	if _, err := buildSweepSpec("2xB1", "all", "greedy", 200); err == nil {
		t.Error("accepted unknown policy")
	}
}

func TestPickBattery(t *testing.T) {
	b, err := pickBattery("B1", 0)
	if err != nil || b.Capacity != 5.5 {
		t.Fatalf("B1: %v %v", b, err)
	}
	b, err = pickBattery("b2", 0)
	if err != nil || b.Capacity != 11 {
		t.Fatalf("b2 (case-insensitive): %v %v", b, err)
	}
	b, err = pickBattery("B1", 7.5)
	if err != nil || b.Capacity != 7.5 {
		t.Fatalf("capacity override: %v %v", b, err)
	}
	if _, err := pickBattery("B3", 0); err == nil {
		t.Fatal("accepted unknown battery")
	}
	if _, err := pickBattery("B1", -2); err == nil {
		t.Fatal("accepted negative capacity override")
	}
}

func TestPickPolicy(t *testing.T) {
	for name, want := range map[string]string{
		"sequential": "sequential",
		"seq":        "sequential",
		"roundrobin": "round robin",
		"rr":         "round robin",
		"bestof":     "best-of-two",
		"best":       "best-of-two",
	} {
		p, err := pickPolicy(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("%s -> %s, want %s", name, p.Name(), want)
		}
	}
	if _, err := pickPolicy("greedy"); err == nil {
		t.Fatal("accepted unknown policy")
	}
	p, err := pickPolicy("lookahead:5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Name(), "lookahead") {
		t.Fatalf("lookahead policy named %q", p.Name())
	}
	if _, err := pickPolicy("lookahead:zero"); err == nil {
		t.Fatal("accepted bad lookahead horizon")
	}
	if _, err := pickPolicy("lookahead:-3"); err == nil {
		t.Fatal("accepted negative lookahead horizon")
	}
}

func TestPickLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "custom.load")
	if err := os.WriteFile(path, []byte("2x(1 0.5 1 0)\n50x(1 0.25 1 0)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := pickLoad(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 104 {
		t.Fatalf("%d segments", l.Len())
	}
	// Non-file names fall back to the paper loads.
	if _, err := pickLoad("ILs alt", 60); err != nil {
		t.Fatal(err)
	}
	if _, err := pickLoad("no-such-load", 60); err == nil {
		t.Fatal("accepted unknown load name")
	}
}

func TestRunDiscreteWithTrace(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.tsv")
	if err := run("B1", 0, 2, "ILs alt", "bestof", 120, false, trace, 20); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 20 {
		t.Fatalf("trace has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "#") {
		t.Fatal("no header comment")
	}
	// Data rows: time + 2 totals + 2 avails + active = 6 columns.
	if cols := strings.Split(lines[1], "\t"); len(cols) != 6 {
		t.Fatalf("row has %d columns", len(cols))
	}
}

func TestRunContinuous(t *testing.T) {
	if err := run("B2", 0, 1, "CL 250", "seq", 120, true, "", 10); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("B9", 0, 1, "CL 250", "seq", 120, false, "", 10); err == nil {
		t.Fatal("unknown battery accepted")
	}
	if err := run("B1", 0, 1, "nope", "seq", 120, false, "", 10); err == nil {
		t.Fatal("unknown load accepted")
	}
	if err := run("B1", 0, 1, "CL 250", "nope", 120, false, "", 10); err == nil {
		t.Fatal("unknown policy accepted")
	}
	// Horizon too short: the battery outlives the load.
	if err := run("B1", 0, 1, "CL 250", "seq", 1, false, "", 10); err == nil {
		t.Fatal("short horizon accepted")
	}
}

// TestRunSpecFile drives the -spec path end to end: the same scenario JSON
// the batserve HTTP service accepts must produce the same Table 5 values.
func TestRunSpecFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenario.json")
	scenario := `{
		"banks":   [{"battery": {"preset": "B1"}, "count": 2}],
		"loads":   [{"paper": "CL alt"}, {"paper": "ILs alt"}],
		"solvers": ["sequential", "bestof", "optimal"]
	}`
	if err := os.WriteFile(path, []byte(scenario), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := runSpecFile(path, 2, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+2*3 {
		t.Fatalf("got %d lines, want header + 6 rows:\n%s", len(lines), buf.String())
	}
	for _, want := range []string{
		"paper  2xB1  CL alt   sequential   5.40",
		"paper  2xB1  CL alt   optimal      6.46",
		"paper  2xB1  ILs alt  best-of-two  16.28",
		"paper  2xB1  ILs alt  optimal      16.90",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output misses %q:\n%s", want, buf.String())
		}
	}
}

func TestRunSpecFileErrors(t *testing.T) {
	if err := runSpecFile(filepath.Join(t.TempDir(), "nope.json"), 1, &strings.Builder{}); err == nil {
		t.Fatal("missing spec file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"banks":[],"loads":[],"solvers":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSpecFile(bad, 1, &strings.Builder{}); err == nil {
		t.Fatal("empty scenario accepted")
	}
}
