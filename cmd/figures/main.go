// Command figures regenerates the data series of Figure 6 of the DSN 2009
// battery-scheduling paper: the total and available charge of two B1
// batteries under the ILs alt load, together with the battery schedule, for
// the best-of-two (6a) and the optimal (6b) scheduler.
//
// Usage:
//
//	figures [-fig 6a|6b|both] [-sample N] [-out DIR]
//
// Output is gnuplot-ready TSV; with -out the panels are written to
// DIR/figure6a.tsv and DIR/figure6b.tsv, otherwise to stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"batsched/internal/experiments"
)

func main() {
	fig := flag.String("fig", "both", "which panel: 6a, 6b, both")
	sample := flag.Int("sample", 10, "sample every N discretization steps")
	out := flag.String("out", "", "directory for TSV files (default: stdout)")
	flag.Parse()

	panels := []struct {
		name string
		gen  func(int) (*experiments.Figure6Series, error)
	}{
		{"6a", experiments.Figure6BestOfTwo},
		{"6b", experiments.Figure6Optimal},
	}
	for _, p := range panels {
		if *fig != "both" && *fig != p.name {
			continue
		}
		series, err := p.gen(*sample)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", p.name, err)
			os.Exit(1)
		}
		var w io.Writer = os.Stdout
		if *out != "" {
			path := filepath.Join(*out, "figure"+p.name+".tsv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
			w = f
			fmt.Printf("figure %s -> %s (lifetime %.2f min)\n", p.name, path, series.Lifetime)
			defer f.Close()
		}
		if err := series.WriteTSV(w); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}
}
