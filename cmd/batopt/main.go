// Command batopt computes the optimal battery schedule for one of the
// paper's test loads, using both routes of the reproduction: the direct
// branch-and-bound search over scheduling decisions and, unless -direct is
// given, the paper's method — minimum-cost reachability on the TA-KiBaM
// network of priced timed automata.
//
// Usage:
//
//	batopt [-battery B1|B2] [-n COUNT] [-load NAME] [-horizon MIN]
//	       [-direct] [-budget N] [-export FILE.xml] [-v]
//
// With -export, the TA-KiBaM network is additionally written as an Uppaal
// 4.x XML model for cross-checking against the original toolchain.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"batsched/internal/battery"
	"batsched/internal/core"
	"batsched/internal/dkibam"
	"batsched/internal/experiments"
	"batsched/internal/load"
	"batsched/internal/mc"
	"batsched/internal/takibam"
)

func main() {
	batteryName := flag.String("battery", "B1", "battery preset: B1 or B2")
	count := flag.Int("n", 2, "number of identical batteries")
	loadName := flag.String("load", "ILs alt", "paper load name")
	horizon := flag.Float64("horizon", experiments.Horizon, "load horizon in minutes")
	direct := flag.Bool("direct", false, "skip the timed-automata checker, use only the direct search")
	budget := flag.Int("budget", 0, "state budget for the timed-automata checker (0 = default)")
	export := flag.String("export", "", "write the TA-KiBaM as an Uppaal XML model to this file")
	verbose := flag.Bool("v", false, "print the full optimal schedule")
	flag.Parse()

	if err := run(*batteryName, *count, *loadName, *horizon, *direct, *budget, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "batopt: %v\n", err)
		os.Exit(1)
	}
	if *export != "" {
		if err := exportModel(*batteryName, *count, *loadName, *horizon, *export); err != nil {
			fmt.Fprintf(os.Stderr, "batopt: export: %v\n", err)
			os.Exit(1)
		}
	}
}

func exportModel(batteryName string, count int, loadName string, horizon float64, path string) error {
	b, err := pickBattery(batteryName)
	if err != nil {
		return err
	}
	l, err := load.Paper(loadName, horizon)
	if err != nil {
		return err
	}
	cl, err := load.Compile(l, dkibam.PaperStepMin, dkibam.PaperUnitAmpMin)
	if err != nil {
		return err
	}
	d, err := dkibam.Discretize(b, dkibam.PaperStepMin, dkibam.PaperUnitAmpMin)
	if err != nil {
		return err
	}
	ds := make([]*dkibam.Discretization, count)
	for i := range ds {
		ds[i] = d
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := takibam.ExportUppaal(f, ds, cl); err != nil {
		return err
	}
	fmt.Printf("Uppaal model written to %s\n", path)
	return nil
}

func pickBattery(name string) (battery.Params, error) {
	switch strings.ToUpper(name) {
	case "B1":
		return battery.B1(), nil
	case "B2":
		return battery.B2(), nil
	default:
		return battery.Params{}, fmt.Errorf("unknown battery %q", name)
	}
}

func run(batteryName string, count int, loadName string, horizon float64, direct bool, budget int, verbose bool) error {
	b, err := pickBattery(batteryName)
	if err != nil {
		return err
	}
	l, err := load.Paper(loadName, horizon)
	if err != nil {
		return err
	}
	p, err := core.NewProblem(battery.Bank(b, count), l)
	if err != nil {
		return err
	}

	lifetime, schedule, err := p.OptimalLifetime()
	if err != nil {
		return err
	}
	fmt.Printf("%d x %s on %s\n", count, b, loadName)
	fmt.Printf("optimal lifetime (direct search):  %.2f min (%d decisions)\n", lifetime, len(schedule))
	if verbose {
		for _, c := range schedule {
			fmt.Printf("  %7.2f min  %-15s -> battery %d\n", c.Minutes, c.Reason, c.Battery+1)
		}
	}
	if direct {
		return nil
	}

	sol, err := p.OptimalLifetimeTA(mc.Options{MaxStates: budget})
	if err != nil {
		return err
	}
	fmt.Printf("optimal lifetime (TA-KiBaM + model checker): %.2f min\n", sol.LifetimeMinutes)
	fmt.Printf("  min cost %d charge units left (%.2f A·min); %d branch states, %d states touched\n",
		sol.Cost, float64(sol.Cost)*dkibam.PaperUnitAmpMin, sol.BranchStates, sol.TouchedStates)
	if verbose {
		for _, a := range sol.Schedule {
			fmt.Printf("  %7.2f min  go_on -> battery %d\n", a.Minutes, a.Battery+1)
		}
	}
	if sol.LifetimeMinutes != lifetime {
		fmt.Printf("WARNING: the two routes disagree (%.2f vs %.2f)\n", lifetime, sol.LifetimeMinutes)
	}
	return nil
}
