// Command batopt computes the optimal battery schedule for one of the
// paper's test loads, using both routes of the reproduction: the direct
// branch-and-bound search over scheduling decisions and, unless -direct is
// given, the paper's method — minimum-cost reachability on the TA-KiBaM
// network of priced timed automata.
//
// Usage:
//
//	batopt [-battery B1|B2] [-n COUNT] [-load NAME] [-horizon MIN]
//	       [-spec run.json] [-direct] [-budget N] [-workers N] [-stats]
//	       [-export FILE.xml] [-v]
//
// With -spec, the bank/load/grid come from a serializable run file (the
// same JSON the batserve /v1/run endpoint accepts; its solver field is
// ignored) instead of the individual flags. With -export, the TA-KiBaM
// network is additionally written as an Uppaal 4.x XML model for
// cross-checking against the original toolchain.
package main

import (
	"flag"
	"fmt"
	"os"

	"batsched"
)

func main() {
	batteryName := flag.String("battery", "B1", "battery preset: B1 or B2")
	count := flag.Int("n", 2, "number of identical batteries")
	loadName := flag.String("load", "ILs alt", "paper load name")
	horizon := flag.Float64("horizon", batsched.DefaultHorizonMin, "load horizon in minutes")
	specPath := flag.String("spec", "", "read the bank/load/grid from a serializable run file (JSON)")
	direct := flag.Bool("direct", false, "skip the timed-automata checker, use only the direct search")
	budget := flag.Int("budget", 0, "state budget for the timed-automata checker (0 = default)")
	workers := flag.Int("workers", 1, "direct-search workers: 1 = serial, 0 = all CPUs, N = work-stealing pool of N")
	stats := flag.Bool("stats", false, "print the direct search's work counters (states, pruned, lp_pruned, steals, ...)")
	export := flag.String("export", "", "write the TA-KiBaM as an Uppaal XML model to this file")
	verbose := flag.Bool("v", false, "print the full optimal schedule")
	flag.Parse()

	problem, label, err := buildProblem(*specPath, *batteryName, *count, *loadName, *horizon)
	if err != nil {
		fmt.Fprintf(os.Stderr, "batopt: %v\n", err)
		os.Exit(1)
	}
	if err := run(problem, label, *direct, *budget, *workers, *stats, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "batopt: %v\n", err)
		os.Exit(1)
	}
	if *export != "" {
		if err := exportModel(problem, *export); err != nil {
			fmt.Fprintf(os.Stderr, "batopt: export: %v\n", err)
			os.Exit(1)
		}
	}
}

// buildProblem resolves either the -spec run file or the individual flags
// into a Problem and a display label.
func buildProblem(specPath, batteryName string, count int, loadName string, horizon float64) (*batsched.Problem, string, error) {
	if specPath == "" {
		b, err := batsched.CLIBattery(batteryName, 0)
		if err != nil {
			return nil, "", err
		}
		l, err := batsched.CLILoad(loadName, horizon)
		if err != nil {
			return nil, "", err
		}
		p, err := batsched.NewProblem(batsched.Bank(b, count), l)
		if err != nil {
			return nil, "", err
		}
		return p, fmt.Sprintf("%d x %s on %s", count, b, loadName), nil
	}

	data, err := os.ReadFile(specPath)
	if err != nil {
		return nil, "", err
	}
	run, err := batsched.ParseRun(data)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", specPath, err)
	}
	bankName, bank, err := run.Bank.Resolve()
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", specPath, err)
	}
	ldName, ld, err := run.Load.Resolve()
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", specPath, err)
	}
	opts := []batsched.Option{}
	if run.Grid != nil {
		g := run.Grid.Resolve()
		opts = append(opts, batsched.WithGrid(g.StepMin, g.UnitAmpMin))
	}
	p, err := batsched.NewProblem(bank, ld, opts...)
	if err != nil {
		return nil, "", err
	}
	return p, fmt.Sprintf("%s on %s", bankName, ldName), nil
}

func exportModel(p *batsched.Problem, path string) error {
	c, err := p.Compile()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.ExportUppaal(f); err != nil {
		return err
	}
	fmt.Printf("Uppaal model written to %s\n", path)
	return nil
}

func run(p *batsched.Problem, label string, direct bool, budget, workers int, showStats, verbose bool) error {
	c, err := p.Compile()
	if err != nil {
		return err
	}
	var (
		lifetime float64
		schedule batsched.Schedule
		stats    batsched.OptimalSearchStats
	)
	if workers == 1 {
		lifetime, schedule, stats, err = c.OptimalLifetimeWithStats()
	} else {
		lifetime, schedule, stats, err = c.OptimalLifetimeParallelWithStats(workers)
	}
	if err != nil {
		return err
	}
	fmt.Println(label)
	fmt.Printf("optimal lifetime (direct search):  %.2f min (%d decisions)\n", lifetime, len(schedule))
	if showStats {
		fmt.Printf("  search: %d states, %d leaves, %d memo hits, %d pruned\n",
			stats.States, stats.Leaves, stats.MemoHits, stats.Pruned)
		fmt.Printf("  bounds: %d lp evaluations, %d lp-pruned\n", stats.LPBounds, stats.LPPruned)
		if workers != 1 {
			fmt.Printf("  parallel: %d steals, %d shared-memo hits\n", stats.Steals, stats.SharedMemoHits)
		}
	}
	if verbose {
		for _, c := range schedule {
			fmt.Printf("  %7.2f min  %-15s -> battery %d\n", c.Minutes, c.Reason, c.Battery+1)
		}
	}
	if direct {
		return nil
	}

	sol, err := p.OptimalLifetimeTA(batsched.SearchOptions{MaxStates: budget})
	if err != nil {
		return err
	}
	fmt.Printf("optimal lifetime (TA-KiBaM + model checker): %.2f min\n", sol.LifetimeMinutes)
	fmt.Printf("  min cost %d charge units left (%.2f A·min); %d branch states, %d states touched\n",
		sol.Cost, float64(sol.Cost)*batsched.PaperUnitAmpMin, sol.BranchStates, sol.TouchedStates)
	if verbose {
		for _, a := range sol.Schedule {
			fmt.Printf("  %7.2f min  go_on -> battery %d\n", a.Minutes, a.Battery+1)
		}
	}
	if sol.LifetimeMinutes != lifetime {
		fmt.Printf("WARNING: the two routes disagree (%.2f vs %.2f)\n", lifetime, sol.LifetimeMinutes)
	}
	return nil
}
