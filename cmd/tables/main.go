// Command tables regenerates the evaluation tables of the DSN 2009
// battery-scheduling paper: Table 3 (battery B1), Table 4 (battery B2),
// Table 5 (two-battery scheduling), and the Section 6 capacity-scaling
// claim. Measured values are printed next to the paper's.
//
// Usage:
//
//	tables [-table 3|4|5|capacity|lookahead|multi|all] [-ta] [-budget N]
//	tables -spec scenario.json [-workers N]
//
// With -ta, the optimal schedules are additionally computed through the
// priced-timed-automata model checker (slow for the ILl 250 load; raise
// -budget if it exhausts its state budget). The "lookahead" and "multi"
// tables are extensions beyond the paper; see EXPERIMENTS.md.
//
// With -spec, any serializable scenario file (the same JSON batsim -spec
// and the batserve service accept) is rendered as a Table-5-style pivot:
// one row per grid × bank × load, one lifetime column per solver.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"batsched"
	"batsched/internal/experiments"
)

func main() {
	table := flag.String("table", "all", "which table to print: 3, 4, 5, capacity, all")
	viaTA := flag.Bool("ta", false, "also run the priced-timed-automata checker for optimal schedules")
	budget := flag.Int("budget", 0, "state budget for the timed-automata checker (0 = default)")
	specPath := flag.String("spec", "", "render a serializable scenario file (JSON) as a pivot table")
	workers := flag.Int("workers", 0, "sweep worker pool size for -spec (0 = number of CPUs)")
	flag.Parse()

	if *specPath != "" {
		if err := printSpec(*specPath, *workers, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, f func() error) {
		if *table != "all" && *table != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "tables: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("3", func() error { return printSingle("Table 3 (battery B1, 5.5 A·min)", experiments.Table3, *viaTA) })
	run("4", func() error { return printSingle("Table 4 (battery B2, 11 A·min)", experiments.Table4, *viaTA) })
	run("5", func() error { return printTable5(*viaTA, *budget) })
	run("capacity", printCapacity)
	run("lookahead", printLookahead)
	run("multi", printMultiBattery)
}

// printSpec runs a scenario file and pivots the results into a table: one
// row per grid × bank × load cell, one lifetime column per solver, in the
// scenario's deterministic order. Reproducing Table 5 becomes a single
// scenario file (see EXPERIMENTS.md).
func printSpec(path string, workers int, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	scenario, err := batsched.ParseScenario(data)
	if err != nil {
		return err
	}
	spec, err := scenario.Compile()
	if err != nil {
		return err
	}
	results, err := batsched.RunSweep(spec, batsched.SweepOptions{Workers: workers})
	if err != nil {
		return err
	}

	solvers := len(spec.Policies)
	multiGrid := len(spec.Grids) > 1
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	header := "bank\tload"
	if multiGrid {
		header = "grid\t" + header
	}
	for _, p := range spec.Policies {
		header += "\t" + p.Name
	}
	fmt.Fprintln(tw, header)
	for row := 0; row < len(results); row += solvers {
		r := results[row]
		line := fmt.Sprintf("%s\t%s", r.Bank, r.Load)
		if multiGrid {
			line = r.Grid + "\t" + line
		}
		for _, cell := range results[row : row+solvers] {
			if cell.Err != nil {
				line += fmt.Sprintf("\terror: %v", cell.Err)
				continue
			}
			line += fmt.Sprintf("\t%.2f", cell.Lifetime)
		}
		fmt.Fprintln(tw, line)
	}
	return tw.Flush()
}

func printLookahead() error {
	rows, err := experiments.LookaheadTable(nil)
	if err != nil {
		return err
	}
	fmt.Println("Extension: online model-predictive scheduling (two B1 batteries)")
	fmt.Println("load        bo2    la-2m   la-5m  la-10m     opt   gap recovered @10m")
	for _, r := range rows {
		fmt.Printf("%-8s %6.2f  %6.2f  %6.2f  %6.2f  %6.2f   %15.0f%%\n",
			r.Load, r.BestOfTwo, r.Horizons[2], r.Horizons[5], r.Horizons[10],
			r.Optimal, 100*r.GapRecovered(10))
	}
	fmt.Println()
	return nil
}

func printMultiBattery() error {
	rows, err := experiments.MultiBatteryTable("ILs alt", 3)
	if err != nil {
		return err
	}
	fmt.Println("Extension: bank size scaling (B1 batteries, ILs alt)")
	fmt.Println("batteries     seq      rr    bo-N     opt")
	for _, r := range rows {
		fmt.Printf("%9d  %6.2f  %6.2f  %6.2f  %6.2f\n",
			r.Batteries, r.Sequential, r.RoundRobin, r.BestOfN, r.Optimal)
	}
	fmt.Println()
	return nil
}

func printSingle(title string, gen func(bool) ([]experiments.SingleBatteryRow, error), viaTA bool) error {
	rows, err := gen(viaTA)
	if err != nil {
		return err
	}
	fmt.Println(title)
	header := "load      KiBaM   TA-KiBaM  diff%   | paper: KiBaM  TA-KiBaM"
	if viaTA {
		header += "  | TA-checker"
	}
	fmt.Println(header)
	for _, r := range rows {
		line := fmt.Sprintf("%-8s %6.2f   %6.2f   %5.2f   |       %6.2f   %6.2f",
			r.Load, r.KiBaM, r.TAKiBaM, r.DiffPercent(), r.PaperKiBaM, r.PaperTA)
		if viaTA {
			line += fmt.Sprintf("   |   %6.2f", r.TAChecker)
		}
		fmt.Println(line)
	}
	fmt.Println()
	return nil
}

func printTable5(viaTA bool, budget int) error {
	opts := experiments.Table5Options{
		ViaTA:         viaTA,
		TAStateBudget: budget,
	}
	rows, err := experiments.Table5(opts)
	if err != nil {
		return err
	}
	fmt.Println("Table 5 (two B1 batteries; diff% relative to round robin)")
	header := "load       seq   diff%     rr     bo2  diff%    opt  diff%   | paper:  seq     rr    bo2    opt"
	if viaTA {
		header += "  | opt-TA"
	}
	fmt.Println(header)
	for _, r := range rows {
		line := fmt.Sprintf("%-8s %6.2f  %5.1f  %6.2f  %6.2f  %5.1f  %6.2f  %5.1f   |      %6.2f %6.2f %6.2f %6.2f",
			r.Load, r.Sequential, r.SeqDiffPercent(), r.RoundRobin,
			r.BestOfTwo, r.BestDiffPercent(), r.Optimal, r.OptDiffPercent(),
			r.Paper[0], r.Paper[1], r.Paper[2], r.Paper[3])
		if viaTA {
			if r.OptimalTA > 0 {
				line += fmt.Sprintf("  | %6.2f", r.OptimalTA)
			} else {
				line += "  |      -"
			}
		}
		fmt.Println(line)
	}
	fmt.Println()
	return nil
}

func printCapacity() error {
	rows, err := experiments.CapacityScaling([]float64{1, 2, 5, 10})
	if err != nil {
		return err
	}
	fmt.Println("Section 6 capacity scaling (two batteries, best-of-two, ILs alt)")
	fmt.Println("factor   lifetime   charge left")
	for _, r := range rows {
		fmt.Printf("  x%-4g  %8.2f   %9.1f%%\n", r.Factor, r.Lifetime, 100*r.RemainingFraction)
	}
	fmt.Println("paper: at x10 capacity, less than 10% remains")
	fmt.Println()
	return nil
}
