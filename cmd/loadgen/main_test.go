package main

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"batsched"
)

func TestRunFormats(t *testing.T) {
	if err := run(io.Discard, "ILs alt", 10, 0.01, 0.01, "table"); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, "ILs alt", 10, 0.01, 0.01, "go"); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, "ILs alt", 10, 0.01, 0.01, "yaml"); err == nil {
		t.Fatal("accepted unknown format")
	}
	if err := run(io.Discard, "nope", 10, 0.01, 0.01, "table"); err == nil {
		t.Fatal("accepted unknown load")
	}
	if err := run(io.Discard, "ILs alt", 10, 0, 0.01, "table"); err == nil {
		t.Fatal("accepted zero step")
	}
}

// TestStreamMode: one NDJSON event per load segment, in order, matching
// the segments exactly (these lines are session step-request bodies).
func TestStreamMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "ILs alt", 40, 0.01, 0.01, "stream"); err != nil {
		t.Fatal(err)
	}
	l, err := batsched.PaperLoad("ILs alt", 40)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	for i := 0; i < l.Len(); i++ {
		var ev streamEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		seg := l.Segment(i)
		if ev.CurrentA != seg.Current || ev.DurationMin != seg.Duration {
			t.Fatalf("event %d = %+v, want %+v", i, ev, seg)
		}
	}
	if dec.More() {
		t.Fatal("stream emitted extra events")
	}
}
