package main

import "testing"

func TestRunFormats(t *testing.T) {
	if err := run("ILs alt", 10, 0.01, 0.01, "table"); err != nil {
		t.Fatal(err)
	}
	if err := run("ILs alt", 10, 0.01, 0.01, "go"); err != nil {
		t.Fatal(err)
	}
	if err := run("ILs alt", 10, 0.01, 0.01, "yaml"); err == nil {
		t.Fatal("accepted unknown format")
	}
	if err := run("nope", 10, 0.01, 0.01, "table"); err == nil {
		t.Fatal("accepted unknown load")
	}
	if err := run("ILs alt", 10, 0, 0.01, "table"); err == nil {
		t.Fatal("accepted zero step")
	}
}
