// Command loadgen is the "external program" of Section 4.1: it compiles a
// test load into the three arrays (load_time, cur_times, cur) consumed by
// the timed-automata battery model, on the paper's discretization grid.
//
// With -stream it instead emits the load as NDJSON draw events — one
// {"current_a": A, "duration_min": MIN} line per segment, the wire form of
// batserve's POST /v1/sessions/{id}/step — so a recorded load can be
// replayed through a streaming session:
//
//	loadgen -load "ILs alt" -stream | while read ev; do
//	  curl -s localhost:8080/v1/sessions/$SID/step -d "$ev"
//	done
//
// Usage:
//
//	loadgen [-load NAME] [-horizon MIN] [-step T] [-unit GAMMA]
//	        [-format table|go] [-stream]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"batsched"
	"batsched/internal/load"
)

func main() {
	loadName := flag.String("load", "ILs alt", "paper load name")
	horizon := flag.Float64("horizon", 40, "load horizon in minutes")
	step := flag.Float64("step", batsched.PaperStepMin, "time step T in minutes")
	unit := flag.Float64("unit", batsched.PaperUnitAmpMin, "charge unit Gamma in A·min")
	format := flag.String("format", "table", "output format: table or go")
	stream := flag.Bool("stream", false, "emit NDJSON draw events (session step-request lines) instead of compiled arrays")
	flag.Parse()

	if *stream {
		*format = "stream"
	}
	if err := run(os.Stdout, *loadName, *horizon, *step, *unit, *format); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}

// streamEvent is one NDJSON draw event, matching batserve's session step
// request body.
type streamEvent struct {
	CurrentA    float64 `json:"current_a"`
	DurationMin float64 `json:"duration_min"`
}

func run(w io.Writer, name string, horizon, step, unit float64, format string) error {
	l, err := batsched.CLILoad(name, horizon)
	if err != nil {
		return err
	}
	if format == "stream" {
		// The stream mode does not compile: sessions discretize each event
		// server-side, and the raw segments are what a live device reports.
		enc := json.NewEncoder(w)
		for i := 0; i < l.Len(); i++ {
			seg := l.Segment(i)
			if err := enc.Encode(streamEvent{CurrentA: seg.Current, DurationMin: seg.Duration}); err != nil {
				return err
			}
		}
		return nil
	}
	cl, err := load.Compile(l, step, unit)
	if err != nil {
		return err
	}
	switch format {
	case "table":
		fmt.Fprintf(w, "# %s, T=%g min, Gamma=%g A·min, %d epochs\n", name, step, unit, cl.Epochs())
		fmt.Fprintln(w, "epoch  start  load_time  cur_times  cur  current(A)")
		for y := 0; y < cl.Epochs(); y++ {
			fmt.Fprintf(w, "%5d  %5d  %9d  %9d  %3d  %10.3f\n",
				y, cl.EpochStart(y), cl.LoadTime[y], cl.CurTimes[y], cl.Cur[y], cl.Current(y))
		}
	case "go":
		fmt.Fprintf(w, "// %s, T=%g min, Gamma=%g A·min\n", name, step, unit)
		fmt.Fprintf(w, "loadTime := %#v\n", cl.LoadTime)
		fmt.Fprintf(w, "curTimes := %#v\n", cl.CurTimes)
		fmt.Fprintf(w, "cur := %#v\n", cl.Cur)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	return nil
}
