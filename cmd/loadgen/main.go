// Command loadgen is the "external program" of Section 4.1: it compiles a
// test load into the three arrays (load_time, cur_times, cur) consumed by
// the timed-automata battery model, on the paper's discretization grid.
//
// Usage:
//
//	loadgen [-load NAME] [-horizon MIN] [-step T] [-unit GAMMA] [-format table|go]
package main

import (
	"flag"
	"fmt"
	"os"

	"batsched"
	"batsched/internal/load"
)

func main() {
	loadName := flag.String("load", "ILs alt", "paper load name")
	horizon := flag.Float64("horizon", 40, "load horizon in minutes")
	step := flag.Float64("step", batsched.PaperStepMin, "time step T in minutes")
	unit := flag.Float64("unit", batsched.PaperUnitAmpMin, "charge unit Gamma in A·min")
	format := flag.String("format", "table", "output format: table or go")
	flag.Parse()

	if err := run(*loadName, *horizon, *step, *unit, *format); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}

func run(name string, horizon, step, unit float64, format string) error {
	l, err := batsched.CLILoad(name, horizon)
	if err != nil {
		return err
	}
	cl, err := load.Compile(l, step, unit)
	if err != nil {
		return err
	}
	switch format {
	case "table":
		fmt.Printf("# %s, T=%g min, Gamma=%g A·min, %d epochs\n", name, step, unit, cl.Epochs())
		fmt.Println("epoch  start  load_time  cur_times  cur  current(A)")
		for y := 0; y < cl.Epochs(); y++ {
			fmt.Printf("%5d  %5d  %9d  %9d  %3d  %10.3f\n",
				y, cl.EpochStart(y), cl.LoadTime[y], cl.CurTimes[y], cl.Cur[y], cl.Current(y))
		}
	case "go":
		fmt.Printf("// %s, T=%g min, Gamma=%g A·min\n", name, step, unit)
		fmt.Printf("loadTime := %#v\n", cl.LoadTime)
		fmt.Printf("curTimes := %#v\n", cl.CurTimes)
		fmt.Printf("cur := %#v\n", cl.Cur)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	return nil
}
