// Command batbench runs the pinned benchmark harness (internal/benchkit)
// and emits a machine-readable report. Committed reports (BENCH_<n>.json at
// the repo root) seed the perf trajectory; CI reruns the harness on every
// change and fails when a gated case regresses beyond the allowed ratio.
//
// Usage:
//
//	batbench -out BENCH_4.json                 # full run (1s per case)
//	batbench -benchtime 100ms -check BENCH_3.json -out /tmp/bench.json
//	batbench -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"batsched/internal/benchkit"
)

func main() {
	var (
		out       = flag.String("out", "-", "report destination (- = stdout)")
		check     = flag.String("check", "", "baseline report to gate against (empty = no gate)")
		maxRatio  = flag.Float64("max-regression", 2.0, "fail -check when a gated case is this many times slower")
		benchtime = flag.Duration("benchtime", time.Second, "minimum measuring time per case")
		match     = flag.String("match", "", "only run cases with this name prefix")
		skipBase  = flag.Bool("skip-baselines", false, "skip the slow reference-search baseline runs")
		list      = flag.Bool("list", false, "list the pinned cases and exit")
		memprof   = flag.String("memprofile", "", "write a heap profile here after the run (pprof format)")
		cpuprof   = flag.String("cpuprofile", "", "profile the measured cases' CPU time into this file (pprof format)")
	)
	flag.Parse()

	if *list {
		names, err := benchkit.CaseNames()
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	if *cpuprof != "" {
		// Profile the main measuring pass (not the re-measure retries): CI
		// uploads this so a wall-clock regression comes with the flame graph
		// that explains where the search spends its time.
		f, err := os.Create(*cpuprof)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
	}
	rep, err := benchkit.Run(benchkit.Options{
		BenchTime:     *benchtime,
		Match:         *match,
		SkipBaselines: *skipBase,
	})
	if *cpuprof != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		fatal(err)
	}
	if *memprof != "" {
		// Snapshot live heap after the measured cases: CI uploads this so
		// an allocation regression comes with the profile that explains it.
		if err := writeHeapProfile(*memprof); err != nil {
			fatal(err)
		}
	}

	var regs []benchkit.Regression
	if *check != "" {
		baseData, err := os.ReadFile(*check)
		if err != nil {
			fatal(err)
		}
		var base benchkit.Report
		if err := json.Unmarshal(baseData, &base); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *check, err))
		}
		regs = benchkit.Compare(base, rep, *maxRatio)
		if wallRegs(regs) {
			// Wall-clock comparisons against a baseline recorded elsewhere
			// are noisy (few iterations, shared runners); before failing,
			// re-measure the flagged cases once and keep the faster run.
			// States regressions are deterministic and never retried away.
			// The report is patched in place so the emitted artifact and
			// the gate verdict agree.
			for _, r := range regs {
				if r.Kind != "ns/op" {
					continue
				}
				fmt.Fprintf(os.Stderr, "batbench: re-measuring %s (first run %d ns/op)\n", r.Name, r.Current)
				again, err := benchkit.Run(benchkit.Options{
					BenchTime:     *benchtime,
					Match:         r.Name,
					SkipBaselines: true,
				})
				if err != nil {
					fatal(err)
				}
				for _, ar := range again.Results {
					for i := range rep.Results {
						res := &rep.Results[i]
						if res.Name != ar.Name || ar.NsPerOp >= res.NsPerOp {
							continue
						}
						res.NsPerOp = ar.NsPerOp
						// Keep the derived ratios consistent with the patched
						// measurement in the emitted artifact.
						if res.Baseline != nil && res.NsPerOp > 0 {
							res.Baseline.SpeedupX = benchkit.Round2(float64(res.Baseline.Ns) / float64(res.NsPerOp))
						}
					}
				}
			}
			regs = benchkit.Compare(base, rep, *maxRatio)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}

	if *check == "" {
		return
	}
	// The parallel-speedup floor: a property of the current report alone
	// (serial baseline vs parallel measurement on the same machine), gated
	// together with the baseline comparison. CheckSpeedups skips machines
	// with fewer CPUs than a case has workers.
	slow := benchkit.CheckSpeedups(rep, benchkit.MinParallelSpeedup)
	if len(regs) == 0 && len(slow) == 0 {
		fmt.Fprintf(os.Stderr, "batbench: no regressions beyond %.1fx against %s\n", *maxRatio, *check)
		return
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "batbench: REGRESSION %s\n", r)
	}
	for _, s := range slow {
		fmt.Fprintf(os.Stderr, "batbench: REGRESSION %s\n", s)
	}
	os.Exit(1)
}

func wallRegs(regs []benchkit.Regression) bool {
	for _, r := range regs {
		if r.Kind == "ns/op" {
			return true
		}
	}
	return false
}

// writeHeapProfile garbage-collects (so the profile reflects live data, not
// garbage awaiting collection) and writes the heap profile to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "batbench:", err)
	os.Exit(1)
}
