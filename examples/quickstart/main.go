// Quickstart: compute the lifetime of a single battery under an
// intermittent load, three ways — the analytic KiBaM, the discretized
// model, and a numeric check of the rate-capacity and recovery effects.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"batsched"
)

func main() {
	// The paper's B1 battery: 5.5 A·min, Itsy Li-ion kinetics.
	b1 := batsched.B1()

	// "ILs 250": one-minute 250 mA jobs separated by one-minute idles.
	ld, err := batsched.PaperLoad("ILs 250", 120)
	if err != nil {
		log.Fatal(err)
	}
	problem, err := batsched.NewProblem([]batsched.BatteryParams{b1}, ld)
	if err != nil {
		log.Fatal(err)
	}

	analytic, err := problem.AnalyticLifetime()
	if err != nil {
		log.Fatal(err)
	}
	discrete, err := problem.DiscreteLifetime()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("battery %s under %s\n", b1, ld.Name())
	fmt.Printf("  analytic KiBaM lifetime:    %6.2f min\n", analytic)
	fmt.Printf("  discretized (dKiBaM):       %6.2f min\n", discrete)

	// The rate-capacity effect: doubling the current more than halves the
	// lifetime...
	heavy, err := batsched.PaperLoad("ILs 500", 120)
	if err != nil {
		log.Fatal(err)
	}
	heavyProblem, err := batsched.NewProblem([]batsched.BatteryParams{b1}, heavy)
	if err != nil {
		log.Fatal(err)
	}
	heavyLifetime, err := heavyProblem.AnalyticLifetime()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  at 500 mA instead of 250:   %6.2f min (rate-capacity effect: < half)\n", heavyLifetime)

	// ...and the recovery effect: inserting idle time yields more total
	// service time than the continuous discharge.
	continuous, err := batsched.PaperLoad("CL 250", 120)
	if err != nil {
		log.Fatal(err)
	}
	contProblem, err := batsched.NewProblem([]batsched.BatteryParams{b1}, continuous)
	if err != nil {
		log.Fatal(err)
	}
	contLifetime, err := contProblem.AnalyticLifetime()
	if err != nil {
		log.Fatal(err)
	}
	// Under ILs 250 roughly half the elapsed time is service.
	fmt.Printf("  continuous 250 mA:          %6.2f min of service\n", contLifetime)
	fmt.Printf("  intermittent 250 mA:        %6.2f min of service (recovery effect)\n", analytic/2)
}
