// Lamp: the tutorial NLPTA of Section 3 of the paper (Figures 2-4), built
// on this repository's priced-timed-automata framework. A lamp switches
// off -> low -> bright when the user presses quickly, back off otherwise;
// the automatic variant times out after 10 time units; the priced variant
// pays 50 cost to switch on, then 10 per time unit in low and 20 in bright.
//
// The example asks the model checker Cora-style questions: can the lamp
// reach bright quickly, and what is the cheapest way to have enjoyed 25
// time units of light within a minute? This demonstrates the framework the
// TA-KiBaM battery model is built on, so it imports the internal packages
// directly.
//
// Run with: go run ./examples/lamp
package main

import (
	"fmt"
	"log"

	"batsched/internal/lpta"
	"batsched/internal/mc"
)

const (
	// burnTarget is the light budget of the cost question.
	burnTarget = 25
	// deadline bounds the schedule length in ticks.
	deadline = 60
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := lpta.NewNetwork("lamp")
	press := net.Channel("press", lpta.Binary, 0, false)
	y := net.Clock("y")
	total := net.Clock("total")
	// Values above the largest constant a guard mentions are equivalent:
	// saturate the clocks there so the model stays finite.
	net.ClockCeiling(y, 11)
	net.ClockCeiling(total, deadline+1)
	burn := net.Int("burned", 0) // time units of light enjoyed so far

	enjoy := func(s *lpta.State) { // cap at the target to keep states finite
		if v := burn.Get(s) + 10; v < burnTarget {
			burn.Set(s, v)
		} else {
			burn.Set(s, burnTarget)
		}
	}

	// The lamp of Figure 4: automatic switch-off after 10, with costs.
	lamp := net.Automaton("lamp")
	off := lamp.Location("off")
	low := lamp.Location("low")
	bright := lamp.Location("bright")
	lamp.Initial(off)
	lamp.Invariant(low, y, lpta.Const(10))
	lamp.Invariant(bright, y, lpta.Const(10))
	lamp.CostRate(low, lpta.ConstCost(10))
	lamp.CostRate(bright, lpta.ConstCost(20))
	lamp.Switch(off, low, lpta.SwitchSpec{
		Recv: press, HasRecv: true,
		Resets: []lpta.ClockID{y},
		Cost:   lpta.ConstCost(50),
		Label:  "switch-on",
	})
	lamp.Switch(low, bright, lpta.SwitchSpec{
		Recv: press, HasRecv: true,
		ClockGuards: []lpta.ClockGuard{{Clock: y, Op: lpta.LT, Bound: lpta.Const(5)}},
		Label:       "brighten",
	})
	lamp.Switch(low, off, lpta.SwitchSpec{
		ClockGuards: []lpta.ClockGuard{{Clock: y, Op: lpta.GE, Bound: lpta.Const(10)}},
		Update:      enjoy,
		Label:       "timeout",
	})
	lamp.Switch(bright, off, lpta.SwitchSpec{
		ClockGuards: []lpta.ClockGuard{{Clock: y, Op: lpta.GE, Bound: lpta.Const(10)}},
		Update:      enjoy,
		Label:       "timeout",
	})

	// The user of Figure 2(b): may press the button at any time.
	user := net.Automaton("user")
	idle := user.Location("idle")
	user.Initial(idle)
	user.Switch(idle, idle, lpta.SwitchSpec{
		Send: press, HasSend: true,
		Label: "press",
	})

	if err := net.Finalize(); err != nil {
		return err
	}
	// Step semantics: the lamp is not an urgent model (the user may press
	// at any instant), so exhaustive unit delays are required.
	engine, err := lpta.NewEngine(net, lpta.EngineOptions{Semantics: lpta.StepSemantics})
	if err != nil {
		return err
	}
	init := net.InitialState()

	// Question 1 (reachability): can the lamp shine brightly within three
	// ticks? Two quick presses should do it.
	holds, err := mc.HoldsInvariantly(engine, init, func(s *lpta.State) bool {
		return s.Locs[0] == uint16(bright) && s.Clock(total) <= 3
	}, 2_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("A[] not (bright within 3 ticks): %v\n", holds)

	// Question 2 (optimal cost, Cora-style): the cheapest way to have
	// enjoyed at least 25 time units of light within the deadline. Low
	// light is cheaper per tick, so the optimum stays dim: 3 switch-ons at
	// 50 plus 30 ticks of low at 10.
	goal := func(s *lpta.State) bool {
		return burn.Get(s) >= burnTarget && s.Clock(total) <= deadline
	}
	res, err := mc.MinCostReach(engine, init, goal, mc.Options{MaxStates: 5_000_000})
	if err != nil {
		return err
	}
	if !res.Found {
		return fmt.Errorf("no schedule provides %d units of light", burnTarget)
	}
	fmt.Printf("cheapest %d+ units of light: cost %d (explored %d branch states)\n",
		burnTarget, res.Cost, res.BranchStates)

	trace, err := res.Replay(init)
	if err != nil {
		return err
	}
	fmt.Println("witness trace:")
	for _, step := range trace {
		if step.Trans.Kind == lpta.DelayTrans {
			continue // keep the printout compact
		}
		fmt.Printf("  t=%2d cost=%3d  %s\n", step.Time, step.Cost, step.Trans.Describe(net))
	}
	return nil
}
