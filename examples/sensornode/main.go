// Sensornode: the job-over-time optimisation sketched in the paper's
// outlook (Section 7). A sensor node with one small battery must run a
// burst of high-current transmission jobs. Back-to-back the burst kills the
// battery; the scheduler inserts the shortest idle gaps that let the
// bound charge recover so every job completes — and reports how much air
// time that costs compared to the (infeasible) eager plan.
//
// Run with: go run ./examples/sensornode
package main

import (
	"fmt"
	"log"

	"batsched/internal/battery"
	"batsched/internal/jobsched"
	"batsched/internal/kibam"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The paper's B1 cell powers the node.
	cell := battery.B1()
	// Five one-minute transmissions at 500 mA. Run back-to-back this is the
	// CL 500 load, which kills B1 after 2.02 minutes — during the third
	// job. With recovery gaps all five can complete.
	jobs := make([]jobsched.Job, 5)
	for i := range jobs {
		jobs[i] = jobsched.Job{Duration: 1, Current: 0.5}
	}

	// The eager plan (no gaps) runs the burst continuously: how far does
	// the battery get?
	model, err := kibam.New(cell)
	if err != nil {
		return err
	}
	eager := kibam.Full(cell)
	survived := 0
	for _, j := range jobs {
		if _, crossed := model.EmptyTime(eager, j.Current, j.Duration); crossed {
			break
		}
		eager = model.StepConstant(eager, j.Current, j.Duration)
		survived++
	}
	fmt.Printf("%s, %d x 1 min @ 500 mA\n", cell, len(jobs))
	fmt.Printf("eager (no gaps): battery dies during job %d of %d\n", survived+1, len(jobs))

	plan, err := jobsched.Optimize(cell, jobs, jobsched.Options{
		GapQuantum: 0.5,
		MaxGap:     16,
	})
	if err != nil {
		return err
	}
	if !plan.Feasible {
		return fmt.Errorf("no gap schedule lets the burst complete")
	}
	fmt.Printf("optimised: all %d jobs complete in %.1f min (%.2f A·min available left, %d Pareto states)\n",
		len(jobs), plan.Makespan, plan.FinalAvailable, plan.FrontierStates)
	for i, start := range plan.Starts {
		fmt.Printf("  job %d: idle %4.1f min, transmit %4.1f-%4.1f min\n",
			i+1, plan.Gaps[i], start, start+jobs[i].Duration)
	}

	// Sanity-check the plan on the continuous model.
	ld, err := plan.Load("sensor-plan", jobs)
	if err != nil {
		return err
	}
	if _, err := model.Lifetime(ld); err == nil {
		return fmt.Errorf("continuous model says the battery still dies")
	}
	fmt.Println("verified: the continuous KiBaM survives the optimised plan")
	return nil
}
