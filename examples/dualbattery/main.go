// Dualbattery: the paper's headline experiment on one load. Two B1
// batteries serve the alternating intermittent load ILs alt; the four
// scheduling schemes of Section 6 are compared, including the optimal
// schedule computed both by direct search and by the priced-timed-automata
// model checker. The example then prints where the optimal schedule
// deviates from best-of-two.
//
// Run with: go run ./examples/dualbattery
package main

import (
	"fmt"
	"log"

	"batsched"
)

func main() {
	ld, err := batsched.PaperLoad("ILs alt", 120)
	if err != nil {
		log.Fatal(err)
	}
	bank := batsched.Bank(batsched.B1(), 2)
	problem, err := batsched.NewProblem(bank, ld)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("two B1 batteries under %s\n\n", ld.Name())
	var roundRobin float64
	for _, policy := range []batsched.Policy{
		batsched.Sequential(),
		batsched.RoundRobin(),
		batsched.BestAvailable(),
	} {
		lifetime, err := problem.PolicyLifetime(policy)
		if err != nil {
			log.Fatal(err)
		}
		if policy.Name() == "round robin" {
			roundRobin = lifetime
		}
		fmt.Printf("  %-12s %6.2f min\n", policy.Name(), lifetime)
	}

	optimal, schedule, err := problem.OptimalLifetime()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-12s %6.2f min (+%.1f%% over round robin)\n",
		"optimal", optimal, 100*(optimal-roundRobin)/roundRobin)

	// The paper's route: minimum-cost reachability on the TA-KiBaM network.
	sol, err := problem.OptimalLifetimeTA(batsched.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-12s %6.2f min (TA-KiBaM + model checker, %d charge units left)\n\n",
		"optimal(TA)", sol.LifetimeMinutes, sol.Cost)

	fmt.Println("optimal schedule (battery per job):")
	for _, c := range schedule {
		fmt.Printf("  %6.2f min  %-15s -> battery %d\n", c.Minutes, c.Reason, c.Battery+1)
	}
	fmt.Println("\nnote the irregular pattern — the paper observes the optimal")
	fmt.Println("schedule follows no simple rule (end of Section 6).")
}
