package mc

import (
	"fmt"

	"batsched/internal/lpta"
)

// ExploreResult summarises an exhaustive reachability exploration.
type ExploreResult struct {
	// States is the number of distinct states reached.
	States int
	// GoalReached reports whether any explored state satisfied the goal.
	GoalReached bool
	// Deadlocks counts states with no successors.
	Deadlocks int
}

// Explore enumerates all reachable states (breadth-first, full dedup, no
// chain compression). It is intended for validating small models — the lamp
// examples of Section 3, unit-test automata — and for cross-checking the
// event-jump semantics against exhaustive unit-step exploration.
//
// The visit callback, if non-nil, is invoked once per distinct state; a
// false return stops the exploration early.
func Explore(engine *lpta.Engine, init *lpta.State, goal Goal, maxStates int, visit func(*lpta.State) bool) (ExploreResult, error) {
	if maxStates <= 0 {
		maxStates = 1_000_000
	}
	var res ExploreResult
	seen := map[string]bool{}
	queue := []*lpta.State{init.Clone()}
	seen[init.Key()] = true
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		res.States++
		if res.States > maxStates {
			return res, fmt.Errorf("%w (%d states)", ErrBudgetExhausted, res.States)
		}
		if goal != nil && goal(st) {
			res.GoalReached = true
		}
		if visit != nil && !visit(st) {
			return res, nil
		}
		succs := engine.Successors(st)
		if len(succs) == 0 {
			res.Deadlocks++
		}
		for _, succ := range succs {
			key := succ.State.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			queue = append(queue, succ.State)
		}
	}
	return res, nil
}

// HoldsInvariantly checks the TCTL property "A[] not goal" by exhaustive
// exploration: it returns true when no reachable state satisfies the goal.
// This is the query shape the paper feeds to Cora (A[] not max.done); the
// counterexample Cora returns is our MinCostReach witness.
func HoldsInvariantly(engine *lpta.Engine, init *lpta.State, goal Goal, maxStates int) (bool, error) {
	res, err := Explore(engine, init, goal, maxStates, nil)
	if err != nil {
		return false, err
	}
	return !res.GoalReached, nil
}
