// Package mc is a minimum-cost reachability checker for linearly priced
// timed automata networks (internal/lpta). It plays the role Uppaal Cora
// plays in the DSN 2009 battery-scheduling paper: given the TA-KiBaM network
// and the goal "all batteries empty and the remaining charge converted to
// cost", the cheapest path to the goal is the optimal battery schedule.
//
// The search is uniform-cost (Dijkstra) over the discrete-time state graph
// with one crucial optimisation: deterministic chains. Long stretches of the
// TA-KiBaM evolve with exactly one successor per state (clock ticks, forced
// draws, forced recoveries); such states are chased inline and never enter
// the frontier or the visited set, so memory scales with the number of
// branching (decision) states only.
package mc

import (
	"container/heap"
	"errors"
	"fmt"

	"batsched/internal/lpta"
)

// Options tune the search.
type Options struct {
	// MaxStates bounds the total number of states touched (including
	// chased chain states); 0 means DefaultMaxStates.
	MaxStates int
	// MaxChain bounds the length of a single deterministic chain; 0 means
	// DefaultMaxChain. A chain longer than this almost certainly means the
	// model diverges (time passes forever without branching or goal).
	MaxChain int
}

// Default search budgets.
const (
	DefaultMaxStates = 50_000_000
	DefaultMaxChain  = 10_000_000
)

// Result of a reachability query.
type Result struct {
	// Found reports whether a goal state is reachable.
	Found bool
	// Cost is the minimum cost over paths to the goal.
	Cost int64
	// Goal is the reached goal state.
	Goal *lpta.State
	// BranchStates counts distinct branching states settled.
	BranchStates int
	// TouchedStates counts every state visited, including chain states.
	TouchedStates int
	// trace bookkeeping for Replay.
	searcher *searcher
	goalKey  string
}

// Search errors.
var (
	ErrBudgetExhausted = errors.New("mc: state budget exhausted")
	ErrChainDiverged   = errors.New("mc: deterministic chain exceeded budget (model diverges?)")
)

// Goal is a state predicate.
type Goal func(*lpta.State) bool

type pqItem struct {
	state *lpta.State
	key   string
	cost  int64
	seq   int // insertion order for deterministic tie-breaking
	goal  bool
}

type priorityQueue []*pqItem

func (q priorityQueue) Len() int { return len(q) }
func (q priorityQueue) Less(i, j int) bool {
	if q[i].cost != q[j].cost {
		return q[i].cost < q[j].cost
	}
	return q[i].seq < q[j].seq
}
func (q priorityQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *priorityQueue) Push(x interface{}) { *q = append(*q, x.(*pqItem)) }
func (q *priorityQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return item
}

type parentLink struct {
	parentKey string
	choice    int // successor index taken at the parent branch state
}

type searcher struct {
	engine  *lpta.Engine
	goal    Goal
	opts    Options
	visited map[string]int64 // branch-state key -> best cost settled/seen
	parents map[string]parentLink
	touched int
	initKey string
}

// MinCostReach finds a cheapest path from init to a goal state. Costs must
// be non-negative (cost rates and updates), which the priced-automata
// formalism guarantees by construction here.
func MinCostReach(engine *lpta.Engine, init *lpta.State, goal Goal, opts Options) (Result, error) {
	if opts.MaxStates == 0 {
		opts.MaxStates = DefaultMaxStates
	}
	if opts.MaxChain == 0 {
		opts.MaxChain = DefaultMaxChain
	}
	s := &searcher{
		engine:  engine,
		goal:    goal,
		opts:    opts,
		visited: make(map[string]int64),
		parents: make(map[string]parentLink),
	}
	return s.run(init)
}

func (s *searcher) run(init *lpta.State) (Result, error) {
	var pq priorityQueue
	seq := 0
	push := func(st *lpta.State, key string, isGoal bool) {
		heap.Push(&pq, &pqItem{state: st, key: key, cost: st.Cost, seq: seq, goal: isGoal})
		seq++
	}

	first, hitGoal, err := s.chase(init.Clone())
	if err != nil {
		return Result{}, err
	}
	firstKey := first.Key()
	s.initKey = firstKey
	s.visited[firstKey] = first.Cost
	push(first, firstKey, hitGoal)

	for pq.Len() > 0 {
		item := heap.Pop(&pq).(*pqItem)
		if cost, ok := s.visited[item.key]; ok && item.cost > cost {
			continue // stale entry
		}
		if item.goal {
			return Result{
				Found:         true,
				Cost:          item.state.Cost,
				Goal:          item.state,
				BranchStates:  len(s.visited),
				TouchedStates: s.touched,
				searcher:      s,
				goalKey:       item.key,
			}, nil
		}
		succs := s.engine.Successors(item.state)
		for i, succ := range succs {
			next, hitGoal, err := s.chase(succ.State)
			if err != nil {
				return Result{}, err
			}
			key := next.Key()
			if best, ok := s.visited[key]; ok && best <= next.Cost {
				continue
			}
			s.visited[key] = next.Cost
			s.parents[key] = parentLink{parentKey: item.key, choice: i}
			push(next, key, hitGoal)
		}
	}
	return Result{
		Found:         false,
		BranchStates:  len(s.visited),
		TouchedStates: s.touched,
	}, nil
}

// chase advances through deterministic (single-successor) states until it
// reaches a goal state, a branching state, or a dead end. Chain states are
// not recorded anywhere; they are recomputed during Replay.
func (s *searcher) chase(st *lpta.State) (*lpta.State, bool, error) {
	for steps := 0; ; steps++ {
		if steps > s.opts.MaxChain {
			return nil, false, fmt.Errorf("%w (at %d states)", ErrChainDiverged, steps)
		}
		s.touched++
		if s.touched > s.opts.MaxStates {
			return nil, false, fmt.Errorf("%w (%d states)", ErrBudgetExhausted, s.touched)
		}
		if s.goal(st) {
			return st, true, nil
		}
		succs := s.engine.Successors(st)
		if len(succs) != 1 {
			return st, false, nil
		}
		st = succs[0].State
	}
}

// TraceStep is one transition of a witness path.
type TraceStep struct {
	// Trans is the transition taken.
	Trans lpta.Transition
	// Time is the global time, in steps, after the transition.
	Time int32
	// Cost is the accumulated cost after the transition.
	Cost int64
}

// Replay reconstructs the full timed witness trace of a successful search by
// re-executing the deterministic chains between the recorded branch
// decisions. The returned steps include every delay and every discrete
// transition from the initial state to the goal.
func (r Result) Replay(init *lpta.State) ([]TraceStep, error) {
	if !r.Found {
		return nil, errors.New("mc: no witness, goal not reached")
	}
	s := r.searcher
	// Collect the branch decisions along the goal path, goal -> init.
	choiceAt := make(map[string]int)
	for key := r.goalKey; key != s.initKey; {
		link, ok := s.parents[key]
		if !ok {
			return nil, fmt.Errorf("mc: broken parent chain at %q", key)
		}
		choiceAt[link.parentKey] = link.choice
		key = link.parentKey
	}

	var steps []TraceStep
	st := init.Clone()
	for budget := 0; ; budget++ {
		if budget > s.opts.MaxChain {
			return nil, ErrChainDiverged
		}
		if s.goal(st) {
			return steps, nil
		}
		succs := s.engine.Successors(st)
		var take lpta.Succ
		switch {
		case len(succs) == 0:
			return nil, errors.New("mc: replay hit a dead end")
		case len(succs) == 1:
			take = succs[0]
		default:
			choice, ok := choiceAt[st.Key()]
			if !ok {
				return nil, errors.New("mc: replay hit an unrecorded branch state")
			}
			take = succs[choice]
		}
		st = take.State
		steps = append(steps, TraceStep{Trans: take.Trans, Time: st.Time, Cost: st.Cost})
	}
}
