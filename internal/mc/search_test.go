package mc

import (
	"errors"
	"testing"

	"batsched/internal/lpta"
)

// diamond builds a network with a cheap-but-slow and an expensive-but-fast
// path to a goal location:
//
//	start -(pay 10)-> a -(wait 5, rate 1)-> goal   total 15
//	start -(pay  2)-> b -(wait 9, rate 1)-> goal   total 11  <- optimal
func diamond(t *testing.T) (*lpta.Engine, *lpta.Network, lpta.LocID) {
	t.Helper()
	net := lpta.NewNetwork("diamond")
	x := net.Clock("x")
	a := net.Automaton("walker")
	start := a.Location("start")
	mid1 := a.Location("a")
	mid2 := a.Location("b")
	goal := a.Location("goal")
	a.Initial(start)
	a.Invariant(mid1, x, lpta.Const(5))
	a.Invariant(mid2, x, lpta.Const(9))
	a.CostRate(mid1, lpta.ConstCost(1))
	a.CostRate(mid2, lpta.ConstCost(1))
	a.Switch(start, mid1, lpta.SwitchSpec{Cost: lpta.ConstCost(10), Resets: []lpta.ClockID{x}, Label: "expensive"})
	a.Switch(start, mid2, lpta.SwitchSpec{Cost: lpta.ConstCost(2), Resets: []lpta.ClockID{x}, Label: "cheap"})
	a.Switch(mid1, goal, lpta.SwitchSpec{
		ClockGuards: []lpta.ClockGuard{{Clock: x, Op: lpta.GE, Bound: lpta.Const(5)}},
	})
	a.Switch(mid2, goal, lpta.SwitchSpec{
		ClockGuards: []lpta.ClockGuard{{Clock: x, Op: lpta.GE, Bound: lpta.Const(9)}},
	})
	if err := net.Finalize(); err != nil {
		t.Fatal(err)
	}
	e, err := lpta.NewEngine(net, lpta.EngineOptions{Semantics: lpta.EventSemantics})
	if err != nil {
		t.Fatal(err)
	}
	return e, net, goal
}

func TestMinCostPicksCheaperPath(t *testing.T) {
	e, net, goal := diamond(t)
	res, err := MinCostReach(e, net.InitialState(), func(s *lpta.State) bool {
		return s.Locs[0] == uint16(goal)
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("goal not found")
	}
	if res.Cost != 11 {
		t.Fatalf("min cost %d, want 11", res.Cost)
	}
	trace, err := res.Replay(net.InitialState())
	if err != nil {
		t.Fatal(err)
	}
	// The witness must take the cheap branch and arrive at t=9.
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	final := trace[len(trace)-1]
	if final.Time != 9 || final.Cost != 11 {
		t.Fatalf("witness ends at t=%d cost=%d, want 9/11", final.Time, final.Cost)
	}
	foundCheap := false
	for _, step := range trace {
		if step.Trans.Kind != lpta.DelayTrans && step.Trans.Describe(net) == "walker: cheap" {
			foundCheap = true
		}
	}
	if !foundCheap {
		t.Fatal("witness does not use the cheap branch")
	}
}

func TestUnreachableGoal(t *testing.T) {
	e, net, _ := diamond(t)
	res, err := MinCostReach(e, net.InitialState(), func(*lpta.State) bool { return false }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("found an unreachable goal")
	}
	if _, err := res.Replay(net.InitialState()); err == nil {
		t.Fatal("replay of a failed search must error")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	e, net, goal := diamond(t)
	_, err := MinCostReach(e, net.InitialState(), func(s *lpta.State) bool {
		return s.Locs[0] == uint16(goal)
	}, Options{MaxStates: 2})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("tiny budget: %v", err)
	}
}

// TestChainDivergence: a model that delays forever without reaching the
// goal trips the chain budget rather than hanging.
func TestChainDivergence(t *testing.T) {
	net := lpta.NewNetwork("diverge")
	net.Clock("x") // uncapped clock: delays change the state forever
	a := net.Automaton("a")
	a.Initial(a.Location("l"))
	if err := net.Finalize(); err != nil {
		t.Fatal(err)
	}
	e, err := lpta.NewEngine(net, lpta.EngineOptions{Semantics: lpta.StepSemantics})
	if err != nil {
		t.Fatal(err)
	}
	_, err = MinCostReach(e, net.InitialState(), func(*lpta.State) bool { return false }, Options{MaxChain: 100, MaxStates: 1000})
	if err == nil {
		t.Fatal("diverging model did not error")
	}
}

// TestGoalMidChain: a goal hit inside a deterministic chain is found.
func TestGoalMidChain(t *testing.T) {
	net := lpta.NewNetwork("chain")
	x := net.Clock("x")
	a := net.Automaton("a")
	l0 := a.Location("l0")
	a.Initial(l0)
	a.Invariant(l0, x, lpta.Const(100))
	if err := net.Finalize(); err != nil {
		t.Fatal(err)
	}
	e, err := lpta.NewEngine(net, lpta.EngineOptions{Semantics: lpta.StepSemantics})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinCostReach(e, net.InitialState(), func(s *lpta.State) bool {
		return s.Clock(x) == 42
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("mid-chain goal missed")
	}
	trace, err := res.Replay(net.InitialState())
	if err != nil {
		t.Fatal(err)
	}
	if trace[len(trace)-1].Time != 42 {
		t.Fatalf("witness ends at t=%d, want 42", trace[len(trace)-1].Time)
	}
}

func TestExplore(t *testing.T) {
	e, net, goal := diamond(t)
	res, err := Explore(e, net.InitialState(), func(s *lpta.State) bool {
		return s.Locs[0] == uint16(goal)
	}, 10000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GoalReached {
		t.Fatal("explore missed the goal")
	}
	if res.States == 0 {
		t.Fatal("no states explored")
	}
	// goal has no outgoing switches and no invariant: it deadlocks.
	if res.Deadlocks == 0 {
		t.Fatal("goal location not counted as deadlock")
	}
}

func TestExploreVisitEarlyStop(t *testing.T) {
	e, net, _ := diamond(t)
	visits := 0
	res, err := Explore(e, net.InitialState(), nil, 10000, func(*lpta.State) bool {
		visits++
		return visits < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if visits != 2 || res.States != 2 {
		t.Fatalf("early stop after %d visits / %d states", visits, res.States)
	}
}

func TestHoldsInvariantly(t *testing.T) {
	e, net, goal := diamond(t)
	holds, err := HoldsInvariantly(e, net.InitialState(), func(s *lpta.State) bool {
		return s.Locs[0] == uint16(goal)
	}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Fatal("A[] not goal should be violated (goal reachable)")
	}
	holds, err = HoldsInvariantly(e, net.InitialState(), func(*lpta.State) bool { return false }, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Fatal("A[] not false must hold")
	}
}

// TestDijkstraOrdering: with two goals at different costs, the cheaper is
// returned even when the expensive one is fewer hops away.
func TestDijkstraOrdering(t *testing.T) {
	net := lpta.NewNetwork("order")
	a := net.Automaton("a")
	start := a.Location("start")
	near := a.Location("near") // 1 hop, cost 100
	farM := a.Location("mid")
	far := a.Location("far") // 2 hops, cost 2
	a.Initial(start)
	a.Switch(start, near, lpta.SwitchSpec{Cost: lpta.ConstCost(100)})
	a.Switch(start, farM, lpta.SwitchSpec{Cost: lpta.ConstCost(1)})
	a.Switch(farM, far, lpta.SwitchSpec{Cost: lpta.ConstCost(1)})
	if err := net.Finalize(); err != nil {
		t.Fatal(err)
	}
	e, err := lpta.NewEngine(net, lpta.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinCostReach(e, net.InitialState(), func(s *lpta.State) bool {
		l := s.Locs[0]
		return l == uint16(near) || l == uint16(far)
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 2 {
		t.Fatalf("cost %d, want 2 (cheap two-hop goal)", res.Cost)
	}
}
