package sweep

import (
	"errors"
	"strings"
	"testing"

	"batsched/internal/battery"
	"batsched/internal/core"
	"batsched/internal/sched"
)

// A panicking scenario must not kill the process: the worker recovers,
// remaining scenarios abort, and Run reports the panic (with stack) as a
// *PanicError.
func TestRunContainsWorkerPanic(t *testing.T) {
	bomb := PolicyCase{Name: "bomb", Run: func(*core.Compiled) (float64, int, error) {
		panic("solver exploded")
	}}
	spec := Spec{
		Banks:    []Bank{BankOf("2xB1", battery.B1(), 2)},
		Loads:    mustPaperLoads(t, []string{"ILs alt"}),
		Policies: append(Policies(sched.RoundRobin()), bomb),
	}
	results, err := Run(spec, Options{Workers: 2})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run error = %v, want *PanicError", err)
	}
	if !strings.Contains(pe.Error(), "solver exploded") {
		t.Fatalf("panic value lost: %v", pe)
	}
	if !strings.Contains(string(pe.Stack), "panic_test.go") {
		t.Fatal("panic stack does not point at the panic site")
	}
	// The panicked scenario carries the error; results remain addressable.
	found := false
	for _, r := range results {
		if r.Policy == "bomb" && r.Err != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("no result marked with the panic")
	}
}

// A panic aborts the scenarios not yet started — they are marked canceled,
// not silently zero — while already-finished ones keep their results.
func TestRunPanicAbortsRemainingScenarios(t *testing.T) {
	bomb := PolicyCase{Name: "bomb", Run: func(*core.Compiled) (float64, int, error) {
		panic("early bomb")
	}}
	// Single worker: the bomb (first policy) runs before everything else,
	// so every later scenario must observe the abort.
	spec := Spec{
		Banks:    []Bank{BankOf("2xB1", battery.B1(), 2)},
		Loads:    mustPaperLoads(t, []string{"ILs alt", "CL alt"}),
		Policies: append([]PolicyCase{bomb}, Policies(sched.RoundRobin())...),
	}
	results, err := Run(spec, Options{Workers: 1})
	if err == nil {
		t.Fatal("Run returned nil error after panic")
	}
	for i, r := range results[1:] {
		if !errors.Is(r.Err, ErrCanceled) {
			t.Fatalf("scenario %d after panic: err = %v, want ErrCanceled", i+1, r.Err)
		}
	}
}

func mustPaperLoads(t *testing.T, names []string) []LoadCase {
	t.Helper()
	lcs, err := PaperLoads(names, 2000)
	if err != nil {
		t.Fatal(err)
	}
	return lcs
}
