package sweep

import (
	"reflect"
	"sync"
	"testing"

	"batsched/internal/battery"
	"batsched/internal/core"
	"batsched/internal/sched"
)

func table5Spec(t *testing.T, loads []string) Spec {
	t.Helper()
	lcs, err := PaperLoads(loads, 200)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Banks:    []Bank{BankOf("2xB1", battery.B1(), 2)},
		Loads:    lcs,
		Policies: append(Policies(sched.Sequential(), sched.RoundRobin(), sched.BestAvailable()), OptimalCase()),
	}
}

// TestSweepMatchesDirect: every sweep cell must equal the corresponding
// direct core computation.
func TestSweepMatchesDirect(t *testing.T) {
	spec := table5Spec(t, []string{"CL alt", "ILs alt", "ILs 500"})
	results, err := Run(spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != spec.Scenarios() {
		t.Fatalf("got %d results, want %d", len(results), spec.Scenarios())
	}
	for _, lc := range spec.Loads {
		c, err := core.Compile(spec.Banks[0].Batteries, lc.Load, PaperGrid().StepMin, PaperGrid().UnitAmpMin)
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]float64{}
		for _, p := range []sched.Policy{sched.Sequential(), sched.RoundRobin(), sched.BestAvailable()} {
			lt, err := c.PolicyLifetime(p)
			if err != nil {
				t.Fatal(err)
			}
			want[p.Name()] = lt
		}
		opt, _, err := c.OptimalLifetime()
		if err != nil {
			t.Fatal(err)
		}
		want["optimal"] = opt
		for _, r := range results {
			if r.Load != lc.Name {
				continue
			}
			if r.Err != nil {
				t.Fatalf("%s/%s: %v", r.Load, r.Policy, r.Err)
			}
			if r.Lifetime != want[r.Policy] {
				t.Errorf("%s/%s: sweep %v, direct %v", r.Load, r.Policy, r.Lifetime, want[r.Policy])
			}
			if r.Decisions == 0 {
				t.Errorf("%s/%s: no decisions recorded", r.Load, r.Policy)
			}
			// Optimal cells report their search statistics; policy cells
			// have no search and must leave Stats nil.
			if r.Policy == "optimal" {
				if r.Stats == nil || r.Stats.States == 0 {
					t.Errorf("%s/%s: no search stats (%+v)", r.Load, r.Policy, r.Stats)
				}
			} else if r.Stats != nil {
				t.Errorf("%s/%s: unexpected search stats %+v", r.Load, r.Policy, r.Stats)
			}
		}
	}
}

// TestSweepDeterministicOrder: the result slice must be identical — same
// order, same values — for any worker count.
func TestSweepDeterministicOrder(t *testing.T) {
	spec := table5Spec(t, []string{"CL alt", "ILs alt", "ILs r2"})
	serial, err := Run(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		parallel, err := Run(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("results differ between 1 and %d workers", workers)
		}
	}
	// Nested order: loads iterate outside policies.
	i := 0
	for _, lc := range spec.Loads {
		for _, pc := range spec.Policies {
			r := serial[i]
			if r.Load != lc.Name || r.Policy != pc.Name || r.Bank != "2xB1" || r.Grid != "paper" {
				t.Fatalf("result %d is %s/%s/%s/%s, want paper/2xB1/%s/%s",
					i, r.Grid, r.Bank, r.Load, r.Policy, lc.Name, pc.Name)
			}
			i++
		}
	}
}

// TestSweepMultiGrid: grids multiply the scenario set, and a finer grid
// changes the discrete lifetime only within discretization error.
func TestSweepMultiGrid(t *testing.T) {
	lcs, err := PaperLoads([]string{"ILs alt"}, 60)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Banks:    []Bank{BankOf("1xB1", battery.B1(), 1)},
		Loads:    lcs,
		Policies: Policies(sched.Sequential()),
		Grids: []GridSpec{
			PaperGrid(),
			{StepMin: 0.02, UnitAmpMin: 0.02},
		},
	}
	results, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if results[0].Grid != "paper" || results[1].Grid != "T0.02-G0.02" {
		t.Fatalf("grid names %q, %q", results[0].Grid, results[1].Grid)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Grid, r.Err)
		}
		if r.Lifetime <= 0 {
			t.Fatalf("%s: lifetime %v", r.Grid, r.Lifetime)
		}
	}
	if d := results[0].Lifetime - results[1].Lifetime; d > 1 || d < -1 {
		t.Errorf("grids disagree beyond discretization error: %v vs %v", results[0].Lifetime, results[1].Lifetime)
	}
}

// TestSweepScenarioError: a cell that cannot compile fails alone without
// aborting the sweep.
func TestSweepScenarioError(t *testing.T) {
	lcs, err := PaperLoads([]string{"ILs alt"}, 60)
	if err != nil {
		t.Fatal(err)
	}
	bad := battery.B1()
	bad.Capacity = 5.5005 // not an integer number of 0.01 A·min units
	spec := Spec{
		Banks: []Bank{
			{Name: "bad", Batteries: []battery.Params{bad}},
			BankOf("good", battery.B1(), 1),
		},
		Loads:    lcs,
		Policies: Policies(sched.Sequential()),
	}
	results, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Error("bad bank did not fail")
	}
	if results[1].Err != nil {
		t.Errorf("good bank failed: %v", results[1].Err)
	}
	if results[1].Lifetime <= 0 {
		t.Errorf("good bank lifetime %v", results[1].Lifetime)
	}
}

// TestSweepSpecValidation: empty dimensions are rejected.
func TestSweepSpecValidation(t *testing.T) {
	lcs, err := PaperLoads([]string{"ILs alt"}, 60)
	if err != nil {
		t.Fatal(err)
	}
	banks := []Bank{BankOf("1xB1", battery.B1(), 1)}
	pols := Policies(sched.Sequential())
	for _, tc := range []struct {
		spec Spec
		want error
	}{
		{Spec{Loads: lcs, Policies: pols}, ErrNoBanks},
		{Spec{Banks: banks, Policies: pols}, ErrNoLoads},
		{Spec{Banks: banks, Loads: lcs}, ErrNoPolicies},
	} {
		if _, err := Run(tc.spec, Options{}); err != tc.want {
			t.Errorf("got %v, want %v", err, tc.want)
		}
	}
}

// TestLookupServesCellsWithoutCompiling: scenarios served by the Lookup
// hook are marked Cached, keep their deterministic spec labels, and — when
// a whole cell is covered — the cell is never compiled at all.
func TestLookupServesCellsWithoutCompiling(t *testing.T) {
	spec := table5Spec(t, []string{"CL alt", "ILs alt"})
	spec.Policies = Policies(sched.Sequential(), sched.BestAvailable())
	// Serve every scenario of the first load (cell 0) from the hook.
	perCell := len(spec.Policies)
	var compiled []string
	var mu sync.Mutex
	opts := Options{
		Workers: 2,
		Lookup: func(i int) (Result, bool) {
			if i/perCell == 0 {
				return Result{Lifetime: 42, Decisions: 7}, true
			}
			return Result{}, false
		},
		Compile: func(bank Bank, lc LoadCase, grid GridSpec) (*core.Compiled, error) {
			mu.Lock()
			compiled = append(compiled, lc.Name)
			mu.Unlock()
			return core.Compile(bank.Batteries, lc.Load, grid.StepMin, grid.UnitAmpMin)
		},
	}
	results, err := Run(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		fromHook := i/perCell == 0
		if r.Cached != fromHook {
			t.Fatalf("result %d cached=%v, want %v", i, r.Cached, fromHook)
		}
		if fromHook {
			if r.Lifetime != 42 || r.Decisions != 7 {
				t.Fatalf("hook result %d not delivered: %+v", i, r)
			}
			// Labels come from the spec even for cached results.
			if r.Load != "CL alt" || r.Bank != "2xB1" || r.Grid != "paper" {
				t.Fatalf("hook result %d mislabeled: %+v", i, r)
			}
		} else if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
	}
	if len(compiled) != 1 || compiled[0] != "ILs alt" {
		t.Fatalf("compiled cells %v, want only the uncached ILs alt", compiled)
	}
}

// TestPolicyDecisionsMatchSchedule: the pooled count path must report
// exactly the decision count the schedule-recording path produces.
func TestPolicyDecisionsMatchSchedule(t *testing.T) {
	spec := table5Spec(t, []string{"ILs alt", "CL alt"})
	spec.Policies = Policies(sched.Sequential(), sched.RoundRobin(), sched.BestAvailable())
	results, err := Run(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		var p sched.Policy
		switch r.Policy {
		case "sequential":
			p = sched.Sequential()
		case "round robin":
			p = sched.RoundRobin()
		case "best-of-two":
			p = sched.BestAvailable()
		}
		lcs, err := PaperLoads([]string{r.Load}, 200)
		if err != nil {
			t.Fatal(err)
		}
		c, err := core.Compile(battery.Bank(battery.B1(), 2), lcs[0].Load, PaperGrid().StepMin, PaperGrid().UnitAmpMin)
		if err != nil {
			t.Fatal(err)
		}
		lt, schedule, err := c.PolicyRun(p)
		if err != nil {
			t.Fatal(err)
		}
		if lt != r.Lifetime || len(schedule) != r.Decisions {
			t.Fatalf("%s/%s: sweep (%.4f, %d decisions) vs PolicyRun (%.4f, %d)",
				r.Load, r.Policy, r.Lifetime, r.Decisions, lt, len(schedule))
		}
	}
}
