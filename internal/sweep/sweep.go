// Package sweep runs declarative scenario grids — battery banks × loads ×
// scheduling policies × discretization grids — over a bounded worker pool.
//
// The paper's result tables are exactly such grids (Table 5 is two B1
// batteries × ten loads × four schemes), and the roadmap's production goal
// is to evaluate far bigger ones. The runner exploits the core split between
// the immutable compiled artifact (shared discretizations + compiled load,
// built once per grid cell) and cheap per-run state: scenarios run
// concurrently on runtime.NumCPU()-bounded workers, results land in a
// pre-indexed slice, and the output order is the deterministic nested
// iteration order grid × bank × load × policy no matter how the goroutines
// interleave.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"batsched/internal/battery"
	"batsched/internal/core"
	"batsched/internal/dkibam"
	"batsched/internal/load"
	"batsched/internal/obs"
	"batsched/internal/sched"
)

// Bank is one battery-bank configuration of a sweep.
type Bank struct {
	// Name labels the bank in results (e.g. "2xB1").
	Name string
	// Batteries are the bank's battery parameters.
	Batteries []battery.Params
}

// BankOf builds a Bank of n identical batteries with a generated name.
func BankOf(name string, p battery.Params, n int) Bank {
	return Bank{Name: name, Batteries: battery.Bank(p, n)}
}

// LoadCase is one load of a sweep.
type LoadCase struct {
	// Name labels the load in results.
	Name string
	// Load is the piecewise-constant load.
	Load load.Load
}

// PaperLoads builds the named Section 5 test loads ("all" or nil = all ten),
// each covering at least horizon minutes.
func PaperLoads(names []string, horizon float64) ([]LoadCase, error) {
	if len(names) == 0 {
		names = load.PaperLoadNames
	}
	cases := make([]LoadCase, len(names))
	for i, name := range names {
		l, err := load.Paper(name, horizon)
		if err != nil {
			return nil, err
		}
		cases[i] = LoadCase{Name: name, Load: l}
	}
	return cases, nil
}

// PolicyCase is one scheduling scheme of a sweep: a deterministic policy,
// the optimal search, or an arbitrary evaluator over the compiled cell.
type PolicyCase struct {
	// Name labels the scheme in results.
	Name string
	// Policy is the deterministic scheme; nil when Optimal or Run is set.
	Policy sched.Policy
	// Optimal selects the exhaustive optimal search instead of a policy.
	Optimal bool
	// OptimalWorkers sets the optimal search's worker pool (0 = serial);
	// only meaningful with Optimal. Note that the sweep itself already runs
	// scenarios in parallel, so nested workers mainly help sparse grids.
	OptimalWorkers int
	// Run is a custom evaluator over the shared compiled cell; it takes
	// precedence over Policy and Optimal. This is how schemes beyond
	// deterministic policies — the analytic single-battery lifetime, the
	// timed-automata checker, the Monte-Carlo estimator — plug into a sweep.
	// It must be safe for concurrent calls on distinct cells.
	Run func(c *core.Compiled) (lifetime float64, decisions int, err error)
}

// Policies wraps deterministic policies as sweep cases.
func Policies(ps ...sched.Policy) []PolicyCase {
	cases := make([]PolicyCase, len(ps))
	for i, p := range ps {
		cases[i] = PolicyCase{Name: p.Name(), Policy: p}
	}
	return cases
}

// OptimalCase returns the optimal-search sweep case.
func OptimalCase() PolicyCase { return PolicyCase{Name: "optimal", Optimal: true} }

// GridSpec is one discretization grid of a sweep.
type GridSpec struct {
	// Name labels the grid in results (empty = derived from the sizes).
	Name string
	// StepMin is the time step T in minutes; UnitAmpMin the charge unit
	// Gamma in A·min.
	StepMin, UnitAmpMin float64
}

// PaperGrid is the paper's discretization grid (T = 0.01 min,
// Gamma = 0.01 A·min).
func PaperGrid() GridSpec {
	return GridSpec{Name: "paper", StepMin: dkibam.PaperStepMin, UnitAmpMin: dkibam.PaperUnitAmpMin}
}

// Spec is a declarative scenario grid: every combination of grid × bank ×
// load × policy is one scenario. Grids may be empty, which means the paper
// grid.
type Spec struct {
	Banks    []Bank
	Loads    []LoadCase
	Policies []PolicyCase
	Grids    []GridSpec
}

// Scenarios returns the number of scenarios the spec expands to.
func (s Spec) Scenarios() int {
	grids := len(s.Grids)
	if grids == 0 {
		grids = 1
	}
	return grids * len(s.Banks) * len(s.Loads) * len(s.Policies)
}

// Spec errors.
var (
	ErrNoBanks    = errors.New("sweep: spec has no banks")
	ErrNoLoads    = errors.New("sweep: spec has no loads")
	ErrNoPolicies = errors.New("sweep: spec has no policies")
)

func (s Spec) validate() error {
	switch {
	case len(s.Banks) == 0:
		return ErrNoBanks
	case len(s.Loads) == 0:
		return ErrNoLoads
	case len(s.Policies) == 0:
		return ErrNoPolicies
	}
	return nil
}

// Result is the outcome of one scenario.
type Result struct {
	// Grid, Bank, Load, Policy name the scenario cell.
	Grid, Bank, Load, Policy string
	// Lifetime is the system lifetime in minutes (0 when Err is set).
	Lifetime float64
	// Decisions is the number of scheduling decisions of the run.
	Decisions int
	// Stats holds the optimal search's work counters (states expanded, memo
	// hits, pruned branches); nil for solvers without a search.
	Stats *sched.SearchStats
	// Cached marks a scenario served by Options.Lookup instead of being
	// evaluated; callers count these to report sweep-level hit/miss ratios.
	Cached bool
	// Err is the per-scenario failure, if any; one bad cell does not abort
	// the sweep.
	Err error
}

// Options tune a sweep run.
type Options struct {
	// Workers bounds the worker pool; <= 0 means runtime.NumCPU().
	Workers int
	// Compile, when set, overrides how a (grid, bank, load) cell is turned
	// into its compiled artifact. Callers that evaluate many overlapping
	// sweeps (the evaluation service) use it to share cached artifacts
	// across runs. It must be safe for concurrent use.
	Compile func(bank Bank, lc LoadCase, grid GridSpec) (*core.Compiled, error)
	// Lookup, when set, is consulted once per scenario with the scenario's
	// deterministic index before any evaluation. Returning ok serves the
	// scenario from the returned result — the cell is neither compiled nor
	// evaluated, and the result is delivered with Cached set. This is the
	// per-cell dedup hook: the evaluation service wires the cell-granular
	// result store here, so a sweep overlapping an earlier one evaluates
	// only the cells the store has not seen. It must be safe for concurrent
	// calls and may block (the service parks a worker here while another
	// in-flight sweep finishes computing the same cell).
	Lookup func(index int) (Result, bool)
	// OnResult, when set, is invoked once per completed scenario with the
	// scenario's deterministic index and its result. Calls are serialized
	// but arrive in completion order, not index order; the service's NDJSON
	// streaming reorders on top of this hook.
	OnResult func(index int, r Result)
	// Cancel, when non-nil, aborts the run early once the channel closes:
	// scenarios not yet started are marked with ErrCanceled instead of
	// being executed (in-flight ones finish). The service wires client
	// disconnects here so abandoned sweeps stop burning CPU.
	Cancel <-chan struct{}
	// CellLatency, when set, observes the wall-clock seconds each evaluated
	// (non-cached, non-canceled) scenario took, compile included. Nil is a
	// no-op.
	CellLatency *obs.Histogram
	// Span, when set, is the parent under which each evaluated scenario
	// records a "sweep.cell" child span carrying the cell's labels and
	// outcome. Nil (the common disarmed case) records nothing.
	Span *obs.Span
}

// ErrCanceled marks scenarios skipped because Options.Cancel fired.
var ErrCanceled = errors.New("sweep: run canceled")

// PanicError reports a panic recovered inside a sweep worker — a solver or
// callback blowing up on one scenario. The workers run on raw goroutines,
// so without this containment a single panicking cell would kill the whole
// process, not just its request. Run aborts the remaining scenarios and
// returns the first PanicError; the job layer marks the job failed with
// the captured stack.
type PanicError struct {
	// Value is the recovered panic value; Stack the goroutine stack at the
	// panic site.
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: scenario panicked: %v", e.Value)
}

// Run expands the spec into scenarios and executes them over a worker pool,
// returning one Result per scenario in deterministic nested order (grid,
// then bank, then load, then policy). Per-scenario failures are reported in
// Result.Err; Run itself only fails on an invalid spec.
func Run(spec Spec, opts Options) ([]Result, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	// Copied so that filling in default names never writes through to the
	// caller's slice (which would also race across concurrent Runs).
	grids := append([]GridSpec(nil), spec.Grids...)
	if len(grids) == 0 {
		grids = []GridSpec{PaperGrid()}
	}
	for i := range grids {
		if grids[i].Name == "" {
			grids[i].Name = fmt.Sprintf("T%g-G%g", grids[i].StepMin, grids[i].UnitAmpMin)
		}
	}

	// One immutable compiled artifact per (grid, bank, load) cell, shared by
	// every policy scenario of that cell and safe for concurrent use. Cells
	// compile lazily on first need, sync.Once-guarded: a cell whose every
	// scenario is served by Options.Lookup never compiles at all, which is
	// what makes overlapping-sweep resubmissions cheap. A cell that fails to
	// compile marks just its own scenarios as failed.
	type cell struct {
		once     sync.Once
		compiled *core.Compiled
		err      error
	}
	compile := opts.Compile
	if compile == nil {
		compile = func(bank Bank, lc LoadCase, grid GridSpec) (*core.Compiled, error) {
			return core.Compile(bank.Batteries, lc.Load, grid.StepMin, grid.UnitAmpMin)
		}
	}
	// A recovered worker panic aborts the rest of the run: scenarios not
	// yet started are marked ErrCanceled and Run returns the PanicError.
	// One struct, not three locals — the worker closures capture it as a
	// single heap cell.
	var panicked struct {
		aborted atomic.Bool
		mu      sync.Mutex
		err     *PanicError
	}
	canceled := func() bool {
		if panicked.aborted.Load() {
			return true
		}
		if opts.Cancel == nil {
			return false
		}
		select {
		case <-opts.Cancel:
			return true
		default:
			return false
		}
	}
	cells := make([]cell, len(grids)*len(spec.Banks)*len(spec.Loads))
	getCell := func(i, g, b, l int) (*core.Compiled, error) {
		c := &cells[i]
		c.once.Do(func() {
			c.compiled, c.err = compile(spec.Banks[b], spec.Loads[l], grids[g])
		})
		return c.compiled, c.err
	}

	results := make([]Result, spec.Scenarios())
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(results) {
		workers = len(results)
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	var emitMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// Each scenario runs inside its own recover frame: a panic
				// in a solver, compile, or callback poisons only this item,
				// aborts the remaining queue, and surfaces as Run's error —
				// the worker loop and the process survive.
				func() {
					defer func() {
						if p := recover(); p != nil {
							pe := &PanicError{Value: p, Stack: debug.Stack()}
							panicked.mu.Lock()
							if panicked.err == nil {
								panicked.err = pe
							}
							panicked.mu.Unlock()
							panicked.aborted.Store(true)
							results[i].Err = pe
						}
					}()
					p := i % len(spec.Policies)
					c := i / len(spec.Policies) // == cell index: ((g*B)+b)*L + l
					g := c / (len(spec.Banks) * len(spec.Loads))
					b := c / len(spec.Loads) % len(spec.Banks)
					l := c % len(spec.Loads)
					r := &results[i]
					served := false
					if opts.Lookup != nil && !canceled() {
						if res, ok := opts.Lookup(i); ok {
							*r = res
							r.Cached = true
							served = true
						}
					}
					// The scenario names always come from the spec, not the
					// lookup: the deterministic labeling must hold whatever a
					// cache returns.
					r.Grid, r.Bank, r.Load, r.Policy =
						grids[g].Name, spec.Banks[b].Name, spec.Loads[l].Name, spec.Policies[p].Name
					if !served {
						switch {
						case canceled():
							r.Err = ErrCanceled
						default:
							sp := opts.Span.Child("sweep.cell")
							start := time.Time{}
							if opts.CellLatency != nil || sp != nil {
								start = time.Now()
							}
							var compiled *core.Compiled
							compiled, r.Err = getCell(c, g, b, l)
							if r.Err == nil {
								r.Lifetime, r.Decisions, r.Stats, r.Err = runScenario(compiled, spec.Policies[p])
							}
							if !start.IsZero() {
								opts.CellLatency.Observe(time.Since(start).Seconds())
							}
							if sp != nil {
								sp.Set("grid", r.Grid).Set("bank", r.Bank).
									Set("load", r.Load).Set("policy", r.Policy)
								if r.Err != nil {
									sp.Set("error", r.Err.Error())
								} else if r.Stats != nil {
									sp.SetInt("states", r.Stats.States)
								}
								sp.End()
							}
						}
					}
					if opts.OnResult != nil {
						emitMu.Lock()
						opts.OnResult(i, *r)
						emitMu.Unlock()
					}
				}()
			}
		}()
	}
	for i := range results {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if panicked.err != nil {
		return results, panicked.err
	}
	return results, nil
}

// runScenario executes one scenario on a shared compiled artifact.
func runScenario(c *core.Compiled, pc PolicyCase) (lifetime float64, decisions int, stats *sched.SearchStats, err error) {
	var schedule sched.Schedule
	switch {
	case pc.Run != nil:
		lifetime, decisions, err = pc.Run(c)
		return lifetime, decisions, nil, err
	case pc.Optimal && pc.OptimalWorkers > 1:
		var st sched.SearchStats
		lifetime, schedule, st, err = c.OptimalLifetimeParallelWithStats(pc.OptimalWorkers)
		stats = &st
	case pc.Optimal:
		var st sched.SearchStats
		lifetime, schedule, st, err = c.OptimalLifetimeWithStats()
		stats = &st
	case pc.Policy != nil:
		// The pooled count variant: no Schedule is materialized and the
		// per-run System is recycled, so a policy scenario on a hot cell
		// costs only the chooser closures.
		lifetime, decisions, err = c.PolicyLifetimeCount(pc.Policy)
		return lifetime, decisions, nil, err
	default:
		return 0, 0, nil, fmt.Errorf("sweep: policy case %q has neither a policy nor the optimal flag", pc.Name)
	}
	return lifetime, len(schedule), stats, err
}
