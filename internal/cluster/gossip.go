package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// GossipMsg is one gossip exchange payload, symmetric in both directions:
// the sender identifies itself, advertises digests it recently stored, and
// shares which members its breakers currently consider healthy. There is
// no coordinator — every node gossips with a random peer on its own clock,
// and the exchange is informational (hints and health), never
// authoritative: correctness of placement rests on the deterministic ring
// alone.
type GossipMsg struct {
	From    string          `json:"from"`
	Digests []string        `json:"digests,omitempty"`
	Health  map[string]bool `json:"health,omitempty"`
}

// healthView builds this node's health map for a gossip message.
func (c *Cluster) healthView() map[string]bool {
	view := make(map[string]bool, len(c.peers)+1)
	view[c.self] = true
	for _, st := range c.Health() {
		view[st.Addr] = st.Healthy
	}
	return view
}

// HandleGossip merges an incoming gossip message and returns the reply.
// The sender proved itself alive by reaching us, so its breaker resets;
// its advertised digests become fetch hints; its health view is advisory
// only (we never open a breaker on hearsay — a peer we can reach stays
// reachable no matter what a third node claims).
func (c *Cluster) HandleGossip(msg GossipMsg) GossipMsg {
	if c == nil {
		return GossipMsg{}
	}
	c.gossipRecv.Add(1)
	if msg.From != "" && msg.From != c.self {
		c.markAlive(msg.From)
		for _, d := range msg.Digests {
			c.hint(d, msg.From)
		}
	}
	return GossipMsg{
		From:    c.self,
		Digests: c.recentDigests(),
		Health:  c.healthView(),
	}
}

// GossipOnce exchanges state with one reachable peer (rotating through the
// member list from a random start). The reply's digests become hints
// attributed to the replying peer. Returns ErrNotArmed on single-node
// clusters and ErrPeerUnavailable when no peer admits traffic.
func (c *Cluster) GossipOnce(ctx context.Context) error {
	if !c.Armed() {
		return ErrNotArmed
	}
	start := gossipRand(len(c.peers))
	var lastErr error = ErrPeerUnavailable
	for k := 0; k < len(c.peers); k++ {
		p := c.peers[(start+k)%len(c.peers)]
		if !c.admits(p) {
			continue
		}
		body, err := json.Marshal(GossipMsg{
			From:    c.self,
			Digests: c.recentDigests(),
			Health:  c.healthView(),
		})
		if err != nil {
			return err
		}
		c.gossipSent.Add(1)
		out, err := c.do(ctx, p, "gossip", http.MethodPost, "/v1/cluster/gossip", body, c.rpcTimeout)
		if err != nil || out == nil {
			c.gossipFails.Add(1)
			lastErr = err
			if lastErr == nil {
				lastErr = fmt.Errorf("cluster: gossip with %s: not found", p.addr)
			}
			continue
		}
		var reply GossipMsg
		if err := json.Unmarshal(out, &reply); err != nil {
			c.gossipFails.Add(1)
			lastErr = err
			continue
		}
		from := reply.From
		if from == "" {
			from = p.addr
		}
		for _, d := range reply.Digests {
			c.hint(d, from)
		}
		return nil
	}
	return lastErr
}

// gossipRand picks the rotation start; a package-level seeded source keeps
// it cheap without coupling gossip order across nodes.
var gossipRng = struct {
	mu  sync.Mutex
	rng *rand.Rand
}{rng: rand.New(rand.NewSource(time.Now().UnixNano()))}

func gossipRand(n int) int {
	if n <= 1 {
		return 0
	}
	gossipRng.mu.Lock()
	defer gossipRng.mu.Unlock()
	return gossipRng.rng.Intn(n)
}

// StartGossip launches the periodic gossip loop; no-op on disarmed
// clusters or when interval <= 0. Stop it with StopGossip.
func (c *Cluster) StartGossip(interval time.Duration) {
	if !c.Armed() || interval <= 0 || c.gossipStop != nil {
		return
	}
	stop := make(chan struct{})
	c.gossipStop = stop
	c.gossipWG.Add(1)
	go func() {
		defer c.gossipWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_ = c.GossipOnce(context.Background())
			}
		}
	}()
}

// StopGossip stops the gossip loop and waits for it to exit. Safe to call
// when the loop never started.
func (c *Cluster) StopGossip() {
	if c == nil || c.gossipStop == nil {
		return
	}
	close(c.gossipStop)
	c.gossipWG.Wait()
	c.gossipStop = nil
}
