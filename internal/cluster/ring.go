// Package cluster is the multi-node tier of the evaluation service: a
// consistent-hash ring that assigns every scenario cell (keyed by its
// content digest, see service.CellDigests) to exactly one owning node, an
// HTTP peer client with per-peer circuit breakers and bounded concurrency,
// and a coordinator-free gossip exchange of store-hit digests and health.
//
// The cell digest is the shard key on purpose: it is content-derived and
// process-independent, so every node computes the same owner for the same
// cell without any coordination — two nodes handed overlapping sweeps agree
// on who evaluates each shared cell before either has spoken to the other.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultReplicas is the number of virtual nodes each member contributes to
// the ring. 128 points per member keeps the expected ownership imbalance
// and the key movement on membership change within a few percent of the
// consistent-hashing ideal (1/N) without making placement lookups slow.
const DefaultReplicas = 128

// Ring is an immutable consistent-hash ring over named members. Placement
// is deterministic across processes: positions are SHA-256 based, so every
// node that builds a ring from the same member list (any order) computes
// identical ownership for every key.
type Ring struct {
	replicas int
	members  []string // sorted, deduplicated
	hashes   []uint64 // sorted virtual-node positions
	owners   []int32  // owners[i] = index into members of hashes[i]
}

// ringHash maps bytes to a position on the ring. The first 8 bytes of a
// SHA-256 are overkill cryptographically but exactly right operationally:
// no seed, no process-dependent state, stable forever.
func ringHash(parts ...string) uint64 {
	h := sha256.New()
	for i, p := range parts {
		if i > 0 {
			h.Write([]byte{0})
		}
		h.Write([]byte(p))
	}
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0])[:8])
}

// NewRing builds a ring over the member names (node base URLs in batserve)
// with the given number of virtual nodes per member (<= 0 means
// DefaultReplicas). Member order does not matter — the list is sorted and
// deduplicated — so peers handed the same set in any order agree on
// placement. An empty member list yields a nil ring, on which Owner
// returns "".
func NewRing(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	if len(uniq) == 0 {
		return nil
	}
	sort.Strings(uniq)
	r := &Ring{
		replicas: replicas,
		members:  uniq,
		hashes:   make([]uint64, 0, len(uniq)*replicas),
		owners:   make([]int32, 0, len(uniq)*replicas),
	}
	type vnode struct {
		hash  uint64
		owner int32
	}
	vnodes := make([]vnode, 0, len(uniq)*replicas)
	for mi, m := range uniq {
		for v := 0; v < replicas; v++ {
			vnodes = append(vnodes, vnode{
				hash:  ringHash("ring-v1", m, strconv.Itoa(v)),
				owner: int32(mi),
			})
		}
	}
	sort.Slice(vnodes, func(i, j int) bool {
		if vnodes[i].hash != vnodes[j].hash {
			return vnodes[i].hash < vnodes[j].hash
		}
		// A full 64-bit collision between distinct members is vanishingly
		// unlikely; break it by member order so placement stays total.
		return vnodes[i].owner < vnodes[j].owner
	})
	for _, v := range vnodes {
		r.hashes = append(r.hashes, v.hash)
		r.owners = append(r.owners, v.owner)
	}
	return r
}

// Owner returns the member that owns key: the first virtual node clockwise
// from the key's ring position. A nil ring owns nothing ("").
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.hashes) == 0 {
		return ""
	}
	h := ringHash("key-v1", key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap around
	}
	return r.members[r.owners[i]]
}

// Members returns the sorted member list (shared slice; do not mutate).
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	return r.members
}

// Replicas returns the virtual nodes per member.
func (r *Ring) Replicas() int {
	if r == nil {
		return 0
	}
	return r.replicas
}

// Share returns the fraction of the 64-bit hash space owned by member —
// the expected fraction of cells that land on it. Unknown members own 0.
func (r *Ring) Share(member string) float64 {
	if r == nil || len(r.hashes) == 0 {
		return 0
	}
	mi := int32(-1)
	for i, m := range r.members {
		if m == member {
			mi = int32(i)
			break
		}
	}
	if mi < 0 {
		return 0
	}
	var owned uint64
	for i, h := range r.hashes {
		if r.owners[i] != mi {
			continue
		}
		// The arc assigned to vnode i stretches from the previous vnode
		// (exclusive) to i (inclusive); the first vnode also owns the
		// wrap-around arc.
		var prev uint64
		if i > 0 {
			prev = r.hashes[i-1]
			owned += h - prev
		} else {
			owned += h + (^uint64(0) - r.hashes[len(r.hashes)-1])
		}
	}
	return float64(owned) / float64(^uint64(0))
}

// String describes the ring for logs and the cluster view endpoint.
func (r *Ring) String() string {
	if r == nil {
		return "ring(empty)"
	}
	return fmt.Sprintf("ring(%d members, %d vnodes)", len(r.members), len(r.hashes))
}
