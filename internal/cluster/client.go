package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"batsched/internal/obs"
)

// maxPeerResponseBytes bounds peer response bodies; one cell line is a few
// hundred bytes and a batched lookup a few megabytes at the extreme.
const maxPeerResponseBytes = 32 << 20

// lookupRequest and lookupResponse are the wire shapes of the batched
// cell probe (POST /v1/cells/lookup). Lines aligns with Digests; absent
// cells are null.
type lookupRequest struct {
	Digests []string `json:"digests"`
}

type lookupResponse struct {
	Lines []json.RawMessage `json:"lines"`
}

// do runs one peer RPC under the breaker, concurrency bound, fault hook,
// timeout, span, and latency histogram. want is the expected status;
// a 404 returns (nil, nil) so callers can distinguish "peer healthy,
// cell absent" from peer trouble without tripping the breaker.
func (c *Cluster) do(ctx context.Context, p *peer, op, method, path string, body []byte, timeout time.Duration) ([]byte, error) {
	if err := c.inj.Check("peer." + op); err != nil {
		return nil, err
	}
	release, err := c.acquire(p)
	if err != nil {
		return nil, err
	}
	var sp *obs.Span
	ctx, sp = obs.StartSpan(ctx, "peer."+op)
	sp.Set("peer", p.addr)
	start := time.Now()
	out, notFound, err := c.roundTrip(ctx, p, method, path, body, timeout)
	if c.latency != nil {
		if h := c.latency(op); h != nil {
			h.Observe(time.Since(start).Seconds())
		}
	}
	if err != nil {
		sp.Set("error", err.Error())
	} else if notFound {
		sp.Set("outcome", "absent")
	}
	sp.End()
	release(err)
	if notFound {
		return nil, nil
	}
	return out, err
}

// roundTrip is the bare HTTP exchange: peer-relative path, JSON bodies,
// bounded response reads. A 404 is (nil, true, nil): the peer answered,
// it just does not hold the resource.
func (c *Cluster) roundTrip(ctx context.Context, p *peer, method, path string, body []byte, timeout time.Duration) ([]byte, bool, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, p.addr+path, rd)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: build %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponseBytes))
	if err != nil {
		return nil, false, err
	}
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, true, nil
	case resp.StatusCode >= 300:
		msg := bytes.TrimSpace(out)
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return nil, false, fmt.Errorf("cluster: peer %s: %s %s: status %d: %s", p.addr, method, path, resp.StatusCode, msg)
	}
	return out, false, nil
}

// FetchCells implements store.RemoteTier: fill the nil slots of lines from
// peers. Each missing digest is routed to its ring owner (or, when the
// owner is this node or unavailable, to a gossip-hinted holder), grouped
// into one batched lookup per peer. Slots are only ever filled with a
// complete line; every failure path leaves them nil.
func (c *Cluster) FetchCells(digests []string, lines []json.RawMessage) int {
	if !c.Armed() {
		return 0
	}
	// Group missing indices by target peer.
	groups := make(map[*peer][]int)
	for i, d := range digests {
		if lines[i] != nil {
			continue
		}
		if p, viaHint := c.routeFetch(d); p != nil {
			groups[p] = append(groups[p], i)
			if viaHint {
				c.hintHits.Add(1)
			}
		}
	}
	filled := 0
	for p, idx := range groups {
		c.fetches.Add(1)
		batch := make([]string, len(idx))
		for j, i := range idx {
			batch[j] = digests[i]
		}
		body, err := json.Marshal(lookupRequest{Digests: batch})
		if err != nil {
			c.fetchErrors.Add(1)
			continue
		}
		out, err := c.do(context.Background(), p, "fetch", http.MethodPost, "/v1/cells/lookup", body, c.rpcTimeout)
		if err != nil || out == nil {
			c.fetchErrors.Add(1)
			continue
		}
		var resp lookupResponse
		if err := json.Unmarshal(out, &resp); err != nil || len(resp.Lines) != len(idx) {
			c.fetchErrors.Add(1)
			continue
		}
		for j, i := range idx {
			if line := resp.Lines[j]; len(line) > 0 && !bytes.Equal(line, []byte("null")) {
				lines[i] = line
				filled++
			}
		}
	}
	c.fetchedCells.Add(int64(filled))
	return filled
}

// routeFetch picks the peer to ask for digest: the ring owner when it is
// another node and its breaker admits traffic, else a gossip-hinted holder.
func (c *Cluster) routeFetch(digest string) (*peer, bool) {
	owner := c.ring.Owner(digest)
	if owner != c.self {
		if p := c.byAddr[owner]; p != nil && c.admits(p) {
			return p, false
		}
	}
	if addr, ok := c.hintFor(digest); ok {
		if p := c.byAddr[addr]; p != nil && c.admits(p) {
			return p, true
		}
	}
	return nil, false
}

// admits reports whether p's breaker would admit an RPC right now (without
// consuming the half-open probe slot).
func (c *Cluster) admits(p *peer) bool {
	now := c.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fails < c.threshold {
		return true
	}
	return !now.Before(p.openUntil) && !p.probing
}

// PushCell implements store.RemoteTier: offer a locally stored cell to the
// cluster. The digest is recorded for gossip; when another node owns it,
// the line is replicated there asynchronously (bounded by the peer's
// concurrency bound; at saturation or with the breaker open the push is
// dropped and counted — the owner can still fetch it back via gossip).
func (c *Cluster) PushCell(digest string, line json.RawMessage) {
	if !c.Armed() {
		return
	}
	c.RecordLocalCell(digest)
	owner := c.ring.Owner(digest)
	if owner == c.self {
		return
	}
	p := c.byAddr[owner]
	if p == nil || !c.admits(p) {
		c.pushesDropped.Add(1)
		return
	}
	c.pushes.Add(1)
	// The line is store-owned and immutable; safe to share with the
	// goroutine. url.PathEscape keeps hostile digests from smuggling path
	// segments even though real digests are hex.
	go func() {
		_, err := c.do(context.Background(), p, "push", http.MethodPut,
			"/v1/cells/"+url.PathEscape(digest), line, c.rpcTimeout)
		if err != nil {
			c.pushErrors.Add(1)
		}
	}()
}

// EvaluateCell forwards one owned-elsewhere cell to its ring owner:
// POST {owner}/v1/cells/{digest}/evaluate with the single-cell sweep
// request as body, returning the owner's stored NDJSON line. The owner's
// in-flight table guarantees the cell is evaluated at most once cluster-
// wide no matter how many nodes forward it concurrently. Any error —
// breaker open, timeout, non-200 — tells the caller to fall back to local
// evaluation.
func (c *Cluster) EvaluateCell(ctx context.Context, digest string, body []byte) (json.RawMessage, error) {
	if !c.Armed() {
		return nil, ErrNotArmed
	}
	owner := c.ring.Owner(digest)
	if owner == c.self {
		return nil, fmt.Errorf("cluster: cell %s is self-owned", digest)
	}
	p := c.byAddr[owner]
	if p == nil {
		return nil, ErrPeerUnavailable
	}
	c.evaluates.Add(1)
	out, err := c.do(ctx, p, "evaluate", http.MethodPost,
		"/v1/cells/"+url.PathEscape(digest)+"/evaluate", body, c.evalTimeout)
	if err == nil && out == nil {
		err = fmt.Errorf("cluster: peer %s: evaluate %s: not found", owner, digest)
	}
	if err != nil {
		c.evaluateErrors.Add(1)
		return nil, err
	}
	return bytes.TrimSpace(out), nil
}
