package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func keys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%016x%016x", rng.Uint64(), rng.Uint64())
	}
	return out
}

// TestRingPlacementDeterministic: the same member set — in any order —
// yields identical ownership for every key, because placement is pure
// SHA-256 arithmetic with no process-dependent state. This is the property
// that lets every node compute ownership locally and still agree.
func TestRingPlacementDeterministic(t *testing.T) {
	members := []string{"http://node-c:8080", "http://node-a:8080", "http://node-b:8080"}
	shuffled := []string{"http://node-b:8080", "http://node-c:8080", "http://node-a:8080"}
	r1 := NewRing(members, 0)
	r2 := NewRing(shuffled, 0)
	for _, k := range keys(2000, 1) {
		if o1, o2 := r1.Owner(k), r2.Owner(k); o1 != o2 {
			t.Fatalf("member order changed placement of %s: %s vs %s", k, o1, o2)
		}
	}
}

// TestRingPlacementGolden pins concrete placements so an accidental change
// to the hash basis (which would strand every existing cluster's placement)
// fails loudly. The expected owners were computed once from the sha256
// scheme and must never change.
func TestRingPlacementGolden(t *testing.T) {
	r := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 128)
	golden := map[string]string{
		"cell-digest-000": "http://a:1",
		"cell-digest-001": "http://c:1",
		"cell-digest-002": "http://a:1",
	}
	for k, want := range golden {
		if got := r.Owner(k); got != want {
			t.Errorf("Owner(%q) = %q, want %q (hash basis changed?)", k, got, want)
		}
	}
}

// TestRingBalance: with 128 vnodes per member, every member's share of the
// hash space is within a reasonable band of 1/N, and shares sum to ~1.
func TestRingBalance(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := NewRing(members, 0)
	var sum float64
	for _, m := range members {
		s := r.Share(m)
		sum += s
		if s < 0.10 || s > 0.45 {
			t.Errorf("share(%s) = %.3f, badly off 1/4", m, s)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %.6f, want 1", sum)
	}
}

// TestRingBoundedMovement: adding one node to an N-node ring moves fewer
// than 2/(N+1) of the keys, and every moved key moves TO the new node;
// removing a node moves fewer than 2/N, all FROM the removed node. This is
// consistent hashing's defining property — a naive modulo map reshuffles
// nearly everything.
func TestRingBoundedMovement(t *testing.T) {
	base := []string{"http://n1:1", "http://n2:1", "http://n3:1", "http://n4:1"}
	joined := append(append([]string(nil), base...), "http://n5:1")
	rBase := NewRing(base, 0)
	rJoin := NewRing(joined, 0)
	ks := keys(20000, 2)

	moved := 0
	for _, k := range ks {
		was, is := rBase.Owner(k), rJoin.Owner(k)
		if was != is {
			moved++
			if is != "http://n5:1" {
				t.Fatalf("key %s moved %s -> %s on join; may only move to the joiner", k, was, is)
			}
		}
	}
	bound := 2 * len(ks) / len(joined)
	if moved >= bound {
		t.Fatalf("join moved %d of %d keys, want < %d (2/N)", moved, len(ks), bound)
	}
	if moved == 0 {
		t.Fatal("join moved no keys; the new node owns nothing")
	}

	left := base[:3] // n4 leaves
	rLeft := NewRing(left, 0)
	moved = 0
	for _, k := range ks {
		was, is := rBase.Owner(k), rLeft.Owner(k)
		if was != is {
			moved++
			if was != "http://n4:1" {
				t.Fatalf("key %s moved %s -> %s on leave; only the leaver's keys may move", k, was, is)
			}
		}
	}
	bound = 2 * len(ks) / len(base)
	if moved >= bound {
		t.Fatalf("leave moved %d of %d keys, want < %d (2/N)", moved, len(ks), bound)
	}
}

// TestRingFuzzVsModuloReference: seeded fuzz across random member sets.
// The reference modulo map (hash % N into the sorted member list) agrees
// with the ring on validity — both always pick a real member — but on
// membership change the modulo map reshuffles the bulk of the keyspace
// while the ring stays near 1/N. The fuzz pins both facts.
func TestRingFuzzVsModuloReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	moduloOwner := func(members []string, key string) string {
		return members[ringHash("key-v1", key)%uint64(len(members))]
	}
	for round := 0; round < 20; round++ {
		n := 2 + rng.Intn(6)
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("http://fuzz-%d-%d:1", round, i)
		}
		r := NewRing(members, 0)
		valid := make(map[string]bool, n)
		for _, m := range members {
			valid[m] = true
		}
		ks := keys(500, int64(round))
		for _, k := range ks {
			if o := r.Owner(k); !valid[o] {
				t.Fatalf("round %d: ring placed %s on non-member %q", round, k, o)
			}
			if o := moduloOwner(members, k); !valid[o] {
				t.Fatalf("round %d: reference placed %s on non-member %q", round, k, o)
			}
		}
		// Drop the last member from both maps and compare churn.
		if n < 3 {
			continue
		}
		smaller := members[:n-1]
		rSmall := NewRing(smaller, 0)
		ringMoved, moduloMoved := 0, 0
		for _, k := range ks {
			if r.Owner(k) != rSmall.Owner(k) {
				ringMoved++
			}
			if moduloOwner(members, k) != moduloOwner(smaller, k) {
				moduloMoved++
			}
		}
		if ringMoved >= 2*len(ks)/n {
			t.Fatalf("round %d (n=%d): ring moved %d/%d keys, want < %d", round, n, ringMoved, len(ks), 2*len(ks)/n)
		}
		// The modulo reference churns roughly (n-1)/n of all keys; require
		// it to be clearly worse than the ring so the comparison stays
		// meaningful rather than vacuous.
		if moduloMoved <= ringMoved {
			t.Fatalf("round %d: modulo reference moved %d keys, ring %d — reference should churn more", round, moduloMoved, ringMoved)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	if r := NewRing(nil, 0); r != nil {
		t.Fatal("empty member list should yield a nil ring")
	}
	var nilRing *Ring
	if o := nilRing.Owner("k"); o != "" {
		t.Fatalf("nil ring owner = %q", o)
	}
	solo := NewRing([]string{"http://only:1"}, 0)
	for _, k := range keys(50, 3) {
		if o := solo.Owner(k); o != "http://only:1" {
			t.Fatalf("single-member ring placed %s on %q", k, o)
		}
	}
	dup := NewRing([]string{"http://a:1", "http://a:1", "http://b:1"}, 0)
	if got := len(dup.Members()); got != 2 {
		t.Fatalf("duplicated members not collapsed: %d", got)
	}
}
