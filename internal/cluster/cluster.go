package cluster

import (
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"batsched/internal/faults"
	"batsched/internal/obs"
)

// ErrPeerUnavailable is returned when a peer cannot be asked right now:
// its circuit breaker is open, its concurrency bound is saturated, or it
// is not a cluster member at all. Callers treat it like any other RPC
// failure — fall back locally — but it never cost a network round trip.
var ErrPeerUnavailable = errors.New("cluster: peer unavailable")

// ErrNotArmed is returned by remote operations on a single-node cluster.
var ErrNotArmed = errors.New("cluster: not armed (no peers)")

// Options configure a Cluster.
type Options struct {
	// Self is this node's advertised base URL (e.g. "http://10.0.0.1:8080").
	// It must appear in the ring exactly as the peers spell it.
	Self string
	// Peers are the other members' base URLs. Empty means single-node: the
	// cluster is disarmed, OwnsCell is always true, and no RPC ever fires.
	Peers []string
	// Replicas is the virtual-node count per member (<= 0 = DefaultReplicas).
	Replicas int
	// HTTPClient issues peer RPCs (default: a dedicated client; timeouts
	// come from the per-RPC contexts, not the client).
	HTTPClient *http.Client
	// RPCTimeout bounds fetch/push/lookup/gossip RPCs (default 2s).
	// EvalTimeout bounds forwarded cell evaluations, which run a solver on
	// the owner and legitimately take longer (default 60s).
	RPCTimeout  time.Duration
	EvalTimeout time.Duration
	// MaxPerPeer bounds concurrent RPCs per peer (default 4). At the bound,
	// synchronous calls fail fast with ErrPeerUnavailable (the caller falls
	// back locally) and asynchronous pushes are dropped and counted.
	MaxPerPeer int
	// BreakerThreshold is how many consecutive failures open a peer's
	// circuit (default 3); BreakerCooldown how long it stays open before a
	// half-open probe (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HintCap bounds the gossip hint map (digest → node that advertised
	// holding it); default 4096. At capacity new hints evict arbitrary old
	// ones — hints are an optimization, not a correctness surface.
	HintCap int
	// GossipWindow bounds how many recently stored digests one gossip
	// message advertises (default 128).
	GossipWindow int
	// Injector, when set, is the deterministic fault-injection hook; peer
	// RPCs check ops "peer.fetch", "peer.push", "peer.evaluate", and
	// "peer.gossip" before touching the network.
	Injector *faults.Injector
	// RPCLatency, when set, resolves the latency histogram for a peer RPC
	// kind ("fetch", "push", "evaluate", "gossip"). Nil is a no-op.
	RPCLatency func(op string) *obs.Histogram
	// Now is injectable for deterministic breaker tests (default time.Now).
	Now func() time.Time
}

// peer is the per-member client state: circuit breaker, concurrency bound,
// and health bookkeeping.
type peer struct {
	addr string
	sem  chan struct{}

	mu        sync.Mutex
	fails     int       // consecutive failures
	openUntil time.Time // breaker open while now < openUntil
	probing   bool      // a half-open probe is in flight
	lastErr   string
	lastSeen  time.Time // last successful RPC or received gossip

	rpcs, rpcErrors atomic.Int64
}

// Cluster is one node's view of the multi-node tier. It is safe for
// concurrent use. A Cluster built without peers is permanently disarmed:
// every cell is self-owned and every remote operation is a no-op, so the
// single-node path pays only a nil/flag check.
type Cluster struct {
	self string
	ring *Ring

	peers  []*peer
	byAddr map[string]*peer

	client      *http.Client
	rpcTimeout  time.Duration
	evalTimeout time.Duration
	threshold   int
	cooldown    time.Duration
	inj         *faults.Injector
	latency     func(op string) *obs.Histogram
	now         func() time.Time

	// hints: digest → peer addr learned from gossip; consulted when the
	// ring owner cannot serve a fetch.
	hintMu  sync.Mutex
	hints   map[string]string
	hintCap int

	// recent is a bounded ring of digests this node recently stored,
	// advertised on the next gossip exchange.
	recentMu  sync.Mutex
	recent    []string
	recentPos int
	window    int

	gossipStop chan struct{}
	gossipWG   sync.WaitGroup

	fetches, fetchedCells, fetchErrors  atomic.Int64
	pushes, pushErrors, pushesDropped   atomic.Int64
	evaluates, evaluateErrors           atomic.Int64
	gossipSent, gossipRecv, gossipFails atomic.Int64
	hintHits, breakerTrips              atomic.Int64
}

// New builds a Cluster. With no peers it is a valid, disarmed single-node
// cluster.
func New(opts Options) *Cluster {
	c := &Cluster{
		self:        opts.Self,
		client:      opts.HTTPClient,
		rpcTimeout:  opts.RPCTimeout,
		evalTimeout: opts.EvalTimeout,
		threshold:   opts.BreakerThreshold,
		cooldown:    opts.BreakerCooldown,
		inj:         opts.Injector,
		latency:     opts.RPCLatency,
		now:         opts.Now,
		hintCap:     opts.HintCap,
		window:      opts.GossipWindow,
		byAddr:      make(map[string]*peer),
		hints:       make(map[string]string),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.rpcTimeout <= 0 {
		c.rpcTimeout = 2 * time.Second
	}
	if c.evalTimeout <= 0 {
		c.evalTimeout = 60 * time.Second
	}
	if c.threshold <= 0 {
		c.threshold = 3
	}
	if c.cooldown <= 0 {
		c.cooldown = 5 * time.Second
	}
	if c.hintCap <= 0 {
		c.hintCap = 4096
	}
	if c.window <= 0 {
		c.window = 128
	}
	if c.now == nil {
		c.now = time.Now
	}
	maxPerPeer := opts.MaxPerPeer
	if maxPerPeer <= 0 {
		maxPerPeer = 4
	}
	if len(opts.Peers) > 0 {
		members := append([]string{opts.Self}, opts.Peers...)
		c.ring = NewRing(members, opts.Replicas)
		for _, addr := range opts.Peers {
			if addr == "" || addr == opts.Self || c.byAddr[addr] != nil {
				continue
			}
			p := &peer{addr: addr, sem: make(chan struct{}, maxPerPeer)}
			c.peers = append(c.peers, p)
			c.byAddr[addr] = p
		}
	}
	c.recent = make([]string, 0, c.window)
	return c
}

// Armed reports whether the cluster has peers; disarmed clusters own every
// cell and never speak HTTP.
func (c *Cluster) Armed() bool { return c != nil && len(c.peers) > 0 }

// Self returns this node's advertised address.
func (c *Cluster) Self() string { return c.self }

// Ring exposes the placement ring (nil when disarmed).
func (c *Cluster) Ring() *Ring {
	if c == nil {
		return nil
	}
	return c.ring
}

// OwnsCell reports whether this node owns digest under the ring. Disarmed
// clusters own everything — the ownership rule degrades to the existing
// single-node behavior with zero extra work.
func (c *Cluster) OwnsCell(digest string) bool {
	if !c.Armed() {
		return true
	}
	return c.ring.Owner(digest) == c.self
}

// Owner returns the owning member for digest ("" when disarmed).
func (c *Cluster) Owner(digest string) string {
	if !c.Armed() {
		return ""
	}
	return c.ring.Owner(digest)
}

// acquire admits one RPC to p, enforcing the breaker and the concurrency
// bound. On success it returns a release function the caller MUST invoke
// with the RPC outcome; on failure it returns ErrPeerUnavailable without
// costing a round trip.
func (c *Cluster) acquire(p *peer) (func(err error), error) {
	now := c.now()
	p.mu.Lock()
	if !p.openUntil.IsZero() && p.fails >= c.threshold {
		if now.Before(p.openUntil) {
			p.mu.Unlock()
			return nil, ErrPeerUnavailable
		}
		// Cooldown elapsed: admit exactly one half-open probe.
		if p.probing {
			p.mu.Unlock()
			return nil, ErrPeerUnavailable
		}
		p.probing = true
	}
	p.mu.Unlock()

	select {
	case p.sem <- struct{}{}:
	default:
		p.mu.Lock()
		p.probing = false
		p.mu.Unlock()
		return nil, ErrPeerUnavailable
	}
	p.rpcs.Add(1)
	return func(err error) {
		<-p.sem
		p.mu.Lock()
		p.probing = false
		if err == nil {
			p.fails = 0
			p.openUntil = time.Time{}
			p.lastSeen = c.now()
			p.lastErr = ""
		} else {
			p.rpcErrors.Add(1)
			p.fails++
			p.lastErr = err.Error()
			if p.fails >= c.threshold {
				wasOpen := !p.openUntil.IsZero()
				p.openUntil = c.now().Add(c.cooldown)
				if !wasOpen {
					c.breakerTrips.Add(1)
				}
			}
		}
		p.mu.Unlock()
	}, nil
}

// markAlive resets a peer's breaker — called when the peer proves itself
// (e.g. it gossiped to us), so a recovered node gets traffic again without
// waiting out a cooldown.
func (c *Cluster) markAlive(addr string) {
	p := c.byAddr[addr]
	if p == nil {
		return
	}
	p.mu.Lock()
	p.fails = 0
	p.openUntil = time.Time{}
	p.lastErr = ""
	p.lastSeen = c.now()
	p.mu.Unlock()
}

// PeerStatus is one member's health in this node's view.
type PeerStatus struct {
	Addr        string `json:"addr"`
	Healthy     bool   `json:"healthy"`
	Reason      string `json:"reason,omitempty"`
	ConsecFails int    `json:"consecutive_failures,omitempty"`
	BreakerOpen bool   `json:"breaker_open,omitempty"`
}

// Health snapshots every peer's breaker state, in stable (construction)
// order.
func (c *Cluster) Health() []PeerStatus {
	if !c.Armed() {
		return nil
	}
	now := c.now()
	out := make([]PeerStatus, len(c.peers))
	for i, p := range c.peers {
		p.mu.Lock()
		open := p.fails >= c.threshold && now.Before(p.openUntil)
		st := PeerStatus{
			Addr:        p.addr,
			Healthy:     p.fails < c.threshold,
			ConsecFails: p.fails,
			BreakerOpen: open,
		}
		if !st.Healthy {
			st.Reason = p.lastErr
			if st.Reason == "" {
				st.Reason = "unreachable"
			}
		}
		p.mu.Unlock()
		out[i] = st
	}
	return out
}

// UnreachableShare returns the fraction of the ring owned by peers whose
// breaker currently reports them unhealthy — the share of shards that
// cannot be forwarded to their owner right now. Self is always reachable.
func (c *Cluster) UnreachableShare() float64 {
	if !c.Armed() {
		return 0
	}
	var share float64
	for _, st := range c.Health() {
		if !st.Healthy {
			share += c.ring.Share(st.Addr)
		}
	}
	return share
}

// Stats snapshots the cluster's operational counters for /metrics.
type Stats struct {
	Members       int
	PeersHealthy  int
	RingReplicas  int
	Fetches       int64
	FetchedCells  int64
	FetchErrors   int64
	Pushes        int64
	PushErrors    int64
	PushesDropped int64
	Evaluates     int64
	EvaluateErr   int64
	GossipSent    int64
	GossipRecv    int64
	GossipErrors  int64
	HintCells     int
	HintHits      int64
	BreakerTrips  int64
}

// Stats returns a snapshot of the cluster counters.
func (c *Cluster) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	healthy := 0
	for _, st := range c.Health() {
		if st.Healthy {
			healthy++
		}
	}
	c.hintMu.Lock()
	hintCells := len(c.hints)
	c.hintMu.Unlock()
	members := 0
	if c.Armed() {
		members = len(c.ring.Members())
	}
	return Stats{
		Members:       members,
		PeersHealthy:  healthy,
		RingReplicas:  c.ring.Replicas(),
		Fetches:       c.fetches.Load(),
		FetchedCells:  c.fetchedCells.Load(),
		FetchErrors:   c.fetchErrors.Load(),
		Pushes:        c.pushes.Load(),
		PushErrors:    c.pushErrors.Load(),
		PushesDropped: c.pushesDropped.Load(),
		Evaluates:     c.evaluates.Load(),
		EvaluateErr:   c.evaluateErrors.Load(),
		GossipSent:    c.gossipSent.Load(),
		GossipRecv:    c.gossipRecv.Load(),
		GossipErrors:  c.gossipFails.Load(),
		HintCells:     hintCells,
		HintHits:      c.hintHits.Load(),
		BreakerTrips:  c.breakerTrips.Load(),
	}
}

// hint records that addr holds digest; bounded by evicting an arbitrary
// entry at capacity (hints are advisory).
func (c *Cluster) hint(digest, addr string) {
	if addr == "" || addr == c.self {
		return
	}
	c.hintMu.Lock()
	if len(c.hints) >= c.hintCap {
		for k := range c.hints {
			delete(c.hints, k)
			break
		}
	}
	c.hints[digest] = addr
	c.hintMu.Unlock()
}

// hintFor returns the gossip-advertised holder of digest, if any.
func (c *Cluster) hintFor(digest string) (string, bool) {
	c.hintMu.Lock()
	addr, ok := c.hints[digest]
	c.hintMu.Unlock()
	return addr, ok
}

// RecordLocalCell notes that this node now holds digest locally; the next
// gossip exchange advertises it so peers can fetch without guessing.
func (c *Cluster) RecordLocalCell(digest string) {
	if !c.Armed() {
		return
	}
	c.recentMu.Lock()
	if len(c.recent) < c.window {
		c.recent = append(c.recent, digest)
	} else {
		c.recent[c.recentPos] = digest
		c.recentPos = (c.recentPos + 1) % c.window
	}
	c.recentMu.Unlock()
}

// recentDigests snapshots the advertisement window.
func (c *Cluster) recentDigests() []string {
	c.recentMu.Lock()
	out := append([]string(nil), c.recent...)
	c.recentMu.Unlock()
	return out
}
