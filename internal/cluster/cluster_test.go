package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"batsched/internal/faults"
)

// digestOwnedBy scans synthetic digests until one lands on member.
func digestOwnedBy(t *testing.T, r *Ring, member string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		d := fmt.Sprintf("test-digest-%d", i)
		if r.Owner(d) == member {
			return d
		}
	}
	t.Fatalf("no digest owned by %s in 100000 tries", member)
	return ""
}

// testClock is an injectable clock for breaker timing.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerOpensFailsFastAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !healthy.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ts.Close()

	clock := &testClock{t: time.Unix(1000, 0)}
	c := New(Options{
		Self:             "http://self:1",
		Peers:            []string{ts.URL},
		BreakerThreshold: 3,
		BreakerCooldown:  5 * time.Second,
		Now:              clock.Now,
	})
	d := digestOwnedBy(t, c.ring, ts.URL)

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := c.EvaluateCell(context.Background(), d, []byte(`{}`)); err == nil {
			t.Fatalf("call %d: want error from failing peer", i)
		}
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server hits = %d, want 3", got)
	}
	st := c.Health()
	if len(st) != 1 || st[0].Healthy || !st[0].BreakerOpen {
		t.Fatalf("after trips, health = %+v, want unhealthy+open", st)
	}
	if c.Stats().BreakerTrips != 1 {
		t.Fatalf("breaker trips = %d, want 1", c.Stats().BreakerTrips)
	}

	// While open, calls fail fast without touching the network.
	if _, err := c.EvaluateCell(context.Background(), d, []byte(`{}`)); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("open breaker: err = %v, want ErrPeerUnavailable", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("open breaker cost a round trip: hits = %d", got)
	}

	// Cooldown elapses but the peer is still down: the single half-open
	// probe fails and re-opens the breaker.
	clock.Advance(6 * time.Second)
	if _, err := c.EvaluateCell(context.Background(), d, []byte(`{}`)); err == nil {
		t.Fatal("half-open probe against failing peer should error")
	}
	if got := hits.Load(); got != 4 {
		t.Fatalf("half-open probe hits = %d, want 4", got)
	}
	if _, err := c.EvaluateCell(context.Background(), d, []byte(`{}`)); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("re-opened breaker: err = %v, want ErrPeerUnavailable", err)
	}

	// Peer recovers; next probe succeeds and fully closes the breaker.
	healthy.Store(true)
	clock.Advance(6 * time.Second)
	out, err := c.EvaluateCell(context.Background(), d, []byte(`{}`))
	if err != nil {
		t.Fatalf("recovered peer: %v", err)
	}
	if string(out) != `{"ok":true}` {
		t.Fatalf("recovered peer returned %q", out)
	}
	st = c.Health()
	if !st[0].Healthy || st[0].BreakerOpen || st[0].ConsecFails != 0 {
		t.Fatalf("after recovery, health = %+v, want healthy+closed", st)
	}
	if share := c.UnreachableShare(); share != 0 {
		t.Fatalf("unreachable share after recovery = %v", share)
	}
}

func TestUnreachableShareReflectsRing(t *testing.T) {
	clock := &testClock{t: time.Unix(1000, 0)}
	c := New(Options{
		Self:             "http://self:1",
		Peers:            []string{"http://down:1", "http://up:1"},
		BreakerThreshold: 1,
		Now:              clock.Now,
	})
	// Manually fail the "down" peer past its threshold.
	p := c.byAddr["http://down:1"]
	rel, err := c.acquire(p)
	if err != nil {
		t.Fatal(err)
	}
	rel(errors.New("synthetic"))
	want := c.ring.Share("http://down:1")
	if got := c.UnreachableShare(); got != want {
		t.Fatalf("unreachable share = %v, want %v (down peer's ring share)", got, want)
	}
}

func TestFetchCellsBatchesPerOwner(t *testing.T) {
	held := map[string]string{}
	var requests atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/cells/lookup" {
			http.NotFound(w, r)
			return
		}
		requests.Add(1)
		var req lookupRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := lookupResponse{Lines: make([]json.RawMessage, len(req.Digests))}
		for i, d := range req.Digests {
			if line, ok := held[d]; ok {
				resp.Lines[i] = json.RawMessage(line)
			}
		}
		json.NewEncoder(w).Encode(resp)
	}))
	defer ts.Close()

	c := New(Options{Self: "http://self:1", Peers: []string{ts.URL}})
	d1 := digestOwnedBy(t, c.ring, ts.URL)
	var d2 string
	for i := 0; ; i++ {
		d2 = fmt.Sprintf("second-digest-%d", i)
		if c.ring.Owner(d2) == ts.URL {
			break
		}
	}
	dMissing := digestOwnedBy(t, c.ring, "http://self:1") // self-owned: not routed
	held[d1] = `{"cell":1}`
	held[d2] = `{"cell":2}`

	digests := []string{d1, dMissing, d2}
	lines := make([]json.RawMessage, 3)
	filled := c.FetchCells(digests, lines)
	if filled != 2 {
		t.Fatalf("filled = %d, want 2", filled)
	}
	if string(lines[0]) != `{"cell":1}` || string(lines[2]) != `{"cell":2}` {
		t.Fatalf("lines = %q / %q", lines[0], lines[2])
	}
	if lines[1] != nil {
		t.Fatalf("self-owned digest should stay nil, got %q", lines[1])
	}
	// Both peer-owned digests travelled in ONE batched request.
	if got := requests.Load(); got != 1 {
		t.Fatalf("lookup requests = %d, want 1 (batched)", got)
	}
	st := c.Stats()
	if st.Fetches != 1 || st.FetchedCells != 2 {
		t.Fatalf("stats = %+v, want Fetches=1 FetchedCells=2", st)
	}

	// Pre-filled slots are never re-fetched.
	lines2 := []json.RawMessage{json.RawMessage(`{"have":true}`), nil}
	if n := c.FetchCells([]string{d1, d2}, lines2); n != 1 {
		t.Fatalf("refetch filled = %d, want 1", n)
	}
	if string(lines2[0]) != `{"have":true}` {
		t.Fatalf("pre-filled slot overwritten: %q", lines2[0])
	}
}

func TestFetchCellsFollowsGossipHints(t *testing.T) {
	held := map[string]string{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req lookupRequest
		json.NewDecoder(r.Body).Decode(&req)
		resp := lookupResponse{Lines: make([]json.RawMessage, len(req.Digests))}
		for i, d := range req.Digests {
			if line, ok := held[d]; ok {
				resp.Lines[i] = json.RawMessage(line)
			}
		}
		json.NewEncoder(w).Encode(resp)
	}))
	defer ts.Close()

	c := New(Options{Self: "http://self:1", Peers: []string{ts.URL}})
	// A digest this node owns would normally never be fetched remotely —
	// unless gossip advertised that the peer holds it.
	d := digestOwnedBy(t, c.ring, "http://self:1")
	held[d] = `{"hinted":true}`

	lines := make([]json.RawMessage, 1)
	if n := c.FetchCells([]string{d}, lines); n != 0 {
		t.Fatalf("without hint, filled = %d, want 0", n)
	}

	c.HandleGossip(GossipMsg{From: ts.URL, Digests: []string{d}})
	if n := c.FetchCells([]string{d}, lines); n != 1 {
		t.Fatalf("with hint, filled = %d, want 1", n)
	}
	if string(lines[0]) != `{"hinted":true}` {
		t.Fatalf("line = %q", lines[0])
	}
	if c.Stats().HintHits != 1 {
		t.Fatalf("hint hits = %d, want 1", c.Stats().HintHits)
	}
}

func TestPushCellReplicatesToOwner(t *testing.T) {
	type put struct {
		path string
		body string
	}
	got := make(chan put, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPut {
			http.Error(w, "method", http.StatusMethodNotAllowed)
			return
		}
		var body [256]byte
		n, _ := r.Body.Read(body[:])
		got <- put{path: r.URL.Path, body: string(body[:n])}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()

	c := New(Options{Self: "http://self:1", Peers: []string{ts.URL}})
	dPeer := digestOwnedBy(t, c.ring, ts.URL)
	dSelf := digestOwnedBy(t, c.ring, "http://self:1")

	// Self-owned cells are advertised but never pushed.
	c.PushCell(dSelf, json.RawMessage(`{"mine":true}`))
	if c.Stats().Pushes != 0 {
		t.Fatalf("self-owned push fired an RPC")
	}

	c.PushCell(dPeer, json.RawMessage(`{"cell":9}`))
	select {
	case p := <-got:
		if p.path != "/v1/cells/"+dPeer {
			t.Fatalf("push path = %q", p.path)
		}
		if p.body != `{"cell":9}` {
			t.Fatalf("push body = %q", p.body)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("push never reached the owner")
	}
	// Both digests are now in the gossip advertisement window.
	ad := c.recentDigests()
	if len(ad) != 2 {
		t.Fatalf("advertised digests = %v, want both", ad)
	}
}

func TestGossipExchangeIsSymmetric(t *testing.T) {
	// Two live clusters whose gossip endpoints route into each other.
	var a, b *Cluster
	serve := func(target **Cluster) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			var msg GossipMsg
			if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			json.NewEncoder(w).Encode((*target).HandleGossip(msg))
		}
	}
	tsA := httptest.NewServer(serve(&a))
	defer tsA.Close()
	tsB := httptest.NewServer(serve(&b))
	defer tsB.Close()

	a = New(Options{Self: tsA.URL, Peers: []string{tsB.URL}})
	b = New(Options{Self: tsB.URL, Peers: []string{tsA.URL}})

	a.RecordLocalCell("digest-held-by-a")
	b.RecordLocalCell("digest-held-by-b")

	if err := a.GossipOnce(context.Background()); err != nil {
		t.Fatalf("gossip: %v", err)
	}
	// B learned what A holds from the request; A learned what B holds from
	// the reply.
	if addr, ok := b.hintFor("digest-held-by-a"); !ok || addr != tsA.URL {
		t.Fatalf("b's hint for a-held digest = %q, %v", addr, ok)
	}
	if addr, ok := a.hintFor("digest-held-by-b"); !ok || addr != tsB.URL {
		t.Fatalf("a's hint for b-held digest = %q, %v", addr, ok)
	}
	if a.Stats().GossipSent != 1 || b.Stats().GossipRecv != 1 {
		t.Fatalf("gossip counters: a=%+v b=%+v", a.Stats(), b.Stats())
	}
}

func TestGossipReceiptResetsBreaker(t *testing.T) {
	clock := &testClock{t: time.Unix(1000, 0)}
	c := New(Options{
		Self:             "http://self:1",
		Peers:            []string{"http://flaky:1"},
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		Now:              clock.Now,
	})
	p := c.byAddr["http://flaky:1"]
	rel, err := c.acquire(p)
	if err != nil {
		t.Fatal(err)
	}
	rel(errors.New("synthetic"))
	if c.Health()[0].Healthy {
		t.Fatal("peer should be unhealthy after failure")
	}
	// The peer gossips to us: proof of life, breaker resets immediately —
	// no cooldown wait.
	c.HandleGossip(GossipMsg{From: "http://flaky:1"})
	if st := c.Health()[0]; !st.Healthy || st.BreakerOpen {
		t.Fatalf("after gossip receipt, health = %+v, want healthy", st)
	}
}

func TestGossipHealthIsAdvisoryOnly(t *testing.T) {
	c := New(Options{Self: "http://self:1", Peers: []string{"http://a:1", "http://b:1"}})
	// Peer a claims peer b is down. We can still reach b ourselves, so our
	// breaker for b must stay closed.
	c.HandleGossip(GossipMsg{From: "http://a:1", Health: map[string]bool{"http://b:1": false}})
	for _, st := range c.Health() {
		if !st.Healthy {
			t.Fatalf("hearsay opened a breaker: %+v", st)
		}
	}
}

func TestConcurrencyBoundFailsFast(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()

	c := New(Options{Self: "http://self:1", Peers: []string{ts.URL}, MaxPerPeer: 1})
	d := digestOwnedBy(t, c.ring, ts.URL)

	errc := make(chan error, 1)
	go func() {
		_, err := c.EvaluateCell(context.Background(), d, []byte(`{}`))
		errc <- err
	}()
	<-entered // first RPC holds the only slot
	if _, err := c.EvaluateCell(context.Background(), d, []byte(`{}`)); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("saturated peer: err = %v, want ErrPeerUnavailable", err)
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatalf("first call: %v", err)
	}
}

func TestFaultInjectionShortCircuitsRPCs(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprint(w, `{"lines":[null]}`)
	}))
	defer ts.Close()

	inj := faults.New(1, faults.Rule{Op: "peer.fetch", P: 1})
	c := New(Options{Self: "http://self:1", Peers: []string{ts.URL}, Injector: inj})
	d := digestOwnedBy(t, c.ring, ts.URL)

	lines := make([]json.RawMessage, 1)
	if n := c.FetchCells([]string{d}, lines); n != 0 {
		t.Fatalf("injected fetch filled %d", n)
	}
	if hits.Load() != 0 {
		t.Fatal("injected fault still reached the network")
	}
	if c.Stats().FetchErrors != 1 {
		t.Fatalf("fetch errors = %d, want 1", c.Stats().FetchErrors)
	}
	if inj.Fired("peer.fetch") != 1 {
		t.Fatalf("injector fired = %d", inj.Fired("peer.fetch"))
	}
}

func TestEvaluateCellErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer ts.Close()

	c := New(Options{Self: "http://self:1", Peers: []string{ts.URL}})
	dPeer := digestOwnedBy(t, c.ring, ts.URL)
	dSelf := digestOwnedBy(t, c.ring, "http://self:1")

	// A 404 from the owner is an error for evaluate (the cell should have
	// been computed) but must not trip the breaker.
	if _, err := c.EvaluateCell(context.Background(), dPeer, []byte(`{}`)); err == nil {
		t.Fatal("evaluate of missing cell should error")
	}
	if st := c.Health()[0]; !st.Healthy {
		t.Fatalf("404 tripped the breaker: %+v", st)
	}
	if _, err := c.EvaluateCell(context.Background(), dSelf, []byte(`{}`)); err == nil {
		t.Fatal("evaluate of self-owned cell should error")
	}

	disarmed := New(Options{Self: "http://self:1"})
	if disarmed.Armed() {
		t.Fatal("peerless cluster is armed")
	}
	if !disarmed.OwnsCell("anything") {
		t.Fatal("disarmed cluster must own every cell")
	}
	if _, err := disarmed.EvaluateCell(context.Background(), "d", nil); !errors.Is(err, ErrNotArmed) {
		t.Fatalf("disarmed evaluate err = %v", err)
	}
	if n := disarmed.FetchCells([]string{"d"}, make([]json.RawMessage, 1)); n != 0 {
		t.Fatal("disarmed fetch did work")
	}
}

func TestHintCapEvicts(t *testing.T) {
	c := New(Options{Self: "http://self:1", Peers: []string{"http://a:1"}, HintCap: 4})
	for i := 0; i < 10; i++ {
		c.hint(fmt.Sprintf("d%d", i), "http://a:1")
	}
	if got := c.Stats().HintCells; got > 4 {
		t.Fatalf("hint map grew to %d, cap 4", got)
	}
}

func TestRecordLocalCellWindowBounded(t *testing.T) {
	c := New(Options{Self: "http://self:1", Peers: []string{"http://a:1"}, GossipWindow: 8})
	for i := 0; i < 50; i++ {
		c.RecordLocalCell(fmt.Sprintf("d%d", i))
	}
	if got := len(c.recentDigests()); got != 8 {
		t.Fatalf("advertisement window = %d, want 8", got)
	}
}
