package mcarlo

import (
	"errors"
	"math"
	"testing"

	"batsched/internal/battery"
	"batsched/internal/sched"
)

func pair() []battery.Params {
	return []battery.Params{battery.B1(), battery.B1()}
}

func TestDeterministicForSeed(t *testing.T) {
	gen := RandomIntermittent(1, 120, 0.5)
	a, err := LifetimeDistribution(pair(), sched.BestAvailable(), gen, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LifetimeDistribution(pair(), sched.BestAvailable(), gen, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs across identical seeds", i)
		}
	}
	c, err := LifetimeDistribution(pair(), sched.BestAvailable(), gen, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical distributions")
	}
}

func TestDistributionStatistics(t *testing.T) {
	gen := RandomIntermittent(1, 120, 0.5)
	d, err := LifetimeDistribution(pair(), sched.BestAvailable(), gen, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Samples) != 50 {
		t.Fatalf("%d samples", len(d.Samples))
	}
	// Sorted.
	for i := 1; i < len(d.Samples); i++ {
		if d.Samples[i] < d.Samples[i-1] {
			t.Fatal("samples not sorted")
		}
	}
	if d.Min() > d.Quantile(0.5) || d.Quantile(0.5) > d.Max() {
		t.Fatal("quantiles out of order")
	}
	if d.Quantile(0) != d.Min() || d.Quantile(1) != d.Max() {
		t.Fatal("extreme quantiles")
	}
	if d.Mean < d.Min() || d.Mean > d.Max() {
		t.Fatalf("mean %v outside range", d.Mean)
	}
	if d.Std < 0 {
		t.Fatalf("negative std %v", d.Std)
	}
	// Two-battery ILs-style lifetimes live between the all-high and the
	// all-low deterministic extremes (Table 5: 10.46 .. 38.92).
	if d.Min() < 10 || d.Max() > 40 {
		t.Fatalf("distribution [%v, %v] outside the deterministic envelope", d.Min(), d.Max())
	}
	if d.String() == "" {
		t.Fatal("empty summary")
	}
}

// TestLoadMixShiftsDistribution: more high-current jobs mean shorter lives.
func TestLoadMixShiftsDistribution(t *testing.T) {
	heavy, err := LifetimeDistribution(pair(), sched.BestAvailable(), RandomIntermittent(1, 120, 0.9), 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	light, err := LifetimeDistribution(pair(), sched.BestAvailable(), RandomIntermittent(1, 120, 0.1), 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Mean >= light.Mean {
		t.Fatalf("heavy mix (%v) outlived light mix (%v)", heavy.Mean, light.Mean)
	}
}

// TestPolicyOrderingUnderUncertainty: best-of-two dominates sequential in
// expectation, as Table 5 suggests deterministically.
func TestPolicyOrderingUnderUncertainty(t *testing.T) {
	gen := RandomIntermittent(1, 150, 0.5)
	dists, err := ComparePolicies(pair(), []sched.Policy{sched.Sequential(), sched.BestAvailable()}, gen, 25, 5)
	if err != nil {
		t.Fatal(err)
	}
	seq := dists["sequential"]
	bo := dists["best-of-two"]
	if bo.Mean <= seq.Mean {
		t.Fatalf("best-of-two mean %v not above sequential %v", bo.Mean, seq.Mean)
	}
}

func TestMarkovBurstGenerator(t *testing.T) {
	gen := MarkovBurst(1, 120, 0.9)
	d, err := LifetimeDistribution(pair(), sched.RoundRobin(), gen, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Bursty loads have higher variance than i.i.d. ones with the same
	// marginal mix (long high runs drain one battery hard).
	iid, err := LifetimeDistribution(pair(), sched.RoundRobin(), RandomIntermittent(1, 120, 0.5), 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	if d.Std <= 0 || iid.Std <= 0 {
		t.Fatal("degenerate distributions")
	}
	if math.IsNaN(d.Mean) || math.IsNaN(d.Std) {
		t.Fatal("NaN statistics")
	}
}

func TestNoSamplesError(t *testing.T) {
	gen := RandomIntermittent(1, 100, 0.5)
	if _, err := LifetimeDistribution(pair(), sched.Sequential(), gen, 0, 1); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("zero samples: %v", err)
	}
}
