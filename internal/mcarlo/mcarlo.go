// Package mcarlo estimates battery-lifetime distributions under random
// loads by Monte-Carlo simulation on the continuous KiBaM. The paper's
// outlook (Section 7) notes that realistic random loads need analysis but
// that Uppaal Cora cannot express probabilities; sampling the load
// distribution and simulating each sample is the pragmatic substitute, in
// the spirit of the authors' earlier work on battery lifetime
// distributions (DSN 2007).
package mcarlo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"batsched/internal/battery"
	"batsched/internal/load"
	"batsched/internal/sched"
)

// Generator draws a random load.
type Generator func(rng *rand.Rand) (load.Load, error)

// RandomIntermittent returns a generator for the paper's random test loads:
// one-minute jobs, each independently low (250 mA) or high (500 mA) with
// probability pHigh, separated by idle gaps of the given length.
func RandomIntermittent(idle, horizon, pHigh float64) Generator {
	return func(rng *rand.Rand) (load.Load, error) {
		n := int(horizon/(load.JobDuration+idle)) + 1
		segs := make([]load.Segment, 0, 2*n)
		for i := 0; i < n; i++ {
			current := load.LowCurrent
			if rng.Float64() < pHigh {
				current = load.HighCurrent
			}
			segs = append(segs, load.Segment{Duration: load.JobDuration, Current: current})
			if idle > 0 {
				segs = append(segs, load.Segment{Duration: idle, Current: 0})
			}
		}
		return load.New("mc-random", segs...)
	}
}

// MarkovBurst returns a generator alternating between bursty and calm
// phases: a two-state Markov chain picks, per job, whether the node is in a
// burst (high current) with persistence pStay.
func MarkovBurst(idle, horizon, pStay float64) Generator {
	return func(rng *rand.Rand) (load.Load, error) {
		n := int(horizon/(load.JobDuration+idle)) + 1
		segs := make([]load.Segment, 0, 2*n)
		burst := rng.Intn(2) == 1
		for i := 0; i < n; i++ {
			if rng.Float64() > pStay {
				burst = !burst
			}
			current := load.LowCurrent
			if burst {
				current = load.HighCurrent
			}
			segs = append(segs, load.Segment{Duration: load.JobDuration, Current: current})
			if idle > 0 {
				segs = append(segs, load.Segment{Duration: idle, Current: 0})
			}
		}
		return load.New("mc-markov", segs...)
	}
}

// Distribution summarises the sampled lifetimes.
type Distribution struct {
	// Samples holds the simulated lifetimes in minutes, sorted ascending.
	Samples []float64
	// Mean and Std are the sample mean and standard deviation.
	Mean float64
	Std  float64
}

// Min returns the smallest sampled lifetime.
func (d Distribution) Min() float64 { return d.Samples[0] }

// Max returns the largest sampled lifetime.
func (d Distribution) Max() float64 { return d.Samples[len(d.Samples)-1] }

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank.
func (d Distribution) Quantile(q float64) float64 {
	if q <= 0 {
		return d.Min()
	}
	if q >= 1 {
		return d.Max()
	}
	idx := int(math.Ceil(q*float64(len(d.Samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return d.Samples[idx]
}

// String implements fmt.Stringer.
func (d Distribution) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f",
		len(d.Samples), d.Mean, d.Std, d.Min(), d.Quantile(0.5), d.Quantile(0.95), d.Max())
}

// Estimation errors.
var ErrNoSamples = errors.New("mcarlo: need at least one sample")

// LifetimeDistribution simulates n independent random loads on the battery
// bank under the policy and returns the lifetime distribution. The run is
// deterministic for a fixed seed.
func LifetimeDistribution(params []battery.Params, policy sched.Policy, gen Generator, n int, seed int64) (Distribution, error) {
	if n <= 0 {
		return Distribution{}, ErrNoSamples
	}
	rng := rand.New(rand.NewSource(seed))
	samples := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		l, err := gen(rng)
		if err != nil {
			return Distribution{}, fmt.Errorf("sample %d: %w", i, err)
		}
		res, err := sched.ContinuousRun(params, l, policy)
		if err != nil {
			return Distribution{}, fmt.Errorf("sample %d: %w", i, err)
		}
		samples = append(samples, res.LifetimeMinutes)
	}
	sort.Float64s(samples)
	var sum, sumSq float64
	for _, s := range samples {
		sum += s
		sumSq += s * s
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Distribution{
		Samples: samples,
		Mean:    mean,
		Std:     math.Sqrt(variance),
	}, nil
}

// ComparePolicies estimates the lifetime distribution of several policies
// on the same sequence of sampled loads (common random numbers), returning
// the distributions keyed by policy name.
func ComparePolicies(params []battery.Params, policies []sched.Policy, gen Generator, n int, seed int64) (map[string]Distribution, error) {
	out := make(map[string]Distribution, len(policies))
	for _, p := range policies {
		d, err := LifetimeDistribution(params, p, gen, n, seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name(), err)
		}
		out[p.Name()] = d
	}
	return out, nil
}
