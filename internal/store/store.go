// Package store is a content-addressed result store whose unit is a single
// scenario cell: one NDJSON result line keyed by the cell's content digest
// (see service.CellDigests for the keying rule). On top of the cell map it
// keeps a whole-request index — request digest → ordered cell-digest list —
// so an identical resubmission is still served in one probe, byte-identical
// to the run that produced it.
//
// Cell granularity is what makes overlapping sweeps incremental: the
// paper's experiment grids overlap heavily (change one load in a 200-cell
// grid and 180 cells are unchanged), and a store keyed by whole requests
// re-evaluates everything on any change. Here a new sweep reuses every cell
// any earlier sweep already computed and evaluates only the rest.
//
// Entries are immutable — a cell digest maps to exactly one byte sequence —
// and the optional append-only file backend survives restarts. Legacy
// whole-request records written by the previous store format are recognized
// and skipped on replay: the digest scheme changed with cell granularity,
// so no new submission can address them, and loading them would only pin
// dead memory. An old store file opens cleanly (torn-tail handling
// included) and is rebuilt organically as cell-granular records accumulate
// alongside the inert legacy lines.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Store maps cell digests to immutable result lines and request digests to
// cell-digest lists. It is safe for concurrent use. The zero value is not
// usable; call Open.
type Store struct {
	mu       sync.Mutex
	cells    map[string]json.RawMessage
	requests map[string][]string
	file     *os.File      // nil = memory-only
	w        *bufio.Writer // wraps file; appends flush on Close

	hits, misses         atomic.Int64 // whole-request probes
	cellHits, cellMisses atomic.Int64 // per-cell probes
}

// record is one append-only file line. Exactly one of Cell, Req, or Digest
// is set: a cell result, a request index, or a legacy (pre-cell-granular)
// whole-request entry.
type record struct {
	// Cell + Result: one stored cell line.
	Cell   string          `json:"cell,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	// Req + Cells: the whole-request index entry.
	Req   string   `json:"req,omitempty"`
	Cells []string `json:"cells,omitempty"`
	// Digest + Results: a legacy (pre-cell-granular) whole-request record,
	// recognized so old files open cleanly but not loaded — the digest
	// scheme changed, so nothing can ever look these entries up again.
	Digest  string            `json:"digest,omitempty"`
	Results []json.RawMessage `json:"results,omitempty"`
}

// Open builds a store. An empty path means memory-only; otherwise the path
// is an append-only NDJSON file: existing records are replayed into memory,
// and every future put is appended (a multi-record put coalesces into one
// buffered write, flushed before the put returns; Close additionally
// syncs). A torn trailing record — a crash mid-append — is truncated away,
// so at most the records of the put in progress are lost and future appends
// never glue onto a corrupt tail.
func Open(path string) (*Store, error) {
	s := &Store{
		cells:    make(map[string]json.RawMessage),
		requests: make(map[string][]string),
	}
	if path == "" {
		return s, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	// Replay tracking the byte offset of the last cleanly-terminated good
	// record: everything past it (torn line, garbage) is truncated before
	// the first append, otherwise the next put would glue onto the fragment
	// and both records would be unreadable on the following open.
	r := bufio.NewReaderSize(f, 1<<20)
	var good int64
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			// EOF with a partial (newline-less) tail, or any read error:
			// the tail is torn — appends always end in '\n'.
			if err != io.EOF {
				f.Close()
				return nil, fmt.Errorf("store: read %s: %w", path, err)
			}
			break
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			good += int64(len(line))
			continue
		}
		var rec record
		if err := json.Unmarshal(trimmed, &rec); err != nil || !s.replay(rec) {
			// A complete but unparseable (or shape-less) line: treat it and
			// everything after as torn rather than guessing where records
			// resume.
			break
		}
		good += int64(len(line))
	}
	if info, err := f.Stat(); err == nil && info.Size() > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncate torn tail of %s: %w", path, err)
		}
	}
	s.file = f
	s.w = bufio.NewWriterSize(f, 1<<18)
	return s, nil
}

// replay loads one file record into the maps, reporting whether the record
// had a recognizable shape.
func (s *Store) replay(rec record) bool {
	switch {
	case rec.Cell != "":
		s.cells[rec.Cell] = rec.Result
	case rec.Req != "":
		s.requests[rec.Req] = rec.Cells
	case rec.Digest != "":
		// Legacy whole-request record: detected so the file opens cleanly
		// and the replay offset advances past it, but deliberately not
		// loaded. Its request digest was computed by the retired scheme, so
		// no future submission can produce that key; the entry is dead
		// weight, not a servable result.
	default:
		return false
	}
	return true
}

// GetRequest returns the ordered result lines stored under a whole-request
// digest via the request index. It counts a request-level hit or miss;
// callers probing for whole-request dedup should call it exactly once per
// submission.
func (s *Store) GetRequest(digest string) ([]json.RawMessage, bool) {
	s.mu.Lock()
	lines, ok := s.lookupRequestLocked(digest)
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return lines, ok
}

func (s *Store) lookupRequestLocked(digest string) ([]json.RawMessage, bool) {
	cells, ok := s.requests[digest]
	if !ok {
		return nil, false
	}
	lines := make([]json.RawMessage, len(cells))
	for i, c := range cells {
		line, ok := s.cells[c]
		if !ok {
			// Defensive: an index referencing a missing cell (possible only
			// through file corruption the torn-tail rule cannot see) must
			// read as a miss, never as a short result set.
			return nil, false
		}
		lines[i] = line
	}
	return lines, true
}

// GetCell returns the result line stored under one cell digest, counting a
// per-cell hit or miss.
func (s *Store) GetCell(digest string) (json.RawMessage, bool) {
	s.mu.Lock()
	line, ok := s.cells[digest]
	s.mu.Unlock()
	if ok {
		s.cellHits.Add(1)
	} else {
		s.cellMisses.Add(1)
	}
	return line, ok
}

// PeekCell is GetCell without advancing the hit/miss counters: an internal
// re-probe (the service re-checks a cell after waiting out another sweep's
// in-flight evaluation) must not distort the effectiveness counters the
// bulk probe already recorded.
func (s *Store) PeekCell(digest string) (json.RawMessage, bool) {
	s.mu.Lock()
	line, ok := s.cells[digest]
	s.mu.Unlock()
	return line, ok
}

// LookupCells probes every digest at once and returns the stored lines
// aligned with the input (nil where the store has no entry) plus the hit
// count. One lock acquisition covers the whole grid, and the per-cell
// hit/miss counters advance by the aggregate — this is the sweep runner's
// bulk probe.
func (s *Store) LookupCells(digests []string) ([]json.RawMessage, int) {
	lines := make([]json.RawMessage, len(digests))
	hits := 0
	s.mu.Lock()
	for i, d := range digests {
		if line, ok := s.cells[d]; ok {
			lines[i] = line
			hits++
		}
	}
	s.mu.Unlock()
	s.cellHits.Add(int64(hits))
	s.cellMisses.Add(int64(len(digests) - hits))
	return lines, hits
}

// PutCell stores one result line under a cell digest. Entries are
// immutable: a digest already present is left untouched (the first writer
// wins — identical cells produce identical bytes, so there is nothing to
// overwrite). The line is copied; callers may reuse their buffer.
func (s *Store) PutCell(digest string, line json.RawMessage) error {
	if digest == "" {
		return fmt.Errorf("store: empty cell digest")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.putCellLocked(digest, line); err != nil {
		return err
	}
	return s.flushLocked()
}

func (s *Store) putCellLocked(digest string, line json.RawMessage) error {
	if _, dup := s.cells[digest]; dup {
		return nil
	}
	owned := append(json.RawMessage(nil), line...)
	if err := s.appendLocked(record{Cell: digest, Result: owned}); err != nil {
		return err
	}
	s.cells[digest] = owned
	return nil
}

// flushLocked pushes buffered appends to the file. Every public mutating
// call ends with it, so a crash between calls loses nothing and a crash
// mid-call loses at most that call's records — the same "at most the
// record being written" posture the torn-tail replay assumes — while a
// multi-record PutRequest still coalesces into one write.
func (s *Store) flushLocked() error {
	if s.w == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	return nil
}

// PutRequest records the whole-request index entry digest → cellDigests and
// stores any cell lines the store does not hold yet (lines aligned with
// cellDigests; lines may be nil when every cell is known to be present).
// The index is immutable like the cells: a request already indexed is left
// untouched.
func (s *Store) PutRequest(digest string, cellDigests []string, lines []json.RawMessage) error {
	if digest == "" {
		return fmt.Errorf("store: empty request digest")
	}
	if lines != nil && len(lines) != len(cellDigests) {
		return fmt.Errorf("store: %d lines for %d cell digests", len(lines), len(cellDigests))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if lines != nil {
		for i, cd := range cellDigests {
			if err := s.putCellLocked(cd, lines[i]); err != nil {
				return err
			}
		}
	}
	if _, dup := s.requests[digest]; dup {
		return s.flushLocked()
	}
	cells := append([]string(nil), cellDigests...)
	if err := s.appendLocked(record{Req: digest, Cells: cells}); err != nil {
		return err
	}
	s.requests[digest] = cells
	return s.flushLocked()
}

// appendLocked writes one record to the file backend (no-op when
// memory-only); the store mutex is held.
func (s *Store) appendLocked(rec record) error {
	if s.w == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode record: %w", err)
	}
	if _, err := s.w.Write(data); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if err := s.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	return nil
}

// Counters is a snapshot of the store's effectiveness counters.
type Counters struct {
	// Entries is the number of stored cell lines; Requests the number of
	// indexed whole requests.
	Entries  int
	Requests int
	// Hits and Misses count whole-request probes (GetRequest).
	Hits, Misses int64
	// CellHits and CellMisses count per-cell probes (GetCell, LookupCells);
	// a sweep that reuses 180 of 200 cells advances CellHits by 180 and
	// CellMisses by 20.
	CellHits, CellMisses int64
}

// Counters returns a snapshot of the store counters.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	entries, requests := len(s.cells), len(s.requests)
	s.mu.Unlock()
	return Counters{
		Entries:    entries,
		Requests:   requests,
		Hits:       s.hits.Load(),
		Misses:     s.misses.Load(),
		CellHits:   s.cellHits.Load(),
		CellMisses: s.cellMisses.Load(),
	}
}

// Close flushes, syncs, and closes the file backend; memory-only stores are
// a no-op. The store must not be used after Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	f, w := s.file, s.w
	s.file, s.w = nil, nil
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("store: flush: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync: %w", err)
	}
	return f.Close()
}
