// Package store is a content-addressed result store whose unit is a single
// scenario cell: one NDJSON result line keyed by the cell's content digest
// (see service.CellDigests for the keying rule). On top of the cell map it
// keeps a whole-request index — request digest → ordered cell-digest list —
// so an identical resubmission is still served in one probe, byte-identical
// to the run that produced it.
//
// Cell granularity is what makes overlapping sweeps incremental: the
// paper's experiment grids overlap heavily (change one load in a 200-cell
// grid and 180 cells are unchanged), and a store keyed by whole requests
// re-evaluates everything on any change. Here a new sweep reuses every cell
// any earlier sweep already computed and evaluates only the rest.
//
// Entries are immutable — a cell digest maps to exactly one byte sequence —
// and the optional append-only file backend survives restarts. The file
// layer is built for an unhealthy world:
//
//   - Every record carries a CRC-32C checksum over its content, so
//     corruption anywhere in the file — not just a torn tail — is detected
//     on replay. Corrupt complete lines are quarantined (skipped and
//     counted, the rest of the file still loads); only the newline-less
//     tail of a crash mid-append is truncated away.
//   - Transient append errors are retried with capped exponential backoff
//     plus jitter. A put that exhausts its retries trips a circuit breaker:
//     the store enters a degraded read-only mode where reads and the whole
//     evaluation path keep working, puts fail fast with ErrDegraded, and
//     after a cooldown the next put probes the backend (half-open) and
//     closes the breaker on success. The mode is visible in Counters.
//   - A partial write left by an exhausted retry sequence is repaired on
//     the next successful append by terminating the fragment with a
//     newline, turning it into one quarantinable line instead of letting
//     the new record glue onto it.
//
// Legacy whole-request records written by the previous store format are
// recognized and skipped on replay, as are CRC-less records from files
// written before checksumming (accepted unverified).
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"batsched/internal/obs"
)

// ErrDegraded is returned by puts while the write circuit is open: the
// backend failed persistently, the store serves reads only, and new results
// are not cached until a cooldown probe succeeds.
var ErrDegraded = errors.New("store: degraded: write circuit open")

// File is the store's append-only backend. *os.File satisfies it via the
// osFile adapter; fault-injection wrappers (internal/faults) decorate it.
type File interface {
	io.Reader
	io.Writer
	Sync() error
	Truncate(size int64) error
	Size() (int64, error)
	Close() error
}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// SyncPolicy controls when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncNever writes records to the OS per put but fsyncs only on Close:
	// fastest, and a process crash loses nothing — only an OS crash or
	// power failure can lose recent puts.
	SyncNever SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.SyncInterval,
	// piggybacked on puts: bounds OS-crash loss to the interval without a
	// background goroutine.
	SyncInterval
	// SyncAlways fsyncs every put: maximal durability, one fsync per put.
	SyncAlways
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	default:
		return "never"
	}
}

// ParseSyncPolicy parses "never", "interval", or "always".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "never":
		return SyncNever, nil
	case "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	}
	return SyncNever, fmt.Errorf("store: unknown sync policy %q (want never, interval, or always)", s)
}

// Options configures OpenWith. The zero value (plus a Path) reproduces
// Open's behavior: no fsync until Close, three retries with 2ms-base
// backoff, a 10s breaker cooldown.
type Options struct {
	// Path of the append-only NDJSON file; empty = memory-only.
	Path string
	// Sync is the fsync policy; SyncInterval uses SyncInterval as the
	// period (default 1s).
	Sync         SyncPolicy
	SyncInterval time.Duration
	// RetryAttempts is how many times a failed append is retried before
	// tripping the breaker (default 3; negative = no retries). RetryBase
	// and RetryCap bound the exponential backoff between attempts
	// (defaults 2ms and 50ms; the sleep is jittered in [d/2, d]).
	RetryAttempts int
	RetryBase     time.Duration
	RetryCap      time.Duration
	// BreakerCooldown is how long puts fail fast after the breaker trips
	// before one probes the backend again (default 10s).
	BreakerCooldown time.Duration
	// WrapFile, when set, decorates the opened backend — the
	// fault-injection hook. Never called for memory-only stores.
	WrapFile func(File) File
	// AppendLatency, when set, observes the wall-clock seconds of each
	// commit (write + retries + fsync), including failed ones. Nil is a
	// no-op.
	AppendLatency *obs.Histogram
	// Clock and Sleep are injectable for deterministic tests (defaults
	// time.Now and time.Sleep).
	Clock func() time.Time
	Sleep func(time.Duration)
}

// Store maps cell digests to immutable result lines and request digests to
// cell-digest lists. It is safe for concurrent use. The zero value is not
// usable; call Open or OpenWith.
type Store struct {
	mu       sync.Mutex
	cells    map[string]json.RawMessage
	requests map[string][]string
	f        File   // nil = memory-only
	pend     []byte // scratch: records of the put being committed

	// Write-circuit state (guarded by mu).
	degraded bool      // breaker open: puts fail fast
	openedAt time.Time // when the breaker tripped
	tornTail bool      // last physical write may have ended mid-record

	retries  int
	base     time.Duration
	cap      time.Duration
	cooldown time.Duration
	syncPol  SyncPolicy
	syncEvry time.Duration
	lastSync time.Time
	now      func() time.Time
	sleep    func(time.Duration)
	rng      *rand.Rand // backoff jitter (guarded by mu)

	hits, misses         atomic.Int64 // whole-request probes
	cellHits, cellMisses atomic.Int64 // per-cell probes

	appendLatency *obs.Histogram // commit latency, nil = not observed

	quarantined  atomic.Int64 // corrupt complete lines skipped on replay
	legacySkips  atomic.Int64 // legacy whole-request records skipped on replay
	appendErrors atomic.Int64 // puts that exhausted retries (breaker trips)
	appendRetry  atomic.Int64 // individual append retries
	droppedPuts  atomic.Int64 // puts rejected fast while degraded
	syncErrors   atomic.Int64 // fsync failures (data written, durability degraded)
}

// record is one append-only file line. Exactly one of Cell, Req, or Digest
// is set: a cell result, a request index, or a legacy (pre-cell-granular)
// whole-request entry. CRC is a CRC-32C over the content fields; records
// written before checksumming lack it and are accepted unverified.
type record struct {
	// Cell + Result: one stored cell line.
	Cell   string          `json:"cell,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	// Req + Cells: the whole-request index entry.
	Req   string   `json:"req,omitempty"`
	Cells []string `json:"cells,omitempty"`
	// Digest + Results: a legacy (pre-cell-granular) whole-request record,
	// recognized so old files open cleanly but not loaded — the digest
	// scheme changed, so nothing can ever look these entries up again.
	Digest  string            `json:"digest,omitempty"`
	Results []json.RawMessage `json:"results,omitempty"`
	// CRC guards the content fields above. A true checksum of zero (1 in
	// 2^32) is indistinguishable from "absent" and replays unverified —
	// an accepted, harmless corner.
	CRC uint32 `json:"crc,omitempty"`
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksum covers the record's content fields with unambiguous framing
// (a type tag plus NUL separators, so field boundaries can't alias).
func (rec *record) checksum() uint32 {
	h := crc32.New(crcTable)
	switch {
	case rec.Cell != "":
		io.WriteString(h, "c\x00")
		io.WriteString(h, rec.Cell)
		h.Write([]byte{0})
		h.Write(rec.Result)
	case rec.Req != "":
		io.WriteString(h, "r\x00")
		io.WriteString(h, rec.Req)
		for _, c := range rec.Cells {
			h.Write([]byte{0})
			io.WriteString(h, c)
		}
	}
	return h.Sum32()
}

// Open builds a store with default options. An empty path means
// memory-only; otherwise the path is an append-only NDJSON file: existing
// records are replayed into memory and every future put is appended.
func Open(path string) (*Store, error) {
	return OpenWith(Options{Path: path})
}

// OpenWith builds a store from Options. Replay quarantines corrupt
// complete lines (bad JSON, CRC mismatch, unrecognizable shape) — counted
// in Counters.Quarantined — and truncates only a torn newline-less tail,
// so a crash mid-append loses at most the put in progress and corruption
// elsewhere in the file never takes the records after it down too.
func OpenWith(opts Options) (*Store, error) {
	s := &Store{
		cells:    make(map[string]json.RawMessage),
		requests: make(map[string][]string),
		retries:  3,
		base:     2 * time.Millisecond,
		cap:      50 * time.Millisecond,
		cooldown: 10 * time.Second,
		syncPol:  opts.Sync,
		syncEvry: time.Second,
		now:      time.Now,
		sleep:    time.Sleep,

		appendLatency: opts.AppendLatency,
	}
	if opts.RetryAttempts != 0 {
		s.retries = max(opts.RetryAttempts, 0)
	}
	if opts.RetryBase > 0 {
		s.base = opts.RetryBase
	}
	if opts.RetryCap > 0 {
		s.cap = opts.RetryCap
	}
	if opts.BreakerCooldown > 0 {
		s.cooldown = opts.BreakerCooldown
	}
	if opts.SyncInterval > 0 {
		s.syncEvry = opts.SyncInterval
	}
	if opts.Clock != nil {
		s.now = opts.Clock
	}
	if opts.Sleep != nil {
		s.sleep = opts.Sleep
	}
	if opts.Path == "" {
		return s, nil
	}
	s.rng = rand.New(rand.NewSource(s.now().UnixNano()))
	osf, err := os.OpenFile(opts.Path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", opts.Path, err)
	}
	var f File = osFile{osf}
	if opts.WrapFile != nil {
		f = opts.WrapFile(f)
	}
	// Replay tracking the byte offset past the last complete line: only a
	// newline-less tail (a crash mid-append) is truncated, so the next put
	// never glues onto a fragment. Complete lines always advance the
	// offset — corrupt ones are quarantined in place, not truncated, so a
	// flipped bit in an old record can't erase everything after it.
	r := bufio.NewReaderSize(f, 1<<20)
	var good int64
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			if err != io.EOF {
				f.Close()
				return nil, fmt.Errorf("store: read %s: %w", opts.Path, err)
			}
			break
		}
		good += int64(len(line))
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(trimmed, &rec); err != nil {
			s.quarantined.Add(1)
			continue
		}
		if rec.CRC != 0 && rec.CRC != rec.checksum() {
			s.quarantined.Add(1)
			continue
		}
		if !s.replay(rec) {
			s.quarantined.Add(1)
		}
	}
	if size, err := f.Size(); err == nil && size > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncate torn tail of %s: %w", opts.Path, err)
		}
	}
	s.f = f
	s.lastSync = s.now()
	return s, nil
}

// replay loads one file record into the maps, reporting whether the record
// had a recognizable shape.
func (s *Store) replay(rec record) bool {
	switch {
	case rec.Cell != "":
		s.cells[rec.Cell] = rec.Result
	case rec.Req != "":
		s.requests[rec.Req] = rec.Cells
	case rec.Digest != "":
		// Legacy whole-request record: detected so the file opens cleanly
		// and the replay offset advances past it, but deliberately not
		// loaded. Its request digest was computed by the retired scheme, so
		// no future submission can produce that key; the entry is dead
		// weight, not a servable result. Counted so an operator can see how
		// much of a file is unaddressable history.
		s.legacySkips.Add(1)
	default:
		return false
	}
	return true
}

// GetRequest returns the ordered result lines stored under a whole-request
// digest via the request index. It counts a request-level hit or miss;
// callers probing for whole-request dedup should call it exactly once per
// submission.
func (s *Store) GetRequest(digest string) ([]json.RawMessage, bool) {
	s.mu.Lock()
	lines, ok := s.lookupRequestLocked(digest)
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return lines, ok
}

func (s *Store) lookupRequestLocked(digest string) ([]json.RawMessage, bool) {
	cells, ok := s.requests[digest]
	if !ok {
		return nil, false
	}
	lines := make([]json.RawMessage, len(cells))
	for i, c := range cells {
		line, ok := s.cells[c]
		if !ok {
			// Defensive: an index referencing a missing cell (possible via
			// a quarantined record) must read as a miss, never as a short
			// result set.
			return nil, false
		}
		lines[i] = line
	}
	return lines, true
}

// GetCell returns the result line stored under one cell digest, counting a
// per-cell hit or miss.
func (s *Store) GetCell(digest string) (json.RawMessage, bool) {
	s.mu.Lock()
	line, ok := s.cells[digest]
	s.mu.Unlock()
	if ok {
		s.cellHits.Add(1)
	} else {
		s.cellMisses.Add(1)
	}
	return line, ok
}

// PeekCell is GetCell without advancing the hit/miss counters: an internal
// re-probe (the service re-checks a cell after waiting out another sweep's
// in-flight evaluation) must not distort the effectiveness counters the
// bulk probe already recorded.
func (s *Store) PeekCell(digest string) (json.RawMessage, bool) {
	s.mu.Lock()
	line, ok := s.cells[digest]
	s.mu.Unlock()
	return line, ok
}

// LookupCells probes every digest at once and returns the stored lines
// aligned with the input (nil where the store has no entry) plus the hit
// count. One lock acquisition covers the whole grid, and the per-cell
// hit/miss counters advance by the aggregate — this is the sweep runner's
// bulk probe.
func (s *Store) LookupCells(digests []string) ([]json.RawMessage, int) {
	lines := make([]json.RawMessage, len(digests))
	hits := 0
	s.mu.Lock()
	for i, d := range digests {
		if line, ok := s.cells[d]; ok {
			lines[i] = line
			hits++
		}
	}
	s.mu.Unlock()
	s.cellHits.Add(int64(hits))
	s.cellMisses.Add(int64(len(digests) - hits))
	return lines, hits
}

// PutCell stores one result line under a cell digest. Entries are
// immutable: a digest already present is left untouched (the first writer
// wins — identical cells produce identical bytes, so there is nothing to
// overwrite). The line is copied; callers may reuse their buffer. When the
// append fails (after retries) or the write circuit is open, the memory
// map is NOT updated — memory and file stay coherent, the caller sees the
// error, and the result is simply not cached.
func (s *Store) PutCell(digest string, line json.RawMessage) error {
	if digest == "" {
		return fmt.Errorf("store: empty cell digest")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.cells[digest]; dup {
		return nil
	}
	owned := append(json.RawMessage(nil), line...)
	s.pend = s.pend[:0]
	if err := s.encodeLocked(record{Cell: digest, Result: owned}); err != nil {
		return err
	}
	if err := s.commitLocked(); err != nil {
		return err
	}
	s.cells[digest] = owned
	return nil
}

// PutRequest records the whole-request index entry digest → cellDigests and
// stores any cell lines the store does not hold yet (lines aligned with
// cellDigests; lines may be nil when every cell is known to be present).
// The index is immutable like the cells: a request already indexed is left
// untouched. All records of one put commit in a single write; on failure
// none of them land in memory.
func (s *Store) PutRequest(digest string, cellDigests []string, lines []json.RawMessage) error {
	if digest == "" {
		return fmt.Errorf("store: empty request digest")
	}
	if lines != nil && len(lines) != len(cellDigests) {
		return fmt.Errorf("store: %d lines for %d cell digests", len(lines), len(cellDigests))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pend = s.pend[:0]
	type newCell struct {
		digest string
		line   json.RawMessage
	}
	var adds []newCell
	if lines != nil {
		for i, cd := range cellDigests {
			if cd == "" {
				return fmt.Errorf("store: empty cell digest")
			}
			if _, dup := s.cells[cd]; dup {
				continue
			}
			owned := append(json.RawMessage(nil), lines[i]...)
			adds = append(adds, newCell{cd, owned})
			if err := s.encodeLocked(record{Cell: cd, Result: owned}); err != nil {
				return err
			}
		}
	}
	_, dupReq := s.requests[digest]
	var cells []string
	if !dupReq {
		cells = append([]string(nil), cellDigests...)
		if err := s.encodeLocked(record{Req: digest, Cells: cells}); err != nil {
			return err
		}
	}
	if len(adds) == 0 && dupReq {
		return nil
	}
	if err := s.commitLocked(); err != nil {
		return err
	}
	for _, a := range adds {
		s.cells[a.digest] = a.line
	}
	if !dupReq {
		s.requests[digest] = cells
	}
	return nil
}

// encodeLocked marshals one record (checksummed) into the pending buffer.
// No-op for memory-only stores so the map-only path stays allocation-free.
func (s *Store) encodeLocked(rec record) error {
	if s.f == nil {
		return nil
	}
	rec.CRC = rec.checksum()
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode record: %w", err)
	}
	s.pend = append(s.pend, data...)
	s.pend = append(s.pend, '\n')
	return nil
}

var newline = []byte{'\n'}

// commitLocked writes the pending records to the backend, enforcing the
// write circuit, retrying transient failures, repairing a torn tail, and
// applying the sync policy. The memory maps are updated by the caller only
// after it returns nil.
func (s *Store) commitLocked() error {
	if s.f == nil || len(s.pend) == 0 {
		return nil
	}
	defer func(start time.Time) { s.appendLatency.ObserveSince(start) }(time.Now())
	if s.degraded {
		if s.now().Sub(s.openedAt) < s.cooldown {
			s.droppedPuts.Add(1)
			return ErrDegraded
		}
		// Cooldown elapsed: this put is the half-open probe. Fall through;
		// success closes the breaker, failure re-arms the cooldown.
	}
	if s.tornTail {
		// A previous put died partway through a write, leaving a fragment
		// with no terminator. Close the fragment off with a newline so it
		// replays as one quarantined line instead of corrupting the record
		// we are about to append. (A spurious empty line — fragment of
		// length zero — is skipped by replay.)
		if err := s.writeRetryLocked(newline); err != nil {
			s.tripLocked()
			return fmt.Errorf("store: append: %w", err)
		}
		s.tornTail = false
	}
	if err := s.writeRetryLocked(s.pend); err != nil {
		s.tripLocked()
		return fmt.Errorf("store: append: %w", err)
	}
	if s.degraded {
		s.degraded = false // probe succeeded: breaker closes
	}
	now := s.now()
	doSync := s.syncPol == SyncAlways ||
		(s.syncPol == SyncInterval && now.Sub(s.lastSync) >= s.syncEvry)
	if doSync {
		if err := s.syncRetryLocked(); err != nil {
			// The records ARE written (OS buffer), so the put is served and
			// the maps update — only durability degraded. Trip the breaker
			// so further puts stop until the backend proves healthy again.
			s.syncErrors.Add(1)
			s.tripLocked()
		} else {
			s.lastSync = now
		}
	}
	return nil
}

// tripLocked opens the write circuit.
func (s *Store) tripLocked() {
	s.appendErrors.Add(1)
	s.degraded = true
	s.openedAt = s.now()
}

// writeRetryLocked writes p fully, retrying transient failures with capped
// exponential backoff plus jitter. A partial write that cannot be completed
// marks the tail torn.
func (s *Store) writeRetryLocked(p []byte) error {
	written := 0
	for attempt := 0; ; attempt++ {
		n, err := s.f.Write(p[written:])
		if n > 0 {
			written += n
		}
		if written >= len(p) {
			return nil
		}
		if err == nil {
			err = io.ErrShortWrite
		}
		if attempt >= s.retries {
			if written > 0 {
				s.tornTail = true
			}
			return err
		}
		s.appendRetry.Add(1)
		s.sleep(s.backoffLocked(attempt))
	}
}

// syncRetryLocked fsyncs with the same retry schedule as writes.
func (s *Store) syncRetryLocked() error {
	for attempt := 0; ; attempt++ {
		err := s.f.Sync()
		if err == nil {
			return nil
		}
		if attempt >= s.retries {
			return err
		}
		s.appendRetry.Add(1)
		s.sleep(s.backoffLocked(attempt))
	}
}

// backoffLocked returns the jittered delay before retry number attempt
// (0-based): base·2^attempt capped at cap, jittered into [d/2, d].
func (s *Store) backoffLocked(attempt int) time.Duration {
	d := s.base << uint(min(attempt, 20))
	if d <= 0 || d > s.cap {
		d = s.cap
	}
	if s.rng != nil && d > 1 {
		d = d/2 + time.Duration(s.rng.Int63n(int64(d/2)+1))
	}
	return d
}

// Degraded reports whether the write circuit is open (read-only mode).
func (s *Store) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Counters is a snapshot of the store's effectiveness and health counters.
type Counters struct {
	// Entries is the number of stored cell lines; Requests the number of
	// indexed whole requests.
	Entries  int
	Requests int
	// Hits and Misses count whole-request probes (GetRequest).
	Hits, Misses int64
	// CellHits and CellMisses count per-cell probes (GetCell, LookupCells);
	// a sweep that reuses 180 of 200 cells advances CellHits by 180 and
	// CellMisses by 20.
	CellHits, CellMisses int64
	// Quarantined counts corrupt complete lines skipped on replay;
	// LegacySkipped counts recognizable pre-cell-granular records skipped
	// because their digest scheme is retired (dead weight, not servable).
	Quarantined   int64
	LegacySkipped int64
	// AppendErrors counts puts that exhausted their retries (each trips
	// the breaker); AppendRetries counts individual retry attempts;
	// DroppedPuts counts puts rejected fast while degraded; SyncErrors
	// counts fsync failures (records written, durability degraded).
	AppendErrors  int64
	AppendRetries int64
	DroppedPuts   int64
	SyncErrors    int64
	// Degraded reports the write circuit: true = open, read-only mode.
	Degraded bool
}

// Counters returns a snapshot of the store counters.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	entries, requests := len(s.cells), len(s.requests)
	degraded := s.degraded
	s.mu.Unlock()
	return Counters{
		Entries:       entries,
		Requests:      requests,
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		CellHits:      s.cellHits.Load(),
		CellMisses:    s.cellMisses.Load(),
		Quarantined:   s.quarantined.Load(),
		LegacySkipped: s.legacySkips.Load(),
		AppendErrors:  s.appendErrors.Load(),
		AppendRetries: s.appendRetry.Load(),
		DroppedPuts:   s.droppedPuts.Load(),
		SyncErrors:    s.syncErrors.Load(),
		Degraded:      degraded,
	}
}

// Close syncs and closes the file backend; memory-only stores are a no-op.
// The store must not be used after Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	f := s.f
	s.f = nil
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync: %w", err)
	}
	return f.Close()
}
