// Package store is a content-addressed result store: immutable sets of
// NDJSON result lines keyed by a content digest of the request that
// produced them (see service.DigestSweep for the keying rule).
//
// The store is what makes large sweeps durable and deduplicated: a job that
// finishes puts its result lines under the request digest, an identical
// resubmission is served from the store without re-evaluating a single
// cell, and with the optional append-only file backend the results survive
// process restarts. Entries are immutable — a digest maps to exactly one
// byte sequence, so serving from the store is byte-identical to the run
// that produced the entry.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Store maps content digests to immutable result-line sets. It is safe for
// concurrent use. The zero value is not usable; call Open.
type Store struct {
	mu      sync.Mutex
	entries map[string][]json.RawMessage
	file    *os.File // nil = memory-only

	hits   atomic.Int64
	misses atomic.Int64
}

// record is one append-only file line: a completed entry.
type record struct {
	Digest  string            `json:"digest"`
	Results []json.RawMessage `json:"results"`
}

// Open builds a store. An empty path means memory-only; otherwise the path
// is an append-only NDJSON file: existing records are replayed into memory,
// and every future Put is appended. A torn trailing record — a crash
// mid-append — is truncated away, so at most the record being written is
// lost and future appends never glue onto a corrupt tail.
func Open(path string) (*Store, error) {
	s := &Store{entries: make(map[string][]json.RawMessage)}
	if path == "" {
		return s, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	// Replay tracking the byte offset of the last cleanly-terminated good
	// record: everything past it (torn line, garbage) is truncated before
	// the first append, otherwise the next Put would glue onto the fragment
	// and both records would be unreadable on the following open.
	r := bufio.NewReaderSize(f, 1<<20)
	var good int64
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			// EOF with a partial (newline-less) tail, or any read error:
			// the tail is torn — appends always end in '\n'.
			if err != io.EOF {
				f.Close()
				return nil, fmt.Errorf("store: read %s: %w", path, err)
			}
			break
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			good += int64(len(line))
			continue
		}
		var rec record
		if err := json.Unmarshal(trimmed, &rec); err != nil || rec.Digest == "" {
			// A complete but unparseable line: treat it and everything after
			// as torn rather than guessing where records resume.
			break
		}
		good += int64(len(line))
		s.entries[rec.Digest] = rec.Results
	}
	if info, err := f.Stat(); err == nil && info.Size() > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncate torn tail of %s: %w", path, err)
		}
	}
	s.file = f
	return s, nil
}

// Get returns the result lines stored under digest. It counts a hit or a
// miss; callers probing for dedup should call it exactly once per request.
func (s *Store) Get(digest string) ([]json.RawMessage, bool) {
	s.mu.Lock()
	lines, ok := s.entries[digest]
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return lines, ok
}

// Put stores the result lines under digest. Entries are immutable: a digest
// already present is left untouched (the first writer wins — identical
// requests produce identical bytes, so there is nothing to overwrite).
func (s *Store) Put(digest string, results []json.RawMessage) error {
	if digest == "" {
		return fmt.Errorf("store: empty digest")
	}
	lines := make([]json.RawMessage, len(results))
	for i, r := range results {
		lines[i] = append(json.RawMessage(nil), r...)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[digest]; dup {
		return nil
	}
	if s.file != nil {
		data, err := json.Marshal(record{Digest: digest, Results: lines})
		if err != nil {
			return fmt.Errorf("store: encode %s: %w", digest, err)
		}
		data = append(data, '\n')
		if _, err := s.file.Write(data); err != nil {
			return fmt.Errorf("store: append %s: %w", digest, err)
		}
	}
	s.entries[digest] = lines
	return nil
}

// Counters is a snapshot of the store's effectiveness counters.
type Counters struct {
	// Entries is the number of stored result sets.
	Entries int
	// Hits and Misses count Get probes.
	Hits, Misses int64
}

// Counters returns a snapshot of the store counters.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	entries := len(s.entries)
	s.mu.Unlock()
	return Counters{Entries: entries, Hits: s.hits.Load(), Misses: s.misses.Load()}
}

// Close syncs and closes the file backend; memory-only stores are a no-op.
// The store must not be used after Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	f := s.file
	s.file = nil
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync: %w", err)
	}
	return f.Close()
}
