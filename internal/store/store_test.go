package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func lines(ss ...string) []json.RawMessage {
	out := make([]json.RawMessage, len(ss))
	for i, s := range ss {
		out[i] = json.RawMessage(s)
	}
	return out
}

func TestMemoryCellPutGet(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, ok := s.GetCell("c1"); ok {
		t.Fatal("empty store claims a cell hit")
	}
	if err := s.PutCell("c1", json.RawMessage(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetCell("c1")
	if !ok || string(got) != `{"a":1}` {
		t.Fatalf("got %s ok=%v", got, ok)
	}
	c := s.Counters()
	if c.Entries != 1 || c.CellHits != 1 || c.CellMisses != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestRequestIndexPutGet(t *testing.T) {
	s, _ := Open("")
	defer s.Close()

	if _, ok := s.GetRequest("r1"); ok {
		t.Fatal("empty store claims a request hit")
	}
	cells := []string{"c1", "c2"}
	want := lines(`{"a":1}`, `{"b":2}`)
	if err := s.PutRequest("r1", cells, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetRequest("r1")
	if !ok || len(got) != 2 || string(got[0]) != `{"a":1}` || string(got[1]) != `{"b":2}` {
		t.Fatalf("got %v ok=%v", got, ok)
	}
	c := s.Counters()
	if c.Entries != 2 || c.Requests != 1 || c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("counters %+v", c)
	}
	// An index may also be written over cells already present (nil lines).
	if err := s.PutRequest("r2", []string{"c2", "c1"}, nil); err != nil {
		t.Fatal(err)
	}
	got, ok = s.GetRequest("r2")
	if !ok || string(got[0]) != `{"b":2}` || string(got[1]) != `{"a":1}` {
		t.Fatalf("reordered index got %v ok=%v", got, ok)
	}
}

func TestLookupCells(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	s.PutCell("c1", json.RawMessage(`{"a":1}`))
	s.PutCell("c3", json.RawMessage(`{"c":3}`))
	got, hits := s.LookupCells([]string{"c1", "c2", "c3"})
	if hits != 2 || string(got[0]) != `{"a":1}` || got[1] != nil || string(got[2]) != `{"c":3}` {
		t.Fatalf("lookup got %v hits=%d", got, hits)
	}
	if c := s.Counters(); c.CellHits != 2 || c.CellMisses != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestPutIsImmutable(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	if err := s.PutCell("d", json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCell("d", json.RawMessage(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	got, _ := s.GetCell("d")
	if string(got) != `{"v":1}` {
		t.Fatalf("second put overwrote the entry: %s", got)
	}
	// The stored line is a copy: mutating the caller's bytes afterwards
	// must not corrupt the entry.
	in := json.RawMessage(`{"v":9}`)
	s.PutCell("d2", in)
	in[5] = '0'
	got, _ = s.GetCell("d2")
	if string(got) != `{"v":9}` {
		t.Fatalf("entry aliases caller bytes: %s", got)
	}
}

func TestEmptyDigestRejected(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	if err := s.PutCell("", json.RawMessage(`{}`)); err == nil {
		t.Fatal("empty cell digest accepted")
	}
	if err := s.PutRequest("", nil, nil); err == nil {
		t.Fatal("empty request digest accepted")
	}
	if err := s.PutRequest("r", []string{"a", "b"}, lines(`{}`)); err == nil {
		t.Fatal("misaligned lines accepted")
	}
}

// TestFileBackendSurvivesReopen is the durability half of the acceptance:
// cells and request indexes put before Close are served after a fresh Open
// of the same path, byte-identical.
func TestFileBackendSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.ndjson")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := lines(`{"grid":"paper","lifetime_min":16.28}`, `{"grid":"paper","lifetime_min":16.9}`)
	if err := s.PutRequest("digest-a", []string{"cell-1", "cell-2"}, want); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCell("cell-3", json.RawMessage(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, ok := re.GetRequest("digest-a")
	if !ok || len(got) != 2 {
		t.Fatalf("digest-a after reopen: %v ok=%v", got, ok)
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("line %d drifted: %s vs %s", i, got[i], want[i])
		}
	}
	if line, ok := re.GetCell("cell-2"); !ok || string(line) != string(want[1]) {
		t.Fatalf("cell-2 after reopen: %s ok=%v", line, ok)
	}
	if c := re.Counters(); c.Entries != 3 || c.Requests != 1 {
		t.Fatalf("counters after reopen %+v", c)
	}
}

// TestLegacyFormatMigration: a store file written by the previous
// whole-request format (PR 4: {"digest":...,"results":[...]} records) opens
// cleanly and accepts new cell-granular appends alongside the old records.
// The legacy entries themselves are detected but not loaded — the digest
// scheme changed with cell granularity, so no new submission can address
// them; keeping the file readable (and its torn-tail handling intact) is
// the migration, and the store rebuilds organically from new runs.
func TestLegacyFormatMigration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.ndjson")
	legacy := `{"digest":"old-req","results":[{"solver":"bestof","lifetime_min":16.28},{"solver":"optimal","lifetime_min":16.9}]}` + "\n"
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(path)
	if err != nil {
		t.Fatalf("legacy-format store failed to open: %v", err)
	}
	if _, ok := s.GetRequest("old-req"); ok {
		t.Fatal("retired-scheme digest served (nothing can ever compute this key again)")
	}
	if c := s.Counters(); c.Entries != 0 || c.Requests != 0 {
		t.Fatalf("legacy records loaded as live entries: %+v", c)
	}
	// New cell-granular entries append next to the legacy record.
	if err := s.PutRequest("new-req", []string{"cell-a"}, lines(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if line, ok := re.GetCell("cell-a"); !ok || string(line) != `{"v":1}` {
		t.Fatalf("new cell lost next to legacy records: %s ok=%v", line, ok)
	}
	if got, ok := re.GetRequest("new-req"); !ok || string(got[0]) != `{"v":1}` {
		t.Fatalf("new request index lost next to legacy records: %v ok=%v", got, ok)
	}
	// The legacy line must still be part of the intact prefix: a torn tail
	// appended after it truncates back to the legacy+new records, not to
	// zero.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"cell":"torn","result":{"x"`)
	f.Close()
	third, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	if _, ok := third.GetCell("cell-a"); !ok {
		t.Fatal("cell lost when truncating a torn tail behind legacy records")
	}
}

// TestTornTrailingRecordSkipped: a crash mid-append leaves a truncated last
// line; everything before it must still load. The tail here is a torn
// cell-granular record.
func TestTornTrailingRecordSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.ndjson")
	s, _ := Open(path)
	s.PutCell("good", json.RawMessage(`{"ok":true}`))
	s.PutRequest("req", []string{"good"}, nil)
	s.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"cell":"torn","result":{"ok"`)
	f.Close()

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := re.GetCell("good"); !ok {
		t.Fatal("intact record lost behind a torn tail")
	}
	if _, ok := re.GetRequest("req"); !ok {
		t.Fatal("request index lost behind a torn tail")
	}
	if _, ok := re.GetCell("torn"); ok {
		t.Fatal("torn record surfaced")
	}
	// The reopened store still accepts appends — and because the torn tail
	// was truncated, the append must not glue onto the fragment: a third
	// open has to see both the old record and the new one.
	if err := re.PutCell("after", json.RawMessage(`{"v":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	third, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	if _, ok := third.GetCell("good"); !ok {
		t.Fatal("original record lost after post-torn append")
	}
	got, ok := third.GetCell("after")
	if !ok || string(got) != `{"v":3}` {
		t.Fatalf("post-torn append lost on reopen: %s ok=%v", got, ok)
	}
}

func TestConcurrentAccess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.ndjson")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := string(rune('a' + i%4))
			s.PutCell(d, json.RawMessage(`{"w":1}`))
			s.GetCell(d)
			s.LookupCells([]string{d})
			s.PutRequest("r-"+d, []string{d}, nil)
			s.GetRequest("r-" + d)
		}(i)
	}
	wg.Wait()
	if c := s.Counters(); c.Entries != 4 || c.Requests != 4 {
		t.Fatalf("counters %+v", c)
	}
}
