package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func lines(ss ...string) []json.RawMessage {
	out := make([]json.RawMessage, len(ss))
	for i, s := range ss {
		out[i] = json.RawMessage(s)
	}
	return out
}

func TestMemoryPutGet(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, ok := s.Get("d1"); ok {
		t.Fatal("empty store claims a hit")
	}
	want := lines(`{"a":1}`, `{"b":2}`)
	if err := s.Put("d1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("d1")
	if !ok || len(got) != 2 || string(got[0]) != `{"a":1}` || string(got[1]) != `{"b":2}` {
		t.Fatalf("got %v ok=%v", got, ok)
	}
	c := s.Counters()
	if c.Entries != 1 || c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestPutIsImmutable(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	if err := s.Put("d", lines(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("d", lines(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("d")
	if string(got[0]) != `{"v":1}` {
		t.Fatalf("second Put overwrote the entry: %s", got[0])
	}
	// The stored lines are copies: mutating the caller's slice afterwards
	// must not corrupt the entry.
	in := lines(`{"v":9}`)
	s.Put("d2", in)
	in[0][5] = '0'
	got, _ = s.Get("d2")
	if string(got[0]) != `{"v":9}` {
		t.Fatalf("entry aliases caller bytes: %s", got[0])
	}
}

func TestEmptyDigestRejected(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	if err := s.Put("", lines(`{}`)); err == nil {
		t.Fatal("empty digest accepted")
	}
}

// TestFileBackendSurvivesReopen is the durability half of the issue's
// acceptance: entries put before Close are served after a fresh Open of the
// same path, byte-identical.
func TestFileBackendSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.ndjson")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := lines(`{"grid":"paper","lifetime_min":16.28}`, `{"grid":"paper","lifetime_min":16.9}`)
	if err := s.Put("digest-a", want); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("digest-b", lines(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, ok := re.Get("digest-a")
	if !ok || len(got) != 2 {
		t.Fatalf("digest-a after reopen: %v ok=%v", got, ok)
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("line %d drifted: %s vs %s", i, got[i], want[i])
		}
	}
	if c := re.Counters(); c.Entries != 2 {
		t.Fatalf("entries after reopen %d, want 2", c.Entries)
	}
}

// TestTornTrailingRecordSkipped: a crash mid-append leaves a truncated last
// line; everything before it must still load.
func TestTornTrailingRecordSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.ndjson")
	s, _ := Open(path)
	s.Put("good", lines(`{"ok":true}`))
	s.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"digest":"torn","results":[{"ok"`)
	f.Close()

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := re.Get("good"); !ok {
		t.Fatal("intact record lost behind a torn tail")
	}
	if _, ok := re.Get("torn"); ok {
		t.Fatal("torn record surfaced")
	}
	// The reopened store still accepts appends — and because the torn tail
	// was truncated, the append must not glue onto the fragment: a third
	// open has to see both the old record and the new one.
	if err := re.Put("after", lines(`{"v":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	third, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	if _, ok := third.Get("good"); !ok {
		t.Fatal("original record lost after post-torn append")
	}
	got, ok := third.Get("after")
	if !ok || string(got[0]) != `{"v":3}` {
		t.Fatalf("post-torn append lost on reopen: %v ok=%v", got, ok)
	}
}

func TestConcurrentAccess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.ndjson")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := string(rune('a' + i%4))
			s.Put(d, lines(`{"w":1}`))
			s.Get(d)
		}(i)
	}
	wg.Wait()
	if c := s.Counters(); c.Entries != 4 {
		t.Fatalf("entries %d, want 4", c.Entries)
	}
}
