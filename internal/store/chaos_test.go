// Chaos tests for the file backend: crash-restart properties over random
// cut points, injected I/O faults (transient, persistent, torn writes,
// fsync failures), CRC quarantine, and degraded-mode recovery. External
// test package so it can use the fault injector (which imports store).
package store_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"batsched/internal/faults"
	"batsched/internal/obs"
	"batsched/internal/store"
)

// chaosSeed returns the deterministic seed for randomized chaos tests,
// overridable via CHAOS_SEED so CI pins one and local runs can explore.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", v, err)
		}
		return n
	}
	return 20260807
}

// noSleep stands in for time.Sleep so retry backoff is instant in tests.
func noSleep(time.Duration) {}

// fakeClock is a manually-advanced clock for breaker-cooldown tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func mustPutCell(t *testing.T, s *store.Store, digest, line string) {
	t.Helper()
	if err := s.PutCell(digest, json.RawMessage(line)); err != nil {
		t.Fatalf("PutCell(%s): %v", digest, err)
	}
}

// seedStore populates a fresh file-backed store with n cells and one
// request index over them, then closes it. Returns the cell digests.
func seedStore(t *testing.T, path string, n int) []string {
	t.Helper()
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	digests := make([]string, n)
	lines := make([]json.RawMessage, n)
	for i := range digests {
		digests[i] = fmt.Sprintf("cell-%03d", i)
		lines[i] = json.RawMessage(fmt.Sprintf(`{"solver":"s%d","lifetime_min":%d.5}`, i, i))
	}
	if err := s.PutRequest("req-all", digests, lines); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return digests
}

// A complete-but-corrupt line mid-file must be quarantined — skipped and
// counted — while every record after it still loads. The old behavior
// (truncate everything past the first bad line) turned one flipped bit
// into total loss of the file's tail.
func TestReplayQuarantinesGarbageMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.ndjson")
	seedStore(t, path, 4)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	// Replace the second record with complete garbage (newline kept).
	lines[1] = []byte("!!not json at all!!\n")
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(path)
	if err != nil {
		t.Fatalf("reopen with mid-file garbage: %v", err)
	}
	defer s.Close()
	c := s.Counters()
	if c.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", c.Quarantined)
	}
	if c.Entries != 3 {
		t.Fatalf("Entries = %d, want 3 (one quarantined)", c.Entries)
	}
	// The records after the corrupt line survived.
	if _, ok := s.PeekCell("cell-003"); !ok {
		t.Fatal("record after corrupt line was lost")
	}
	// The request index references the quarantined cell: must read as a
	// clean miss, never a short result set.
	if _, ok := s.GetRequest("req-all"); ok {
		t.Fatal("request with a quarantined cell served a hit")
	}
}

// A line that still parses as JSON but whose bytes were tampered with must
// fail its CRC and be quarantined — this is the case torn-tail handling
// can never catch.
func TestReplayQuarantinesCRCMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.ndjson")
	seedStore(t, path, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the first record's payload: JSON stays valid,
	// the checksum does not.
	tampered := bytes.Replace(data, []byte(`"lifetime_min":0.5`), []byte(`"lifetime_min":9.5`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if c := s.Counters(); c.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", c.Quarantined)
	}
	if _, ok := s.PeekCell("cell-000"); ok {
		t.Fatal("tampered record served")
	}
	if _, ok := s.PeekCell("cell-002"); !ok {
		t.Fatal("clean record behind the tampered one was lost")
	}
}

// Records written before checksumming (no crc field) are accepted
// unverified, so pre-existing store files keep working.
func TestReplayAcceptsCRCLessRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.ndjson")
	old := `{"cell":"old-cell","result":{"solver":"bestof","lifetime_min":16.28}}` + "\n"
	if err := os.WriteFile(path, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if line, ok := s.PeekCell("old-cell"); !ok || string(line) != `{"solver":"bestof","lifetime_min":16.28}` {
		t.Fatalf("CRC-less record not loaded: %s ok=%v", line, ok)
	}
	if c := s.Counters(); c.Quarantined != 0 {
		t.Fatalf("Quarantined = %d, want 0", c.Quarantined)
	}
}

// A transient write error must be absorbed by retry: the put succeeds, the
// retry counter advances, and the breaker stays closed.
func TestAppendRetriesTransientFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.ndjson")
	// Fail the first two write attempts; the third succeeds within the
	// default three-retry budget.
	inj := faults.New(chaosSeed(t),
		faults.Rule{Op: faults.OpStoreWrite, P: 1, Count: 2})
	s, err := store.OpenWith(store.Options{
		Path:     path,
		WrapFile: faults.WrapStore(inj),
		Sleep:    noSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustPutCell(t, s, "d1", `{"ok":1}`)
	c := s.Counters()
	if c.AppendRetries != 2 {
		t.Fatalf("AppendRetries = %d, want 2", c.AppendRetries)
	}
	if c.AppendErrors != 0 || c.Degraded {
		t.Fatalf("transient fault tripped the breaker: %+v", c)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The retried record landed intact and survives reopen.
	re, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if line, ok := re.PeekCell("d1"); !ok || string(line) != `{"ok":1}` {
		t.Fatalf("retried record lost: %s ok=%v", line, ok)
	}
	if qc := re.Counters(); qc.Quarantined != 0 {
		t.Fatalf("clean retry left quarantined debris: %+v", qc)
	}
}

// Persistent write failure trips the breaker: the put errors, further puts
// fail fast with ErrDegraded (no backend I/O), reads keep working, and
// after the cooldown a healthy put closes the breaker again. The file must
// reopen cleanly afterwards with only the committed records.
func TestDegradedModeAndRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.ndjson")
	clk := newFakeClock()
	inj := faults.New(chaosSeed(t))
	s, err := store.OpenWith(store.Options{
		Path:            path,
		WrapFile:        faults.WrapStore(inj),
		Sleep:           noSleep,
		Clock:           clk.Now,
		BreakerCooldown: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustPutCell(t, s, "before", `{"n":0}`)
	clk.Advance(time.Second)
	// 4 write attempts per put (1 + 3 retries); arm 8 failures so the next
	// put exhausts its retries and trips the breaker, with faults left over
	// to prove fail-fast puts do not touch the backend.
	inj.Add(faults.Rule{Op: faults.OpStoreWrite, P: 1, Count: 8})
	if err := s.PutCell("lost", json.RawMessage(`{"n":1}`)); err == nil {
		t.Fatal("put succeeded despite persistent write failure")
	}
	c := s.Counters()
	if !c.Degraded || c.AppendErrors != 1 {
		t.Fatalf("breaker did not trip: %+v", c)
	}
	if c.AppendRetries != 3 {
		t.Fatalf("AppendRetries = %d, want 3", c.AppendRetries)
	}
	// Fail-fast: within the cooldown, puts return ErrDegraded without
	// consuming injector faults (no backend I/O at all).
	fired := inj.Fired(faults.OpStoreWrite)
	if err := s.PutCell("lost2", json.RawMessage(`{"n":2}`)); !errors.Is(err, store.ErrDegraded) {
		t.Fatalf("degraded put error = %v, want ErrDegraded", err)
	}
	if got := inj.Fired(faults.OpStoreWrite); got != fired {
		t.Fatal("fail-fast put touched the backend")
	}
	if s.Counters().DroppedPuts != 1 {
		t.Fatalf("DroppedPuts = %d, want 1", s.Counters().DroppedPuts)
	}
	// Reads still serve while degraded.
	if line, ok := s.GetCell("before"); !ok || string(line) != `{"n":0}` {
		t.Fatalf("read while degraded: %s ok=%v", line, ok)
	}
	// Half-open probe before cooldown has not elapsed: still fail-fast.
	clk.Advance(5 * time.Second)
	if err := s.PutCell("early", json.RawMessage(`{"n":3}`)); !errors.Is(err, store.ErrDegraded) {
		t.Fatalf("pre-cooldown put error = %v, want ErrDegraded", err)
	}
	// Past the cooldown the probe reaches the (now healthy: remaining
	// fault budget exhausted by the first put's 4 attempts... ensure by
	// advancing past all Count=8 fires) backend and the breaker closes.
	clk.Advance(6 * time.Second)
	// Burn remaining injected faults: each failed probe re-arms cooldown.
	for i := 0; i < 2; i++ {
		if err := s.PutCell("probe", json.RawMessage(`{"n":4}`)); err == nil {
			break
		}
		clk.Advance(11 * time.Second)
	}
	if err := s.PutCell("after", json.RawMessage(`{"n":5}`)); err != nil {
		t.Fatalf("post-recovery put: %v", err)
	}
	if c := s.Counters(); c.Degraded {
		t.Fatalf("breaker still open after successful put: %+v", c)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: only committed records present, file parses cleanly.
	re, err := store.Open(path)
	if err != nil {
		t.Fatalf("reopen after degraded episode: %v", err)
	}
	defer re.Close()
	if _, ok := re.PeekCell("before"); !ok {
		t.Fatal("pre-fault record lost")
	}
	if _, ok := re.PeekCell("after"); !ok {
		t.Fatal("post-recovery record lost")
	}
	if _, ok := re.PeekCell("lost"); ok {
		t.Fatal("failed put surfaced after reopen")
	}
}

// Torn partial writes: a put whose every attempt tears must fail without
// poisoning the file — the fragment is terminated with a newline by the
// next successful append, replays as one quarantined line, and every
// committed record before and after it survives reopen.
func TestTornWriteRepair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.ndjson")
	clk := newFakeClock()
	inj := faults.New(chaosSeed(t))
	s, err := store.OpenWith(store.Options{
		Path:            path,
		WrapFile:        faults.WrapStore(inj),
		Sleep:           noSleep,
		Clock:           clk.Now,
		BreakerCooldown: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustPutCell(t, s, "intact-1", `{"n":1}`)
	inj.Add(faults.Rule{Op: faults.OpStoreWrite, P: 1, Torn: true, Count: 4})
	if err := s.PutCell("torn-victim", json.RawMessage(`{"n":2}`)); err == nil {
		t.Fatal("put succeeded though every write tore")
	}
	clk.Advance(2 * time.Second) // past cooldown: next put probes
	mustPutCell(t, s, "intact-2", `{"n":3}`)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := store.Open(path)
	if err != nil {
		t.Fatalf("reopen after torn writes: %v", err)
	}
	defer re.Close()
	if _, ok := re.PeekCell("intact-1"); !ok {
		t.Fatal("record before torn write lost")
	}
	if _, ok := re.PeekCell("intact-2"); !ok {
		t.Fatal("record after torn-tail repair lost")
	}
	// The torn put either quarantines (cut mid-record: bad JSON or CRC) or
	// — when the cut landed exactly after the record's last content byte —
	// is completed by the repair newline and surfaces byte-exact. Both are
	// sound; surfacing CORRUPT bytes is the failure mode being excluded.
	if line, ok := re.PeekCell("torn-victim"); ok {
		if string(line) != `{"n":2}` {
			t.Fatalf("torn put surfaced corrupt bytes: %q", line)
		}
	} else if c := re.Counters(); c.Quarantined < 1 {
		t.Fatalf("torn fragment neither quarantined nor complete: %+v", c)
	}
}

// Crash-restart property: for random cut points through a store file — a
// SIGKILL can land mid-write anywhere — reopening the prefix must succeed,
// every served request must be complete (never short), every served cell
// must be intact JSON, and the reopened store must accept new appends that
// survive another reopen.
func TestCrashRestartProperty(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ndjson")
	seedStore(t, full, 8)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(chaosSeed(t)))
	for trial := 0; trial < 40; trial++ {
		cut := rng.Intn(len(data) + 1)
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.ndjson", trial))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := store.Open(path)
		if err != nil {
			t.Fatalf("cut@%d: reopen: %v", cut, err)
		}
		if lines, ok := s.GetRequest("req-all"); ok {
			if len(lines) != 8 {
				t.Fatalf("cut@%d: short request hit: %d lines", cut, len(lines))
			}
			for _, l := range lines {
				if !json.Valid(l) {
					t.Fatalf("cut@%d: invalid stored line %q", cut, l)
				}
			}
		}
		for i := 0; i < 8; i++ {
			if line, ok := s.PeekCell(fmt.Sprintf("cell-%03d", i)); ok && !json.Valid(line) {
				t.Fatalf("cut@%d: cell %d corrupt: %q", cut, i, line)
			}
		}
		// The survivor keeps working: append, close, reopen, verify.
		mustPutCell(t, s, "post-crash", `{"alive":true}`)
		if err := s.Close(); err != nil {
			t.Fatalf("cut@%d: close: %v", cut, err)
		}
		re, err := store.Open(path)
		if err != nil {
			t.Fatalf("cut@%d: second reopen: %v", cut, err)
		}
		if line, ok := re.PeekCell("post-crash"); !ok || string(line) != `{"alive":true}` {
			t.Fatalf("cut@%d: post-crash append lost: %s ok=%v", cut, line, ok)
		}
		re.Close()
	}
}

// Sync policies: always fsyncs once per put, never only on Close, interval
// at most once per period (piggybacked on puts, fake clock driven).
func TestSyncPolicies(t *testing.T) {
	syncs := func(t *testing.T, pol store.SyncPolicy, interval time.Duration, step time.Duration, puts int) int64 {
		t.Helper()
		clk := newFakeClock()
		inj := faults.New(1) // no rules: pure op counter
		s, err := store.OpenWith(store.Options{
			Path:         filepath.Join(t.TempDir(), "s.ndjson"),
			Sync:         pol,
			SyncInterval: interval,
			WrapFile:     faults.WrapStore(inj),
			Clock:        clk.Now,
			Sleep:        noSleep,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < puts; i++ {
			mustPutCell(t, s, fmt.Sprintf("d%d", i), `{"x":1}`)
			clk.Advance(step)
		}
		n := inj.Ops(faults.OpStoreSync)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := syncs(t, store.SyncAlways, 0, 0, 5); n != 5 {
		t.Fatalf("always: %d syncs for 5 puts, want 5", n)
	}
	if n := syncs(t, store.SyncNever, 0, 0, 5); n != 0 {
		t.Fatalf("never: %d syncs before Close, want 0", n)
	}
	// 100ms interval, 60ms steps: puts land at t=0,60,120,... — the put
	// at 0ms was preceded by lastSync=open time so not synced... syncs
	// happen when now-lastSync >= interval: expect roughly every other put.
	n := syncs(t, store.SyncInterval, 100*time.Millisecond, 60*time.Millisecond, 6)
	if n < 2 || n >= 6 {
		t.Fatalf("interval: %d syncs for 6 puts at 60ms/100ms, want a few but not all", n)
	}
}

// An fsync failure under SyncAlways must not fail the put (the bytes are
// written) but must trip the breaker and count a sync error.
func TestSyncFailureTripsBreaker(t *testing.T) {
	clk := newFakeClock()
	inj := faults.New(chaosSeed(t), faults.Rule{Op: faults.OpStoreSync, P: 1, Count: 4})
	s, err := store.OpenWith(store.Options{
		Path:     filepath.Join(t.TempDir(), "s.ndjson"),
		Sync:     store.SyncAlways,
		WrapFile: faults.WrapStore(inj),
		Clock:    clk.Now,
		Sleep:    noSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustPutCell(t, s, "d1", `{"x":1}`) // put served; sync failed behind it
	c := s.Counters()
	if c.SyncErrors != 1 || !c.Degraded {
		t.Fatalf("sync failure not surfaced: %+v", c)
	}
	if _, ok := s.PeekCell("d1"); !ok {
		t.Fatal("synced-write put lost from memory")
	}
}

// Injected write latency must land in the append-latency histogram: the
// observation covers the whole commit (write + retries + fsync), so an
// operator sees injected (or real) slowness as a shifted bucket, not just
// as a retry counter.
func TestAppendLatencyHistogramUnderInjectedLatency(t *testing.T) {
	const injected = 20 * time.Millisecond
	inj := faults.New(chaosSeed(t),
		faults.Rule{Op: faults.OpStoreWrite, P: 1, Count: 1, Latency: injected})
	h := obs.NewHistogram(nil)
	s, err := store.OpenWith(store.Options{
		Path:          filepath.Join(t.TempDir(), "s.ndjson"),
		WrapFile:      faults.WrapStore(inj),
		Sleep:         noSleep,
		AppendLatency: h,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustPutCell(t, s, "d1", `{"x":1}`)
	snap := h.Snapshot()
	if snap.Count() != 1 {
		t.Fatalf("append latency observations = %d, want 1", snap.Count())
	}
	if got := snap.Sum; got < injected.Seconds() {
		t.Fatalf("append latency sum %.6fs, want >= injected %.3fs", got, injected.Seconds())
	}
	// The delayed commit must sit in a bucket at or above the injected
	// latency — the buckets below it stay empty.
	for i, bound := range snap.Bounds {
		if bound < injected.Seconds() && snap.Counts[i] != 0 {
			t.Fatalf("observation landed below the injected latency: bucket le=%g has %d", bound, snap.Counts[i])
		}
	}
}
