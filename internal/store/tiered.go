package store

import (
	"encoding/json"
	"sync/atomic"
)

// RemoteTier is the peer-facing half of a tiered store: it can fill cells
// the local tier misses from other nodes and replicate freshly computed
// cells toward their ring owner. The cluster layer (internal/cluster)
// implements it over the batserve peer API; the store package only knows
// the shape, so it never imports HTTP or membership machinery.
type RemoteTier interface {
	// FetchCells fills nil slots of lines (aligned with digests) from
	// remote peers and returns how many it filled. Implementations decide
	// which peers to ask (ring owner, gossip hints), enforce their own
	// timeouts and circuit breakers, and must leave a slot nil rather than
	// ever filling it with partial bytes. Must be safe for concurrent use.
	FetchCells(digests []string, lines []json.RawMessage) int
	// PushCell offers a locally stored cell to the rest of the cluster
	// (typically: replicate it to its ring owner when that is another
	// node). Best-effort and asynchronous; errors are the implementation's
	// to count, never the caller's to handle.
	PushCell(digest string, line json.RawMessage)
}

// TierCounters snapshots the remote tier's effectiveness: how many cells
// peers served that the local store missed, and how many remote probes
// failed outright (timeouts, open breakers — counted by the tier itself as
// RPC errors; here only whole-batch zero-fills are visible).
type TierCounters struct {
	// RemoteHits counts cells served by the remote tier; RemoteMisses
	// counts cells the remote tier was asked for and could not fill.
	RemoteHits, RemoteMisses int64
	// WriteThroughErrors counts remote lines that failed to persist into
	// the local tier (the line was still served; only future locality was
	// lost).
	WriteThroughErrors int64
}

// Tiered is a Backend that probes a local Backend first and falls back to a
// RemoteTier for the misses, writing remote hits through into the local
// tier so a cell crosses the network at most once per node. Puts land
// locally and are offered to the remote tier (which replicates them to
// their owner best-effort). The whole-request index stays strictly local:
// request digests are a per-node serving convenience, while cells are the
// cluster-wide content-addressed unit.
//
// With a nil RemoteTier a Tiered store is a transparent pass-through — the
// single-node configuration with clustering compiled in but disarmed — and
// every method simply delegates, so the hot path costs one nil check.
type Tiered struct {
	local  Backend
	remote RemoteTier

	remoteHits   atomic.Int64
	remoteMisses atomic.Int64
	wtErrors     atomic.Int64
}

// NewTiered wraps local with a remote tier. remote may be nil (disarmed).
func NewTiered(local Backend, remote RemoteTier) *Tiered {
	return &Tiered{local: local, remote: remote}
}

// Local exposes the underlying local backend — the peer API serves from it
// directly so one node's remote probe can never cascade into another
// remote probe.
func (t *Tiered) Local() Backend { return t.local }

// GetRequest delegates to the local tier: whole-request indexes are
// node-local.
func (t *Tiered) GetRequest(digest string) ([]json.RawMessage, bool) {
	return t.local.GetRequest(digest)
}

// PutRequest delegates to the local tier.
func (t *Tiered) PutRequest(digest string, cellDigests []string, lines []json.RawMessage) error {
	return t.local.PutRequest(digest, cellDigests, lines)
}

// GetCell probes the local tier, then the remote one. A remote hit is
// written through into the local tier.
func (t *Tiered) GetCell(digest string) (json.RawMessage, bool) {
	if line, ok := t.local.GetCell(digest); ok {
		return line, ok
	}
	if t.remote == nil {
		return nil, false
	}
	lines := []json.RawMessage{nil}
	if t.remote.FetchCells([]string{digest}, lines) == 0 {
		t.remoteMisses.Add(1)
		return nil, false
	}
	t.remoteHits.Add(1)
	t.writeThrough(digest, lines[0])
	return lines[0], true
}

// PeekCell probes the local tier only: it is the service's cheap re-probe
// after an in-flight wait, and must never turn into a network round trip.
func (t *Tiered) PeekCell(digest string) (json.RawMessage, bool) {
	return t.local.PeekCell(digest)
}

// LookupCells is the sweep runner's bulk probe: one local pass, then one
// remote pass over the local misses. Remote hits are written through into
// the local tier and counted into the local per-cell hit ledger's remote
// sibling (TierCounters), so the incremental-sweep accounting separates
// "had it here" from "a peer had it".
func (t *Tiered) LookupCells(digests []string) ([]json.RawMessage, int) {
	lines, hits := t.local.LookupCells(digests)
	if t.remote == nil || hits == len(digests) {
		return lines, hits
	}
	filled := t.remote.FetchCells(digests, lines)
	if filled > 0 {
		t.remoteHits.Add(int64(filled))
		for i, d := range digests {
			if lines[i] != nil {
				// Only write through what the remote pass added; local hits
				// are already present. A second put of a local hit would be
				// a harmless no-op, but skipping it avoids n lock rounds.
				if _, had := t.local.PeekCell(d); !had {
					t.writeThrough(d, lines[i])
				}
			}
		}
	}
	t.remoteMisses.Add(int64(len(digests) - hits - filled))
	return lines, hits + filled
}

// PutCell stores the line locally and offers it to the remote tier, which
// replicates it toward its ring owner best-effort.
func (t *Tiered) PutCell(digest string, line json.RawMessage) error {
	if err := t.local.PutCell(digest, line); err != nil {
		return err
	}
	if t.remote != nil {
		t.remote.PushCell(digest, line)
	}
	return nil
}

// writeThrough persists a remote line into the local tier. Failures
// (degraded local store) only cost future locality, never the lookup.
func (t *Tiered) writeThrough(digest string, line json.RawMessage) {
	if err := t.local.PutCell(digest, line); err != nil {
		t.wtErrors.Add(1)
	}
}

// Counters snapshots the local tier's counters — including the replay
// health counters (Quarantined, LegacySkipped) that must stay visible
// through the wrapper.
func (t *Tiered) Counters() Counters { return t.local.Counters() }

// TierCounters snapshots the remote tier's effectiveness counters.
func (t *Tiered) TierCounters() TierCounters {
	return TierCounters{
		RemoteHits:         t.remoteHits.Load(),
		RemoteMisses:       t.remoteMisses.Load(),
		WriteThroughErrors: t.wtErrors.Load(),
	}
}

// Degraded reports the local tier's write circuit.
func (t *Tiered) Degraded() bool { return t.local.Degraded() }

// Close closes the local tier. The remote tier belongs to the cluster
// layer, which owns its lifecycle.
func (t *Tiered) Close() error { return t.local.Close() }
