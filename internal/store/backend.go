package store

import "encoding/json"

// Backend is the behavioral surface of a content-addressed result store:
// per-cell and whole-request probes, immutable puts, and the operational
// counters the serving layer exposes on /metrics. The concrete *Store (the
// memory/file store) is the base implementation; Tiered composes a local
// Backend with a remote peer tier. Everything above the store — the
// evaluation service, the job manager, batserve — speaks Backend, so a
// wrapped store is indistinguishable from a bare one.
//
// Counters is part of the interface on purpose: a store wrapped in a tier
// must not hide its replay-health counters (quarantined lines, skipped
// legacy records) from the metrics endpoint just because the caller holds
// the wrapper instead of the concrete type.
type Backend interface {
	// GetRequest returns the ordered result lines stored under a
	// whole-request digest, counting a request-level hit or miss.
	GetRequest(digest string) ([]json.RawMessage, bool)
	// PutRequest records the whole-request index entry digest → cellDigests
	// and stores any cell lines not held yet (lines aligned with
	// cellDigests; nil when every cell is known present).
	PutRequest(digest string, cellDigests []string, lines []json.RawMessage) error
	// GetCell returns the line stored under one cell digest, counting a
	// per-cell hit or miss.
	GetCell(digest string) (json.RawMessage, bool)
	// PeekCell is GetCell without advancing the hit/miss counters — the
	// internal re-probe used after waiting out another sweep's in-flight
	// evaluation.
	PeekCell(digest string) (json.RawMessage, bool)
	// LookupCells probes every digest at once, returning stored lines
	// aligned with the input (nil = absent) plus the hit count.
	LookupCells(digests []string) ([]json.RawMessage, int)
	// PutCell stores one immutable result line under a cell digest.
	PutCell(digest string, line json.RawMessage) error
	// Counters snapshots the store's effectiveness and health counters,
	// including the replay counters (Quarantined, LegacySkipped) of
	// whatever file-backed tier sits underneath.
	Counters() Counters
	// Degraded reports whether the write circuit is open (read-only mode).
	Degraded() bool
	// Close releases the backend; it must not be used afterwards.
	Close() error
}

// Compile-time conformance: the concrete store and the tiered wrapper both
// satisfy Backend.
var (
	_ Backend = (*Store)(nil)
	_ Backend = (*Tiered)(nil)
)
