package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// fakeRemote is a RemoteTier over a plain map, recording every call.
type fakeRemote struct {
	mu      sync.Mutex
	cells   map[string]json.RawMessage
	fetches int
	pushes  map[string]json.RawMessage
}

func newFakeRemote() *fakeRemote {
	return &fakeRemote{cells: make(map[string]json.RawMessage), pushes: make(map[string]json.RawMessage)}
}

func (f *fakeRemote) FetchCells(digests []string, lines []json.RawMessage) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fetches++
	filled := 0
	for i, d := range digests {
		if lines[i] != nil {
			continue
		}
		if line, ok := f.cells[d]; ok {
			lines[i] = line
			filled++
		}
	}
	return filled
}

func (f *fakeRemote) PushCell(digest string, line json.RawMessage) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pushes[digest] = append(json.RawMessage(nil), line...)
}

func line(i int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"lifetime_min":%d}`, i))
}

func TestTieredLocalFirst(t *testing.T) {
	local, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	remote := newFakeRemote()
	tiered := NewTiered(local, remote)
	if err := tiered.PutCell("d1", line(1)); err != nil {
		t.Fatal(err)
	}
	got, ok := tiered.GetCell("d1")
	if !ok || string(got) != string(line(1)) {
		t.Fatalf("GetCell(d1) = %q, %v", got, ok)
	}
	if remote.fetches != 0 {
		t.Fatalf("local hit reached the remote tier (%d fetches)", remote.fetches)
	}
	// The put was offered to the remote tier for owner replication.
	if string(remote.pushes["d1"]) != string(line(1)) {
		t.Fatalf("PutCell did not push to the remote tier: %q", remote.pushes["d1"])
	}
}

func TestTieredRemoteHitWritesThrough(t *testing.T) {
	local, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	remote := newFakeRemote()
	remote.cells["d2"] = line(2)
	tiered := NewTiered(local, remote)

	got, ok := tiered.GetCell("d2")
	if !ok || string(got) != string(line(2)) {
		t.Fatalf("GetCell(d2) = %q, %v", got, ok)
	}
	// Write-through: the next probe is a local hit, no second fetch.
	if _, ok := local.PeekCell("d2"); !ok {
		t.Fatal("remote hit was not written through to the local tier")
	}
	if _, ok := tiered.GetCell("d2"); !ok {
		t.Fatal("second GetCell missed")
	}
	if remote.fetches != 1 {
		t.Fatalf("expected exactly 1 remote fetch, got %d", remote.fetches)
	}
	tc := tiered.TierCounters()
	if tc.RemoteHits != 1 {
		t.Fatalf("RemoteHits = %d, want 1", tc.RemoteHits)
	}
}

func TestTieredLookupCellsMergesTiers(t *testing.T) {
	local, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	remote := newFakeRemote()
	tiered := NewTiered(local, remote)
	if err := local.PutCell("a", line(1)); err != nil {
		t.Fatal(err)
	}
	remote.cells["b"] = line(2)
	// "c" exists nowhere.
	lines, hits := tiered.LookupCells([]string{"a", "b", "c"})
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	if string(lines[0]) != string(line(1)) || string(lines[1]) != string(line(2)) || lines[2] != nil {
		t.Fatalf("lines = %q", lines)
	}
	if _, ok := local.PeekCell("b"); !ok {
		t.Fatal("bulk remote hit was not written through")
	}
	tc := tiered.TierCounters()
	if tc.RemoteHits != 1 || tc.RemoteMisses != 1 {
		t.Fatalf("tier counters = %+v, want 1 hit / 1 miss", tc)
	}
}

// TestTieredDisarmedPassThrough pins the single-node configuration: a
// Tiered store with a nil remote behaves exactly like its local tier.
func TestTieredDisarmedPassThrough(t *testing.T) {
	local, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(local, nil)
	if err := tiered.PutCell("d", line(9)); err != nil {
		t.Fatal(err)
	}
	if _, ok := tiered.GetCell("d"); !ok {
		t.Fatal("disarmed GetCell missed a local cell")
	}
	if _, ok := tiered.GetCell("missing"); ok {
		t.Fatal("disarmed GetCell fabricated a cell")
	}
	lines, hits := tiered.LookupCells([]string{"d", "missing"})
	if hits != 1 || lines[0] == nil || lines[1] != nil {
		t.Fatalf("disarmed LookupCells = %q (%d hits)", lines, hits)
	}
	if tc := tiered.TierCounters(); tc != (TierCounters{}) {
		t.Fatalf("disarmed tier counters moved: %+v", tc)
	}
}

// TestTieredExposesReplayCounters is the satellite regression: a wrapped
// file store's quarantine and legacy-skip counters must stay visible
// through the Backend interface, or /metrics would lose them the moment
// batserve holds a Tiered instead of the concrete *Store.
func TestTieredExposesReplayCounters(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.ndjson")
	// One good cell record, one legacy whole-request record, one corrupt
	// line.
	good, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := good.PutCell("d1", line(1)); err != nil {
		t.Fatal(err)
	}
	if err := good.Close(); err != nil {
		t.Fatal(err)
	}
	legacy := `{"digest":"old-scheme","results":[{"lifetime_min":1}]}` + "\n"
	corrupt := "{not json}\n"
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(legacy + corrupt); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	var backend Backend = NewTiered(reopened, newFakeRemote())
	c := backend.Counters()
	if c.Quarantined != 1 {
		t.Fatalf("Quarantined through Backend = %d, want 1", c.Quarantined)
	}
	if c.LegacySkipped != 1 {
		t.Fatalf("LegacySkipped through Backend = %d, want 1", c.LegacySkipped)
	}
	if c.Entries != 1 {
		t.Fatalf("Entries = %d, want 1", c.Entries)
	}
}
