// Package battery defines battery parameter sets for the Kinetic Battery
// Model (KiBaM) and well-known presets used in the DSN 2009 paper
// "Maximizing System Lifetime by Battery Scheduling".
//
// A KiBaM battery distributes its capacity C over two wells: a fraction c in
// the available-charge well (which feeds the load directly) and 1-c in the
// bound-charge well, which leaks into the available well through a valve with
// rate constant k. The model is parameterised here by the transformed rate
// constant k' = k/(c(1-c)) as used throughout the paper.
//
// Units follow the paper: charge in ampere-minutes (A·min), current in
// amperes (A), time in minutes.
package battery

import (
	"errors"
	"fmt"
)

// Params holds the KiBaM parameters of one battery.
type Params struct {
	// Capacity is the total charge C in A·min.
	Capacity float64
	// C is the available-charge fraction c in (0,1).
	C float64
	// KPrime is the transformed valve conductance k' = k/(c(1-c)) in 1/min.
	KPrime float64
	// Label is an optional human-readable name ("B1", "B2", ...).
	Label string
}

// Validation errors returned by Params.Validate.
var (
	ErrNonPositiveCapacity = errors.New("battery: capacity must be positive")
	ErrFractionOutOfRange  = errors.New("battery: well fraction c must be in (0,1)")
	ErrNonPositiveKPrime   = errors.New("battery: rate constant k' must be positive")
)

// Validate reports whether the parameters describe a physically meaningful
// battery.
func (p Params) Validate() error {
	if !(p.Capacity > 0) {
		return fmt.Errorf("%w (got %v)", ErrNonPositiveCapacity, p.Capacity)
	}
	if !(p.C > 0 && p.C < 1) {
		return fmt.Errorf("%w (got %v)", ErrFractionOutOfRange, p.C)
	}
	if !(p.KPrime > 0) {
		return fmt.Errorf("%w (got %v)", ErrNonPositiveKPrime, p.KPrime)
	}
	return nil
}

// K returns the raw valve conductance k = k' * c * (1-c).
func (p Params) K() float64 { return p.KPrime * p.C * (1 - p.C) }

// String implements fmt.Stringer.
func (p Params) String() string {
	label := p.Label
	if label == "" {
		label = "battery"
	}
	return fmt.Sprintf("%s{C=%g A·min, c=%g, k'=%g 1/min}", label, p.Capacity, p.C, p.KPrime)
}

// WithCapacity returns a copy of p with the capacity replaced. It is used by
// the capacity-scaling experiments of Section 6.
func (p Params) WithCapacity(capacity float64) Params {
	q := p
	q.Capacity = capacity
	return q
}

// Scale returns a copy of p with the capacity multiplied by factor.
func (p Params) Scale(factor float64) Params {
	return p.WithCapacity(p.Capacity * factor)
}

// Paper presets. The c and k' values correspond to the lithium-ion battery of
// the Itsy pocket computer (Jongerden & Haverkort, TR-CTIT-08-01), used for
// both battery types in the paper.
const (
	// ItsyC is the available-charge fraction of the Itsy Li-ion cell.
	ItsyC = 0.166
	// ItsyKPrime is the transformed rate constant of the Itsy cell in 1/min.
	ItsyKPrime = 0.122
)

// B1 returns the 5.5 A·min battery used in Sections 5 and 6.
func B1() Params {
	return Params{Capacity: 5.5, C: ItsyC, KPrime: ItsyKPrime, Label: "B1"}
}

// B2 returns the 11 A·min battery used in Section 5.
func B2() Params {
	return Params{Capacity: 11, C: ItsyC, KPrime: ItsyKPrime, Label: "B2"}
}

// Bank returns n identical copies of p, labelled "<label>#1".."<label>#n".
// Identical multi-battery packs are the configuration studied in Section 6.
func Bank(p Params, n int) []Params {
	bank := make([]Params, n)
	for i := range bank {
		bank[i] = p
		bank[i].Label = fmt.Sprintf("%s#%d", p.Label, i+1)
	}
	return bank
}
