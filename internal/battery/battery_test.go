package battery

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr error
	}{
		{"b1 ok", B1(), nil},
		{"b2 ok", B2(), nil},
		{"zero capacity", Params{Capacity: 0, C: 0.2, KPrime: 0.1}, ErrNonPositiveCapacity},
		{"negative capacity", Params{Capacity: -1, C: 0.2, KPrime: 0.1}, ErrNonPositiveCapacity},
		{"nan capacity", Params{Capacity: math.NaN(), C: 0.2, KPrime: 0.1}, ErrNonPositiveCapacity},
		{"c zero", Params{Capacity: 1, C: 0, KPrime: 0.1}, ErrFractionOutOfRange},
		{"c one", Params{Capacity: 1, C: 1, KPrime: 0.1}, ErrFractionOutOfRange},
		{"c above one", Params{Capacity: 1, C: 1.5, KPrime: 0.1}, ErrFractionOutOfRange},
		{"k zero", Params{Capacity: 1, C: 0.2, KPrime: 0}, ErrNonPositiveKPrime},
		{"k negative", Params{Capacity: 1, C: 0.2, KPrime: -2}, ErrNonPositiveKPrime},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Validate() = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestPresets(t *testing.T) {
	b1, b2 := B1(), B2()
	if b1.Capacity != 5.5 || b2.Capacity != 11 {
		t.Fatalf("capacities %v, %v; want 5.5, 11", b1.Capacity, b2.Capacity)
	}
	for _, b := range []Params{b1, b2} {
		if b.C != ItsyC || b.KPrime != ItsyKPrime {
			t.Fatalf("%s kinetics %v/%v, want Itsy %v/%v", b.Label, b.C, b.KPrime, ItsyC, ItsyKPrime)
		}
	}
	if b1.Label != "B1" || b2.Label != "B2" {
		t.Fatalf("labels %q, %q", b1.Label, b2.Label)
	}
}

func TestK(t *testing.T) {
	p := B1()
	want := p.KPrime * p.C * (1 - p.C)
	if math.Abs(p.K()-want) > 1e-12 {
		t.Fatalf("K() = %v, want %v", p.K(), want)
	}
}

func TestWithCapacityAndScale(t *testing.T) {
	p := B1()
	q := p.WithCapacity(7)
	if q.Capacity != 7 || p.Capacity != 5.5 {
		t.Fatalf("WithCapacity mutated the receiver or failed: %v, %v", q.Capacity, p.Capacity)
	}
	r := p.Scale(10)
	if r.Capacity != 55 {
		t.Fatalf("Scale(10) = %v, want 55", r.Capacity)
	}
	if r.C != p.C || r.KPrime != p.KPrime {
		t.Fatal("Scale changed the kinetics")
	}
}

func TestString(t *testing.T) {
	s := B1().String()
	for _, want := range []string{"B1", "5.5", "0.166", "0.122"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if !strings.Contains((Params{Capacity: 1, C: 0.5, KPrime: 1}).String(), "battery") {
		t.Fatal("unlabeled battery should print a default label")
	}
}

func TestBank(t *testing.T) {
	bank := Bank(B1(), 3)
	if len(bank) != 3 {
		t.Fatalf("Bank(3) has %d entries", len(bank))
	}
	seen := map[string]bool{}
	for _, b := range bank {
		if b.Capacity != 5.5 {
			t.Fatalf("bank battery capacity %v", b.Capacity)
		}
		if seen[b.Label] {
			t.Fatalf("duplicate label %q", b.Label)
		}
		seen[b.Label] = true
	}
}
