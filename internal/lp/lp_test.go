package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p Problem) Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func wantOptimal(t *testing.T, p Problem, z float64) Solution {
	t.Helper()
	s := solveOK(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if math.Abs(s.Z-z) > 1e-6 {
		t.Fatalf("Z = %g, want %g", s.Z, z)
	}
	checkFeasible(t, p, s.X)
	return s
}

// checkFeasible asserts x satisfies p's constraints within tolerance.
func checkFeasible(t *testing.T, p Problem, x []float64) {
	t.Helper()
	for j, v := range x {
		if v < -1e-7 {
			t.Fatalf("x[%d] = %g < 0", j, v)
		}
		if p.U != nil && v > p.U[j]+1e-7 {
			t.Fatalf("x[%d] = %g > upper bound %g", j, v, p.U[j])
		}
	}
	for i, row := range p.A {
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		if s > p.B[i]+1e-6 {
			t.Fatalf("row %d: %g > %g", i, s, p.B[i])
		}
	}
}

func TestKnownOptima(t *testing.T) {
	// Vertices of {x+y<=4, x+3y<=6}: (0,0) (4,0) (0,2) (3,1); max 3x+2y = 12.
	wantOptimal(t, Problem{
		C: []float64{3, 2},
		A: [][]float64{{1, 1}, {1, 3}},
		B: []float64{4, 6},
	}, 12)

	// Upper bound binds before the row does.
	wantOptimal(t, Problem{
		C: []float64{1},
		A: [][]float64{{1}},
		B: []float64{10},
		U: []float64{3},
	}, 3)

	// Degenerate/redundant rows.
	wantOptimal(t, Problem{
		C: []float64{2, 1},
		A: [][]float64{{1, 0}, {1, 0}, {1, 1}},
		B: []float64{2, 2, 3},
	}, 5)

	// Negative rhs (x >= 1 as -x <= -1) exercises phase 1.
	wantOptimal(t, Problem{
		C: []float64{-1},
		A: [][]float64{{-1}, {1}},
		B: []float64{-1, 3},
	}, -1)

	// No rows at all: the box is the feasible region.
	wantOptimal(t, Problem{
		C: []float64{1, 2},
		A: nil,
		B: nil,
		U: []float64{4, 5},
	}, 14)
}

func TestUnbounded(t *testing.T) {
	for _, p := range []Problem{
		{C: []float64{1}, A: nil, B: nil},
		{C: []float64{1}, A: [][]float64{{-1}}, B: []float64{1}},
		{C: []float64{1, 1}, A: [][]float64{{1, -2}}, B: []float64{2}},
	} {
		if s := solveOK(t, p); s.Status != Unbounded {
			t.Fatalf("status = %v, want unbounded for %+v", s.Status, p)
		}
	}
}

func TestInfeasible(t *testing.T) {
	for _, p := range []Problem{
		// x + y >= 5 but both capped at 2.
		{C: []float64{1, 1}, A: [][]float64{{-1, -1}}, B: []float64{-5}, U: []float64{2, 2}},
		// x >= 3 and x <= 1.
		{C: []float64{0}, A: [][]float64{{-1}, {1}}, B: []float64{-3, 1}},
	} {
		if s := solveOK(t, p); s.Status != Infeasible {
			t.Fatalf("status = %v, want infeasible for %+v", s.Status, p)
		}
	}
}

func TestPhase1FeasibleThenOptimal(t *testing.T) {
	// 1 <= x <= 3, 1 <= y, x + y <= 4: maximize x + 2y at (1, 3).
	wantOptimal(t, Problem{
		C: []float64{1, 2},
		A: [][]float64{{-1, 0}, {0, -1}, {1, 1}},
		B: []float64{-1, -1, 4},
		U: []float64{3, math.Inf(1)},
	}, 7)
}

func TestValidation(t *testing.T) {
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}); err == nil {
		t.Fatal("ragged row accepted")
	}
	if _, err := Solve(Problem{C: []float64{1}, A: nil, B: []float64{1}}); err == nil {
		t.Fatal("rhs without row accepted")
	}
	if _, err := Solve(Problem{C: []float64{1}, U: []float64{-1}}); err == nil {
		t.Fatal("negative upper bound accepted")
	}
}

// TestRandomizedAgainstSampling solves random origin-feasible LPs and checks
// that no sampled feasible point beats the reported optimum, and that the
// reported point is feasible. It is a smoke property, not a proof — the exact
// cross-check against an independent combinatorial optimum lives in
// internal/sched's bound differential.
func TestRandomizedAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		p := Problem{
			C: make([]float64, n),
			A: make([][]float64, m),
			B: make([]float64, m),
			U: make([]float64, n),
		}
		for j := 0; j < n; j++ {
			p.C[j] = rng.Float64()*4 - 2
			p.U[j] = rng.Float64() * 5
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64()*2 - 0.5
			}
			p.A[i] = row
			p.B[i] = rng.Float64() * 4 // origin stays feasible
		}
		s := solveOK(t, p)
		if s.Status != Optimal {
			// Nonnegative rhs with box bounds is always feasible and bounded.
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		checkFeasible(t, p, s.X)
		for probe := 0; probe < 100; probe++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * p.U[j]
			}
			// Shrink toward the (feasible) origin until inside.
			for scale := 1.0; scale > 1e-3; scale *= 0.7 {
				feasible := true
				var z float64
				for i, row := range p.A {
					var sum float64
					for j, a := range row {
						sum += a * x[j] * scale
					}
					if sum > p.B[i] {
						feasible = false
						break
					}
				}
				if !feasible {
					continue
				}
				for j := range x {
					z += p.C[j] * x[j] * scale
				}
				if z > s.Z+1e-6 {
					t.Fatalf("trial %d: sampled point beats optimum: %g > %g", trial, z, s.Z)
				}
				break
			}
		}
	}
}
