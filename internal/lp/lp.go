// Package lp implements a small dense bounded-variable simplex solver:
//
//	maximize    c·x
//	subject to  A x <= b
//	            0 <= x_j <= u_j   (u_j may be +Inf)
//
// It exists so the optimal search can state its LP-relaxation bound against a
// real solver (the fast in-search evaluator is proven equal to the simplex on
// the search's relaxation structure, see internal/sched), and as the seed of
// the solver tier the roadmap calls for. The implementation is the textbook
// two-phase primal simplex with upper-bounded variables and Bland's rule, on
// an explicitly maintained basis inverse — O(m^2 + mn) per iteration, which
// is plenty for the problem sizes the repository needs and keeps the code
// free of external dependencies.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status reports how a solve ended.
type Status int

const (
	// Optimal: the returned X attains the maximum Z.
	Optimal Status = iota
	// Infeasible: no x satisfies the constraints.
	Infeasible
	// Unbounded: the objective can grow without limit.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("lp.Status(%d)", int(s))
	}
}

// Problem is an LP in inequality form: maximize C·x subject to A x <= B and
// 0 <= x <= U. U may be nil (all variables unbounded above); individual
// entries may be math.Inf(1).
type Problem struct {
	C []float64
	A [][]float64
	B []float64
	U []float64
}

// Solution is the outcome of Solve. X and Z are meaningful only when Status
// is Optimal.
type Solution struct {
	Status Status
	Z      float64
	X      []float64
}

// ErrCycling is returned when the iteration cap is exceeded; with Bland's
// rule this indicates numerical trouble rather than true cycling.
var ErrCycling = errors.New("lp: iteration limit exceeded")

const eps = 1e-9

// Solve runs the two-phase bounded-variable simplex on p.
func Solve(p Problem) (Solution, error) {
	n := len(p.C)
	m := len(p.A)
	if len(p.B) != m {
		return Solution{}, fmt.Errorf("lp: %d rows but %d right-hand sides", m, len(p.B))
	}
	if p.U != nil && len(p.U) != n {
		return Solution{}, fmt.Errorf("lp: %d variables but %d upper bounds", n, len(p.U))
	}
	for i, row := range p.A {
		if len(row) != n {
			return Solution{}, fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
	}

	// Equality form. Rows with a negative right-hand side are negated (so
	// every rhs is nonnegative) and get an artificial variable; the others
	// get a plain slack. Columns are stored column-major.
	nart := 0
	for _, b := range p.B {
		if b < 0 {
			nart++
		}
	}
	total := n + m + nart
	t := &tableau{
		m: m, n: n, total: total,
		cols:    make([][]float64, total),
		up:      make([]float64, total),
		basis:   make([]int, m),
		inBasis: make([]bool, total),
		atUpper: make([]bool, total),
		xB:      make([]float64, m),
		binv:    make([][]float64, m),
		y:       make([]float64, m),
		w:       make([]float64, m),
	}
	for j := 0; j < n; j++ {
		col := make([]float64, m)
		t.cols[j] = col
		t.up[j] = math.Inf(1)
		if p.U != nil {
			if p.U[j] < 0 {
				return Solution{}, fmt.Errorf("lp: negative upper bound %g on variable %d", p.U[j], j)
			}
			t.up[j] = p.U[j]
		}
	}
	art := n + m
	for i := 0; i < m; i++ {
		sign := 1.0
		if p.B[i] < 0 {
			sign = -1
		}
		for j := 0; j < n; j++ {
			t.cols[j][i] = sign * p.A[i][j]
		}
		slack := make([]float64, m)
		slack[i] = sign
		t.cols[n+i] = slack
		t.up[n+i] = math.Inf(1)
		t.xB[i] = sign * p.B[i]
		t.binv[i] = make([]float64, m)
		t.binv[i][i] = 1
		if sign < 0 {
			acol := make([]float64, m)
			acol[i] = 1
			t.cols[art] = acol
			t.up[art] = math.Inf(1)
			t.basis[i] = art
			t.inBasis[art] = true
			art++
		} else {
			t.basis[i] = n + i
			t.inBasis[n+i] = true
		}
	}

	cost := make([]float64, total)
	if nart > 0 {
		// Phase 1: maximize -(sum of artificials); feasible iff it reaches 0.
		for j := n + m; j < total; j++ {
			cost[j] = -1
		}
		status, err := t.iterate(cost)
		if err != nil {
			return Solution{}, err
		}
		if status != Optimal {
			return Solution{}, errors.New("lp: phase 1 reported unbounded")
		}
		var z1 float64
		for i, bi := range t.basis {
			if bi >= n+m {
				z1 -= t.xB[i]
			}
		}
		if z1 < -eps {
			return Solution{Status: Infeasible}, nil
		}
		// Lock every artificial at zero; ones still (degenerately) basic are
		// harmless with bounds [0, 0].
		for j := n + m; j < total; j++ {
			cost[j] = 0
			t.up[j] = 0
			t.atUpper[j] = false
		}
	}
	copy(cost, p.C)
	for j := n; j < total; j++ {
		cost[j] = 0
	}
	status, err := t.iterate(cost)
	if err != nil {
		return Solution{}, err
	}
	if status != Optimal {
		return Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for j := 0; j < n; j++ {
		if !t.inBasis[j] && t.atUpper[j] {
			x[j] = t.up[j]
		}
	}
	for i, bi := range t.basis {
		if bi < n {
			v := t.xB[i]
			if v < 0 {
				v = 0
			}
			x[bi] = v
		}
	}
	var z float64
	for j := 0; j < n; j++ {
		z += p.C[j] * x[j]
	}
	return Solution{Status: Optimal, Z: z, X: x}, nil
}

// tableau is the simplex working state: a basis, its explicit inverse, the
// basic variable values, and the lower/upper status of every nonbasic.
type tableau struct {
	m, n, total int
	cols        [][]float64 // equality-form columns, column-major
	up          []float64   // upper bounds (lower bounds are all zero)
	basis       []int       // basis[i] = variable basic in row i
	inBasis     []bool
	atUpper     []bool // nonbasic at upper (rather than lower) bound
	xB          []float64
	binv        [][]float64 // explicit basis inverse
	y, w        []float64   // scratch: simplex multipliers, pivot column
}

// iterate runs primal simplex pivots under the given costs until optimality
// or unboundedness. Entering and leaving variables follow Bland's rule
// (lowest index), which prevents cycling.
func (t *tableau) iterate(cost []float64) (Status, error) {
	maxIter := 200 * (t.total + 1)
	for iter := 0; iter < maxIter; iter++ {
		// Simplex multipliers y = cB · B^{-1}.
		for i := 0; i < t.m; i++ {
			t.y[i] = 0
		}
		for k := 0; k < t.m; k++ {
			if cb := cost[t.basis[k]]; cb != 0 {
				row := t.binv[k]
				for i := 0; i < t.m; i++ {
					t.y[i] += cb * row[i]
				}
			}
		}
		// Pricing: first improving nonbasic (Bland). A variable at its lower
		// bound improves by increasing (reduced cost > 0), one at its upper
		// bound by decreasing (reduced cost < 0).
		enter, dir := -1, 1.0
		for j := 0; j < t.total; j++ {
			if t.inBasis[j] {
				continue
			}
			d := cost[j]
			col := t.cols[j]
			for i := 0; i < t.m; i++ {
				d -= t.y[i] * col[i]
			}
			if !t.atUpper[j] && d > eps {
				enter, dir = j, 1
				break
			}
			if t.atUpper[j] && d < -eps {
				enter, dir = j, -1
				break
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		// Pivot column w = B^{-1} · A_enter.
		col := t.cols[enter]
		for i := 0; i < t.m; i++ {
			var s float64
			row := t.binv[i]
			for k := 0; k < t.m; k++ {
				s += row[k] * col[k]
			}
			t.w[i] = s
		}
		// Ratio test: the entering variable moves by step >= 0 from its bound
		// (toward the other bound), each basic moves by -dir*w[i] per unit;
		// the step is capped by the entering variable's own span and by every
		// basic hitting one of its bounds. Ties leave the lowest variable
		// index (Bland).
		step := t.up[enter]
		leave := -1
		for i := 0; i < t.m; i++ {
			delta := -dir * t.w[i]
			var ti float64
			switch {
			case delta < -eps:
				ti = t.xB[i] / -delta
			case delta > eps:
				ub := t.up[t.basis[i]]
				if math.IsInf(ub, 1) {
					continue
				}
				ti = (ub - t.xB[i]) / delta
			default:
				continue
			}
			if ti < 0 {
				ti = 0
			}
			if ti < step-eps || (ti < step+eps && leave >= 0 && t.basis[i] < t.basis[leave]) {
				step, leave = ti, i
			} else if ti < step+eps && leave < 0 && ti <= step {
				step, leave = ti, i
			}
		}
		if math.IsInf(step, 1) {
			return Unbounded, nil
		}
		if leave < 0 {
			// The entering variable swings clear to its other bound: a bound
			// flip, no basis change.
			for i := 0; i < t.m; i++ {
				t.xB[i] -= dir * t.w[i] * step
			}
			t.atUpper[enter] = !t.atUpper[enter]
			continue
		}
		for i := 0; i < t.m; i++ {
			if i != leave {
				t.xB[i] -= dir * t.w[i] * step
			}
		}
		entVal := step
		if dir < 0 {
			entVal = t.up[enter] - step
		}
		left := t.basis[leave]
		t.inBasis[left] = false
		// The leaving variable exits at whichever bound it hit.
		t.atUpper[left] = -dir*t.w[leave] > 0 && !math.IsInf(t.up[left], 1)
		t.basis[leave] = enter
		t.inBasis[enter] = true
		t.atUpper[enter] = false
		t.xB[leave] = entVal
		// Eta update of the explicit inverse.
		piv := t.w[leave]
		prow := t.binv[leave]
		for k := 0; k < t.m; k++ {
			prow[k] /= piv
		}
		for i := 0; i < t.m; i++ {
			if i == leave {
				continue
			}
			if f := t.w[i]; f != 0 {
				row := t.binv[i]
				for k := 0; k < t.m; k++ {
					row[k] -= f * prow[k]
				}
			}
		}
	}
	return Optimal, ErrCycling
}
