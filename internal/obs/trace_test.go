package obs

import (
	"context"
	"strings"
	"testing"
)

func TestStartSpanDisarmed(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "noop")
	if sp != nil {
		t.Fatal("span created without a tracer")
	}
	if ctx2 != ctx {
		t.Fatal("disarmed StartSpan must return the same context")
	}
	// Nil-span methods are all no-ops.
	sp.Set("k", "v").SetInt("n", 1)
	sp.End()
	if sp.TraceHex() != "" || sp.Traceparent() != "" {
		t.Fatal("nil span leaked identity")
	}
}

func TestStartSpanDisarmedDoesNotAllocate(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		_, sp := StartSpan(ctx, "noop")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disarmed StartSpan allocates %v per op, want 0", allocs)
	}
}

func TestSpanParentChildAndRing(t *testing.T) {
	tr := NewTracer(8)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	if root == nil {
		t.Fatal("no root span with an armed tracer")
	}
	_, child := StartSpan(ctx, "child")
	child.Set("cache", "miss").SetInt("cells", 9)
	child.End()
	root.End()
	root.End() // idempotent

	if got := tr.Active(); got != 0 {
		t.Fatalf("Active = %d after all spans ended", got)
	}
	if got := tr.Started(); got != 2 {
		t.Fatalf("Started = %d, want 2", got)
	}
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("ring holds %d spans, want 2", len(spans))
	}
	// Completion order: child first.
	if spans[0].Name != "child" || spans[1].Name != "root" {
		t.Fatalf("ring order %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Trace != spans[1].Trace {
		t.Fatal("child and root on different traces")
	}
	if spans[0].Parent != spans[1].Span {
		t.Fatalf("child parent %q != root span %q", spans[0].Parent, spans[1].Span)
	}
	if spans[1].Parent != "" {
		t.Fatalf("root has parent %q", spans[1].Parent)
	}
	if len(spans[0].Attrs) != 2 || spans[0].Attrs[0].Value != "miss" || spans[0].Attrs[1].Value != "9" {
		t.Fatalf("child attrs = %+v", spans[0].Attrs)
	}
	if spans[0].DurationNs < 0 {
		t.Fatal("negative duration")
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.End()
	}
	if got := len(tr.Snapshot()); got != 4 {
		t.Fatalf("ring holds %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	if tr.Active() != 0 {
		t.Fatal("active spans leaked")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "root")
	hdr := sp.Traceparent()
	sp.End()
	trace, span, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) failed", hdr)
	}
	if trace.String() != sp.TraceHex() || span.String() != sp.IDHex() {
		t.Fatalf("round trip mismatch: %q -> %s %s", hdr, trace, span)
	}
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("unexpected header shape %q", hdr)
	}

	for _, bad := range []string{
		"", "00", "00-abc-def-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff reserved
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span
		"00-4bf92f3577b34da6a3ce929d0e0e473X-00f067aa0ba902b7-01", // bad hex
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestRemoteParentContinuesTrace(t *testing.T) {
	tr := NewTracer(4)
	trace, parent, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("seed header did not parse")
	}
	ctx := WithRemoteParent(WithTracer(context.Background(), tr), trace, parent)
	_, sp := StartSpan(ctx, "continue")
	if sp.TraceHex() != trace.String() {
		t.Fatalf("remote trace not continued: %s", sp.TraceHex())
	}
	sp.End()
	spans := tr.Snapshot()
	if spans[0].Parent != parent.String() {
		t.Fatalf("remote parent not recorded: %q", spans[0].Parent)
	}
}

func TestLinkContinuesTraceAfterSpanEnds(t *testing.T) {
	tr := NewTracer(8)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "submit")
	link := LinkFromContext(ctx)
	root.End()

	// The "worker" context: fresh background context, same trace via the
	// link.
	wctx := link.Context(context.Background())
	_, run := StartSpan(wctx, "job.run")
	if run.TraceHex() != root.TraceHex() {
		t.Fatal("link did not continue the trace")
	}
	run.End()
	if link.Trace() != root.TraceHex() {
		t.Fatalf("Link.Trace = %q", link.Trace())
	}

	// The zero link is inert.
	var none Link
	if none.Trace() != "" {
		t.Fatal("zero link has a trace")
	}
	if none.Context(context.Background()) != context.Background() {
		t.Fatal("zero link modified the context")
	}
}

func TestTracerDumpFilter(t *testing.T) {
	tr := NewTracer(16)
	ctx := WithTracer(context.Background(), tr)
	ctx1, a := StartSpan(ctx, "a")
	_, a2 := StartSpan(ctx1, "a2")
	a2.End()
	a.End()
	_, b := StartSpan(ctx, "b")
	b.End()

	all := tr.Dump("", 0)
	if len(all.Spans) != 3 || all.Active != 0 || all.Started != 3 {
		t.Fatalf("dump = %+v", all)
	}
	one := tr.Dump(a.TraceHex(), 0)
	if len(one.Spans) != 2 {
		t.Fatalf("filtered dump has %d spans, want 2", len(one.Spans))
	}
	lim := tr.Dump("", 1)
	if len(lim.Spans) != 1 || lim.Spans[0].Name != "b" {
		t.Fatalf("limited dump = %+v", lim.Spans)
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("request id lengths %d, %d", len(a), len(b))
	}
	if a == b {
		t.Fatal("request ids collide")
	}
}
