package obs

import (
	"math"
	"testing"
	"time"
)

func TestHistogramBucketsAndSum(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1} // <=1: {0.5, 1}; <=10: {5}; <=100: {50}; +Inf: {500}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-556.5) > 1e-9 {
		t.Fatalf("Sum = %v, want 556.5", h.Sum())
	}
	if m := s.Mean(); math.Abs(m-556.5/5) > 1e-9 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3, 4})
	// 100 observations uniform in (0,4]: 25 per bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 2.0, 0.1},
		{0.95, 3.8, 0.1},
		{0.99, 3.96, 0.1},
		{1.0, 4.0, 1e-9},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%v) = %v, want ~%v", tc.q, got, tc.want)
		}
	}
	// Everything past the last bound clamps to it.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(99)
	if got := h2.Snapshot().Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile = %v, want 2", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestHistogramNilIsNoOp(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram not inert")
	}
	if s := h.Snapshot(); s.Count() != 0 {
		t.Fatal("nil snapshot not empty")
	}
}

func TestHistogramObserveDoesNotAllocate(t *testing.T) {
	h := NewHistogram(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(3.14e-5)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per op, want 0", allocs)
	}
}

func TestDefaultBucketsAscending(t *testing.T) {
	for i := 1; i < len(LatencyBuckets); i++ {
		if LatencyBuckets[i-1] >= LatencyBuckets[i] {
			t.Fatalf("LatencyBuckets not ascending at %d", i)
		}
	}
}
