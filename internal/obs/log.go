package obs

import (
	"context"
	"io"
	"log/slog"
)

// TraceHandler decorates a slog.Handler so that every record logged with a
// context carrying an active span gains trace and span attributes. Records
// logged without a traced context pass through unchanged.
type TraceHandler struct{ slog.Handler }

// Handle stamps the record with the context's trace identity, then
// delegates.
func (h *TraceHandler) Handle(ctx context.Context, rec slog.Record) error {
	if s := SpanFrom(ctx); s != nil {
		rec.AddAttrs(slog.String("trace", s.TraceHex()), slog.String("span", s.IDHex()))
	}
	return h.Handler.Handle(ctx, rec)
}

// WithAttrs keeps the trace decoration on derived handlers.
func (h *TraceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &TraceHandler{Handler: h.Handler.WithAttrs(attrs)}
}

// WithGroup keeps the trace decoration on derived handlers.
func (h *TraceHandler) WithGroup(name string) slog.Handler {
	return &TraceHandler{Handler: h.Handler.WithGroup(name)}
}

// NewLogger builds a text slog.Logger writing to w whose records carry the
// trace id whenever they are logged through a traced context
// (slog.InfoContext and friends).
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(&TraceHandler{Handler: slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})})
}
