package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// LatencyBuckets are the default duration buckets in seconds: roughly
// logarithmic from 100ns (a steady-state session step is a few hundred
// nanoseconds) to 10s (a cold optimal search). 25 buckets keep a histogram
// at ~26 atomic words — cheap enough to arm everywhere a mean exists.
var LatencyBuckets = []float64{
	1e-7, 2.5e-7, 5e-7,
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with atomic counters: Observe is a
// binary search plus two atomic adds — no locks, no allocation — so it can
// sit on hot paths that are pinned to zero allocations per op. Bucket i
// counts observations v <= bounds[i]; an overflow bucket past the last
// bound completes the +Inf cumulative line. The nil Histogram is a valid
// no-op, so instrumented code needs no "is observability wired?" branches.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is the overflow (+Inf) bucket
	sumBits atomic.Uint64   // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given strictly-ascending finite
// bucket upper bounds (nil or empty means LatencyBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	bs := append([]float64(nil), bounds...)
	for i, b := range bs {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: histogram bounds must be finite")
		}
		if i > 0 && bs[i-1] >= b {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value. Nil-safe and allocation-free.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start. Nil-safe.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// HistogramSnapshot is a coherent read of a histogram's buckets.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts the per-bucket (NOT
	// cumulative) observation counts, with Counts[len(Bounds)] the overflow
	// bucket past the last bound.
	Bounds []float64
	Counts []uint64
	// Sum is the sum of observed values.
	Sum float64
}

// Snapshot reads the buckets once. Concurrent Observes may land between
// bucket reads, but cumulative sums computed over the snapshot are always
// internally consistent and monotone.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Bounds: h.bounds, Counts: make([]uint64, len(h.counts)), Sum: h.Sum()}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Count returns the snapshot's total observation count.
func (s HistogramSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Mean returns the snapshot's mean observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return s.Sum / float64(n)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket holding the target rank — the standard bucket-quantile
// estimate. Ranks falling in the overflow bucket clamp to the largest
// bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := s.Count()
	if total == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	lo := 0.0
	for i, b := range s.Bounds {
		c := float64(s.Counts[i])
		if c > 0 && cum+c >= rank {
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lo + (b-lo)*frac
		}
		cum += c
		lo = b
	}
	return s.Bounds[len(s.Bounds)-1]
}
