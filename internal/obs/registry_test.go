package obs

import (
	"bytes"
	"math"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRegistryExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total").Add(3)
	r.Counter("test_labeled_total", L("state", "queued")).Inc()
	r.Counter("test_labeled_total", L("state", "running")).Add(2)
	r.Gauge("test_gauge").Set(-7)
	r.GaugeFunc("test_fn", func() float64 { return 1.5 })
	h := r.Histogram("test_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.Expose(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"# TYPE test_total counter\ntest_total 3\n",
		"test_labeled_total{state=\"queued\"} 1\n",
		"test_labeled_total{state=\"running\"} 2\n",
		"# TYPE test_gauge gauge\ntest_gauge -7\n",
		"test_fn 1.5\n",
		"# TYPE test_seconds histogram\n",
		"test_seconds_bucket{le=\"0.01\"} 1\n",
		"test_seconds_bucket{le=\"0.1\"} 2\n",
		"test_seconds_bucket{le=\"1\"} 2\n",
		"test_seconds_bucket{le=\"+Inf\"} 3\n",
		"test_seconds_count 3\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "test_seconds_sum 5.055") {
		t.Errorf("exposition missing histogram sum:\n%s", got)
	}
}

func TestRegistryGetOrCreateReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", L("x", "1"))
	b := r.Counter("same_total", L("x", "1"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if r.Counter("same_total", L("x", "2")) == a {
		t.Fatal("distinct labels returned the same counter")
	}
	ha := r.Histogram("same_seconds", []float64{1, 2})
	hb := r.Histogram("same_seconds", nil)
	if ha != hb {
		t.Fatal("same histogram name returned distinct histograms")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflicted")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("conflicted")
}

func TestRegistryCollectorRunsFirst(t *testing.T) {
	r := NewRegistry()
	r.Collect(func(e *Exposition) {
		e.Val("legacy_metric", 42)
		e.ValL("legacy_labeled", "state", "ok", 7)
	})
	r.Counter("native_total").Inc()
	var buf bytes.Buffer
	if err := r.Expose(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	legacy := strings.Index(got, "legacy_metric 42\n")
	native := strings.Index(got, "native_total 1\n")
	if legacy < 0 || native < 0 || legacy > native {
		t.Fatalf("collector output must precede native families:\n%s", got)
	}
	if !strings.Contains(got, "legacy_labeled{state=\"ok\"} 7\n") {
		t.Fatalf("labeled collector line missing:\n%s", got)
	}
}

// expositionLine matches one sample line of the text format.
var expositionLine = regexp.MustCompile(`^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})? (-?[0-9].*|\+Inf|NaN)$`)

// checkExposition parses an exposition: every non-comment line must match
// the sample-line shape, every histogram's cumulative buckets must be
// monotone, and every +Inf bucket must equal its _count line. It returns
// the parsed samples keyed by "name{labels}".
func checkExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	type bucketSeries struct {
		cums  []float64
		last  float64
		inf   float64
		seen  bool
		count float64
	}
	buckets := make(map[string]*bucketSeries)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := expositionLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable exposition line %q", line)
		}
		name, labels := m[1], m[2]
		var v float64
		if m[3] == "+Inf" {
			v = math.Inf(1)
		} else {
			var err error
			v, err = strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
		}
		samples[name+labels] = v
		if fam, ok := strings.CutSuffix(name, "_bucket"); ok && strings.Contains(labels, `le="`) {
			key := fam + stripLE(labels)
			bs := buckets[key]
			if bs == nil {
				bs = &bucketSeries{}
				buckets[key] = bs
			}
			if strings.Contains(labels, `le="+Inf"`) {
				bs.inf = v
				bs.seen = true
			} else {
				if v < bs.last {
					t.Fatalf("non-monotone cumulative buckets at %q: %v after %v", line, v, bs.last)
				}
				bs.last = v
				bs.cums = append(bs.cums, v)
			}
		}
		if fam, ok := strings.CutSuffix(name, "_count"); ok {
			if bs := buckets[fam+labels]; bs != nil {
				bs.count = v
			} else {
				buckets[fam+labels] = &bucketSeries{count: v}
			}
		}
	}
	for key, bs := range buckets {
		if !bs.seen {
			continue
		}
		if bs.inf < bs.last {
			t.Fatalf("histogram %s: +Inf bucket %v below last finite bucket %v", key, bs.inf, bs.last)
		}
		if bs.inf != bs.count {
			t.Fatalf("histogram %s: +Inf bucket %v != count %v", key, bs.inf, bs.count)
		}
	}
	return samples
}

// stripLE removes the le label from a rendered label set, keeping the rest
// so bucket lines group with their _count line.
func stripLE(labels string) string {
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	parts := strings.Split(inner, ",")
	kept := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(p, `le="`) {
			kept = append(kept, p)
		}
	}
	if len(kept) == 0 {
		return ""
	}
	return "{" + strings.Join(kept, ",") + "}"
}

// TestRegistryConcurrentScrape is the -race registry hammer: NumCPU
// goroutines pounding counters, gauges, and histograms while the registry
// is scraped concurrently. Every exposition must parse, histogram buckets
// must be cumulative-monotone with +Inf == _count, and a counter's value
// must be monotone across successive scrapes.
func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	var stop atomic.Bool
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hammer_total")
			cl := r.Counter("hammer_labeled_total", L("worker", strconv.Itoa(w%4)))
			g := r.Gauge("hammer_gauge")
			h := r.Histogram("hammer_seconds", nil, L("worker", strconv.Itoa(w%4)))
			for i := 0; i == 0 || !stop.Load(); i++ {
				c.Inc()
				cl.Add(2)
				g.Set(int64(i))
				h.Observe(float64(i%1000) * 1e-6)
			}
		}(w)
	}
	prev := -1.0
	for i := 0; i < 200; i++ {
		var buf bytes.Buffer
		if err := r.Expose(&buf); err != nil {
			t.Fatal(err)
		}
		samples := checkExposition(t, buf.String())
		if v, ok := samples["hammer_total"]; ok {
			if v < prev {
				t.Fatalf("counter went backwards: %v after %v", v, prev)
			}
			prev = v
		}
	}
	stop.Store(true)
	wg.Wait()
	var buf bytes.Buffer
	if err := r.Expose(&buf); err != nil {
		t.Fatal(err)
	}
	samples := checkExposition(t, buf.String())
	if samples["hammer_total"] <= 0 {
		t.Fatal("hammer counter never advanced")
	}
}
