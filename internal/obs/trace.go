package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a W3C trace-context trace id (16 bytes).
type TraceID [16]byte

// IsZero reports the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is a W3C trace-context span id (8 bytes).
type SpanID [8]byte

// IsZero reports the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is one completed span as stored in the ring and dumped by
// /debug/traces.
type SpanRecord struct {
	Trace      string    `json:"trace"`
	Span       string    `json:"span"`
	Parent     string    `json:"parent,omitempty"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationNs int64     `json:"duration_ns"`
	Attrs      []Attr    `json:"attrs,omitempty"`
}

// DefaultRingSize bounds the tracer's completed-span ring when NewTracer is
// given no size.
const DefaultRingSize = 4096

// Tracer owns span identity and the bounded ring of completed spans. Spans
// are recorded only when they End; the ring overwrites oldest-first, so the
// tracer's memory is fixed no matter the request rate. Safe for concurrent
// use.
type Tracer struct {
	mu    sync.Mutex
	ring  []SpanRecord
	next  int
	count int

	started atomic.Uint64
	dropped atomic.Uint64
	active  atomic.Int64

	idBase uint64
	idCtr  atomic.Uint64
}

// NewTracer builds a tracer with a bounded completed-span ring (size <= 0
// means DefaultRingSize).
func NewTracer(size int) *Tracer {
	if size <= 0 {
		size = DefaultRingSize
	}
	t := &Tracer{ring: make([]SpanRecord, size)}
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		t.idBase = binary.LittleEndian.Uint64(b[:])
	} else {
		t.idBase = uint64(time.Now().UnixNano())
	}
	return t
}

// Started counts spans ever started; Dropped counts ring overwrites; Active
// is started minus ended — a steady-state value above zero after traffic
// stops is a span leak.
func (t *Tracer) Started() uint64 { return t.started.Load() }

// Dropped counts completed spans overwritten by newer ones in the ring.
func (t *Tracer) Dropped() uint64 { return t.dropped.Load() }

// Active returns the number of started-but-not-ended spans.
func (t *Tracer) Active() int64 { return t.active.Load() }

// newTraceID draws a fresh random trace id.
func newTraceID() TraceID {
	var id TraceID
	if _, err := rand.Read(id[:]); err != nil || id.IsZero() {
		binary.LittleEndian.PutUint64(id[:], uint64(time.Now().UnixNano()))
		id[15] = 1
	}
	return id
}

// newSpanID derives a process-unique span id from a random base plus a
// counter — no entropy syscall per span.
func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		binary.LittleEndian.PutUint64(id[:], t.idBase+t.idCtr.Add(1))
	}
	return id
}

// start opens a span on this tracer.
func (t *Tracer) start(name string, trace TraceID, parent SpanID) *Span {
	t.started.Add(1)
	t.active.Add(1)
	return &Span{t: t, trace: trace, parent: parent, id: t.newSpanID(), name: name, start: time.Now()}
}

// push appends a completed span to the ring, overwriting the oldest record
// when full.
func (t *Tracer) push(rec SpanRecord) {
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next = (t.next + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	} else {
		t.dropped.Add(1)
	}
	t.mu.Unlock()
}

// Snapshot copies the completed-span ring, oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, t.count)
	start := t.next - t.count
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Span is one in-flight span. The nil Span is a valid no-op — every method
// tolerates it — so call sites stay unconditional whether tracing is armed
// or not.
type Span struct {
	t      *Tracer
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended atomic.Bool
}

// TraceHex returns the span's trace id as hex ("" on a nil span).
func (s *Span) TraceHex() string {
	if s == nil {
		return ""
	}
	return s.trace.String()
}

// IDHex returns the span's own id as hex ("" on a nil span).
func (s *Span) IDHex() string {
	if s == nil {
		return ""
	}
	return s.id.String()
}

// Traceparent renders the span as a W3C traceparent header value ("" on a
// nil span).
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.trace, s.id)
}

// Set annotates the span with a string attribute. Nil-safe; returns the
// span for chaining.
func (s *Span) Set(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
	return s
}

// SetInt annotates the span with an integer attribute. Nil-safe.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	return s.Set(key, strconv.FormatInt(v, 10))
}

// Child opens a child span directly off this span, for call sites that hold
// a span but no context (the sweep worker pool). Nil-safe: a nil parent
// returns a nil (no-op) child.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.start(name, s.trace, s.id)
}

// End completes the span: its duration is fixed and the record lands in the
// tracer's ring. Nil-safe and idempotent.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	d := time.Since(s.start)
	s.mu.Lock()
	attrs := s.attrs
	s.mu.Unlock()
	rec := SpanRecord{
		Trace:      s.trace.String(),
		Span:       s.id.String(),
		Name:       s.name,
		Start:      s.start,
		DurationNs: d.Nanoseconds(),
		Attrs:      attrs,
	}
	if !s.parent.IsZero() {
		rec.Parent = s.parent.String()
	}
	s.t.push(rec)
	s.t.active.Add(-1)
}

// Context plumbing. Three keys: the tracer (arms span creation), the
// current span (parents children), and a remote parent (continues a trace
// started elsewhere — an incoming traceparent header, or a job resuming its
// submit request's trace).
type (
	tracerKey struct{}
	spanKey   struct{}
	remoteKey struct{}
)

type remoteParent struct {
	trace TraceID
	span  SpanID
}

// WithTracer arms span creation on the context.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer (nil when tracing is disarmed).
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// WithRemoteParent records an externally-started trace as the parent for
// the next root span on this context.
func WithRemoteParent(ctx context.Context, trace TraceID, parent SpanID) context.Context {
	if trace.IsZero() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, remoteParent{trace: trace, span: parent})
}

// SpanFrom returns the context's current span (nil when none).
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a span named name: a child of the context's current span
// when one exists, otherwise a root span on the context's tracer
// (continuing a remote parent when one was recorded). With no tracer on the
// context it returns (ctx, nil) — the disarmed fast path is two context
// lookups and no allocation, and the nil span's methods are all no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if parent := SpanFrom(ctx); parent != nil {
		s := parent.t.start(name, parent.trace, parent.id)
		return context.WithValue(ctx, spanKey{}, s), s
	}
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	var trace TraceID
	var parent SpanID
	if rem, ok := ctx.Value(remoteKey{}).(remoteParent); ok {
		trace, parent = rem.trace, rem.span
	}
	if trace.IsZero() {
		trace = newTraceID()
	}
	s := t.start(name, trace, parent)
	return context.WithValue(ctx, spanKey{}, s), s
}

// Link captures a context's trace identity so asynchronous work (a queued
// job) can continue the trace after the originating span has ended.
type Link struct {
	t     *Tracer
	trace TraceID
	span  SpanID
}

// LinkFromContext snapshots the context's current span into a Link; the
// zero Link (disarmed tracing) is valid and inert.
func LinkFromContext(ctx context.Context) Link {
	s := SpanFrom(ctx)
	if s == nil {
		return Link{}
	}
	return Link{t: s.t, trace: s.trace, span: s.id}
}

// Trace returns the linked trace id as hex ("" when disarmed).
func (l Link) Trace() string {
	if l.t == nil {
		return ""
	}
	return l.trace.String()
}

// Context arms ctx with the link's tracer and remote parent, so the next
// StartSpan continues the linked trace.
func (l Link) Context(ctx context.Context) context.Context {
	if l.t == nil {
		return ctx
	}
	return WithRemoteParent(WithTracer(ctx, l.t), l.trace, l.span)
}

// ParseTraceparent parses a W3C traceparent header value
// (version-traceid-spanid-flags). It accepts any non-ff version and
// requires non-zero ids, per spec.
func ParseTraceparent(h string) (TraceID, SpanID, bool) {
	parts := strings.SplitN(strings.TrimSpace(h), "-", 4)
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.DecodeString(parts[0]); err != nil || parts[0] == "ff" {
		return TraceID{}, SpanID{}, false
	}
	var trace TraceID
	var span SpanID
	if _, err := hex.Decode(trace[:], []byte(parts[1])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.Decode(span[:], []byte(parts[2])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if trace.IsZero() || span.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return trace, span, true
}

// FormatTraceparent renders a version-00, sampled traceparent header value.
func FormatTraceparent(trace TraceID, span SpanID) string {
	return "00-" + trace.String() + "-" + span.String() + "-01"
}

// NewRequestID returns a fresh 16-hex-digit request id for X-Request-ID
// headers.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.LittleEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b[:])
}
