package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
)

// TraceDump is the JSON shape /debug/traces serves.
type TraceDump struct {
	// Active is started-minus-ended spans right now (a nonzero value with no
	// traffic in flight is a span leak); Started and Dropped are lifetime
	// counters (Dropped counts ring overwrites).
	Active  int64        `json:"active"`
	Started uint64       `json:"started"`
	Dropped uint64       `json:"dropped"`
	Spans   []SpanRecord `json:"spans"`
}

// Dump snapshots the ring, optionally filtered to one trace id and capped
// to the most recent limit spans (limit <= 0 = all).
func (t *Tracer) Dump(trace string, limit int) TraceDump {
	spans := t.Snapshot()
	if trace != "" {
		kept := spans[:0]
		for _, s := range spans {
			if s.Trace == trace {
				kept = append(kept, s)
			}
		}
		spans = kept
	}
	if limit > 0 && len(spans) > limit {
		spans = spans[len(spans)-limit:]
	}
	if spans == nil {
		spans = []SpanRecord{}
	}
	return TraceDump{
		Active:  t.Active(),
		Started: t.Started(),
		Dropped: t.Dropped(),
		Spans:   spans,
	}
}

// ServeDump is the GET /debug/traces handler: the span ring as JSON, oldest
// first. Query parameters: trace=<hex id> filters to one trace, limit=N
// keeps only the most recent N spans.
func (t *Tracer) ServeDump(w http.ResponseWriter, r *http.Request) {
	limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
	dump := t.Dump(r.URL.Query().Get("trace"), limit)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(dump)
}

// RegisterRuntimeMetrics adds Go runtime gauges (goroutines, heap, GC
// pauses) to the registry as a collector — one ReadMemStats per scrape.
// Opt-in: batserve registers it only when the debug listener is enabled,
// since ReadMemStats briefly stops the world.
func RegisterRuntimeMetrics(r *Registry) {
	r.Collect(func(e *Exposition) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		e.Val("batserve_go_goroutines", int64(runtime.NumGoroutine()))
		e.Val("batserve_go_heap_alloc_bytes", int64(ms.HeapAlloc))
		e.Val("batserve_go_heap_objects", int64(ms.HeapObjects))
		e.Val("batserve_go_gc_cycles_total", int64(ms.NumGC))
		e.Float("batserve_go_gc_pause_total_seconds", float64(ms.PauseTotalNs)/1e9)
	})
}

// DebugMux builds the opt-in debug listener's mux: pprof under
// /debug/pprof/, the span ring under /debug/traces, and the registry's
// exposition under /metrics (handy when the debug port is the only one
// reachable).
func DebugMux(reg *Registry, t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if t != nil {
		mux.HandleFunc("GET /debug/traces", t.ServeDump)
	}
	if reg != nil {
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = reg.Expose(w)
		})
	}
	return mux
}
