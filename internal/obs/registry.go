// Package obs is the dependency-free observability core of the serving
// stack: a typed metrics registry (counters, gauges, fixed-bucket
// histograms) with Prometheus-compatible text exposition, request-scoped
// tracing with a bounded in-memory span ring, and slog helpers that stamp
// the trace id on every record. It uses only the standard library and is
// designed so that disarmed instrumentation — a nil histogram, a context
// without a tracer — costs a nil check and nothing else, keeping the
// zero-allocation hot paths (session steps, sweep cells) intact.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric label pair.
type Label struct{ Key, Value string }

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind discriminates the metric families a registry holds.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// Counter is a monotonically increasing metric. The nil Counter is a valid
// no-op, so call sites can stay unconditional whether or not a registry is
// wired.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous metric. The nil Gauge is a valid no-op.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// series is one labeled instance of a family.
type series struct {
	key string // rendered, sorted label set ("" = unlabeled)
	c   *Counter
	g   *Gauge
	gf  func() float64
	h   *Histogram
}

// family is every series sharing one metric name and type.
type family struct {
	name    string
	typ     kind
	buckets []float64

	mu     sync.Mutex
	series []*series
	byKey  map[string]*series
}

// Registry holds metric families and exposes them in Prometheus text
// format. Registration is get-or-create: asking twice for the same name and
// label set returns the same instrument, so lazily-labeled series (per
// policy, per route) need no external bookkeeping. Safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	fams       []*family
	byName     map[string]*family
	collectors []func(*Exposition)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Collect registers a snapshot collector invoked on every exposition before
// the registry's own families are written. Collectors bridge pre-existing
// counter snapshots (store counters, job metrics) into the exposition
// without re-registering every field individually — one snapshot per
// scrape, byte-compatible lines.
func (r *Registry) Collect(fn func(*Exposition)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// family returns the named family, creating it on first use. A name reused
// with a different type is a programming error and panics.
func (r *Registry) family(name string, k kind, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, typ: k, buckets: buckets, byKey: make(map[string]*series)}
		r.byName[name] = f
		r.fams = append(r.fams, f)
		return f
	}
	if f.typ != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, k))
	}
	return f
}

// get returns the series for the label set, creating instruments on first
// use.
func (f *family) get(labels []Label) *series {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.byKey[key]
	if s == nil {
		s = &series{key: key}
		switch f.typ {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = NewHistogram(f.buckets)
		}
		f.byKey[key] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter returns the counter for name and labels, registering it on first
// use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.family(name, kindCounter, nil).get(labels).c
}

// Gauge returns the gauge for name and labels, registering it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.family(name, kindGauge, nil).get(labels).g
}

// GaugeFunc registers a gauge whose value is sampled by fn at exposition
// time.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	s := r.family(name, kindGaugeFunc, nil).get(labels)
	s.gf = fn
}

// Histogram returns the fixed-bucket histogram for name and labels,
// registering it on first use. The bucket bounds are taken from the first
// registration of the family; later calls may pass nil.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	return r.family(name, kindHistogram, buckets).get(labels).h
}

// labelKey renders a sorted, quoted label set ('policy="efq",x="y"').
func labelKey(labels []Label) string {
	switch len(labels) {
	case 0:
		return ""
	case 1:
		return labels[0].Key + "=" + strconv.Quote(labels[0].Value)
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}

// Exposition is the line writer handed to collectors and used for the
// registry's own families. Its methods keep the Prometheus text line format
// in one place; after a write error it degrades to a no-op and the error
// surfaces from Expose.
type Exposition struct {
	w   io.Writer
	err error
}

func (e *Exposition) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Val writes an unlabeled integer sample line.
func (e *Exposition) Val(name string, v int64) { e.printf("%s %d\n", name, v) }

// ValL writes a sample line with one label pair, quoted like %q.
func (e *Exposition) ValL(name, labelKey, labelValue string, v int64) {
	e.printf("%s{%s=%q} %d\n", name, labelKey, labelValue, v)
}

// Float writes an unlabeled float sample line.
func (e *Exposition) Float(name string, v float64) { e.printf("%s %s\n", name, formatFloat(v)) }

// line writes one sample with a pre-rendered label set.
func (e *Exposition) line(name, key, val string) {
	if key == "" {
		e.printf("%s %s\n", name, val)
		return
	}
	e.printf("%s{%s} %s\n", name, key, val)
}

// bucket writes one cumulative histogram bucket line.
func (e *Exposition) bucket(name, key, le string, v uint64) {
	if key == "" {
		e.printf("%s_bucket{le=%q} %d\n", name, le, v)
		return
	}
	e.printf("%s_bucket{%s,le=%q} %d\n", name, key, le, v)
}

// formatFloat renders a float sample value ('g' so bounds read naturally:
// 0.005, 2.5e-06, +Inf).
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Expose writes the full exposition: every collector in registration order,
// then every family in registration order (series sorted by label set).
// Instrument values are read atomically, and histogram bucket lines are
// cumulative sums over one coherent snapshot, so a concurrently-scraped
// exposition always parses and its buckets are always monotone.
func (r *Registry) Expose(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<14)
	e := &Exposition{w: bw}
	r.mu.Lock()
	collectors := append([]func(*Exposition){}, r.collectors...)
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, c := range collectors {
		c(e)
	}
	for _, f := range fams {
		f.expose(e)
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

func (f *family) expose(e *Exposition) {
	f.mu.Lock()
	series := append([]*series(nil), f.series...)
	f.mu.Unlock()
	if len(series) == 0 {
		return
	}
	sort.Slice(series, func(i, j int) bool { return series[i].key < series[j].key })
	e.printf("# TYPE %s %s\n", f.name, f.typ)
	for _, s := range series {
		switch f.typ {
		case kindCounter:
			e.line(f.name, s.key, strconv.FormatUint(s.c.Value(), 10))
		case kindGauge:
			e.line(f.name, s.key, strconv.FormatInt(s.g.Value(), 10))
		case kindGaugeFunc:
			e.line(f.name, s.key, formatFloat(s.gf()))
		case kindHistogram:
			snap := s.h.Snapshot()
			var cum uint64
			for i, b := range snap.Bounds {
				cum += snap.Counts[i]
				e.bucket(f.name, s.key, formatFloat(b), cum)
			}
			cum += snap.Counts[len(snap.Bounds)]
			e.bucket(f.name, s.key, "+Inf", cum)
			e.line(f.name+"_sum", s.key, formatFloat(snap.Sum))
			e.line(f.name+"_count", s.key, strconv.FormatUint(cum, 10))
		}
	}
}
