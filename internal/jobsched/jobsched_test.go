package jobsched

import (
	"errors"
	"math"
	"testing"

	"batsched/internal/battery"
	"batsched/internal/kibam"
)

func job500(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Duration: 1, Current: 0.5}
	}
	return jobs
}

func TestOptimizeValidation(t *testing.T) {
	if _, err := Optimize(battery.B1(), nil, Options{}); !errors.Is(err, ErrNoJobs) {
		t.Fatalf("no jobs: %v", err)
	}
	bad := []Job{{Duration: 0.005, Current: 0.25}} // off-grid duration
	if _, err := Optimize(battery.B1(), bad, Options{}); !errors.Is(err, ErrBadJob) {
		t.Fatalf("off-grid job: %v", err)
	}
	if _, err := Optimize(battery.Params{Capacity: -1, C: 0.5, KPrime: 1}, job500(1), Options{}); err == nil {
		t.Fatal("accepted invalid battery")
	}
}

// TestTrivialWorkloadNeedsNoGaps: a light workload is scheduled eagerly.
func TestTrivialWorkloadNeedsNoGaps(t *testing.T) {
	jobs := []Job{{Duration: 1, Current: 0.25}, {Duration: 1, Current: 0.25}}
	plan, err := Optimize(battery.B1(), jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("light workload infeasible")
	}
	if plan.Makespan != 2 {
		t.Fatalf("makespan %v, want 2 (no gaps)", plan.Makespan)
	}
	for i, g := range plan.Gaps {
		if g != 0 {
			t.Fatalf("gap %d = %v, want 0", i, g)
		}
	}
}

// TestRecoveryMakesBurstFeasible: five 500 mA minutes kill B1 back-to-back
// (CL 500 dies at 2.04) but complete with gaps; the gaps escalate because
// the total charge shrinks.
func TestRecoveryMakesBurstFeasible(t *testing.T) {
	plan, err := Optimize(battery.B1(), job500(5), Options{GapQuantum: 0.5, MaxGap: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("burst infeasible even with gaps")
	}
	if plan.Makespan <= 5 {
		t.Fatalf("makespan %v implies no gaps were needed", plan.Makespan)
	}
	// Later gaps are no shorter than earlier ones (less charge -> more
	// recovery needed). Allow equality.
	for i := 2; i < len(plan.Gaps); i++ {
		if plan.Gaps[i] < plan.Gaps[i-1]-1e-9 {
			t.Errorf("gap %d (%v) shorter than gap %d (%v)", i, plan.Gaps[i], i-1, plan.Gaps[i-1])
		}
	}
	// Starts are consistent with gaps and durations.
	elapsed := 0.0
	for i := range plan.Gaps {
		elapsed += plan.Gaps[i]
		if math.Abs(plan.Starts[i]-elapsed) > 1e-9 {
			t.Fatalf("start %d = %v, want %v", i, plan.Starts[i], elapsed)
		}
		elapsed += 1
	}
	if math.Abs(plan.Makespan-elapsed) > 1e-9 {
		t.Fatalf("makespan %v, want %v", plan.Makespan, elapsed)
	}
}

// TestPlanSurvivesContinuousModel: the discrete plan also keeps the
// continuous KiBaM alive (cross-model validation).
func TestPlanSurvivesContinuousModel(t *testing.T) {
	jobs := job500(4)
	plan, err := Optimize(battery.B1(), jobs, Options{GapQuantum: 0.5, MaxGap: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("infeasible")
	}
	l, err := plan.Load("plan", jobs)
	if err != nil {
		t.Fatal(err)
	}
	m := kibam.MustNew(battery.B1())
	// Lifetime must error with ErrLoadExhausted: the battery outlives the
	// whole plan.
	if _, err := m.Lifetime(l); !errors.Is(err, kibam.ErrLoadExhausted) {
		t.Fatalf("continuous model died during the plan: %v", err)
	}
}

// TestFeasibilityBoundary: a fully recovered battery still needs
// gamma >= (1-c)/c * y1-equivalent ~ 2.37 A·min behind the empty condition
// after a 1-min 500 mA job, so B1 (5.5 A·min) can serve six such jobs
// (3.0 drawn, 2.5 left) but never seven (2.0 left).
func TestFeasibilityBoundary(t *testing.T) {
	six, err := Optimize(battery.B1(), job500(6), Options{GapQuantum: 1, MaxGap: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !six.Feasible {
		t.Fatal("six high jobs should be (marginally) feasible")
	}
	seven, err := Optimize(battery.B1(), job500(7), Options{GapQuantum: 1, MaxGap: 40})
	if err != nil {
		t.Fatal(err)
	}
	if seven.Feasible {
		t.Fatalf("seven high jobs reported feasible (makespan %v)", seven.Makespan)
	}
}

// TestDeadline: a deadline below the minimal makespan flips feasibility.
func TestDeadline(t *testing.T) {
	free, err := Optimize(battery.B1(), job500(4), Options{GapQuantum: 0.5, MaxGap: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !free.Feasible {
		t.Fatal("unbounded plan infeasible")
	}
	tight, err := Optimize(battery.B1(), job500(4), Options{
		GapQuantum: 0.5, MaxGap: 16,
		Deadline: free.Makespan - 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Feasible {
		t.Fatal("deadline below the optimum reported feasible")
	}
	loose, err := Optimize(battery.B1(), job500(4), Options{
		GapQuantum: 0.5, MaxGap: 16,
		Deadline: free.Makespan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Feasible || loose.Makespan != free.Makespan {
		t.Fatal("deadline at the optimum changed the plan")
	}
}

// TestFinerQuantumNeverWorse: halving the gap quantum can only improve (or
// keep) the makespan, since coarse plans remain expressible.
func TestFinerQuantumNeverWorse(t *testing.T) {
	coarse, err := Optimize(battery.B1(), job500(4), Options{GapQuantum: 2, MaxGap: 16})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Optimize(battery.B1(), job500(4), Options{GapQuantum: 1, MaxGap: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !coarse.Feasible || !fine.Feasible {
		t.Fatal("expected both feasible")
	}
	if fine.Makespan > coarse.Makespan+1e-9 {
		t.Fatalf("finer quantum worse: %v > %v", fine.Makespan, coarse.Makespan)
	}
}

// TestMixedJobs: currents may differ per job.
func TestMixedJobs(t *testing.T) {
	jobs := []Job{
		{Duration: 1, Current: 0.5},
		{Duration: 1, Current: 0.25},
		{Duration: 1, Current: 0.5},
		{Duration: 2, Current: 0.25},
	}
	plan, err := Optimize(battery.B1(), jobs, Options{GapQuantum: 0.5, MaxGap: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("mixed workload infeasible")
	}
	l, err := plan.Load("mixed", jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Total demanded charge is preserved by the plan rendering.
	want := 0.5 + 0.25 + 0.5 + 0.5
	if got := l.Charge(l.TotalDuration()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("plan load charge %v, want %v", got, want)
	}
}

func TestPlanLoadInfeasible(t *testing.T) {
	p := Plan{Feasible: false}
	if _, err := p.Load("x", job500(1)); err == nil {
		t.Fatal("rendered an infeasible plan")
	}
}
