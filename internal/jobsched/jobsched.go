// Package jobsched implements the second optimisation problem sketched in
// the outlook of the DSN 2009 battery-scheduling paper (Section 7): for a
// device with one battery and a given workload, schedule the jobs over time
// so that the battery survives the whole workload — useful for sensor-
// network nodes with simple regular workloads.
//
// Jobs run in a fixed order; the scheduler chooses the idle gap inserted
// before each job (quantised to keep the search finite). Idle time lets the
// bound charge flow back into the available well (the recovery effect), so
// a workload that kills the battery when run back-to-back can become
// feasible. Among the feasible schedules the search minimises the makespan.
//
// The search is a level-by-level dynamic program over the discretized
// battery state. Because every schedule at job level i has drawn the same
// number of charge units, states at a level differ only in the height
// difference M, the recovery-clock phase, and the elapsed time; a state
// dominates another when it is no worse in all three (lower M is always at
// least as good: the empty margin is larger and the cumulative recovery
// time to any lower level is smaller). Dominated states are pruned, which
// keeps each level's Pareto frontier small and the search exact.
package jobsched

import (
	"errors"
	"fmt"

	"batsched/internal/battery"
	"batsched/internal/dkibam"
	"batsched/internal/load"
)

// Job is one task: Duration minutes at Current amperes.
type Job struct {
	Duration float64
	Current  float64
}

// Options tune the schedule search.
type Options struct {
	// StepMin and UnitAmpMin set the discretization grid (default: the
	// paper's T = 0.01 min, Gamma = 0.01 A·min).
	StepMin    float64
	UnitAmpMin float64
	// GapQuantum is the granularity of inserted idle gaps in minutes
	// (default 0.5).
	GapQuantum float64
	// MaxGap is the largest idle gap tried before one job, in minutes
	// (default 15).
	MaxGap float64
	// Deadline, when positive, bounds the makespan in minutes.
	Deadline float64
}

func (o *Options) fill() {
	if o.StepMin <= 0 {
		o.StepMin = dkibam.PaperStepMin
	}
	if o.UnitAmpMin <= 0 {
		o.UnitAmpMin = dkibam.PaperUnitAmpMin
	}
	if o.GapQuantum <= 0 {
		o.GapQuantum = 0.5
	}
	if o.MaxGap <= 0 {
		o.MaxGap = 15
	}
}

// Plan is the outcome of the search.
type Plan struct {
	// Feasible reports whether some schedule completes all jobs.
	Feasible bool
	// Gaps[i] is the idle time, in minutes, inserted before job i.
	Gaps []float64
	// Starts[i] is the start time of job i in minutes.
	Starts []float64
	// Makespan is the completion time of the last job in minutes.
	Makespan float64
	// FinalAvailable is the available charge left after the last job, in
	// A·min.
	FinalAvailable float64
	// FrontierStates counts the Pareto states kept across all levels
	// (search effort).
	FrontierStates int
}

// Load renders the plan as a load (gaps and jobs interleaved), suitable for
// simulation or plotting. Zero-length gaps are omitted.
func (p Plan) Load(name string, jobs []Job) (load.Load, error) {
	if !p.Feasible {
		return load.Load{}, errors.New("jobsched: plan is infeasible")
	}
	var segs []load.Segment
	for i, j := range jobs {
		if p.Gaps[i] > 0 {
			segs = append(segs, load.Segment{Duration: p.Gaps[i], Current: 0})
		}
		segs = append(segs, load.Segment{Duration: j.Duration, Current: j.Current})
	}
	return load.New(name, segs...)
}

// Search errors.
var (
	ErrNoJobs = errors.New("jobsched: no jobs")
	ErrBadJob = errors.New("jobsched: job does not discretize")
)

// jobSpec is a compiled job: length in steps, draw cadence.
type jobSpec struct {
	steps    int
	curTimes int
	cur      int
}

// node is one Pareto state at a job level.
type node struct {
	cell    dkibam.Cell
	elapsed int // steps since schedule start
	parent  int // index into the previous level's frontier
	gap     int // gap quanta inserted before the job that produced this node
}

// Optimize finds the minimum-makespan feasible schedule for the jobs on the
// battery, or reports infeasibility (Plan.Feasible == false) when no gap
// assignment within the options lets the battery survive.
func Optimize(b battery.Params, jobs []Job, opts Options) (Plan, error) {
	opts.fill()
	if len(jobs) == 0 {
		return Plan{}, ErrNoJobs
	}
	d, err := dkibam.Discretize(b, opts.StepMin, opts.UnitAmpMin)
	if err != nil {
		return Plan{}, err
	}
	specs, err := compileJobs(jobs, opts)
	if err != nil {
		return Plan{}, err
	}
	gapSteps := int(opts.GapQuantum/opts.StepMin + 0.5)
	maxGaps := int(opts.MaxGap/opts.GapQuantum + 0.5)
	var deadlineSteps int
	if opts.Deadline > 0 {
		deadlineSteps = int(opts.Deadline/opts.StepMin + 0.5)
	}

	frontier := []node{{cell: dkibam.FullCell(d), parent: -1}}
	levels := make([][]node, 0, len(jobs)+1)
	levels = append(levels, frontier)
	total := len(frontier)

	for _, spec := range specs {
		var next []node
		for pi, n := range frontier {
			work := n.cell
			work.CDisch = 0
			for g := 0; g <= maxGaps; g++ {
				if g > 0 {
					idle(d, &work, gapSteps)
				}
				elapsed := n.elapsed + g*gapSteps + spec.steps
				if deadlineSteps > 0 && elapsed > deadlineSteps {
					break
				}
				trial := work
				if !runJob(d, &trial, spec) {
					continue
				}
				trial.CDisch = 0
				next = insertPareto(next, node{cell: trial, elapsed: elapsed, parent: pi, gap: g})
			}
		}
		if len(next) == 0 {
			return Plan{Feasible: false, FrontierStates: total}, nil
		}
		frontier = next
		levels = append(levels, frontier)
		total += len(frontier)
	}

	// The minimum elapsed time on the final level is the makespan.
	bestIdx := 0
	for i, n := range frontier {
		if n.elapsed < frontier[bestIdx].elapsed {
			bestIdx = i
		}
	}
	plan := Plan{
		Feasible:       true,
		Gaps:           make([]float64, len(jobs)),
		Starts:         make([]float64, len(jobs)),
		Makespan:       float64(frontier[bestIdx].elapsed) * opts.StepMin,
		FinalAvailable: d.AvailableAmpMin(frontier[bestIdx].cell),
		FrontierStates: total,
	}
	// Walk the parent chain to recover the gaps, then derive the starts.
	idx := bestIdx
	for level := len(jobs); level >= 1; level-- {
		n := levels[level][idx]
		plan.Gaps[level-1] = float64(n.gap*gapSteps) * opts.StepMin
		idx = n.parent
	}
	elapsed := 0.0
	for i, spec := range specs {
		elapsed += plan.Gaps[i]
		plan.Starts[i] = elapsed
		elapsed += float64(spec.steps) * opts.StepMin
	}
	return plan, nil
}

// compileJobs derives each job's draw cadence via the load compiler.
func compileJobs(jobs []Job, opts Options) ([]jobSpec, error) {
	segs := make([]load.Segment, len(jobs))
	for i, j := range jobs {
		segs[i] = load.Segment{Duration: j.Duration, Current: j.Current}
	}
	l, err := load.New("jobs", segs...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadJob, err)
	}
	cl, err := load.Compile(l, opts.StepMin, opts.UnitAmpMin)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadJob, err)
	}
	specs := make([]jobSpec, len(jobs))
	for i := range jobs {
		specs[i] = jobSpec{
			steps:    cl.LoadTime[i] - cl.EpochStart(i),
			curTimes: cl.CurTimes[i],
			cur:      cl.Cur[i],
		}
	}
	return specs, nil
}

// idle advances the cell by steps of recovery.
func idle(d *dkibam.Discretization, c *dkibam.Cell, steps int) {
	for i := 0; i < steps; i++ {
		c.AdvanceRecoveryClock()
		d.ApplyRecovery(c)
	}
}

// runJob simulates one job on the cell; false when the battery empties.
// The event order per step matches internal/dkibam.System.
func runJob(d *dkibam.Discretization, c *dkibam.Cell, spec jobSpec) bool {
	c.CDisch = 0
	for t := 1; t <= spec.steps; t++ {
		c.AdvanceRecoveryClock()
		c.CDisch++
		drew := false
		if c.CDisch >= spec.curTimes {
			d.Draw(c, spec.cur)
			drew = true
		}
		d.ApplyRecovery(c)
		if drew && d.IsEmptyCondition(*c) {
			return false
		}
	}
	return true
}

// dominates reports whether a is at least as good as b in every respect:
// no higher height difference, no less recovery progress at equal height,
// and no more elapsed time. N is equal by construction at a level.
func dominates(a, b node) bool {
	if a.elapsed > b.elapsed {
		return false
	}
	if a.cell.M < b.cell.M {
		return true
	}
	return a.cell.M == b.cell.M && a.cell.CRecov >= b.cell.CRecov
}

// insertPareto adds n to the frontier unless dominated, evicting states n
// dominates.
func insertPareto(frontier []node, n node) []node {
	for _, f := range frontier {
		if dominates(f, n) {
			return frontier
		}
	}
	out := frontier[:0]
	for _, f := range frontier {
		if !dominates(n, f) {
			out = append(out, f)
		}
	}
	return append(out, n)
}
