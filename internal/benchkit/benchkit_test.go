package benchkit

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"batsched/internal/sched"
)

// TestMeasure: the self-contained loop reports sane per-op numbers.
func TestMeasure(t *testing.T) {
	calls := 0
	m, err := measure(10*time.Millisecond, func() error {
		calls++
		time.Sleep(200 * time.Microsecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Iterations < 1 || calls < int(m.Iterations) {
		t.Fatalf("iterations %d, calls %d", m.Iterations, calls)
	}
	if m.NsPerOp < int64(150*time.Microsecond) {
		t.Fatalf("ns/op %d implausibly small for a 200µs body", m.NsPerOp)
	}
}

// TestHarnessPolicyCases runs the cheap policy slice of the pinned grid with
// a tiny benchtime and checks the report shape round-trips through JSON.
func TestHarnessPolicyCases(t *testing.T) {
	rep, err := Run(Options{BenchTime: time.Millisecond, Match: "policy-lifetime/", SkipBaselines: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("policy-lifetime cases: %d, want 2", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.LifetimeMin <= 0 {
			t.Errorf("%s: implausible result %+v", r.Name, r)
		}
		if r.Stats != nil || r.Baseline != nil {
			t.Errorf("%s: policy case carries search fields", r.Name)
		}
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || len(back.Results) != len(rep.Results) {
		t.Fatalf("round trip mangled the report: %+v", back)
	}
}

// TestHarnessOptimalCase: the optimal case carries search stats, and with
// baselines on records the reference-search ratios.
func TestHarnessOptimalCase(t *testing.T) {
	rep, err := Run(Options{BenchTime: time.Millisecond, Match: "optimal/2xB1/ILs alt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("matched %d cases, want 1", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Stats == nil || r.Stats.States == 0 {
		t.Fatalf("no search stats: %+v", r)
	}
	if r.Baseline == nil || r.Baseline.States == 0 || r.Baseline.StatesRatio < 1 {
		t.Fatalf("no baseline comparison: %+v", r.Baseline)
	}
	if r.LifetimeMin != 16.90 {
		t.Fatalf("optimal 2xB1/ILs alt lifetime %v, want 16.90 (Table 5)", r.LifetimeMin)
	}
}

// TestCompareGate: regressions beyond the ratio are flagged for gated
// prefixes only (sweep/ included since the zero-allocation pipeline), and
// missing cases are tolerated.
func TestCompareGate(t *testing.T) {
	base := Report{Results: []Result{
		{Name: "optimal/x", Measurement: Measurement{NsPerOp: 100}},
		{Name: "policy-lifetime/y", Measurement: Measurement{NsPerOp: 100}},
		{Name: "sweep/z", Measurement: Measurement{NsPerOp: 100}},
		{Name: "jobs/w", Measurement: Measurement{NsPerOp: 100}},
	}}
	current := Report{Results: []Result{
		{Name: "optimal/x", Measurement: Measurement{NsPerOp: 150}},
		{Name: "policy-lifetime/y", Measurement: Measurement{NsPerOp: 250}},
		{Name: "sweep/z", Measurement: Measurement{NsPerOp: 900}},
		{Name: "jobs/w", Measurement: Measurement{NsPerOp: 900}},    // ungated
		{Name: "optimal/new", Measurement: Measurement{NsPerOp: 5}}, // not in base
	}}
	regs := Compare(base, current, 2.0)
	if len(regs) != 2 || regs[0].Name != "policy-lifetime/y" || regs[0].Kind != "ns/op" ||
		regs[1].Name != "sweep/z" || regs[1].Kind != "ns/op" {
		t.Fatalf("regressions %v, want policy-lifetime/y and sweep/z (ns/op)", regs)
	}
	if regs[0].Ratio != 2.5 {
		t.Fatalf("ratio %v, want 2.5", regs[0].Ratio)
	}
}

// TestCompareAllocGate: allocation counts are gated on the same prefixes —
// by ratio when the baseline allocates, and with an absolute slack when the
// baseline is (near) zero, so the zero-allocation cases must stay that way.
func TestCompareAllocGate(t *testing.T) {
	base := Report{Results: []Result{
		{Name: "sweep/hot", Measurement: Measurement{NsPerOp: 100, AllocsPerOp: 100}},
		{Name: "policy-lifetime/zero", Measurement: Measurement{NsPerOp: 100, AllocsPerOp: 0}},
		{Name: "jobs/w", Measurement: Measurement{NsPerOp: 100, AllocsPerOp: 100}},
	}}
	current := Report{Results: []Result{
		{Name: "sweep/hot", Measurement: Measurement{NsPerOp: 100, AllocsPerOp: 300}},
		{Name: "policy-lifetime/zero", Measurement: Measurement{NsPerOp: 100, AllocsPerOp: allocSlack + 1}},
		{Name: "jobs/w", Measurement: Measurement{NsPerOp: 100, AllocsPerOp: 900}}, // ungated
	}}
	regs := Compare(base, current, 2.0)
	if len(regs) != 2 {
		t.Fatalf("regressions %v, want sweep/hot and policy-lifetime/zero (allocs/op)", regs)
	}
	for _, r := range regs {
		if r.Kind != "allocs/op" {
			t.Fatalf("regression kind %q, want allocs/op: %v", r.Kind, r)
		}
	}
	// Within slack: a zero-alloc case picking up a couple of stray
	// allocations is noise, not a regression.
	current.Results[0].AllocsPerOp = 150
	current.Results[1].AllocsPerOp = allocSlack
	current.Results[2].AllocsPerOp = 100
	if regs := Compare(base, current, 2.0); len(regs) != 0 {
		t.Fatalf("within-slack drift flagged: %v", regs)
	}
}

// TestCompareCalibration: a uniformly slower machine (calibration case and
// workload both 3x slower) is excused by the calibration scale, while a
// genuine slowdown on a same-speed machine is still flagged, and a faster
// machine never tightens the gate.
func TestCompareCalibration(t *testing.T) {
	base := Report{Results: []Result{
		{Name: CalibrationCase, Measurement: Measurement{NsPerOp: 1000}},
		{Name: "optimal/x", Measurement: Measurement{NsPerOp: 100}},
	}}
	slowMachine := Report{Results: []Result{
		{Name: CalibrationCase, Measurement: Measurement{NsPerOp: 3000}},
		{Name: "optimal/x", Measurement: Measurement{NsPerOp: 300}},
	}}
	if regs := Compare(base, slowMachine, 2.0); len(regs) != 0 {
		t.Fatalf("uniform 3x machine slowdown flagged as regression: %v", regs)
	}
	realRegression := Report{Results: []Result{
		{Name: CalibrationCase, Measurement: Measurement{NsPerOp: 1000}},
		{Name: "optimal/x", Measurement: Measurement{NsPerOp: 300}},
	}}
	if regs := Compare(base, realRegression, 2.0); len(regs) != 1 {
		t.Fatalf("same-speed machine 3x slowdown not flagged: %v", regs)
	}
	fastMachine := Report{Results: []Result{
		{Name: CalibrationCase, Measurement: Measurement{NsPerOp: 200}},
		{Name: "optimal/x", Measurement: Measurement{NsPerOp: 150}},
	}}
	if regs := Compare(base, fastMachine, 2.0); len(regs) != 0 {
		t.Fatalf("faster machine tightened the gate: %v", regs)
	}
}

// TestCompareStatesGate: explored-state blowups are flagged even when wall
// clock looks fine — the machine-independent half of the gate.
func TestCompareStatesGate(t *testing.T) {
	st := func(states int64) *sched.SearchStats { return &sched.SearchStats{States: states} }
	base := Report{Results: []Result{
		{Name: "optimal/x", Measurement: Measurement{NsPerOp: 100}, Stats: st(1000)},
	}}
	current := Report{Results: []Result{
		{Name: "optimal/x", Measurement: Measurement{NsPerOp: 90}, Stats: st(5000)},
	}}
	regs := Compare(base, current, 2.0)
	if len(regs) != 1 || regs[0].Kind != "states" || regs[0].Ratio != 5.0 {
		t.Fatalf("regressions %v, want one states regression at 5.0x", regs)
	}

	// optimal-par/* is exempt: explored states are nondeterministic under
	// work stealing, so a blowup there is not a regression signal.
	base.Results = append(base.Results, Result{Name: "optimal-par/4w/x", Measurement: Measurement{NsPerOp: 100}, Stats: st(1000)})
	current.Results = []Result{
		{Name: "optimal/x", Measurement: Measurement{NsPerOp: 90}, Stats: st(1000)},
		{Name: "optimal-par/4w/x", Measurement: Measurement{NsPerOp: 90}, Stats: st(9000)},
	}
	if regs := Compare(base, current, 2.0); len(regs) != 0 {
		t.Fatalf("parallel states blowup flagged: %v", regs)
	}
}

// TestCheckSpeedups: the parallel-speedup floor fires only on optimal-par
// cases, and only when the measuring machine has enough CPUs to express the
// case's parallelism.
func TestCheckSpeedups(t *testing.T) {
	rep := Report{NumCPU: 4, Results: []Result{
		{Name: "optimal-par/4w/slow", Workers: 4, Baseline: &Baseline{SpeedupX: 1.2}},
		{Name: "optimal-par/4w/fine", Workers: 4, Baseline: &Baseline{SpeedupX: 3.1}},
		{Name: "optimal/serial", Baseline: &Baseline{SpeedupX: 0.5}}, // reference ratio, not a parallel speedup
	}}
	bad := CheckSpeedups(rep, MinParallelSpeedup)
	if len(bad) != 1 || !strings.Contains(bad[0], "optimal-par/4w/slow") {
		t.Fatalf("speedup failures %v, want exactly optimal-par/4w/slow", bad)
	}
	// A single-CPU machine cannot measure parallel speedup; the floor must
	// not fire there.
	rep.NumCPU = 1
	if bad := CheckSpeedups(rep, MinParallelSpeedup); len(bad) != 0 {
		t.Fatalf("speedup floor fired on a single-CPU report: %v", bad)
	}
}

// TestSessionStepCaseIsAllocationFree runs the session case long enough to
// reach steady state (thousands of steps, several pool-recycled sessions)
// and holds the acceptance gate directly: zero allocations per step.
func TestSessionStepCaseIsAllocationFree(t *testing.T) {
	rep, err := Run(Options{BenchTime: 100 * time.Millisecond, Match: "session/"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("session cases: %d, want 1", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "session/step/2xB1/sequential" {
		t.Fatalf("case name %q", r.Name)
	}
	if r.Iterations < 1000 {
		t.Fatalf("only %d steps measured; not steady state", r.Iterations)
	}
	if r.AllocsPerOp != 0 {
		t.Fatalf("session step allocates: %d allocs/op (%d B/op)", r.AllocsPerOp, r.BytesPerOp)
	}
	if r.LifetimeMin <= 0 {
		t.Fatalf("no death observed over %d steps; lifetime pin is %v", r.Iterations, r.LifetimeMin)
	}
}
