// Package benchkit is the reproducible benchmark harness behind
// cmd/batbench: a pinned grid of scenarios (the paper's banks and loads
// through the registry solvers' hot paths) measured with a self-contained
// timing loop and emitted as machine-readable reports (BENCH_<n>.json).
// Committed reports seed the repo's perf trajectory: every future PR runs
// the same grid, appends its report, and CI fails when a case regresses
// beyond the configured ratio against the committed baseline.
//
// The optimal-search cases additionally run the reference search (no
// canonicalization, no pruning — the pre-optimization algorithm) once and
// record the explored-state and wall-clock ratios, which is how the
// branch-and-bound speedups stay measured instead of anecdotal.
package benchkit

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"batsched/internal/battery"
	"batsched/internal/cluster"
	"batsched/internal/core"
	"batsched/internal/dkibam"
	"batsched/internal/jobs"
	"batsched/internal/load"
	"batsched/internal/obs"
	"batsched/internal/sched"
	"batsched/internal/service"
	"batsched/internal/session"
	"batsched/internal/spec"
	"batsched/internal/store"
	"batsched/internal/sweep"
)

// Schema identifies the report format; bump on incompatible changes.
const Schema = 1

// Measurement is one timed case.
type Measurement struct {
	Iterations  int64 `json:"iterations"`
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// Baseline is the reference optimal search (SearchOptions zero value) run
// once on the same cell, with the resulting improvement ratios.
type Baseline struct {
	Ns          int64   `json:"ns"`
	States      int64   `json:"states"`
	SpeedupX    float64 `json:"speedup_x"`
	StatesRatio float64 `json:"states_ratio"`
}

// Result is one benchmark case in a report.
type Result struct {
	Name string `json:"name"`
	Measurement
	// LifetimeMin pins the scenario's result so a report is also a
	// correctness witness: two reports of the same case must agree.
	LifetimeMin float64 `json:"lifetime_min,omitempty"`
	// Stats are the optimal search's counters (single run); absent for
	// policy cases.
	Stats *sched.SearchStats `json:"stats,omitempty"`
	// Baseline compares against the case's reference solver: the
	// no-optimization search for optimal/* cases, the serial default search
	// for optimal-par/* cases (so SpeedupX there is the parallel speedup).
	Baseline *Baseline `json:"baseline,omitempty"`
	// Workers is the worker count of optimal-par/* cases; 0 otherwise.
	Workers int `json:"workers,omitempty"`
}

// Report is a full harness run.
type Report struct {
	Schema  int      `json:"schema"`
	Suite   string   `json:"suite"`
	Go      string   `json:"go"`
	GOOS    string   `json:"goos"`
	GOARCH  string   `json:"goarch"`
	NumCPU  int      `json:"num_cpu"`
	Results []Result `json:"results"`
}

// Options tune a harness run.
type Options struct {
	// BenchTime is the minimum measuring time per case (default 1s).
	BenchTime time.Duration
	// SkipBaselines skips the (slow) single-shot reference-search runs on
	// the optimal cases; by default they run, because the states/speedup
	// ratios against the reference search are the point of those cases.
	SkipBaselines bool
	// Match filters cases by exact name prefix; empty runs everything.
	Match string
}

// kase is one pinned benchmark case.
type kase struct {
	name string
	// workers is the worker count of parallel-search cases; 0 otherwise.
	workers int
	// run is the measured body; it returns the scenario lifetime for the
	// correctness pin.
	run func() (float64, error)
	// stats, when set, runs the default optimal search once for counters.
	stats func() (sched.SearchStats, error)
	// baseline, when set, times the case's reference solver once.
	baseline func() (time.Duration, sched.SearchStats, error)
}

// compileCellGrid discretizes a bank and compiles a paper load on an
// explicit grid.
func compileCellGrid(bats []battery.Params, loadName string, horizon, stepMin, unitAmpMin float64) ([]*dkibam.Discretization, load.Compiled, error) {
	ds := make([]*dkibam.Discretization, len(bats))
	for i, b := range bats {
		d, err := dkibam.Discretize(b, stepMin, unitAmpMin)
		if err != nil {
			return nil, load.Compiled{}, err
		}
		ds[i] = d
	}
	l, err := load.Paper(loadName, horizon)
	if err != nil {
		return nil, load.Compiled{}, err
	}
	cl, err := load.Compile(l, stepMin, unitAmpMin)
	if err != nil {
		return nil, load.Compiled{}, err
	}
	return ds, cl, nil
}

// compileCell discretizes a bank on the paper grid and compiles a paper load.
func compileCell(bats []battery.Params, loadName string, horizon float64) ([]*dkibam.Discretization, load.Compiled, error) {
	return compileCellGrid(bats, loadName, horizon, dkibam.PaperStepMin, dkibam.PaperUnitAmpMin)
}

// policyCase measures one policy lifetime on a reused system (construction
// amortized exactly like production sweeps amortize it via the shared
// compiled artifact).
func policyCase(name string, bats []battery.Params, loadName string, horizon float64, p sched.Policy) (kase, error) {
	ds, cl, err := compileCell(bats, loadName, horizon)
	if err != nil {
		return kase{}, err
	}
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return kase{}, err
	}
	start := sys.SaveState(nil)
	return kase{
		name: name,
		run: func() (float64, error) {
			sys.RestoreState(start)
			return sys.Run(sched.AdaptChooser(p.NewChooser()))
		},
	}, nil
}

// optimalCase measures the default optimal search, records its counters
// (from the last measured run — every search counts them, so no extra run
// is needed), and (once) times the reference search for the improvement
// ratios.
func optimalCase(name string, bats []battery.Params, loadName string, horizon float64) (kase, error) {
	ds, cl, err := compileCell(bats, loadName, horizon)
	if err != nil {
		return kase{}, err
	}
	var last sched.SearchStats
	return kase{
		name: name,
		run: func() (float64, error) {
			lt, _, st, err := sched.OptimalWithStats(ds, cl)
			last = st
			return lt, err
		},
		stats: func() (sched.SearchStats, error) {
			return last, nil
		},
		baseline: func() (time.Duration, sched.SearchStats, error) {
			t0 := time.Now()
			_, _, st, err := sched.OptimalWithOptions(ds, cl, sched.SearchOptions{})
			return time.Since(t0), st, err
		},
	}, nil
}

// heterogeneousCase measures the default serial search on a mixed-preset
// bank at an explicit (coarse) grid. There is no reference-search baseline:
// without canonicalization and pruning a six-battery heterogeneous bank
// never terminates in benchmark time — which is the point of the case. The
// states counter is deterministic and gated.
func heterogeneousCase(name string, bats []battery.Params, loadName string, horizon, stepMin, unitAmpMin float64) (kase, error) {
	ds, cl, err := compileCellGrid(bats, loadName, horizon, stepMin, unitAmpMin)
	if err != nil {
		return kase{}, err
	}
	var last sched.SearchStats
	return kase{
		name: name,
		run: func() (float64, error) {
			lt, _, st, err := sched.OptimalWithStats(ds, cl)
			last = st
			return lt, err
		},
		stats: func() (sched.SearchStats, error) {
			return last, nil
		},
	}, nil
}

// parallelCase measures the work-stealing search at a fixed worker count.
// Its baseline is the serial default search on the same cell, so the
// recorded SpeedupX is the parallel speedup (≈1 on a single-CPU machine —
// CheckSpeedups only enforces the floor when NumCPU covers the workers).
// Explored states are nondeterministic under stealing, so Compare exempts
// optimal-par/* from the states gate.
func parallelCase(name string, bats []battery.Params, loadName string, horizon, stepMin, unitAmpMin float64, workers int) (kase, error) {
	ds, cl, err := compileCellGrid(bats, loadName, horizon, stepMin, unitAmpMin)
	if err != nil {
		return kase{}, err
	}
	var last sched.SearchStats
	return kase{
		name:    name,
		workers: workers,
		run: func() (float64, error) {
			lt, _, st, err := sched.OptimalParallelWithStats(ds, cl, workers)
			last = st
			return lt, err
		},
		stats: func() (sched.SearchStats, error) {
			return last, nil
		},
		baseline: func() (time.Duration, sched.SearchStats, error) {
			t0 := time.Now()
			_, _, st, err := sched.OptimalWithStats(ds, cl)
			return time.Since(t0), st, err
		},
	}, nil
}

// sweepCase measures a full policy grid through the sweep runner. The spec
// and the compiled cells are built once, outside the measured body, exactly
// as the evaluation service amortizes them via its compiled cache in
// production: what the case times is the sweep pipeline on hot cells — the
// evaluation path behind a cell-store miss — which the allocs/op gate holds
// near zero per scenario.
func sweepCase(name string, bank sweep.Bank, loads []string, horizon float64, workers int) (kase, error) {
	lcs, err := sweep.PaperLoads(loads, horizon)
	if err != nil {
		return kase{}, err
	}
	sp := sweep.Spec{
		Banks:    []sweep.Bank{bank},
		Loads:    lcs,
		Policies: sweep.Policies(sched.Sequential(), sched.RoundRobin(), sched.BestAvailable()),
	}
	// Precompile every cell into a read-only map; the compile hook then
	// only reads it, so concurrent workers need no lock.
	cells := make(map[string]*core.Compiled)
	key := func(bank sweep.Bank, lc sweep.LoadCase, grid sweep.GridSpec) string {
		return bank.Name + "\x00" + lc.Name + "\x00" + grid.Name
	}
	grid := sweep.PaperGrid()
	for _, lc := range lcs {
		c, err := core.Compile(bank.Batteries, lc.Load, grid.StepMin, grid.UnitAmpMin)
		if err != nil {
			return kase{}, err
		}
		cells[key(bank, lc, grid)] = c
	}
	opts := sweep.Options{
		Workers: workers,
		Compile: func(bank sweep.Bank, lc sweep.LoadCase, grid sweep.GridSpec) (*core.Compiled, error) {
			if c, ok := cells[key(bank, lc, grid)]; ok {
				return c, nil
			}
			return core.Compile(bank.Batteries, lc.Load, grid.StepMin, grid.UnitAmpMin)
		},
	}
	return kase{
		name: name,
		run: func() (float64, error) {
			results, err := sweep.Run(sp, opts)
			if err != nil {
				return 0, err
			}
			last := 0.0
			for _, r := range results {
				if r.Err != nil {
					return 0, r.Err
				}
				last = r.Lifetime
			}
			return last, nil
		},
	}, nil
}

// jobsScenario is the pinned 200-case grid of the orchestration cases:
// 2 banks × 10 paper loads × 2 policies × 5 discretization grids. Cells are
// deliberately cheap (short horizon, deterministic policies) so the
// measured delta between the jobs path and the direct sweep is the
// orchestration overhead, not solver time.
func jobsScenario() spec.Scenario {
	loads := make([]spec.Load, len(load.PaperLoadNames))
	for i, name := range load.PaperLoadNames {
		// The paper's 200 min horizon: recovery-heavy loads let banks live
		// past 40 min, and a load that ends before the bank dies is an error.
		loads[i] = spec.Load{Paper: name, HorizonMin: 200}
	}
	// Gamma must divide the battery capacities (5.5 and 11 A·min), so the
	// grid axis sticks to divisors of 0.5.
	steps := []float64{0.01, 0.02, 0.025, 0.05, 0.1}
	grids := make([]spec.Grid, len(steps))
	for i, g := range steps {
		grids[i] = spec.Grid{StepMin: g, UnitAmpMin: g}
	}
	return spec.Scenario{
		Banks: []spec.Bank{
			{Battery: &spec.Battery{Preset: "B1"}, Count: 2},
			{Battery: &spec.Battery{Preset: "B2"}, Count: 1},
		},
		Loads:   loads,
		Solvers: []spec.Solver{{Name: "sequential"}, {Name: "bestof"}},
		Grids:   grids,
	}
}

// jobsSubmitDrainCase measures the full orchestration path: fresh service,
// store, and manager per op (cold-start included — that is the overhead
// being tracked), submit the pinned grid as one job, drain it, read the
// last result. Dedup is defeated by the fresh store, so every op evaluates
// all 200 cells.
func jobsSubmitDrainCase(name string) kase {
	sc := jobsScenario()
	return kase{
		name: name,
		run: func() (float64, error) {
			st, err := store.Open("")
			if err != nil {
				return 0, err
			}
			defer st.Close()
			// The service shares the job manager's store, as batserve wires
			// it in production; the store is fresh per op, so every cell is
			// still a miss and the full evaluation path is measured.
			svc := service.New(service.Options{MaxConcurrent: 2, Store: st})
			m := jobs.New(svc, st, jobs.Options{Workers: 1})
			defer m.Shutdown(context.Background())
			sub, err := m.Submit(jobs.Request{Scenario: sc, Workers: 2})
			if err != nil {
				return 0, err
			}
			final, err := m.Wait(context.Background(), sub.ID)
			if err != nil {
				return 0, err
			}
			if final.State != jobs.StateDone {
				return 0, fmt.Errorf("benchkit: job finished %s: %s", final.State, final.Error)
			}
			lines, err := m.Results(sub.ID)
			if err != nil {
				return 0, err
			}
			return lastLifetime(lines)
		},
	}
}

// jobsDirectSweepCase is the baseline for the submit-drain case: the same
// pinned grid through sweep.Run with a fresh compile per op, no
// orchestration. The lifetime pin ties the two cases together: both must
// report the same final-cell lifetime.
func jobsDirectSweepCase(name string) kase {
	sc := jobsScenario()
	return kase{
		name: name,
		run: func() (float64, error) {
			sp, err := sc.Compile()
			if err != nil {
				return 0, err
			}
			results, err := sweep.Run(sp, sweep.Options{Workers: 2})
			if err != nil {
				return 0, err
			}
			last := 0.0
			for _, r := range results {
				if r.Err != nil {
					return 0, r.Err
				}
				last = r.Lifetime
			}
			return last, nil
		},
	}
}

// overlapScenario is jobsScenario with one of the ten paper loads swapped
// for an inline load not in the paper set: 9 of 10 loads — and so 180 of
// the 200 cells — are shared with the pinned grid, which makes a seeded
// resubmission exactly 90% overlapping.
func overlapScenario() spec.Scenario {
	sc := jobsScenario()
	for i := range sc.Loads {
		if sc.Loads[i].Paper == "ILs alt" {
			// A 250 s on / 250 s off intermittent variant of the paper's
			// alternating load, repeated across the 200 min horizon.
			segs := make([]spec.Segment, 0, 48)
			for len(segs) < 48 {
				segs = append(segs,
					spec.Segment{DurationMin: 250.0 / 60, CurrentA: 0.5},
					spec.Segment{DurationMin: 250.0 / 60, CurrentA: 0},
				)
			}
			sc.Loads[i] = spec.Load{Name: "ILs 250/250", Segments: segs}
		}
	}
	return sc
}

// runSweepLines drives one store-backed sweep through the service line path
// and returns the last lifetime plus the cached-cell count.
func runSweepLines(svc *service.Service, sc spec.Scenario) (last float64, cached int, err error) {
	var lastLine []byte
	err = svc.SweepStreamLines(context.Background(),
		service.SweepRequest{Scenario: sc, Workers: 2},
		func(sl service.SweepLine) error {
			if sl.Cached {
				cached++
			}
			lastLine = append(lastLine[:0], sl.Line...)
			return nil
		})
	if err != nil {
		return 0, 0, err
	}
	last, err = lastLifetime([]json.RawMessage{lastLine})
	return last, cached, err
}

// sweepColdCase measures the content-addressed sweep pipeline cold: fresh
// store and service per op, so all 200 cells are digested, missed, and
// evaluated. The delta against the 90%-overlap case below is what cell
// granularity buys on resubmission.
func sweepColdCase(name string) kase {
	sc := jobsScenario()
	return kase{
		name: name,
		run: func() (float64, error) {
			st, err := store.Open("")
			if err != nil {
				return 0, err
			}
			defer st.Close()
			svc := service.New(service.Options{MaxConcurrent: 2, Store: st})
			last, cached, err := runSweepLines(svc, sc)
			if err != nil {
				return 0, err
			}
			if cached != 0 {
				return 0, fmt.Errorf("benchkit: cold sweep reported %d cached cells", cached)
			}
			return last, nil
		},
	}
}

// sweepOverlapCase measures a 90%-overlapping resubmission: per op the
// store is seeded with the 200 cells of the pinned grid (captured once,
// outside measurement), then the overlap scenario — sharing 180 of its 200
// cells — runs against it. Only the 20 novel cells evaluate; the measured
// body is digesting, the bulk probe, and the 10% miss path. The store is
// rebuilt per op so the novel cells stay novel and the work is stationary.
func sweepOverlapCase(name string) (kase, error) {
	base := jobsScenario()
	over := overlapScenario()
	// Capture the pinned grid's cell digests and lines once.
	seedStore, err := store.Open("")
	if err != nil {
		return kase{}, err
	}
	seedSvc := service.New(service.Options{MaxConcurrent: 2, Store: seedStore})
	if _, _, err := runSweepLines(seedSvc, base); err != nil {
		return kase{}, err
	}
	digests, _, err := service.CellDigests(service.SweepRequest{Scenario: base})
	if err != nil {
		return kase{}, err
	}
	lines, hits := seedStore.LookupCells(digests)
	if hits != len(digests) {
		return kase{}, fmt.Errorf("benchkit: seed sweep stored %d of %d cells", hits, len(digests))
	}
	return kase{
		name: name,
		run: func() (float64, error) {
			st, err := store.Open("")
			if err != nil {
				return 0, err
			}
			defer st.Close()
			for i, d := range digests {
				if err := st.PutCell(d, lines[i]); err != nil {
					return 0, err
				}
			}
			svc := service.New(service.Options{MaxConcurrent: 2, Store: st})
			last, cached, err := runSweepLines(svc, over)
			if err != nil {
				return 0, err
			}
			if cached != 180 {
				return 0, fmt.Errorf("benchkit: overlap sweep served %d cached cells, want 180", cached)
			}
			return last, nil
		},
	}, nil
}

// sweepDisarmedClusterCase measures the pinned grid cold with the cluster
// plumbing compiled in but disarmed: the service runs on a Tiered backend
// whose remote tier is a peerless Cluster, and that same Cluster is wired
// as the forwarding evaluator. Disarmed, it owns every cell, fetches
// nothing, and forwards nothing — so this case pins what a single-node
// server pays for carrying the multi-node hooks. Gated against the
// committed baseline like every case, it keeps "clustering off" from ever
// drifting away from the plain sweep/overlap/cold path it must match.
func sweepDisarmedClusterCase(name string) kase {
	sc := jobsScenario()
	return kase{
		name: name,
		run: func() (float64, error) {
			st, err := store.Open("")
			if err != nil {
				return 0, err
			}
			defer st.Close()
			clu := cluster.New(cluster.Options{Self: "bench://solo"})
			svc := service.New(service.Options{
				MaxConcurrent: 2,
				Store:         store.NewTiered(st, clu),
				Cluster:       clu,
			})
			last, cached, err := runSweepLines(svc, sc)
			if err != nil {
				return 0, err
			}
			if cached != 0 {
				return 0, fmt.Errorf("benchkit: disarmed-cluster sweep reported %d cached cells", cached)
			}
			if fwd := svc.Stats().CellsForwarded; fwd != 0 {
				return 0, fmt.Errorf("benchkit: disarmed cluster forwarded %d cells", fwd)
			}
			return last, nil
		},
	}
}

// sessionStepCase measures one online scheduling step through the session
// layer: append a draw event, advance the engine through its decisions,
// fill telemetry. The shared bank artifact and the telemetry buffer live
// outside the measured op, as batserve amortizes them, so the steady-state
// step is the allocation-free path the gate holds at zero. When the bank
// dies the session is closed and reopened from the artifact's pool —
// hundreds of steps apart, so the reopen amortizes to nothing per op. The
// pinned lifetime is the (deterministic) death time of the fixed event
// pattern.
func sessionStepCase(name string, mkPolicy func() sched.Policy) (kase, error) {
	art, err := core.CompileBank(battery.Bank(battery.B1(), 2), dkibam.PaperStepMin, dkibam.PaperUnitAmpMin)
	if err != nil {
		return kase{}, err
	}
	var (
		s        *session.Session
		tel      session.Telemetry
		n        int
		lifetime float64
	)
	return kase{
		name: name,
		run: func() (float64, error) {
			if s == nil {
				var err error
				if s, err = session.New("bench", art, "bench", mkPolicy()); err != nil {
					return 0, err
				}
			}
			// The fixed pattern: two 0.25 A minutes, then an idle minute —
			// jobs exercise the decision path, idles the recovery path.
			cur := 0.25
			if n%3 == 2 {
				cur = 0
			}
			n++
			if err := s.Step(cur, 1.0, &tel); err != nil {
				return 0, err
			}
			if tel.Dead {
				lifetime = tel.LifetimeMin
				s.Close("bench")
				s, n = nil, 0
			}
			return lifetime, nil
		},
	}, nil
}

// lastLifetime extracts the final cell's lifetime from job result lines.
func lastLifetime(lines []json.RawMessage) (float64, error) {
	if len(lines) == 0 {
		return 0, fmt.Errorf("benchkit: job produced no result lines")
	}
	var res struct {
		LifetimeMin float64 `json:"lifetime_min"`
		Error       string  `json:"error"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &res); err != nil {
		return 0, err
	}
	if res.Error != "" {
		return 0, fmt.Errorf("benchkit: final cell failed: %s", res.Error)
	}
	return res.LifetimeMin, nil
}

// CalibrationCase is a fixed CPU-bound case independent of the repo's code
// paths. Compare uses its ratio between two reports to normalize wall-clock
// comparisons across machines: a runner that is uniformly slower than the
// machine that recorded the committed baseline slows the calibration case by
// the same factor and is not read as a regression.
const CalibrationCase = "calibrate/spin"

func calibrationCase() kase {
	return kase{
		name: CalibrationCase,
		run: func() (float64, error) {
			// Deterministic xorshift mixing, ~1 ms of pure integer work.
			x := uint64(0x9E3779B97F4A7C15)
			var acc uint64
			for i := 0; i < 400_000; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				acc += x
			}
			if acc == 0 {
				return 0, fmt.Errorf("benchkit: calibration accumulator vanished")
			}
			return 0, nil
		},
	}
}

// suite builds the pinned case grid. The homogeneous 4xB1 cell is the
// canonicalization showcase (4! = 24x fewer states than the reference
// search); the high-c bank is the branch-and-bound showcase (the charge
// bound binds when batteries die near the total-charge horizon).
func suite() ([]kase, error) {
	b1 := battery.B1()
	hiC := battery.Params{Capacity: 1.2, C: 0.8, KPrime: 0.2, Label: "HiC"}
	cases := []kase{calibrationCase()}
	add := func(k kase, err error) error {
		if err != nil {
			return err
		}
		cases = append(cases, k)
		return nil
	}
	if err := add(policyCase("policy-lifetime/2xB1/ILs alt/bestof", battery.Bank(b1, 2), "ILs alt", 200, sched.BestAvailable())); err != nil {
		return nil, err
	}
	if err := add(policyCase("policy-lifetime/2xB1/ILl 500/bestof", battery.Bank(b1, 2), "ILl 500", 200, sched.BestAvailable())); err != nil {
		return nil, err
	}
	if err := add(sweepCase("sweep/2xB1/paper/policies", sweep.BankOf("2xB1", b1, 2), nil, 200, 1)); err != nil {
		return nil, err
	}
	if err := add(optimalCase("optimal/2xB1/ILs alt", battery.Bank(b1, 2), "ILs alt", 200)); err != nil {
		return nil, err
	}
	if err := add(optimalCase("optimal/2xB1/ILs r1", battery.Bank(b1, 2), "ILs r1", 200)); err != nil {
		return nil, err
	}
	if err := add(optimalCase("optimal/4xB1/CL 500", battery.Bank(b1, 4), "CL 500", 200)); err != nil {
		return nil, err
	}
	if err := add(optimalCase("optimal/3xHiC/ILs alt", battery.Bank(hiC, 3), "ILs alt", 200)); err != nil {
		return nil, err
	}
	// The heterogeneous showcase: a mixed 3xB1 + 3xB2 bank on the coarse
	// 0.5-grid, serial (deterministic states, gated) and through the
	// work-stealing pool. Plus the parallel twin of the 4xB1 case, whose
	// serial-baseline speedup CheckSpeedups holds above the floor on
	// multi-core runners.
	mixed := []battery.Params{b1, b1, b1, battery.B2(), battery.B2(), battery.B2()}
	if err := add(heterogeneousCase("optimal/3xB1+3xB2/ILs 500", mixed, "ILs 500", 2000, 0.5, 0.5)); err != nil {
		return nil, err
	}
	if err := add(parallelCase("optimal-par/4w/4xB1/CL 500", battery.Bank(b1, 4), "CL 500", 200,
		dkibam.PaperStepMin, dkibam.PaperUnitAmpMin, 4)); err != nil {
		return nil, err
	}
	if err := add(parallelCase("optimal-par/4w/3xB1+3xB2/ILs 500", mixed, "ILs 500", 2000, 0.5, 0.5, 4)); err != nil {
		return nil, err
	}
	// The orchestration pair: the same pinned 200-case grid through the job
	// manager (submit + drain) and through the bare sweep runner. Their
	// ns/op delta is the jobs-layer overhead; informational, not gated.
	cases = append(cases,
		jobsSubmitDrainCase("jobs/submit-drain/200-case-grid"),
		jobsDirectSweepCase("jobs/direct-sweep/200-case-grid"),
	)
	// The online serving case: per-step latency of the streaming session
	// layer in steady state, gated at zero allocations per step.
	if err := add(sessionStepCase("session/step/2xB1/sequential", sched.Sequential)); err != nil {
		return nil, err
	}
	// The incremental pair: the pinned grid cold through the cell-addressed
	// service versus a 90%-overlapping resubmission that reuses 180 of the
	// 200 cells. Their ratio is what cell-granular content addressing buys
	// on the paper's overlapping experiment grids.
	cases = append(cases, sweepColdCase("sweep/overlap/cold/200-case-grid"))
	if err := add(sweepOverlapCase("sweep/overlap/resubmit-90pct/200-case-grid")); err != nil {
		return nil, err
	}
	// The cluster-disarmed pin: the same cold grid through the tiered
	// backend and forwarding hooks with no peers configured. Its delta
	// against the cold case above is the whole price of compiling the
	// multi-node tier into a single-node server.
	cases = append(cases, sweepDisarmedClusterCase("sweep/cluster-disarmed/cold/200-case-grid"))
	// The observability overhead pins: what instrumentation costs on paths
	// that run per cell or per step. Disarmed span start/end is the price
	// every un-traced request pays (gated at zero allocations); histogram
	// observe is the per-sample recording cost (also zero-alloc); the armed
	// span is the full record-into-ring lifecycle.
	cases = append(cases,
		obsDisarmedSpanCase("obs/span/disarmed-start-end"),
		obsArmedSpanCase("obs/span/armed-start-end"),
		obsHistogramCase("obs/histogram/observe"),
	)
	return cases, nil
}

// obsBatch is the inner repetition count of the obs cases: the measured
// operations are a few nanoseconds each, so each timed op runs a fixed
// batch to keep the harness loop overhead out of the signal. Reported
// ns/op is per batch, comparable across reports.
const obsBatch = 128

// obsDisarmedSpanCase pins the disarmed-tracing overhead: StartSpan on a
// context with no tracer must return the context untouched and a nil span
// whose End is a no-op — zero allocations, held by the gate.
func obsDisarmedSpanCase(name string) kase {
	ctx := context.Background()
	return kase{
		name: name,
		run: func() (float64, error) {
			for i := 0; i < obsBatch; i++ {
				sctx, sp := obs.StartSpan(ctx, "bench")
				if sctx != ctx || sp != nil {
					return 0, fmt.Errorf("benchkit: disarmed StartSpan armed itself")
				}
				sp.End()
			}
			return 0, nil
		},
	}
}

// obsArmedSpanCase pins the armed span lifecycle: id assignment, attribute
// set, and the record landing in the ring.
func obsArmedSpanCase(name string) kase {
	tr := obs.NewTracer(1024)
	ctx := obs.WithTracer(context.Background(), tr)
	return kase{
		name: name,
		run: func() (float64, error) {
			for i := 0; i < obsBatch; i++ {
				_, sp := obs.StartSpan(ctx, "bench")
				sp.SetInt("i", int64(i))
				sp.End()
			}
			if tr.Active() != 0 {
				return 0, fmt.Errorf("benchkit: armed span case leaked spans")
			}
			return 0, nil
		},
	}
}

// obsHistogramCase pins the per-sample recording cost of Histogram.Observe
// (bucket search plus two atomics) — the price every instrumented cell,
// step, commit, and request pays. Zero-alloc, held by the gate.
func obsHistogramCase(name string) kase {
	h := obs.NewHistogram(nil)
	return kase{
		name: name,
		run: func() (float64, error) {
			for i := 0; i < obsBatch; i++ {
				h.Observe(float64(i%1000) * 1e-6)
			}
			if h.Count() == 0 {
				return 0, fmt.Errorf("benchkit: histogram observed nothing")
			}
			return 0, nil
		},
	}
}

// CaseNames lists the pinned grid in order.
func CaseNames() ([]string, error) {
	cases, err := suite()
	if err != nil {
		return nil, err
	}
	names := make([]string, len(cases))
	for i, c := range cases {
		names[i] = c.name
	}
	return names, nil
}

// Run executes the harness and returns the report.
func Run(opts Options) (Report, error) {
	benchtime := opts.BenchTime
	if benchtime <= 0 {
		benchtime = time.Second
	}
	cases, err := suite()
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		Schema: Schema,
		Suite:  "batsched-pinned-v1",
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
	}
	for _, c := range cases {
		if opts.Match != "" && !strings.HasPrefix(c.name, opts.Match) {
			continue
		}
		var lifetime float64
		m, err := measure(benchtime, func() error {
			lt, err := c.run()
			lifetime = lt
			return err
		})
		if err != nil {
			return Report{}, fmt.Errorf("benchkit: case %s: %w", c.name, err)
		}
		res := Result{Name: c.name, Measurement: m, LifetimeMin: lifetime, Workers: c.workers}
		if c.stats != nil {
			st, err := c.stats()
			if err != nil {
				return Report{}, fmt.Errorf("benchkit: case %s stats: %w", c.name, err)
			}
			res.Stats = &st
		}
		if c.baseline != nil && !opts.SkipBaselines {
			elapsed, st, err := c.baseline()
			if err != nil {
				return Report{}, fmt.Errorf("benchkit: case %s baseline: %w", c.name, err)
			}
			b := &Baseline{Ns: elapsed.Nanoseconds(), States: st.States}
			if res.NsPerOp > 0 {
				b.SpeedupX = Round2(float64(b.Ns) / float64(res.NsPerOp))
			}
			if res.Stats != nil && res.Stats.States > 0 {
				b.StatesRatio = Round2(float64(b.States) / float64(res.Stats.States))
			}
			res.Baseline = b
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// Round2 rounds to two decimals; exported so cmd/batbench can recompute
// derived ratios when it patches re-measured results.
func Round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// measure times fn like the testing package does: grow the iteration count
// until one batch runs for at least benchtime, reporting per-op wall time
// and allocation counts from runtime.MemStats deltas. Self-contained so the
// harness needs no testing flags and works from a plain binary (and in unit
// tests with a tiny benchtime).
func measure(benchtime time.Duration, fn func() error) (Measurement, error) {
	// Warmup run: surfaces errors before timing and charges one-time lazy
	// work (map growth, pools) outside the measurement.
	if err := fn(); err != nil {
		return Measurement{}, err
	}
	var ms runtime.MemStats
	n := int64(1)
	for {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		startMallocs, startBytes := ms.Mallocs, ms.TotalAlloc
		start := time.Now()
		for i := int64(0); i < n; i++ {
			if err := fn(); err != nil {
				return Measurement{}, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		if elapsed >= benchtime || n >= 1_000_000_000 {
			if elapsed <= 0 {
				elapsed = time.Nanosecond
			}
			return Measurement{
				Iterations:  n,
				NsPerOp:     elapsed.Nanoseconds() / n,
				AllocsPerOp: int64(ms.Mallocs-startMallocs) / n,
				BytesPerOp:  int64(ms.TotalAlloc-startBytes) / n,
			}, nil
		}
		// Predict the iterations that reach benchtime with 20% headroom,
		// growing at least 2x and at most 100x per round (the testing
		// package's strategy).
		next := n * 100
		if elapsed > 0 {
			next = int64(1.2 * float64(benchtime.Nanoseconds()) / (float64(elapsed.Nanoseconds()) / float64(n)))
		}
		if next < 2*n {
			next = 2 * n
		}
		if next > 100*n {
			next = 100 * n
		}
		n = next
	}
}

// Regression is one case that slowed beyond the allowed ratio. Kind is
// "ns/op" (wall clock — noisy across machines, retried by the gate),
// "states" (explored search states — deterministic for fixed code and grid,
// the machine-independent signal), or "allocs/op" (allocation count —
// near-deterministic, the zero-allocation pipeline's guard).
type Regression struct {
	Name    string
	Kind    string
	Base    int64
	Current int64
	Ratio   float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %d %s vs baseline %d (%.2fx > allowed)", r.Name, r.Current, r.Kind, r.Base, r.Ratio)
}

// GatedPrefixes are the case families the CI regression gate inspects; the
// other cases are informational. optimal-par/* cases are gated on ns/op and
// allocs/op but not on explored states (nondeterministic under stealing);
// their parallel speedup is enforced separately by CheckSpeedups.
var GatedPrefixes = []string{"policy-lifetime/", "optimal/", "optimal-par/", "sweep/", "session/", "obs/"}

// allocSlack is how many allocs/op a zero-alloc baseline case may drift
// before the gate fires: allocation counts are near-deterministic, but a
// stray background GC assist or pool refill can charge a handful of
// allocations to the measured loop.
const allocSlack = 16

// Compare flags cases in current that regressed more than maxRatio against
// the same-named case in base, restricted to GatedPrefixes: wall-clock
// ns/op on every gated case, plus explored states on the optimal cases
// (deterministic, so immune to machine differences). Wall-clock ratios are
// divided by the CalibrationCase slowdown when both reports carry it, so a
// uniformly slower machine (CI runner vs the baseline recorder) is excused;
// a faster machine never tightens the gate (the calibration workload is not
// the measured workload). Cases missing from either report are ignored (the
// grid may grow over time).
func Compare(base, current Report, maxRatio float64) []Regression {
	baseBy := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	scale := 1.0
	if b, ok := baseBy[CalibrationCase]; ok && b.NsPerOp > 0 {
		for _, c := range current.Results {
			if c.Name == CalibrationCase && c.NsPerOp > 0 {
				if s := float64(c.NsPerOp) / float64(b.NsPerOp); s > 1 {
					scale = s
				}
				break
			}
		}
	}
	var regs []Regression
	for _, r := range current.Results {
		gated := false
		for _, p := range GatedPrefixes {
			if strings.HasPrefix(r.Name, p) {
				gated = true
				break
			}
		}
		if !gated {
			continue
		}
		b, ok := baseBy[r.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 {
			if ratio := float64(r.NsPerOp) / float64(b.NsPerOp) / scale; ratio > maxRatio {
				regs = append(regs, Regression{Name: r.Name, Kind: "ns/op", Base: b.NsPerOp, Current: r.NsPerOp, Ratio: ratio})
			}
		}
		// The states gate only applies to deterministic (serial) searches:
		// under work stealing the explored-state count depends on which
		// worker publishes the incumbent first.
		if b.Stats != nil && r.Stats != nil && b.Stats.States > 0 && !strings.HasPrefix(r.Name, "optimal-par/") {
			if ratio := float64(r.Stats.States) / float64(b.Stats.States); ratio > maxRatio {
				regs = append(regs, Regression{Name: r.Name, Kind: "states", Base: b.Stats.States, Current: r.Stats.States, Ratio: ratio})
			}
		}
		// Allocation gate: machine-independent like the states gate. A
		// baseline at (or near) zero cannot express a ratio, so it gets an
		// absolute slack instead — the zero-allocation cases must stay
		// zero-allocation.
		switch {
		case b.AllocsPerOp > allocSlack:
			if ratio := float64(r.AllocsPerOp) / float64(b.AllocsPerOp); ratio > maxRatio {
				regs = append(regs, Regression{Name: r.Name, Kind: "allocs/op", Base: b.AllocsPerOp, Current: r.AllocsPerOp, Ratio: ratio})
			}
		case r.AllocsPerOp > b.AllocsPerOp+allocSlack:
			regs = append(regs, Regression{Name: r.Name, Kind: "allocs/op", Base: b.AllocsPerOp, Current: r.AllocsPerOp,
				Ratio: float64(r.AllocsPerOp) / float64(b.AllocsPerOp+1)})
		}
	}
	return regs
}

// MinParallelSpeedup is the serial-to-parallel speedup floor the
// optimal-par/* cases must clear at their pinned worker count. The cases run
// four workers; near-linear scaling lands above 3x, and the floor at 2x
// leaves room for shared-memo contention and runner noise while still
// catching a work-stealing pool that degenerated to serial-with-overhead.
const MinParallelSpeedup = 2.0

// CheckSpeedups flags optimal-par cases whose measured speedup against
// their serial baseline fell below floor. A machine with fewer CPUs than a
// case has workers cannot express parallel speedup at all, so such cases
// are skipped — the floor binds on multi-core CI runners, not on machines
// pinned to one core.
func CheckSpeedups(rep Report, floor float64) []string {
	var bad []string
	for _, r := range rep.Results {
		if !strings.HasPrefix(r.Name, "optimal-par/") || r.Baseline == nil || r.Workers <= 1 {
			continue
		}
		if rep.NumCPU < r.Workers {
			continue
		}
		if r.Baseline.SpeedupX < floor {
			bad = append(bad, fmt.Sprintf("%s: parallel speedup %.2fx at %d workers, floor %.2fx",
				r.Name, r.Baseline.SpeedupX, r.Workers, floor))
		}
	}
	return bad
}
