// Package benchkit is the reproducible benchmark harness behind
// cmd/batbench: a pinned grid of scenarios (the paper's banks and loads
// through the registry solvers' hot paths) measured with a self-contained
// timing loop and emitted as machine-readable reports (BENCH_<n>.json).
// Committed reports seed the repo's perf trajectory: every future PR runs
// the same grid, appends its report, and CI fails when a case regresses
// beyond the configured ratio against the committed baseline.
//
// The optimal-search cases additionally run the reference search (no
// canonicalization, no pruning — the pre-optimization algorithm) once and
// record the explored-state and wall-clock ratios, which is how the
// branch-and-bound speedups stay measured instead of anecdotal.
package benchkit

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"batsched/internal/battery"
	"batsched/internal/dkibam"
	"batsched/internal/jobs"
	"batsched/internal/load"
	"batsched/internal/sched"
	"batsched/internal/service"
	"batsched/internal/spec"
	"batsched/internal/store"
	"batsched/internal/sweep"
)

// Schema identifies the report format; bump on incompatible changes.
const Schema = 1

// Measurement is one timed case.
type Measurement struct {
	Iterations  int64 `json:"iterations"`
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// Baseline is the reference optimal search (SearchOptions zero value) run
// once on the same cell, with the resulting improvement ratios.
type Baseline struct {
	Ns          int64   `json:"ns"`
	States      int64   `json:"states"`
	SpeedupX    float64 `json:"speedup_x"`
	StatesRatio float64 `json:"states_ratio"`
}

// Result is one benchmark case in a report.
type Result struct {
	Name string `json:"name"`
	Measurement
	// LifetimeMin pins the scenario's result so a report is also a
	// correctness witness: two reports of the same case must agree.
	LifetimeMin float64 `json:"lifetime_min,omitempty"`
	// Stats are the optimal search's counters (single run); absent for
	// policy cases.
	Stats *sched.SearchStats `json:"stats,omitempty"`
	// Baseline compares against the reference search; only on optimal cases.
	Baseline *Baseline `json:"baseline,omitempty"`
}

// Report is a full harness run.
type Report struct {
	Schema  int      `json:"schema"`
	Suite   string   `json:"suite"`
	Go      string   `json:"go"`
	GOOS    string   `json:"goos"`
	GOARCH  string   `json:"goarch"`
	NumCPU  int      `json:"num_cpu"`
	Results []Result `json:"results"`
}

// Options tune a harness run.
type Options struct {
	// BenchTime is the minimum measuring time per case (default 1s).
	BenchTime time.Duration
	// SkipBaselines skips the (slow) single-shot reference-search runs on
	// the optimal cases; by default they run, because the states/speedup
	// ratios against the reference search are the point of those cases.
	SkipBaselines bool
	// Match filters cases by exact name prefix; empty runs everything.
	Match string
}

// kase is one pinned benchmark case.
type kase struct {
	name string
	// run is the measured body; it returns the scenario lifetime for the
	// correctness pin.
	run func() (float64, error)
	// stats, when set, runs the default optimal search once for counters.
	stats func() (sched.SearchStats, error)
	// baseline, when set, times the reference search once.
	baseline func() (time.Duration, sched.SearchStats, error)
}

// compileCell discretizes a bank on the paper grid and compiles a paper load.
func compileCell(bats []battery.Params, loadName string, horizon float64) ([]*dkibam.Discretization, load.Compiled, error) {
	ds := make([]*dkibam.Discretization, len(bats))
	for i, b := range bats {
		d, err := dkibam.Discretize(b, dkibam.PaperStepMin, dkibam.PaperUnitAmpMin)
		if err != nil {
			return nil, load.Compiled{}, err
		}
		ds[i] = d
	}
	l, err := load.Paper(loadName, horizon)
	if err != nil {
		return nil, load.Compiled{}, err
	}
	cl, err := load.Compile(l, dkibam.PaperStepMin, dkibam.PaperUnitAmpMin)
	if err != nil {
		return nil, load.Compiled{}, err
	}
	return ds, cl, nil
}

// policyCase measures one policy lifetime on a reused system (construction
// amortized exactly like production sweeps amortize it via the shared
// compiled artifact).
func policyCase(name string, bats []battery.Params, loadName string, horizon float64, p sched.Policy) (kase, error) {
	ds, cl, err := compileCell(bats, loadName, horizon)
	if err != nil {
		return kase{}, err
	}
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return kase{}, err
	}
	start := sys.SaveState(nil)
	return kase{
		name: name,
		run: func() (float64, error) {
			sys.RestoreState(start)
			return sys.Run(sched.AdaptChooser(p.NewChooser()))
		},
	}, nil
}

// optimalCase measures the default optimal search, records its counters
// (from the last measured run — every search counts them, so no extra run
// is needed), and (once) times the reference search for the improvement
// ratios.
func optimalCase(name string, bats []battery.Params, loadName string, horizon float64) (kase, error) {
	ds, cl, err := compileCell(bats, loadName, horizon)
	if err != nil {
		return kase{}, err
	}
	var last sched.SearchStats
	return kase{
		name: name,
		run: func() (float64, error) {
			lt, _, st, err := sched.OptimalWithStats(ds, cl)
			last = st
			return lt, err
		},
		stats: func() (sched.SearchStats, error) {
			return last, nil
		},
		baseline: func() (time.Duration, sched.SearchStats, error) {
			t0 := time.Now()
			_, _, st, err := sched.OptimalWithOptions(ds, cl, sched.SearchOptions{})
			return time.Since(t0), st, err
		},
	}, nil
}

// sweepCase measures a full policy grid through the sweep runner.
func sweepCase(name string, bank sweep.Bank, loads []string, horizon float64, workers int) kase {
	return kase{
		name: name,
		run: func() (float64, error) {
			lcs, err := sweep.PaperLoads(loads, horizon)
			if err != nil {
				return 0, err
			}
			spec := sweep.Spec{
				Banks:    []sweep.Bank{bank},
				Loads:    lcs,
				Policies: sweep.Policies(sched.Sequential(), sched.RoundRobin(), sched.BestAvailable()),
			}
			results, err := sweep.Run(spec, sweep.Options{Workers: workers})
			if err != nil {
				return 0, err
			}
			last := 0.0
			for _, r := range results {
				if r.Err != nil {
					return 0, r.Err
				}
				last = r.Lifetime
			}
			return last, nil
		},
	}
}

// jobsScenario is the pinned 200-case grid of the orchestration cases:
// 2 banks × 10 paper loads × 2 policies × 5 discretization grids. Cells are
// deliberately cheap (short horizon, deterministic policies) so the
// measured delta between the jobs path and the direct sweep is the
// orchestration overhead, not solver time.
func jobsScenario() spec.Scenario {
	loads := make([]spec.Load, len(load.PaperLoadNames))
	for i, name := range load.PaperLoadNames {
		// The paper's 200 min horizon: recovery-heavy loads let banks live
		// past 40 min, and a load that ends before the bank dies is an error.
		loads[i] = spec.Load{Paper: name, HorizonMin: 200}
	}
	// Gamma must divide the battery capacities (5.5 and 11 A·min), so the
	// grid axis sticks to divisors of 0.5.
	steps := []float64{0.01, 0.02, 0.025, 0.05, 0.1}
	grids := make([]spec.Grid, len(steps))
	for i, g := range steps {
		grids[i] = spec.Grid{StepMin: g, UnitAmpMin: g}
	}
	return spec.Scenario{
		Banks: []spec.Bank{
			{Battery: &spec.Battery{Preset: "B1"}, Count: 2},
			{Battery: &spec.Battery{Preset: "B2"}, Count: 1},
		},
		Loads:   loads,
		Solvers: []spec.Solver{{Name: "sequential"}, {Name: "bestof"}},
		Grids:   grids,
	}
}

// jobsSubmitDrainCase measures the full orchestration path: fresh service,
// store, and manager per op (cold-start included — that is the overhead
// being tracked), submit the pinned grid as one job, drain it, read the
// last result. Dedup is defeated by the fresh store, so every op evaluates
// all 200 cells.
func jobsSubmitDrainCase(name string) kase {
	sc := jobsScenario()
	return kase{
		name: name,
		run: func() (float64, error) {
			svc := service.New(service.Options{MaxConcurrent: 2})
			st, err := store.Open("")
			if err != nil {
				return 0, err
			}
			defer st.Close()
			m := jobs.New(svc, st, jobs.Options{Workers: 1})
			defer m.Shutdown(context.Background())
			sub, err := m.Submit(jobs.Request{Scenario: sc, Workers: 2})
			if err != nil {
				return 0, err
			}
			final, err := m.Wait(context.Background(), sub.ID)
			if err != nil {
				return 0, err
			}
			if final.State != jobs.StateDone {
				return 0, fmt.Errorf("benchkit: job finished %s: %s", final.State, final.Error)
			}
			lines, err := m.Results(sub.ID)
			if err != nil {
				return 0, err
			}
			return lastLifetime(lines)
		},
	}
}

// jobsDirectSweepCase is the baseline for the submit-drain case: the same
// pinned grid through sweep.Run with a fresh compile per op, no
// orchestration. The lifetime pin ties the two cases together: both must
// report the same final-cell lifetime.
func jobsDirectSweepCase(name string) kase {
	sc := jobsScenario()
	return kase{
		name: name,
		run: func() (float64, error) {
			sp, err := sc.Compile()
			if err != nil {
				return 0, err
			}
			results, err := sweep.Run(sp, sweep.Options{Workers: 2})
			if err != nil {
				return 0, err
			}
			last := 0.0
			for _, r := range results {
				if r.Err != nil {
					return 0, r.Err
				}
				last = r.Lifetime
			}
			return last, nil
		},
	}
}

// lastLifetime extracts the final cell's lifetime from job result lines.
func lastLifetime(lines []json.RawMessage) (float64, error) {
	if len(lines) == 0 {
		return 0, fmt.Errorf("benchkit: job produced no result lines")
	}
	var res struct {
		LifetimeMin float64 `json:"lifetime_min"`
		Error       string  `json:"error"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &res); err != nil {
		return 0, err
	}
	if res.Error != "" {
		return 0, fmt.Errorf("benchkit: final cell failed: %s", res.Error)
	}
	return res.LifetimeMin, nil
}

// CalibrationCase is a fixed CPU-bound case independent of the repo's code
// paths. Compare uses its ratio between two reports to normalize wall-clock
// comparisons across machines: a runner that is uniformly slower than the
// machine that recorded the committed baseline slows the calibration case by
// the same factor and is not read as a regression.
const CalibrationCase = "calibrate/spin"

func calibrationCase() kase {
	return kase{
		name: CalibrationCase,
		run: func() (float64, error) {
			// Deterministic xorshift mixing, ~1 ms of pure integer work.
			x := uint64(0x9E3779B97F4A7C15)
			var acc uint64
			for i := 0; i < 400_000; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				acc += x
			}
			if acc == 0 {
				return 0, fmt.Errorf("benchkit: calibration accumulator vanished")
			}
			return 0, nil
		},
	}
}

// suite builds the pinned case grid. The homogeneous 4xB1 cell is the
// canonicalization showcase (4! = 24x fewer states than the reference
// search); the high-c bank is the branch-and-bound showcase (the charge
// bound binds when batteries die near the total-charge horizon).
func suite() ([]kase, error) {
	b1 := battery.B1()
	hiC := battery.Params{Capacity: 1.2, C: 0.8, KPrime: 0.2, Label: "HiC"}
	cases := []kase{calibrationCase()}
	add := func(k kase, err error) error {
		if err != nil {
			return err
		}
		cases = append(cases, k)
		return nil
	}
	if err := add(policyCase("policy-lifetime/2xB1/ILs alt/bestof", battery.Bank(b1, 2), "ILs alt", 200, sched.BestAvailable())); err != nil {
		return nil, err
	}
	if err := add(policyCase("policy-lifetime/2xB1/ILl 500/bestof", battery.Bank(b1, 2), "ILl 500", 200, sched.BestAvailable())); err != nil {
		return nil, err
	}
	cases = append(cases, sweepCase("sweep/2xB1/paper/policies", sweep.BankOf("2xB1", b1, 2), nil, 200, 1))
	if err := add(optimalCase("optimal/2xB1/ILs alt", battery.Bank(b1, 2), "ILs alt", 200)); err != nil {
		return nil, err
	}
	if err := add(optimalCase("optimal/2xB1/ILs r1", battery.Bank(b1, 2), "ILs r1", 200)); err != nil {
		return nil, err
	}
	if err := add(optimalCase("optimal/4xB1/CL 500", battery.Bank(b1, 4), "CL 500", 200)); err != nil {
		return nil, err
	}
	if err := add(optimalCase("optimal/3xHiC/ILs alt", battery.Bank(hiC, 3), "ILs alt", 200)); err != nil {
		return nil, err
	}
	// The orchestration pair: the same pinned 200-case grid through the job
	// manager (submit + drain) and through the bare sweep runner. Their
	// ns/op delta is the jobs-layer overhead; informational, not gated.
	cases = append(cases,
		jobsSubmitDrainCase("jobs/submit-drain/200-case-grid"),
		jobsDirectSweepCase("jobs/direct-sweep/200-case-grid"),
	)
	return cases, nil
}

// CaseNames lists the pinned grid in order.
func CaseNames() ([]string, error) {
	cases, err := suite()
	if err != nil {
		return nil, err
	}
	names := make([]string, len(cases))
	for i, c := range cases {
		names[i] = c.name
	}
	return names, nil
}

// Run executes the harness and returns the report.
func Run(opts Options) (Report, error) {
	benchtime := opts.BenchTime
	if benchtime <= 0 {
		benchtime = time.Second
	}
	cases, err := suite()
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		Schema: Schema,
		Suite:  "batsched-pinned-v1",
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
	}
	for _, c := range cases {
		if opts.Match != "" && !strings.HasPrefix(c.name, opts.Match) {
			continue
		}
		var lifetime float64
		m, err := measure(benchtime, func() error {
			lt, err := c.run()
			lifetime = lt
			return err
		})
		if err != nil {
			return Report{}, fmt.Errorf("benchkit: case %s: %w", c.name, err)
		}
		res := Result{Name: c.name, Measurement: m, LifetimeMin: lifetime}
		if c.stats != nil {
			st, err := c.stats()
			if err != nil {
				return Report{}, fmt.Errorf("benchkit: case %s stats: %w", c.name, err)
			}
			res.Stats = &st
		}
		if c.baseline != nil && !opts.SkipBaselines {
			elapsed, st, err := c.baseline()
			if err != nil {
				return Report{}, fmt.Errorf("benchkit: case %s baseline: %w", c.name, err)
			}
			b := &Baseline{Ns: elapsed.Nanoseconds(), States: st.States}
			if res.NsPerOp > 0 {
				b.SpeedupX = Round2(float64(b.Ns) / float64(res.NsPerOp))
			}
			if res.Stats != nil && res.Stats.States > 0 {
				b.StatesRatio = Round2(float64(b.States) / float64(res.Stats.States))
			}
			res.Baseline = b
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// Round2 rounds to two decimals; exported so cmd/batbench can recompute
// derived ratios when it patches re-measured results.
func Round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// measure times fn like the testing package does: grow the iteration count
// until one batch runs for at least benchtime, reporting per-op wall time
// and allocation counts from runtime.MemStats deltas. Self-contained so the
// harness needs no testing flags and works from a plain binary (and in unit
// tests with a tiny benchtime).
func measure(benchtime time.Duration, fn func() error) (Measurement, error) {
	// Warmup run: surfaces errors before timing and charges one-time lazy
	// work (map growth, pools) outside the measurement.
	if err := fn(); err != nil {
		return Measurement{}, err
	}
	var ms runtime.MemStats
	n := int64(1)
	for {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		startMallocs, startBytes := ms.Mallocs, ms.TotalAlloc
		start := time.Now()
		for i := int64(0); i < n; i++ {
			if err := fn(); err != nil {
				return Measurement{}, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		if elapsed >= benchtime || n >= 1_000_000_000 {
			if elapsed <= 0 {
				elapsed = time.Nanosecond
			}
			return Measurement{
				Iterations:  n,
				NsPerOp:     elapsed.Nanoseconds() / n,
				AllocsPerOp: int64(ms.Mallocs-startMallocs) / n,
				BytesPerOp:  int64(ms.TotalAlloc-startBytes) / n,
			}, nil
		}
		// Predict the iterations that reach benchtime with 20% headroom,
		// growing at least 2x and at most 100x per round (the testing
		// package's strategy).
		next := n * 100
		if elapsed > 0 {
			next = int64(1.2 * float64(benchtime.Nanoseconds()) / (float64(elapsed.Nanoseconds()) / float64(n)))
		}
		if next < 2*n {
			next = 2 * n
		}
		if next > 100*n {
			next = 100 * n
		}
		n = next
	}
}

// Regression is one case that slowed beyond the allowed ratio. Kind is
// "ns/op" (wall clock — noisy across machines, retried by the gate) or
// "states" (explored search states — deterministic for fixed code and grid,
// the machine-independent signal).
type Regression struct {
	Name    string
	Kind    string
	Base    int64
	Current int64
	Ratio   float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %d %s vs baseline %d (%.2fx > allowed)", r.Name, r.Current, r.Kind, r.Base, r.Ratio)
}

// GatedPrefixes are the case families the CI regression gate inspects; the
// other cases are informational.
var GatedPrefixes = []string{"policy-lifetime/", "optimal/"}

// Compare flags cases in current that regressed more than maxRatio against
// the same-named case in base, restricted to GatedPrefixes: wall-clock
// ns/op on every gated case, plus explored states on the optimal cases
// (deterministic, so immune to machine differences). Wall-clock ratios are
// divided by the CalibrationCase slowdown when both reports carry it, so a
// uniformly slower machine (CI runner vs the baseline recorder) is excused;
// a faster machine never tightens the gate (the calibration workload is not
// the measured workload). Cases missing from either report are ignored (the
// grid may grow over time).
func Compare(base, current Report, maxRatio float64) []Regression {
	baseBy := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	scale := 1.0
	if b, ok := baseBy[CalibrationCase]; ok && b.NsPerOp > 0 {
		for _, c := range current.Results {
			if c.Name == CalibrationCase && c.NsPerOp > 0 {
				if s := float64(c.NsPerOp) / float64(b.NsPerOp); s > 1 {
					scale = s
				}
				break
			}
		}
	}
	var regs []Regression
	for _, r := range current.Results {
		gated := false
		for _, p := range GatedPrefixes {
			if strings.HasPrefix(r.Name, p) {
				gated = true
				break
			}
		}
		if !gated {
			continue
		}
		b, ok := baseBy[r.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 {
			if ratio := float64(r.NsPerOp) / float64(b.NsPerOp) / scale; ratio > maxRatio {
				regs = append(regs, Regression{Name: r.Name, Kind: "ns/op", Base: b.NsPerOp, Current: r.NsPerOp, Ratio: ratio})
			}
		}
		if b.Stats != nil && r.Stats != nil && b.Stats.States > 0 {
			if ratio := float64(r.Stats.States) / float64(b.Stats.States); ratio > maxRatio {
				regs = append(regs, Regression{Name: r.Name, Kind: "states", Base: b.Stats.States, Current: r.Stats.States, Ratio: ratio})
			}
		}
	}
	return regs
}
