package session

import (
	"context"
	"errors"
	"testing"
	"time"

	"batsched/internal/battery"
	"batsched/internal/core"
	"batsched/internal/spec"
	"batsched/internal/sweep"
)

func b1Session(policy string) spec.Session {
	return spec.Session{
		Bank:   spec.Bank{Battery: &spec.Battery{Preset: "B1"}, Count: 2},
		Policy: spec.Solver{Name: policy},
	}
}

func TestManagerOpenValidation(t *testing.T) {
	m := NewManager(Options{})
	defer m.Shutdown(t.Context())
	if _, err := m.Open(spec.Session{Policy: spec.Solver{Name: "seq"}}); !errors.Is(err, spec.ErrEmptyBank) {
		t.Fatalf("empty bank = %v", err)
	}
	if _, err := m.Open(spec.Session{
		Bank:   spec.Bank{Battery: &spec.Battery{Preset: "B1"}},
		Policy: spec.Solver{Name: "optimal"},
	}); !errors.Is(err, spec.ErrUnknownOnlinePolicy) {
		t.Fatalf("offline-only solver = %v", err)
	}
	// Aliases canonicalize: the session reports the registry name.
	s, err := m.Open(b1Session("rr"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Policy() != "roundrobin" {
		t.Fatalf("policy = %q, want roundrobin", s.Policy())
	}
	if _, err := m.Get(s.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(nope) = %v", err)
	}
}

func TestManagerBoundsSessions(t *testing.T) {
	m := NewManager(Options{MaxSessions: 2})
	defer m.Shutdown(t.Context())
	a, err := m.Open(b1Session("seq"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(b1Session("seq")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(b1Session("seq")); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("third open = %v, want ErrTooManySessions", err)
	}
	// Closing frees a slot.
	if err := m.Close(a.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(b1Session("seq")); err != nil {
		t.Fatal(err)
	}
	if err := m.Close("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Close(nope) = %v", err)
	}
}

// TestIdleEvictionMidStream: an idle session is evicted by the janitor
// while a subscriber streams; the subscriber gets the final closed event.
func TestIdleEvictionMidStream(t *testing.T) {
	m := NewManager(Options{IdleTTL: 30 * time.Millisecond})
	defer m.Shutdown(t.Context())
	s, err := m.Open(b1Session("seq"))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := s.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	var tel Telemetry
	if err := m.Step(s.ID(), 0.25, 1.0, &tel); err != nil {
		t.Fatal(err)
	}
	if ev := <-ch; ev.Kind != "step" {
		t.Fatalf("first event = %+v", ev)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, open := <-ch:
			if !open {
				if got := m.Metrics().Evicted; got != 1 {
					t.Fatalf("evicted counter = %d, want 1", got)
				}
				if _, err := m.Get(s.ID()); !errors.Is(err, ErrNotFound) {
					t.Fatalf("evicted session still resolvable: %v", err)
				}
				return
			}
			if ev.Kind != "closed" {
				t.Fatalf("event while idling = %+v", ev)
			}
		case <-deadline:
			t.Fatal("session was never evicted")
		}
	}
}

// TestStepKeepsSessionAlive: regular steps reset the idle clock.
func TestStepKeepsSessionAlive(t *testing.T) {
	m := NewManager(Options{IdleTTL: 80 * time.Millisecond})
	defer m.Shutdown(t.Context())
	s, err := m.Open(b1Session("seq"))
	if err != nil {
		t.Fatal(err)
	}
	var tel Telemetry
	for i := 0; i < 8; i++ {
		if err := m.Step(s.ID(), 0, 1.0, &tel); err != nil {
			t.Fatalf("step %d (after %d evictions?): %v", i, m.Metrics().Evicted, err)
		}
		time.Sleep(25 * time.Millisecond) // well under the TTL
	}
	if _, err := m.Get(s.ID()); err != nil {
		t.Fatalf("active session evicted: %v", err)
	}
}

// TestShutdownClosesSubscribers: drain closes every session, final events
// reach open streams, and further opens and steps are refused.
func TestShutdownClosesSubscribers(t *testing.T) {
	m := NewManager(Options{})
	s, err := m.Open(b1Session("seq"))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := s.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ev, open := <-ch
	if !open || ev.Kind != "closed" {
		t.Fatalf("drain event = %+v (open=%v)", ev, open)
	}
	if _, open := <-ch; open {
		t.Fatal("subscriber channel survived shutdown")
	}
	if _, err := m.Open(b1Session("seq")); !errors.Is(err, ErrShutdown) {
		t.Fatalf("open after shutdown = %v", err)
	}
	var tel Telemetry
	if err := m.Step(s.ID(), 0, 1.0, &tel); !errors.Is(err, ErrNotFound) {
		t.Fatalf("step after shutdown = %v", err)
	}
	// Second shutdown is a no-op.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestManagerMetrics(t *testing.T) {
	compiles := 0
	m := NewManager(Options{
		CompileBank: func(bats []battery.Params, grid sweep.GridSpec) (*core.Compiled, error) {
			compiles++
			return core.CompileBank(bats, grid.StepMin, grid.UnitAmpMin)
		},
	})
	defer m.Shutdown(t.Context())
	a, err := m.Open(b1Session("seq"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Open(b1Session("efq"))
	if err != nil {
		t.Fatal(err)
	}
	var tel Telemetry
	for i := 0; i < 3; i++ {
		if err := m.Step(a.ID(), 0.25, 1.0, &tel); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Step(b.ID(), 0.25, 1.0, &tel); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(b.ID()); err != nil {
		t.Fatal(err)
	}
	got := m.Metrics()
	if got.Open != 1 || got.Opened != 2 || got.Closed != 1 || got.Steps != 4 {
		t.Fatalf("metrics = %+v", got)
	}
	if len(got.PerPolicy) != 2 ||
		got.PerPolicy[0].Policy != "efq" || got.PerPolicy[0].Steps != 1 ||
		got.PerPolicy[1].Policy != "sequential" || got.PerPolicy[1].Steps != 3 {
		t.Fatalf("per-policy = %+v", got.PerPolicy)
	}
	if compiles != 2 {
		t.Fatalf("CompileBank hook ran %d times, want 2", compiles)
	}
}
