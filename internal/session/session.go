// Package session is the online serving layer of the reproduction: where
// the sweep path consumes whole compiled loads, a session holds one
// persistent dkibam.System and advances it incrementally as draw events
// arrive, scheduling each event with an online policy against live battery
// state. Sessions realise the paper's actual regime — a device switching
// among batteries as demand shows up — and the dynamic scheduling setting
// of Shi's model and the EFQ scheduler (PAPERS.md).
//
// State ownership follows the pool-reuse rule of internal/core: the
// immutable bank artifact (core.CompileBank) is shared by every session on
// the same bank content; each session owns one dkibam.System acquired from
// the artifact's pool and returns it on Close, where Reset truncates the
// appended stream away. A session's Step is allocation-free in steady
// state: the engine compacts consumed epochs, telemetry fills a
// caller-owned buffer, and the policy Bank view is boxed once at
// construction.
package session

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"batsched/internal/core"
	"batsched/internal/dkibam"
	"batsched/internal/load"
	"batsched/internal/sched"
)

// Session errors.
var (
	// ErrBusy means another Step is in flight; sessions serialize steps and
	// report contention instead of queueing (HTTP maps this to 409).
	ErrBusy = errors.New("session: a step is already in progress")
	// ErrClosed means the session was closed (or evicted).
	ErrClosed = errors.New("session: session is closed")
	// ErrDead means every battery has been observed empty; the session's
	// lifetime is final and further steps are refused.
	ErrDead = errors.New("session: all batteries are exhausted")
)

// Telemetry is the per-step state report. Slices are sized to the bank;
// Step fills a caller-owned value, reusing its slice capacity, so a caller
// looping Step with one Telemetry allocates nothing.
type Telemetry struct {
	// Seq numbers the steps of this session from 1.
	Seq uint64 `json:"seq"`
	// Step and Minutes are the engine time after the step.
	Step    int     `json:"step"`
	Minutes float64 `json:"minutes"`
	// Epoch is the absolute load epoch the engine sits in.
	Epoch int `json:"epoch"`
	// Chosen is the battery serving the stepped epoch, or -1 for an idle
	// event. If batteries emptied mid-epoch it is the last replacement.
	Chosen int `json:"chosen"`
	// Decisions counts the scheduling decisions this step triggered.
	Decisions int `json:"decisions"`
	// Deaths is the cumulative number of batteries observed empty.
	Deaths int `json:"deaths"`
	// Dead marks the whole bank exhausted; LifetimeMin is then final.
	Dead bool `json:"dead"`
	// LifetimeMin is the cumulative lifetime in minutes: time served so
	// far while the bank lives, the death time once Dead.
	LifetimeMin float64 `json:"lifetime_min"`
	// Available and Bound hold each battery's available and bound charge
	// wells in A·min; Empty marks batteries observed empty.
	Available []float64 `json:"available_amp_min"`
	Bound     []float64 `json:"bound_amp_min"`
	Empty     []bool    `json:"empty"`
}

// Event is one server-sent update of a session.
type Event struct {
	// Kind is "step" for telemetry updates and "closed" for the final
	// event of a closed or evicted session.
	Kind string
	// Data is the JSON payload: a Telemetry for "step", a small reason
	// object for "closed".
	Data []byte
}

// subBuffer is each subscriber's channel depth; a consumer that falls
// further behind misses intermediate steps (state updates are snapshots,
// so the next event supersedes the missed ones anyway). Drops are
// accounted, not silent: the next frame a lagging subscriber receives
// carries a "dropped" count, and the session totals them for /metrics.
const subBuffer = 16

// subscriber is one event consumer: its channel plus the number of step
// events dropped since it last accepted one (guarded by subMu).
type subscriber struct {
	ch      chan Event
	dropped uint64
}

// Session is one streaming scheduling session. Safe for concurrent use:
// steps serialize via a try-lock (concurrent callers get ErrBusy), and
// subscriptions have their own lock.
type Session struct {
	id     string
	policy string

	mu     sync.Mutex
	art    *core.Compiled
	sys    *dkibam.System
	bank   sched.Bank
	choose sched.Chooser
	closed bool
	seq    uint64

	stepMin    float64
	unitAmpMin float64

	// lastUsed is the unix-nano time of the last step or open, read by the
	// manager's idle janitor without taking the step lock.
	lastUsed atomic.Int64

	subMu   sync.Mutex
	subs    map[int]*subscriber
	nextSub int
	// nSubs mirrors len(subs) so the step path can skip event encoding
	// entirely — without even the subscription lock — when nobody listens.
	nSubs atomic.Int32
	// eventsDropped counts step events dropped across all subscribers over
	// the session's lifetime.
	eventsDropped atomic.Uint64
}

// New opens a session on a shared bank artifact with a fresh per-session
// system from the artifact's pool. The policy name is only a label; the
// chooser does the scheduling.
func New(id string, art *core.Compiled, policyName string, policy sched.Policy) (*Session, error) {
	sys, err := art.AcquireSystem()
	if err != nil {
		return nil, err
	}
	stepMin, unitAmpMin := art.Grid()
	s := &Session{
		id:         id,
		policy:     policyName,
		art:        art,
		sys:        sys,
		bank:       sched.SystemBank(sys),
		choose:     policy.NewChooser(),
		stepMin:    stepMin,
		unitAmpMin: unitAmpMin,
		subs:       map[int]*subscriber{},
	}
	s.lastUsed.Store(time.Now().UnixNano())
	return s, nil
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Policy returns the online policy's registry name.
func (s *Session) Policy() string { return s.policy }

// LastUsed returns the time of the last step (or the open).
func (s *Session) LastUsed() time.Time { return time.Unix(0, s.lastUsed.Load()) }

// Seq returns how many steps the session has served.
func (s *Session) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Step feeds one draw event — currentA amperes for durationMin minutes
// (currentA 0 = idle) — into the engine, advances it through every
// scheduling decision the event triggers, and fills out with the resulting
// telemetry. The event must discretize on the session's grid exactly like
// an offline load segment would (load.CompileSegment), which is what makes
// a replayed recorded load bit-identical to its offline run.
//
// A concurrent Step returns ErrBusy; a step after the bank died returns
// ErrDead wrapped with the final lifetime.
func (s *Session) Step(currentA, durationMin float64, out *Telemetry) error {
	if !s.mu.TryLock() {
		return ErrBusy
	}
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.sys.Dead() {
		return fmt.Errorf("%w (lifetime %g min)", ErrDead, s.sys.Lifetime())
	}
	// Events get the same validation load.New applies to offline segments.
	if currentA < 0 {
		return fmt.Errorf("%w (%v)", load.ErrNegativeCurrent, currentA)
	}
	steps, cur, curTimes, err := load.CompileSegment(
		load.Segment{Duration: durationMin, Current: currentA}, s.stepMin, s.unitAmpMin)
	if err != nil {
		return err
	}
	if err := s.sys.AppendEpoch(steps, curTimes, cur); err != nil {
		return err
	}
	s.lastUsed.Store(time.Now().UnixNano())
	chosen := dkibam.NoBattery
	decisions := 0
	for {
		dec, pending, err := s.sys.AdvanceToDecision()
		if err != nil {
			// ErrLoadExhausted: the engine caught up with the appended
			// stream — the step is complete.
			break
		}
		if !pending {
			break // the bank died serving this event
		}
		idx := s.choose(s.bank, sched.Decision{
			Reason:  dec.Reason,
			Minutes: float64(dec.Step) * s.stepMin,
			Alive:   dec.Alive,
		})
		if err := s.sys.Choose(idx); err != nil {
			return err
		}
		chosen = idx
		decisions++
	}
	s.seq++
	s.fill(out, chosen, decisions)
	if s.nSubs.Load() > 0 {
		s.publishStep(out)
	}
	return nil
}

// fill writes the post-step state into out, reusing its slice capacity.
func (s *Session) fill(out *Telemetry, chosen, decisions int) {
	n := s.sys.Batteries()
	out.Seq = s.seq
	out.Step = s.sys.Step()
	out.Minutes = s.sys.Minutes()
	out.Epoch = s.sys.Epoch()
	out.Chosen = chosen
	out.Decisions = decisions
	out.Deaths = n - s.sys.AliveCount()
	out.Dead = s.sys.Dead()
	if out.Dead {
		out.LifetimeMin = s.sys.Lifetime()
	} else {
		out.LifetimeMin = s.sys.Minutes()
	}
	out.Available = out.Available[:0]
	out.Bound = out.Bound[:0]
	out.Empty = out.Empty[:0]
	for i := 0; i < n; i++ {
		c := s.sys.Cell(i)
		d := s.sys.Disc(i)
		avail := d.AvailableAmpMin(c)
		out.Available = append(out.Available, avail)
		out.Bound = append(out.Bound, d.TotalAmpMin(c)-avail)
		out.Empty = append(out.Empty, c.Empty)
	}
}

// Dead reports whether the bank is exhausted.
func (s *Session) Dead() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed && s.sys.Dead()
}

// Snapshot fills out with the current state without stepping; Seq is the
// last step's number and Chosen/Decisions are zeroed. It blocks behind an
// in-flight step.
func (s *Session) Snapshot(out *Telemetry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.fill(out, dkibam.NoBattery, 0)
	return nil
}

// Close shuts the session: it waits out an in-flight step, returns the
// system to the artifact pool, and delivers a final "closed" event (with
// the given reason) to every subscriber before closing their channels.
// Closing twice is a no-op.
func (s *Session) Close(reason string) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.art.ReleaseSystem(s.sys)
	s.sys = nil
	s.mu.Unlock()

	data := []byte(fmt.Sprintf(`{"reason":%q}`, reason))
	s.subMu.Lock()
	for id, sub := range s.subs {
		select {
		case sub.ch <- Event{Kind: "closed", Data: data}:
		default:
		}
		close(sub.ch)
		delete(s.subs, id)
	}
	s.nSubs.Store(0)
	s.subMu.Unlock()
}

// DroppedEvents returns how many step events were dropped on full
// subscriber buffers over the session's lifetime.
func (s *Session) DroppedEvents() uint64 { return s.eventsDropped.Load() }

// Subscribe registers an event consumer and returns its channel plus a
// cancel function. The channel closes when the consumer cancels or the
// session closes; a consumer that stops draining misses events rather than
// blocking the step path. Lock order is mu before subMu throughout the
// session (Step holds mu while publishing), so the closed check here must
// nest the same way — a subscription racing Close either registers before
// the final broadcast or sees closed and fails.
func (s *Session) Subscribe() (<-chan Event, func(), error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, ErrClosed
	}
	s.subMu.Lock()
	id := s.nextSub
	s.nextSub++
	sub := &subscriber{ch: make(chan Event, subBuffer)}
	s.subs[id] = sub
	s.nSubs.Store(int32(len(s.subs)))
	s.subMu.Unlock()
	s.mu.Unlock()
	cancel := func() {
		s.subMu.Lock()
		defer s.subMu.Unlock()
		if c, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(c.ch)
			s.nSubs.Store(int32(len(s.subs)))
		}
	}
	return sub.ch, cancel, nil
}

// marshalTelemetry is the one telemetry encoding shared by events and the
// HTTP layer.
func marshalTelemetry(tel *Telemetry) ([]byte, error) { return json.Marshal(tel) }

// publishStep encodes the telemetry once and offers it to every
// subscriber. A subscriber with a full buffer has the event dropped and
// its tally bumped; the next frame it does accept is re-encoded with a
// "dropped" field carrying that tally, so a lagging consumer can tell a
// gap from a quiet session.
func (s *Session) publishStep(tel *Telemetry) {
	data, err := marshalTelemetry(tel)
	if err != nil {
		return
	}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for _, sub := range s.subs {
		frame := data
		if sub.dropped > 0 {
			frame = spliceDropped(data, sub.dropped)
		}
		select {
		case sub.ch <- Event{Kind: "step", Data: frame}:
			sub.dropped = 0
		default:
			sub.dropped++
			s.eventsDropped.Add(1)
		}
	}
}

// spliceDropped rewrites a marshalled telemetry object to carry a
// trailing "dropped" count, without re-marshalling the telemetry.
func spliceDropped(data []byte, dropped uint64) []byte {
	out := make([]byte, 0, len(data)+24)
	out = append(out, data[:len(data)-1]...)
	out = append(out, `,"dropped":`...)
	out = strconv.AppendUint(out, dropped, 10)
	return append(out, '}')
}
