// Session-layer robustness: slow-subscriber drop accounting and the
// TTL-eviction / concurrent-Step race.
package session

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"batsched/internal/sched"
)

// A subscriber that stops draining loses events — but not silently: the
// session tallies the drops, and the next frame the subscriber accepts
// carries them in a "dropped" field.
func TestSlowSubscriberDroppedAccounting(t *testing.T) {
	art := bankArtifact(t, 2)
	s := openSession(t, art, sched.Sequential())
	defer s.Close("done")
	ch, cancel, err := s.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// Overflow the buffer by 4 without draining.
	var tel Telemetry
	const overflow = 4
	for i := 0; i < subBuffer+overflow; i++ {
		if err := s.Step(0, 1.0, &tel); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.DroppedEvents(); got != overflow {
		t.Fatalf("DroppedEvents = %d, want %d", got, overflow)
	}

	// The buffered frames predate the gap and carry no dropped field.
	for i := 0; i < subBuffer; i++ {
		ev := <-ch
		var frame map[string]any
		if err := json.Unmarshal(ev.Data, &frame); err != nil {
			t.Fatalf("frame %d is not valid JSON: %v", i, err)
		}
		if _, ok := frame["dropped"]; ok {
			t.Fatalf("frame %d carries a dropped field before the gap", i)
		}
	}

	// The next frame the (now-drained) subscriber accepts reports the gap.
	if err := s.Step(0, 1.0, &tel); err != nil {
		t.Fatal(err)
	}
	ev := <-ch
	var frame struct {
		Seq     uint64 `json:"seq"`
		Dropped uint64 `json:"dropped"`
	}
	if err := json.Unmarshal(ev.Data, &frame); err != nil {
		t.Fatalf("spliced frame is not valid JSON: %v\n%s", err, ev.Data)
	}
	if frame.Dropped != overflow {
		t.Fatalf("post-gap frame dropped = %d, want %d\n%s", frame.Dropped, overflow, ev.Data)
	}
	if want := uint64(subBuffer + overflow + 1); frame.Seq != want {
		t.Fatalf("post-gap frame seq = %d, want %d", frame.Seq, want)
	}

	// Delivery resets the tally: the following frame is plain again, and
	// the session total holds.
	if err := s.Step(0, 1.0, &tel); err != nil {
		t.Fatal(err)
	}
	ev = <-ch
	var next map[string]any
	if err := json.Unmarshal(ev.Data, &next); err != nil {
		t.Fatal(err)
	}
	if _, ok := next["dropped"]; ok {
		t.Fatalf("dropped tally did not reset after delivery: %s", ev.Data)
	}
	if got := s.DroppedEvents(); got != overflow {
		t.Fatalf("session total moved to %d after deliveries, want %d", got, overflow)
	}
}

// The manager's EventsDropped metric aggregates open sessions live and
// keeps a closed session's tally after it is gone.
func TestManagerCountsDroppedEvents(t *testing.T) {
	art := bankArtifact(t, 2)
	m := NewManager(Options{})
	defer m.Shutdown(t.Context())
	s, err := m.open(art, "sequential", sched.Sequential())
	if err != nil {
		t.Fatal(err)
	}
	_, cancel, err := s.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	var tel Telemetry
	const overflow = 3
	for i := 0; i < subBuffer+overflow; i++ {
		if err := m.Step(s.ID(), 0, 1.0, &tel); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Metrics().EventsDropped; got != overflow {
		t.Fatalf("live EventsDropped = %d, want %d", got, overflow)
	}
	if err := m.Close(s.ID()); err != nil {
		t.Fatal(err)
	}
	if got := m.Metrics().EventsDropped; got != overflow {
		t.Fatalf("EventsDropped after close = %d, want %d (tally lost on close)", got, overflow)
	}
}

// TTL eviction racing a concurrent Step: eviction either loses the race
// (the step completes with coherent telemetry) or waits it out; a step on
// the just-evicted session fails cleanly with ErrClosed (HTTP 410) / the
// manager's ErrNotFound — never a panic, never torn telemetry.
func TestEvictionRacingStep(t *testing.T) {
	art := bankArtifact(t, 2)
	for round := 0; round < 50; round++ {
		m := NewManager(Options{IdleTTL: time.Hour})
		s, err := m.open(art, "sequential", sched.Sequential())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			var tel Telemetry
			var lastSeq uint64
			for {
				err := m.Step(s.ID(), 0, 1.0, &tel)
				switch {
				case err == nil:
					// Telemetry from a winning step must be whole: the
					// next seq, slices sized to the bank.
					if tel.Seq != lastSeq+1 {
						t.Errorf("torn telemetry: seq %d after %d", tel.Seq, lastSeq)
						return
					}
					if len(tel.Available) != 2 || len(tel.Bound) != 2 || len(tel.Empty) != 2 {
						t.Errorf("torn telemetry: bank slices %d/%d/%d",
							len(tel.Available), len(tel.Bound), len(tel.Empty))
						return
					}
					lastSeq = tel.Seq
				case errors.Is(err, ErrNotFound), errors.Is(err, ErrClosed):
					return // evicted under us — the clean outcome
				case errors.Is(err, ErrBusy):
					// contention with nothing; keep going
				default:
					t.Errorf("step during eviction: %v", err)
					return
				}
			}
		}()
		// Force-evict concurrently with the stepper by pretending the TTL
		// passed. Close inside waits out any in-flight step.
		m.evictIdle(time.Now().Add(2 * time.Hour))
		wg.Wait()

		// The just-evicted session refuses further use, cleanly.
		var tel Telemetry
		if err := s.Step(0, 1.0, &tel); !errors.Is(err, ErrClosed) {
			t.Fatalf("step on evicted session = %v, want ErrClosed", err)
		}
		if err := m.Step(s.ID(), 0, 1.0, &tel); !errors.Is(err, ErrNotFound) {
			t.Fatalf("manager step on evicted session = %v, want ErrNotFound", err)
		}
		if got := m.Metrics().Evicted; got != 1 {
			t.Fatalf("evicted = %d, want 1", got)
		}
		m.Shutdown(t.Context())
	}
}
