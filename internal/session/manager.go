package session

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"batsched/internal/battery"
	"batsched/internal/core"
	"batsched/internal/obs"
	"batsched/internal/sched"
	"batsched/internal/spec"
	"batsched/internal/sweep"
)

// Manager errors.
var (
	// ErrTooManySessions means the bounded session table is full (HTTP 429).
	ErrTooManySessions = errors.New("session: too many open sessions")
	// ErrNotFound means no session has the given id.
	ErrNotFound = errors.New("session: no such session")
	// ErrShutdown means the manager is draining and opens are refused.
	ErrShutdown = errors.New("session: manager is shut down")
)

// Defaults for Options zero values.
const (
	DefaultMaxSessions = 64
	DefaultIdleTTL     = 5 * time.Minute
)

// Options tune a Manager.
type Options struct {
	// MaxSessions bounds the number of concurrently open sessions; opens
	// beyond it fail with ErrTooManySessions. <= 0 means 64.
	MaxSessions int
	// IdleTTL evicts sessions with no step for this long. <= 0 means 5
	// minutes.
	IdleTTL time.Duration
	// CompileBank supplies the shared bank artifact for a resolved bank on
	// a grid; nil means core.CompileBank uncached. cmd/batserve plugs the
	// service's bounded artifact cache in here.
	CompileBank func(bats []battery.Params, grid sweep.GridSpec) (*core.Compiled, error)
	// StepLatency supplies the histogram that records a policy's step
	// latency (seconds); nil means a standalone default-bucket histogram
	// per policy. cmd/batserve plugs registry-owned histograms in here so
	// step latency shows up in /metrics as a labeled bucket family.
	StepLatency func(policy string) *obs.Histogram
}

// Manager owns the session table: bounded opens, idle eviction, step
// accounting, and graceful shutdown. Safe for concurrent use.
type Manager struct {
	opts Options

	mu       sync.Mutex
	sessions map[string]*Session
	perPol   map[string]*obs.Histogram
	opened   uint64
	closed   uint64
	evicted  uint64
	steps    uint64
	// dropped accumulates the dropped-event tallies of closed sessions;
	// open sessions are summed live in Metrics.
	dropped uint64
	down    bool

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// NewManager builds a manager and starts its idle-eviction janitor.
func NewManager(opts Options) *Manager {
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	if opts.IdleTTL <= 0 {
		opts.IdleTTL = DefaultIdleTTL
	}
	if opts.CompileBank == nil {
		opts.CompileBank = func(bats []battery.Params, grid sweep.GridSpec) (*core.Compiled, error) {
			return core.CompileBank(bats, grid.StepMin, grid.UnitAmpMin)
		}
	}
	if opts.StepLatency == nil {
		opts.StepLatency = func(string) *obs.Histogram { return obs.NewHistogram(nil) }
	}
	m := &Manager{
		opts:        opts,
		sessions:    map[string]*Session{},
		perPol:      map[string]*obs.Histogram{},
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	go m.janitor()
	return m
}

// newID returns a fresh random session id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("session: id entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Open resolves a session spec — bank, online policy, optional grid — and
// opens a session on the shared bank artifact.
func (m *Manager) Open(sp spec.Session) (*Session, error) {
	_, bats, err := sp.Bank.Resolve()
	if err != nil {
		return nil, err
	}
	var grid spec.Grid
	if sp.Grid != nil {
		grid = *sp.Grid
	}
	policy, err := spec.BuildOnlinePolicy(sp.Policy)
	if err != nil {
		return nil, err
	}
	canonical, ok := spec.LookupOnline(sp.Policy.Name)
	if !ok {
		return nil, fmt.Errorf("%w %q", spec.ErrUnknownOnlinePolicy, sp.Policy.Name)
	}
	art, err := m.opts.CompileBank(bats, grid.Resolve())
	if err != nil {
		return nil, err
	}
	return m.open(art, canonical.Name, policy)
}

// open installs a session for an already-compiled artifact and policy.
func (m *Manager) open(art *core.Compiled, policyName string, policy sched.Policy) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return nil, ErrShutdown
	}
	if len(m.sessions) >= m.opts.MaxSessions {
		return nil, fmt.Errorf("%w (limit %d)", ErrTooManySessions, m.opts.MaxSessions)
	}
	id := newID()
	for m.sessions[id] != nil {
		id = newID()
	}
	s, err := New(id, art, policyName, policy)
	if err != nil {
		return nil, err
	}
	m.sessions[id] = s
	m.opened++
	return s, nil
}

// Get returns the open session with the given id.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w (%q)", ErrNotFound, id)
	}
	return s, nil
}

// Step routes one draw event to a session and accounts for it: the step
// counter, the per-policy latency ledger, and the idle clock all live
// here, so every transport (HTTP, tests, benchmarks-through-manager) is
// metered the same way.
func (m *Manager) Step(id string, currentA, durationMin float64, out *Telemetry) error {
	s, err := m.Get(id)
	if err != nil {
		return err
	}
	start := time.Now()
	if err := s.Step(currentA, durationMin, out); err != nil {
		return err
	}
	elapsed := time.Since(start)
	m.mu.Lock()
	m.steps++
	h := m.perPol[s.Policy()]
	if h == nil {
		h = m.opts.StepLatency(s.Policy())
		m.perPol[s.Policy()] = h
	}
	m.mu.Unlock()
	h.Observe(elapsed.Seconds())
	return nil
}

// Close closes and removes one session.
func (m *Manager) Close(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
		m.closed++
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w (%q)", ErrNotFound, id)
	}
	s.Close("closed")
	m.harvestDropped(s)
	return nil
}

// harvestDropped folds a closed session's dropped-event tally into the
// manager's lifetime counter. Must run after s.Close (the count is final
// then: Close waits out an in-flight step, so no publish follows it).
func (m *Manager) harvestDropped(s *Session) {
	if n := s.DroppedEvents(); n > 0 {
		m.mu.Lock()
		m.dropped += n
		m.mu.Unlock()
	}
}

// janitor evicts idle sessions until the manager shuts down.
func (m *Manager) janitor() {
	defer close(m.janitorDone)
	interval := m.opts.IdleTTL / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-ticker.C:
			m.evictIdle(time.Now())
		}
	}
}

// evictIdle closes every session idle past the TTL.
func (m *Manager) evictIdle(now time.Time) {
	var victims []*Session
	m.mu.Lock()
	for id, s := range m.sessions {
		if now.Sub(s.LastUsed()) > m.opts.IdleTTL {
			delete(m.sessions, id)
			m.evicted++
			victims = append(victims, s)
		}
	}
	m.mu.Unlock()
	for _, s := range victims {
		s.Close("idle-evicted")
		m.harvestDropped(s)
	}
}

// Shutdown closes every session (delivering final events to open SSE
// subscribers, which unblocks their in-flight HTTP requests) and stops the
// janitor. It must run before the HTTP server's own drain — a streaming
// /events request never ends on its own, so the server-side close here is
// what lets http.Server.Shutdown finish. Further opens fail with
// ErrShutdown. The context bounds nothing today (session closes only wait
// out an in-flight step) but keeps the drain signature uniform with the
// job manager's.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.down {
		m.mu.Unlock()
		<-m.janitorDone
		return nil
	}
	m.down = true
	victims := make([]*Session, 0, len(m.sessions))
	for id, s := range m.sessions {
		delete(m.sessions, id)
		m.closed++
		victims = append(victims, s)
	}
	m.mu.Unlock()
	close(m.janitorStop)
	for _, s := range victims {
		s.Close("shutdown")
		m.harvestDropped(s)
	}
	<-m.janitorDone
	return ctx.Err()
}

// PolicyLatency is one policy's step-latency ledger, distilled from its
// histogram: the mean survives for the legacy gauge, and the tail — which a
// mean hides entirely — is exposed as interpolated percentiles.
type PolicyLatency struct {
	// Policy is the online policy's registry name.
	Policy string
	// Steps counts the policy's completed steps; MeanNanos is the mean
	// step latency over them.
	Steps     uint64
	MeanNanos uint64
	// P50Nanos, P95Nanos, and P99Nanos are step-latency percentiles
	// estimated from the histogram buckets by linear interpolation.
	P50Nanos uint64
	P95Nanos uint64
	P99Nanos uint64
}

// Metrics is a counter snapshot for /metrics.
type Metrics struct {
	// Open is the current session count; the rest are lifetime counters.
	Open    int
	Opened  uint64
	Closed  uint64
	Evicted uint64
	Steps   uint64
	// EventsDropped counts step events dropped on full subscriber buffers
	// across all sessions, open and closed.
	EventsDropped uint64
	// PerPolicy is sorted by policy name for stable exposition.
	PerPolicy []PolicyLatency
}

// Metrics returns a snapshot of the manager's counters.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Metrics{
		Open:          len(m.sessions),
		Opened:        m.opened,
		Closed:        m.closed,
		Evicted:       m.evicted,
		Steps:         m.steps,
		EventsDropped: m.dropped,
	}
	for _, s := range m.sessions {
		out.EventsDropped += s.DroppedEvents()
	}
	for name, h := range m.perPol {
		snap := h.Snapshot()
		pl := PolicyLatency{Policy: name, Steps: snap.Count()}
		if pl.Steps > 0 {
			pl.MeanNanos = uint64(snap.Mean() * 1e9)
			pl.P50Nanos = uint64(snap.Quantile(0.50) * 1e9)
			pl.P95Nanos = uint64(snap.Quantile(0.95) * 1e9)
			pl.P99Nanos = uint64(snap.Quantile(0.99) * 1e9)
		}
		out.PerPolicy = append(out.PerPolicy, pl)
	}
	sort.Slice(out.PerPolicy, func(i, j int) bool {
		return out.PerPolicy[i].Policy < out.PerPolicy[j].Policy
	})
	return out
}
