package session

import (
	"errors"
	"math"
	"sync"
	"testing"

	"batsched/internal/battery"
	"batsched/internal/core"
	"batsched/internal/dkibam"
	"batsched/internal/load"
	"batsched/internal/sched"
	"batsched/internal/spec"
)

func bankArtifact(t *testing.T, n int) *core.Compiled {
	t.Helper()
	art, err := core.CompileBank(battery.Bank(battery.B1(), n), dkibam.PaperStepMin, dkibam.PaperUnitAmpMin)
	if err != nil {
		t.Fatal(err)
	}
	return art
}

func openSession(t *testing.T, art *core.Compiled, p sched.Policy) *Session {
	t.Helper()
	s, err := New("test", art, p.Name(), p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestReplayMatchesOffline is the acceptance differential: replaying every
// recorded paper load through a session, event by event, yields the
// bit-identical lifetime of the offline engine run under the same policy.
func TestReplayMatchesOffline(t *testing.T) {
	policies := []func() sched.Policy{sched.Sequential, sched.RoundRobin, sched.GreedySOC, sched.EFQ}
	for _, bankSize := range []int{2, 3} {
		bats := battery.Bank(battery.B1(), bankSize)
		art := bankArtifact(t, bankSize)
		for _, name := range load.PaperLoadNames {
			ld, err := load.Paper(name, load.DefaultHorizon)
			if err != nil {
				t.Fatal(err)
			}
			offline, err := core.Compile(bats, ld, dkibam.PaperStepMin, dkibam.PaperUnitAmpMin)
			if err != nil {
				t.Fatal(err)
			}
			for _, mk := range policies {
				p := mk()
				want, err := offline.PolicyLifetime(p)
				if err != nil {
					t.Fatalf("%s/%s offline: %v", name, p.Name(), err)
				}
				s := openSession(t, art, mk())
				var tel Telemetry
				for i := 0; i < ld.Len() && !tel.Dead; i++ {
					seg := ld.Segment(i)
					if err := s.Step(seg.Current, seg.Duration, &tel); err != nil {
						t.Fatalf("%s/%s step %d: %v", name, p.Name(), i, err)
					}
				}
				if !tel.Dead {
					t.Fatalf("%s/%s (%d batteries): session survived the recorded load", name, p.Name(), bankSize)
				}
				if tel.LifetimeMin != want {
					t.Fatalf("%s/%s (%d batteries): session lifetime %v, offline %v",
						name, p.Name(), bankSize, tel.LifetimeMin, want)
				}
				s.Close("done")
			}
		}
	}
}

// TestTelemetryShape checks the per-step report on a hand-built stream.
func TestTelemetryShape(t *testing.T) {
	art := bankArtifact(t, 2)
	s := openSession(t, art, sched.RoundRobin())
	var tel Telemetry

	// Idle event: no decision, nothing chosen, charge untouched.
	if err := s.Step(0, 1.0, &tel); err != nil {
		t.Fatal(err)
	}
	if tel.Seq != 1 || tel.Chosen != -1 || tel.Decisions != 0 || tel.Deaths != 0 || tel.Dead {
		t.Fatalf("idle telemetry = %+v", tel)
	}
	if tel.Minutes != 1.0 || tel.LifetimeMin != 1.0 {
		t.Fatalf("idle time = %v/%v, want 1.0", tel.Minutes, tel.LifetimeMin)
	}
	if len(tel.Available) != 2 || len(tel.Bound) != 2 || len(tel.Empty) != 2 {
		t.Fatalf("bank slices sized %d/%d/%d", len(tel.Available), len(tel.Bound), len(tel.Empty))
	}
	full := tel.Available[0] + tel.Bound[0]
	if math.Abs(full-battery.B1().Capacity) > 1e-9 {
		t.Fatalf("battery 0 holds %v A·min, want %v", full, battery.B1().Capacity)
	}

	// Job event: round robin starts with battery 0; charge moves out of the
	// available well.
	availBefore := tel.Available[0]
	if err := s.Step(0.25, 2.0, &tel); err != nil {
		t.Fatal(err)
	}
	if tel.Seq != 2 || tel.Chosen != 0 || tel.Decisions != 1 {
		t.Fatalf("job telemetry = %+v", tel)
	}
	if tel.Available[0] >= availBefore {
		t.Fatalf("battery 0 available %v did not drop from %v", tel.Available[0], availBefore)
	}
	// Second job goes to battery 1.
	if err := s.Step(0.25, 2.0, &tel); err != nil {
		t.Fatal(err)
	}
	if tel.Chosen != 1 {
		t.Fatalf("second job chose %d, want 1", tel.Chosen)
	}
	s.Close("done")
}

// TestStepAfterExhaustion: once the bank dies, the step reporting it says
// Dead with the final lifetime, and any further step fails with ErrDead.
func TestStepAfterExhaustion(t *testing.T) {
	art := bankArtifact(t, 2)
	s := openSession(t, art, sched.Sequential())
	var tel Telemetry
	for i := 0; i < 10000 && !tel.Dead; i++ {
		if err := s.Step(0.5, 5.0, &tel); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if !tel.Dead || tel.Deaths != 2 || tel.LifetimeMin <= 0 {
		t.Fatalf("death telemetry = %+v", tel)
	}
	final := tel.LifetimeMin
	err := s.Step(0.5, 5.0, &tel)
	if !errors.Is(err, ErrDead) {
		t.Fatalf("step after exhaustion = %v, want ErrDead", err)
	}
	if tel.LifetimeMin != final {
		t.Fatal("failed step overwrote telemetry")
	}
	s.Close("done")
}

// TestStepRejectsBadEvents: events that do not discretize on the grid (or
// are nonsense) are rejected without advancing the session.
func TestStepRejectsBadEvents(t *testing.T) {
	art := bankArtifact(t, 1)
	s := openSession(t, art, sched.Sequential())
	defer s.Close("done")
	var tel Telemetry
	for _, ev := range []struct{ cur, dur float64 }{
		{0.25, 0},       // zero duration
		{0.25, -1},      // negative duration
		{0.25, 0.005},   // below one grid step
		{-0.25, 1},      // negative draw
		{0.0001234, 10}, // current with no small rational form
	} {
		if err := s.Step(ev.cur, ev.dur, &tel); err == nil {
			t.Fatalf("event %+v accepted", ev)
		}
	}
	if err := s.Step(0.25, 1, &tel); err != nil {
		t.Fatal(err)
	}
	if tel.Seq != 1 || tel.Minutes != 1 {
		t.Fatalf("rejected events advanced the session: %+v", tel)
	}
}

// TestConcurrentStepsSerialize: overlapping steps on one session never
// interleave — exactly one proceeds, the rest fail fast with ErrBusy.
func TestConcurrentStepsSerialize(t *testing.T) {
	art := bankArtifact(t, 2)
	s := openSession(t, art, sched.Sequential())
	defer s.Close("done")

	const attempts = 32
	var wg sync.WaitGroup
	var mu sync.Mutex
	ok, busy := 0, 0
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var tel Telemetry
			err := s.Step(0, 50.0, &tel) // idle: the bank never dies under contention
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, ErrBusy):
				busy++
			default:
				t.Errorf("unexpected step error: %v", err)
			}
		}()
	}
	wg.Wait()
	if ok+busy != attempts {
		t.Fatalf("ok %d + busy %d != %d", ok, busy, attempts)
	}
	if ok == 0 {
		t.Fatal("every step reported busy")
	}
	var tel Telemetry
	if err := s.Step(0, 1.0, &tel); err != nil {
		t.Fatal(err)
	}
	if int(tel.Seq) != ok+1 {
		t.Fatalf("session served %d steps, want %d (the non-busy ones)", tel.Seq-1, ok)
	}
}

// TestEventsStream: subscribers receive one "step" event per step and a
// final "closed" event; cancel detaches cleanly.
func TestEventsStream(t *testing.T) {
	art := bankArtifact(t, 2)
	s := openSession(t, art, sched.Sequential())
	ch, cancel, err := s.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	var tel Telemetry
	for i := 0; i < 3; i++ {
		if err := s.Step(0.25, 1.0, &tel); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		ev := <-ch
		if ev.Kind != "step" || len(ev.Data) == 0 {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	s.Close("done")
	ev, open := <-ch
	if !open || ev.Kind != "closed" {
		t.Fatalf("final event = %+v (open=%v), want closed", ev, open)
	}
	if _, open := <-ch; open {
		t.Fatal("channel still open after closed event")
	}
	if _, _, err := s.Subscribe(); !errors.Is(err, ErrClosed) {
		t.Fatalf("subscribe after close = %v, want ErrClosed", err)
	}
}

// TestClosedSessionRefusesSteps and double close stays a no-op.
func TestClosedSessionRefusesSteps(t *testing.T) {
	art := bankArtifact(t, 1)
	s := openSession(t, art, sched.Sequential())
	s.Close("done")
	s.Close("again")
	var tel Telemetry
	if err := s.Step(0.25, 1.0, &tel); !errors.Is(err, ErrClosed) {
		t.Fatalf("step on closed session = %v, want ErrClosed", err)
	}
	if err := s.Snapshot(&tel); !errors.Is(err, ErrClosed) {
		t.Fatalf("snapshot on closed session = %v, want ErrClosed", err)
	}
}

// TestPoolReuseAcrossSessions: a session opened after another closed gets
// the pooled system back, fully reset — same trajectory from a fresh start.
func TestPoolReuseAcrossSessions(t *testing.T) {
	art := bankArtifact(t, 2)
	run := func() (Telemetry, *dkibam.System) {
		s := openSession(t, art, sched.RoundRobin())
		var tel Telemetry
		for i := 0; i < 5; i++ {
			if err := s.Step(0.25, 2.0, &tel); err != nil {
				t.Fatal(err)
			}
		}
		sys := s.sys
		s.Close("done")
		return tel, sys
	}
	first, firstSys := run()
	second, secondSys := run()
	if firstSys != secondSys {
		t.Log("pool did not recycle the system (GC ran); telemetry must still match")
	}
	if first.Minutes != second.Minutes || first.Seq != second.Seq {
		t.Fatalf("reused session diverged: %+v vs %+v", first, second)
	}
	for i := range first.Available {
		if first.Available[i] != second.Available[i] || first.Bound[i] != second.Bound[i] {
			t.Fatalf("battery %d state diverged on reuse: %v/%v vs %v/%v",
				i, first.Available[i], first.Bound[i], second.Available[i], second.Bound[i])
		}
	}
}

// TestSessionSpecRoundTrip drives New via the spec layer the way batserve
// does.
func TestSessionSpecRoundTrip(t *testing.T) {
	sp, err := spec.ParseSession([]byte(`{
		"bank": {"battery": {"preset": "B1"}, "count": 2},
		"policy": "efq"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Options{})
	defer m.Shutdown(t.Context())
	s, err := m.Open(sp)
	if err != nil {
		t.Fatal(err)
	}
	if s.Policy() != "efq" {
		t.Fatalf("policy = %q", s.Policy())
	}
	var tel Telemetry
	if err := m.Step(s.ID(), 0.25, 1.0, &tel); err != nil {
		t.Fatal(err)
	}
	if tel.Chosen != 0 {
		t.Fatalf("efq first choice = %d, want 0", tel.Chosen)
	}
}
