// Package sched implements the battery-scheduling schemes compared in
// Section 6 of the DSN 2009 paper: sequential, round robin, best-of-two
// (generalised to best-of-N), and the optimal schedule found by exhaustive
// search over the scheduling decisions of the discretized battery system.
//
// Policies are written against a small Bank view, so the same policy drives
// both the discretized simulator (internal/dkibam) and the continuous
// simulator in this package.
package sched

import (
	"batsched/internal/dkibam"
	"batsched/internal/load"
)

// Bank is a policy's read-only view of the battery bank at a scheduling
// point.
type Bank interface {
	// Batteries returns the number of batteries.
	Batteries() int
	// Alive reports whether battery i may still be used.
	Alive(i int) bool
	// Available returns battery i's available charge y1 in A·min.
	Available(i int) float64
	// Total returns battery i's total remaining charge gamma in A·min.
	Total(i int) float64
}

// Reason tells a policy why a decision is needed.
type Reason = dkibam.Reason

// Decision reasons (re-exported from the discrete engine so policies work
// against either simulator).
const (
	JobStart       = dkibam.JobStart
	BatteryEmptied = dkibam.BatteryEmptied
)

// Decision describes a pending scheduling decision.
type Decision struct {
	// Reason is why a battery must be chosen.
	Reason Reason
	// Minutes is the decision time.
	Minutes float64
	// Alive lists the batteries that may be chosen. It aliases a scratch
	// buffer owned by the simulation and is only valid for the duration of
	// the chooser call; choosers that retain it across decisions must copy
	// it.
	Alive []int
}

// Chooser picks one of dec.Alive at a scheduling point.
type Chooser func(bank Bank, dec Decision) int

// Policy is a deterministic battery-scheduling scheme. NewChooser returns a
// fresh chooser per run because policies may carry per-run state (the round
// robin rotation, for example).
type Policy interface {
	// Name returns the scheme's display name as used in Table 5.
	Name() string
	// NewChooser returns a chooser for one simulation run.
	NewChooser() Chooser
}

// sequential uses the batteries one after the other: battery i+1 is only
// touched once battery i is empty. The paper shows this is the worst
// possible schedule.
type sequential struct{}

// Sequential returns the sequential scheduling scheme.
func Sequential() Policy { return sequential{} }

func (sequential) Name() string { return "sequential" }

func (sequential) NewChooser() Chooser {
	return func(_ Bank, dec Decision) int {
		return dec.Alive[0]
	}
}

// roundRobin assigns job k to battery k mod B in a fixed order, skipping
// empty batteries. A battery that empties mid-job is replaced by the next
// alive battery in the rotation.
type roundRobin struct{}

// RoundRobin returns the round robin scheduling scheme.
func RoundRobin() Policy { return roundRobin{} }

func (roundRobin) Name() string { return "round robin" }

func (roundRobin) NewChooser() Chooser {
	job := 0
	last := 0
	return func(bank Bank, dec Decision) int {
		b := bank.Batteries()
		var start int
		switch dec.Reason {
		case JobStart:
			start = job % b
			job++
		default: // BatteryEmptied: continue with the next battery in order.
			start = (last + 1) % b
		}
		for i := 0; i < b; i++ {
			idx := (start + i) % b
			if bank.Alive(idx) {
				last = idx
				return idx
			}
		}
		return dec.Alive[0] // unreachable while the system is alive
	}
}

// bestAvailable picks the battery with the most charge in the available
// charge well (the paper's best-of-two, for any number of batteries). Ties
// go to the lowest index, which makes the scheme behave exactly like round
// robin on symmetric loads, as observed in the paper.
type bestAvailable struct{}

// BestAvailable returns the best-of-two scheme generalised to N batteries.
func BestAvailable() Policy { return bestAvailable{} }

func (bestAvailable) Name() string { return "best-of-two" }

func (bestAvailable) NewChooser() Chooser {
	return func(bank Bank, dec Decision) int {
		best := dec.Alive[0]
		bestAvail := bank.Available(best)
		for _, idx := range dec.Alive[1:] {
			if a := bank.Available(idx); a > bestAvail {
				best, bestAvail = idx, a
			}
		}
		return best
	}
}

// discreteBank adapts the discretized system to the Bank view.
type discreteBank struct{ sys *dkibam.System }

var _ Bank = discreteBank{}

func (b discreteBank) Batteries() int { return b.sys.Batteries() }
func (b discreteBank) Alive(i int) bool {
	return !b.sys.Cell(i).Empty
}
func (b discreteBank) Available(i int) float64 {
	return b.sys.Disc(i).AvailableAmpMin(b.sys.Cell(i))
}
func (b discreteBank) Total(i int) float64 {
	return b.sys.Disc(i).TotalAmpMin(b.sys.Cell(i))
}

// SystemBank wraps a discrete system in the policy Bank view. The session
// layer holds the returned Bank for the system's whole life, so the
// interface boxing happens once per session instead of once per decision —
// the difference between an allocation-free step path and one allocation
// per scheduling decision.
func SystemBank(sys *dkibam.System) Bank { return discreteBank{sys: sys} }

// AdaptChooser turns a policy chooser into the discrete engine's chooser
// type.
func AdaptChooser(c Chooser) dkibam.Chooser {
	return func(sys *dkibam.System, dec dkibam.Decision) int {
		return c(discreteBank{sys: sys}, Decision{
			Reason:  dec.Reason,
			Minutes: float64(dec.Step) * sys.Disc(0).StepMin,
			Alive:   dec.Alive,
		})
	}
}

// Lifetime simulates the policy on fully charged batteries and returns the
// system lifetime in minutes.
func Lifetime(ds []*dkibam.Discretization, cl load.Compiled, p Policy) (float64, error) {
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return 0, err
	}
	return sys.Run(AdaptChooser(p.NewChooser()))
}

// Run simulates the policy and returns the full schedule next to the
// lifetime.
func Run(ds []*dkibam.Discretization, cl load.Compiled, p Policy) (float64, Schedule, error) {
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return 0, nil, err
	}
	var schedule Schedule
	chooser := AdaptChooser(p.NewChooser())
	lifetime, err := sys.Run(func(s *dkibam.System, dec dkibam.Decision) int {
		idx := chooser(s, dec)
		schedule = append(schedule, Choice{
			Step:    dec.Step,
			Minutes: float64(dec.Step) * cl.StepMin,
			Epoch:   dec.Epoch,
			Reason:  dec.Reason,
			Battery: idx,
		})
		return idx
	})
	if err != nil {
		return 0, nil, err
	}
	return lifetime, schedule, nil
}

// Choice records one scheduling decision.
type Choice struct {
	// Step is the decision time in steps; Minutes the same in minutes.
	Step    int
	Minutes float64
	// Epoch is the load epoch being served.
	Epoch int
	// Reason is why the decision was needed.
	Reason Reason
	// Battery is the chosen battery index.
	Battery int
}

// Schedule is the sequence of decisions of one run.
type Schedule []Choice
