package sched

import (
	"math"
	"testing"

	"batsched/internal/load"
)

// TestTable5Optimal pins the optimal lifetimes of Table 5 (two B1
// batteries). The engine-exact values sit within 4 steps (0.08 min) of the
// paper's; both columns are asserted.
func TestTable5Optimal(t *testing.T) {
	if testing.Short() {
		t.Skip("optimal search over all loads is slow")
	}
	ds := b1Pair(t)
	want := map[string]float64{ // engine-exact
		"CL 250": 12.00, "CL 500": 4.54, "CL alt": 6.46,
		"ILs 250": 40.76, "ILs 500": 10.48, "ILs alt": 16.90,
		"ILs r1": 20.48, "ILs r2": 14.52,
		"ILl 250": 78.92, "ILl 500": 18.68,
	}
	paper := map[string]float64{
		"CL 250": 12.04, "CL 500": 4.58, "CL alt": 6.48,
		"ILs 250": 40.80, "ILs 500": 10.48, "ILs alt": 16.91,
		"ILs r1": 20.52, "ILs r2": 14.54,
		"ILl 250": 78.96, "ILl 500": 18.68,
	}
	for name, w := range want {
		cl := compiled(t, name, 200)
		got, schedule, err := Optimal(ds, cl)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(got-w) > 1e-9 {
			t.Errorf("%s: optimal %v, want %v (engine-exact)", name, got, w)
		}
		if math.Abs(got-paper[name]) > 0.081 {
			t.Errorf("%s: optimal %v vs paper %v (beyond 4 steps)", name, got, paper[name])
		}
		// The returned schedule must reproduce the optimal lifetime.
		replayed, _, err := Run(ds, cl, Replay("opt", schedule))
		if err != nil {
			t.Fatalf("%s replay: %v", name, err)
		}
		if replayed != got {
			t.Errorf("%s: schedule replays to %v, optimal says %v", name, replayed, got)
		}
	}
}

// TestOptimalDominatesPolicies: the optimal lifetime is an upper bound for
// every deterministic scheme on every load.
func TestOptimalDominatesPolicies(t *testing.T) {
	ds := b1Pair(t)
	for _, name := range []string{"CL alt", "ILs alt", "ILs r1", "ILs r2", "ILs 500", "ILl 500"} {
		cl := compiled(t, name, 200)
		opt, _, err := Optimal(ds, cl)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, p := range []Policy{Sequential(), RoundRobin(), BestAvailable()} {
			lt, err := Lifetime(ds, cl, p)
			if err != nil {
				t.Fatal(err)
			}
			if lt > opt+1e-9 {
				t.Errorf("%s: %s (%v) beats optimal (%v)", name, p.Name(), lt, opt)
			}
		}
	}
}

// TestOptimalImprovementShapes: the paper's headline observations — the
// optimal scheduler gains up to ~32% over round robin on ILs alt and ~26%
// on ILs r1, but nothing on ILs 500.
func TestOptimalImprovementShapes(t *testing.T) {
	ds := b1Pair(t)
	gain := func(name string) float64 {
		cl := compiled(t, name, 200)
		opt, _, err := Optimal(ds, cl)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := Lifetime(ds, cl, RoundRobin())
		if err != nil {
			t.Fatal(err)
		}
		return 100 * (opt - rr) / rr
	}
	if g := gain("ILs alt"); g < 28 || g > 36 {
		t.Errorf("ILs alt optimal gain %.1f%%, paper 31.9%%", g)
	}
	if g := gain("ILs r1"); g < 22 || g > 30 {
		t.Errorf("ILs r1 optimal gain %.1f%%, paper 26.2%%", g)
	}
	if g := gain("ILs 500"); g > 1 {
		t.Errorf("ILs 500 optimal gain %.1f%%, paper 0%%", g)
	}
	if g := gain("ILl 500"); g < 14 || g > 20 {
		t.Errorf("ILl 500 optimal gain %.1f%%, paper 17.0%%", g)
	}
}

// TestOptimalSingleBattery: with one battery there is nothing to schedule;
// the optimum equals the plain discrete lifetime.
func TestOptimalSingleBattery(t *testing.T) {
	ds := b1Pair(t)[:1]
	cl := compiled(t, "ILs 250", 200)
	opt, schedule, err := Optimal(ds, cl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-10.84) > 1e-9 {
		t.Fatalf("single-battery optimal %v, want 10.84", opt)
	}
	for _, c := range schedule {
		if c.Battery != 0 {
			t.Fatal("single-battery schedule uses a phantom battery")
		}
	}
}

// TestOptimalThreeBatteries: the search generalises beyond the paper's two
// batteries; with three B1 cells the optimal lifetime exceeds the
// two-battery optimum and every three-battery policy.
func TestOptimalThreeBatteries(t *testing.T) {
	if testing.Short() {
		t.Skip("three-battery search")
	}
	d := b1Pair(t)[0]
	ds3 := []*load.Compiled{}
	_ = ds3
	three := b1Pair(t)
	three = append(three, d)
	cl := compiled(t, "ILs alt", 200)
	opt3, _, err := Optimal(three, cl)
	if err != nil {
		t.Fatal(err)
	}
	opt2, _, err := Optimal(three[:2], cl)
	if err != nil {
		t.Fatal(err)
	}
	if opt3 <= opt2 {
		t.Fatalf("three batteries (%v) not better than two (%v)", opt3, opt2)
	}
	for _, p := range []Policy{Sequential(), RoundRobin(), BestAvailable()} {
		lt, err := Lifetime(three, cl, p)
		if err != nil {
			t.Fatal(err)
		}
		if lt > opt3+1e-9 {
			t.Errorf("three-battery %s (%v) beats optimal (%v)", p.Name(), lt, opt3)
		}
	}
}

func TestOptimalHorizonError(t *testing.T) {
	ds := b1Pair(t)
	cl := compiled(t, "ILs 250", 5) // far too short for two batteries
	if _, _, err := Optimal(ds, cl); err == nil {
		t.Fatal("no error for an exhausted horizon")
	}
}
