package sched

import (
	"batsched/internal/dkibam"
	"batsched/internal/load"
)

// lpBounder evaluates the LP-relaxation bound of the optimal search: an
// admissible upper bound on the death step achievable from a decision state
// that, unlike the cheap charge bound, accounts for *availability* — how
// fast bound charge can recover into available charge — instead of only
// total charge. The relaxation is epoch-granular:
//
//	max T  s.t.  exists x[i][y] >= 0, sigma[y] >= 0 with
//	             sum_i x[i][y] + sigma[y] >= U[y]          (epoch coverage)
//	             sum_{y' <= y} x[i][y'] <= cap_i(t_y - t0) (release caps)
//	             sum_y sigma[y] <= (alive-1) * maxCur      (phase-reset slack)
//	             for every epoch y with end step t_y <= T,
//
// where U[y] is epoch y's draw demand in charge units and cap_i(w) bounds
// the units battery i can deliver within w steps from its current cell
// state. Because supply is released over time, storable and fungible across
// batteries, the LP is feasible iff every prefix (boundary) check
// sum_i cap_i + slack >= cumulative demand passes — which is what bound()
// evaluates, inverting the dying epoch onto the draw grid exactly like
// load.Demand.LastServableStep. The equivalence with the simplex-solved LP
// (internal/lp) is pinned by tests, and the admissibility argument lives in
// DESIGN.md.
//
// The delivery cap couples availability to recovery kinetics. If battery i
// delivers u units within w steps, then with R recovery decrements
//
//	1000*u <= avail - 1 + rest*R + 1000*curLast   (alive before last draw)
//	R      <= 1 + w / RecovTime[M0 + u]           (decrement spacing)
//	u      <= N                                   (total charge)
//
// where rest = 1000 - cmille, curLast <= the window's largest per-event
// draw, and the spacing bound holds because consecutive decrements are at
// least RecovTime[height] steps apart, heights never exceed M0 + u (each
// drawn unit raises the height difference by one), and RecovTime is
// nonincreasing in the height. The first inequality solved for u has u on
// both sides (through the RecovTime lookup); iterating it downward from
// u = N converges onto the greatest fixed point from above, so *any* fixed
// iteration count yields an admissible cap.
type lpBounder struct {
	// Per battery: per-mille bound fraction (1000 - c) and the recovery
	// table.
	rest  []int64
	recov [][]int

	// Load profile (aliasing the compiled load's slices).
	loadTime []int
	curTimes []int
	cur      []int
}

func newLPBounder(ds []*dkibam.Discretization, cl load.Compiled) *lpBounder {
	b := &lpBounder{
		rest:     make([]int64, len(ds)),
		recov:    make([][]int, len(ds)),
		loadTime: cl.LoadTime,
		curTimes: cl.CurTimes,
		cur:      cl.Cur,
	}
	for i, d := range ds {
		b.rest[i] = int64(1000 - d.CMille)
		b.recov[i] = d.RecovTime
	}
	return b
}

// capIters is the fixed-point iteration count of the delivery cap. Each
// iterate starting from u = N over-estimates the cap, so correctness does
// not depend on the count; three steps are enough to be near the fixed
// point on the states the search visits.
const capIters = 3

// cap bounds the units a battery with capacity n, available charge avail
// (mille), height difference m0, bound fraction rest and recovery table rt
// can deliver within w steps of a window whose largest per-event draw is
// maxCur.
func deliveryCap(n, avail, m0, rest int64, rt []int, w, maxCur int64) int64 {
	u := n
	for it := 0; it < capIters; it++ {
		// Max recovery decrements in w steps at heights <= m0 + u.
		mm := m0 + u
		var r int64
		if mm >= 2 {
			mi := mm
			if mi > int64(len(rt)-1) {
				mi = int64(len(rt) - 1)
			}
			r = 1 + w/int64(rt[mi])
		}
		nu := (avail-1+rest*r)/1000 + maxCur
		if nu < 0 {
			nu = 0
		}
		if nu >= u {
			break
		}
		u = nu
	}
	return u
}

// bound returns the LP-relaxation upper bound on the death step achievable
// from sys's decision state, or maxBound when the relaxation outlasts the
// load horizon.
func (b *lpBounder) bound(sys *dkibam.System) int32 {
	t0 := sys.Step()
	e0 := sys.Epoch()

	var (
		nAlive int
		capN   [MaxOptimalBatteries]int64
		avail  [MaxOptimalBatteries]int64
		height [MaxOptimalBatteries]int64
		rest   [MaxOptimalBatteries]int64
		recov  [MaxOptimalBatteries][]int
		sumN   int64
	)
	for i := 0; i < len(b.rest); i++ {
		c := sys.Cell(i)
		if c.Empty {
			continue
		}
		capN[nAlive] = int64(c.N)
		avail[nAlive] = (1000-b.rest[i])*int64(c.N) - b.rest[i]*int64(c.M)
		height[nAlive] = int64(c.M)
		rest[nAlive] = b.rest[i]
		recov[nAlive] = b.recov[i]
		sumN += int64(c.N)
		nAlive++
	}
	if nAlive == 0 {
		return int32(t0)
	}

	maxCur := int64(0)
	unitsBefore := int64(0) // demand of the epochs scanned so far, in units
	y := e0
	saturated := false
	// Detailed phase: per-boundary checks with availability-capped supply.
	// Caps are nondecreasing in the window and reach the plain charge cap N
	// within a bounded number of boundaries (RecovTime[m]*m is roughly
	// constant), after which the scan switches to a single charge-only
	// inversion over the precomputed prefix sums.
	for ; y < len(b.loadTime); y++ {
		cur := int64(b.cur[y])
		var evts int64
		start := t0
		if y != e0 {
			start = b.loadTime[y-1]
		}
		if cur > 0 {
			evts = int64((b.loadTime[y] - start) / b.curTimes[y])
			if cur > maxCur {
				maxCur = cur
			}
		}
		w := int64(b.loadTime[y] - t0)
		supply := int64(nAlive-1) * maxCur
		sat := true
		for a := 0; a < nAlive; a++ {
			u := deliveryCap(capN[a], avail[a], height[a], rest[a], recov[a], w, maxCur)
			if u >= capN[a] {
				u = capN[a]
			} else {
				sat = false
			}
			supply += u
		}
		demandEnd := unitsBefore + evts*cur
		if evts > 0 && supply < demandEnd {
			// The relaxation dies inside epoch y: it affords
			// (supply-unitsBefore)/cur more events on the grid anchored at
			// start, and the next one is unaffordable.
			budget := (supply - unitsBefore) / cur
			if budget < 0 {
				budget = 0
			}
			return int32(start + (int(budget)+1)*b.curTimes[y] - 1)
		}
		unitsBefore = demandEnd
		if sat {
			y++
			saturated = true
			break
		}
	}
	if !saturated {
		return maxBound // horizon reached with availability still binding
	}

	// Charge-only tail: every cap is pinned at the battery's remaining total
	// charge, so the supply no longer depends on the window and the scan is
	// O(1) per epoch (epochs past the switch are whole, so the partial first
	// epoch never reaches here).
	for ; y < len(b.loadTime); y++ {
		cur := int64(b.cur[y])
		if cur == 0 {
			continue
		}
		if cur > maxCur {
			maxCur = cur
		}
		start := b.loadTime[y-1]
		evts := int64((b.loadTime[y] - start) / b.curTimes[y])
		demandEnd := unitsBefore + evts*cur
		if supply := sumN + int64(nAlive-1)*maxCur; supply < demandEnd {
			budget := (supply - unitsBefore) / cur
			if budget < 0 {
				budget = 0
			}
			return int32(start + (int(budget)+1)*b.curTimes[y] - 1)
		}
		unitsBefore = demandEnd
	}
	return maxBound
}
