package sched

import (
	"errors"
	"math"
	"testing"

	"batsched/internal/battery"
	"batsched/internal/load"
)

func TestContinuousMatchesDiscretePolicies(t *testing.T) {
	params := []battery.Params{battery.B1(), battery.B1()}
	ds := b1Pair(t)
	for _, name := range []string{"CL alt", "ILs alt", "ILs 500", "ILl 500"} {
		l, err := load.Paper(name, 200)
		if err != nil {
			t.Fatal(err)
		}
		cl := compiled(t, name, 200)
		for _, p := range []Policy{Sequential(), RoundRobin(), BestAvailable()} {
			cont, err := ContinuousRun(params, l, p)
			if err != nil {
				t.Fatalf("%s %s: %v", name, p.Name(), err)
			}
			disc, err := Lifetime(ds, cl, p)
			if err != nil {
				t.Fatal(err)
			}
			// The discretized model deviates by ~1% at most (Section 5).
			if rel := math.Abs(cont.LifetimeMinutes-disc) / disc; rel > 0.015 {
				t.Errorf("%s %s: continuous %v vs discrete %v (%.2f%%)",
					name, p.Name(), cont.LifetimeMinutes, disc, 100*rel)
			}
		}
	}
}

func TestContinuousSequentialIsTwoSingles(t *testing.T) {
	params := []battery.Params{battery.B1(), battery.B1()}
	l, err := load.Paper("CL 500", 200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ContinuousRun(params, l, Sequential())
	if err != nil {
		t.Fatal(err)
	}
	// Under a continuous constant load the second battery lives exactly one
	// single-battery lifetime after the first dies (2.02 each, Table 3).
	single, err := ContinuousRun(params[:1], l, Sequential())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(single.LifetimeMinutes-2.02) > 0.005 {
		t.Fatalf("single continuous %v, want 2.02", single.LifetimeMinutes)
	}
	if math.Abs(res.LifetimeMinutes-2*single.LifetimeMinutes) > 1e-6 {
		t.Fatalf("sequential continuous %v, want 2x single %v", res.LifetimeMinutes, single.LifetimeMinutes)
	}
	if len(res.Remaining) != 2 {
		t.Fatal("remaining slice size")
	}
	frac := res.RemainingFraction(params)
	if frac <= 0.5 || frac >= 1 {
		t.Fatalf("remaining fraction %v out of the plausible high-current band", frac)
	}
}

func TestContinuousScheduleRecorded(t *testing.T) {
	params := []battery.Params{battery.B1(), battery.B1()}
	l, err := load.Paper("ILs alt", 200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ContinuousRun(params, l, RoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule) < 4 {
		t.Fatalf("only %d decisions recorded", len(res.Schedule))
	}
	// Decisions alternate batteries while both live.
	if res.Schedule[0].Battery == res.Schedule[1].Battery {
		t.Fatal("round robin did not alternate")
	}
	// Times non-decreasing.
	for i := 1; i < len(res.Schedule); i++ {
		if res.Schedule[i].Minutes < res.Schedule[i-1].Minutes {
			t.Fatal("decision times decrease")
		}
	}
}

func TestContinuousErrors(t *testing.T) {
	l, err := load.Paper("CL 250", 200)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ContinuousRun(nil, l, Sequential()); err == nil {
		t.Fatal("accepted empty bank")
	}
	bad := []battery.Params{{Capacity: -1, C: 0.5, KPrime: 1}}
	if _, err := ContinuousRun(bad, l, Sequential()); err == nil {
		t.Fatal("accepted invalid battery")
	}
	short, err := load.Paper("ILs 250", 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ContinuousRun([]battery.Params{battery.B2()}, short, Sequential())
	if !errors.Is(err, ErrContinuousExhausted) {
		t.Fatalf("short horizon: %v", err)
	}
}

// TestCapacityScalingReducesWaste: the Section 6 observation — the stranded
// charge fraction falls as capacity grows, below 10% at 10x.
func TestCapacityScalingReducesWaste(t *testing.T) {
	prev := 1.0
	for _, f := range []float64{1, 2, 5, 10} {
		b := battery.B1().Scale(f)
		params := []battery.Params{b, b}
		l, err := load.Paper("ILs alt", 400*f)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ContinuousRun(params, l, BestAvailable())
		if err != nil {
			t.Fatalf("factor %v: %v", f, err)
		}
		frac := res.RemainingFraction(params)
		if frac >= prev {
			t.Errorf("waste did not fall at factor %v: %v >= %v", f, frac, prev)
		}
		prev = frac
	}
	if prev >= 0.10 {
		t.Errorf("at 10x capacity %v of the charge is stranded, paper says < 10%%", prev)
	}
}
