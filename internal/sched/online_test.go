package sched

import "testing"

// onlineBank is a hand-set Bank view for driving choosers directly.
type onlineBank struct {
	avail, total []float64
	empty        []bool
}

func (b onlineBank) Batteries() int          { return len(b.avail) }
func (b onlineBank) Alive(i int) bool        { return !b.empty[i] }
func (b onlineBank) Available(i int) float64 { return b.avail[i] }
func (b onlineBank) Total(i int) float64     { return b.total[i] }

func aliveOf(b onlineBank) []int {
	var alive []int
	for i := range b.empty {
		if !b.empty[i] {
			alive = append(alive, i)
		}
	}
	return alive
}

func TestGreedySOCPicksHighestAvailable(t *testing.T) {
	if got := GreedySOC().Name(); got != "greedy-soc" {
		t.Fatalf("Name = %q", got)
	}
	ch := GreedySOC().NewChooser()
	b := onlineBank{avail: []float64{1, 5, 3}, total: []float64{2, 6, 4}, empty: make([]bool, 3)}
	if got := ch(b, Decision{Reason: JobStart, Alive: aliveOf(b)}); got != 1 {
		t.Fatalf("picked %d, want 1 (highest available)", got)
	}
	// Ties go to the lowest index.
	b.avail = []float64{5, 5, 3}
	if got := ch(b, Decision{Reason: JobStart, Alive: aliveOf(b)}); got != 0 {
		t.Fatalf("tie picked %d, want 0", got)
	}
	// Empty batteries are not offered and never chosen.
	b = onlineBank{avail: []float64{9, 1, 3}, total: []float64{9, 1, 3}, empty: []bool{true, false, false}}
	if got := ch(b, Decision{Reason: BatteryEmptied, Alive: aliveOf(b)}); got != 2 {
		t.Fatalf("picked %d, want 2", got)
	}
}

func TestEFQServesLeastVirtualTime(t *testing.T) {
	if got := EFQ().Name(); got != "efq" {
		t.Fatalf("Name = %q", got)
	}
	ch := EFQ().NewChooser()
	// Identical batteries: weights captured at the first decision.
	b := onlineBank{avail: []float64{5, 5}, total: []float64{10, 10}, empty: make([]bool, 2)}
	dec := func() Decision { return Decision{Reason: JobStart, Alive: aliveOf(b)} }
	if got := ch(b, dec()); got != 0 {
		t.Fatalf("first pick %d, want 0 (all virtual times zero, lowest index)", got)
	}
	b.total[0] = 8 // battery 0 served 2 -> vt 0.2 vs 0
	if got := ch(b, dec()); got != 1 {
		t.Fatalf("second pick %d, want 1", got)
	}
	b.total[1] = 7 // battery 1 served 3 -> vt 0.2 vs 0.3
	if got := ch(b, dec()); got != 0 {
		t.Fatalf("third pick %d, want 0", got)
	}
}

func TestEFQWeighsByCapacity(t *testing.T) {
	ch := EFQ().NewChooser()
	// Battery 1 is twice the size; after equal energy served it is the
	// fair-queue choice (half the virtual time).
	b := onlineBank{avail: []float64{5, 10}, total: []float64{10, 20}, empty: make([]bool, 2)}
	_ = ch(b, Decision{Reason: JobStart, Alive: aliveOf(b)}) // capture weights
	b.total = []float64{8, 18}                               // both served 2
	if got := ch(b, Decision{Reason: JobStart, Alive: aliveOf(b)}); got != 1 {
		t.Fatalf("picked %d, want 1 (vt 0.1 vs 0.2)", got)
	}
}

// TestEFQLifetimeOnPaperBank drives EFQ and GreedySOC end-to-end through
// the discrete engine so they are exercised against the real Bank adapter.
func TestEFQLifetimeOnPaperBank(t *testing.T) {
	ds := b1Pair(t)
	cl := compiled(t, "ILs 250", 200)
	seq, err := Lifetime(ds, cl, Sequential())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{GreedySOC(), EFQ()} {
		lt, err := Lifetime(ds, cl, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if lt < seq {
			t.Fatalf("%s lifetime %v shorter than sequential %v", p.Name(), lt, seq)
		}
	}
}
