package sched

import (
	"fmt"
	"math"

	"batsched/internal/dkibam"
)

// replayPolicy replays a recorded schedule decision by decision.
type replayPolicy struct {
	name     string
	schedule Schedule
}

// Replay returns a policy that re-applies a recorded schedule, validating
// that each decision arrives at the recorded time. Use it to re-simulate an
// optimal schedule (from Optimal or from the timed-automata route) while
// sampling charge traces.
func Replay(name string, schedule Schedule) Policy {
	return &replayPolicy{name: name, schedule: schedule}
}

// Name implements Policy.
func (p *replayPolicy) Name() string { return p.name }

// NewChooser implements Policy.
func (p *replayPolicy) NewChooser() Chooser {
	next := 0
	return func(_ Bank, dec Decision) int {
		if next >= len(p.schedule) {
			panic(fmt.Sprintf("sched: replay exhausted after %d decisions (decision at %.4f min)", len(p.schedule), dec.Minutes))
		}
		choice := p.schedule[next]
		if math.Abs(choice.Minutes-dec.Minutes) > 1e-9 {
			panic(fmt.Sprintf("sched: replay desync: recorded %.4f min, live %.4f min", choice.Minutes, dec.Minutes))
		}
		next++
		return choice.Battery
	}
}

// FixedChooser returns a discrete-engine chooser that always picks the
// given battery; it is the single-battery "scheduler".
func FixedChooser(idx int) dkibam.Chooser {
	return func(*dkibam.System, dkibam.Decision) int { return idx }
}
