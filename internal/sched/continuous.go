package sched

import (
	"errors"
	"fmt"

	"batsched/internal/battery"
	"batsched/internal/kibam"
	"batsched/internal/load"
)

// continuousBank adapts the continuous simulator to the Bank view.
type continuousBank struct {
	models []*kibam.Model
	states []kibam.State
	alive  []bool
}

var _ Bank = (*continuousBank)(nil)

func (b *continuousBank) Batteries() int { return len(b.models) }
func (b *continuousBank) Alive(i int) bool {
	return b.alive[i]
}
func (b *continuousBank) Available(i int) float64 {
	return b.states[i].Available(b.models[i].Params())
}
func (b *continuousBank) Total(i int) float64 {
	return b.states[i].Gamma
}

func (b *continuousBank) aliveList() []int {
	var out []int
	for i, a := range b.alive {
		if a {
			out = append(out, i)
		}
	}
	return out
}

// Continuous-simulation errors.
var (
	ErrContinuousExhausted = errors.New("sched: batteries outlived the load horizon (continuous)")
	ErrContinuousChoice    = errors.New("sched: policy chose a dead battery (continuous)")
)

// ContinuousResult is the outcome of a continuous-model policy simulation.
type ContinuousResult struct {
	// LifetimeMinutes is the instant the last battery became empty.
	LifetimeMinutes float64
	// Schedule lists every decision taken.
	Schedule Schedule
	// Remaining holds each battery's total charge gamma at death, in
	// A·min; the paper's Section 6 discusses the summed fraction left
	// behind.
	Remaining []float64
}

// RemainingFraction returns the fraction of the banks' initial charge left
// at death.
func (r ContinuousResult) RemainingFraction(params []battery.Params) float64 {
	var left, total float64
	for i, p := range params {
		left += r.Remaining[i]
		total += p.Capacity
	}
	if total == 0 {
		return 0
	}
	return left / total
}

// ContinuousRun simulates a scheduling policy on the continuous KiBaM
// (closed-form stepping, crossings located by bisection). Scheduling
// decisions happen at job starts and when the serving battery becomes
// empty, exactly as in the discretized system. It is used where the
// discretization would distort results, such as the Section 6
// capacity-scaling experiment.
func ContinuousRun(params []battery.Params, l load.Load, p Policy) (ContinuousResult, error) {
	if len(params) == 0 {
		return ContinuousResult{}, errors.New("sched: need at least one battery")
	}
	bank := &continuousBank{
		models: make([]*kibam.Model, len(params)),
		states: make([]kibam.State, len(params)),
		alive:  make([]bool, len(params)),
	}
	for i, bp := range params {
		m, err := kibam.New(bp)
		if err != nil {
			return ContinuousResult{}, fmt.Errorf("battery %d: %w", i, err)
		}
		bank.models[i] = m
		bank.states[i] = kibam.Full(bp)
		bank.alive[i] = true
	}

	chooser := p.NewChooser()
	var schedule Schedule
	now := 0.0
	decide := func(reason Reason) (int, error) {
		dec := Decision{Reason: reason, Minutes: now, Alive: bank.aliveList()}
		idx := chooser(bank, dec)
		if idx < 0 || idx >= len(params) || !bank.alive[idx] {
			return 0, fmt.Errorf("%w (battery %d at %.4f min)", ErrContinuousChoice, idx, now)
		}
		schedule = append(schedule, Choice{
			Minutes: now,
			Reason:  reason,
			Battery: idx,
		})
		return idx, nil
	}
	// recoverOthers advances every battery except skip by dt at zero
	// current.
	recoverOthers := func(skip int, dt float64) {
		for i := range bank.states {
			if i == skip {
				continue
			}
			bank.states[i] = bank.models[i].StepConstant(bank.states[i], 0, dt)
		}
	}
	finish := func() ContinuousResult {
		remaining := make([]float64, len(params))
		for i, s := range bank.states {
			remaining[i] = s.Gamma
		}
		return ContinuousResult{LifetimeMinutes: now, Schedule: schedule, Remaining: remaining}
	}

	for seg := 0; seg < l.Len(); seg++ {
		s := l.Segment(seg)
		if !s.IsJob() {
			recoverOthers(-1, s.Duration)
			now += s.Duration
			continue
		}
		remaining := s.Duration
		reason := JobStart
		for remaining > 1e-12 {
			idx, err := decide(reason)
			if err != nil {
				return ContinuousResult{}, err
			}
			dt, crossed := bank.models[idx].EmptyTime(bank.states[idx], s.Current, remaining)
			if !crossed {
				bank.states[idx] = bank.models[idx].StepConstant(bank.states[idx], s.Current, remaining)
				recoverOthers(idx, remaining)
				now += remaining
				remaining = 0
				break
			}
			bank.states[idx] = bank.models[idx].StepConstant(bank.states[idx], s.Current, dt)
			recoverOthers(idx, dt)
			now += dt
			remaining -= dt
			bank.alive[idx] = false
			if len(bank.aliveList()) == 0 {
				return finish(), nil
			}
			reason = BatteryEmptied
		}
	}
	return ContinuousResult{}, fmt.Errorf("%w after %.2f min", ErrContinuousExhausted, now)
}
