package sched

import (
	"errors"
	"math"
	"testing"

	"batsched/internal/battery"
	"batsched/internal/dkibam"
	"batsched/internal/load"
)

// diffGrid compiles a bank and a load on an explicit grid.
func diffGrid(t *testing.T, bats []battery.Params, loadName string, horizon, stepMin, unitAmpMin float64) ([]*dkibam.Discretization, load.Compiled) {
	t.Helper()
	ds := make([]*dkibam.Discretization, len(bats))
	for i, b := range bats {
		d, err := dkibam.Discretize(b, stepMin, unitAmpMin)
		if err != nil {
			t.Fatal(err)
		}
		ds[i] = d
	}
	l, err := load.Paper(loadName, horizon)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := load.Compile(l, stepMin, unitAmpMin)
	if err != nil {
		t.Fatal(err)
	}
	return ds, cl
}

// optionMatrix is every optimization combination; the reference (zero)
// options reproduce the pre-optimization exhaustive search exactly.
var optionMatrix = []struct {
	name string
	opts SearchOptions
}{
	{"canon+prune+lp", DefaultSearchOptions()},
	{"canon+prune", SearchOptions{Canonicalize: true, Prune: true}},
	{"prune+lp", SearchOptions{Prune: true, LPBound: true}},
	{"canon", SearchOptions{Canonicalize: true}},
	{"prune", SearchOptions{Prune: true}},
}

// checkSearch runs the optimized searches (and the parallel variant) on one
// cell and holds every lifetime to want; schedules must replay to the same
// value. want comes either from a live reference run or from the golden
// table recorded from the reference search.
func checkSearch(t *testing.T, ds []*dkibam.Discretization, cl load.Compiled, want float64, parallel bool) {
	t.Helper()
	for _, m := range optionMatrix {
		lt, schedule, _, err := OptimalWithOptions(ds, cl, m.opts)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if lt != want {
			t.Errorf("%s: lifetime %v, reference search says %v", m.name, lt, want)
		}
		replayed, _, err := Run(ds, cl, Replay("diff", schedule))
		if err != nil {
			t.Fatalf("%s replay: %v", m.name, err)
		}
		if replayed != lt {
			t.Errorf("%s: schedule replays to %v, search says %v", m.name, replayed, lt)
		}
	}
	if parallel {
		lt, schedule, _, err := OptimalParallelWithStats(ds, cl, 4)
		if err != nil {
			t.Fatalf("parallel: %v", err)
		}
		if lt != want {
			t.Errorf("parallel: lifetime %v, reference search says %v", lt, want)
		}
		replayed, _, err := Run(ds, cl, Replay("diff-par", schedule))
		if err != nil {
			t.Fatalf("parallel replay: %v", err)
		}
		if replayed != lt {
			t.Errorf("parallel: schedule replays to %v, search says %v", replayed, lt)
		}
	}
}

// TestOptimalDifferentialLight pins the canonicalized, pruned and parallel
// searches to the live reference search (SearchOptions zero value — exactly
// the pre-optimization exhaustive search) on every paper load for the banks
// where the reference search is cheap: single batteries, the 2xB1 pair of
// Table 5, and the cheap loads of the heavier banks. The heavy cells of
// 2xB2 and the mixed bank continue in TestOptimalDifferentialHeavy against
// recorded reference lifetimes.
func TestOptimalDifferentialLight(t *testing.T) {
	b1, b2 := battery.B1(), battery.B2()
	cheapB2 := map[string]bool{"CL 500": true, "CL alt": true, "ILs 500": true, "ILl 500": true,
		"ILs alt": true, "ILs r1": true, "ILs r2": true}
	type cell struct {
		bank     string
		bats     []battery.Params
		horizon  float64
		grid     float64
		loads    func(string) bool
		parallel bool
	}
	all := func(string) bool { return true }
	cells := []cell{
		{"1xB1", []battery.Params{b1}, 200, 0.01, all, false},
		{"2xB1", []battery.Params{b1, b1}, 200, 0.01, all, true},
		{"1xB2", []battery.Params{b2}, 600, 0.05, all, false},
		{"2xB2", []battery.Params{b2, b2}, 600, 0.05, func(n string) bool { return cheapB2[n] && n != "ILs alt" && n != "ILs r1" && n != "ILs r2" }, true},
		{"mixed", []battery.Params{b1, b2}, 400, 0.05, func(n string) bool { return n != "CL 250" && n != "ILs 250" && n != "ILl 250" }, true},
	}
	for _, c := range cells {
		for _, name := range load.PaperLoadNames {
			if !c.loads(name) {
				continue
			}
			c, name := c, name
			t.Run(c.bank+"/"+name, func(t *testing.T) {
				t.Parallel()
				ds, cl := diffGrid(t, c.bats, name, c.horizon, c.grid, c.grid)
				want, _, _, err := OptimalWithOptions(ds, cl, SearchOptions{})
				if err != nil {
					t.Fatalf("reference: %v", err)
				}
				checkSearch(t, ds, cl, want, c.parallel)
			})
		}
	}
}

// TestOptimalDifferentialHeavy completes the ten-loads × five-banks matrix
// on the cells where the reference search needs tens of seconds to minutes:
// the optimized searches must reproduce the recorded reference lifetimes
// exactly. The goldens were produced by OptimalWithOptions(..,
// SearchOptions{}) — the pre-optimization search — on the same grids; the
// live equality of the two searches on these very cells was verified once
// when recording them (see EXPERIMENTS.md).
func TestOptimalDifferentialHeavy(t *testing.T) {
	b1, b2 := battery.B1(), battery.B2()
	type cell struct {
		bank    string
		bats    []battery.Params
		horizon float64
		load    string
		want    float64
	}
	cells := []cell{
		// 2xB2 on the T = Gamma = 0.05 grid, horizon 600 min.
		{"2xB2", []battery.Params{b2, b2}, 600, "CL 250", 46.00},
		{"2xB2", []battery.Params{b2, b2}, 600, "ILs 250", 129.00},
		{"2xB2", []battery.Params{b2, b2}, 600, "ILs alt", 68.60},
		{"2xB2", []battery.Params{b2, b2}, 600, "ILs r1", 74.60},
		{"2xB2", []battery.Params{b2, b2}, 600, "ILs r2", 68.40},
		{"2xB2", []battery.Params{b2, b2}, 600, "ILl 250", 211.00},
		// Mixed B1+B2 bank on the same grid, horizon 400 min.
		{"mixed", []battery.Params{b1, b2}, 400, "CL 250", 26.20},
		{"mixed", []battery.Params{b1, b2}, 400, "ILs 250", 85.00},
		{"mixed", []battery.Params{b1, b2}, 400, "ILl 250", 145.00},
	}
	for _, c := range cells {
		c := c
		t.Run(c.bank+"/"+c.load, func(t *testing.T) {
			t.Parallel()
			if testing.Short() {
				t.Skip("heavy optimal cells")
			}
			ds, cl := diffGrid(t, c.bats, c.load, c.horizon, 0.05, 0.05)
			lt, schedule, _, err := OptimalWithStats(ds, cl)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(lt-c.want) > 1e-9 {
				t.Errorf("lifetime %v, recorded reference %v", lt, c.want)
			}
			replayed, _, err := Run(ds, cl, Replay("diff-heavy", schedule))
			if err != nil {
				t.Fatal(err)
			}
			if replayed != lt {
				t.Errorf("schedule replays to %v, search says %v", replayed, lt)
			}
		})
	}
}

// TestOptimalPruningDifferential exercises the branch-and-bound in a regime
// where the charge bound actually binds — high available-charge fraction, so
// batteries die near the total-charge horizon — and holds the pruned search
// to the live reference: same lifetime with a strictly smaller explored
// state count and a non-zero pruned counter.
func TestOptimalPruningDifferential(t *testing.T) {
	hiC := battery.Params{Capacity: 1.2, C: 0.8, KPrime: 0.2, Label: "HiC"}
	bats := battery.Bank(hiC, 3)
	ds, cl := diffGrid(t, bats, "ILs alt", 200, 0.01, 0.01)
	want, _, ref, err := OptimalWithOptions(ds, cl, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lt, _, stats, err := OptimalWithStats(ds, cl)
	if err != nil {
		t.Fatal(err)
	}
	if lt != want {
		t.Fatalf("pruned search: %v, reference %v", lt, want)
	}
	if stats.Pruned == 0 {
		t.Error("charge bound never pruned in a supply-dominated regime")
	}
	if stats.States >= ref.States {
		t.Errorf("pruned+canonicalized search explored %d states, reference %d", stats.States, ref.States)
	}
}

// TestOptimalBeyondEightBatteries: the search now handles homogeneous banks
// past the old 8-battery cap. Canonicalization is what makes this possible —
// the reference search needs millions of states for ten identical batteries
// (6,235,301 for the 10-battery cell below; recorded once, see
// EXPERIMENTS.md) where the canonical search needs a handful.
func TestOptimalBeyondEightBatteries(t *testing.T) {
	small := battery.Params{Capacity: 0.25, C: battery.ItsyC, KPrime: battery.ItsyKPrime, Label: "S"}
	for _, tc := range []struct {
		n    int
		want float64 // recorded from the reference search where feasible
	}{
		{10, 1.00},
		{12, 2.40},
	} {
		bats := battery.Bank(small, tc.n)
		ds, cl := diffGrid(t, bats, "ILs alt", 200, 0.01, 0.01)
		lt, schedule, stats, err := OptimalWithStats(ds, cl)
		if err != nil {
			t.Fatalf("%d batteries: %v", tc.n, err)
		}
		if math.Abs(lt-tc.want) > 1e-9 {
			t.Errorf("%d batteries: lifetime %v, want %v", tc.n, lt, tc.want)
		}
		if stats.States > 1000 {
			t.Errorf("%d identical batteries expanded %d states; canonicalization should collapse the bank", tc.n, stats.States)
		}
		replayed, _, err := Run(ds, cl, Replay("12batt", schedule))
		if err != nil {
			t.Fatal(err)
		}
		if replayed != lt {
			t.Errorf("%d batteries: schedule replays to %v, search says %v", tc.n, replayed, lt)
		}
		// Sanity: the optimum dominates the deterministic policies here too.
		for _, p := range []Policy{Sequential(), RoundRobin(), BestAvailable()} {
			plt, err := Lifetime(ds, cl, p)
			if err != nil {
				t.Fatal(err)
			}
			if plt > lt+1e-9 {
				t.Errorf("%d batteries: %s (%v) beats optimal (%v)", tc.n, p.Name(), plt, lt)
			}
		}
	}
	// A bank beyond the new cap still errors cleanly.
	bats := battery.Bank(small, MaxOptimalBatteries+1)
	ds, cl := diffGrid(t, bats, "ILs alt", 200, 0.01, 0.01)
	if _, _, err := Optimal(ds, cl); !errors.Is(err, ErrTooManyBatteries) {
		t.Fatalf("beyond MaxOptimalBatteries: %v, want ErrTooManyBatteries", err)
	}
	// Past 8 batteries the bank must contain interchangeable batteries —
	// canonicalization is what makes those sizes tractable, and 9+ distinct
	// types give it nothing to collapse.
	diverse := make([]battery.Params, 9)
	for i := range diverse {
		diverse[i] = battery.Params{
			Capacity: 0.25 + 0.05*float64(i), C: battery.ItsyC, KPrime: battery.ItsyKPrime,
		}
	}
	ds, cl = diffGrid(t, diverse, "ILs alt", 200, 0.01, 0.01)
	if _, _, err := Optimal(ds, cl); !errors.Is(err, ErrBankTooDiverse) {
		t.Fatalf("all-distinct 9-bank: %v, want ErrBankTooDiverse", err)
	}
	if _, _, err := OptimalParallel(ds, cl, 2); !errors.Is(err, ErrBankTooDiverse) {
		t.Fatalf("all-distinct 9-bank parallel: %v, want ErrBankTooDiverse", err)
	}
	// 9 batteries of few types stay allowed (8 small + 1 shifted).
	mixed := battery.Bank(small, 8)
	mixed = append(mixed, battery.Params{Capacity: 0.3, C: battery.ItsyC, KPrime: battery.ItsyKPrime})
	ds, cl = diffGrid(t, mixed, "ILs alt", 200, 0.01, 0.01)
	if _, _, err := Optimal(ds, cl); err != nil {
		t.Fatalf("two-type 9-bank: %v", err)
	}
}
