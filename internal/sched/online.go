package sched

// Online policies: schemes written for the streaming session layer, where
// decisions are made against live battery state as draw events arrive and
// no load horizon is known. They are ordinary Policy values — the same
// chooser drives an offline sweep run, which is what the session layer's
// differential tests exploit.

// greedySOC picks the battery with the highest available charge (state of
// charge) at every decision, ties to the lowest index. On the Bank view
// this is the same choice rule as the paper's best-of-two generalisation;
// it is registered under its own name because the online literature (Shi's
// dynamic battery scheduling) knows it as greedy-SOC.
type greedySOC struct{}

// GreedySOC returns the greedy state-of-charge online policy.
func GreedySOC() Policy { return greedySOC{} }

func (greedySOC) Name() string { return "greedy-soc" }

func (greedySOC) NewChooser() Chooser {
	return func(bank Bank, dec Decision) int {
		best := dec.Alive[0]
		bestAvail := bank.Available(best)
		for _, idx := range dec.Alive[1:] {
			if a := bank.Available(idx); a > bestAvail {
				best, bestAvail = idx, a
			}
		}
		return best
	}
}

// efq is an energy-based fair queuing credit scheduler (after the EFQ
// scheduler in PAPERS.md): each battery accrues virtual time in proportion
// to the energy it has served, normalised by its weight, and every decision
// goes to the alive battery with the least virtual time. Weights are the
// batteries' total charge at the first decision (their full capacity — runs
// start on full batteries), so a battery twice as large is asked to serve
// twice the energy before falling behind. Ties go to the lowest index.
type efq struct{}

// EFQ returns the energy-based fair queuing online policy.
func EFQ() Policy { return efq{} }

func (efq) Name() string { return "efq" }

func (efq) NewChooser() Chooser {
	var weight []float64
	return func(bank Bank, dec Decision) int {
		if weight == nil {
			weight = make([]float64, bank.Batteries())
			for i := range weight {
				if w := bank.Total(i); w > 0 {
					weight[i] = w
				} else {
					weight[i] = 1
				}
			}
		}
		best, bestVT := -1, 0.0
		for _, idx := range dec.Alive {
			served := weight[idx] - bank.Total(idx)
			if served < 0 {
				served = 0
			}
			vt := served / weight[idx]
			if best < 0 || vt < bestVT {
				best, bestVT = idx, vt
			}
		}
		return best
	}
}
