package sched

import (
	"fmt"

	"batsched/internal/dkibam"
)

// systemAccessor is implemented by banks backed by the discrete simulator;
// rollout-based policies use it to clone the world.
type systemAccessor interface {
	system() *dkibam.System
}

func (b discreteBank) system() *dkibam.System { return b.sys }

// lookahead is a model-predictive (receding-horizon) policy: at every
// scheduling point it clones the discrete system, tries each alive battery,
// rolls the clone forward under a base policy for a fixed horizon, and
// commits to the candidate with the best outcome. Unlike the optimal
// search, it is an online policy — it only ever looks a bounded distance
// into the (known) load — yet it recovers most of the optimality gap the
// paper leaves open between best-of-two and the optimal schedule.
type lookahead struct {
	horizonMin float64
	base       Policy
}

// Lookahead returns a model-predictive policy with the given rollout
// horizon in minutes, using best-available as the rollout base policy.
// It requires the discrete simulator; on other banks it degrades to the
// base policy.
func Lookahead(horizonMin float64) Policy {
	return lookahead{horizonMin: horizonMin, base: BestAvailable()}
}

// Name implements Policy.
func (p lookahead) Name() string {
	return fmt.Sprintf("lookahead-%gmin", p.horizonMin)
}

// NewChooser implements Policy.
func (p lookahead) NewChooser() Chooser {
	fallback := p.base.NewChooser()
	return func(bank Bank, dec Decision) int {
		acc, ok := bank.(systemAccessor)
		if !ok {
			return fallback(bank, dec)
		}
		sys := acc.system()
		horizonSteps := int(p.horizonMin/sys.Disc(0).StepMin + 0.5)
		best, bestScore := dec.Alive[0], rolloutScore{}
		first := true
		for _, idx := range dec.Alive {
			score, err := p.rollout(sys, idx, horizonSteps)
			if err != nil {
				continue
			}
			if first || score.better(bestScore) {
				best, bestScore, first = idx, score, false
			}
		}
		return best
	}
}

// rolloutScore ranks rollout outcomes: surviving the whole horizon beats
// dying, a later death beats an earlier one, and among survivors a larger
// summed available charge (better balance) wins.
type rolloutScore struct {
	died      bool
	deathStep int
	available int
}

func (s rolloutScore) better(o rolloutScore) bool {
	if s.died != o.died {
		return !s.died
	}
	if s.died {
		return s.deathStep > o.deathStep
	}
	return s.available > o.available
}

// rollout simulates committing battery idx now and following the base
// policy until the horizon elapses, the system dies, or the load ends (the
// last counts as survival).
func (p lookahead) rollout(sys *dkibam.System, idx, horizonSteps int) (rolloutScore, error) {
	clone := sys.Clone()
	if err := clone.Choose(idx); err != nil {
		return rolloutScore{}, err
	}
	limit := clone.Step() + horizonSteps
	base := AdaptChooser(p.base.NewChooser())
	for {
		dec, pending, err := clone.AdvanceToDecision()
		if err != nil {
			// The load horizon ended inside the rollout: treat as survival.
			break
		}
		if !pending {
			return rolloutScore{died: true, deathStep: clone.DeathStep()}, nil
		}
		if clone.Step() >= limit {
			break
		}
		if err := clone.Choose(base(clone, dec)); err != nil {
			return rolloutScore{}, err
		}
	}
	score := rolloutScore{}
	for i := 0; i < clone.Batteries(); i++ {
		if !clone.Cell(i).Empty {
			score.available += clone.Disc(i).AvailableMille(clone.Cell(i))
		}
	}
	return score, nil
}
