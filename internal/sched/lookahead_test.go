package sched

import (
	"math"
	"strings"
	"testing"

	"batsched/internal/battery"
	"batsched/internal/load"
)

func TestLookaheadName(t *testing.T) {
	if !strings.Contains(Lookahead(5).Name(), "5") {
		t.Fatalf("name %q does not carry the horizon", Lookahead(5).Name())
	}
}

// TestLookaheadRecoversOptimalityGap pins the headline result of the
// model-predictive extension: with a 10-minute rollout the online policy
// sits within 1% of the clairvoyant optimum on the loads where best-of-two
// is far from it.
func TestLookaheadRecoversOptimalityGap(t *testing.T) {
	ds := b1Pair(t)
	cases := []struct {
		load       string
		horizon    float64
		exactMatch bool // lookahead reaches the optimum exactly
	}{
		{"CL alt", 2, true},
		{"ILl 500", 2, true},
		{"ILs alt", 5, false},
		{"ILs r1", 10, false},
	}
	for _, tc := range cases {
		cl := compiled(t, tc.load, 200)
		opt, _, err := Optimal(ds, cl)
		if err != nil {
			t.Fatal(err)
		}
		la, err := Lifetime(ds, cl, Lookahead(tc.horizon))
		if err != nil {
			t.Fatal(err)
		}
		bo, err := Lifetime(ds, cl, BestAvailable())
		if err != nil {
			t.Fatal(err)
		}
		if la > opt+1e-9 {
			t.Errorf("%s: lookahead %v beats the optimum %v", tc.load, la, opt)
		}
		if tc.exactMatch && math.Abs(la-opt) > 1e-9 {
			t.Errorf("%s: lookahead %v, want the optimum %v exactly", tc.load, la, opt)
		}
		if rel := (opt - la) / opt; rel > 0.01 {
			t.Errorf("%s: lookahead %v leaves %.1f%% of the optimum %v", tc.load, la, 100*rel, opt)
		}
		// On these loads best-of-two is measurably below the optimum; the
		// rollout must recover most of the difference.
		if opt-bo > 0.1 && (la-bo) < 0.5*(opt-bo) {
			t.Errorf("%s: lookahead %v recovers less than half of the bo2->opt gap (%v -> %v)", tc.load, la, bo, opt)
		}
	}
}

// TestLookaheadMyopiaExists: a too-short horizon can fall below best-of-two
// (ILs r2 at 2 minutes) — the reason the horizon is a parameter.
func TestLookaheadMyopiaExists(t *testing.T) {
	ds := b1Pair(t)
	cl := compiled(t, "ILs r2", 200)
	short, err := Lifetime(ds, cl, Lookahead(2))
	if err != nil {
		t.Fatal(err)
	}
	long, err := Lifetime(ds, cl, Lookahead(5))
	if err != nil {
		t.Fatal(err)
	}
	if short >= long {
		t.Skipf("myopia not visible on this build: short %v, long %v", short, long)
	}
}

// TestLookaheadFallsBackOffSystem: on a non-discrete bank the policy
// degrades to its base policy instead of failing.
func TestLookaheadFallsBackOffSystem(t *testing.T) {
	c := Lookahead(5).NewChooser()
	bank := fakeBank{alive: []bool{true, true}, avail: []float64{1, 3}}
	got := c(bank, Decision{Reason: JobStart, Alive: aliveList(bank)})
	if got != 1 {
		t.Fatalf("fallback picked %d, want best-available 1", got)
	}
}

// TestLookaheadOnContinuousSimulator: ContinuousRun feeds a non-discrete
// bank; the policy must still work end to end.
func TestLookaheadOnContinuousSimulator(t *testing.T) {
	params := []battery.Params{battery.B1(), battery.B1()}
	l, err := load.Paper("ILs alt", 200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ContinuousRun(params, l, Lookahead(5))
	if err != nil {
		t.Fatal(err)
	}
	// Degrades to best-available: same lifetime as the base policy.
	base, err := ContinuousRun(params, l, BestAvailable())
	if err != nil {
		t.Fatal(err)
	}
	if res.LifetimeMinutes != base.LifetimeMinutes {
		t.Fatalf("continuous lookahead %v, want base %v", res.LifetimeMinutes, base.LifetimeMinutes)
	}
}

// TestLookaheadThreeBatteries: the rollout generalises to larger banks.
func TestLookaheadThreeBatteries(t *testing.T) {
	ds := b1Pair(t)
	ds = append(ds, ds[0])
	cl := compiled(t, "ILs alt", 200)
	la, err := Lifetime(ds, cl, Lookahead(5))
	if err != nil {
		t.Fatal(err)
	}
	bo, err := Lifetime(ds, cl, BestAvailable())
	if err != nil {
		t.Fatal(err)
	}
	if la < bo {
		t.Fatalf("three-battery lookahead %v below best-of-two %v", la, bo)
	}
}
