package sched

import (
	"fmt"
	"runtime"
	"testing"

	"batsched/internal/battery"
	"batsched/internal/dkibam"
	"batsched/internal/load"
)

// diffBank is one bank of the differential suite.
type diffBank struct {
	name    string
	ds      []*dkibam.Discretization
	horizon float64
	// optimalLoads restricts which loads run the optimal-search differential
	// (nil = all ten). The 2xB2 searches explore millions of states per load
	// — minutes of CPU each on the heavy loads — so that bank checks Optimal
	// on its three cheap loads only; the deterministic policies still cover
	// all ten loads on every bank.
	optimalLoads map[string]bool
}

// diffBanks enumerates the banks of the differential suite: B1/B2 single
// batteries and two-battery banks.
func diffBanks(t *testing.T) []diffBank {
	t.Helper()
	d1, err := dkibam.Discretize(battery.B1(), dkibam.PaperStepMin, dkibam.PaperUnitAmpMin)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := dkibam.Discretize(battery.B2(), dkibam.PaperStepMin, dkibam.PaperUnitAmpMin)
	if err != nil {
		t.Fatal(err)
	}
	cheap := map[string]bool{"CL 500": true, "CL alt": true, "ILs 500": true}
	return []diffBank{
		{name: "1xB1", ds: []*dkibam.Discretization{d1}, horizon: 200},
		{name: "1xB2", ds: []*dkibam.Discretization{d2}, horizon: 600},
		{name: "2xB1", ds: []*dkibam.Discretization{d1, d1}, horizon: 200},
		{name: "2xB2", ds: []*dkibam.Discretization{d2, d2}, horizon: 600, optimalLoads: cheap},
	}
}

// engineRun drives one engine under a policy, recording the full decision
// trajectory (time, epoch, chosen battery, and complete cell state at every
// decision) plus the death step.
type engineTrace struct {
	decisions []string
	death     int
}

func runEngineTrace(t *testing.T, ds []*dkibam.Discretization, cl load.Compiled, e dkibam.Engine, p Policy) engineTrace {
	t.Helper()
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetEngine(e)
	var tr engineTrace
	chooser := AdaptChooser(p.NewChooser())
	_, err = sys.Run(func(s *dkibam.System, dec dkibam.Decision) int {
		idx := chooser(s, dec)
		snap := fmt.Sprintf("t=%d j=%d reason=%v pick=%d", dec.Step, dec.Epoch, dec.Reason, idx)
		for i := 0; i < s.Batteries(); i++ {
			c := s.Cell(i)
			snap += fmt.Sprintf(" | n=%d m=%d cr=%d e=%v", c.N, c.M, c.CRecov, c.Empty)
		}
		tr.decisions = append(tr.decisions, snap)
		return idx
	})
	if err != nil {
		t.Fatalf("engine %v: %v", e, err)
	}
	tr.death = sys.DeathStep()
	return tr
}

// TestEngineDifferential holds the event-driven engine to the tick oracle to
// the exact step on all ten paper loads, for B1/B2 single batteries and
// two-battery banks, under Sequential, RoundRobin, BestAvailable, and
// Optimal. For the deterministic policies the full decision trajectory
// (time, epoch, choice, and every battery's discrete state at every
// decision) must match; for Optimal the returned schedule must replay to the
// same death step on both engines.
func TestEngineDifferential(t *testing.T) {
	banks := diffBanks(t)
	policies := []Policy{Sequential(), RoundRobin(), BestAvailable()}
	for _, name := range load.PaperLoadNames {
		for _, bank := range banks {
			cl := compiled(t, name, bank.horizon)
			t.Run(name+"/"+bank.name, func(t *testing.T) {
				for _, p := range policies {
					tick := runEngineTrace(t, bank.ds, cl, dkibam.EngineTick, p)
					event := runEngineTrace(t, bank.ds, cl, dkibam.EngineEvent, p)
					if tick.death != event.death {
						t.Errorf("%s: death step tick=%d event=%d", p.Name(), tick.death, event.death)
					}
					if len(tick.decisions) != len(event.decisions) {
						t.Fatalf("%s: %d decisions on tick, %d on event", p.Name(), len(tick.decisions), len(event.decisions))
					}
					for i := range tick.decisions {
						if tick.decisions[i] != event.decisions[i] {
							t.Fatalf("%s: decision %d diverges:\n tick:  %s\n event: %s",
								p.Name(), i, tick.decisions[i], event.decisions[i])
						}
					}
				}

				if bank.optimalLoads != nil && !bank.optimalLoads[name] {
					return
				}
				opt, schedule, err := Optimal(bank.ds, cl)
				if err != nil {
					t.Fatalf("optimal: %v", err)
				}
				replay := Replay("opt", schedule)
				tick := runEngineTrace(t, bank.ds, cl, dkibam.EngineTick, replay)
				event := runEngineTrace(t, bank.ds, cl, dkibam.EngineEvent, replay)
				if tick.death != event.death {
					t.Errorf("optimal: death step tick=%d event=%d", tick.death, event.death)
				}
				if got := float64(event.death) * cl.StepMin; got != opt {
					t.Errorf("optimal: search says %v min, schedule replays to %v min", opt, got)
				}
			})
		}
	}
}

// TestOptimalParallelMatchesSerial: the worker-pool search must report
// exactly the serial optimal lifetime, and its schedule must replay to it.
func TestOptimalParallelMatchesSerial(t *testing.T) {
	ds := b1Pair(t)
	for _, name := range []string{"CL alt", "ILs alt", "ILs r1", "ILl 500"} {
		cl := compiled(t, name, 200)
		serial, _, err := Optimal(ds, cl)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, workers := range []int{2, runtime.NumCPU()} {
			par, schedule, err := OptimalParallel(ds, cl, workers)
			if err != nil {
				t.Fatalf("%s (%d workers): %v", name, workers, err)
			}
			if par != serial {
				t.Errorf("%s (%d workers): parallel %v, serial %v", name, workers, par, serial)
			}
			replayed, _, err := Run(ds, cl, Replay("opt-par", schedule))
			if err != nil {
				t.Fatalf("%s (%d workers) replay: %v", name, workers, err)
			}
			if replayed != par {
				t.Errorf("%s (%d workers): schedule replays to %v, search says %v", name, workers, replayed, par)
			}
		}
	}
}
