package sched

import (
	"math"
	"testing"

	"batsched/internal/battery"
	"batsched/internal/dkibam"
	"batsched/internal/load"
)

func b1Pair(t *testing.T) []*dkibam.Discretization {
	t.Helper()
	d, err := dkibam.Discretize(battery.B1(), dkibam.PaperStepMin, dkibam.PaperUnitAmpMin)
	if err != nil {
		t.Fatal(err)
	}
	return []*dkibam.Discretization{d, d}
}

func compiled(t *testing.T, name string, horizon float64) load.Compiled {
	t.Helper()
	l, err := load.Paper(name, horizon)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := load.Compile(l, dkibam.PaperStepMin, dkibam.PaperUnitAmpMin)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// fakeBank is a hand-crafted Bank for unit-testing policy logic.
type fakeBank struct {
	alive []bool
	avail []float64
}

func (f fakeBank) Batteries() int          { return len(f.alive) }
func (f fakeBank) Alive(i int) bool        { return f.alive[i] }
func (f fakeBank) Available(i int) float64 { return f.avail[i] }
func (f fakeBank) Total(i int) float64     { return f.avail[i] }

func aliveList(f fakeBank) []int {
	var out []int
	for i, a := range f.alive {
		if a {
			out = append(out, i)
		}
	}
	return out
}

func TestSequentialChooser(t *testing.T) {
	c := Sequential().NewChooser()
	bank := fakeBank{alive: []bool{true, true, true}, avail: []float64{1, 5, 9}}
	dec := Decision{Reason: JobStart, Alive: aliveList(bank)}
	if got := c(bank, dec); got != 0 {
		t.Fatalf("picked %d, want lowest alive 0", got)
	}
	bank.alive[0] = false
	dec.Alive = aliveList(bank)
	if got := c(bank, dec); got != 1 {
		t.Fatalf("picked %d, want 1 after 0 empties", got)
	}
}

func TestRoundRobinChooser(t *testing.T) {
	c := RoundRobin().NewChooser()
	bank := fakeBank{alive: []bool{true, true, true}, avail: []float64{1, 1, 1}}
	dec := Decision{Reason: JobStart, Alive: aliveList(bank)}
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, c(bank, dec))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation %v, want %v", got, want)
		}
	}
	// Battery 1 empties: rotation skips it.
	bank.alive[1] = false
	dec.Alive = aliveList(bank)
	got = got[:0]
	for i := 0; i < 4; i++ {
		got = append(got, c(bank, dec))
	}
	for _, b := range got {
		if b == 1 {
			t.Fatalf("rotation used an empty battery: %v", got)
		}
	}
	// Mid-job replacement continues with the next in order.
	c2 := RoundRobin().NewChooser()
	bank2 := fakeBank{alive: []bool{true, true}, avail: []float64{1, 1}}
	first := c2(bank2, Decision{Reason: JobStart, Alive: aliveList(bank2)})
	bank2.alive[first] = false
	repl := c2(bank2, Decision{Reason: BatteryEmptied, Alive: aliveList(bank2)})
	if repl == first {
		t.Fatal("replacement reused the emptied battery")
	}
}

func TestBestAvailableChooser(t *testing.T) {
	c := BestAvailable().NewChooser()
	bank := fakeBank{alive: []bool{true, true, true}, avail: []float64{3, 9, 5}}
	dec := Decision{Reason: JobStart, Alive: aliveList(bank)}
	if got := c(bank, dec); got != 1 {
		t.Fatalf("picked %d, want richest battery 1", got)
	}
	// Ties go to the lowest index (the paper's round-robin-like tie rule).
	bank.avail = []float64{7, 7, 7}
	if got := c(bank, dec); got != 0 {
		t.Fatalf("tie picked %d, want 0", got)
	}
}

func TestPolicyNames(t *testing.T) {
	if Sequential().Name() != "sequential" ||
		RoundRobin().Name() != "round robin" ||
		BestAvailable().Name() != "best-of-two" {
		t.Fatal("policy display names changed")
	}
}

// TestTable5Policies pins the deterministic scheduling lifetimes of Table 5
// (two B1 batteries). The measured values deviate from the paper's printed
// ones by at most 4 discretization steps (0.08 min), which is within the
// tie-resolution freedom of Cora's equal-cost paths; our engine is
// deterministic, so the values below are exact for this implementation.
func TestTable5Policies(t *testing.T) {
	ds := b1Pair(t)
	want := map[string][3]float64{ // sequential, round robin, best-of-two
		"CL 250":  {9.12, 11.60, 11.60},
		"CL 500":  {4.08, 4.52, 4.52},
		"CL alt":  {5.40, 6.08, 6.12},
		"ILs 250": {22.76, 38.92, 38.92},
		"ILs 500": {8.58, 10.46, 10.46},
		"ILs alt": {12.38, 12.82, 16.28},
		"ILs r1":  {12.80, 16.26, 16.26},
		"ILs r2":  {12.22, 14.48, 14.48},
		"ILl 250": {45.84, 76.00, 76.00},
		"ILl 500": {12.92, 15.96, 15.96},
	}
	paper := map[string][3]float64{
		"CL 250":  {9.12, 11.60, 11.60},
		"CL 500":  {4.10, 4.53, 4.53},
		"CL alt":  {5.48, 6.10, 6.12},
		"ILs 250": {22.80, 38.96, 38.96},
		"ILs 500": {8.60, 10.48, 10.48},
		"ILs alt": {12.38, 12.82, 16.30},
		"ILs r1":  {12.80, 16.26, 16.26},
		"ILs r2":  {12.24, 14.50, 14.50},
		"ILl 250": {45.84, 76.00, 76.00},
		"ILl 500": {12.94, 15.96, 15.96},
	}
	policies := []Policy{Sequential(), RoundRobin(), BestAvailable()}
	for name, w := range want {
		cl := compiled(t, name, 200)
		for pi, p := range policies {
			got, err := Lifetime(ds, cl, p)
			if err != nil {
				t.Fatalf("%s %s: %v", name, p.Name(), err)
			}
			if math.Abs(got-w[pi]) > 1e-9 {
				t.Errorf("%s %s: %v, want %v (engine-exact)", name, p.Name(), got, w[pi])
			}
			if math.Abs(got-paper[name][pi]) > 0.081 {
				t.Errorf("%s %s: %v vs paper %v (beyond 4 steps)", name, p.Name(), got, paper[name][pi])
			}
		}
	}
}

// TestPolicyOrdering: on every paper load, sequential <= round robin and
// sequential <= best-of-two (the paper proves sequential is worst).
func TestPolicyOrdering(t *testing.T) {
	ds := b1Pair(t)
	for _, name := range load.PaperLoadNames {
		cl := compiled(t, name, 200)
		seq, err := Lifetime(ds, cl, Sequential())
		if err != nil {
			t.Fatal(err)
		}
		rr, err := Lifetime(ds, cl, RoundRobin())
		if err != nil {
			t.Fatal(err)
		}
		bo, err := Lifetime(ds, cl, BestAvailable())
		if err != nil {
			t.Fatal(err)
		}
		if seq > rr+1e-9 || seq > bo+1e-9 {
			t.Errorf("%s: sequential %v beats rr %v or bo %v", name, seq, rr, bo)
		}
	}
}

// TestBestOfTwoEqualsRoundRobinOnSymmetricLoads: the paper observes the two
// schemes coincide except on alternating loads.
func TestBestOfTwoEqualsRoundRobinOnSymmetricLoads(t *testing.T) {
	ds := b1Pair(t)
	for _, name := range []string{"CL 250", "CL 500", "ILs 250", "ILs 500", "ILl 250", "ILl 500"} {
		cl := compiled(t, name, 200)
		rr, err := Lifetime(ds, cl, RoundRobin())
		if err != nil {
			t.Fatal(err)
		}
		bo, err := Lifetime(ds, cl, BestAvailable())
		if err != nil {
			t.Fatal(err)
		}
		if rr != bo {
			t.Errorf("%s: rr %v != bo %v on a symmetric load", name, rr, bo)
		}
	}
	// And best-of-two clearly beats round robin on ILs alt (paper: +27.2%).
	cl := compiled(t, "ILs alt", 200)
	rr, _ := Lifetime(ds, cl, RoundRobin())
	bo, _ := Lifetime(ds, cl, BestAvailable())
	if gain := (bo - rr) / rr; gain < 0.25 {
		t.Errorf("ILs alt best-of-two gain %.1f%%, paper reports 27.2%%", 100*gain)
	}
}

func TestRunRecordsSchedule(t *testing.T) {
	ds := b1Pair(t)
	cl := compiled(t, "ILs alt", 200)
	lifetime, schedule, err := Run(ds, cl, RoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	if len(schedule) == 0 {
		t.Fatal("empty schedule")
	}
	for i, c := range schedule {
		if c.Battery != i%2 && c.Reason == JobStart {
			// Round robin on two alive batteries alternates until one dies.
			break
		}
	}
	// Replaying the schedule reproduces the lifetime exactly.
	again, _, err := Run(ds, cl, Replay("again", schedule))
	if err != nil {
		t.Fatal(err)
	}
	if again != lifetime {
		t.Fatalf("replay %v != original %v", again, lifetime)
	}
}

func TestReplayDesyncPanics(t *testing.T) {
	ds := b1Pair(t)
	cl := compiled(t, "ILs alt", 200)
	_, schedule, err := Run(ds, cl, RoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	schedule[1].Minutes += 0.5 // corrupt
	defer func() {
		if recover() == nil {
			t.Fatal("desynced replay did not panic")
		}
	}()
	_, _, _ = Run(ds, cl, Replay("bad", schedule))
}
