package sched

import (
	"testing"

	"batsched/internal/battery"
	"batsched/internal/dkibam"
	"batsched/internal/load"
	"batsched/internal/lp"
)

// lpWalkCells are the banks x loads on which the LP bound is exercised
// state by state (round-robin walks visit healthy, drained and near-death
// states alike).
func lpWalkCells(t *testing.T) []struct {
	name string
	ds   []*dkibam.Discretization
	cl   load.Compiled
} {
	t.Helper()
	b1, b2 := battery.B1(), battery.B2()
	hiC := battery.Params{Capacity: 1.2, C: 0.8, KPrime: 0.2, Label: "HiC"}
	type cell = struct {
		name string
		ds   []*dkibam.Discretization
		cl   load.Compiled
	}
	var cells []cell
	add := func(name string, bats []battery.Params, loadName string, horizon, grid float64) {
		ds, cl := diffGrid(t, bats, loadName, horizon, grid, grid)
		cells = append(cells, cell{name, ds, cl})
	}
	add("1xB1/CL 250", []battery.Params{b1}, "CL 250", 200, 0.01)
	add("2xB1/CL 500", []battery.Params{b1, b1}, "CL 500", 200, 0.01)
	add("2xB1/ILs alt", []battery.Params{b1, b1}, "ILs alt", 200, 0.01)
	add("2xB1/ILs r1", []battery.Params{b1, b1}, "ILs r1", 200, 0.01)
	add("3xHiC/ILs alt", battery.Bank(hiC, 3), "ILs alt", 200, 0.01)
	add("mixed/ILs alt", []battery.Params{b1, b2}, "ILs alt", 400, 0.05)
	return cells
}

// TestLPBoundAdmissibleOnWalk drives each cell's system along a round-robin
// schedule and, at every decision state on the way down, holds the LP bound
// to the exactly solved remaining optimum: bound >= optimum, everywhere from
// the full bank to the brink of death.
func TestLPBoundAdmissibleOnWalk(t *testing.T) {
	for _, c := range lpWalkCells(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			sys, err := dkibam.NewSystem(c.ds, c.cl)
			if err != nil {
				t.Fatal(err)
			}
			scratch, err := dkibam.NewSystem(c.ds, c.cl)
			if err != nil {
				t.Fatal(err)
			}
			// Canonicalized but unpruned: solve returns the exact remaining
			// optimum from any state, and the shared memo keeps the repeated
			// probes cheap.
			o, err := newOptimizer(c.ds, c.cl, SearchOptions{Canonicalize: true})
			if err != nil {
				t.Fatal(err)
			}
			lpb := newLPBounder(c.ds, c.cl)
			rr := 0
			for states := 0; ; states++ {
				dec, pending, err := sys.AdvanceToDecision()
				if err != nil {
					t.Fatal(err)
				}
				if !pending {
					break
				}
				st := sys.SaveState(nil)
				bound := lpb.bound(sys)
				scratch.RestoreState(st)
				exact, err := o.solve(scratch)
				if err != nil {
					t.Fatal(err)
				}
				if int(bound) < exact {
					t.Fatalf("state %d (t=%d): LP bound %d < exact optimum %d",
						states, sys.Step(), bound, exact)
				}
				idx := dec.Alive[rr%len(dec.Alive)]
				rr++
				sys.RestoreState(st)
				if err := sys.Choose(idx); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestLPBoundAdmissibleAtRoot is the PR 3 differential sweep for the LP
// bound: on every light differential cell (all ten paper loads on the 1xB1,
// 2xB1, 1xB2 banks), the root LP bound must dominate the true optimum.
func TestLPBoundAdmissibleAtRoot(t *testing.T) {
	b1, b2 := battery.B1(), battery.B2()
	type cell struct {
		bank    string
		bats    []battery.Params
		horizon float64
		grid    float64
	}
	cells := []cell{
		{"1xB1", []battery.Params{b1}, 200, 0.01},
		{"2xB1", []battery.Params{b1, b1}, 200, 0.01},
		{"1xB2", []battery.Params{b2}, 600, 0.05},
	}
	for _, c := range cells {
		for _, name := range load.PaperLoadNames {
			c, name := c, name
			t.Run(c.bank+"/"+name, func(t *testing.T) {
				t.Parallel()
				ds, cl := diffGrid(t, c.bats, name, c.horizon, c.grid, c.grid)
				lt, _, _, err := OptimalWithOptions(ds, cl, DefaultSearchOptions())
				if err != nil {
					t.Fatal(err)
				}
				death := int(lt/cl.StepMin + 0.5)
				sys, err := dkibam.NewSystem(ds, cl)
				if err != nil {
					t.Fatal(err)
				}
				if _, pending, err := sys.AdvanceToDecision(); err != nil || !pending {
					t.Fatalf("no root decision (pending=%v, err=%v)", pending, err)
				}
				if b := newLPBounder(ds, cl).bound(sys); int(b) < death {
					t.Fatalf("root LP bound %d < optimum death step %d", b, death)
				}
			})
		}
	}
}

// TestLPBoundMatchesSimplexReference states the scan in lpBounder.bound
// against internal/lp: for sampled decision states and epoch boundaries Y,
// the prefix-check verdict ("the relaxation survives through Y") must equal
// the feasibility of the explicitly built relaxation LP solved by the
// simplex. This pins the Hall-style argument that reduces the LP to prefix
// sums, on states the search actually visits. Loads here have uniform
// per-event draw, where the scan's running slack maximum provably matches
// the windowed LP slack.
func TestLPBoundMatchesSimplexReference(t *testing.T) {
	for _, c := range lpWalkCells(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			sys, err := dkibam.NewSystem(c.ds, c.cl)
			if err != nil {
				t.Fatal(err)
			}
			lpb := newLPBounder(c.ds, c.cl)
			rr, checked := 0, 0
			for checked < 8 {
				dec, pending, err := sys.AdvanceToDecision()
				if err != nil {
					t.Fatal(err)
				}
				if !pending {
					break
				}
				st := sys.SaveState(nil)
				// Sample every third decision state to cover the lifetime.
				if rr%3 == 0 {
					checkSimplexAgreement(t, c.ds, c.cl, lpb, sys)
					checked++
				}
				idx := dec.Alive[rr%len(dec.Alive)]
				rr++
				sys.RestoreState(st)
				if err := sys.Choose(idx); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// checkSimplexAgreement compares, for one decision state, the scan verdict
// at each of the next boundaries with the simplex feasibility of the
// explicit relaxation LP.
func checkSimplexAgreement(t *testing.T, ds []*dkibam.Discretization, cl load.Compiled, lpb *lpBounder, sys *dkibam.System) {
	t.Helper()
	t0, e0 := sys.Step(), sys.Epoch()
	bound := lpb.bound(sys)

	type bat struct {
		n, avail, m, rest int64
		recov             []int
	}
	var alive []bat
	for i, d := range ds {
		c := sys.Cell(i)
		if c.Empty {
			continue
		}
		alive = append(alive, bat{
			n:     int64(c.N),
			avail: int64(d.CMille*c.N - (1000-d.CMille)*c.M),
			m:     int64(c.M),
			rest:  int64(1000 - d.CMille),
			recov: d.RecovTime,
		})
	}
	lastY := e0 + 30
	if lastY > len(cl.LoadTime)-1 {
		lastY = len(cl.LoadTime) - 1
	}
	for Y := e0; Y <= lastY; Y++ {
		scanOK := bound == maxBound || int(bound) >= cl.LoadTime[Y]
		// Build the relaxation LP over epochs [e0, Y]: per-battery x[a][yy],
		// per-epoch slack sigma[yy].
		ne := Y - e0 + 1
		na := len(alive)
		nv := na*ne + ne
		xv := func(a, yy int) int { return a*ne + (yy - e0) }
		sv := func(yy int) int { return na*ne + (yy - e0) }
		var rows [][]float64
		var rhs []float64
		maxCur := int64(0)
		for yy := e0; yy <= Y; yy++ {
			cur := int64(cl.Cur[yy])
			var evts int64
			if cur > 0 {
				start := t0
				if yy != e0 {
					start = cl.LoadTime[yy-1]
				}
				evts = int64((cl.LoadTime[yy] - start) / cl.CurTimes[yy])
				if cur > maxCur {
					maxCur = cur
				}
			}
			// Coverage: sum_a x[a][yy] + sigma[yy] >= U[yy].
			row := make([]float64, nv)
			for a := 0; a < na; a++ {
				row[xv(a, yy)] = -1
			}
			row[sv(yy)] = -1
			rows = append(rows, row)
			rhs = append(rhs, -float64(evts*cur))
			// Release caps: sum_{y' <= yy} x[a][y'] <= cap_a(t_yy - t0).
			w := int64(cl.LoadTime[yy] - t0)
			for a, b := range alive {
				u := deliveryCap(b.n, b.avail, b.m, b.rest, b.recov, w, maxCur)
				if u > b.n {
					u = b.n
				}
				row := make([]float64, nv)
				for y2 := e0; y2 <= yy; y2++ {
					row[xv(a, y2)] = 1
				}
				rows = append(rows, row)
				rhs = append(rhs, float64(u))
			}
		}
		// Slack budget: sum sigma <= (alive-1) * maxCur.
		row := make([]float64, nv)
		for yy := e0; yy <= Y; yy++ {
			row[sv(yy)] = 1
		}
		rows = append(rows, row)
		rhs = append(rhs, float64(int64(na-1)*maxCur))

		sol, err := lp.Solve(lp.Problem{C: make([]float64, nv), A: rows, B: rhs})
		if err != nil {
			t.Fatalf("t=%d Y=%d: %v", t0, Y, err)
		}
		simplexOK := sol.Status == lp.Optimal
		if scanOK != simplexOK {
			t.Fatalf("t=%d Y=%d (boundary %d): scan says %v (bound %d), simplex says %v",
				t0, Y, cl.LoadTime[Y], scanOK, bound, simplexOK)
		}
		if !scanOK {
			break // later boundaries only add constraints
		}
	}
}
