package sched

import (
	"errors"
	"fmt"
	"math"

	"batsched/internal/battery"
	"batsched/internal/dkibam"
	"batsched/internal/load"
)

// MaxOptimalBatteries bounds the bank size of the optimal search. The memo
// key is a fixed-size comparable struct so that the map hashes it without
// allocating; twelve batteries is reachable for homogeneous banks thanks to
// symmetry canonicalization, which collapses the n! permutations of
// identical batteries into one state.
const MaxOptimalBatteries = 12

// MaxDistinctOptimalBatteries bounds the number of non-interchangeable
// battery types past the legacy 8-battery cap: symmetry canonicalization is
// what makes larger banks tractable, and it collapses nothing between
// distinct types, so a 9..12-battery bank must not be all-distinct.
const MaxDistinctOptimalBatteries = 8

// ErrTooManyBatteries is returned when the bank exceeds MaxOptimalBatteries.
var ErrTooManyBatteries = errors.New("sched: optimal search bank exceeds MaxOptimalBatteries")

// ErrBankTooDiverse is returned for banks past MaxDistinctOptimalBatteries
// batteries whose battery types are (almost) all distinct — without
// interchangeable batteries the exhaustive search has no symmetry to exploit
// and would run effectively forever.
var ErrBankTooDiverse = errors.New("sched: optimal search past 8 batteries needs interchangeable batteries")

// SearchStats counts the work an optimal search performed; the sweep runner
// and the evaluation service surface them so speedups (and regressions) are
// observable from the API.
type SearchStats struct {
	// States is the number of decision states expanded.
	States int64 `json:"states"`
	// Leaves is the number of complete trajectories reached.
	Leaves int64 `json:"leaves"`
	// MemoHits counts children resolved from the memo table.
	MemoHits int64 `json:"memo_hits"`
	// Pruned counts children cut by the admissible charge bound before
	// expansion.
	Pruned int64 `json:"pruned"`
}

// Add accumulates o into s (used to merge per-worker counters).
func (s *SearchStats) Add(o SearchStats) {
	s.States += o.States
	s.Leaves += o.Leaves
	s.MemoHits += o.MemoHits
	s.Pruned += o.Pruned
}

// SearchOptions select the optimal search's optimizations. The zero value is
// the reference exhaustive search (memoised, but neither canonicalized nor
// pruned), kept for differential testing and benchmarking against
// DefaultSearchOptions.
type SearchOptions struct {
	// Canonicalize sorts the states of identical batteries inside memo keys,
	// collapsing permutation-equivalent states (up to n! for a homogeneous
	// bank). Optimality is preserved because identical batteries are
	// interchangeable: relabelling them maps schedules to schedules of equal
	// lifetime (see DESIGN.md).
	Canonicalize bool
	// Prune enables branch-and-bound: children whose admissible
	// charge-vs-demand bound cannot beat the best lifetime found so far are
	// cut, and children are explored best-bound-first so the incumbent
	// tightens early.
	Prune bool
}

// DefaultSearchOptions enables every optimization; Optimal and
// OptimalParallel use them.
func DefaultSearchOptions() SearchOptions {
	return SearchOptions{Canonicalize: true, Prune: true}
}

// Optimal computes the maximum achievable system lifetime and a schedule
// that attains it by branch-and-bound depth-first search over all scheduling
// decisions of the discretized battery system, with memoisation on
// canonicalized decision states. The search is iterative (an explicit frame
// stack) and allocation-lean: it branches by snapshotting and restoring cell
// state on a single reusable system instead of cloning, and memoises on a
// compact comparable struct key instead of a formatted string.
//
// This search is an independent cross-check of the priced-timed-automata
// route of the paper (internal/takibam + internal/mc): both must agree on
// the optimal lifetime, which the integration tests assert.
func Optimal(ds []*dkibam.Discretization, cl load.Compiled) (float64, Schedule, error) {
	lt, schedule, _, err := OptimalWithOptions(ds, cl, DefaultSearchOptions())
	return lt, schedule, err
}

// OptimalWithStats is Optimal, additionally reporting search statistics.
func OptimalWithStats(ds []*dkibam.Discretization, cl load.Compiled) (float64, Schedule, SearchStats, error) {
	return OptimalWithOptions(ds, cl, DefaultSearchOptions())
}

// OptimalWithOptions runs the optimal search with explicit optimization
// options. The returned lifetime is identical for every option set — the
// options only change how much of the state space must be visited to prove
// it — which the differential tests pin on the paper's loads and banks.
func OptimalWithOptions(ds []*dkibam.Discretization, cl load.Compiled, opts SearchOptions) (float64, Schedule, SearchStats, error) {
	o, best, err := solveOptimal(ds, cl, opts)
	if err != nil {
		return 0, nil, SearchStats{}, err
	}
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return 0, nil, SearchStats{}, err
	}
	schedule, err := o.replay(sys)
	if err != nil {
		return 0, nil, SearchStats{}, err
	}
	return float64(best) * cl.StepMin, schedule, o.stats, nil
}

// solveOptimal runs the search from the initial state and returns the
// optimizer (holding the filled memo table) and the best death step.
func solveOptimal(ds []*dkibam.Discretization, cl load.Compiled, opts SearchOptions) (*optimizer, int, error) {
	if err := validateBank(ds); err != nil {
		return nil, 0, err
	}
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return nil, 0, err
	}
	o, err := newOptimizer(ds, cl, opts)
	if err != nil {
		return nil, 0, err
	}
	best, err := o.solve(sys)
	if err != nil {
		return nil, 0, err
	}
	return o, best, nil
}

// validateBank enforces the search's feasibility caps: at most
// MaxOptimalBatteries total, and past MaxDistinctOptimalBatteries the bank
// must contain interchangeable batteries for canonicalization to collapse.
func validateBank(ds []*dkibam.Discretization) error {
	if len(ds) > MaxOptimalBatteries {
		return fmt.Errorf("%w (have %d, max %d)", ErrTooManyBatteries, len(ds), MaxOptimalBatteries)
	}
	if len(ds) <= MaxDistinctOptimalBatteries {
		return nil
	}
	params := make([]battery.Params, len(ds))
	for i, d := range ds {
		params[i] = d.Params
	}
	if n := DistinctBatteryTypes(params); n > MaxDistinctOptimalBatteries {
		return fmt.Errorf("%w (bank of %d has %d distinct types, max %d)",
			ErrBankTooDiverse, len(ds), n, MaxDistinctOptimalBatteries)
	}
	return nil
}

// maxBound marks subtrees on which the charge bound cannot cut anything
// (the budget outlasts the load horizon).
const maxBound = math.MaxInt32

// memoEntry records what the search has proven about one canonical decision
// state. death is the best realized death step reached from the state and
// choice the canonical slot attaining it; bound is a proven upper bound on
// the death step achievable from the state. The entry is exact — the
// subtree's true optimum is known — exactly when death == bound. Inexact
// entries arise when branch-and-bound cut children of the subtree; they
// still prune (via bound) and still replay (via choice), but do not
// short-circuit a re-expansion. Updates keep death at its maximum and bound
// at its minimum, so entries only ever sharpen.
type memoEntry struct {
	death  int32
	bound  int32
	choice int8
}

// cellKey is one battery's state in a memo key. CDisch is omitted: decisions
// always happen with no battery discharging, so the stale discharge clock is
// physically meaningless (Choose resets it).
type cellKey struct {
	n, m, crecov int32
	empty        bool
}

// cellLess orders cell states within an identical-battery group; any strict
// total order works, it only has to be deterministic.
func cellLess(a, b cellKey) bool {
	if a.n != b.n {
		return a.n < b.n
	}
	if a.m != b.m {
		return a.m < b.m
	}
	if a.crecov != b.crecov {
		return a.crecov < b.crecov
	}
	return !a.empty && b.empty
}

// stateKey canonically encodes a decision state. Time (and hence the epoch
// and position within it) plus every battery's discrete state fully
// determine the future, because decisions always happen with no battery
// discharging. Within each identical-battery group the cell states are
// sorted (when canonicalization is on), so permutation-equivalent states
// share one key. Unused battery slots stay at the zero value.
type stateKey struct {
	t     int32
	cells [MaxOptimalBatteries]cellKey
}

// keyPerm maps canonical slots back to physical battery indices:
// keyPerm[slot] is the battery whose state sits at cells[slot] of the
// associated stateKey. Canonicalization only permutes positions within an
// identical-battery group, so slot and keyPerm[slot] always refer to
// batteries with the same discretization.
type keyPerm [MaxOptimalBatteries]int8

// slotOf inverts a keyPerm for one physical battery index.
func slotOf(pm keyPerm, battery int) int8 {
	for s := range pm {
		if pm[s] == int8(battery) {
			return int8(s)
		}
	}
	panic(fmt.Sprintf("sched: battery %d not in key permutation", battery))
}

type optimizer struct {
	cl    load.Compiled
	opts  SearchOptions
	memo  map[stateKey]memoEntry
	stats SearchStats

	nbat int
	// groups lists, per identical-battery group with at least two members,
	// the battery positions of that group (ascending); empty without
	// canonicalization.
	groups [][]int
	// demand is the load's draw-event profile backing the admissible bound;
	// nil without pruning.
	demand *load.Demand
	// incumbent is the best realized death step seen so far (-1 initially).
	// It only ever grows, and it persists across solve calls so that the
	// parallel search's per-worker optimizers keep pruning power between
	// subproblems.
	incumbent int32

	// frame, cell-buffer and child-buffer free lists, reused across pushes
	// and pops so the steady-state search does not allocate.
	frames   []frame
	bufs     [][]dkibam.Cell
	childers [][]child
}

// battGroupKey fingerprints what makes two batteries interchangeable: the
// physical parameters and the discretization grid (the Label is cosmetic).
type battGroupKey struct {
	capacity, c, kPrime float64
	stepMin, unitAmpMin float64
}

func groupKeyOf(d *dkibam.Discretization) battGroupKey {
	return battGroupKey{
		capacity: d.Params.Capacity, c: d.Params.C, kPrime: d.Params.KPrime,
		stepMin: d.StepMin, unitAmpMin: d.UnitAmpMin,
	}
}

// DistinctBatteryTypes counts the non-interchangeable battery types of a
// bank; it owns the interchangeability fingerprint shared by validateBank
// and the spec layer's up-front validation. Labels are cosmetic, and the
// discretization grid is uniform within a bank (NewSystem enforces it), so
// the physical parameters alone decide interchangeability; groupKeyOf adds
// the grid only as a defensive belt for the canonicalization groups.
func DistinctBatteryTypes(params []battery.Params) int {
	type key struct{ capacity, c, kPrime float64 }
	types := make(map[key]struct{}, len(params))
	for _, p := range params {
		types[key{p.Capacity, p.C, p.KPrime}] = struct{}{}
	}
	return len(types)
}

func newOptimizer(ds []*dkibam.Discretization, cl load.Compiled, opts SearchOptions) (*optimizer, error) {
	o := &optimizer{
		cl:        cl,
		opts:      opts,
		memo:      make(map[stateKey]memoEntry),
		nbat:      len(ds),
		incumbent: -1,
	}
	if opts.Canonicalize {
		byKey := make(map[battGroupKey][]int)
		order := make([]battGroupKey, 0, len(ds))
		for i, d := range ds {
			k := groupKeyOf(d)
			if _, seen := byKey[k]; !seen {
				order = append(order, k)
			}
			byKey[k] = append(byKey[k], i)
		}
		for _, k := range order {
			if pos := byKey[k]; len(pos) > 1 {
				o.groups = append(o.groups, pos)
			}
		}
	}
	if opts.Prune {
		d, err := load.NewDemand(cl)
		if err != nil {
			return nil, err
		}
		o.demand = d
	}
	return o, nil
}

// makeKey canonically encodes sys's decision state and returns the slot
// permutation that maps the key back to physical battery indices.
func (o *optimizer) makeKey(sys *dkibam.System) (stateKey, keyPerm) {
	var k stateKey
	var pm keyPerm
	k.t = int32(sys.Step())
	for i := 0; i < o.nbat; i++ {
		c := sys.Cell(i)
		k.cells[i] = cellKey{n: int32(c.N), m: int32(c.M), crecov: int32(c.CRecov), empty: c.Empty}
		pm[i] = int8(i)
	}
	for _, pos := range o.groups {
		// Insertion sort of the group's cell states across its positions,
		// carrying the permutation; groups are tiny, and the stable sort
		// keeps ties (physically identical batteries) in index order.
		for a := 1; a < len(pos); a++ {
			for b := a; b > 0 && cellLess(k.cells[pos[b]], k.cells[pos[b-1]]); b-- {
				k.cells[pos[b]], k.cells[pos[b-1]] = k.cells[pos[b-1]], k.cells[pos[b]]
				pm[pos[b]], pm[pos[b-1]] = pm[pos[b-1]], pm[pos[b]]
			}
		}
	}
	return k, pm
}

// bound returns an admissible upper bound on the death step achievable from
// sys's decision state: the bank can afford at most sum(alive n_i) draw
// events (each draw needs n >= 1 before it and consumes at least one unit)
// plus alive-1 phase resets (each mid-job replacement delays the draw grid
// by less than one period, saving at most one draw, and needs a death of a
// previously alive battery), and the load demands draws on a fixed grid —
// see load.Demand and the admissibility proof in DESIGN.md.
func (o *optimizer) bound(sys *dkibam.System) int32 {
	var supply, alive int64
	for i := 0; i < o.nbat; i++ {
		c := sys.Cell(i)
		if !c.Empty {
			supply += int64(c.N)
			alive++
		}
	}
	step, finite := o.demand.LastServableStep(sys.Step(), sys.Epoch(), supply+alive-1)
	if !finite {
		return maxBound
	}
	return int32(step)
}

// frame is one suspended decision node of the iterative depth-first search.
// Children are expanded eagerly (each advanced to its own decision state)
// and sorted best-bound-first; resolved ones (leaves, exact memo hits) fold
// into best immediately and never occupy a child slot.
type frame struct {
	key      stateKey
	children []child
	next     int   // index into children of the next branch to explore
	best     int32 // best death step over resolved branches
	choice   int8  // canonical slot attaining best
	// prunedUB is the largest admissible bound over branches that were cut
	// (or resolved inexactly); -1 when none. The frame's value is exact iff
	// best >= prunedUB at completion: everything skipped provably could not
	// exceed what was found.
	prunedUB int32
}

// child is one expanded, not yet explored branch of a frame.
type child struct {
	key   stateKey
	pm    keyPerm
	state dkibam.State
	slot  int8  // canonical slot of the parent choice reaching this child
	ub    int32 // admissible bound on the child's death step
}

// errHorizon marks search branches on which the batteries outlived the load.
var errHorizon = errors.New("sched: optimal search ran out of load horizon")

// fold accounts one branch outcome into the frame: v is a realized death
// step (which also tightens the global incumbent), vb a proven upper bound
// on the branch (vb > v when the branch was resolved inexactly).
func (o *optimizer) fold(f *frame, slot int8, v, vb int32) {
	if v > f.best {
		f.best, f.choice = v, slot
	}
	if v > o.incumbent {
		o.incumbent = v
	}
	if vb > v && vb > f.prunedUB {
		f.prunedUB = vb
	}
}

// skip accounts a branch cut by the bound ub.
func (o *optimizer) skip(f *frame, ub int32) {
	o.stats.Pruned++
	if ub > f.prunedUB {
		f.prunedUB = ub
	}
}

// expand builds the frame of the decision state sys currently sits at
// (snapshotted in parent): every alive battery is tried, advanced to its own
// next decision, and either resolved on the spot (leaf, exact memo hit),
// cut by the admissible bound, or kept as a child — sorted best-bound-first
// so the incumbent tightens as early as possible.
func (o *optimizer) expand(sys *dkibam.System, parent dkibam.State, key stateKey, pm keyPerm) (frame, error) {
	o.stats.States++
	dec, pending, err := sys.AdvanceToDecision()
	if err != nil {
		return frame{}, fmt.Errorf("%w: %w", errHorizon, err)
	}
	if !pending {
		return frame{}, errors.New("sched: optimal search expanded off a decision state")
	}
	// dec.Alive aliases the system's scratch buffer, which the child
	// advances below overwrite; the bank fits a stack copy by construction.
	var alive [MaxOptimalBatteries]int
	na := copy(alive[:], dec.Alive)
	f := frame{key: key, best: -1, choice: -1, prunedUB: -1, children: o.takeChildren()}
	for ai := 0; ai < na; ai++ {
		idx := alive[ai]
		if ai > 0 {
			sys.RestoreState(parent)
		}
		if err := sys.Choose(idx); err != nil {
			o.abandon(&f)
			return frame{}, err
		}
		slot := slotOf(pm, idx)
		_, pending, err := sys.AdvanceToDecision()
		if err != nil {
			o.abandon(&f)
			return frame{}, fmt.Errorf("%w: %w", errHorizon, err)
		}
		if !pending {
			o.stats.Leaves++
			v := int32(sys.DeathStep())
			o.fold(&f, slot, v, v)
			continue
		}
		ckey, cpm := o.makeKey(sys)
		ub := int32(maxBound)
		if e, ok := o.memo[ckey]; ok {
			if e.death == e.bound {
				o.stats.MemoHits++
				o.fold(&f, slot, e.death, e.death)
				continue
			}
			if o.opts.Prune && e.bound <= o.incumbent {
				o.skip(&f, e.bound)
				continue
			}
			// An inexact entry still carries a proven bound, often tighter
			// than the fresh charge bound: keep the minimum for ordering and
			// for the prune re-check at descend time.
			ub = e.bound
		}
		if o.opts.Prune {
			if b := o.bound(sys); b < ub {
				ub = b
			}
			if ub <= o.incumbent {
				o.skip(&f, ub)
				continue
			}
		}
		f.children = append(f.children, child{
			key: ckey, pm: cpm,
			state: sys.SaveState(o.takeBuf()),
			slot:  slot, ub: ub,
		})
	}
	// Best-bound-first, ties on the canonical slot for determinism.
	cs := f.children
	for a := 1; a < len(cs); a++ {
		for b := a; b > 0 && (cs[b].ub > cs[b-1].ub || (cs[b].ub == cs[b-1].ub && cs[b].slot < cs[b-1].slot)); b-- {
			cs[b], cs[b-1] = cs[b-1], cs[b]
		}
	}
	return f, nil
}

// solve explores the decision tree rooted at sys's next decision point and
// returns the best achievable death step. sys is used as scratch space and
// left in an unspecified state.
func (o *optimizer) solve(sys *dkibam.System) (int, error) {
	_, pending, err := sys.AdvanceToDecision()
	if err != nil {
		return 0, fmt.Errorf("%w: %w", errHorizon, err)
	}
	if !pending {
		o.stats.Leaves++
		return sys.DeathStep(), nil
	}
	rootKey, rootPm := o.makeKey(sys)
	if e, ok := o.memo[rootKey]; ok && e.death == e.bound {
		o.stats.MemoHits++
		return int(e.death), nil
	}
	rootState := sys.SaveState(o.takeBuf())
	root, err := o.expand(sys, rootState, rootKey, rootPm)
	o.releaseBuf(rootState.Cells)
	if err != nil {
		return 0, err
	}
	stack := o.frames[:0]
	stack = append(stack, root)
	// result carries the (death, bound) of the most recently completed
	// subtree; the owning frame folds it in on its next visit.
	var result, resultBound int32
	returning := false
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if returning {
			o.fold(f, f.children[f.next-1].slot, result, resultBound)
			returning = false
		}
		descended := false
		for f.next < len(f.children) {
			c := &f.children[f.next]
			f.next++
			// The incumbent has typically grown since this child was
			// expanded, and its subtree may have been resolved or bounded
			// away under a sibling: re-check both before descending.
			if o.opts.Prune && c.ub <= o.incumbent {
				o.skip(f, c.ub)
				o.releaseChild(c)
				continue
			}
			if e, ok := o.memo[c.key]; ok {
				if e.death == e.bound {
					o.stats.MemoHits++
					o.fold(f, c.slot, e.death, e.death)
					o.releaseChild(c)
					continue
				}
				if o.opts.Prune && e.bound <= o.incumbent {
					o.skip(f, e.bound)
					o.releaseChild(c)
					continue
				}
			}
			sys.RestoreState(c.state)
			nf, err := o.expand(sys, c.state, c.key, c.pm)
			o.releaseChild(c)
			if err != nil {
				for i := range stack {
					o.abandon(&stack[i])
				}
				o.frames = stack[:0]
				return 0, err
			}
			stack = append(stack, nf)
			descended = true
			break
		}
		if descended {
			continue
		}
		// Frame complete: everything skipped is provably at most prunedUB,
		// so the value is exact when best reaches it.
		bound := f.best
		if f.prunedUB > f.best {
			bound = f.prunedUB
		}
		o.store(f.key, f.best, bound, f.choice)
		result, resultBound = f.best, bound
		returning = true
		o.releaseChildren(f.children)
		f.children = nil
		stack = stack[:len(stack)-1]
	}
	o.frames = stack
	return int(result), nil
}

// store merges a completed frame into the memo: death only grows (it is a
// realized value, with choice following it), bound only shrinks (it is a
// proven limit). Both stay valid under the merge because every stored death
// is realizable from the state and every stored bound provably limits it.
func (o *optimizer) store(key stateKey, death, bound int32, choice int8) {
	if e, ok := o.memo[key]; ok {
		if death > e.death {
			e.death, e.choice = death, choice
		}
		if bound < e.bound {
			e.bound = bound
		}
		o.memo[key] = e
		return
	}
	o.memo[key] = memoEntry{death: death, bound: bound, choice: choice}
}

// Buffer pools. Children carry saved cell states; both the child slices and
// the cell buffers are recycled so the steady-state search does not
// allocate.

func (o *optimizer) takeBuf() []dkibam.Cell {
	if n := len(o.bufs); n > 0 {
		b := o.bufs[n-1]
		o.bufs = o.bufs[:n-1]
		return b
	}
	return nil
}

func (o *optimizer) releaseBuf(buf []dkibam.Cell) {
	if buf != nil {
		o.bufs = append(o.bufs, buf)
	}
}

func (o *optimizer) releaseChild(c *child) {
	o.releaseBuf(c.state.Cells)
	c.state.Cells = nil
}

func (o *optimizer) takeChildren() []child {
	if n := len(o.childers); n > 0 {
		cs := o.childers[n-1]
		o.childers = o.childers[:n-1]
		return cs[:0]
	}
	return make([]child, 0, MaxOptimalBatteries)
}

func (o *optimizer) releaseChildren(cs []child) {
	if cs != nil {
		o.childers = append(o.childers, cs)
	}
}

// abandon releases a frame's remaining child buffers (error unwinding).
func (o *optimizer) abandon(f *frame) {
	for i := f.next; i < len(f.children); i++ {
		o.releaseChild(&f.children[i])
	}
	o.releaseChildren(f.children)
	f.children = nil
}

// replay reconstructs an optimal schedule from the memo table by walking the
// recorded best choices from sys's current state. Choices are stored as
// canonical slots, so each step maps the slot back through the current
// state's permutation — this is what keeps replay emitting concrete battery
// indices even though permutation-equivalent states share memo entries.
func (o *optimizer) replay(sys *dkibam.System) (Schedule, error) {
	var schedule Schedule
	for {
		dec, pending, err := sys.AdvanceToDecision()
		if err != nil {
			return nil, err
		}
		if !pending {
			return schedule, nil
		}
		key, pm := o.makeKey(sys)
		entry, ok := o.memo[key]
		if !ok || entry.choice < 0 {
			return nil, errors.New("sched: optimal replay hit an unexplored state")
		}
		battery := int(pm[entry.choice])
		schedule = append(schedule, Choice{
			Step:    dec.Step,
			Minutes: float64(dec.Step) * o.cl.StepMin,
			Epoch:   dec.Epoch,
			Reason:  dec.Reason,
			Battery: battery,
		})
		if err := sys.Choose(battery); err != nil {
			return nil, err
		}
	}
}
