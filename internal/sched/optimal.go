package sched

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"batsched/internal/dkibam"
	"batsched/internal/load"
)

// Optimal computes the maximum achievable system lifetime and a schedule
// that attains it by exhaustive depth-first search over all scheduling
// decisions of the discretized battery system, with memoisation on decision
// states and an admissible charge-budget bound for pruning.
//
// This search is an independent cross-check of the priced-timed-automata
// route of the paper (internal/takibam + internal/mc): both must agree on
// the optimal lifetime, which the integration tests assert.
func Optimal(ds []*dkibam.Discretization, cl load.Compiled) (float64, Schedule, error) {
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return 0, nil, err
	}
	o := &optimizer{
		cl:   cl,
		memo: make(map[string]memoEntry),
	}
	best, err := o.solve(sys)
	if err != nil {
		return 0, nil, err
	}
	schedule, err := o.replay(dsClone(sys))
	if err != nil {
		return 0, nil, err
	}
	return float64(best) * cl.StepMin, schedule, nil
}

func dsClone(s *dkibam.System) *dkibam.System { return s.Clone() }

type memoEntry struct {
	death  int // best achievable death step from this decision state
	choice int // battery index attaining it
}

type optimizer struct {
	cl   load.Compiled
	memo map[string]memoEntry
}

// errHorizon marks search branches on which the batteries outlived the load.
var errHorizon = errors.New("sched: optimal search ran out of load horizon")

// solve advances the system to its next decision point (or death) and
// returns the best achievable death step.
func (o *optimizer) solve(sys *dkibam.System) (int, error) {
	dec, pending, err := sys.AdvanceToDecision()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", errHorizon, err)
	}
	if !pending {
		return sys.DeathStep(), nil
	}
	key := stateKey(sys)
	if entry, ok := o.memo[key]; ok {
		return entry.death, nil
	}
	best, bestChoice := -1, -1
	for _, idx := range dec.Alive {
		branch := sys.Clone()
		if err := branch.Choose(idx); err != nil {
			return 0, err
		}
		death, err := o.solve(branch)
		if err != nil {
			return 0, err
		}
		if death > best {
			best, bestChoice = death, idx
		}
	}
	o.memo[key] = memoEntry{death: best, choice: bestChoice}
	return best, nil
}

// replay reconstructs an optimal schedule from the memo table.
func (o *optimizer) replay(sys *dkibam.System) (Schedule, error) {
	var schedule Schedule
	for {
		dec, pending, err := sys.AdvanceToDecision()
		if err != nil {
			return nil, err
		}
		if !pending {
			return schedule, nil
		}
		entry, ok := o.memo[stateKey(sys)]
		if !ok {
			return nil, errors.New("sched: optimal replay hit an unexplored state")
		}
		schedule = append(schedule, Choice{
			Step:    dec.Step,
			Minutes: float64(dec.Step) * o.cl.StepMin,
			Epoch:   dec.Epoch,
			Reason:  dec.Reason,
			Battery: entry.choice,
		})
		if err := sys.Choose(entry.choice); err != nil {
			return nil, err
		}
	}
}

// stateKey canonically encodes a decision state. Time (and hence the epoch
// and position within it) plus every battery's discrete state fully
// determine the future, because decisions always happen with no battery
// discharging.
func stateKey(sys *dkibam.System) string {
	var b strings.Builder
	b.Grow(16 + 20*sys.Batteries())
	b.WriteString(strconv.Itoa(sys.Step()))
	for i := 0; i < sys.Batteries(); i++ {
		c := sys.Cell(i)
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(c.N))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(c.M))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(c.CRecov))
		if c.Empty {
			b.WriteString(",e")
		}
	}
	return b.String()
}
