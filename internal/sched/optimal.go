package sched

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"batsched/internal/battery"
	"batsched/internal/dkibam"
	"batsched/internal/load"
)

// MaxOptimalBatteries bounds the bank size of the optimal search. The memo
// key is a fixed-size comparable struct so that the map hashes it without
// allocating; sixteen batteries is reachable for homogeneous and
// few-type banks thanks to symmetry canonicalization (which collapses the
// n! permutations of identical batteries into one state) combined with the
// LP-relaxation bound (which prunes the availability-starved subtrees the
// cheap charge bound cannot see).
const MaxOptimalBatteries = 16

// MaxDistinctOptimalBatteries bounds the number of non-interchangeable
// battery types past the legacy 8-battery cap: symmetry canonicalization is
// what makes larger banks tractable, and it collapses nothing between
// distinct types, so a 9..16-battery bank must not be all-distinct.
const MaxDistinctOptimalBatteries = 8

// ErrTooManyBatteries is returned when the bank exceeds MaxOptimalBatteries.
var ErrTooManyBatteries = errors.New("sched: optimal search bank exceeds MaxOptimalBatteries")

// ErrBankTooDiverse is returned for banks past MaxDistinctOptimalBatteries
// batteries whose battery types are (almost) all distinct — without
// interchangeable batteries the exhaustive search has no symmetry to exploit
// and would run effectively forever.
var ErrBankTooDiverse = errors.New("sched: optimal search past 8 batteries needs interchangeable batteries")

// SearchStats counts the work an optimal search performed; the sweep runner
// and the evaluation service surface them so speedups (and regressions) are
// observable from the API.
type SearchStats struct {
	// States is the number of decision states expanded.
	States int64 `json:"states"`
	// Leaves is the number of complete trajectories reached.
	Leaves int64 `json:"leaves"`
	// MemoHits counts children resolved from a memo entry this worker stored
	// itself (for the serial search: every memo resolution).
	MemoHits int64 `json:"memo_hits"`
	// Pruned counts children cut by the admissible charge bound (or by a
	// previously proven memo bound) before expansion.
	Pruned int64 `json:"pruned"`
	// LPBounds counts LP-relaxation bound evaluations. The LP bound is lazy:
	// it runs only on children the cheap charge bound failed to prune.
	LPBounds int64 `json:"lp_bounds"`
	// LPPruned counts children cut only thanks to the LP-relaxation bound
	// (the cheap bound alone would have descended).
	LPPruned int64 `json:"lp_pruned"`
	// Steals counts tasks taken from another worker's deque by the parallel
	// search's work stealing; zero for serial searches.
	Steals int64 `json:"steals"`
	// SharedMemoHits counts memo hits served by an entry another worker
	// stored — the cross-worker sharing the parallel search's shared table
	// buys; zero for serial searches. A lookup increments exactly one of
	// MemoHits and SharedMemoHits, in the stats of the one worker that
	// performed it, so the two never double-count.
	SharedMemoHits int64 `json:"shared_memo_hits"`
}

// Add accumulates o into s (used to merge per-worker counters).
func (s *SearchStats) Add(o SearchStats) {
	s.States += o.States
	s.Leaves += o.Leaves
	s.MemoHits += o.MemoHits
	s.Pruned += o.Pruned
	s.LPBounds += o.LPBounds
	s.LPPruned += o.LPPruned
	s.Steals += o.Steals
	s.SharedMemoHits += o.SharedMemoHits
}

// SearchOptions select the optimal search's optimizations. The zero value is
// the reference exhaustive search (memoised, but neither canonicalized nor
// pruned), kept for differential testing and benchmarking against
// DefaultSearchOptions.
type SearchOptions struct {
	// Canonicalize sorts the states of identical batteries inside memo keys,
	// collapsing permutation-equivalent states (up to n! for a homogeneous
	// bank). Optimality is preserved because identical batteries are
	// interchangeable: relabelling them maps schedules to schedules of equal
	// lifetime (see DESIGN.md).
	Canonicalize bool
	// Prune enables branch-and-bound: children whose admissible
	// charge-vs-demand bound cannot beat the best lifetime found so far are
	// cut, and children are explored best-bound-first so the incumbent
	// tightens early.
	Prune bool
	// LPBound layers a second, tighter admissible bound — the LP relaxation
	// of the remaining-schedule problem (see lpBounder) — behind the cheap
	// charge bound. It is evaluated lazily, only on children the cheap bound
	// failed to prune, and only at their first expansion (re-encounters carry
	// a memo bound that is at least as sharp). Requires Prune.
	LPBound bool
}

// DefaultSearchOptions enables every optimization; Optimal and
// OptimalParallel use them.
func DefaultSearchOptions() SearchOptions {
	return SearchOptions{Canonicalize: true, Prune: true, LPBound: true}
}

// Optimal computes the maximum achievable system lifetime and a schedule
// that attains it by branch-and-bound depth-first search over all scheduling
// decisions of the discretized battery system, with memoisation on
// canonicalized decision states. The search is iterative (an explicit frame
// stack) and allocation-lean: it branches by snapshotting and restoring cell
// state on a single reusable system instead of cloning, and memoises on a
// compact comparable struct key instead of a formatted string.
//
// This search is an independent cross-check of the priced-timed-automata
// route of the paper (internal/takibam + internal/mc): both must agree on
// the optimal lifetime, which the integration tests assert.
func Optimal(ds []*dkibam.Discretization, cl load.Compiled) (float64, Schedule, error) {
	lt, schedule, _, err := OptimalWithOptions(ds, cl, DefaultSearchOptions())
	return lt, schedule, err
}

// OptimalWithStats is Optimal, additionally reporting search statistics.
func OptimalWithStats(ds []*dkibam.Discretization, cl load.Compiled) (float64, Schedule, SearchStats, error) {
	return OptimalWithOptions(ds, cl, DefaultSearchOptions())
}

// OptimalWithOptions runs the optimal search with explicit optimization
// options. The returned lifetime and schedule are identical for every option
// set — the options only change how much of the state space must be visited
// to prove it — which the differential tests pin on the paper's loads and
// banks. The schedule is the canonical optimal schedule (see reconstruct),
// so it is also identical to what the parallel search returns.
func OptimalWithOptions(ds []*dkibam.Discretization, cl load.Compiled, opts SearchOptions) (float64, Schedule, SearchStats, error) {
	o, best, err := solveOptimal(ds, cl, opts)
	if err != nil {
		return 0, nil, SearchStats{}, err
	}
	walk, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return 0, nil, SearchStats{}, err
	}
	scratch, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return 0, nil, SearchStats{}, err
	}
	schedule, err := o.reconstruct(walk, scratch, int32(best))
	if err != nil {
		return 0, nil, SearchStats{}, err
	}
	return float64(best) * cl.StepMin, schedule, o.stats, nil
}

// solveOptimal runs the search from the initial state and returns the
// optimizer (holding the filled memo table) and the best death step.
func solveOptimal(ds []*dkibam.Discretization, cl load.Compiled, opts SearchOptions) (*optimizer, int, error) {
	if err := validateBank(ds); err != nil {
		return nil, 0, err
	}
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return nil, 0, err
	}
	o, err := newOptimizer(ds, cl, opts)
	if err != nil {
		return nil, 0, err
	}
	best, err := o.solve(sys)
	if err != nil {
		return nil, 0, err
	}
	return o, best, nil
}

// validateBank enforces the search's feasibility caps: at most
// MaxOptimalBatteries total, and past MaxDistinctOptimalBatteries the bank
// must contain interchangeable batteries for canonicalization to collapse.
func validateBank(ds []*dkibam.Discretization) error {
	if len(ds) > MaxOptimalBatteries {
		return fmt.Errorf("%w (have %d, max %d)", ErrTooManyBatteries, len(ds), MaxOptimalBatteries)
	}
	if len(ds) <= MaxDistinctOptimalBatteries {
		return nil
	}
	params := make([]battery.Params, len(ds))
	for i, d := range ds {
		params[i] = d.Params
	}
	if n := DistinctBatteryTypes(params); n > MaxDistinctOptimalBatteries {
		return fmt.Errorf("%w (bank of %d has %d distinct types, max %d)",
			ErrBankTooDiverse, len(ds), n, MaxDistinctOptimalBatteries)
	}
	return nil
}

// maxBound marks subtrees on which the charge bound cannot cut anything
// (the budget outlasts the load horizon).
const maxBound = math.MaxInt32

// lpProbation is how many LP-relaxation evaluations a search gets to produce
// its first LP-only prune before the LP bound is disabled for the rest of
// that search (per optimizer, so per worker in the parallel search).
const lpProbation = 4096

// memoEntry records what the search has proven about one canonical decision
// state. death is the best realized death step reached from the state; bound
// is a proven upper bound on the death step achievable from it. The entry is
// exact — the subtree's true optimum is known — exactly when death == bound.
// Inexact entries arise when branch-and-bound cut children of the subtree;
// they still prune (via bound) but do not short-circuit a re-expansion.
// Updates keep death at its maximum and bound at its minimum, so entries
// only ever sharpen. by is the worker that stored the current death (0 for
// the serial search); it only feeds the MemoHits/SharedMemoHits attribution
// and carries no search meaning.
type memoEntry struct {
	death int32
	bound int32
	by    uint8
}

// memoTable is the memo storage of an optimizer. The serial search uses a
// plain map (mapMemo); the parallel search shares one sharded, mutex-striped
// table (sharedMemo) across all workers. Both implement the same merge
// semantics: death keeps its maximum (it is a realized value), bound its
// minimum (it is a proven limit). Both stay valid under the merge because
// every stored death is realizable from the state and every stored bound
// provably limits it — which is also why entries written concurrently by
// different workers, each under a different incumbent, can be mixed freely
// (bound proofs never depend on the incumbent; see DESIGN.md).
type memoTable interface {
	lookup(k stateKey) (memoEntry, bool)
	merge(k stateKey, e memoEntry)
}

// mapMemo is the serial search's memo table.
type mapMemo map[stateKey]memoEntry

func (m mapMemo) lookup(k stateKey) (memoEntry, bool) {
	e, ok := m[k]
	return e, ok
}

func (m mapMemo) merge(k stateKey, e memoEntry) {
	if old, ok := m[k]; ok {
		if old.death > e.death {
			e.death, e.by = old.death, old.by
		}
		if old.bound < e.bound {
			e.bound = old.bound
		}
	}
	m[k] = e
}

// cellKey is one battery's state in a memo key. CDisch is omitted: decisions
// always happen with no battery discharging, so the stale discharge clock is
// physically meaningless (Choose resets it).
type cellKey struct {
	n, m, crecov int32
	empty        bool
}

// cellLess orders cell states within an identical-battery group; any strict
// total order works, it only has to be deterministic.
func cellLess(a, b cellKey) bool {
	if a.n != b.n {
		return a.n < b.n
	}
	if a.m != b.m {
		return a.m < b.m
	}
	if a.crecov != b.crecov {
		return a.crecov < b.crecov
	}
	return !a.empty && b.empty
}

// stateKey canonically encodes a decision state. Time (and hence the epoch
// and position within it) plus every battery's discrete state fully
// determine the future, because decisions always happen with no battery
// discharging. Within each identical-battery group the cell states are
// sorted (when canonicalization is on), so permutation-equivalent states
// share one key. Unused battery slots stay at the zero value.
type stateKey struct {
	t     int32
	cells [MaxOptimalBatteries]cellKey
}

type optimizer struct {
	cl    load.Compiled
	opts  SearchOptions
	memo  memoTable
	stats SearchStats

	nbat int
	// groups lists, per identical-battery group with at least two members,
	// the battery positions of that group (ascending); empty without
	// canonicalization.
	groups [][]int
	// demand is the load's draw-event profile backing the admissible bound;
	// nil without pruning.
	demand *load.Demand
	// lpb evaluates the LP-relaxation bound; nil unless Prune and LPBound.
	lpb *lpBounder

	// incumbent is the best realized death step this optimizer knows of (-1
	// initially). It only ever grows within a solve, and it persists across
	// solve calls; reconstruct deliberately re-primes it per probe.
	incumbent int32
	// ginc, when non-nil, is the parallel search's global incumbent; realized
	// values are published to it and prune checks refresh from it, so one
	// worker's finds cut every worker's subtrees.
	ginc *atomic.Int32
	// wid is this optimizer's worker id, matched against memoEntry.by for
	// the MemoHits/SharedMemoHits attribution.
	wid uint8
	// spawn, when non-nil, is offered every child the solve loop is about to
	// descend into; returning true moves the child's subtree to another task
	// (the parallel search's work splitting). The frame then accounts the
	// child like a cut branch — its admissible bound keeps the parent's memo
	// entry honest, and its realized value reaches the incumbent through the
	// task that solves it.
	spawn func(c *child) bool

	// frame, cell-buffer and child-buffer free lists, reused across pushes
	// and pops so the steady-state search does not allocate.
	frames   []frame
	bufs     [][]dkibam.Cell
	childers [][]child
}

// battGroupKey fingerprints what makes two batteries interchangeable: the
// physical parameters and the discretization grid (the Label is cosmetic).
type battGroupKey struct {
	capacity, c, kPrime float64
	stepMin, unitAmpMin float64
}

func groupKeyOf(d *dkibam.Discretization) battGroupKey {
	return battGroupKey{
		capacity: d.Params.Capacity, c: d.Params.C, kPrime: d.Params.KPrime,
		stepMin: d.StepMin, unitAmpMin: d.UnitAmpMin,
	}
}

// DistinctBatteryTypes counts the non-interchangeable battery types of a
// bank; it owns the interchangeability fingerprint shared by validateBank
// and the spec layer's up-front validation. Labels are cosmetic, and the
// discretization grid is uniform within a bank (NewSystem enforces it), so
// the physical parameters alone decide interchangeability; groupKeyOf adds
// the grid only as a defensive belt for the canonicalization groups.
func DistinctBatteryTypes(params []battery.Params) int {
	type key struct{ capacity, c, kPrime float64 }
	types := make(map[key]struct{}, len(params))
	for _, p := range params {
		types[key{p.Capacity, p.C, p.KPrime}] = struct{}{}
	}
	return len(types)
}

func newOptimizer(ds []*dkibam.Discretization, cl load.Compiled, opts SearchOptions) (*optimizer, error) {
	o := &optimizer{
		cl:        cl,
		opts:      opts,
		memo:      make(mapMemo),
		nbat:      len(ds),
		incumbent: -1,
	}
	if opts.Canonicalize {
		byKey := make(map[battGroupKey][]int)
		order := make([]battGroupKey, 0, len(ds))
		for i, d := range ds {
			k := groupKeyOf(d)
			if _, seen := byKey[k]; !seen {
				order = append(order, k)
			}
			byKey[k] = append(byKey[k], i)
		}
		for _, k := range order {
			if pos := byKey[k]; len(pos) > 1 {
				o.groups = append(o.groups, pos)
			}
		}
	}
	if opts.Prune {
		d, err := load.NewDemand(cl)
		if err != nil {
			return nil, err
		}
		o.demand = d
		if opts.LPBound {
			o.lpb = newLPBounder(ds, cl)
		}
	}
	return o, nil
}

// cumbent returns the freshest incumbent this optimizer may prune against,
// folding in the global one when the search is parallel.
func (o *optimizer) cumbent() int32 {
	if o.ginc != nil {
		if g := o.ginc.Load(); g > o.incumbent {
			o.incumbent = g
		}
	}
	return o.incumbent
}

// raise publishes a realized death step into the incumbent(s). The global
// incumbent is monotone (CAS-max), so concurrent raises keep the maximum.
func (o *optimizer) raise(v int32) {
	if v <= o.incumbent {
		return
	}
	o.incumbent = v
	if o.ginc != nil {
		for {
			cur := o.ginc.Load()
			if v <= cur || o.ginc.CompareAndSwap(cur, v) {
				return
			}
		}
	}
}

// noteHit attributes one exact memo resolution: to MemoHits when this worker
// stored the entry's death itself, to SharedMemoHits when another worker
// did. Exactly one counter moves per lookup.
func (o *optimizer) noteHit(e memoEntry) {
	if e.by == o.wid {
		o.stats.MemoHits++
	} else {
		o.stats.SharedMemoHits++
	}
}

// makeKey canonically encodes sys's decision state.
func (o *optimizer) makeKey(sys *dkibam.System) stateKey {
	var k stateKey
	k.t = int32(sys.Step())
	for i := 0; i < o.nbat; i++ {
		c := sys.Cell(i)
		k.cells[i] = cellKey{n: int32(c.N), m: int32(c.M), crecov: int32(c.CRecov), empty: c.Empty}
	}
	for _, pos := range o.groups {
		// Insertion sort of the group's cell states across its positions;
		// groups are tiny, and the stable sort keeps ties (physically
		// identical batteries) in index order.
		for a := 1; a < len(pos); a++ {
			for b := a; b > 0 && cellLess(k.cells[pos[b]], k.cells[pos[b-1]]); b-- {
				k.cells[pos[b]], k.cells[pos[b-1]] = k.cells[pos[b-1]], k.cells[pos[b]]
			}
		}
	}
	return k
}

// bound returns an admissible upper bound on the death step achievable from
// sys's decision state: the bank can afford at most sum(alive n_i) draw
// events (each draw needs n >= 1 before it and consumes at least one unit)
// plus alive-1 phase resets (each mid-job replacement delays the draw grid
// by less than one period, saving at most one draw, and needs a death of a
// previously alive battery), and the load demands draws on a fixed grid —
// see load.Demand and the admissibility proof in DESIGN.md.
func (o *optimizer) bound(sys *dkibam.System) int32 {
	var supply, alive int64
	for i := 0; i < o.nbat; i++ {
		c := sys.Cell(i)
		if !c.Empty {
			supply += int64(c.N)
			alive++
		}
	}
	step, finite := o.demand.LastServableStep(sys.Step(), sys.Epoch(), supply+alive-1)
	if !finite {
		return maxBound
	}
	return int32(step)
}

// frame is one suspended decision node of the iterative depth-first search.
// Children are expanded eagerly (each advanced to its own decision state)
// and sorted best-bound-first; resolved ones (leaves, exact memo hits) fold
// into best immediately and never occupy a child slot.
type frame struct {
	key      stateKey
	children []child
	next     int   // index into children of the next branch to explore
	best     int32 // best death step over resolved branches
	// prunedUB is the largest admissible bound over branches that were cut
	// (or resolved inexactly, or handed to another task); -1 when none. The
	// frame's value is exact iff best >= prunedUB at completion: everything
	// skipped provably could not exceed what was found.
	prunedUB int32
}

// child is one expanded, not yet explored branch of a frame.
type child struct {
	key   stateKey
	state dkibam.State
	idx   int8  // physical battery index of the parent choice reaching this child
	ub    int32 // admissible bound on the child's death step
}

// errHorizon marks search branches on which the batteries outlived the load.
var errHorizon = errors.New("sched: optimal search ran out of load horizon")

// fold accounts one branch outcome into the frame: v is a realized death
// step (which also tightens the incumbent), vb a proven upper bound on the
// branch (vb > v when the branch was resolved inexactly).
func (o *optimizer) fold(f *frame, v, vb int32) {
	if v > f.best {
		f.best = v
	}
	o.raise(v)
	if vb > v && vb > f.prunedUB {
		f.prunedUB = vb
	}
}

// skip accounts a branch cut by the bound ub.
func (o *optimizer) skip(f *frame, ub int32) {
	o.stats.Pruned++
	if ub > f.prunedUB {
		f.prunedUB = ub
	}
}

// expand builds the frame of the decision state sys currently sits at
// (snapshotted in parent): every alive battery is tried, advanced to its own
// next decision, and either resolved on the spot (leaf, exact memo hit),
// cut by the admissible bound, or kept as a child — sorted best-bound-first
// so the incumbent tightens as early as possible.
func (o *optimizer) expand(sys *dkibam.System, parent dkibam.State, key stateKey) (frame, error) {
	o.stats.States++
	dec, pending, err := sys.AdvanceToDecision()
	if err != nil {
		return frame{}, fmt.Errorf("%w: %w", errHorizon, err)
	}
	if !pending {
		return frame{}, errors.New("sched: optimal search expanded off a decision state")
	}
	// dec.Alive aliases the system's scratch buffer, which the child
	// advances below overwrite; the bank fits a stack copy by construction.
	var alive [MaxOptimalBatteries]int
	na := copy(alive[:], dec.Alive)
	f := frame{key: key, best: -1, prunedUB: -1, children: o.takeChildren()}
	for ai := 0; ai < na; ai++ {
		idx := alive[ai]
		if ai > 0 {
			sys.RestoreState(parent)
		}
		if err := sys.Choose(idx); err != nil {
			o.abandon(&f)
			return frame{}, err
		}
		_, pending, err := sys.AdvanceToDecision()
		if err != nil {
			o.abandon(&f)
			return frame{}, fmt.Errorf("%w: %w", errHorizon, err)
		}
		if !pending {
			o.stats.Leaves++
			v := int32(sys.DeathStep())
			o.fold(&f, v, v)
			continue
		}
		ckey := o.makeKey(sys)
		ub := int32(maxBound)
		known := false
		if e, ok := o.memo.lookup(ckey); ok {
			if e.death == e.bound {
				o.noteHit(e)
				o.fold(&f, e.death, e.death)
				continue
			}
			if o.opts.Prune && e.bound <= o.cumbent() {
				o.skip(&f, e.bound)
				continue
			}
			// An inexact entry still carries a proven bound, often tighter
			// than the fresh charge bound: keep the minimum for ordering and
			// for the prune re-check at descend time.
			ub = e.bound
			known = true
		}
		if o.opts.Prune {
			if b := o.bound(sys); b < ub {
				ub = b
			}
			if ub <= o.cumbent() {
				o.skip(&f, ub)
				continue
			}
			// The cheap bound failed to prune: lazily try the tighter LP
			// relaxation, but only on first encounters — a re-encountered
			// state carries a searched memo bound already at least as sharp —
			// and only while the relaxation earns its keep: on loads whose
			// bottleneck is total charge rather than availability the LP
			// verdict matches the cheap bound's, so after lpProbation
			// evaluations without a single extra prune it is switched off
			// (skipping an optional admissible bound is always sound, and the
			// rule is deterministic, so serial stats stay reproducible).
			if o.lpb != nil && !known &&
				(o.stats.LPPruned > 0 || o.stats.LPBounds < lpProbation) {
				o.stats.LPBounds++
				if b := o.lpb.bound(sys); b < ub {
					ub = b
					if ub <= o.cumbent() {
						o.stats.LPPruned++
						if ub > f.prunedUB {
							f.prunedUB = ub
						}
						continue
					}
				}
			}
		}
		f.children = append(f.children, child{
			key:   ckey,
			state: sys.SaveState(o.takeBuf()),
			idx:   int8(idx), ub: ub,
		})
	}
	// Best-bound-first, ties on the battery index for determinism.
	cs := f.children
	for a := 1; a < len(cs); a++ {
		for b := a; b > 0 && (cs[b].ub > cs[b-1].ub || (cs[b].ub == cs[b-1].ub && cs[b].idx < cs[b-1].idx)); b-- {
			cs[b], cs[b-1] = cs[b-1], cs[b]
		}
	}
	return f, nil
}

// solve explores the decision tree rooted at sys's next decision point and
// returns the best achievable death step. sys is used as scratch space and
// left in an unspecified state.
//
// Under a spawn hook, subtrees handed to other tasks are not folded into the
// return value; the caller must take the realized optimum from the global
// incumbent instead (every value realized anywhere is achievable from the
// root, so the incumbent's maximum is the root optimum — see DESIGN.md).
func (o *optimizer) solve(sys *dkibam.System) (int, error) {
	_, pending, err := sys.AdvanceToDecision()
	if err != nil {
		return 0, fmt.Errorf("%w: %w", errHorizon, err)
	}
	if !pending {
		o.stats.Leaves++
		v := sys.DeathStep()
		o.raise(int32(v))
		return v, nil
	}
	rootKey := o.makeKey(sys)
	if e, ok := o.memo.lookup(rootKey); ok && e.death == e.bound {
		o.noteHit(e)
		o.raise(e.death)
		return int(e.death), nil
	}
	rootState := sys.SaveState(o.takeBuf())
	root, err := o.expand(sys, rootState, rootKey)
	o.releaseBuf(rootState.Cells)
	if err != nil {
		return 0, err
	}
	stack := o.frames[:0]
	stack = append(stack, root)
	// result carries the (death, bound) of the most recently completed
	// subtree; the owning frame folds it in on its next visit.
	var result, resultBound int32
	returning := false
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if returning {
			o.fold(f, result, resultBound)
			returning = false
		}
		descended := false
		for f.next < len(f.children) {
			c := &f.children[f.next]
			f.next++
			// The incumbent has typically grown since this child was
			// expanded, and its subtree may have been resolved or bounded
			// away under a sibling: re-check both before descending.
			if o.opts.Prune && c.ub <= o.cumbent() {
				o.skip(f, c.ub)
				o.releaseChild(c)
				continue
			}
			if e, ok := o.memo.lookup(c.key); ok {
				if e.death == e.bound {
					o.noteHit(e)
					o.fold(f, e.death, e.death)
					o.releaseChild(c)
					continue
				}
				if o.opts.Prune && e.bound <= o.cumbent() {
					o.skip(f, e.bound)
					o.releaseChild(c)
					continue
				}
			}
			if o.spawn != nil && o.spawn(c) {
				// Another task owns this subtree now; account its bound like
				// a cut branch so the parent's memo entry stays honest.
				if c.ub > f.prunedUB {
					f.prunedUB = c.ub
				}
				o.releaseChild(c)
				continue
			}
			sys.RestoreState(c.state)
			nf, err := o.expand(sys, c.state, c.key)
			o.releaseChild(c)
			if err != nil {
				for i := range stack {
					o.abandon(&stack[i])
				}
				o.frames = stack[:0]
				return 0, err
			}
			stack = append(stack, nf)
			descended = true
			break
		}
		if descended {
			continue
		}
		// Frame complete: everything skipped is provably at most prunedUB,
		// so the value is exact when best reaches it.
		bound := f.best
		if f.prunedUB > f.best {
			bound = f.prunedUB
		}
		o.memo.merge(f.key, memoEntry{death: f.best, bound: bound, by: o.wid})
		result, resultBound = f.best, bound
		returning = true
		o.releaseChildren(f.children)
		f.children = nil
		stack = stack[:len(stack)-1]
	}
	o.frames = stack
	return int(result), nil
}

// Buffer pools. Children carry saved cell states; both the child slices and
// the cell buffers are recycled so the steady-state search does not
// allocate.

func (o *optimizer) takeBuf() []dkibam.Cell {
	if n := len(o.bufs); n > 0 {
		b := o.bufs[n-1]
		o.bufs = o.bufs[:n-1]
		return b
	}
	return nil
}

func (o *optimizer) releaseBuf(buf []dkibam.Cell) {
	if buf != nil {
		o.bufs = append(o.bufs, buf)
	}
}

func (o *optimizer) releaseChild(c *child) {
	o.releaseBuf(c.state.Cells)
	c.state.Cells = nil
}

func (o *optimizer) takeChildren() []child {
	if n := len(o.childers); n > 0 {
		cs := o.childers[n-1]
		o.childers = o.childers[:n-1]
		return cs[:0]
	}
	return make([]child, 0, MaxOptimalBatteries)
}

func (o *optimizer) releaseChildren(cs []child) {
	if cs != nil {
		o.childers = append(o.childers, cs)
	}
}

// abandon releases a frame's remaining child buffers (error unwinding).
func (o *optimizer) abandon(f *frame) {
	for i := f.next; i < len(f.children); i++ {
		o.releaseChild(&f.children[i])
	}
	o.releaseChildren(f.children)
	f.children = nil
}

// reconstruct derives the canonical optimal schedule once the optimum is
// proven: walking down from walk's current state, it commits at every
// decision to the lowest-indexed battery whose subtree still achieves the
// proven death step. "Achieves needed" is a property of the child state
// alone, so the choice sequence — and hence the schedule bytes — does not
// depend on the memo's content, the search options, the worker count or any
// interleaving; the memo (possibly the parallel search's shared table) only
// short-circuits proving it. needed is invariant down an optimal path
// because death steps are absolute times.
//
// Probes are cheap: a memoised death >= needed accepts and a memoised bound
// < needed rejects without search; otherwise a branch-and-bound solve runs
// with the incumbent primed to needed-1, so it explores only what can still
// reach needed. The probes' work is deliberately excluded from the reported
// SearchStats — States etc. describe the search that proved the optimum,
// and stay comparable across option sets and worker counts.
func (o *optimizer) reconstruct(walk, scratch *dkibam.System, needed int32) (Schedule, error) {
	statsSnap, incSnap, gincSnap, spawnSnap := o.stats, o.incumbent, o.ginc, o.spawn
	// Probes must prune against needed-1 only — a live global incumbent
	// (already at the optimum) would cut the very branches being probed —
	// and must run to completion locally, not hand subtrees away.
	o.ginc, o.spawn = nil, nil
	defer func() { o.stats, o.incumbent, o.ginc, o.spawn = statsSnap, incSnap, gincSnap, spawnSnap }()
	var schedule Schedule
	var parent dkibam.State
	var probeBuf dkibam.State
	for {
		dec, pending, err := walk.AdvanceToDecision()
		if err != nil {
			return nil, fmt.Errorf("%w: %w", errHorizon, err)
		}
		if !pending {
			if int32(walk.DeathStep()) < needed {
				return nil, errors.New("sched: reconstructed schedule misses the proven optimum")
			}
			return schedule, nil
		}
		parent = walk.SaveState(parent.Cells)
		var alive [MaxOptimalBatteries]int
		na := copy(alive[:], dec.Alive)
		picked := -1
		for ai := 0; ai < na && picked < 0; ai++ {
			idx := alive[ai]
			if ai > 0 {
				walk.RestoreState(parent)
			}
			if err := walk.Choose(idx); err != nil {
				return nil, err
			}
			_, pending, err := walk.AdvanceToDecision()
			if err != nil {
				return nil, fmt.Errorf("%w: %w", errHorizon, err)
			}
			if !pending {
				if int32(walk.DeathStep()) >= needed {
					picked = idx
				}
				continue
			}
			key := o.makeKey(walk)
			if e, ok := o.memo.lookup(key); ok {
				if e.death >= needed {
					picked = idx
					continue
				}
				if e.bound < needed {
					continue
				}
			}
			o.incumbent = needed - 1
			probeBuf = walk.SaveState(probeBuf.Cells)
			scratch.RestoreState(probeBuf)
			v, err := o.solve(scratch)
			if err != nil {
				return nil, err
			}
			if int32(v) >= needed {
				picked = idx
			}
		}
		if picked < 0 {
			return nil, errors.New("sched: reconstruction found no branch achieving the optimum")
		}
		walk.RestoreState(parent)
		if err := walk.Choose(picked); err != nil {
			return nil, err
		}
		schedule = append(schedule, Choice{
			Step:    dec.Step,
			Minutes: float64(dec.Step) * o.cl.StepMin,
			Epoch:   dec.Epoch,
			Reason:  dec.Reason,
			Battery: picked,
		})
	}
}
