package sched

import (
	"errors"
	"fmt"

	"batsched/internal/dkibam"
	"batsched/internal/load"
)

// MaxOptimalBatteries bounds the bank size of the optimal search. The memo
// key is a fixed-size comparable struct so that the map hashes it without
// allocating; eight batteries is far beyond what the exponential search can
// explore anyway.
const MaxOptimalBatteries = 8

// ErrTooManyBatteries is returned when the bank exceeds MaxOptimalBatteries.
var ErrTooManyBatteries = errors.New("sched: optimal search supports at most 8 batteries")

// Optimal computes the maximum achievable system lifetime and a schedule
// that attains it by exhaustive depth-first search over all scheduling
// decisions of the discretized battery system, with memoisation on decision
// states. The search is iterative (an explicit frame stack) and
// allocation-lean: it branches by snapshotting and restoring cell state on a
// single reusable system instead of cloning, and memoises on a compact
// comparable struct key instead of a formatted string.
//
// This search is an independent cross-check of the priced-timed-automata
// route of the paper (internal/takibam + internal/mc): both must agree on
// the optimal lifetime, which the integration tests assert.
func Optimal(ds []*dkibam.Discretization, cl load.Compiled) (float64, Schedule, error) {
	o, best, err := solveOptimal(ds, cl)
	if err != nil {
		return 0, nil, err
	}
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return 0, nil, err
	}
	schedule, err := o.replay(sys)
	if err != nil {
		return 0, nil, err
	}
	return float64(best) * cl.StepMin, schedule, nil
}

// solveOptimal runs the memoised search from the initial state and returns
// the optimizer (holding the filled memo table) and the best death step.
func solveOptimal(ds []*dkibam.Discretization, cl load.Compiled) (*optimizer, int, error) {
	if len(ds) > MaxOptimalBatteries {
		return nil, 0, fmt.Errorf("%w (have %d)", ErrTooManyBatteries, len(ds))
	}
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return nil, 0, err
	}
	o := newOptimizer(cl)
	best, err := o.solve(sys)
	if err != nil {
		return nil, 0, err
	}
	return o, best, nil
}

type memoEntry struct {
	death  int32 // best achievable death step from this decision state
	choice int8  // battery index attaining it
}

// cellKey is one battery's state in a memo key. CDisch is omitted: decisions
// always happen with no battery discharging, so the stale discharge clock is
// physically meaningless (Choose resets it).
type cellKey struct {
	n, m, crecov int32
	empty        bool
}

// stateKey canonically encodes a decision state. Time (and hence the epoch
// and position within it) plus every battery's discrete state fully
// determine the future, because decisions always happen with no battery
// discharging. Unused battery slots stay at the zero value.
type stateKey struct {
	t     int32
	cells [MaxOptimalBatteries]cellKey
}

func makeKey(sys *dkibam.System) stateKey {
	k := stateKey{t: int32(sys.Step())}
	for i := 0; i < sys.Batteries(); i++ {
		c := sys.Cell(i)
		k.cells[i] = cellKey{
			n: int32(c.N), m: int32(c.M), crecov: int32(c.CRecov),
			empty: c.Empty,
		}
	}
	return k
}

type optimizer struct {
	cl   load.Compiled
	memo map[stateKey]memoEntry

	// frame and cell-buffer free lists, reused across pushes and pops so the
	// steady-state search does not allocate.
	frames []frame
	bufs   [][]dkibam.Cell
}

func newOptimizer(cl load.Compiled) *optimizer {
	return &optimizer{cl: cl, memo: make(map[stateKey]memoEntry)}
}

// frame is one suspended decision node of the iterative depth-first search.
type frame struct {
	key    stateKey
	state  dkibam.State
	alive  []int
	next   int   // index into alive of the next branch to explore
	best   int32 // best death step over explored branches
	choice int8  // battery attaining best
}

// errHorizon marks search branches on which the batteries outlived the load.
var errHorizon = errors.New("sched: optimal search ran out of load horizon")

// solve explores the decision tree rooted at sys's next decision point and
// returns the best achievable death step. sys is used as scratch space and
// left in an unspecified state.
func (o *optimizer) solve(sys *dkibam.System) (int, error) {
	dec, pending, err := sys.AdvanceToDecision()
	if err != nil {
		return 0, fmt.Errorf("%w: %w", errHorizon, err)
	}
	if !pending {
		return sys.DeathStep(), nil
	}
	rootKey := makeKey(sys)
	if e, ok := o.memo[rootKey]; ok {
		return int(e.death), nil
	}
	stack := o.frames[:0]
	stack = append(stack, o.newFrame(sys, rootKey, dec))
	// result carries the death step of the most recently completed subtree;
	// the owning frame folds it in on its next visit.
	result := 0
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next > 0 && int32(result) > f.best {
			f.best = int32(result)
			f.choice = int8(f.alive[f.next-1])
		}
		if f.next >= len(f.alive) {
			o.memo[f.key] = memoEntry{death: f.best, choice: f.choice}
			result = int(f.best)
			o.releaseFrame(f)
			stack = stack[:len(stack)-1]
			continue
		}
		idx := f.alive[f.next]
		f.next++
		sys.RestoreState(f.state)
		if err := sys.Choose(idx); err != nil {
			o.frames = stack
			return 0, err
		}
		dec, pending, err := sys.AdvanceToDecision()
		if err != nil {
			o.frames = stack
			return 0, fmt.Errorf("%w: %w", errHorizon, err)
		}
		if !pending {
			result = sys.DeathStep()
			continue
		}
		key := makeKey(sys)
		if e, ok := o.memo[key]; ok {
			result = int(e.death)
			continue
		}
		stack = append(stack, o.newFrame(sys, key, dec))
	}
	o.frames = stack
	return result, nil
}

// newFrame suspends the current decision state of sys into a frame, reusing
// pooled buffers where available.
func (o *optimizer) newFrame(sys *dkibam.System, key stateKey, dec dkibam.Decision) frame {
	var buf []dkibam.Cell
	if n := len(o.bufs); n > 0 {
		buf = o.bufs[n-1]
		o.bufs = o.bufs[:n-1]
	}
	return frame{
		key:    key,
		state:  sys.SaveState(buf),
		alive:  dec.Alive,
		best:   -1,
		choice: -1,
	}
}

func (o *optimizer) releaseFrame(f *frame) {
	o.bufs = append(o.bufs, f.state.Cells)
	f.state.Cells = nil
	f.alive = nil
}

// replay reconstructs an optimal schedule from the memo table by walking the
// recorded best choices from sys's current state.
func (o *optimizer) replay(sys *dkibam.System) (Schedule, error) {
	var schedule Schedule
	for {
		dec, pending, err := sys.AdvanceToDecision()
		if err != nil {
			return nil, err
		}
		if !pending {
			return schedule, nil
		}
		entry, ok := o.memo[makeKey(sys)]
		if !ok {
			return nil, errors.New("sched: optimal replay hit an unexplored state")
		}
		schedule = append(schedule, Choice{
			Step:    dec.Step,
			Minutes: float64(dec.Step) * o.cl.StepMin,
			Epoch:   dec.Epoch,
			Reason:  dec.Reason,
			Battery: int(entry.choice),
		})
		if err := sys.Choose(int(entry.choice)); err != nil {
			return nil, err
		}
	}
}
