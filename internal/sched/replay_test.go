package sched

import (
	"strings"
	"testing"

	"batsched/internal/dkibam"
)

// TestReplayReproducesRun: replaying a recorded schedule yields the same
// lifetime and the same decision sequence as the original policy run.
func TestReplayReproducesRun(t *testing.T) {
	ds := b1Pair(t)
	for _, p := range []Policy{Sequential(), RoundRobin(), BestAvailable()} {
		for _, name := range []string{"CL 250", "ILs alt"} {
			cl := compiled(t, name, 200)
			lifetime, schedule, err := Run(ds, cl, p)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, p.Name(), err)
			}
			replayed, replayedSchedule, err := Run(ds, cl, Replay("again", schedule))
			if err != nil {
				t.Fatalf("%s/%s replay: %v", name, p.Name(), err)
			}
			if replayed != lifetime {
				t.Errorf("%s/%s: replay lifetime %v, original %v", name, p.Name(), replayed, lifetime)
			}
			if len(replayedSchedule) != len(schedule) {
				t.Fatalf("%s/%s: replay made %d decisions, original %d", name, p.Name(), len(replayedSchedule), len(schedule))
			}
			for i := range schedule {
				if replayedSchedule[i] != schedule[i] {
					t.Errorf("%s/%s: decision %d replayed as %+v, original %+v", name, p.Name(), i, replayedSchedule[i], schedule[i])
				}
			}
		}
	}
}

// TestReplayName: the replay policy reports the name it was given.
func TestReplayName(t *testing.T) {
	if got := Replay("opt", nil).Name(); got != "opt" {
		t.Errorf("name %q, want %q", got, "opt")
	}
}

// mustPanic runs f and asserts it panics with a message containing want.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic (want one containing %q)", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want one containing %q", r, want)
		}
	}()
	f()
}

// TestReplayExhausted: a replay asked for more decisions than it recorded
// panics rather than silently inventing choices.
func TestReplayExhausted(t *testing.T) {
	chooser := Replay("short", Schedule{}).NewChooser()
	mustPanic(t, "replay exhausted", func() {
		chooser(fakeBank{alive: []bool{true}}, Decision{Alive: []int{0}})
	})
}

// TestReplayDesync: a decision arriving at a different time than recorded
// panics; replays must not drift from the recorded trajectory.
func TestReplayDesync(t *testing.T) {
	schedule := Schedule{{Step: 100, Minutes: 1.0, Battery: 0}}
	chooser := Replay("drift", schedule).NewChooser()
	mustPanic(t, "replay desync", func() {
		chooser(fakeBank{alive: []bool{true}}, Decision{Minutes: 2.0, Alive: []int{0}})
	})
}

// TestReplayOnEmptiedBattery: replaying a schedule that includes a mid-job
// BatteryEmptied replacement reproduces the decision, including its reason.
func TestReplayOnEmptiedBattery(t *testing.T) {
	ds := b1Pair(t)
	cl := compiled(t, "CL 250", 200) // continuous load: battery 0 empties mid-job
	_, schedule, err := Run(ds, cl, Sequential())
	if err != nil {
		t.Fatal(err)
	}
	var emptied int
	for _, c := range schedule {
		if c.Reason == BatteryEmptied {
			emptied++
		}
	}
	if emptied == 0 {
		t.Fatal("sequential on a continuous load made no BatteryEmptied decision")
	}
	_, replayed, err := Run(ds, cl, Replay("seq", schedule))
	if err != nil {
		t.Fatal(err)
	}
	for i := range schedule {
		if replayed[i].Reason != schedule[i].Reason {
			t.Errorf("decision %d: reason %v, want %v", i, replayed[i].Reason, schedule[i].Reason)
		}
	}
}

// TestFixedChooser: the single-battery "scheduler" always picks its index.
func TestFixedChooser(t *testing.T) {
	c := FixedChooser(1)
	for i := 0; i < 3; i++ {
		if got := c(nil, dkibam.Decision{Alive: []int{0, 1}}); got != 1 {
			t.Fatalf("picked %d, want 1", got)
		}
	}
}
