package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"batsched/internal/dkibam"
	"batsched/internal/load"
)

// OptimalParallel is Optimal with the branch exploration spread over a
// work-stealing worker pool. Every worker runs the same branch-and-bound
// depth-first search as the serial optimizer, but the three pieces of global
// knowledge are shared: the memo table (sharded, mutex-striped), the
// incumbent (a single atomic, CAS-max), and the pool of open subtrees
// (per-worker deques; an idle worker steals the shallowest task of a busy
// one). Workers split work on demand — a busy worker hands subtrees to its
// deque only while some worker is hungry — so a search that fits one core
// runs essentially serially. Workers <= 0 means runtime.NumCPU().
//
// The returned lifetime and schedule are identical to Optimal's for every
// worker count and every interleaving:
//
//   - Lifetime. The result is read from the global incumbent. Every task's
//     root state is reachable from the search root (tasks are only ever
//     split off live search paths), so every realized death step folded into
//     the incumbent is achievable — the incumbent never overshoots. And the
//     optimum is never lost: pruning cuts a subtree only when a proven
//     admissible bound says it cannot beat the incumbent, memo entries stay
//     valid under concurrent keep-max/keep-min merging because deaths are
//     realized values and bounds are incumbent-independent proofs, and a
//     subtree handed to another task is accounted as a bound, not a value.
//     So the incumbent ends at exactly the serial optimum.
//
//   - Schedule. It is not assembled from the (scheduling-dependent) search;
//     it is reconstructed afterwards by canonical probing (see reconstruct),
//     which commits at every decision to the lowest-indexed battery whose
//     subtree provably still reaches the optimum — a property of the state,
//     not of the search history. The shared memo only short-circuits probes.
func OptimalParallel(ds []*dkibam.Discretization, cl load.Compiled, workers int) (float64, Schedule, error) {
	lt, schedule, _, err := OptimalParallelWithOptions(ds, cl, workers, DefaultSearchOptions())
	return lt, schedule, err
}

// OptimalParallelWithStats is OptimalParallel, additionally reporting the
// search statistics summed over all workers. Each worker counts its own
// work into private counters merged once at the end, so no event is counted
// twice; in particular a memo lookup increments MemoHits or SharedMemoHits
// (never both) in exactly one worker's counters.
func OptimalParallelWithStats(ds []*dkibam.Discretization, cl load.Compiled, workers int) (float64, Schedule, SearchStats, error) {
	return OptimalParallelWithOptions(ds, cl, workers, DefaultSearchOptions())
}

// OptimalParallelWithOptions is OptimalParallel with explicit optimization
// options (see OptimalWithOptions).
func OptimalParallelWithOptions(ds []*dkibam.Discretization, cl load.Compiled, workers int, sopts SearchOptions) (float64, Schedule, SearchStats, error) {
	if err := validateBank(ds); err != nil {
		return 0, nil, SearchStats{}, err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers == 1 {
		return OptimalWithOptions(ds, cl, sopts)
	}

	root, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return 0, nil, SearchStats{}, err
	}
	_, pending, err := root.AdvanceToDecision()
	if err != nil {
		return 0, nil, SearchStats{}, fmt.Errorf("%w: %w", errHorizon, err)
	}
	if !pending {
		return float64(root.DeathStep()) * cl.StepMin, nil, SearchStats{Leaves: 1}, nil
	}

	p := &parSearch{memo: newSharedMemo(), deques: make([]psDeque, workers)}
	p.inc.Store(-1)
	p.pending.Store(1)
	p.deques[0].push(psTask{state: root.SaveState(nil)})

	var (
		wg      sync.WaitGroup
		statsMu sync.Mutex
		stats   SearchStats
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sys, err := dkibam.NewSystem(ds, cl)
			if err != nil {
				p.fail(err)
				return
			}
			o, err := newOptimizer(ds, cl, sopts)
			if err != nil {
				p.fail(err)
				return
			}
			o.memo, o.ginc, o.wid = p.memo, &p.inc, uint8(w)
			o.spawn = func(c *child) bool {
				// Split only while someone is hungry; the handed-off state
				// must be copied out of the pooled child buffer.
				if p.hungry.Load() == 0 {
					return false
				}
				st := c.state
				st.Cells = append([]dkibam.Cell(nil), st.Cells...)
				p.pending.Add(1)
				p.deques[w].push(psTask{state: st})
				return true
			}
			for {
				t, ok := p.next(w, &o.stats)
				if !ok {
					break
				}
				sys.RestoreState(t.state)
				_, err := o.solve(sys)
				p.pending.Add(-1)
				if err != nil {
					p.fail(err)
					break
				}
			}
			statsMu.Lock()
			stats.Add(o.stats)
			statsMu.Unlock()
		}(w)
	}
	wg.Wait()
	if p.err != nil {
		return 0, nil, stats, p.err
	}

	best := p.inc.Load()
	walk, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return 0, nil, stats, err
	}
	scratch, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return 0, nil, stats, err
	}
	// Reconstruction runs serially on a fresh optimizer over the shared
	// memo; its probes never see the workers' incumbents or spawn hooks.
	ro, err := newOptimizer(ds, cl, sopts)
	if err != nil {
		return 0, nil, stats, err
	}
	ro.memo = p.memo
	schedule, err := ro.reconstruct(walk, scratch, best)
	if err != nil {
		return 0, nil, stats, err
	}
	return float64(best) * cl.StepMin, schedule, stats, nil
}

// psTask is one open subtree of the parallel search: a saved system state
// sitting at (or just before) a decision.
type psTask struct {
	state dkibam.State
}

// psDeque is one worker's task queue. The owner pushes and pops at the tail
// (depth-first, cache-warm); thieves steal from the head, where the
// shallowest — and therefore typically largest — subtrees sit. Tasks are
// coarse and splitting is hungry-gated, so a mutex outperforms a lock-free
// deque here in both simplicity and worst-case behavior.
type psDeque struct {
	mu sync.Mutex
	ts []psTask
}

func (d *psDeque) push(t psTask) {
	d.mu.Lock()
	d.ts = append(d.ts, t)
	d.mu.Unlock()
}

func (d *psDeque) pop() (psTask, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.ts)
	if n == 0 {
		return psTask{}, false
	}
	t := d.ts[n-1]
	d.ts[n-1] = psTask{}
	d.ts = d.ts[:n-1]
	return t, true
}

func (d *psDeque) steal() (psTask, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.ts) == 0 {
		return psTask{}, false
	}
	t := d.ts[0]
	d.ts = append(d.ts[:0], d.ts[1:]...)
	return t, true
}

// parSearch is the shared state of one parallel search run.
type parSearch struct {
	memo   *sharedMemo
	deques []psDeque
	// inc is the global incumbent: the best realized death step so far.
	inc atomic.Int32
	// pending counts open tasks. A split increments it before the task is
	// pushed and a worker decrements it only after fully solving the task's
	// subtree (splits made along the way have already incremented), so
	// pending == 0 is a sound termination signal: it can only be observed
	// when no task is queued anywhere and none is being solved.
	pending atomic.Int64
	// hungry counts workers currently looking for work; busy workers split
	// subtrees off only while it is nonzero.
	hungry atomic.Int32

	failed atomic.Bool
	errMu  sync.Mutex
	err    error
}

// fail records the first error and tells every worker to wind down.
func (p *parSearch) fail(err error) {
	p.errMu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.errMu.Unlock()
	p.failed.Store(true)
}

// next returns worker w's next task: its own newest, else one stolen from a
// sibling, else — once no task exists anywhere and none can appear — done.
func (p *parSearch) next(w int, stats *SearchStats) (psTask, bool) {
	if t, ok := p.deques[w].pop(); ok {
		return t, true
	}
	p.hungry.Add(1)
	defer p.hungry.Add(-1)
	for {
		if p.failed.Load() {
			return psTask{}, false
		}
		for off := 1; off < len(p.deques); off++ {
			if t, ok := p.deques[(w+off)%len(p.deques)].steal(); ok {
				stats.Steals++
				return t, true
			}
		}
		if p.pending.Load() == 0 {
			return psTask{}, false
		}
		runtime.Gosched()
	}
}

// memoShards is the stripe count of the shared memo; a power of two well
// above any worker count, so shard collisions between concurrently active
// lookups are rare.
const memoShards = 64

type memoShard struct {
	mu sync.Mutex
	m  map[stateKey]memoEntry
}

// sharedMemo is the parallel search's memoTable: one map striped over
// memoShards mutexes. Merging implements the same keep-max death /
// keep-min bound semantics as the serial mapMemo, and both directions stay
// valid under any interleaving because deaths are realized (achievable)
// values and bounds are proofs that hold regardless of which worker's
// incumbent was live when they were derived.
type sharedMemo struct {
	shards [memoShards]memoShard
}

func newSharedMemo() *sharedMemo {
	s := &sharedMemo{}
	for i := range s.shards {
		s.shards[i].m = make(map[stateKey]memoEntry)
	}
	return s
}

func (s *sharedMemo) lookup(k stateKey) (memoEntry, bool) {
	sh := &s.shards[k.hash()%memoShards]
	sh.mu.Lock()
	e, ok := sh.m[k]
	sh.mu.Unlock()
	return e, ok
}

func (s *sharedMemo) merge(k stateKey, e memoEntry) {
	sh := &s.shards[k.hash()%memoShards]
	sh.mu.Lock()
	if old, ok := sh.m[k]; ok {
		if old.death > e.death {
			e.death, e.by = old.death, old.by
		}
		if old.bound < e.bound {
			e.bound = old.bound
		}
	}
	sh.m[k] = e
	sh.mu.Unlock()
}

// hash mixes a stateKey FNV-style for shard selection.
func (k stateKey) hash() uint32 {
	h := uint64(14695981039346656037)
	const prime = 1099511628211
	h ^= uint64(uint32(k.t))
	h *= prime
	for i := range k.cells {
		c := &k.cells[i]
		h ^= uint64(uint32(c.n)) | uint64(uint32(c.m))<<32
		h *= prime
		var e uint64
		if c.empty {
			e = 1
		}
		h ^= uint64(uint32(c.crecov)) | e<<32
		h *= prime
	}
	return uint32(h ^ h>>32)
}
