package sched

import (
	"fmt"
	"runtime"
	"sync"

	"batsched/internal/dkibam"
	"batsched/internal/load"
)

// OptimalParallel is Optimal with the branch exploration spread over a
// worker pool. The decision tree is first expanded breadth-first into a
// frontier of independent subproblems (enough to keep the workers busy);
// each worker then solves its share with its own memo table, incumbent and
// charge-bound pruning, and the best subtree — together with the
// breadth-first prefix that reaches it — yields the optimal lifetime and
// schedule. Workers <= 0 means runtime.NumCPU().
//
// The result is deterministic and identical to Optimal: subproblems are
// assigned and compared in frontier order, and memo tables and incumbents
// are per-worker, so goroutine scheduling cannot change the outcome. A
// worker's incumbent carries across its own tasks (that order is fixed), so
// later subproblems may report a pruned-down value — but the subproblem
// attaining the true optimum first in frontier order always reports it
// exactly, because nothing can prune a branch that beats every incumbent.
// The price of parallelism is that sibling subtrees no longer share memo
// entries.
func OptimalParallel(ds []*dkibam.Discretization, cl load.Compiled, workers int) (float64, Schedule, error) {
	lt, schedule, _, err := OptimalParallelWithOptions(ds, cl, workers, DefaultSearchOptions())
	return lt, schedule, err
}

// OptimalParallelWithStats is OptimalParallel, additionally reporting the
// search statistics summed over the frontier expansion and all workers.
func OptimalParallelWithStats(ds []*dkibam.Discretization, cl load.Compiled, workers int) (float64, Schedule, SearchStats, error) {
	return OptimalParallelWithOptions(ds, cl, workers, DefaultSearchOptions())
}

// OptimalParallelWithOptions is OptimalParallel with explicit optimization
// options (see OptimalWithOptions).
func OptimalParallelWithOptions(ds []*dkibam.Discretization, cl load.Compiled, workers int, sopts SearchOptions) (float64, Schedule, SearchStats, error) {
	if err := validateBank(ds); err != nil {
		return 0, nil, SearchStats{}, err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers == 1 {
		return OptimalWithOptions(ds, cl, sopts)
	}

	frontier, deadEnds, stats, err := expandFrontier(ds, cl, 4*workers)
	if err != nil {
		return 0, nil, SearchStats{}, err
	}

	// Solve every frontier subproblem; worker w takes tasks w, w+workers, ...
	// so the assignment is deterministic and each worker reuses one memo
	// table and incumbent (memo keys encode the full state, so entries are
	// valid across a worker's tasks, and incumbents are realized lifetimes,
	// so they prune soundly everywhere).
	type outcome struct {
		death int
		opt   *optimizer
		err   error
	}
	outcomes := make([]outcome, len(frontier))
	workerOpts := make([]*optimizer, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers && w < len(frontier); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sys, err := dkibam.NewSystem(ds, cl)
			if err != nil {
				outcomes[w] = outcome{err: err}
				return
			}
			o, err := newOptimizer(ds, cl, sopts)
			if err != nil {
				outcomes[w] = outcome{err: err}
				return
			}
			workerOpts[w] = o
			for i := w; i < len(frontier); i += workers {
				sys.RestoreState(frontier[i].state)
				death, err := o.solve(sys)
				outcomes[i] = outcome{death: death, opt: o, err: err}
				if err != nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, o := range workerOpts {
		if o != nil {
			stats.Add(o.stats)
		}
	}

	best, bestIdx := -1, -1
	for i, oc := range outcomes {
		if oc.err != nil {
			return 0, nil, stats, oc.err
		}
		if oc.death > best {
			best, bestIdx = oc.death, i
		}
	}
	// A branch that died during frontier expansion is already a complete
	// schedule; it wins only when strictly better, which keeps the outcome
	// deterministic.
	for _, de := range deadEnds {
		if de.death > best {
			best, bestIdx = de.death, -1
		}
	}
	if bestIdx == -1 {
		for _, de := range deadEnds {
			if de.death == best {
				return float64(best) * cl.StepMin, de.prefix, stats, nil
			}
		}
		return 0, nil, stats, errHorizon
	}

	// Reconstruct: the winning subproblem's prefix, then the winning
	// worker's memo from the subproblem's start state.
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return 0, nil, stats, err
	}
	sys.RestoreState(frontier[bestIdx].state)
	tail, err := outcomes[bestIdx].opt.replay(sys)
	if err != nil {
		return 0, nil, stats, err
	}
	schedule := append(append(Schedule{}, frontier[bestIdx].prefix...), tail...)
	return float64(best) * cl.StepMin, schedule, stats, nil
}

// subproblem is one frontier node of the parallel search: a decision state
// plus the choices that led to it.
type subproblem struct {
	state  dkibam.State
	prefix Schedule
}

// deadEnd records a branch on which the system died during expansion.
type deadEnd struct {
	death  int
	prefix Schedule
}

// expandFrontier grows the decision tree breadth-first until it holds at
// least target open subproblems (or cannot grow further). Branches that die
// during expansion are returned separately as complete schedules.
func expandFrontier(ds []*dkibam.Discretization, cl load.Compiled, target int) ([]subproblem, []deadEnd, SearchStats, error) {
	var stats SearchStats
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return nil, nil, stats, err
	}
	dec, pending, err := sys.AdvanceToDecision()
	if err != nil {
		return nil, nil, stats, fmt.Errorf("%w: %w", errHorizon, err)
	}
	if !pending {
		stats.Leaves++
		return nil, []deadEnd{{death: sys.DeathStep()}}, stats, nil
	}

	type node struct {
		state  dkibam.State
		dec    dkibam.Decision
		prefix Schedule
	}
	// Decisions alias the system's scratch Alive buffer; queued nodes
	// outlive many advances, so they keep copies.
	retain := func(dec dkibam.Decision) dkibam.Decision {
		dec.Alive = append([]int(nil), dec.Alive...)
		return dec
	}
	queue := []node{{state: sys.SaveState(nil), dec: retain(dec), prefix: nil}}
	var deadEnds []deadEnd
	for len(queue) > 0 && len(queue) < target {
		// FIFO expansion keeps the frontier shallow and is deterministic.
		n := queue[0]
		queue = queue[1:]
		stats.States++
		for _, idx := range n.dec.Alive {
			sys.RestoreState(n.state)
			if err := sys.Choose(idx); err != nil {
				return nil, nil, stats, err
			}
			prefix := append(append(Schedule{}, n.prefix...), Choice{
				Step:    n.dec.Step,
				Minutes: float64(n.dec.Step) * cl.StepMin,
				Epoch:   n.dec.Epoch,
				Reason:  n.dec.Reason,
				Battery: idx,
			})
			childDec, pending, err := sys.AdvanceToDecision()
			if err != nil {
				return nil, nil, stats, fmt.Errorf("%w: %w", errHorizon, err)
			}
			if !pending {
				stats.Leaves++
				deadEnds = append(deadEnds, deadEnd{death: sys.DeathStep(), prefix: prefix})
				continue
			}
			queue = append(queue, node{state: sys.SaveState(nil), dec: retain(childDec), prefix: prefix})
		}
	}
	if len(queue) == 0 {
		// Every branch died during expansion; the prefixes are complete
		// schedules.
		return nil, deadEnds, stats, nil
	}
	frontier := make([]subproblem, len(queue))
	for i, n := range queue {
		frontier[i] = subproblem{state: n.state, prefix: n.prefix}
	}
	return frontier, deadEnds, stats, nil
}
