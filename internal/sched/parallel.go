package sched

import (
	"fmt"
	"runtime"
	"sync"

	"batsched/internal/dkibam"
	"batsched/internal/load"
)

// OptimalParallel is Optimal with the branch exploration spread over a
// worker pool. The decision tree is first expanded breadth-first into a
// frontier of independent subproblems (enough to keep the workers busy);
// each worker then solves its share with its own memo table, and the best
// subtree — together with the breadth-first prefix that reaches it — yields
// the optimal lifetime and schedule. Workers <= 0 means runtime.NumCPU().
//
// The result is deterministic and identical to Optimal: subproblems are
// assigned and compared in frontier order, and memo tables are per-worker,
// so goroutine scheduling cannot change the outcome. The price of
// parallelism is that sibling subtrees no longer share memo entries.
func OptimalParallel(ds []*dkibam.Discretization, cl load.Compiled, workers int) (float64, Schedule, error) {
	if len(ds) > MaxOptimalBatteries {
		return 0, nil, fmt.Errorf("%w (have %d)", ErrTooManyBatteries, len(ds))
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers == 1 {
		return Optimal(ds, cl)
	}

	frontier, deadEnds, err := expandFrontier(ds, cl, 4*workers)
	if err != nil {
		return 0, nil, err
	}

	// Solve every frontier subproblem; worker w takes tasks w, w+workers, ...
	// so the assignment is deterministic and each worker reuses one memo
	// table (memo keys encode the full state, so entries are valid across a
	// worker's tasks).
	type outcome struct {
		death int
		opt   *optimizer
		err   error
	}
	outcomes := make([]outcome, len(frontier))
	var wg sync.WaitGroup
	for w := 0; w < workers && w < len(frontier); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sys, err := dkibam.NewSystem(ds, cl)
			if err != nil {
				outcomes[w] = outcome{err: err}
				return
			}
			o := newOptimizer(cl)
			for i := w; i < len(frontier); i += workers {
				sys.RestoreState(frontier[i].state)
				death, err := o.solve(sys)
				outcomes[i] = outcome{death: death, opt: o, err: err}
				if err != nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()

	best, bestIdx := -1, -1
	for i, oc := range outcomes {
		if oc.err != nil {
			return 0, nil, oc.err
		}
		if oc.death > best {
			best, bestIdx = oc.death, i
		}
	}
	// A branch that died during frontier expansion is already a complete
	// schedule; it wins only when strictly better, which keeps the outcome
	// deterministic.
	for _, de := range deadEnds {
		if de.death > best {
			best, bestIdx = de.death, -1
		}
	}
	if bestIdx == -1 {
		for _, de := range deadEnds {
			if de.death == best {
				return float64(best) * cl.StepMin, de.prefix, nil
			}
		}
		return 0, nil, errHorizon
	}

	// Reconstruct: the winning subproblem's prefix, then the winning
	// worker's memo from the subproblem's start state.
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return 0, nil, err
	}
	sys.RestoreState(frontier[bestIdx].state)
	tail, err := outcomes[bestIdx].opt.replay(sys)
	if err != nil {
		return 0, nil, err
	}
	schedule := append(append(Schedule{}, frontier[bestIdx].prefix...), tail...)
	return float64(best) * cl.StepMin, schedule, nil
}

// subproblem is one frontier node of the parallel search: a decision state
// plus the choices that led to it.
type subproblem struct {
	state  dkibam.State
	prefix Schedule
}

// deadEnd records a branch on which the system died during expansion.
type deadEnd struct {
	death  int
	prefix Schedule
}

// expandFrontier grows the decision tree breadth-first until it holds at
// least target open subproblems (or cannot grow further). Branches that die
// during expansion are returned separately as complete schedules.
func expandFrontier(ds []*dkibam.Discretization, cl load.Compiled, target int) ([]subproblem, []deadEnd, error) {
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return nil, nil, err
	}
	dec, pending, err := sys.AdvanceToDecision()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %w", errHorizon, err)
	}
	if !pending {
		return nil, []deadEnd{{death: sys.DeathStep()}}, nil
	}

	type node struct {
		state  dkibam.State
		dec    dkibam.Decision
		prefix Schedule
	}
	queue := []node{{state: sys.SaveState(nil), dec: dec, prefix: nil}}
	var deadEnds []deadEnd
	for len(queue) > 0 && len(queue) < target {
		// FIFO expansion keeps the frontier shallow and is deterministic.
		n := queue[0]
		queue = queue[1:]
		for _, idx := range n.dec.Alive {
			sys.RestoreState(n.state)
			if err := sys.Choose(idx); err != nil {
				return nil, nil, err
			}
			prefix := append(append(Schedule{}, n.prefix...), Choice{
				Step:    n.dec.Step,
				Minutes: float64(n.dec.Step) * cl.StepMin,
				Epoch:   n.dec.Epoch,
				Reason:  n.dec.Reason,
				Battery: idx,
			})
			childDec, pending, err := sys.AdvanceToDecision()
			if err != nil {
				return nil, nil, fmt.Errorf("%w: %w", errHorizon, err)
			}
			if !pending {
				deadEnds = append(deadEnds, deadEnd{death: sys.DeathStep(), prefix: prefix})
				continue
			}
			queue = append(queue, node{state: sys.SaveState(nil), dec: childDec, prefix: prefix})
		}
	}
	if len(queue) == 0 {
		// Every branch died during expansion; the prefixes are complete
		// schedules.
		return nil, deadEnds, nil
	}
	frontier := make([]subproblem, len(queue))
	for i, n := range queue {
		frontier[i] = subproblem{state: n.state, prefix: n.prefix}
	}
	return frontier, deadEnds, nil
}
