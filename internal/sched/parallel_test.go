package sched

import (
	"encoding/json"
	"runtime"
	"testing"

	"batsched/internal/battery"
	"batsched/internal/dkibam"
)

// TestOptimalParallelDeterminism is the determinism property of the
// work-stealing search: for every worker count and across repeated runs,
// the lifetime must be bit-identical to the serial search's and the
// schedule must be byte-identical (the canonical reconstruction does not
// depend on scheduling, stealing order or shared-memo content).
func TestOptimalParallelDeterminism(t *testing.T) {
	b1, b2 := battery.B1(), battery.B2()
	cells := []struct {
		name    string
		bats    []battery.Params
		load    string
		horizon float64
		grid    float64
	}{
		{"2xB1/ILs alt", []battery.Params{b1, b1}, "ILs alt", 200, 0.01},
		{"2xB1/ILs r1", []battery.Params{b1, b1}, "ILs r1", 200, 0.01},
		{"mixed/ILs alt", []battery.Params{b1, b2}, "ILs alt", 400, 0.05},
	}
	workerCounts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, c := range cells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			ds, cl := diffGrid(t, c.bats, c.load, c.horizon, c.grid, c.grid)
			wantLT, wantSched, err := Optimal(ds, cl)
			if err != nil {
				t.Fatal(err)
			}
			wantBytes, err := json.Marshal(wantSched)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range workerCounts {
				for rep := 0; rep < 3; rep++ {
					lt, sched, err := OptimalParallel(ds, cl, workers)
					if err != nil {
						t.Fatalf("workers=%d rep=%d: %v", workers, rep, err)
					}
					if lt != wantLT {
						t.Fatalf("workers=%d rep=%d: lifetime %v, serial %v", workers, rep, lt, wantLT)
					}
					got, err := json.Marshal(sched)
					if err != nil {
						t.Fatal(err)
					}
					if string(got) != string(wantBytes) {
						t.Fatalf("workers=%d rep=%d: schedule diverged\n got: %s\nwant: %s",
							workers, rep, got, wantBytes)
					}
				}
			}
		})
	}
}

// TestSharedMemoHitAttribution pins the stats contract of the shared memo:
// one lookup increments exactly one of MemoHits / SharedMemoHits, in the
// stats of the worker that performed it, and own- vs foreign-entry
// attribution follows who stored the death. Two optimizers share one table
// serially: the second worker's root lookup resolves from the first
// worker's entry and must count as exactly one SharedMemoHits — not as a
// MemoHits, and not once per observing worker.
func TestSharedMemoHitAttribution(t *testing.T) {
	ds, cl := diffGrid(t, []battery.Params{battery.B1(), battery.B1()}, "ILs alt", 200, 0.01, 0.01)
	shared := newSharedMemo()

	run := func(wid uint8) (*optimizer, int) {
		o, err := newOptimizer(ds, cl, DefaultSearchOptions())
		if err != nil {
			t.Fatal(err)
		}
		o.memo, o.wid = shared, wid
		sys, err := dkibam.NewSystem(ds, cl)
		if err != nil {
			t.Fatal(err)
		}
		death, err := o.solve(sys)
		if err != nil {
			t.Fatal(err)
		}
		return o, death
	}

	first, d1 := run(0)
	if first.stats.SharedMemoHits != 0 {
		t.Fatalf("first worker on an empty shared table counted %d shared hits", first.stats.SharedMemoHits)
	}
	if first.stats.States == 0 || first.stats.MemoHits == 0 {
		t.Fatalf("first worker did no memoised search: %+v", first.stats)
	}

	second, d2 := run(1)
	if d2 != d1 {
		t.Fatalf("shared-memo re-solve: %d, want %d", d2, d1)
	}
	// The whole solve must resolve from worker 0's exact root entry: one
	// foreign hit, zero own hits, zero expansions.
	if second.stats.SharedMemoHits != 1 || second.stats.MemoHits != 0 || second.stats.States != 0 {
		t.Fatalf("second worker stats %+v, want exactly one SharedMemoHits and nothing else", second.stats)
	}
}

// TestSerialStatsHaveNoParallelCounters pins that serial searches never
// report stealing or shared-memo traffic.
func TestSerialStatsHaveNoParallelCounters(t *testing.T) {
	ds, cl := diffGrid(t, []battery.Params{battery.B1(), battery.B1()}, "ILs alt", 200, 0.01, 0.01)
	_, _, stats, err := OptimalWithStats(ds, cl)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steals != 0 || stats.SharedMemoHits != 0 {
		t.Fatalf("serial search reported parallel counters: %+v", stats)
	}
}

// TestOptimalParallelMixedSixBatteries solves a heterogeneous 3xB1 + 3xB2
// bank exactly — a shape on which frontier-split parallelism re-derived ~3.9x
// the serial state count (private per-worker memos; heterogeneous states
// collapse far less under canonicalization), where the shared memo keeps the
// parallel search at ~1.0x — and holds the parallel result bit-identical to
// the serial one, schedule bytes included.
func TestOptimalParallelMixedSixBatteries(t *testing.T) {
	if testing.Short() {
		t.Skip("six-battery exact search")
	}
	b1, b2 := battery.B1(), battery.B2()
	bats := []battery.Params{b1, b1, b1, b2, b2, b2}
	ds, cl := diffGrid(t, bats, "ILs 500", 2000, 0.5, 0.5)

	serialLT, serialSched, stats, err := OptimalWithStats(ds, cl)
	if err != nil {
		t.Fatal(err)
	}
	if stats.LPBounds == 0 {
		t.Fatalf("mixed-bank search never consulted the LP bound: %+v", stats)
	}
	// The exact optimum must dominate every policy on the same bank.
	for _, policy := range []Policy{Sequential(), RoundRobin(), BestAvailable()} {
		lt, _, err := Run(ds, cl, policy)
		if err != nil {
			t.Fatalf("%s: %v", policy.Name(), err)
		}
		if lt > serialLT {
			t.Fatalf("%s lifetime %v beats exact optimum %v", policy.Name(), lt, serialLT)
		}
	}
	replayed, _, err := Run(ds, cl, Replay("opt-mixed", serialSched))
	if err != nil {
		t.Fatal(err)
	}
	if replayed != serialLT {
		t.Fatalf("schedule replays to %v, search says %v", replayed, serialLT)
	}

	parLT, parSched, parStats, err := OptimalParallelWithStats(ds, cl, 4)
	if err != nil {
		t.Fatal(err)
	}
	if parLT != serialLT {
		t.Fatalf("parallel lifetime %v, serial %v", parLT, serialLT)
	}
	a, _ := json.Marshal(serialSched)
	b, _ := json.Marshal(parSched)
	if string(a) != string(b) {
		t.Fatalf("parallel schedule diverged\n got: %s\nwant: %s", b, a)
	}
	if parStats.States == 0 {
		t.Fatalf("parallel search reported no work: %+v", parStats)
	}
}
