package core

import (
	"sync"
	"testing"

	"batsched/internal/battery"
	"batsched/internal/load"
	"batsched/internal/sched"
)

// cl250 builds the continuous 250 mA load, on which a B1 battery empties
// in the middle of the (single, long) job epoch.
func cl250(t *testing.T) load.Load {
	t.Helper()
	l, err := load.Paper("CL 250", 200)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestTraceScheduleBatteryEmptied: tracing a schedule that contains a
// mid-job BatteryEmptied replacement must replay cleanly, show the handover
// between batteries, and end with the system dead.
func TestTraceScheduleBatteryEmptied(t *testing.T) {
	p, err := NewProblem(battery.Bank(battery.B1(), 2), cl250(t))
	if err != nil {
		t.Fatal(err)
	}
	lifetime, schedule, err := p.PolicyRun(sched.Sequential())
	if err != nil {
		t.Fatal(err)
	}
	var emptied *sched.Choice
	for i := range schedule {
		if schedule[i].Reason == sched.BatteryEmptied {
			emptied = &schedule[i]
			break
		}
	}
	if emptied == nil {
		t.Fatal("sequential on a continuous load recorded no BatteryEmptied decision")
	}
	points, err := p.TraceSchedule(schedule, 1)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	if len(points) < 2 {
		t.Fatalf("only %d trace points", len(points))
	}
	last := points[len(points)-1]
	if last.Minutes != lifetime {
		t.Errorf("trace ends at %v min, lifetime %v min", last.Minutes, lifetime)
	}
	// Before the replacement battery 0 discharges; after it battery 1 does.
	sawOld, sawNew := false, false
	for _, pt := range points {
		if pt.Minutes < emptied.Minutes && pt.Active == 0 {
			sawOld = true
		}
		if pt.Minutes > emptied.Minutes && pt.Active == 1 {
			sawNew = true
		}
	}
	if !sawOld || !sawNew {
		t.Errorf("trace misses the handover (battery 0 before: %v, battery 1 after: %v)", sawOld, sawNew)
	}
	// The emptied battery's available charge is (near) zero at the handover,
	// and both totals end below full.
	if last.Total[0] >= battery.B1().Capacity {
		t.Errorf("battery 0 still full at death: %v A·min", last.Total[0])
	}
	if last.Total[1] >= battery.B1().Capacity {
		t.Errorf("battery 1 still full at death: %v A·min", last.Total[1])
	}
}

// TestCompiledConcurrent: a single Compiled artifact must serve many
// concurrent runs, all agreeing with the serial result — the property the
// sweep runner depends on.
func TestCompiledConcurrent(t *testing.T) {
	p, err := NewProblem(battery.Bank(battery.B1(), 2), ilsAlt(t))
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.PolicyLifetime(sched.BestAvailable())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make([]float64, 16)
	errs := make([]error, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = c.PolicyLifetime(sched.BestAvailable())
		}(i)
	}
	wg.Wait()
	for i := range got {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if got[i] != want {
			t.Errorf("run %d: lifetime %v, want %v", i, got[i], want)
		}
	}
	// Compile is idempotent and returns the same artifact.
	c2, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c {
		t.Error("Compile rebuilt the artifact")
	}
}
