package core

import (
	"errors"
	"math"
	"testing"

	"batsched/internal/battery"
	"batsched/internal/load"
	"batsched/internal/mc"
	"batsched/internal/sched"
)

func ilsAlt(t *testing.T) load.Load {
	t.Helper()
	l, err := load.Paper("ILs alt", 200)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewProblemValidation(t *testing.T) {
	l := ilsAlt(t)
	if _, err := NewProblem(nil, l); !errors.Is(err, ErrNoBatteries) {
		t.Fatalf("no batteries: %v", err)
	}
	bad := battery.Params{Capacity: -1, C: 0.5, KPrime: 1}
	if _, err := NewProblem([]battery.Params{bad}, l); err == nil {
		t.Fatal("accepted invalid battery")
	}
	if _, err := NewProblem([]battery.Params{battery.B1()}, load.Load{}); err == nil {
		t.Fatal("accepted empty load")
	}
}

func TestAccessors(t *testing.T) {
	l := ilsAlt(t)
	p, err := NewProblem([]battery.Params{battery.B1()}, l, WithGrid(0.02, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	step, unit := p.Grid()
	if step != 0.02 || unit != 0.01 {
		t.Fatalf("grid %v/%v", step, unit)
	}
	if p.Load().Name() != "ILs alt" {
		t.Fatal("load accessor")
	}
	bats := p.Batteries()
	bats[0].Capacity = 999
	if p.Batteries()[0].Capacity == 999 {
		t.Fatal("Batteries exposed internal state")
	}
}

func TestSingleBatteryLifetimes(t *testing.T) {
	p, err := NewProblem([]battery.Params{battery.B1()}, ilsAlt(t))
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := p.AnalyticLifetime()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(analytic-4.80) > 0.005 {
		t.Fatalf("analytic %v, want 4.80", analytic)
	}
	discrete, err := p.DiscreteLifetime()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(discrete-4.82) > 1e-9 {
		t.Fatalf("discrete %v, want 4.82", discrete)
	}
}

func TestSingleBatteryOnlyGuards(t *testing.T) {
	p, err := NewProblem([]battery.Params{battery.B1(), battery.B1()}, ilsAlt(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AnalyticLifetime(); !errors.Is(err, ErrSingleBattery) {
		t.Fatalf("analytic on 2 batteries: %v", err)
	}
	if _, err := p.DiscreteLifetime(); !errors.Is(err, ErrSingleBattery) {
		t.Fatalf("discrete on 2 batteries: %v", err)
	}
}

func TestPolicyAndOptimalAgreeWithTA(t *testing.T) {
	p, err := NewProblem([]battery.Params{battery.B1(), battery.B1()}, ilsAlt(t))
	if err != nil {
		t.Fatal(err)
	}
	best, err := p.PolicyLifetime(sched.BestAvailable())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(best-16.28) > 1e-9 {
		t.Fatalf("best-of-two %v, want 16.28", best)
	}
	opt, schedule, err := p.OptimalLifetime()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-16.90) > 1e-9 {
		t.Fatalf("optimal %v, want 16.90", opt)
	}
	if opt < best {
		t.Fatal("optimal below best-of-two")
	}
	sol, err := p.OptimalLifetimeTA(mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.LifetimeMinutes != opt {
		t.Fatalf("TA %v vs direct %v", sol.LifetimeMinutes, opt)
	}
	// Replaying the direct schedule through the tracer ends at the optimal
	// lifetime with all batteries empty.
	points, err := p.TraceSchedule(schedule, 10)
	if err != nil {
		t.Fatal(err)
	}
	last := points[len(points)-1]
	if math.Abs(last.Minutes-opt) > 1e-9 {
		t.Fatalf("trace ends at %v, want %v", last.Minutes, opt)
	}
}

func TestTracePolicyShape(t *testing.T) {
	p, err := NewProblem([]battery.Params{battery.B1(), battery.B1()}, ilsAlt(t))
	if err != nil {
		t.Fatal(err)
	}
	points, err := p.TracePolicy(sched.BestAvailable(), 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 10 {
		t.Fatalf("%d points", len(points))
	}
	first := points[0]
	if first.Minutes != 0 || first.Total[0] != 5.5 || first.Total[1] != 5.5 {
		t.Fatalf("initial point %+v", first)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Minutes <= points[i-1].Minutes {
			t.Fatal("trace time not increasing")
		}
		for b := 0; b < 2; b++ {
			if points[i].Total[b] > points[i-1].Total[b]+1e-9 {
				t.Fatal("total charge increased")
			}
			if points[i].Available[b] > points[i].Total[b]+1e-9 {
				t.Fatal("available exceeds total")
			}
		}
	}
	// Available charge must rise somewhere (the recovery effect visible in
	// Figure 6).
	recovered := false
	for i := 1; i < len(points); i++ {
		for b := 0; b < 2; b++ {
			if points[i].Available[b] > points[i-1].Available[b]+1e-12 {
				recovered = true
			}
		}
	}
	if !recovered {
		t.Fatal("no recovery visible in the trace")
	}
}

func TestWithGridChangesDiscretization(t *testing.T) {
	// A coarser grid still reproduces the lifetime approximately.
	p, err := NewProblem([]battery.Params{battery.B1()}, ilsAlt(t), WithGrid(0.02, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	lt, err := p.DiscreteLifetime()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lt-4.80) > 0.1 {
		t.Fatalf("coarse-grid lifetime %v, want ~4.8", lt)
	}
}

func TestBuildTA(t *testing.T) {
	p, err := NewProblem([]battery.Params{battery.B1()}, ilsAlt(t))
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.BuildTA()
	if err != nil {
		t.Fatal(err)
	}
	if m.B != 1 {
		t.Fatalf("TA built for %d batteries", m.B)
	}
	if !m.Net.Finalized() {
		t.Fatal("network not finalized")
	}
}
