// Package core ties the substrates of the battery-scheduling reproduction
// together into one problem-solving API: a Problem couples a battery bank
// with a load on a discretization grid; its methods compute lifetimes under
// the analytic KiBaM, under the deterministic scheduling schemes, and under
// the optimal schedule — via both the direct decision search and the
// priced-timed-automata model checker, which the tests hold to agree.
//
// A Problem is a cheap declarative description. Compile turns it into a
// Compiled artifact — the per-battery discretization tables plus the
// three-array load encoding — which is immutable and safe to share across
// goroutines; every simulation call creates its own per-run state (a
// dkibam.System) on top of it. Problem's own lifetime methods delegate to a
// lazily built, sync.Once-guarded Compiled, so a Problem is concurrency-safe
// too. The parallel sweep runner (internal/sweep) leans on exactly this
// split: one Compiled per scenario cell, many concurrent runs.
//
// The root package batsched re-exports this API; external users should
// import that.
package core

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"batsched/internal/battery"
	"batsched/internal/dkibam"
	"batsched/internal/kibam"
	"batsched/internal/load"
	"batsched/internal/mc"
	"batsched/internal/sched"
	"batsched/internal/takibam"
)

// Problem is a battery bank plus a load on a discretization grid.
type Problem struct {
	batteries []battery.Params
	ld        load.Load

	stepMin    float64
	unitAmpMin float64

	// The compiled artifact is built at most once; the sync.Once makes the
	// lazy build safe for concurrent callers.
	once     sync.Once
	compiled *Compiled
	compErr  error
}

// Option customises a Problem.
type Option func(*Problem)

// WithGrid overrides the discretization grid (defaults to the paper's
// T = 0.01 min, Gamma = 0.01 A·min).
func WithGrid(stepMin, unitAmpMin float64) Option {
	return func(p *Problem) {
		p.stepMin = stepMin
		p.unitAmpMin = unitAmpMin
	}
}

// Problem construction errors.
var (
	ErrNoBatteries   = errors.New("core: need at least one battery")
	ErrSingleBattery = errors.New("core: operation needs a single-battery problem")
)

// NewProblem validates the inputs and builds a problem.
func NewProblem(batteries []battery.Params, ld load.Load, opts ...Option) (*Problem, error) {
	if len(batteries) == 0 {
		return nil, ErrNoBatteries
	}
	for i, b := range batteries {
		if err := b.Validate(); err != nil {
			return nil, fmt.Errorf("battery %d: %w", i, err)
		}
	}
	if ld.Len() == 0 {
		return nil, load.ErrEmptyLoad
	}
	p := &Problem{
		batteries:  append([]battery.Params(nil), batteries...),
		ld:         ld,
		stepMin:    dkibam.PaperStepMin,
		unitAmpMin: dkibam.PaperUnitAmpMin,
	}
	for _, o := range opts {
		o(p)
	}
	return p, nil
}

// Batteries returns a copy of the battery parameters.
func (p *Problem) Batteries() []battery.Params {
	return append([]battery.Params(nil), p.batteries...)
}

// Load returns the problem's load.
func (p *Problem) Load() load.Load { return p.ld }

// Grid returns the discretization grid (T, Gamma).
func (p *Problem) Grid() (stepMin, unitAmpMin float64) { return p.stepMin, p.unitAmpMin }

// Compile builds (once) and returns the problem's immutable compiled
// artifact. The artifact is safe for concurrent use.
func (p *Problem) Compile() (*Compiled, error) {
	p.once.Do(func() {
		p.compiled, p.compErr = Compile(p.batteries, p.ld, p.stepMin, p.unitAmpMin)
	})
	return p.compiled, p.compErr
}

// Compiled is the immutable compiled form of a problem: the per-battery
// integer discretization tables and the three-array load encoding, shared by
// every run. A Compiled is safe for concurrent use — all per-run state lives
// in the dkibam.System each method creates.
type Compiled struct {
	batteries []battery.Params
	ld        load.Load
	discs     []*dkibam.Discretization
	cl        load.Compiled

	// sysPool recycles per-run Systems across simulations on this artifact;
	// a pooled system is Reset on acquire, so policy evaluations on a hot
	// cell allocate nothing. Valid only because every System built here
	// shares the same immutable discs/cl.
	sysPool sync.Pool
}

// Compile discretizes a bank and a load onto a grid, producing the shared
// immutable artifact directly (without going through a Problem).
func Compile(batteries []battery.Params, ld load.Load, stepMin, unitAmpMin float64) (*Compiled, error) {
	if len(batteries) == 0 {
		return nil, ErrNoBatteries
	}
	ds := make([]*dkibam.Discretization, len(batteries))
	for i, b := range batteries {
		d, err := dkibam.Discretize(b, stepMin, unitAmpMin)
		if err != nil {
			return nil, fmt.Errorf("battery %d: %w", i, err)
		}
		ds[i] = d
	}
	cl, err := load.Compile(ld, stepMin, unitAmpMin)
	if err != nil {
		return nil, err
	}
	return &Compiled{
		batteries: append([]battery.Params(nil), batteries...),
		ld:        ld,
		discs:     ds,
		cl:        cl,
	}, nil
}

// CompileBank discretizes a bank onto a grid with an empty load: the
// artifact behind streaming sessions, whose load arrives event by event
// (dkibam.System.AppendEpoch) instead of being compiled up front. The
// system pool works exactly as on a full artifact — Reset truncates a
// pooled system's appended stream away — but the offline lifetime methods
// are useless here (no load to run). One bank artifact is safe to share
// across any number of concurrent sessions.
func CompileBank(batteries []battery.Params, stepMin, unitAmpMin float64) (*Compiled, error) {
	if len(batteries) == 0 {
		return nil, ErrNoBatteries
	}
	ds := make([]*dkibam.Discretization, len(batteries))
	for i, b := range batteries {
		d, err := dkibam.Discretize(b, stepMin, unitAmpMin)
		if err != nil {
			return nil, fmt.Errorf("battery %d: %w", i, err)
		}
		ds[i] = d
	}
	return &Compiled{
		batteries: append([]battery.Params(nil), batteries...),
		discs:     ds,
		cl:        load.Compiled{StepMin: stepMin, UnitAmpMin: unitAmpMin},
	}, nil
}

// Batteries returns a copy of the battery parameters.
func (c *Compiled) Batteries() []battery.Params {
	return append([]battery.Params(nil), c.batteries...)
}

// Load returns the compiled problem's load.
func (c *Compiled) Load() load.Load { return c.ld }

// Grid returns the discretization grid (T, Gamma).
func (c *Compiled) Grid() (stepMin, unitAmpMin float64) { return c.cl.StepMin, c.cl.UnitAmpMin }

// Discretizations returns the shared per-battery integer tables. The slice
// is freshly allocated; the tables themselves are immutable and shared.
func (c *Compiled) Discretizations() []*dkibam.Discretization {
	return append([]*dkibam.Discretization(nil), c.discs...)
}

// CompiledLoad returns the three-array load encoding.
func (c *Compiled) CompiledLoad() load.Compiled { return c.cl }

// NewSystem creates fresh per-run simulation state (fully charged batteries
// at time zero) on the shared artifact.
func (c *Compiled) NewSystem() (*dkibam.System, error) {
	return dkibam.NewSystem(c.discs, c.cl)
}

// AcquireSystem returns a per-run system in the construction state (fully
// charged, time zero), recycling an earlier run's system when one is pooled.
// Pair it with ReleaseSystem once the run is done; a released system must
// not be used again.
func (c *Compiled) AcquireSystem() (*dkibam.System, error) {
	if sys, ok := c.sysPool.Get().(*dkibam.System); ok {
		sys.Reset()
		return sys, nil
	}
	return c.NewSystem()
}

// ReleaseSystem returns a system acquired from AcquireSystem to the pool.
func (c *Compiled) ReleaseSystem(sys *dkibam.System) {
	if sys == nil {
		return
	}
	sys.OnStep = nil
	c.sysPool.Put(sys)
}

// PolicyLifetimeCount simulates a scheduling policy on a pooled per-run
// system and returns the lifetime plus the number of scheduling decisions —
// what the sweep runner needs — without materializing the Schedule that
// PolicyRun records.
func (c *Compiled) PolicyLifetimeCount(policy sched.Policy) (float64, int, error) {
	sys, err := c.AcquireSystem()
	if err != nil {
		return 0, 0, err
	}
	defer c.ReleaseSystem(sys)
	lifetime, err := sys.Run(sched.AdaptChooser(policy.NewChooser()))
	if err != nil {
		return 0, 0, err
	}
	return lifetime, sys.Decisions(), nil
}

// AnalyticLifetime computes the battery lifetime under the continuous KiBaM
// (closed form per constant-current segment). It requires a single-battery
// problem; multi-battery lifetimes depend on a scheduling policy.
func (c *Compiled) AnalyticLifetime() (float64, error) {
	if len(c.batteries) != 1 {
		return 0, fmt.Errorf("%w (have %d)", ErrSingleBattery, len(c.batteries))
	}
	m, err := kibam.New(c.batteries[0])
	if err != nil {
		return 0, err
	}
	return m.Lifetime(c.ld)
}

// DiscreteLifetime computes the single-battery lifetime under the dKiBaM
// (the TA-KiBaM column of Tables 3 and 4).
func (c *Compiled) DiscreteLifetime() (float64, error) {
	if len(c.batteries) != 1 {
		return 0, fmt.Errorf("%w (have %d)", ErrSingleBattery, len(c.batteries))
	}
	sys, err := c.NewSystem()
	if err != nil {
		return 0, err
	}
	return sys.Run(sched.FixedChooser(0))
}

// PolicyLifetime simulates a scheduling policy on the discretized system
// and returns the system lifetime in minutes.
func (c *Compiled) PolicyLifetime(policy sched.Policy) (float64, error) {
	return sched.Lifetime(c.discs, c.cl, policy)
}

// PolicyRun simulates a scheduling policy and also returns its schedule.
func (c *Compiled) PolicyRun(policy sched.Policy) (float64, sched.Schedule, error) {
	return sched.Run(c.discs, c.cl, policy)
}

// OptimalLifetime computes the maximum achievable lifetime and an optimal
// schedule by direct iterative search over the scheduling decisions.
func (c *Compiled) OptimalLifetime() (float64, sched.Schedule, error) {
	return sched.Optimal(c.discs, c.cl)
}

// OptimalLifetimeWithStats is OptimalLifetime, additionally reporting how
// much work the search performed (states expanded, memo hits, pruned
// branches); the sweep runner and the evaluation service surface these.
func (c *Compiled) OptimalLifetimeWithStats() (float64, sched.Schedule, sched.SearchStats, error) {
	return sched.OptimalWithStats(c.discs, c.cl)
}

// OptimalLifetimeParallel is OptimalLifetime with the branch exploration
// spread over a worker pool (workers <= 0 means runtime.NumCPU()).
func (c *Compiled) OptimalLifetimeParallel(workers int) (float64, sched.Schedule, error) {
	return sched.OptimalParallel(c.discs, c.cl, workers)
}

// OptimalLifetimeParallelWithStats is OptimalLifetimeParallel with search
// statistics (summed over the frontier expansion and all workers).
func (c *Compiled) OptimalLifetimeParallelWithStats(workers int) (float64, sched.Schedule, sched.SearchStats, error) {
	return sched.OptimalParallelWithStats(c.discs, c.cl, workers)
}

// BuildTA constructs the TA-KiBaM priced-timed-automata network of the
// problem.
func (c *Compiled) BuildTA() (*takibam.Model, error) {
	return takibam.Build(c.discs, c.cl)
}

// ExportUppaal writes the problem's TA-KiBaM network as an Uppaal 4.x XML
// model for cross-checking against the paper's original toolchain.
func (c *Compiled) ExportUppaal(w io.Writer) error {
	return takibam.ExportUppaal(w, c.discs, c.cl)
}

// OptimalLifetimeTA computes the optimal schedule with the paper's method:
// minimum-cost reachability on the TA-KiBaM network.
func (c *Compiled) OptimalLifetimeTA(opts mc.Options) (*takibam.Solution, error) {
	m, err := c.BuildTA()
	if err != nil {
		return nil, err
	}
	return m.Solve(opts)
}

// AnalyticLifetime computes the battery lifetime under the continuous KiBaM;
// see Compiled.AnalyticLifetime.
func (p *Problem) AnalyticLifetime() (float64, error) {
	if len(p.batteries) != 1 {
		return 0, fmt.Errorf("%w (have %d)", ErrSingleBattery, len(p.batteries))
	}
	m, err := kibam.New(p.batteries[0])
	if err != nil {
		return 0, err
	}
	return m.Lifetime(p.ld)
}

// DiscreteLifetime computes the single-battery lifetime under the dKiBaM.
func (p *Problem) DiscreteLifetime() (float64, error) {
	c, err := p.Compile()
	if err != nil {
		return 0, err
	}
	return c.DiscreteLifetime()
}

// PolicyLifetime simulates a scheduling policy on the discretized system
// and returns the system lifetime in minutes.
func (p *Problem) PolicyLifetime(policy sched.Policy) (float64, error) {
	c, err := p.Compile()
	if err != nil {
		return 0, err
	}
	return c.PolicyLifetime(policy)
}

// PolicyRun simulates a scheduling policy and also returns its schedule.
func (p *Problem) PolicyRun(policy sched.Policy) (float64, sched.Schedule, error) {
	c, err := p.Compile()
	if err != nil {
		return 0, nil, err
	}
	return c.PolicyRun(policy)
}

// OptimalLifetime computes the maximum achievable lifetime and an optimal
// schedule by direct search over the scheduling decisions.
func (p *Problem) OptimalLifetime() (float64, sched.Schedule, error) {
	c, err := p.Compile()
	if err != nil {
		return 0, nil, err
	}
	return c.OptimalLifetime()
}

// OptimalLifetimeParallel is OptimalLifetime with the branch exploration
// spread over a worker pool (workers <= 0 means runtime.NumCPU()).
func (p *Problem) OptimalLifetimeParallel(workers int) (float64, sched.Schedule, error) {
	c, err := p.Compile()
	if err != nil {
		return 0, nil, err
	}
	return c.OptimalLifetimeParallel(workers)
}

// BuildTA constructs the TA-KiBaM priced-timed-automata network of the
// problem.
func (p *Problem) BuildTA() (*takibam.Model, error) {
	c, err := p.Compile()
	if err != nil {
		return nil, err
	}
	return c.BuildTA()
}

// OptimalLifetimeTA computes the optimal schedule with the paper's method:
// minimum-cost reachability on the TA-KiBaM network.
func (p *Problem) OptimalLifetimeTA(opts mc.Options) (*takibam.Solution, error) {
	c, err := p.Compile()
	if err != nil {
		return nil, err
	}
	return c.OptimalLifetimeTA(opts)
}

// TracePoint samples the bank state at one instant (for the Figure 6
// charge curves).
type TracePoint struct {
	// Minutes is the sample time.
	Minutes float64
	// Total and Available hold gamma and y1 per battery, in A·min.
	Total     []float64
	Available []float64
	// Active is the discharging battery index, or -1.
	Active int
}

// TraceSchedule re-simulates a recorded schedule and samples the bank state
// every sampleEvery steps (1 = every step).
func (c *Compiled) TraceSchedule(schedule sched.Schedule, sampleEvery int) ([]TracePoint, error) {
	return c.trace(sched.Replay("replay", schedule), sampleEvery)
}

// TracePolicy simulates a policy and samples the bank state every
// sampleEvery steps.
func (c *Compiled) TracePolicy(policy sched.Policy, sampleEvery int) ([]TracePoint, error) {
	return c.trace(policy, sampleEvery)
}

// TraceSchedule re-simulates a recorded schedule and samples the bank state
// every sampleEvery steps (1 = every step).
func (p *Problem) TraceSchedule(schedule sched.Schedule, sampleEvery int) ([]TracePoint, error) {
	c, err := p.Compile()
	if err != nil {
		return nil, err
	}
	return c.TraceSchedule(schedule, sampleEvery)
}

// TracePolicy simulates a policy and samples the bank state every
// sampleEvery steps.
func (p *Problem) TracePolicy(policy sched.Policy, sampleEvery int) ([]TracePoint, error) {
	c, err := p.Compile()
	if err != nil {
		return nil, err
	}
	return c.TracePolicy(policy, sampleEvery)
}

func (c *Compiled) trace(policy sched.Policy, sampleEvery int) ([]TracePoint, error) {
	if sampleEvery <= 0 {
		sampleEvery = 1
	}
	sys, err := c.NewSystem()
	if err != nil {
		return nil, err
	}
	sample := func(s *dkibam.System) TracePoint {
		pt := TracePoint{
			Minutes:   s.Minutes(),
			Total:     make([]float64, s.Batteries()),
			Available: make([]float64, s.Batteries()),
			Active:    s.Active(),
		}
		for i := 0; i < s.Batteries(); i++ {
			pt.Total[i] = s.Disc(i).TotalAmpMin(s.Cell(i))
			pt.Available[i] = s.Disc(i).AvailableAmpMin(s.Cell(i))
		}
		return pt
	}
	points := []TracePoint{sample(sys)}
	sys.OnStep = func(s *dkibam.System) {
		if s.Step()%sampleEvery == 0 || s.Dead() {
			points = append(points, sample(s))
		}
	}
	if _, err := sys.Run(sched.AdaptChooser(policy.NewChooser())); err != nil {
		return nil, err
	}
	return points, nil
}
