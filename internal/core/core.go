// Package core ties the substrates of the battery-scheduling reproduction
// together into one problem-solving API: a Problem couples a battery bank
// with a load on a discretization grid; its methods compute lifetimes under
// the analytic KiBaM, under the deterministic scheduling schemes, and under
// the optimal schedule — via both the direct decision search and the
// priced-timed-automata model checker, which the tests hold to agree.
//
// The root package batsched re-exports this API; external users should
// import that.
package core

import (
	"errors"
	"fmt"

	"batsched/internal/battery"
	"batsched/internal/dkibam"
	"batsched/internal/kibam"
	"batsched/internal/load"
	"batsched/internal/mc"
	"batsched/internal/sched"
	"batsched/internal/takibam"
)

// Problem is a battery bank plus a load on a discretization grid.
type Problem struct {
	batteries []battery.Params
	ld        load.Load

	stepMin    float64
	unitAmpMin float64

	// lazily built artefacts
	discs    []*dkibam.Discretization
	compiled *load.Compiled
}

// Option customises a Problem.
type Option func(*Problem)

// WithGrid overrides the discretization grid (defaults to the paper's
// T = 0.01 min, Gamma = 0.01 A·min).
func WithGrid(stepMin, unitAmpMin float64) Option {
	return func(p *Problem) {
		p.stepMin = stepMin
		p.unitAmpMin = unitAmpMin
	}
}

// Problem construction errors.
var (
	ErrNoBatteries   = errors.New("core: need at least one battery")
	ErrSingleBattery = errors.New("core: operation needs a single-battery problem")
)

// NewProblem validates the inputs and builds a problem.
func NewProblem(batteries []battery.Params, ld load.Load, opts ...Option) (*Problem, error) {
	if len(batteries) == 0 {
		return nil, ErrNoBatteries
	}
	for i, b := range batteries {
		if err := b.Validate(); err != nil {
			return nil, fmt.Errorf("battery %d: %w", i, err)
		}
	}
	if ld.Len() == 0 {
		return nil, load.ErrEmptyLoad
	}
	p := &Problem{
		batteries:  append([]battery.Params(nil), batteries...),
		ld:         ld,
		stepMin:    dkibam.PaperStepMin,
		unitAmpMin: dkibam.PaperUnitAmpMin,
	}
	for _, o := range opts {
		o(p)
	}
	return p, nil
}

// Batteries returns a copy of the battery parameters.
func (p *Problem) Batteries() []battery.Params {
	return append([]battery.Params(nil), p.batteries...)
}

// Load returns the problem's load.
func (p *Problem) Load() load.Load { return p.ld }

// Grid returns the discretization grid (T, Gamma).
func (p *Problem) Grid() (stepMin, unitAmpMin float64) { return p.stepMin, p.unitAmpMin }

// discretizations builds (and caches) the per-battery integer tables.
func (p *Problem) discretizations() ([]*dkibam.Discretization, error) {
	if p.discs != nil {
		return p.discs, nil
	}
	ds := make([]*dkibam.Discretization, len(p.batteries))
	for i, b := range p.batteries {
		d, err := dkibam.Discretize(b, p.stepMin, p.unitAmpMin)
		if err != nil {
			return nil, fmt.Errorf("battery %d: %w", i, err)
		}
		ds[i] = d
	}
	p.discs = ds
	return ds, nil
}

// compile builds (and caches) the three-array load encoding.
func (p *Problem) compile() (load.Compiled, error) {
	if p.compiled != nil {
		return *p.compiled, nil
	}
	cl, err := load.Compile(p.ld, p.stepMin, p.unitAmpMin)
	if err != nil {
		return load.Compiled{}, err
	}
	p.compiled = &cl
	return cl, nil
}

// AnalyticLifetime computes the battery lifetime under the continuous KiBaM
// (closed form per constant-current segment). It requires a single-battery
// problem; multi-battery lifetimes depend on a scheduling policy.
func (p *Problem) AnalyticLifetime() (float64, error) {
	if len(p.batteries) != 1 {
		return 0, fmt.Errorf("%w (have %d)", ErrSingleBattery, len(p.batteries))
	}
	m, err := kibam.New(p.batteries[0])
	if err != nil {
		return 0, err
	}
	return m.Lifetime(p.ld)
}

// DiscreteLifetime computes the single-battery lifetime under the dKiBaM
// (the TA-KiBaM column of Tables 3 and 4).
func (p *Problem) DiscreteLifetime() (float64, error) {
	if len(p.batteries) != 1 {
		return 0, fmt.Errorf("%w (have %d)", ErrSingleBattery, len(p.batteries))
	}
	ds, err := p.discretizations()
	if err != nil {
		return 0, err
	}
	cl, err := p.compile()
	if err != nil {
		return 0, err
	}
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return 0, err
	}
	return sys.Run(sched.FixedChooser(0))
}

// PolicyLifetime simulates a scheduling policy on the discretized system
// and returns the system lifetime in minutes.
func (p *Problem) PolicyLifetime(policy sched.Policy) (float64, error) {
	lifetime, _, err := p.PolicyRun(policy)
	return lifetime, err
}

// PolicyRun simulates a scheduling policy and also returns its schedule.
func (p *Problem) PolicyRun(policy sched.Policy) (float64, sched.Schedule, error) {
	ds, err := p.discretizations()
	if err != nil {
		return 0, nil, err
	}
	cl, err := p.compile()
	if err != nil {
		return 0, nil, err
	}
	return sched.Run(ds, cl, policy)
}

// OptimalLifetime computes the maximum achievable lifetime and an optimal
// schedule by direct branch-and-bound search over the scheduling decisions.
func (p *Problem) OptimalLifetime() (float64, sched.Schedule, error) {
	ds, err := p.discretizations()
	if err != nil {
		return 0, nil, err
	}
	cl, err := p.compile()
	if err != nil {
		return 0, nil, err
	}
	return sched.Optimal(ds, cl)
}

// BuildTA constructs the TA-KiBaM priced-timed-automata network of the
// problem.
func (p *Problem) BuildTA() (*takibam.Model, error) {
	ds, err := p.discretizations()
	if err != nil {
		return nil, err
	}
	cl, err := p.compile()
	if err != nil {
		return nil, err
	}
	return takibam.Build(ds, cl)
}

// OptimalLifetimeTA computes the optimal schedule with the paper's method:
// minimum-cost reachability on the TA-KiBaM network.
func (p *Problem) OptimalLifetimeTA(opts mc.Options) (*takibam.Solution, error) {
	m, err := p.BuildTA()
	if err != nil {
		return nil, err
	}
	return m.Solve(opts)
}

// TracePoint samples the bank state at one instant (for the Figure 6
// charge curves).
type TracePoint struct {
	// Minutes is the sample time.
	Minutes float64
	// Total and Available hold gamma and y1 per battery, in A·min.
	Total     []float64
	Available []float64
	// Active is the discharging battery index, or -1.
	Active int
}

// TraceSchedule re-simulates a recorded schedule and samples the bank state
// every sampleEvery steps (1 = every step).
func (p *Problem) TraceSchedule(schedule sched.Schedule, sampleEvery int) ([]TracePoint, error) {
	return p.trace(sched.Replay("replay", schedule), sampleEvery)
}

// TracePolicy simulates a policy and samples the bank state every
// sampleEvery steps.
func (p *Problem) TracePolicy(policy sched.Policy, sampleEvery int) ([]TracePoint, error) {
	return p.trace(policy, sampleEvery)
}

func (p *Problem) trace(policy sched.Policy, sampleEvery int) ([]TracePoint, error) {
	if sampleEvery <= 0 {
		sampleEvery = 1
	}
	ds, err := p.discretizations()
	if err != nil {
		return nil, err
	}
	cl, err := p.compile()
	if err != nil {
		return nil, err
	}
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		return nil, err
	}
	sample := func(s *dkibam.System) TracePoint {
		pt := TracePoint{
			Minutes:   s.Minutes(),
			Total:     make([]float64, s.Batteries()),
			Available: make([]float64, s.Batteries()),
			Active:    s.Active(),
		}
		for i := 0; i < s.Batteries(); i++ {
			pt.Total[i] = s.Disc(i).TotalAmpMin(s.Cell(i))
			pt.Available[i] = s.Disc(i).AvailableAmpMin(s.Cell(i))
		}
		return pt
	}
	points := []TracePoint{sample(sys)}
	sys.OnStep = func(s *dkibam.System) {
		if s.Step()%sampleEvery == 0 || s.Dead() {
			points = append(points, sample(s))
		}
	}
	if _, err := sys.Run(sched.AdaptChooser(policy.NewChooser())); err != nil {
		return nil, err
	}
	return points, nil
}
