package takibam

import (
	"fmt"
	"io"
	"strings"

	"batsched/internal/dkibam"
	"batsched/internal/load"
)

// ExportUppaal writes the TA-KiBaM network for the given batteries and
// compiled load as an Uppaal 4.x XML model, so the reproduction can be
// cross-checked against the original toolchain (Uppaal Cora). The exported
// model mirrors Figure 5 and this package's construction: per-battery total
// charge and height difference templates, the load, the scheduler, and the
// maximum finder, with the same channels, urgency, and priorities; the
// precomputed arrays (load_time, cur_times, cur, recov_time) are emitted as
// const int declarations. Verify with Cora's query "A[] not
// MaximumFinder.done" exactly as in Section 4.3.
//
// The exporter intentionally writes the broadcast go_off and the
// all_empty-before-conversion variant documented in this package's comment.
func ExportUppaal(w io.Writer, ds []*dkibam.Discretization, cl load.Compiled) error {
	if len(ds) == 0 {
		return ErrNoBatteries
	}
	if err := cl.Validate(); err != nil {
		return err
	}
	for i, d := range ds {
		if d.StepMin != cl.StepMin || d.UnitAmpMin != cl.UnitAmpMin {
			return fmt.Errorf("%w (battery %d)", ErrGridMismatch, i)
		}
	}
	e := &exporter{ds: ds, cl: cl, b: len(ds)}
	var sb strings.Builder
	e.write(&sb)
	_, err := io.WriteString(w, sb.String())
	return err
}

type exporter struct {
	ds []*dkibam.Discretization
	cl load.Compiled
	b  int
}

// esc escapes a C-like expression for embedding in XML text.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func intList(vals []int) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ", ")
}

func (e *exporter) write(w *strings.Builder) {
	fmt.Fprint(w, "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n")
	fmt.Fprint(w, "<!DOCTYPE nta PUBLIC '-//Uppaal Team//DTD Flat System 1.1//EN' 'http://www.it.uu.se/research/group/darts/uppaal/flat-1_1.dtd'>\n")
	fmt.Fprint(w, "<nta>\n")
	e.globalDeclarations(w)
	for id := 0; id < e.b; id++ {
		e.totalChargeTemplate(w, id)
		e.heightDifferenceTemplate(w, id)
	}
	e.loadTemplate(w)
	e.schedulerTemplate(w)
	e.maximumFinderTemplate(w)
	e.system(w)
	fmt.Fprint(w, "</nta>\n")
}

func (e *exporter) globalDeclarations(w *strings.Builder) {
	var d strings.Builder
	fmt.Fprintf(&d, "// TA-KiBaM for %d batteries, exported by batsched.\n", e.b)
	fmt.Fprintf(&d, "// Grid: T = %g min, Gamma = %g A·min.\n", e.cl.StepMin, e.cl.UnitAmpMin)
	fmt.Fprintf(&d, "const int B = %d;\n", e.b)
	fmt.Fprintf(&d, "const int E = %d; // epochs\n", e.cl.Epochs())
	fmt.Fprintf(&d, "const int load_time[E] = {%s};\n", intList(e.cl.LoadTime))
	fmt.Fprintf(&d, "const int cur_times[E] = {%s};\n", intList(e.cl.CurTimes))
	fmt.Fprintf(&d, "const int cur[E] = {%s};\n", intList(e.cl.Cur))
	for id, disc := range e.ds {
		fmt.Fprintf(&d, "const int c_mille_%d = %d;\n", id, disc.CMille)
		fmt.Fprintf(&d, "const int N_%d = %d;\n", id, disc.N)
		fmt.Fprintf(&d, "const int recov_time_%d[%d] = {%s};\n", id, len(disc.RecovTime), intList(disc.RecovTime))
	}
	var initN []string
	for _, disc := range e.ds {
		initN = append(initN, fmt.Sprint(disc.N))
	}
	fmt.Fprintf(&d, "int n_gamma[B] = {%s};\n", strings.Join(initN, ", "))
	fmt.Fprint(&d, "int m_delta[B];\n")
	fmt.Fprint(&d, "bool bat_empty[B];\n")
	fmt.Fprint(&d, "int j = 0;\n")
	fmt.Fprint(&d, "int empty_count = 0;\n")
	fmt.Fprint(&d, "int charge_left = 0;\n")
	fmt.Fprint(&d, "int sum_gamma() { int s = 0; for (i : int[0, B-1]) s += n_gamma[i]; return s; }\n")
	for id := 0; id < e.b; id++ {
		fmt.Fprintf(&d, "chan use_charge_%d;\n", id)
	}
	fmt.Fprint(&d, "urgent chan emptied;\n")
	fmt.Fprint(&d, "broadcast chan all_empty;\n")
	fmt.Fprint(&d, "chan new_job;\n")
	fmt.Fprint(&d, "chan go_on;\n")
	fmt.Fprint(&d, "broadcast chan go_off;\n")
	fmt.Fprintf(w, "  <declaration>%s</declaration>\n", esc(d.String()))
}

// template helpers -----------------------------------------------------

type xLoc struct {
	id        string
	name      string
	invariant string
	committed bool
}

type xTrans struct {
	src, dst   string
	guard      string
	sync       string
	assignment string
}

func writeTemplate(w *strings.Builder, name, localDecl string, locs []xLoc, init string, trans []xTrans) {
	fmt.Fprint(w, "  <template>\n")
	fmt.Fprintf(w, "    <name>%s</name>\n", name)
	if localDecl != "" {
		fmt.Fprintf(w, "    <declaration>%s</declaration>\n", esc(localDecl))
	}
	for _, l := range locs {
		fmt.Fprintf(w, "    <location id=\"%s\">\n", l.id)
		fmt.Fprintf(w, "      <name>%s</name>\n", l.name)
		if l.invariant != "" {
			fmt.Fprintf(w, "      <label kind=\"invariant\">%s</label>\n", esc(l.invariant))
		}
		if l.committed {
			fmt.Fprint(w, "      <committed/>\n")
		}
		fmt.Fprint(w, "    </location>\n")
	}
	fmt.Fprintf(w, "    <init ref=\"%s\"/>\n", init)
	for _, t := range trans {
		fmt.Fprint(w, "    <transition>\n")
		fmt.Fprintf(w, "      <source ref=\"%s\"/>\n", t.src)
		fmt.Fprintf(w, "      <target ref=\"%s\"/>\n", t.dst)
		if t.guard != "" {
			fmt.Fprintf(w, "      <label kind=\"guard\">%s</label>\n", esc(t.guard))
		}
		if t.sync != "" {
			fmt.Fprintf(w, "      <label kind=\"synchronisation\">%s</label>\n", esc(t.sync))
		}
		if t.assignment != "" {
			fmt.Fprintf(w, "      <label kind=\"assignment\">%s</label>\n", esc(t.assignment))
		}
		fmt.Fprint(w, "    </transition>\n")
	}
	fmt.Fprint(w, "  </template>\n")
}

func (e *exporter) totalChargeTemplate(w *strings.Builder, id int) {
	p := func(l string) string { return fmt.Sprintf("tc%d_%s", id, l) }
	emptyCond := fmt.Sprintf("(1000 - c_mille_%d) * m_delta[%d] >= c_mille_%d * n_gamma[%d]", id, id, id, id)
	notEmpty := fmt.Sprintf("(1000 - c_mille_%d) * m_delta[%d] < c_mille_%d * n_gamma[%d]", id, id, id, id)
	locs := []xLoc{
		{id: p("idle"), name: "idle"},
		{id: p("on"), name: "on", invariant: "j < E && cur_times[j] > 0 imply c_disch <= cur_times[j]"},
		{id: p("notifying"), name: "notifying", committed: true},
		{id: p("empty"), name: "empty"},
	}
	trans := []xTrans{
		{src: p("idle"), dst: p("on"), guard: fmt.Sprintf("!bat_empty[%d]", id), sync: "go_on?", assignment: "c_disch = 0"},
		{src: p("on"), dst: p("on"),
			guard:      fmt.Sprintf("c_disch >= cur_times[j] && j < E && cur[j] > 0 && %s", notEmpty),
			sync:       fmt.Sprintf("use_charge_%d!", id),
			assignment: fmt.Sprintf("n_gamma[%d] -= cur[j], c_disch = 0", id)},
		{src: p("on"), dst: p("notifying"), guard: emptyCond, sync: "emptied!",
			assignment: fmt.Sprintf("bat_empty[%d] = true", id)},
		{src: p("on"), dst: p("idle"), sync: "go_off?"},
		{src: p("notifying"), dst: p("empty"), sync: "new_job!"},
		{src: p("notifying"), dst: p("empty"), sync: "all_empty?"},
	}
	writeTemplate(w, fmt.Sprintf("TotalCharge%d", id), "clock c_disch;", locs, p("idle"), trans)
}

func (e *exporter) heightDifferenceTemplate(w *strings.Builder, id int) {
	p := func(l string) string { return fmt.Sprintf("hd%d_%s", id, l) }
	recov := fmt.Sprintf("recov_time_%d[m_delta[%d]]", id, id)
	locs := []xLoc{
		{id: p("m0"), name: "m_delta_0"},
		{id: p("m1"), name: "m_delta_1"},
		{id: p("mgt1"), name: "m_delta_gt_1", invariant: fmt.Sprintf("c_recov <= %s", recov)},
		{id: p("off"), name: "off"},
	}
	bump := fmt.Sprintf("m_delta[%d] += cur[j]", id)
	trans := []xTrans{
		{src: p("m0"), dst: p("m1"), guard: "cur[j] == 1", sync: fmt.Sprintf("use_charge_%d?", id), assignment: bump},
		{src: p("m0"), dst: p("mgt1"), guard: "cur[j] > 1", sync: fmt.Sprintf("use_charge_%d?", id), assignment: bump + ", c_recov = 0"},
		{src: p("m1"), dst: p("mgt1"), sync: fmt.Sprintf("use_charge_%d?", id), assignment: bump + ", c_recov = 0"},
		{src: p("mgt1"), dst: p("mgt1"), sync: fmt.Sprintf("use_charge_%d?", id), assignment: bump},
		{src: p("mgt1"), dst: p("mgt1"),
			guard:      fmt.Sprintf("m_delta[%d] > 2 && c_recov >= %s", id, recov),
			assignment: fmt.Sprintf("m_delta[%d] -= 1, c_recov = 0", id)},
		{src: p("mgt1"), dst: p("m1"),
			guard:      fmt.Sprintf("m_delta[%d] == 2 && c_recov >= %s", id, recov),
			assignment: fmt.Sprintf("m_delta[%d] -= 1, c_recov = 0", id)},
		{src: p("m0"), dst: p("off"), sync: "all_empty?"},
		{src: p("m1"), dst: p("off"), sync: "all_empty?"},
		{src: p("mgt1"), dst: p("off"), sync: "all_empty?"},
	}
	writeTemplate(w, fmt.Sprintf("HeightDifference%d", id), "clock c_recov;", locs, p("m0"), trans)
}

func (e *exporter) loadTemplate(w *strings.Builder) {
	locs := []xLoc{
		{id: "ld_dispatch", name: "dispatch", committed: true},
		{id: "ld_job", name: "load_on", invariant: "j < E imply t <= load_time[j]"},
		{id: "ld_idle", name: "idle", invariant: "j < E imply t <= load_time[j]"},
		{id: "ld_exhausted", name: "exhausted"},
		{id: "ld_off", name: "off"},
	}
	trans := []xTrans{
		{src: "ld_dispatch", dst: "ld_job", guard: "j < E && cur[j] > 0", sync: "new_job!"},
		{src: "ld_dispatch", dst: "ld_idle", guard: "j < E && cur[j] == 0"},
		{src: "ld_dispatch", dst: "ld_exhausted", guard: "j >= E"},
		{src: "ld_job", dst: "ld_dispatch", guard: "j < E && t >= load_time[j]", sync: "go_off!", assignment: "j += 1"},
		{src: "ld_idle", dst: "ld_dispatch", guard: "j < E && t >= load_time[j]", assignment: "j += 1"},
		{src: "ld_dispatch", dst: "ld_off", sync: "all_empty?"},
		{src: "ld_job", dst: "ld_off", sync: "all_empty?"},
		{src: "ld_idle", dst: "ld_off", sync: "all_empty?"},
	}
	writeTemplate(w, "LoadAuto", "clock t;", locs, "ld_dispatch", trans)
}

func (e *exporter) schedulerTemplate(w *strings.Builder) {
	locs := []xLoc{
		{id: "sc_wait", name: "wait"},
		{id: "sc_choose", name: "choose", committed: true},
		{id: "sc_off", name: "off"},
	}
	trans := []xTrans{
		{src: "sc_wait", dst: "sc_choose", sync: "new_job?"},
		{src: "sc_choose", dst: "sc_wait", sync: "go_on!"},
		{src: "sc_wait", dst: "sc_off", sync: "all_empty?"},
	}
	writeTemplate(w, "Scheduler", "", locs, "sc_wait", trans)
}

func (e *exporter) maximumFinderTemplate(w *strings.Builder) {
	locs := []xLoc{
		{id: "mf_counting", name: "counting"},
		{id: "mf_announce", name: "announce", committed: true},
		// Cora cost rate: declared in the invariant, as in the paper's
		// Figure 5(e).
		{id: "mf_converting", name: "converting", invariant: "c_cost <= charge_left && cost' == 1"},
		{id: "mf_done", name: "done"},
	}
	trans := []xTrans{
		{src: "mf_counting", dst: "mf_counting", guard: "empty_count < B - 1", sync: "emptied?", assignment: "empty_count += 1"},
		{src: "mf_counting", dst: "mf_announce", guard: "empty_count == B - 1", sync: "emptied?",
			assignment: "empty_count += 1, charge_left = sum_gamma(), c_cost = 0"},
		{src: "mf_announce", dst: "mf_converting", sync: "all_empty!"},
		{src: "mf_converting", dst: "mf_done", guard: "c_cost >= charge_left"},
	}
	writeTemplate(w, "MaximumFinder", "clock c_cost;", locs, "mf_counting", trans)
}

func (e *exporter) system(w *strings.Builder) {
	var d strings.Builder
	var procs []string
	for id := 0; id < e.b; id++ {
		fmt.Fprintf(&d, "TC%d = TotalCharge%d();\n", id, id)
		fmt.Fprintf(&d, "HD%d = HeightDifference%d();\n", id, id)
		procs = append(procs, fmt.Sprintf("TC%d", id), fmt.Sprintf("HD%d", id))
	}
	fmt.Fprint(&d, "LD = LoadAuto();\nSC = Scheduler();\nMF = MaximumFinder();\n")
	procs = append(procs, "LD", "SC", "MF")
	// Channel priorities, lowest first, matching this package's constants.
	var uses []string
	for id := 0; id < e.b; id++ {
		uses = append(uses, fmt.Sprintf("use_charge_%d", id))
	}
	fmt.Fprintf(&d, "chan priority go_off < go_on < new_job < all_empty < emptied < %s;\n",
		strings.Join(uses, " < "))
	fmt.Fprintf(&d, "system %s;\n", strings.Join(procs, ", "))
	fmt.Fprintf(w, "  <system>%s</system>\n", esc(d.String()))
	fmt.Fprint(w, "  <queries>\n    <query>\n")
	fmt.Fprint(w, "      <formula>A[] not MF.done</formula>\n")
	fmt.Fprint(w, "      <comment>Section 4.3: the counterexample trace minimising cost is the optimal battery schedule.</comment>\n")
	fmt.Fprint(w, "    </query>\n  </queries>\n")
}
