package takibam

import (
	"math"
	"testing"

	"batsched/internal/battery"
	"batsched/internal/dkibam"
	"batsched/internal/load"
	"batsched/internal/lpta"
	"batsched/internal/mc"
	"batsched/internal/sched"
)

func discs(t *testing.T, b battery.Params, n int) []*dkibam.Discretization {
	t.Helper()
	d, err := dkibam.Discretize(b, dkibam.PaperStepMin, dkibam.PaperUnitAmpMin)
	if err != nil {
		t.Fatal(err)
	}
	ds := make([]*dkibam.Discretization, n)
	for i := range ds {
		ds[i] = d
	}
	return ds
}

func compiled(t *testing.T, name string, horizon float64) load.Compiled {
	t.Helper()
	l, err := load.Paper(name, horizon)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := load.Compile(l, dkibam.PaperStepMin, dkibam.PaperUnitAmpMin)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, load.Compiled{}); err == nil {
		t.Fatal("accepted empty bank")
	}
	d, err := dkibam.Discretize(battery.B1(), 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build([]*dkibam.Discretization{d}, compiled(t, "CL 250", 10)); err == nil {
		t.Fatal("accepted grid mismatch")
	}
}

// TestSingleBatteryMatchesDirectEngine: the model checker run of the
// TA-KiBaM reproduces the direct discretized engine exactly, for every
// paper load on both batteries (40 comparisons). This is the central
// internal-consistency theorem of the reproduction: two independent
// implementations of the same semantics.
func TestSingleBatteryMatchesDirectEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("full 2x10 load sweep")
	}
	for _, b := range []battery.Params{battery.B1(), battery.B2()} {
		ds := discs(t, b, 1)
		for _, name := range load.PaperLoadNames {
			cl := compiled(t, name, 200)
			m, err := Build(ds, cl)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := m.Solve(mc.Options{})
			if err != nil {
				t.Fatalf("%s %s: %v", b.Label, name, err)
			}
			sys, err := dkibam.NewSystem(ds, cl)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := sys.Run(sched.FixedChooser(0))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(sol.LifetimeMinutes-direct) > 1e-9 {
				t.Errorf("%s %s: TA %v vs direct %v", b.Label, name, sol.LifetimeMinutes, direct)
			}
			// The minimum cost is the remaining charge at death.
			if int(sol.Cost) != sys.RemainingUnits() {
				t.Errorf("%s %s: cost %d vs remaining units %d", b.Label, name, sol.Cost, sys.RemainingUnits())
			}
		}
	}
}

// TestTwoBatteryOptimalMatchesDirectSearch: the paper's method (min-cost
// reachability on the TA network) and the independent branch-and-bound
// search agree on the optimal lifetime.
func TestTwoBatteryOptimalMatchesDirectSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("optimal searches")
	}
	ds := discs(t, battery.B1(), 2)
	for _, name := range []string{"CL 500", "CL alt", "ILs alt", "ILs r1", "ILs r2", "ILl 500"} {
		cl := compiled(t, name, 200)
		m, err := Build(ds, cl)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := m.Solve(mc.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		direct, _, err := sched.Optimal(ds, cl)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sol.LifetimeMinutes-direct) > 1e-9 {
			t.Errorf("%s: TA optimal %v vs direct optimal %v", name, sol.LifetimeMinutes, direct)
		}
	}
}

// TestScheduleFromTraceReplays: the go_on assignments extracted from the
// witness trace drive the deterministic engine to the same lifetime.
func TestScheduleFromTraceReplays(t *testing.T) {
	ds := discs(t, battery.B1(), 2)
	cl := compiled(t, "ILs alt", 200)
	m, err := Build(ds, cl)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Solve(mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Schedule) == 0 {
		t.Fatal("empty schedule")
	}
	// Convert assignments into a replayable schedule. The TA may emit an
	// extra zero-length assignment when a battery dies exactly at a job
	// boundary; on this load it does not, so counts line up.
	sys, err := dkibam.NewSystem(ds, cl)
	if err != nil {
		t.Fatal(err)
	}
	idx := 0
	lifetime, err := sys.Run(func(s *dkibam.System, dec dkibam.Decision) int {
		if idx >= len(sol.Schedule) {
			t.Fatalf("TA schedule exhausted at decision %d", idx)
		}
		a := sol.Schedule[idx]
		if a.Step != dec.Step {
			t.Fatalf("decision %d at step %d, TA says %d", idx, dec.Step, a.Step)
		}
		idx++
		return a.Battery
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lifetime-sol.LifetimeMinutes) > 1e-9 {
		t.Fatalf("replayed TA schedule gives %v, TA says %v", lifetime, sol.LifetimeMinutes)
	}
}

// TestStepSemanticsAgreesWithEventSemantics: on a small configuration the
// exhaustive unit-delay exploration returns the same optimum as the
// event-jump exploration, certifying the jump optimisation for this model
// class.
func TestStepSemanticsAgreesWithEventSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("step-semantics exploration is slow")
	}
	// A small battery keeps the unit-step state count manageable.
	small := battery.Params{Capacity: 1.0, C: battery.ItsyC, KPrime: battery.ItsyKPrime, Label: "small"}
	ds := discs(t, small, 2)
	cl := compiled(t, "ILs 500", 60)
	m, err := Build(ds, cl)
	if err != nil {
		t.Fatal(err)
	}
	eventSol, err := m.Solve(mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := m.Engine(lpta.StepSemantics)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mc.MinCostReach(engine, m.Net.InitialState(), m.Goal(), mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("step semantics found no schedule")
	}
	if res.Cost != eventSol.Cost {
		t.Fatalf("step cost %d vs event cost %d", res.Cost, eventSol.Cost)
	}
}

// TestCostIsRemainingCharge: the paper's cost construction — at the goal
// the accumulated cost equals the summed remaining total charge.
func TestCostIsRemainingCharge(t *testing.T) {
	ds := discs(t, battery.B1(), 2)
	cl := compiled(t, "CL alt", 200)
	m, err := Build(ds, cl)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Solve(mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Drawn charge = 2N - cost; lifetime and cost must be consistent:
	// cheaper (more drawn) pairs with longer life on this fixed load.
	if sol.Cost <= 0 || sol.Cost >= 1100 {
		t.Fatalf("cost %d out of range", sol.Cost)
	}
	// The paper's Figure 6 observation: a large fraction of charge remains.
	frac := float64(sol.Cost) / 1100
	if frac < 0.5 || frac > 0.9 {
		t.Errorf("remaining fraction %.2f, expected the paper's 'large fraction' regime", frac)
	}
}

// TestGoalUnreachableOnShortHorizon: a too-short load cannot empty the
// batteries; Solve reports it.
func TestGoalUnreachableOnShortHorizon(t *testing.T) {
	ds := discs(t, battery.B1(), 1)
	cl := compiled(t, "CL 250", 2)
	m, err := Build(ds, cl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Solve(mc.Options{}); err == nil {
		t.Fatal("no error on an exhausted horizon")
	}
}

// TestDeadlockFreedom: exhaustively explore a small two-battery model and
// verify every deadlock state is a proper end state (the maximum finder is
// done or the load is exhausted).
func TestDeadlockFreedom(t *testing.T) {
	small := battery.Params{Capacity: 0.5, C: battery.ItsyC, KPrime: battery.ItsyKPrime, Label: "tiny"}
	ds := discs(t, small, 2)
	cl := compiled(t, "CL 500", 30)
	m, err := Build(ds, cl)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := m.Engine(lpta.EventSemantics)
	if err != nil {
		t.Fatal(err)
	}
	mfAuto := -1
	for i := 0; i < m.Net.Automata(); i++ {
		if m.Net.AutomatonName(lpta.AutoID(i)) == "maximum_finder" {
			mfAuto = i
		}
	}
	if mfAuto < 0 {
		t.Fatal("maximum finder not found")
	}
	bad := 0
	_, err = mc.Explore(engine, m.Net.InitialState(), nil, 3_000_000, func(s *lpta.State) bool {
		if len(engine.Successors(s)) == 0 {
			if m.Net.LocationName(lpta.AutoID(mfAuto), lpta.LocID(s.Locs[mfAuto])) != "done" {
				bad++
				t.Logf("non-final deadlock: %s", s.Format(m.Net))
				return false
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad > 0 {
		t.Fatalf("%d deadlock states outside mf.done", bad)
	}
}
