package takibam

import (
	"math"
	"os"
	"testing"

	"batsched/internal/battery"
	"batsched/internal/mc"
	"batsched/internal/sched"
)

// TestTAOptimalHeavyLoads drives the priced-timed-automata route on the
// larger Table 5 instances and checks it against the direct search.
//
//   - ILs 250 (~20 s, ~7M states) runs unless -short.
//   - ILl 250 (~2.5 min, ~53M states; measured TA optimum 78.92, equal to
//     the direct search) runs only with BATSCHED_HEAVY=1, so the default
//     suite stays fast. The result is recorded in EXPERIMENTS.md.
func TestTAOptimalHeavyLoads(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy TA searches")
	}
	ds := discs(t, battery.B1(), 2)
	loads := []struct {
		name   string
		budget int
	}{
		{"CL 250", 0},
		{"ILs 250", 0},
	}
	if os.Getenv("BATSCHED_HEAVY") != "" {
		loads = append(loads, struct {
			name   string
			budget int
		}{"ILl 250", 400_000_000})
	}
	for _, tc := range loads {
		cl := compiled(t, tc.name, 160)
		m, err := Build(ds, cl)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := m.Solve(mc.Options{MaxStates: tc.budget})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		direct, _, err := sched.Optimal(ds, cl)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sol.LifetimeMinutes-direct) > 1e-9 {
			t.Errorf("%s: TA %v vs direct %v", tc.name, sol.LifetimeMinutes, direct)
		}
		t.Logf("%s: optimal %.2f min, %d branch states, %d touched",
			tc.name, sol.LifetimeMinutes, sol.BranchStates, sol.TouchedStates)
	}
}
