package takibam

import (
	"encoding/xml"
	"strings"
	"testing"

	"batsched/internal/battery"
)

func TestExportUppaalWellFormed(t *testing.T) {
	ds := discs(t, battery.B1(), 2)
	cl := compiled(t, "ILs alt", 40)
	var sb strings.Builder
	if err := ExportUppaal(&sb, ds, cl); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// Well-formed XML (ignoring the DTD, which encoding/xml skips).
	dec := xml.NewDecoder(strings.NewReader(out))
	elements := 0
	for {
		tok, err := dec.Token()
		if tok == nil {
			break
		}
		if err != nil {
			t.Fatalf("XML parse error: %v", err)
		}
		if _, ok := tok.(xml.StartElement); ok {
			elements++
		}
	}
	if elements < 50 {
		t.Fatalf("only %d XML elements", elements)
	}

	// Structural landmarks of the model.
	landmarks := []string{
		"<name>TotalCharge0</name>",
		"<name>TotalCharge1</name>",
		"<name>HeightDifference0</name>",
		"<name>LoadAuto</name>",
		"<name>Scheduler</name>",
		"<name>MaximumFinder</name>",
		"urgent chan emptied;",
		"broadcast chan all_empty;",
		"broadcast chan go_off;",
		"chan priority go_off",
		"A[] not MF.done",
		"const int load_time[E]",
		"const int recov_time_0",
	}
	for _, want := range landmarks {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q", want)
		}
	}
	// Guards must be XML-escaped: no raw '<' may survive inside label text.
	if strings.Contains(out, "c_disch <= cur_times") {
		t.Error("unescaped guard text in XML")
	}
	if !strings.Contains(out, "c_disch &lt;= cur_times") {
		t.Error("escaped invariant missing")
	}
	// The empty-condition guard with the per-mille constant appears.
	if !strings.Contains(out, "(1000 - c_mille_0) * m_delta[0] &gt;= c_mille_0 * n_gamma[0]") {
		t.Error("empty-condition guard missing")
	}
}

func TestExportUppaalValidation(t *testing.T) {
	var sb strings.Builder
	if err := ExportUppaal(&sb, nil, compiled(t, "CL 250", 10)); err == nil {
		t.Fatal("accepted empty bank")
	}
	d := discs(t, battery.B1(), 1)
	bad := compiled(t, "CL 250", 10)
	bad.Cur = bad.Cur[:1]
	if err := ExportUppaal(&sb, d, bad); err == nil {
		t.Fatal("accepted corrupt load")
	}
}
