// Package takibam constructs the TA-KiBaM: the network of priced timed
// automata of Section 4 of the DSN 2009 battery-scheduling paper. For B
// batteries the network contains 2B+3 automata:
//
//   - one total charge automaton per battery (Figure 5(a)): tracks
//     n_gamma[id], draws cur[j] units every cur_times[j] steps while the
//     battery is on, and observes the empty condition (8);
//   - one height difference automaton per battery (Figure 5(b)): tracks
//     m_delta[id], bumps it on every use_charge[id] and recovers one unit
//     every recov_time[m] steps;
//   - the load automaton (Figure 5(c)): walks the epochs of the compiled
//     load, announcing jobs on new_job and ending them on go_off;
//   - the scheduler automaton (Figure 5(d)): on new_job it
//     nondeterministically switches one non-empty battery on via go_on —
//     this choice is the entire scheduling freedom of the model;
//   - the maximum finder automaton (Figure 5(e)): counts emptied batteries
//     and, when all are empty, converts the remaining charge into cost, so
//     that the minimum-cost path is the maximum-lifetime schedule.
//
// Channel overview (Table 2), with the priorities that resolve simultaneous
// events exactly like the deterministic engine in internal/dkibam:
//
//	use_charge[id]  binary     prio 50  draw beats everything at an instant
//	(recovery)      internal   prio 40  height-difference decrements
//	emptied         binary(!)  prio 30  urgent: empty observed immediately
//	all_empty       broadcast  prio 25  shuts all processes down
//	new_job         binary     prio 20  wake the scheduler
//	go_on           binary     prio 15  scheduler's (nondeterministic) pick
//	go_off          broadcast  prio 10  job end switches the battery off
//	(load internal) internal   prio  5  epoch bookkeeping
//
// Documented deviations from the paper's figures: go_off is broadcast
// rather than binary (identical behaviour with exactly one battery on,
// avoids a deadlock when a battery empties at a job boundary), all_empty is
// emitted when the last battery empties rather than after the cost
// conversion (the scheduler would otherwise deadlock in its committed
// choose location), and recovery switches zero the recovery clock when the
// height difference drops to one (the stale value is never read; zeroing it
// merges equal physical states).
package takibam

import (
	"errors"
	"fmt"

	"batsched/internal/dkibam"
	"batsched/internal/load"
	"batsched/internal/lpta"
)

// Channel priorities; see the package comment.
const (
	prioUseCharge    = 50
	prioRecovery     = 40
	prioEmptied      = 30
	prioAllEmpty     = 25
	prioNewJob       = 20
	prioGoOn         = 15
	prioGoOff        = 10
	prioLoadInternal = 5
)

// unboundedInvariant stands in for "no bound" in invariant bound functions
// whose defining array index is out of scope (e.g. cur_times[j] while the
// battery cannot be on anyway).
const unboundedInvariant = 1 << 30

// Model is a built TA-KiBaM network together with the handles needed to
// query it.
type Model struct {
	// Net is the finalized network.
	Net *lpta.Network
	// B is the number of batteries.
	B int

	ds []*dkibam.Discretization
	cl load.Compiled

	// Variable handles.
	nGamma     lpta.IntArrayVar
	mDelta     lpta.IntArrayVar
	batEmpty   lpta.IntArrayVar
	j          lpta.IntVar
	emptyCount lpta.IntVar
	chargeLeft lpta.IntVar

	// Channels.
	useCharge []lpta.ChanID
	emptied   lpta.ChanID
	allEmpty  lpta.ChanID
	newJob    lpta.ChanID
	goOn      lpta.ChanID
	goOff     lpta.ChanID

	// Automaton ids.
	tcAuto    []lpta.AutoID
	hdAuto    []lpta.AutoID
	loadAuto  lpta.AutoID
	schedAuto lpta.AutoID
	mfAuto    lpta.AutoID

	// Locations needed by goals and introspection.
	mfDone  lpta.LocID
	tcOn    []lpta.LocID
	tcEmpty []lpta.LocID
}

// Build errors.
var (
	ErrNoBatteries  = errors.New("takibam: need at least one battery")
	ErrGridMismatch = errors.New("takibam: battery and load use different discretization grids")
)

// Build constructs the TA-KiBaM for the given batteries and compiled load.
func Build(ds []*dkibam.Discretization, cl load.Compiled) (*Model, error) {
	if len(ds) == 0 {
		return nil, ErrNoBatteries
	}
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	for i, d := range ds {
		if d.StepMin != cl.StepMin || d.UnitAmpMin != cl.UnitAmpMin {
			return nil, fmt.Errorf("%w (battery %d)", ErrGridMismatch, i)
		}
	}
	b := len(ds)
	m := &Model{B: b, ds: ds, cl: cl}
	net := lpta.NewNetwork(fmt.Sprintf("takibam-%dx", b))
	m.Net = net

	// Variables (Table 1).
	initN := make([]int, b)
	for i, d := range ds {
		initN[i] = d.N
	}
	m.nGamma = net.IntArray("n_gamma", initN)
	m.mDelta = net.IntArray("m_delta", make([]int, b))
	m.batEmpty = net.IntArray("bat_empty", make([]int, b))
	m.j = net.Int("j", 0)
	m.emptyCount = net.Int("empty_count", 0)
	m.chargeLeft = net.Int("charge_left", 0)

	// Channels (Table 2).
	m.useCharge = make([]lpta.ChanID, b)
	for i := 0; i < b; i++ {
		m.useCharge[i] = net.Channel(fmt.Sprintf("use_charge[%d]", i), lpta.Binary, prioUseCharge, false)
	}
	m.emptied = net.Channel("emptied", lpta.Binary, prioEmptied, true)
	m.allEmpty = net.Channel("all_empty", lpta.Broadcast, prioAllEmpty, false)
	m.newJob = net.Channel("new_job", lpta.Binary, prioNewJob, false)
	m.goOn = net.Channel("go_on", lpta.Binary, prioGoOn, false)
	m.goOff = net.Channel("go_off", lpta.Broadcast, prioGoOff, false)

	// Clocks.
	cDisch := make([]lpta.ClockID, b)
	cRecov := make([]lpta.ClockID, b)
	for i := 0; i < b; i++ {
		cDisch[i] = net.Clock(fmt.Sprintf("c_disch[%d]", i))
		cRecov[i] = net.Clock(fmt.Sprintf("c_recov[%d]", i))
	}
	tClock := net.Clock("t")
	cCost := net.Clock("c_cost")

	m.tcAuto = make([]lpta.AutoID, b)
	m.hdAuto = make([]lpta.AutoID, b)
	m.tcOn = make([]lpta.LocID, b)
	m.tcEmpty = make([]lpta.LocID, b)
	for i := 0; i < b; i++ {
		m.buildTotalCharge(i, cDisch[i])
		m.buildHeightDifference(i, cRecov[i])
	}
	m.buildLoad(tClock)
	m.buildScheduler()
	m.buildMaximumFinder(cCost)

	if err := net.Finalize(); err != nil {
		return nil, err
	}
	return m, nil
}

// epochs returns the number of epochs of the load.
func (m *Model) epochs() int { return m.cl.Epochs() }

// emptyCond evaluates the integer empty criterion (8) for battery id:
// (1000-c)*m >= c*n.
func (m *Model) emptyCond(s *lpta.State, id int) bool {
	cm := m.ds[id].CMille
	return (1000-cm)*m.mDelta.Get(s, id) >= cm*m.nGamma.Get(s, id)
}

// buildTotalCharge adds the total charge automaton of battery id
// (Figure 5(a)).
func (m *Model) buildTotalCharge(id int, cDisch lpta.ClockID) {
	a := m.Net.Automaton(fmt.Sprintf("total_charge[%d]", id))
	m.tcAuto[id] = a.ID()
	idle := a.Location("idle")
	on := a.Location("on")
	notifying := a.CommittedLocation("notifying")
	empty := a.Location("empty")
	a.Initial(idle)
	m.tcOn[id] = on
	m.tcEmpty[id] = empty

	curTimesBound := func(s *lpta.State) int {
		jj := m.j.Get(s)
		if jj < m.epochs() && m.cl.CurTimes[jj] > 0 {
			return m.cl.CurTimes[jj]
		}
		return unboundedInvariant
	}
	a.Invariant(on, cDisch, curTimesBound)

	// idle -> on: the scheduler switches this battery on (go_on).
	a.Switch(idle, on, lpta.SwitchSpec{
		Recv: m.goOn, HasRecv: true,
		Guard:  func(s *lpta.State) bool { return m.batEmpty.Get(s, id) == 0 },
		Resets: []lpta.ClockID{cDisch},
		Label:  "switch-on",
	})
	// on -> on: draw cur[j] charge units after cur_times[j] steps, while not
	// empty (the use self-loop with guard (1000-c)*m < c*n).
	a.Switch(on, on, lpta.SwitchSpec{
		Send: m.useCharge[id], HasSend: true,
		Guard: func(s *lpta.State) bool {
			jj := m.j.Get(s)
			return jj < m.epochs() && m.cl.IsJob(jj) && !m.emptyCond(s, id)
		},
		ClockGuards: []lpta.ClockGuard{{Clock: cDisch, Op: lpta.GE, Bound: curTimesBound}},
		Update: func(s *lpta.State) {
			m.nGamma.Add(s, id, -m.cl.Cur[m.j.Get(s)])
		},
		Resets: []lpta.ClockID{cDisch},
		Label:  "use",
	})
	// on -> notifying: the battery is observed empty (urgent emptied).
	a.Switch(on, notifying, lpta.SwitchSpec{
		Send: m.emptied, HasSend: true,
		Guard:  func(s *lpta.State) bool { return m.emptyCond(s, id) },
		Update: func(s *lpta.State) { m.batEmpty.Set(s, id, 1) },
		Label:  "observe-empty",
	})
	// on -> idle: the job ended (go_off broadcast from the load).
	a.Switch(on, idle, lpta.SwitchSpec{
		Recv: m.goOff, HasRecv: true,
		Label: "switch-off",
	})
	// notifying -> empty: wake the scheduler so another battery continues
	// the job, or fall asleep when the system just died.
	a.Switch(notifying, empty, lpta.SwitchSpec{
		Send: m.newJob, HasSend: true,
		Label: "handover",
	})
	a.Switch(notifying, empty, lpta.SwitchSpec{
		Recv: m.allEmpty, HasRecv: true,
		Label: "system-dead",
	})
}

// buildHeightDifference adds the height difference automaton of battery id
// (Figure 5(b)).
func (m *Model) buildHeightDifference(id int, cRecov lpta.ClockID) {
	a := m.Net.Automaton(fmt.Sprintf("height_difference[%d]", id))
	m.hdAuto[id] = a.ID()
	m0 := a.Location("m_delta_0")
	m1 := a.Location("m_delta_1")
	mGT1 := a.Location("m_delta_gt_1")
	off := a.Location("off")
	a.Initial(m0)

	recovBound := func(s *lpta.State) int {
		mm := m.mDelta.Get(s, id)
		if mm < 2 {
			return unboundedInvariant
		}
		if mm >= len(m.ds[id].RecovTime) {
			mm = len(m.ds[id].RecovTime) - 1
		}
		return m.ds[id].RecovTime[mm]
	}
	a.Invariant(mGT1, cRecov, recovBound)

	bump := func(s *lpta.State) { m.mDelta.Add(s, id, m.cl.Cur[m.j.Get(s)]) }
	curIs1 := func(s *lpta.State) bool { return m.cl.Cur[m.j.Get(s)] == 1 }
	curGT1 := func(s *lpta.State) bool { return m.cl.Cur[m.j.Get(s)] > 1 }

	// Draw bumps: entering active recovery (m reaching >= 2 from <= 1)
	// resets the recovery clock; further bumps while already in active
	// recovery leave the running countdown untouched (Figure 5(b)).
	a.Switch(m0, m1, lpta.SwitchSpec{
		Recv: m.useCharge[id], HasRecv: true,
		Guard: curIs1, Update: bump, Label: "bump-0to1",
	})
	a.Switch(m0, mGT1, lpta.SwitchSpec{
		Recv: m.useCharge[id], HasRecv: true,
		Guard: curGT1, Update: bump, Resets: []lpta.ClockID{cRecov}, Label: "bump-0toN",
	})
	a.Switch(m1, mGT1, lpta.SwitchSpec{
		Recv: m.useCharge[id], HasRecv: true,
		Update: bump, Resets: []lpta.ClockID{cRecov}, Label: "bump-1up",
	})
	a.Switch(mGT1, mGT1, lpta.SwitchSpec{
		Recv: m.useCharge[id], HasRecv: true,
		Update: bump, Label: "bump-running",
	})
	// Recovery decrements, forced by the invariant when the countdown
	// elapses; they run whether or not the battery is discharging.
	a.Switch(mGT1, mGT1, lpta.SwitchSpec{
		Guard:       func(s *lpta.State) bool { return m.mDelta.Get(s, id) > 2 },
		ClockGuards: []lpta.ClockGuard{{Clock: cRecov, Op: lpta.GE, Bound: recovBound}},
		Update:      func(s *lpta.State) { m.mDelta.Add(s, id, -1) },
		Resets:      []lpta.ClockID{cRecov},
		Priority:    prioRecovery,
		Label:       "recover",
	})
	a.Switch(mGT1, m1, lpta.SwitchSpec{
		Guard:       func(s *lpta.State) bool { return m.mDelta.Get(s, id) == 2 },
		ClockGuards: []lpta.ClockGuard{{Clock: cRecov, Op: lpta.GE, Bound: recovBound}},
		Update:      func(s *lpta.State) { m.mDelta.Add(s, id, -1) },
		Resets:      []lpta.ClockID{cRecov}, // stale value never read; reset merges states
		Priority:    prioRecovery,
		Label:       "recover-last",
	})
	for _, from := range []lpta.LocID{m0, m1, mGT1} {
		a.Switch(from, off, lpta.SwitchSpec{
			Recv: m.allEmpty, HasRecv: true,
			Label: "system-dead",
		})
	}
}

// buildLoad adds the load automaton (Figure 5(c)).
func (m *Model) buildLoad(t lpta.ClockID) {
	a := m.Net.Automaton("load")
	m.loadAuto = a.ID()
	dispatch := a.CommittedLocation("dispatch")
	job := a.Location("load_on")
	idle := a.Location("idle")
	exhausted := a.Location("exhausted")
	off := a.Location("off")
	a.Initial(dispatch)

	loadTimeBound := func(s *lpta.State) int {
		jj := m.j.Get(s)
		if jj < m.epochs() {
			return m.cl.LoadTime[jj]
		}
		return unboundedInvariant
	}
	a.Invariant(job, t, loadTimeBound)
	a.Invariant(idle, t, loadTimeBound)

	inRange := func(s *lpta.State) bool { return m.j.Get(s) < m.epochs() }
	isJob := func(s *lpta.State) bool { jj := m.j.Get(s); return jj < m.epochs() && m.cl.IsJob(jj) }
	isIdle := func(s *lpta.State) bool { jj := m.j.Get(s); return jj < m.epochs() && !m.cl.IsJob(jj) }
	advance := func(s *lpta.State) { m.j.Add(s, 1) }

	// dispatch: route the fresh epoch.
	a.Switch(dispatch, job, lpta.SwitchSpec{
		Send: m.newJob, HasSend: true,
		Guard: isJob, Label: "announce-job",
	})
	a.Switch(dispatch, idle, lpta.SwitchSpec{
		Guard: isIdle, Priority: prioLoadInternal, Label: "enter-idle",
	})
	a.Switch(dispatch, exhausted, lpta.SwitchSpec{
		Guard:    func(s *lpta.State) bool { return !inRange(s) },
		Priority: prioLoadInternal, Label: "load-exhausted",
	})
	// Epoch ends.
	a.Switch(job, dispatch, lpta.SwitchSpec{
		Send: m.goOff, HasSend: true,
		ClockGuards: []lpta.ClockGuard{{Clock: t, Op: lpta.GE, Bound: loadTimeBound}},
		Guard:       inRange,
		Update:      advance,
		Label:       "job-end",
	})
	a.Switch(idle, dispatch, lpta.SwitchSpec{
		ClockGuards: []lpta.ClockGuard{{Clock: t, Op: lpta.GE, Bound: loadTimeBound}},
		Guard:       inRange,
		Update:      advance,
		Priority:    prioLoadInternal,
		Label:       "idle-end",
	})
	for _, from := range []lpta.LocID{dispatch, job, idle} {
		a.Switch(from, off, lpta.SwitchSpec{
			Recv: m.allEmpty, HasRecv: true,
			Label: "system-dead",
		})
	}
}

// buildScheduler adds the scheduler automaton (Figure 5(d)). The go_on
// send from the committed choose location has one enabled receiver per
// alive idle battery; that receiver choice is the scheduling decision.
func (m *Model) buildScheduler() {
	a := m.Net.Automaton("scheduler")
	m.schedAuto = a.ID()
	wait := a.Location("wait")
	choose := a.CommittedLocation("choose")
	off := a.Location("off")
	a.Initial(wait)

	a.Switch(wait, choose, lpta.SwitchSpec{
		Recv: m.newJob, HasRecv: true,
		Label: "wake",
	})
	a.Switch(choose, wait, lpta.SwitchSpec{
		Send: m.goOn, HasSend: true,
		Label: "assign",
	})
	a.Switch(wait, off, lpta.SwitchSpec{
		Recv: m.allEmpty, HasRecv: true,
		Label: "system-dead",
	})
}

// buildMaximumFinder adds the maximum finder automaton (Figure 5(e)): it
// counts emptied batteries and converts the remaining total charge into
// cost at rate 1, so minimal cost equals maximal drawn charge and thus
// maximal lifetime.
func (m *Model) buildMaximumFinder(cCost lpta.ClockID) {
	a := m.Net.Automaton("maximum_finder")
	m.mfAuto = a.ID()
	counting := a.Location("counting")
	announce := a.CommittedLocation("announce")
	converting := a.Location("converting")
	done := a.Location("done")
	a.Initial(counting)
	m.mfDone = done

	chargeLeftBound := func(s *lpta.State) int { return m.chargeLeft.Get(s) }
	a.Invariant(converting, cCost, chargeLeftBound)
	a.CostRate(converting, lpta.ConstCost(1))

	a.Switch(counting, counting, lpta.SwitchSpec{
		Recv: m.emptied, HasRecv: true,
		Guard:  func(s *lpta.State) bool { return m.emptyCount.Get(s) < m.B-1 },
		Update: func(s *lpta.State) { m.emptyCount.Add(s, 1) },
		Label:  "count-empty",
	})
	a.Switch(counting, announce, lpta.SwitchSpec{
		Recv: m.emptied, HasRecv: true,
		Guard: func(s *lpta.State) bool { return m.emptyCount.Get(s) == m.B-1 },
		Update: func(s *lpta.State) {
			m.emptyCount.Add(s, 1)
			m.chargeLeft.Set(s, m.nGamma.Sum(s))
		},
		Resets: []lpta.ClockID{cCost},
		Label:  "last-empty",
	})
	a.Switch(announce, converting, lpta.SwitchSpec{
		Send: m.allEmpty, HasSend: true,
		Label: "announce-death",
	})
	a.Switch(converting, done, lpta.SwitchSpec{
		ClockGuards: []lpta.ClockGuard{{Clock: cCost, Op: lpta.GE, Bound: chargeLeftBound}},
		Label:       "converted",
	})
}
