package takibam

import (
	"errors"
	"fmt"

	"batsched/internal/lpta"
	"batsched/internal/mc"
)

// Goal returns the reachability goal "the maximum finder reached done",
// i.e. all batteries are empty and the remaining charge has been converted
// to cost. The paper checks the property A[] not max.done and uses Cora's
// counterexample as the optimal schedule.
func (m *Model) Goal() mc.Goal {
	mf := int(m.mfAuto)
	done := uint16(m.mfDone)
	return func(s *lpta.State) bool { return s.Locs[mf] == done }
}

// Engine builds an exploration engine over the network. EventSemantics is
// exact for the TA-KiBaM (every enabled switch is forced by an invariant, a
// committed location or the urgent emptied channel) and is the default;
// StepSemantics is available for cross-validation.
func (m *Model) Engine(sem lpta.Semantics) (*lpta.Engine, error) {
	return lpta.NewEngine(m.Net, lpta.EngineOptions{
		Semantics: sem,
		// Recovery switches of different batteries touch disjoint
		// variables; their interleavings commute.
		DeterministicInternals: true,
	})
}

// Assignment is one scheduling action of a witness trace: battery Battery
// was switched on at time Step.
type Assignment struct {
	// Step is the time in discretization steps.
	Step int
	// Minutes is the same instant in minutes.
	Minutes float64
	// Battery is the chosen battery index.
	Battery int
}

// Solution is the outcome of the optimal-schedule search.
type Solution struct {
	// LifetimeMinutes is the maximal system lifetime: the instant the last
	// battery is observed empty.
	LifetimeMinutes float64
	// DeathStep is the same instant in steps.
	DeathStep int
	// Cost is the minimal cost, equal to the charge units left in the
	// batteries at death.
	Cost int64
	// Schedule lists every go_on assignment along the optimal path.
	Schedule []Assignment
	// BranchStates and TouchedStates report search effort.
	BranchStates  int
	TouchedStates int
}

// Solve errors.
var (
	ErrNoSchedule = errors.New("takibam: no schedule empties all batteries (extend the load horizon)")
	ErrNoEmptied  = errors.New("takibam: witness trace contains no emptied event")
)

// Solve runs minimum-cost reachability on the network and extracts the
// optimal schedule from the witness trace.
func (m *Model) Solve(opts mc.Options) (*Solution, error) {
	engine, err := m.Engine(lpta.EventSemantics)
	if err != nil {
		return nil, err
	}
	init := m.Net.InitialState()
	res, err := mc.MinCostReach(engine, init, m.Goal(), opts)
	if err != nil {
		return nil, err
	}
	if !res.Found {
		return nil, fmt.Errorf("%w (explored %d branch states)", ErrNoSchedule, res.BranchStates)
	}
	trace, err := res.Replay(init)
	if err != nil {
		return nil, err
	}
	sol := &Solution{
		Cost:          res.Cost,
		BranchStates:  res.BranchStates,
		TouchedStates: res.TouchedStates,
	}
	if err := m.decodeTrace(trace, sol); err != nil {
		return nil, err
	}
	return sol, nil
}

// decodeTrace extracts lifetime and schedule from a witness trace.
func (m *Model) decodeTrace(trace []mc.TraceStep, sol *Solution) error {
	tcByAuto := make(map[lpta.AutoID]int, m.B)
	for b, a := range m.tcAuto {
		tcByAuto[a] = b
	}
	death := -1
	for _, step := range trace {
		switch step.Trans.Kind {
		case lpta.BinaryTrans:
			switch step.Trans.Channel {
			case m.goOn:
				receiver := step.Trans.Parts[1].Auto
				battery, ok := tcByAuto[receiver]
				if !ok {
					return fmt.Errorf("takibam: go_on received by non-battery automaton %d", receiver)
				}
				sol.Schedule = append(sol.Schedule, Assignment{
					Step:    int(step.Time),
					Minutes: float64(step.Time) * m.cl.StepMin,
					Battery: battery,
				})
			case m.emptied:
				death = int(step.Time)
			}
		}
	}
	if death < 0 {
		return ErrNoEmptied
	}
	sol.DeathStep = death
	sol.LifetimeMinutes = float64(death) * m.cl.StepMin
	return nil
}
