package kibam

import (
	"math"
	"testing"
	"testing/quick"

	"batsched/internal/battery"
	"batsched/internal/load"
)

// tolerances for float comparisons.
const (
	tightTol = 1e-9
	looseTol = 1e-6
)

func closeTo(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func b1() battery.Params { return battery.B1() }

func TestFullState(t *testing.T) {
	s := Full(b1())
	if s.Gamma != 5.5 || s.Delta != 0 {
		t.Fatalf("Full = %+v, want gamma 5.5, delta 0", s)
	}
	y1, y2 := s.Wells(b1())
	if !closeTo(y1, 0.166*5.5, tightTol) || !closeTo(y2, 0.834*5.5, tightTol) {
		t.Fatalf("wells = %v, %v; want c*C, (1-c)*C", y1, y2)
	}
}

func TestWellsRoundTrip(t *testing.T) {
	p := b1()
	check := func(y1Raw, y2Raw float64) bool {
		y1 := math.Abs(math.Mod(y1Raw, 5))
		y2 := math.Abs(math.Mod(y2Raw, 5))
		s := FromWells(p, y1, y2)
		g1, g2 := s.Wells(p)
		return closeTo(g1, y1, looseTol) && closeTo(g2, y2, looseTol)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyConditionMatchesAvailable(t *testing.T) {
	p := b1()
	check := func(gRaw, dRaw float64) bool {
		s := State{Gamma: math.Abs(math.Mod(gRaw, 6)), Delta: math.Abs(math.Mod(dRaw, 6))}
		return s.Empty(p) == (s.Available(p) <= tightTol*p.C) ||
			// boundary wobble: both computed from the same expression, so
			// only exact zero could disagree
			math.Abs(s.Available(p)) < looseTol
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestStepConstantSemigroup checks the closed form is exact: stepping dt1
// then dt2 equals stepping dt1+dt2 (the defining property of the exact
// solution that no fixed-step integrator has).
func TestStepConstantSemigroup(t *testing.T) {
	m := MustNew(b1())
	check := func(dt1Raw, dt2Raw, iRaw float64) bool {
		dt1 := math.Abs(math.Mod(dt1Raw, 3))
		dt2 := math.Abs(math.Mod(dt2Raw, 3))
		i := math.Abs(math.Mod(iRaw, 0.7))
		s := Full(m.Params())
		a := m.StepConstant(m.StepConstant(s, i, dt1), i, dt2)
		b := m.StepConstant(s, i, dt1+dt2)
		return closeTo(a.Gamma, b.Gamma, looseTol) && closeTo(a.Delta, b.Delta, looseTol)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestChargeConservation: gamma decreases exactly by the charge drawn.
func TestChargeConservation(t *testing.T) {
	m := MustNew(b1())
	check := func(dtRaw, iRaw float64) bool {
		dt := math.Abs(math.Mod(dtRaw, 5))
		i := math.Abs(math.Mod(iRaw, 0.7))
		s := m.StepConstant(Full(m.Params()), i, dt)
		return closeTo(s.Gamma, 5.5-i*dt, looseTol)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaNonNegative: the height difference never goes negative when
// discharging from rest.
func TestDeltaNonNegative(t *testing.T) {
	m := MustNew(b1())
	check := func(dtRaw, iRaw float64) bool {
		dt := math.Abs(math.Mod(dtRaw, 10))
		i := math.Abs(math.Mod(iRaw, 0.7))
		s := m.StepConstant(Full(m.Params()), i, dt)
		return s.Delta >= -tightTol
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaEquilibrium: under constant current delta converges to
// i/(c k') from below.
func TestDeltaEquilibrium(t *testing.T) {
	m := MustNew(b1())
	p := m.Params()
	const i = 0.25
	equilibrium := i / (p.C * p.KPrime)
	s := m.StepConstant(Full(p), i, 200)
	if !closeTo(s.Delta, equilibrium, 1e-6) {
		t.Fatalf("delta after 200 min = %v, want equilibrium %v", s.Delta, equilibrium)
	}
}

// TestRecoveryDecay: at zero current delta decays exponentially with rate
// k'.
func TestRecoveryDecay(t *testing.T) {
	m := MustNew(b1())
	start := State{Gamma: 4, Delta: 2}
	s := m.StepConstant(start, 0, 3)
	want := 2 * math.Exp(-m.Params().KPrime*3)
	if !closeTo(s.Delta, want, tightTol) {
		t.Fatalf("delta = %v, want %v", s.Delta, want)
	}
	if s.Gamma != 4 {
		t.Fatalf("gamma changed during idle: %v", s.Gamma)
	}
}

func TestStepConstantPanicsOnNegativeDt(t *testing.T) {
	m := MustNew(b1())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative dt")
		}
	}()
	m.StepConstant(Full(b1()), 0.1, -1)
}

func TestEmptyTime(t *testing.T) {
	m := MustNew(b1())
	// Continuous 250 mA kills B1 at 4.53 min (Table 3).
	dt, crossed := m.EmptyTime(Full(b1()), 0.25, 10)
	if !crossed {
		t.Fatal("no crossing within 10 min at 250 mA")
	}
	if math.Abs(dt-4.53) > 0.005 {
		t.Fatalf("crossing at %v, want 4.53", dt)
	}
	// No crossing while idle.
	if _, crossed := m.EmptyTime(State{Gamma: 1, Delta: 0.5}, 0, 100); crossed {
		t.Fatal("crossing during idle")
	}
	// Already empty crosses at 0.
	dt, crossed = m.EmptyTime(State{Gamma: 1, Delta: 2}, 0.1, 1)
	if !crossed || dt != 0 {
		t.Fatalf("already-empty: dt=%v crossed=%v", dt, crossed)
	}
	// No crossing when maxDt too small.
	if _, crossed := m.EmptyTime(Full(b1()), 0.25, 1); crossed {
		t.Fatal("crossing inside 1 min at 250 mA")
	}
}

// TestLifetimeMonotoneInCurrent: a heavier continuous load never extends
// the lifetime (rate-capacity effect).
func TestLifetimeMonotoneInCurrent(t *testing.T) {
	m := MustNew(b1())
	prev := math.Inf(1)
	for _, i := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7} {
		l := load.MustNew("cl", load.Segment{Duration: 400, Current: i})
		lt, err := m.Lifetime(l)
		if err != nil {
			t.Fatalf("i=%v: %v", i, err)
		}
		if lt >= prev {
			t.Fatalf("lifetime grew with current: %v at %v (prev %v)", lt, i, prev)
		}
		prev = lt
	}
}

// TestLifetimeMonotoneInCapacity: more capacity never shortens lifetime.
func TestLifetimeMonotoneInCapacity(t *testing.T) {
	l := load.MustNew("cl", load.Segment{Duration: 400, Current: 0.25})
	prev := 0.0
	for _, f := range []float64{0.5, 1, 2, 4, 8} {
		m := MustNew(b1().Scale(f))
		lt, err := m.Lifetime(l)
		if err != nil {
			t.Fatalf("f=%v: %v", f, err)
		}
		if lt <= prev {
			t.Fatalf("lifetime shrank with capacity: %v at %v (prev %v)", lt, f, prev)
		}
		prev = lt
	}
}

// TestRecoveryExtendsLifetime: inserting idle periods yields strictly more
// total service time (the recovery effect).
func TestRecoveryExtendsLifetime(t *testing.T) {
	m := MustNew(b1())
	cont, err := m.Lifetime(load.Continuous("cl", 0.5, 100))
	if err != nil {
		t.Fatal(err)
	}
	interm, err := m.Lifetime(load.Intermittent("il", 0.5, 1, 100))
	if err != nil {
		t.Fatal(err)
	}
	// Service time of the intermittent load is roughly half its horizon.
	if interm/2 <= cont {
		t.Fatalf("no recovery benefit: continuous %v vs intermittent %v (service ~%v)", cont, interm, interm/2)
	}
}

// TestPaperTable3And4Analytic pins all twenty single-battery analytic
// lifetimes to the paper's KiBaM columns.
func TestPaperTable3And4Analytic(t *testing.T) {
	want := map[string][2]float64{ // load -> {B1, B2}
		"CL 250":  {4.53, 12.16},
		"CL 500":  {2.02, 4.53},
		"CL alt":  {2.58, 6.45},
		"ILs 250": {10.80, 44.78},
		"ILs 500": {4.30, 10.80},
		"ILs alt": {4.80, 16.93},
		"ILs r1":  {4.72, 22.71},
		"ILs r2":  {4.72, 14.81},
		"ILl 250": {21.86, 84.90},
		"ILl 500": {6.53, 21.86},
	}
	for bi, b := range []battery.Params{battery.B1(), battery.B2()} {
		m := MustNew(b)
		for name, w := range want {
			l, err := load.Paper(name, 200)
			if err != nil {
				t.Fatal(err)
			}
			lt, err := m.Lifetime(l)
			if err != nil {
				t.Fatalf("%s %s: %v", b.Label, name, err)
			}
			if math.Abs(lt-w[bi]) > 0.005 {
				t.Errorf("%s %s: lifetime %.4f, paper %v", b.Label, name, lt, w[bi])
			}
		}
	}
}

func TestLifetimeLoadExhausted(t *testing.T) {
	m := MustNew(b1())
	l := load.MustNew("tiny", load.Segment{Duration: 0.5, Current: 0.1})
	if _, err := m.Lifetime(l); err == nil {
		t.Fatal("no error for a load the battery outlives")
	}
}

func TestTrace(t *testing.T) {
	m := MustNew(b1())
	l, err := load.Paper("ILs 250", 60)
	if err != nil {
		t.Fatal(err)
	}
	points, err := m.Trace(l, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 10 {
		t.Fatalf("only %d trace points", len(points))
	}
	if points[0].Time != 0 || points[0].State.Gamma != 5.5 {
		t.Fatalf("bad initial point %+v", points[0])
	}
	// Monotone time, non-increasing gamma.
	for i := 1; i < len(points); i++ {
		if points[i].Time <= points[i-1].Time-tightTol {
			t.Fatalf("time not increasing at %d", i)
		}
		if points[i].State.Gamma > points[i-1].State.Gamma+tightTol {
			t.Fatalf("gamma increased at %d", i)
		}
	}
	// The final point is the death instant (Table 3: 10.80).
	last := points[len(points)-1]
	if math.Abs(last.Time-10.80) > 0.01 {
		t.Fatalf("trace ends at %v, want 10.80", last.Time)
	}
	if !last.State.Empty(m.Params()) {
		t.Fatal("trace did not end empty")
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	bad := []battery.Params{
		{Capacity: 0, C: 0.2, KPrime: 0.1},
		{Capacity: 1, C: 0, KPrime: 0.1},
		{Capacity: 1, C: 1, KPrime: 0.1},
		{Capacity: 1, C: 0.2, KPrime: 0},
	}
	for _, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("New(%+v) accepted invalid params", p)
		}
	}
}
