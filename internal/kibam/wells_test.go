package kibam

import (
	"math"
	"testing"
)

// TestWellDynamicsMatchTransformed: integrating the original Eq. (1) with
// fine Euler steps agrees with the closed-form transformed dynamics — the
// Section 2.2 coordinate transformation is an equivalence.
func TestWellDynamicsMatchTransformed(t *testing.T) {
	p := b1()
	m := MustNew(p)
	const current, horizon, h = 0.35, 2.0, 1e-5

	w := FullWells(p)
	for step := 0; step < int(horizon/h); step++ {
		w = StepWellsEuler(p, w, current, h)
	}
	exact := m.StepConstant(Full(p), current, horizon)
	got := w.Transform(p)
	if math.Abs(got.Gamma-exact.Gamma) > 1e-4 {
		t.Errorf("gamma via wells %v vs closed form %v", got.Gamma, exact.Gamma)
	}
	if math.Abs(got.Delta-exact.Delta) > 1e-3 {
		t.Errorf("delta via wells %v vs closed form %v", got.Delta, exact.Delta)
	}
}

func TestHeights(t *testing.T) {
	p := b1()
	w := FullWells(p)
	h1, h2 := w.Heights(p)
	// A full battery has equal well heights (delta = 0).
	if math.Abs(h1-h2) > 1e-9 {
		t.Fatalf("full battery heights differ: %v vs %v", h1, h2)
	}
	if math.Abs(h1-p.Capacity) > 1e-9 {
		t.Fatalf("full height %v, want C=%v", h1, p.Capacity)
	}
}

func TestUntransform(t *testing.T) {
	p := b1()
	s := State{Gamma: 3.5, Delta: 1.2}
	w := Untransform(p, s)
	back := w.Transform(p)
	if math.Abs(back.Gamma-s.Gamma) > 1e-9 || math.Abs(back.Delta-s.Delta) > 1e-9 {
		t.Fatalf("round trip %+v -> %+v", s, back)
	}
}

func TestWellConservation(t *testing.T) {
	// The inter-well flow conserves total charge when no current is drawn.
	p := b1()
	w := WellState{Y1: 0.2, Y2: 3.0}
	total := w.Y1 + w.Y2
	for i := 0; i < 1000; i++ {
		w = StepWellsEuler(p, w, 0, 1e-3)
	}
	if math.Abs(w.Y1+w.Y2-total) > 1e-9 {
		t.Fatalf("charge not conserved: %v -> %v", total, w.Y1+w.Y2)
	}
	if w.Y1 <= 0.2 {
		t.Fatal("no recovery flow into the available well")
	}
}

func TestStepWellsEulerPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	StepWellsEuler(b1(), FullWells(b1()), 0.1, -1)
}
