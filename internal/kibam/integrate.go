package kibam

import (
	"fmt"

	"batsched/internal/load"
)

// CurrentFunc is an arbitrary discharge-current profile i(t), t in minutes.
type CurrentFunc func(t float64) float64

// Method selects a numeric integration scheme.
type Method int

const (
	// Euler is the explicit (forward) Euler scheme, first order.
	Euler Method = iota + 1
	// RK4 is the classic fourth-order Runge-Kutta scheme.
	RK4
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Euler:
		return "euler"
	case RK4:
		return "rk4"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// deriv evaluates the KiBaM right-hand side at state s under current i.
func (m *Model) deriv(s State, i float64) State {
	return State{
		Gamma: -i,
		Delta: i/m.p.C - m.p.KPrime*s.Delta,
	}
}

// Integrate advances the state from t0 to t1 under the current profile
// using the given method with fixed step h. The final partial step is
// shortened to land exactly on t1.
func (m *Model) Integrate(s State, i CurrentFunc, t0, t1, h float64, method Method) (State, error) {
	if h <= 0 {
		return State{}, fmt.Errorf("kibam: integration step must be positive (got %v)", h)
	}
	if t1 < t0 {
		return State{}, fmt.Errorf("kibam: integration interval reversed (%v > %v)", t0, t1)
	}
	for t := t0; t < t1-1e-15; {
		step := h
		if t+step > t1 {
			step = t1 - t
		}
		var err error
		s, err = m.stepNumeric(s, i, t, step, method)
		if err != nil {
			return State{}, err
		}
		t += step
	}
	return s, nil
}

func (m *Model) stepNumeric(s State, i CurrentFunc, t, h float64, method Method) (State, error) {
	switch method {
	case Euler:
		d := m.deriv(s, i(t))
		return State{Gamma: s.Gamma + h*d.Gamma, Delta: s.Delta + h*d.Delta}, nil
	case RK4:
		k1 := m.deriv(s, i(t))
		k2 := m.deriv(State{Gamma: s.Gamma + h/2*k1.Gamma, Delta: s.Delta + h/2*k1.Delta}, i(t+h/2))
		k3 := m.deriv(State{Gamma: s.Gamma + h/2*k2.Gamma, Delta: s.Delta + h/2*k2.Delta}, i(t+h/2))
		k4 := m.deriv(State{Gamma: s.Gamma + h*k3.Gamma, Delta: s.Delta + h*k3.Delta}, i(t+h))
		return State{
			Gamma: s.Gamma + h/6*(k1.Gamma+2*k2.Gamma+2*k3.Gamma+k4.Gamma),
			Delta: s.Delta + h/6*(k1.Delta+2*k2.Delta+2*k3.Delta+k4.Delta),
		}, nil
	default:
		return State{}, fmt.Errorf("kibam: unknown integration method %v", method)
	}
}

// LifetimeNumeric computes the battery lifetime under the load with a fixed
// step-size numeric integrator instead of the closed form. The crossing is
// located to within one step h, then refined by bisection on the final step.
// It returns ErrLoadExhausted if the battery outlives the load.
//
// Sampling the current at sub-step times would smear epoch boundaries, so
// the integrator is restarted at each segment boundary; within a segment the
// current is constant.
func (m *Model) LifetimeNumeric(l load.Load, h float64, method Method) (float64, error) {
	if h <= 0 {
		return 0, fmt.Errorf("kibam: integration step must be positive (got %v)", h)
	}
	s := Full(m.p)
	elapsed := 0.0
	for idx := 0; idx < l.Len(); idx++ {
		seg := l.Segment(idx)
		cur := func(float64) float64 { return seg.Current }
		for t := 0.0; t < seg.Duration-1e-15; {
			step := h
			if t+step > seg.Duration {
				step = seg.Duration - t
			}
			next, err := m.stepNumeric(s, cur, t, step, method)
			if err != nil {
				return 0, err
			}
			if next.slack(m.p) <= 0 {
				return elapsed + t + m.bisectNumeric(s, seg.Current, step, method), nil
			}
			s = next
			t += step
		}
		elapsed += seg.Duration
	}
	return 0, fmt.Errorf("%w after %.2f min (numeric %v)", ErrLoadExhausted, elapsed, method)
}

// bisectNumeric refines the crossing within a single integration step.
func (m *Model) bisectNumeric(s State, current, h float64, method Method) float64 {
	cur := func(float64) float64 { return current }
	lo, hi := 0.0, h
	for i := 0; i < 60 && hi-lo > 1e-12; i++ {
		mid := (lo + hi) / 2
		st, err := m.stepNumeric(s, cur, 0, mid, method)
		if err != nil || st.slack(m.p) <= 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
