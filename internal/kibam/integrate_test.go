package kibam

import (
	"math"
	"testing"

	"batsched/internal/load"
)

// TestIntegratorsConvergeToClosedForm: both schemes approach the exact
// solution as h shrinks, RK4 much faster.
func TestIntegratorsConvergeToClosedForm(t *testing.T) {
	m := MustNew(b1())
	const current, horizon = 0.4, 3.0
	exact := m.StepConstant(Full(b1()), current, horizon)
	cur := func(float64) float64 { return current }

	prevErr := map[Method]float64{Euler: math.Inf(1), RK4: math.Inf(1)}
	for _, h := range []float64{0.1, 0.01, 0.001} {
		for _, method := range []Method{Euler, RK4} {
			got, err := m.Integrate(Full(b1()), cur, 0, horizon, h, method)
			if err != nil {
				t.Fatalf("%v h=%v: %v", method, h, err)
			}
			e := math.Abs(got.Delta-exact.Delta) + math.Abs(got.Gamma-exact.Gamma)
			// Below ~1e-11 the error is float64 roundoff, not truncation,
			// and need not shrink further.
			if e >= prevErr[method] && e > 1e-11 {
				t.Errorf("%v error did not shrink at h=%v: %v >= %v", method, h, e, prevErr[method])
			}
			prevErr[method] = e
		}
	}
	if prevErr[RK4] > 1e-10 {
		t.Errorf("RK4 at h=0.001 error %v, want < 1e-10", prevErr[RK4])
	}
	if prevErr[Euler] > 1e-3 {
		t.Errorf("Euler at h=0.001 error %v, want < 1e-3", prevErr[Euler])
	}
	if prevErr[RK4] >= prevErr[Euler] {
		t.Errorf("RK4 (%v) not better than Euler (%v)", prevErr[RK4], prevErr[Euler])
	}
}

// TestLifetimeNumericMatchesAnalytic on a mixed paper load.
func TestLifetimeNumericMatchesAnalytic(t *testing.T) {
	m := MustNew(b1())
	l, err := load.Paper("ILs alt", 60)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := m.Lifetime(l)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		method Method
		h      float64
		tol    float64
	}{
		{Euler, 1e-3, 5e-3},
		{Euler, 1e-4, 5e-4},
		{RK4, 1e-3, 1e-4},
		{RK4, 1e-2, 1e-3},
	} {
		got, err := m.LifetimeNumeric(l, tc.h, tc.method)
		if err != nil {
			t.Fatalf("%v h=%v: %v", tc.method, tc.h, err)
		}
		if math.Abs(got-exact) > tc.tol {
			t.Errorf("%v h=%v: lifetime %v vs exact %v (tol %v)", tc.method, tc.h, got, exact, tc.tol)
		}
	}
}

// TestIntegrateTimeVaryingCurrent: a ramp load has no closed form; check
// RK4 against a fine-step Euler reference.
func TestIntegrateTimeVaryingCurrent(t *testing.T) {
	m := MustNew(b1())
	ramp := func(t float64) float64 { return 0.1 + 0.05*t }
	ref, err := m.Integrate(Full(b1()), ramp, 0, 2, 1e-6, Euler)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Integrate(Full(b1()), ramp, 0, 2, 1e-3, RK4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Delta-ref.Delta) > 1e-6 || math.Abs(got.Gamma-ref.Gamma) > 1e-6 {
		t.Fatalf("RK4 %+v vs fine Euler %+v", got, ref)
	}
}

func TestIntegrateErrors(t *testing.T) {
	m := MustNew(b1())
	cur := func(float64) float64 { return 0.1 }
	if _, err := m.Integrate(Full(b1()), cur, 0, 1, 0, Euler); err == nil {
		t.Error("accepted zero step")
	}
	if _, err := m.Integrate(Full(b1()), cur, 1, 0, 0.1, Euler); err == nil {
		t.Error("accepted reversed interval")
	}
	if _, err := m.Integrate(Full(b1()), cur, 0, 1, 0.1, Method(99)); err == nil {
		t.Error("accepted unknown method")
	}
	if _, err := m.LifetimeNumeric(load.MustNew("l", load.Segment{Duration: 1, Current: 0.1}), -1, Euler); err == nil {
		t.Error("accepted negative step")
	}
}

func TestMethodString(t *testing.T) {
	if Euler.String() != "euler" || RK4.String() != "rk4" {
		t.Fatalf("method names: %v, %v", Euler, RK4)
	}
	if Method(99).String() == "" {
		t.Fatal("unknown method has empty name")
	}
}
