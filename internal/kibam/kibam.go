// Package kibam implements the continuous Kinetic Battery Model (KiBaM) of
// Manwell and McGowan in the transformed coordinates of Section 2.2 of the
// DSN 2009 battery-scheduling paper.
//
// The battery state is (gamma, delta): gamma is the total remaining charge
// and delta the height difference between the bound- and available-charge
// wells. Under a constant discharge current i the state evolves as
//
//	d delta / dt = i/c - k' delta
//	d gamma / dt = -i
//
// with initial conditions delta(0) = 0, gamma(0) = C. The battery is empty
// when gamma = (1-c) delta, i.e. when the available charge
// y1 = c (gamma - (1-c) delta) reaches zero.
//
// For piecewise-constant loads the model has a closed-form solution per
// segment, which this package uses as the exact reference. Explicit Euler
// and classic Runge-Kutta integrators are provided for arbitrary current
// functions and for the integration-accuracy ablation.
package kibam

import (
	"errors"
	"fmt"
	"math"

	"batsched/internal/battery"
	"batsched/internal/load"
)

// State is the transformed KiBaM state.
type State struct {
	// Gamma is the total remaining charge in A·min (y1 + y2).
	Gamma float64
	// Delta is the height difference h2 - h1 between the wells.
	Delta float64
}

// Full returns the state of a freshly charged battery: gamma = C, delta = 0.
func Full(p battery.Params) State {
	return State{Gamma: p.Capacity, Delta: 0}
}

// FromWells converts well contents (y1 available, y2 bound) to the
// transformed coordinates.
func FromWells(p battery.Params, y1, y2 float64) State {
	return State{
		Gamma: y1 + y2,
		Delta: y2/(1-p.C) - y1/p.C,
	}
}

// Wells converts the transformed state back to well contents.
// y1 = c (gamma - (1-c) delta); y2 = gamma - y1.
func (s State) Wells(p battery.Params) (y1, y2 float64) {
	y1 = p.C * (s.Gamma - (1-p.C)*s.Delta)
	return y1, s.Gamma - y1
}

// Available returns the available charge y1.
func (s State) Available(p battery.Params) float64 {
	y1, _ := s.Wells(p)
	return y1
}

// Bound returns the bound charge y2.
func (s State) Bound(p battery.Params) float64 {
	_, y2 := s.Wells(p)
	return y2
}

// Empty reports whether the battery is empty: gamma <= (1-c) delta.
func (s State) Empty(p battery.Params) bool {
	return s.Gamma <= (1-p.C)*s.Delta
}

// slack returns the empty-condition margin gamma - (1-c) delta = y1/c. The
// battery is empty exactly when the slack is <= 0.
func (s State) slack(p battery.Params) float64 {
	return s.Gamma - (1-p.C)*s.Delta
}

// Model evaluates the KiBaM for one battery.
type Model struct {
	p battery.Params
	// ScanStep is the sub-step, in minutes, used to bracket the empty
	// crossing inside a constant-current segment before bisecting. The
	// crossing margin is not always monotone within a segment, so the
	// bracket scan guards against skipping an early crossing.
	ScanStep float64
}

// DefaultScanStep brackets crossings to within 0.2 ms-of-a-minute; paper
// lifetimes are reported at 0.01 min resolution.
const DefaultScanStep = 2e-4

// New validates the parameters and returns a model.
func New(p battery.Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{p: p, ScanStep: DefaultScanStep}, nil
}

// MustNew is New but panics on invalid parameters.
func MustNew(p battery.Params) *Model {
	m, err := New(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns the battery parameters of the model.
func (m *Model) Params() battery.Params { return m.p }

// StepConstant advances the state by dt minutes under a constant current
// using the closed-form solution:
//
//	gamma(t+dt) = gamma(t) - i dt
//	delta(t+dt) = delta(t) e^(-k' dt) + i/(c k') (1 - e^(-k' dt))
//
// A zero current models an idle (recovery) period. Negative dt panics.
func (m *Model) StepConstant(s State, current, dt float64) State {
	if dt < 0 {
		panic(fmt.Sprintf("kibam: negative dt %v", dt))
	}
	if dt == 0 {
		return s
	}
	decay := math.Exp(-m.p.KPrime * dt)
	equilibrium := current / (m.p.C * m.p.KPrime)
	return State{
		Gamma: s.Gamma - current*dt,
		Delta: s.Delta*decay + equilibrium*(1-decay),
	}
}

// EmptyTime returns the first time within (0, maxDt] at which the battery
// becomes empty while discharging at the given constant current from state
// s. The second return value reports whether a crossing occurs. A battery
// that is already empty at s crosses at time 0.
func (m *Model) EmptyTime(s State, current, maxDt float64) (float64, bool) {
	if maxDt <= 0 {
		return 0, false
	}
	if s.slack(m.p) <= 0 {
		return 0, true
	}
	if current <= 0 {
		// Idle: delta decays towards zero, gamma constant, so the margin
		// gamma - (1-c) delta can only grow. No crossing.
		return 0, false
	}
	h := m.ScanStep
	if h <= 0 {
		h = DefaultScanStep
	}
	// Bracket the first sign change of the margin, then bisect.
	prevT := 0.0
	for t := h; ; t += h {
		if t > maxDt {
			t = maxDt
		}
		if m.StepConstant(s, current, t).slack(m.p) <= 0 {
			return m.bisectCrossing(s, current, prevT, t), true
		}
		if t >= maxDt {
			return 0, false
		}
		prevT = t
	}
}

// bisectCrossing refines a bracketed empty crossing to ~1e-12 min.
func (m *Model) bisectCrossing(s State, current, lo, hi float64) float64 {
	for i := 0; i < 100 && hi-lo > 1e-12; i++ {
		mid := (lo + hi) / 2
		if m.StepConstant(s, current, mid).slack(m.p) <= 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// ErrLoadExhausted reports that the battery outlived the load: the load
// ended before the battery became empty. Generate a longer horizon.
var ErrLoadExhausted = errors.New("kibam: battery outlived the load horizon")

// Lifetime returns the battery lifetime, in minutes, under the given load:
// the first instant at which the available charge reaches zero. It returns
// ErrLoadExhausted if the battery still holds available charge at the end of
// the load.
func (m *Model) Lifetime(l load.Load) (float64, error) {
	return m.LifetimeFrom(Full(m.p), l)
}

// LifetimeFrom is Lifetime starting from an arbitrary state.
func (m *Model) LifetimeFrom(s State, l load.Load) (float64, error) {
	elapsed := 0.0
	for i := 0; i < l.Len(); i++ {
		seg := l.Segment(i)
		if dt, crossed := m.EmptyTime(s, seg.Current, seg.Duration); crossed {
			return elapsed + dt, nil
		}
		s = m.StepConstant(s, seg.Current, seg.Duration)
		elapsed += seg.Duration
	}
	return 0, fmt.Errorf("%w after %.2f min (gamma=%.4f, delta=%.4f)", ErrLoadExhausted, elapsed, s.Gamma, s.Delta)
}

// TracePoint is one sample of the battery evolution.
type TracePoint struct {
	// Time in minutes since the start of the load.
	Time float64
	// State at that time.
	State State
	// Current drawn at that time.
	Current float64
}

// Trace samples the battery evolution under the load every dt minutes until
// the battery is empty or the load ends, including the initial and final
// points. It is used to generate the Figure 6 charge curves.
func (m *Model) Trace(l load.Load, dt float64) ([]TracePoint, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("kibam: trace step must be positive (got %v)", dt)
	}
	s := Full(m.p)
	points := []TracePoint{{Time: 0, State: s, Current: l.Current(0)}}
	t := 0.0
	for i := 0; i < l.Len(); i++ {
		seg := l.Segment(i)
		crossDt, crossed := m.EmptyTime(s, seg.Current, seg.Duration)
		limit := seg.Duration
		if crossed {
			limit = crossDt
		}
		// Sample within the segment on the global dt grid.
		next := math.Floor(t/dt+1) * dt
		for ; next < t+limit-1e-12; next += dt {
			st := m.StepConstant(s, seg.Current, next-t)
			points = append(points, TracePoint{Time: next, State: st, Current: seg.Current})
		}
		s = m.StepConstant(s, seg.Current, limit)
		t += limit
		points = append(points, TracePoint{Time: t, State: s, Current: seg.Current})
		if crossed {
			return points, nil
		}
	}
	return points, nil
}
