package kibam

import (
	"fmt"

	"batsched/internal/battery"
)

// WellState is the KiBaM state in the original (untransformed) coordinates
// of Eq. (1): y1 is the available charge, y2 the bound charge. It exists to
// validate the Section 2.2 coordinate transformation and for callers who
// prefer to think in wells.
type WellState struct {
	Y1 float64
	Y2 float64
}

// FullWells returns the wells of a freshly charged battery: y1 = cC,
// y2 = (1-c)C.
func FullWells(p battery.Params) WellState {
	return WellState{Y1: p.C * p.Capacity, Y2: (1 - p.C) * p.Capacity}
}

// Transform maps wells into the transformed coordinates.
func (w WellState) Transform(p battery.Params) State {
	return FromWells(p, w.Y1, w.Y2)
}

// Heights returns the well heights h1 = y1/c and h2 = y2/(1-c).
func (w WellState) Heights(p battery.Params) (h1, h2 float64) {
	return w.Y1 / p.C, w.Y2 / (1 - p.C)
}

// Untransform maps a transformed state back to wells.
func Untransform(p battery.Params, s State) WellState {
	y1, y2 := s.Wells(p)
	return WellState{Y1: y1, Y2: y2}
}

// StepWellsEuler advances the original two-well ODE system (1) by one Euler
// step of size h under current i:
//
//	dy1/dt = -i + k (h2 - h1)
//	dy2/dt = -k (h2 - h1)
//
// where k = k' c (1-c). It exists as an independent check that the
// transformed dynamics used everywhere else agree with Eq. (1).
func StepWellsEuler(p battery.Params, w WellState, current, h float64) WellState {
	if h < 0 {
		panic(fmt.Sprintf("kibam: negative step %v", h))
	}
	h1, h2 := w.Heights(p)
	flow := p.K() * (h2 - h1)
	return WellState{
		Y1: w.Y1 + h*(-current+flow),
		Y2: w.Y2 + h*(-flow),
	}
}
