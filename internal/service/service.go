// Package service is the long-lived evaluation layer between the
// serializable scenario spec (internal/spec) and the sweep engine
// (internal/sweep). A Service answers Evaluate (one scenario cell) and
// Sweep (a whole grid) requests, bounds how many requests execute
// concurrently, and caches Compiled artifacts keyed by the resolved
// (bank, load, grid) content so that repeated and overlapping requests —
// the service is meant to sit behind cmd/batserve and many concurrent
// clients — share one discretization instead of recompiling per request.
package service

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"batsched/internal/battery"
	"batsched/internal/core"
	"batsched/internal/load"
	"batsched/internal/obs"
	"batsched/internal/sched"
	"batsched/internal/spec"
	"batsched/internal/store"
	"batsched/internal/sweep"
)

// Options tune a Service.
type Options struct {
	// MaxConcurrent bounds how many requests execute at once; further
	// requests block (or fail when their context is cancelled). <= 0 means
	// runtime.NumCPU().
	MaxConcurrent int
	// CacheEntries bounds the compiled-artifact cache; <= 0 means 256.
	// Eviction is FIFO: scenario grids revisit the same cells, so recency
	// tracking buys little over insertion order here.
	CacheEntries int
	// Store, when set, is the cell-granular result store: every sweep
	// probes it per cell before evaluating and commits each computed cell
	// after, so overlapping sweeps evaluate only the cells no earlier sweep
	// has produced. Concurrent sweeps additionally coordinate in-flight
	// cells (see the flight map), so a shared cell is evaluated at most
	// once even when two sweeps miss it simultaneously. Any store.Backend
	// works: the plain single-node store or a store.Tiered that consults
	// cluster peers on miss.
	Store store.Backend
	// Cluster, when set, is the multi-node ownership hook (implemented by
	// internal/cluster.Cluster): cells owned by another node are forwarded
	// to their owner instead of evaluated here, with transparent local
	// fallback when the owner is unreachable. Requires Store — clustering
	// shards the cell store; without one there is nothing to route. Nil
	// (or a disarmed cluster) keeps the single-node behavior exactly.
	Cluster CellEvaluator
	// CellLatency, when set, observes the wall-clock seconds of every cell
	// the sweep engine actually evaluates (compile included). Nil is a
	// no-op.
	CellLatency *obs.Histogram
}

// CellEvaluator is the cluster-side contract the service forwards through.
// It is defined here (not in internal/cluster) so the service stays free of
// the cluster package; internal/cluster.Cluster satisfies it.
//
// OwnsCell reports whether this node must evaluate the cell itself; a
// disarmed (single-node) implementation returns true for every digest.
// EvaluateCell asks the owning node to evaluate one cell — body is the
// JSON-encoded single-cell SweepRequest — and returns the owner's stored
// NDJSON line. Any error means "fall back to local evaluation".
type CellEvaluator interface {
	OwnsCell(digest string) bool
	EvaluateCell(ctx context.Context, digest string, body []byte) (json.RawMessage, error)
}

// DefaultCacheEntries is the compiled-cache bound when Options.CacheEntries
// is unset.
const DefaultCacheEntries = 256

// Service evaluates scenarios with bounded concurrency and a shared
// compiled-artifact cache. It is safe for concurrent use.
type Service struct {
	sem     chan struct{}
	maxSize int
	st      store.Backend  // nil = no cell-granular result caching
	cluster CellEvaluator  // nil = single-node, every cell self-owned
	cellLat *obs.Histogram // per-cell evaluation latency, nil = not observed

	mu    sync.Mutex
	cache map[string]*cacheEntry
	order []string

	// flights tracks cells being evaluated right now, keyed by cell digest.
	// A sweep that misses the store claims the cell's flight before
	// evaluating; a concurrent sweep that misses the same cell parks on the
	// flight instead of evaluating it a second time — the cell-store
	// mirror of the compiled cache's sync.Once-per-entry rule.
	flightMu sync.Mutex
	flights  map[string]*flight

	compiles atomic.Int64
	hits     atomic.Int64

	cellHits       atomic.Int64
	cellsEvaluated atomic.Int64
	storeErrors    atomic.Int64

	// cellsForwarded counts cells evaluated by their owning peer on this
	// sweep's behalf; forwardFallbacks counts owned-elsewhere cells this
	// node evaluated locally because the owner was unreachable.
	cellsForwarded   atomic.Int64
	forwardFallbacks atomic.Int64

	// search accumulates the optimal solvers' SearchStats across every cell
	// this service actually evaluated (cache hits re-serve stored counters
	// without re-counting them).
	searchMu sync.Mutex
	search   sched.SearchStats
}

// cacheEntry builds its artifact at most once; concurrent requests for the
// same cell block on the first builder instead of compiling twice.
type cacheEntry struct {
	once sync.Once
	c    *core.Compiled
	err  error
}

// flight is one in-flight cell evaluation. The claimer either commits the
// cell to the store and resolves with the stored line, or abandons (sweep
// canceled, emit failed) with a nil line — waiters then re-claim and
// evaluate themselves, so an abandoned flight never strands a cell.
type flight struct {
	done chan struct{}
	line json.RawMessage // nil = abandoned
}

// New builds a Service.
func New(opts Options) *Service {
	workers := opts.MaxConcurrent
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	size := opts.CacheEntries
	if size <= 0 {
		size = DefaultCacheEntries
	}
	return &Service{
		sem:     make(chan struct{}, workers),
		maxSize: size,
		st:      opts.Store,
		cluster: opts.Cluster,
		cellLat: opts.CellLatency,
		cache:   make(map[string]*cacheEntry),
		flights: make(map[string]*flight),
	}
}

// Store returns the service's cell-granular result store (nil when none was
// configured).
func (s *Service) Store() store.Backend { return s.st }

// Stats reports cache effectiveness.
type Stats struct {
	// Compiles counts cells actually compiled; Hits counts requests served
	// from the cache; Entries is the current cache size.
	Compiles int64
	Hits     int64
	Entries  int
	// CellHits counts sweep cells served from the result store (bulk probe
	// plus waited-out in-flight evaluations); CellsEvaluated counts cells
	// actually executed. Together they are the incremental-sweep ledger: a
	// 90%-overlapping resubmission moves CellHits by 180 and
	// CellsEvaluated by 20.
	CellHits       int64
	CellsEvaluated int64
	// StoreErrors counts failed cell commits (file-backend trouble); a
	// commit failure only costs future dedup, never the sweep itself.
	StoreErrors int64
	// CellsForwarded counts cells evaluated by their owning cluster peer on
	// this node's behalf (they do not appear in CellsEvaluated — the owner
	// counts them); ForwardFallbacks counts owned-elsewhere cells this node
	// evaluated itself because the owner was unreachable.
	CellsForwarded   int64
	ForwardFallbacks int64
	// Search is the cumulative optimal-search effort (states, prunes, LP
	// bound evaluations, steals, shared-memo traffic) over every cell this
	// service evaluated itself — cells served from the cache or the result
	// store do not re-count the work that produced them.
	Search sched.SearchStats
}

// Stats returns a snapshot of the cache counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	entries := len(s.cache)
	s.mu.Unlock()
	s.searchMu.Lock()
	search := s.search
	s.searchMu.Unlock()
	return Stats{
		Compiles:         s.compiles.Load(),
		Hits:             s.hits.Load(),
		Entries:          entries,
		CellHits:         s.cellHits.Load(),
		CellsEvaluated:   s.cellsEvaluated.Load(),
		StoreErrors:      s.storeErrors.Load(),
		CellsForwarded:   s.cellsForwarded.Load(),
		ForwardFallbacks: s.forwardFallbacks.Load(),
		Search:           search,
	}
}

// Result is one evaluated scenario cell in wire form.
type Result struct {
	Grid        string  `json:"grid"`
	Bank        string  `json:"bank"`
	Load        string  `json:"load"`
	Solver      string  `json:"solver"`
	LifetimeMin float64 `json:"lifetime_min"`
	Decisions   int     `json:"decisions"`
	// Stats reports the optimal search's work counters (states expanded,
	// memo hits, pruned branches); omitted for solvers without a search.
	// This is how perf improvements — and regressions — of the exact search
	// stay observable from /v1/run and /v1/sweep.
	Stats *sched.SearchStats `json:"stats,omitempty"`
	// Error is the per-cell failure; one bad cell does not abort a sweep.
	Error string `json:"error,omitempty"`
}

// SweepRequest asks for a whole scenario grid.
type SweepRequest struct {
	Scenario spec.Scenario `json:"scenario"`
	// Workers bounds the sweep's worker pool (0 = number of CPUs).
	Workers int `json:"workers,omitempty"`
}

// RunRequest asks for a single scenario cell.
type RunRequest = spec.Run

// InvalidRequestError wraps spec-level validation failures (unknown solver,
// malformed bank, ...) so transports can map them to client-error statuses
// without knowing every spec sentinel.
type InvalidRequestError struct{ Err error }

func (e *InvalidRequestError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying spec error for errors.Is checks.
func (e *InvalidRequestError) Unwrap() error { return e.Err }

// Evaluate runs one scenario cell. Spec-level problems (unknown solver,
// invalid bank, ...) come back as an error; a solver failure on a valid
// cell is reported in Result.Error.
func (s *Service) Evaluate(ctx context.Context, req RunRequest) (Result, error) {
	results, err := s.Sweep(ctx, SweepRequest{Scenario: req.Scenario(), Workers: 1})
	if err != nil {
		return Result{}, err
	}
	if len(results) != 1 {
		return Result{}, fmt.Errorf("service: run expanded to %d cells, want 1", len(results))
	}
	return results[0], nil
}

// Sweep evaluates every cell of the scenario grid and returns the results
// in deterministic nested order (grid, bank, load, solver).
func (s *Service) Sweep(ctx context.Context, req SweepRequest) ([]Result, error) {
	var out []Result
	err := s.SweepStream(ctx, req, func(r Result) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SweepLine is one emitted sweep cell in wire-line form.
type SweepLine struct {
	// Line is the cell's encoded NDJSON line without the trailing newline —
	// byte-identical to what json.Marshal produces for the Result. It is
	// only valid until the emit callback returns; retain via copy.
	Line []byte
	// Cached marks a line served from the cell store instead of evaluated.
	Cached bool
	// Stats points at the optimal-search work counters of an evaluated
	// cell; nil for cached lines and for solvers without a search.
	Stats *sched.SearchStats
}

// SweepStream evaluates the scenario grid and emits each result as soon as
// it and all its predecessors in the deterministic order are done, so
// consumers stream a stable order without waiting for the whole grid. An
// emit error stops further emission and is returned.
func (s *Service) SweepStream(ctx context.Context, req SweepRequest, emit func(Result) error) error {
	return s.sweepCore(ctx, req, nil, emit)
}

// SweepStreamLines is SweepStream in line form: each cell arrives as its
// encoded NDJSON line (appending '\n' to every line reproduces the
// synchronous sweep endpoint's body byte for byte) plus whether it was
// served from the cell store. This is the zero-copy path the HTTP handler
// and the job layer consume — no per-line marshalling on their side, and
// cached cells pass the stored bytes straight through.
func (s *Service) SweepStreamLines(ctx context.Context, req SweepRequest, emit func(SweepLine) error) error {
	return s.sweepCore(ctx, req, emit, nil)
}

// sweepCore is the one sweep implementation behind SweepStream and
// SweepStreamLines; exactly one of emitLine/emitRes is set.
func (s *Service) sweepCore(ctx context.Context, req SweepRequest, emitLine func(SweepLine) error, emitRes func(Result) error) error {
	sp, err := req.Scenario.Compile()
	if err != nil {
		return &InvalidRequestError{Err: err}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// The sweep span covers semaphore wait through last emit. Cache outcome
	// and search effort are attached when it ends; localEval/localStats are
	// written only under the sweep's serialized OnResult and read after
	// sweep.Run returns.
	ctx, span := obs.StartSpan(ctx, "service.sweep")
	var localEval, localHits int64
	var localStats sched.SearchStats
	defer func() {
		if span == nil {
			return
		}
		span.SetInt("evaluated", localEval).SetInt("store_hits", localHits)
		if localStats.States > 0 {
			span.SetInt("search_states", localStats.States).
				SetInt("search_pruned", localStats.Pruned)
		}
		span.End()
	}()
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		return ctx.Err()
	}

	// cancel aborts the sweep's remaining cells when the caller goes away
	// (ctx) or stops consuming (emit error) — abandoned requests must not
	// keep burning CPU while holding a semaphore slot.
	cancel := make(chan struct{})
	var cancelOnce sync.Once
	stop := func() { cancelOnce.Do(func() { close(cancel) }) }
	finished := make(chan struct{})
	defer close(finished)
	go func() {
		select {
		case <-ctx.Done():
			stop()
		case <-finished:
		}
	}()

	n := sp.Scenarios()
	span.SetInt("cells", int64(n))
	// Cell-store integration: one bulk probe up front (one lock, one
	// hit/miss ledger update for the whole grid), then per-cell claims for
	// the misses so concurrent sweeps never evaluate a shared cell twice.
	var (
		digests   []string
		cellLines []json.RawMessage
		claims    []*flight
	)
	if s.st != nil {
		var derr error
		digests, _, derr = cellDigestsCompiled(sp, req.Scenario.Solvers)
		if derr != nil {
			return derr
		}
		_, lookupSpan := obs.StartSpan(ctx, "store.lookup")
		var hits int
		cellLines, hits = s.st.LookupCells(digests)
		lookupSpan.SetInt("cells", int64(n)).SetInt("hits", int64(hits))
		lookupSpan.End()
		s.cellHits.Add(int64(hits))
		localHits = int64(hits)
		claims = make([]*flight, n)
		// Whatever happens below — emit error, cancellation, panic-free
		// early return — every claim this sweep took must be resolved, or
		// a concurrent sweep would park on it forever.
		defer func() {
			for i, f := range claims {
				if f != nil {
					s.resolveFlight(digests[i], f, nil)
				}
			}
		}()
	}

	// The ordered-emit buffer is pre-sized from the grid dimensions: out-of-
	// order completions park here until their predecessors are done. Slots
	// hold the compact sweep results; encoding happens once, at emit time,
	// into a single reused buffer.
	type slot struct {
		r     sweep.Result
		ready bool
	}
	slots := make([]slot, n)
	next := 0
	var emitErr error
	var encBuf bytes.Buffer
	enc := json.NewEncoder(&encBuf)

	// emitOne delivers the cell at index i (already ready) in the caller's
	// chosen form.
	emitOne := func(i int) error {
		r := &slots[i].r
		if r.Cached {
			line := cellLines[i]
			if emitLine != nil {
				return emitLine(SweepLine{Line: line, Cached: true})
			}
			var res Result
			if err := json.Unmarshal(line, &res); err != nil {
				return fmt.Errorf("service: stored cell %d corrupt: %w", i, err)
			}
			return emitRes(res)
		}
		res := fromSweep(*r)
		if emitRes != nil {
			return emitRes(res)
		}
		// A committed cell was already marshalled once on the commit path;
		// reuse the store-owned bytes instead of encoding twice.
		if cellLines != nil && cellLines[i] != nil {
			return emitLine(SweepLine{Line: cellLines[i], Stats: res.Stats})
		}
		encBuf.Reset()
		if err := enc.Encode(res); err != nil {
			return err
		}
		line := encBuf.Bytes()
		line = line[:len(line)-1] // Encode appends '\n'
		return emitLine(SweepLine{Line: line, Stats: res.Stats})
	}

	opts := sweep.Options{
		Workers:     req.Workers,
		Compile:     s.cachedCompile,
		Cancel:      cancel,
		CellLatency: s.cellLat,
		Span:        span,
		OnResult: func(i int, r sweep.Result) {
			// Commit and flight resolution come first and run even after an
			// emit error: a concurrent sweep may be parked on this cell, and
			// the computed result is worth storing regardless of whether our
			// own consumer is still listening.
			if claims != nil && !r.Cached && claims[i] != nil {
				commitSpan := span.Child("store.commit")
				s.commitCell(i, digests, cellLines, claims, r)
				commitSpan.Set("cell", shortDigest(digests[i])).End()
			}
			if !r.Cached && !errors.Is(r.Err, sweep.ErrCanceled) {
				s.cellsEvaluated.Add(1)
				localEval++
				if r.Stats != nil {
					s.searchMu.Lock()
					s.search.Add(*r.Stats)
					s.searchMu.Unlock()
					localStats.Add(*r.Stats)
				}
			}
			if emitErr != nil {
				return
			}
			slots[i] = slot{r: r, ready: true}
			for next < n && slots[next].ready {
				if err := emitOne(next); err != nil {
					emitErr = err
					stop()
					return
				}
				slots[next] = slot{} // free the buffered result early
				next++
			}
		},
	}
	if s.st != nil {
		// Cluster ownership rule: cells owned by another node are forwarded
		// to their owner instead of evaluated here — unless this sweep IS a
		// forwarded evaluation (LocalOnly), which must never re-forward, so
		// ring-view skew between nodes degrades to duplicate work, never to
		// a forwarding chain.
		var fwdBody func(i int) ([]byte, error)
		if s.cluster != nil && ctx.Value(localOnlyKey{}) == nil {
			fwdBody = singleCellBody(req)
		}
		opts.Lookup = func(i int) (sweep.Result, bool) {
			return s.lookupCell(ctx, i, digests, cellLines, claims, fwdBody, cancel, span)
		}
	}
	if _, err := sweep.Run(sp, opts); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return emitErr
}

// localOnlyKey marks a context whose sweeps must evaluate everything
// themselves; see LocalOnly.
type localOnlyKey struct{}

// LocalOnly returns a context that disables cluster forwarding for sweeps
// run under it. The peer evaluate endpoint wraps its requests with it so a
// node that receives a forwarded cell always computes it locally — even if
// its own ring view says a third node owns the cell — making forwarding
// chains structurally impossible.
func LocalOnly(ctx context.Context) context.Context {
	return context.WithValue(ctx, localOnlyKey{}, true)
}

// singleCellBody builds the JSON-encoded single-cell SweepRequest for sweep
// index i — the body a cluster forward carries to the owning node. The index
// decomposition mirrors sweep.Run's worker loop, and the cell digest of the
// rebuilt request equals digests[i] because every digest input (names
// included — defaults are content-derived, never position-derived) travels
// with the cell's own spec entries.
func singleCellBody(req SweepRequest) func(i int) ([]byte, error) {
	sc := req.Scenario
	policies, banks, loads := len(sc.Solvers), len(sc.Banks), len(sc.Loads)
	return func(i int) ([]byte, error) {
		p := i % policies
		c := i / policies
		g := c / (banks * loads)
		b := c / loads % banks
		l := c % loads
		one := spec.Scenario{
			Banks:   []spec.Bank{sc.Banks[b]},
			Loads:   []spec.Load{sc.Loads[l]},
			Solvers: []spec.Solver{sc.Solvers[p]},
		}
		if len(sc.Grids) > 0 {
			one.Grids = []spec.Grid{sc.Grids[g]}
		}
		return json.Marshal(SweepRequest{Scenario: one})
	}
}

// lookupCell is the sweep Lookup hook: serve index i from the bulk probe, or
// wait out another sweep's in-flight evaluation, or claim the cell for this
// sweep. A claimed cell owned by another cluster node is forwarded to its
// owner (the claim dedups concurrent forwards exactly like it dedups
// concurrent evaluations); on any forward failure the claim stays ours and
// the cell is evaluated locally (ok=false → the caller evaluates it).
func (s *Service) lookupCell(ctx context.Context, i int, digests []string, cellLines []json.RawMessage, claims []*flight, fwdBody func(int) ([]byte, error), cancel <-chan struct{}, span *obs.Span) (sweep.Result, bool) {
	if cellLines[i] != nil {
		return sweep.Result{}, true
	}
	d := digests[i]
	for {
		// Re-probe without counters: the bulk probe already recorded this
		// cell's miss; a hit here means another sweep committed it since
		// (counted as a waited hit below only when we actually parked).
		if line, ok := s.st.PeekCell(d); ok {
			cellLines[i] = line
			return sweep.Result{}, true
		}
		s.flightMu.Lock()
		f, inFlight := s.flights[d]
		if !inFlight {
			f = &flight{done: make(chan struct{})}
			s.flights[d] = f
			s.flightMu.Unlock()
			claims[i] = f
			if fwdBody != nil && !s.cluster.OwnsCell(d) {
				if line, ok := s.forwardCell(ctx, i, d, fwdBody, span); ok {
					cellLines[i] = line
					claims[i] = nil
					s.resolveFlight(d, f, line)
					return sweep.Result{}, true
				}
			}
			return sweep.Result{}, false
		}
		s.flightMu.Unlock()
		// Parked on another sweep's in-flight evaluation: the wait is a span
		// of its own — it is exactly the time the flight table saved or cost
		// this request.
		waitSpan := span.Child("service.flight_wait")
		waitSpan.Set("cell", shortDigest(d))
		select {
		case <-f.done:
			if f.line != nil {
				waitSpan.Set("outcome", "served").End()
				cellLines[i] = f.line
				s.cellHits.Add(1)
				return sweep.Result{}, true
			}
			// Abandoned (the claiming sweep was canceled): try again — the
			// next round either claims or parks on a newer flight.
			waitSpan.Set("outcome", "abandoned").End()
		case <-cancel:
			// Our own sweep is being canceled; report a miss and let the
			// runner mark the scenario canceled.
			waitSpan.Set("outcome", "canceled").End()
			return sweep.Result{}, false
		}
	}
}

// forwardCell asks the owning cluster peer to evaluate cell i and returns
// its stored NDJSON line. False means the caller must evaluate locally —
// the owner was unreachable, timed out, or answered garbage; the fallback
// is counted but never fails the sweep.
func (s *Service) forwardCell(ctx context.Context, i int, d string, fwdBody func(int) ([]byte, error), span *obs.Span) (json.RawMessage, bool) {
	fwdSpan := span.Child("service.forward")
	fwdSpan.Set("cell", shortDigest(d))
	body, err := fwdBody(i)
	var line json.RawMessage
	if err == nil {
		line, err = s.cluster.EvaluateCell(ctx, d, body)
	}
	if err != nil || len(line) == 0 {
		s.forwardFallbacks.Add(1)
		if err != nil {
			fwdSpan.Set("error", err.Error())
		}
		fwdSpan.Set("outcome", "fallback").End()
		return nil, false
	}
	s.cellsForwarded.Add(1)
	fwdSpan.Set("outcome", "forwarded").End()
	return line, true
}

// shortDigest abbreviates a cell digest for span attributes.
func shortDigest(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}

// commitCell stores the computed cell i in the result store and resolves
// its flight with the stored line. Canceled scenarios are never committed —
// their lines are not deterministic outputs of the cell — and abandon the
// flight instead so a parked sweep takes over.
func (s *Service) commitCell(i int, digests []string, cellLines []json.RawMessage, claims []*flight, r sweep.Result) {
	f := claims[i]
	claims[i] = nil
	d := digests[i]
	if errors.Is(r.Err, sweep.ErrCanceled) {
		s.resolveFlight(d, f, nil)
		return
	}
	line, err := json.Marshal(fromSweep(r))
	if err == nil {
		err = s.st.PutCell(d, line)
	}
	if err != nil {
		s.storeErrors.Add(1)
		s.resolveFlight(d, f, nil)
		return
	}
	// Hand waiters — and our own emit path, which has not run yet for this
	// index — the store-owned copy so every consumer shares one stable
	// allocation.
	stored, _ := s.st.PeekCell(d)
	if stored == nil {
		stored = line
	}
	cellLines[i] = stored
	s.resolveFlight(d, f, stored)
}

// resolveFlight publishes a flight outcome (nil line = abandoned) and
// removes it from the in-flight table.
func (s *Service) resolveFlight(digest string, f *flight, line json.RawMessage) {
	f.line = line
	s.flightMu.Lock()
	delete(s.flights, digest)
	s.flightMu.Unlock()
	close(f.done)
}

// fromSweep converts an engine result to wire form.
func fromSweep(r sweep.Result) Result {
	out := Result{
		Grid:        r.Grid,
		Bank:        r.Bank,
		Load:        r.Load,
		Solver:      r.Policy,
		LifetimeMin: r.Lifetime,
		Decisions:   r.Decisions,
		Stats:       r.Stats,
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	return out
}

// cachedCompile is the sweep Compile hook: one Compiled artifact per
// distinct (bank, load, grid) content, shared across requests.
func (s *Service) cachedCompile(bank sweep.Bank, lc sweep.LoadCase, grid sweep.GridSpec) (*core.Compiled, error) {
	key := cellKey(bank.Batteries, lc.Load, grid)

	s.mu.Lock()
	e, ok := s.cache[key]
	if !ok {
		e = &cacheEntry{}
		s.cache[key] = e
		s.order = append(s.order, key)
		for len(s.order) > s.maxSize {
			evict := s.order[0]
			s.order = s.order[1:]
			delete(s.cache, evict)
		}
	}
	s.mu.Unlock()

	if ok {
		s.hits.Add(1)
	}
	e.once.Do(func() {
		s.compiles.Add(1)
		e.c, e.err = core.Compile(bank.Batteries, lc.Load, grid.StepMin, grid.UnitAmpMin)
	})
	return e.c, e.err
}

// CompileBank returns the shared streaming-bank artifact (an empty-load
// core.Compiled; see core.CompileBank) for a resolved bank on a grid. It
// uses the same bounded artifact cache as scenario cells, so every session
// on the same bank content shares one discretization and one system pool.
// The key is prefixed so a bank artifact can never collide with a scenario
// cell's full artifact.
func (s *Service) CompileBank(bats []battery.Params, grid sweep.GridSpec) (*core.Compiled, error) {
	key := "bank\x00" + cellKey(bats, load.Load{}, grid)

	s.mu.Lock()
	e, ok := s.cache[key]
	if !ok {
		e = &cacheEntry{}
		s.cache[key] = e
		s.order = append(s.order, key)
		for len(s.order) > s.maxSize {
			evict := s.order[0]
			s.order = s.order[1:]
			delete(s.cache, evict)
		}
	}
	s.mu.Unlock()

	if ok {
		s.hits.Add(1)
	}
	e.once.Do(func() {
		s.compiles.Add(1)
		e.c, e.err = core.CompileBank(bats, grid.StepMin, grid.UnitAmpMin)
	})
	return e.c, e.err
}

// cellKey digests the resolved compile inputs — battery parameters, load
// epochs, grid sizes — so that two spec spellings of the same cell (say, a
// preset and its explicit parameters) share one artifact. Names are
// deliberately excluded: they label results, not physics. The preimage is
// binary (IEEE float bits) into a pooled buffer: the key is computed once
// per cell per sweep, and the fmt-based hashing this replaces was a
// measurable slice of the sweep submit path.
func cellKey(bats []battery.Params, ld load.Load, grid sweep.GridSpec) string {
	p := preimagePool.Get().(*preimage)
	defer preimagePool.Put(p)
	p.buf = p.buf[:0]
	p.tag('g')
	p.f64(grid.StepMin)
	p.f64(grid.UnitAmpMin)
	p.tag('b')
	for _, b := range bats {
		p.f64(b.Capacity)
		p.f64(b.C)
		p.f64(b.KPrime)
	}
	p.tag('l')
	for i := 0; i < ld.Len(); i++ {
		s := ld.Segment(i)
		p.f64(s.Duration)
		p.f64(s.Current)
	}
	d := p.sum()
	return hex.EncodeToString(d[:])
}
