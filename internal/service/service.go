// Package service is the long-lived evaluation layer between the
// serializable scenario spec (internal/spec) and the sweep engine
// (internal/sweep). A Service answers Evaluate (one scenario cell) and
// Sweep (a whole grid) requests, bounds how many requests execute
// concurrently, and caches Compiled artifacts keyed by the resolved
// (bank, load, grid) content so that repeated and overlapping requests —
// the service is meant to sit behind cmd/batserve and many concurrent
// clients — share one discretization instead of recompiling per request.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"batsched/internal/battery"
	"batsched/internal/core"
	"batsched/internal/load"
	"batsched/internal/sched"
	"batsched/internal/spec"
	"batsched/internal/sweep"
)

// Options tune a Service.
type Options struct {
	// MaxConcurrent bounds how many requests execute at once; further
	// requests block (or fail when their context is cancelled). <= 0 means
	// runtime.NumCPU().
	MaxConcurrent int
	// CacheEntries bounds the compiled-artifact cache; <= 0 means 256.
	// Eviction is FIFO: scenario grids revisit the same cells, so recency
	// tracking buys little over insertion order here.
	CacheEntries int
}

// DefaultCacheEntries is the compiled-cache bound when Options.CacheEntries
// is unset.
const DefaultCacheEntries = 256

// Service evaluates scenarios with bounded concurrency and a shared
// compiled-artifact cache. It is safe for concurrent use.
type Service struct {
	sem     chan struct{}
	maxSize int

	mu    sync.Mutex
	cache map[string]*cacheEntry
	order []string

	compiles atomic.Int64
	hits     atomic.Int64
}

// cacheEntry builds its artifact at most once; concurrent requests for the
// same cell block on the first builder instead of compiling twice.
type cacheEntry struct {
	once sync.Once
	c    *core.Compiled
	err  error
}

// New builds a Service.
func New(opts Options) *Service {
	workers := opts.MaxConcurrent
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	size := opts.CacheEntries
	if size <= 0 {
		size = DefaultCacheEntries
	}
	return &Service{
		sem:     make(chan struct{}, workers),
		maxSize: size,
		cache:   make(map[string]*cacheEntry),
	}
}

// Stats reports cache effectiveness.
type Stats struct {
	// Compiles counts cells actually compiled; Hits counts requests served
	// from the cache; Entries is the current cache size.
	Compiles int64
	Hits     int64
	Entries  int
}

// Stats returns a snapshot of the cache counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	entries := len(s.cache)
	s.mu.Unlock()
	return Stats{Compiles: s.compiles.Load(), Hits: s.hits.Load(), Entries: entries}
}

// Result is one evaluated scenario cell in wire form.
type Result struct {
	Grid        string  `json:"grid"`
	Bank        string  `json:"bank"`
	Load        string  `json:"load"`
	Solver      string  `json:"solver"`
	LifetimeMin float64 `json:"lifetime_min"`
	Decisions   int     `json:"decisions"`
	// Stats reports the optimal search's work counters (states expanded,
	// memo hits, pruned branches); omitted for solvers without a search.
	// This is how perf improvements — and regressions — of the exact search
	// stay observable from /v1/run and /v1/sweep.
	Stats *sched.SearchStats `json:"stats,omitempty"`
	// Error is the per-cell failure; one bad cell does not abort a sweep.
	Error string `json:"error,omitempty"`
}

// SweepRequest asks for a whole scenario grid.
type SweepRequest struct {
	Scenario spec.Scenario `json:"scenario"`
	// Workers bounds the sweep's worker pool (0 = number of CPUs).
	Workers int `json:"workers,omitempty"`
}

// RunRequest asks for a single scenario cell.
type RunRequest = spec.Run

// InvalidRequestError wraps spec-level validation failures (unknown solver,
// malformed bank, ...) so transports can map them to client-error statuses
// without knowing every spec sentinel.
type InvalidRequestError struct{ Err error }

func (e *InvalidRequestError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying spec error for errors.Is checks.
func (e *InvalidRequestError) Unwrap() error { return e.Err }

// Evaluate runs one scenario cell. Spec-level problems (unknown solver,
// invalid bank, ...) come back as an error; a solver failure on a valid
// cell is reported in Result.Error.
func (s *Service) Evaluate(ctx context.Context, req RunRequest) (Result, error) {
	results, err := s.Sweep(ctx, SweepRequest{Scenario: req.Scenario(), Workers: 1})
	if err != nil {
		return Result{}, err
	}
	if len(results) != 1 {
		return Result{}, fmt.Errorf("service: run expanded to %d cells, want 1", len(results))
	}
	return results[0], nil
}

// Sweep evaluates every cell of the scenario grid and returns the results
// in deterministic nested order (grid, bank, load, solver).
func (s *Service) Sweep(ctx context.Context, req SweepRequest) ([]Result, error) {
	var out []Result
	err := s.SweepStream(ctx, req, func(r Result) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SweepStream evaluates the scenario grid and emits each result as soon as
// it and all its predecessors in the deterministic order are done, so
// consumers (the NDJSON endpoint) stream a stable order without waiting for
// the whole grid. An emit error stops further emission and is returned.
func (s *Service) SweepStream(ctx context.Context, req SweepRequest, emit func(Result) error) error {
	sp, err := req.Scenario.Compile()
	if err != nil {
		return &InvalidRequestError{Err: err}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		return ctx.Err()
	}

	// cancel aborts the sweep's remaining cells when the caller goes away
	// (ctx) or stops consuming (emit error) — abandoned requests must not
	// keep burning CPU while holding a semaphore slot.
	cancel := make(chan struct{})
	var cancelOnce sync.Once
	stop := func() { cancelOnce.Do(func() { close(cancel) }) }
	finished := make(chan struct{})
	defer close(finished)
	go func() {
		select {
		case <-ctx.Done():
			stop()
		case <-finished:
		}
	}()

	pending := make(map[int]Result)
	next := 0
	var emitErr error
	opts := sweep.Options{
		Workers: req.Workers,
		Compile: s.cachedCompile,
		Cancel:  cancel,
		OnResult: func(i int, r sweep.Result) {
			if emitErr != nil {
				return
			}
			pending[i] = fromSweep(r)
			for {
				res, ok := pending[next]
				if !ok {
					return
				}
				delete(pending, next)
				if err := emit(res); err != nil {
					emitErr = err
					stop()
					return
				}
				next++
			}
		},
	}
	if _, err := sweep.Run(sp, opts); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return emitErr
}

// fromSweep converts an engine result to wire form.
func fromSweep(r sweep.Result) Result {
	out := Result{
		Grid:        r.Grid,
		Bank:        r.Bank,
		Load:        r.Load,
		Solver:      r.Policy,
		LifetimeMin: r.Lifetime,
		Decisions:   r.Decisions,
		Stats:       r.Stats,
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	return out
}

// cachedCompile is the sweep Compile hook: one Compiled artifact per
// distinct (bank, load, grid) content, shared across requests.
func (s *Service) cachedCompile(bank sweep.Bank, lc sweep.LoadCase, grid sweep.GridSpec) (*core.Compiled, error) {
	key := cellKey(bank.Batteries, lc.Load, grid)

	s.mu.Lock()
	e, ok := s.cache[key]
	if !ok {
		e = &cacheEntry{}
		s.cache[key] = e
		s.order = append(s.order, key)
		for len(s.order) > s.maxSize {
			evict := s.order[0]
			s.order = s.order[1:]
			delete(s.cache, evict)
		}
	}
	s.mu.Unlock()

	if ok {
		s.hits.Add(1)
	}
	e.once.Do(func() {
		s.compiles.Add(1)
		e.c, e.err = core.Compile(bank.Batteries, lc.Load, grid.StepMin, grid.UnitAmpMin)
	})
	return e.c, e.err
}

// cellKey digests the resolved compile inputs — battery parameters, load
// epochs, grid sizes — so that two spec spellings of the same cell (say, a
// preset and its explicit parameters) share one artifact. Names are
// deliberately excluded: they label results, not physics.
func cellKey(bats []battery.Params, ld load.Load, grid sweep.GridSpec) string {
	h := sha256.New()
	fmt.Fprintf(h, "g:%g:%g;", grid.StepMin, grid.UnitAmpMin)
	for _, b := range bats {
		fmt.Fprintf(h, "b:%g:%g:%g;", b.Capacity, b.C, b.KPrime)
	}
	for i := 0; i < ld.Len(); i++ {
		s := ld.Segment(i)
		fmt.Fprintf(h, "l:%g:%g;", s.Duration, s.Current)
	}
	return hex.EncodeToString(h.Sum(nil))
}
