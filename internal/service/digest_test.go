package service

import (
	"errors"
	"testing"

	"batsched/internal/spec"
)

func sweepReq(solvers ...spec.Solver) SweepRequest {
	return SweepRequest{Scenario: spec.Scenario{
		Banks:   []spec.Bank{{Battery: &spec.Battery{Preset: "B1"}, Count: 2}},
		Loads:   []spec.Load{{Paper: "ILs alt"}},
		Solvers: solvers,
	}}
}

func TestDigestSweepDeterministic(t *testing.T) {
	d1, n1, err := DigestSweep(sweepReq(spec.Solver{Name: "bestof"}))
	if err != nil {
		t.Fatal(err)
	}
	d2, n2, err := DigestSweep(sweepReq(spec.Solver{Name: "bestof"}))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 || n1 != n2 || n1 != 1 {
		t.Fatalf("identical requests digest differently: %s/%d vs %s/%d", d1, n1, d2, n2)
	}
}

func TestDigestSweepWorkersExcluded(t *testing.T) {
	a := sweepReq(spec.Solver{Name: "bestof"})
	b := sweepReq(spec.Solver{Name: "bestof"})
	b.Workers = 7
	da, _, _ := DigestSweep(a)
	db, _, _ := DigestSweep(b)
	if da != db {
		t.Fatal("worker-pool size leaked into the content digest")
	}
}

func TestDigestSweepAliasCollapses(t *testing.T) {
	da, _, err := DigestSweep(sweepReq(spec.Solver{Name: "rr"}))
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := DigestSweep(sweepReq(spec.Solver{Name: "roundrobin"}))
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatal("alias and canonical solver name digest differently")
	}
}

func TestDigestSweepEquivalentBankSpellings(t *testing.T) {
	// A preset and its explicit parameters, forced onto the same display
	// name, are the same request byte-for-byte and must share a digest.
	a := sweepReq(spec.Solver{Name: "bestof"})
	a.Scenario.Banks = []spec.Bank{{Name: "2xB1", Battery: &spec.Battery{Preset: "B1"}, Count: 2}}
	b := sweepReq(spec.Solver{Name: "bestof"})
	b.Scenario.Banks = []spec.Bank{{Name: "2xB1", Batteries: []spec.Battery{
		{Capacity: 5.5, C: 0.166, KPrime: 0.122},
		{Capacity: 5.5, C: 0.166, KPrime: 0.122},
	}}}
	da, _, err := DigestSweep(a)
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := DigestSweep(b)
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatal("equivalent bank spellings with one label digest differently")
	}
}

func TestDigestSweepSeparates(t *testing.T) {
	base, _, _ := DigestSweep(sweepReq(spec.Solver{Name: "bestof"}))
	distinct := map[string]SweepRequest{}

	// Different solver params without a display-name change.
	mcA, err := spec.NamedSolver("montecarlo", spec.MonteCarloParams{Samples: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mcB, err := spec.NamedSolver("montecarlo", spec.MonteCarloParams{Samples: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	distinct["mc seed 1"] = sweepReq(mcA)
	distinct["mc seed 2"] = sweepReq(mcB)

	// Different display name on identical physics.
	renamed := sweepReq(spec.Solver{Name: "bestof"})
	renamed.Scenario.Banks[0].Name = "pair"
	distinct["renamed bank"] = renamed

	// Different grid.
	regridded := sweepReq(spec.Solver{Name: "bestof"})
	regridded.Scenario.Grids = []spec.Grid{{StepMin: 0.02, UnitAmpMin: 0.02}}
	distinct["coarser grid"] = regridded

	seen := map[string]string{base: "base"}
	for name, req := range distinct {
		d, _, err := DigestSweep(req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[d]; dup {
			t.Fatalf("%q collides with %q", name, prev)
		}
		seen[d] = name
	}
}

// TestDigestSweepDelimiterInjection: display names containing the hash's
// own separators must not let two different scenarios collide (names label
// the output bytes, so a collision would serve wrong-labeled results).
func TestDigestSweepDelimiterInjection(t *testing.T) {
	bank := func(name string) spec.Bank {
		return spec.Bank{Name: name, Battery: &spec.Battery{Preset: "B1"}, Count: 2}
	}
	a := sweepReq(spec.Solver{Name: "bestof"})
	a.Scenario.Banks = []spec.Bank{bank("x;B:y"), bank("z")}
	b := sweepReq(spec.Solver{Name: "bestof"})
	b.Scenario.Banks = []spec.Bank{bank("x"), bank("y;B:z")}
	da, _, err := DigestSweep(a)
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := DigestSweep(b)
	if err != nil {
		t.Fatal(err)
	}
	if da == db {
		t.Fatal("delimiter-crafted bank names collide onto one digest")
	}
}

func TestDigestSweepInvalidScenario(t *testing.T) {
	_, _, err := DigestSweep(sweepReq(spec.Solver{Name: "greedy"}))
	if err == nil {
		t.Fatal("unknown solver digested")
	}
	var invalid *InvalidRequestError
	if !errors.As(err, &invalid) {
		t.Fatalf("error %v is not an InvalidRequestError", err)
	}
}

// TestCellDigestsStableAcrossScenarios is the property cell granularity
// rests on: a cell's digest depends only on the cell itself, so the cells
// two overlapping sweeps share key to the same store entries no matter what
// else each sweep carries.
func TestCellDigestsStableAcrossScenarios(t *testing.T) {
	base := SweepRequest{Scenario: spec.Scenario{
		Banks:   []spec.Bank{{Battery: &spec.Battery{Preset: "B1"}, Count: 2}},
		Loads:   []spec.Load{{Paper: "CL alt"}, {Paper: "ILs alt"}},
		Solvers: []spec.Solver{{Name: "sequential"}, {Name: "bestof"}},
	}}
	overlap := SweepRequest{Scenario: spec.Scenario{
		Banks: base.Scenario.Banks,
		Loads: append(append([]spec.Load{}, base.Scenario.Loads...),
			spec.Load{Paper: "ILl 500"}),
		Solvers: base.Scenario.Solvers,
	}}
	cellsA, reqA, err := CellDigests(base)
	if err != nil {
		t.Fatal(err)
	}
	cellsB, reqB, err := CellDigests(overlap)
	if err != nil {
		t.Fatal(err)
	}
	if len(cellsA) != 4 || len(cellsB) != 6 {
		t.Fatalf("cell counts %d/%d, want 4/6", len(cellsA), len(cellsB))
	}
	if reqA == reqB {
		t.Fatal("different requests share a request digest")
	}
	// Cell order is grid, bank, load, solver — the base's 4 cells are the
	// overlap's first 4.
	for i := range cellsA {
		if cellsA[i] != cellsB[i] {
			t.Fatalf("shared cell %d digests differently across scenarios: %s vs %s", i, cellsA[i], cellsB[i])
		}
	}
	seen := map[string]bool{}
	for _, d := range cellsB {
		if seen[d] {
			t.Fatalf("duplicate cell digest %s within one request", d)
		}
		seen[d] = true
	}
	if seen[cellsB[4]] != true || cellsB[4] == cellsA[0] {
		t.Fatal("novel cells must not collide with shared ones")
	}
}

// TestCellDigestsSeparateLabels: cells agreeing on physics but not on a
// display name must not share a digest — the name is part of the line
// bytes the store serves back.
func TestCellDigestsSeparateLabels(t *testing.T) {
	named := func(bankName string) SweepRequest {
		return SweepRequest{Scenario: spec.Scenario{
			Banks:   []spec.Bank{{Name: bankName, Battery: &spec.Battery{Preset: "B1"}, Count: 2}},
			Loads:   []spec.Load{{Paper: "ILs alt"}},
			Solvers: []spec.Solver{{Name: "bestof"}},
		}}
	}
	a, _, err := CellDigests(named("bank-a"))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := CellDigests(named("bank-b"))
	if err != nil {
		t.Fatal(err)
	}
	if a[0] == b[0] {
		t.Fatal("cells with different bank labels share a digest")
	}
}

// TestDigestSweepMatchesCellDigests: the whole-request digest is a pure
// function of the ordered cell list.
func TestDigestSweepMatchesCellDigests(t *testing.T) {
	req := sweepReq(spec.Solver{Name: "bestof"}, spec.Solver{Name: "optimal"})
	cells, fromCells, err := CellDigests(req)
	if err != nil {
		t.Fatal(err)
	}
	digest, cases, err := DigestSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if digest != fromCells || cases != len(cells) {
		t.Fatalf("DigestSweep (%s, %d) disagrees with CellDigests (%s, %d)", digest, cases, fromCells, len(cells))
	}
}
