// Service-layer chaos: the synchronous sweep path must keep serving
// byte-identical results while the store backend fails under it — caching
// degrades, evaluation does not.
package service

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"batsched/internal/faults"
	"batsched/internal/spec"
	"batsched/internal/store"
)

// With every store write failing (retries exhausted, breaker open), a
// sweep still completes with exactly the bytes of a fault-free run; the
// failures surface only in the StoreErrors counter.
func TestSweepSurvivesStoreWriteFaults(t *testing.T) {
	scenario := spec.Scenario{
		Banks:   []spec.Bank{{Battery: &spec.Battery{Preset: "B1"}, Count: 2}},
		Loads:   []spec.Load{{Paper: "CL alt"}, {Paper: "ILs alt"}},
		Solvers: []spec.Solver{{Name: "sequential"}, {Name: "bestof"}},
	}
	collect := func(t *testing.T, svc *Service) []string {
		t.Helper()
		var lines []string
		err := svc.SweepStreamLines(context.Background(), SweepRequest{Scenario: scenario},
			func(sl SweepLine) error {
				lines = append(lines, string(sl.Line))
				return nil
			})
		if err != nil {
			t.Fatalf("sweep failed: %v", err)
		}
		return lines
	}

	// Fault-free reference (memory-only store).
	refStore, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	want := collect(t, New(Options{Store: refStore}))

	inj := faults.New(1, faults.Rule{Op: faults.OpStoreWrite, P: 1})
	st, err := store.OpenWith(store.Options{
		Path:     filepath.Join(t.TempDir(), "s.ndjson"),
		WrapFile: faults.WrapStore(inj),
		Sleep:    func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	svc := New(Options{Store: st})
	got := collect(t, svc)

	if len(got) != len(want) {
		t.Fatalf("%d lines under faults, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d diverged under store faults:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
	if inj.Fired(faults.OpStoreWrite) == 0 {
		t.Fatal("no store fault fired; test proved nothing")
	}
	if svc.Stats().StoreErrors == 0 {
		t.Fatal("store failures left no trace in StoreErrors")
	}
	if !st.Degraded() {
		t.Fatal("persistent write failure did not open the breaker")
	}
	// Nothing was cached, so a second sweep re-evaluates — and still
	// matches byte-for-byte (the flight table must not have been poisoned
	// by the abandoned commits).
	again := collect(t, svc)
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("second sweep line %d diverged: %s", i, again[i])
		}
	}
}
