package service

import (
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"

	"batsched/internal/spec"
	"batsched/internal/store"
)

// fakePeer implements CellEvaluator on top of a second, independent Service
// — an in-process stand-in for the owning cluster node. It owns every cell
// whose digest the owns predicate accepts; EvaluateCell round-trips the
// forwarded body through JSON exactly like the HTTP peer endpoint would.
type fakePeer struct {
	t     *testing.T
	owner *Service
	owns  func(digest string) bool

	calls atomic.Int64
	fail  atomic.Bool
}

func (f *fakePeer) OwnsCell(digest string) bool { return f.owns(digest) }

func (f *fakePeer) EvaluateCell(ctx context.Context, digest string, body []byte) (json.RawMessage, error) {
	f.calls.Add(1)
	if f.fail.Load() {
		return nil, errors.New("fakePeer: injected peer failure")
	}
	var req SweepRequest
	if err := json.Unmarshal(body, &req); err != nil {
		f.t.Errorf("forwarded body does not decode: %v", err)
		return nil, err
	}
	// The owner-side contract: the forwarded single-cell request must
	// reproduce the digest it was addressed by, or routing and storage
	// would disagree about what the cell is.
	cells, _, err := CellDigests(req)
	if err != nil {
		f.t.Errorf("forwarded body does not digest: %v", err)
		return nil, err
	}
	if len(cells) != 1 || cells[0] != digest {
		f.t.Errorf("forwarded body digests to %v, want exactly [%s]", cells, digest)
		return nil, errors.New("digest mismatch")
	}
	var line json.RawMessage
	err = f.owner.SweepStreamLines(LocalOnly(ctx), req, func(l SweepLine) error {
		line = append(json.RawMessage(nil), l.Line...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return line, nil
}

// forwardScenario exercises the full index decomposition: 2 grids x 1 bank
// x 2 loads x 2 solvers = 8 cells.
func forwardScenario() spec.Scenario {
	return spec.Scenario{
		Banks:   []spec.Bank{{Battery: &spec.Battery{Preset: "B1"}, Count: 2}},
		Loads:   []spec.Load{{Paper: "CL alt"}, {Paper: "ILs alt"}},
		Solvers: []spec.Solver{{Name: "sequential"}, {Name: "bestof"}},
		Grids:   []spec.Grid{{}, {StepMin: 2}},
	}
}

func newForwardPair(t *testing.T, owns func(string) bool) (*Service, *fakePeer) {
	t.Helper()
	ownerStore, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ownerStore.Close() })
	localStore, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { localStore.Close() })
	peer := &fakePeer{t: t, owner: New(Options{Store: ownerStore}), owns: owns}
	local := New(Options{Store: localStore, Cluster: peer})
	return local, peer
}

func TestSweepForwardsOwnedElsewhereCells(t *testing.T) {
	sc := forwardScenario()
	digests, _, err := CellDigests(SweepRequest{Scenario: sc})
	if err != nil {
		t.Fatal(err)
	}
	// The peer owns every cell with an even digest index.
	owned := map[string]bool{}
	for i, d := range digests {
		owned[d] = i%2 == 0
	}
	local, peer := newForwardPair(t, func(d string) bool { return !owned[d] })

	lines, cached := sweepLines(t, local, sc)
	if len(lines) != len(digests) {
		t.Fatalf("%d lines, want %d", len(lines), len(digests))
	}
	nForwarded := 0
	for i, c := range cached {
		if owned[digests[i]] != c {
			t.Fatalf("cell %d: cached=%v, want %v (forwarded cells surface as cached)", i, c, owned[digests[i]])
		}
		if c {
			nForwarded++
		}
	}

	st := local.Stats()
	if st.CellsForwarded != int64(nForwarded) {
		t.Fatalf("CellsForwarded = %d, want %d", st.CellsForwarded, nForwarded)
	}
	if st.ForwardFallbacks != 0 {
		t.Fatalf("ForwardFallbacks = %d, want 0", st.ForwardFallbacks)
	}
	// Cluster-wide single evaluation: local evaluated only what it owns,
	// the peer evaluated exactly the forwarded cells, and the sum is the
	// grid size.
	if st.CellsEvaluated != int64(len(digests)-nForwarded) {
		t.Fatalf("local evaluated %d, want %d", st.CellsEvaluated, len(digests)-nForwarded)
	}
	if got := peer.owner.Stats().CellsEvaluated; got != int64(nForwarded) {
		t.Fatalf("peer evaluated %d, want %d", got, nForwarded)
	}

	// Byte-identity with a plain single-node sweep of the same scenario.
	soloLines, _ := sweepLines(t, New(Options{}), sc)
	for i := range lines {
		if lines[i] != soloLines[i] {
			t.Fatalf("line %d differs from single-node run:\ncluster: %s\nsolo:    %s", i, lines[i], soloLines[i])
		}
	}
}

func TestSweepForwardFallsBackLocally(t *testing.T) {
	sc := forwardScenario()
	local, peer := newForwardPair(t, func(string) bool { return false })
	peer.fail.Store(true) // every cell owned elsewhere, owner down

	lines, cached := sweepLines(t, local, sc)
	for i, c := range cached {
		if c {
			t.Fatalf("cell %d cached despite peer failure", i)
		}
	}
	st := local.Stats()
	if st.CellsForwarded != 0 {
		t.Fatalf("CellsForwarded = %d, want 0", st.CellsForwarded)
	}
	if st.ForwardFallbacks != int64(len(lines)) {
		t.Fatalf("ForwardFallbacks = %d, want %d", st.ForwardFallbacks, len(lines))
	}
	if st.CellsEvaluated != int64(len(lines)) {
		t.Fatalf("local evaluated %d, want all %d", st.CellsEvaluated, len(lines))
	}
	soloLines, _ := sweepLines(t, New(Options{}), sc)
	for i := range lines {
		if lines[i] != soloLines[i] {
			t.Fatalf("fallback line %d differs from single-node run", i)
		}
	}
}

func TestLocalOnlyDisablesForwarding(t *testing.T) {
	sc := forwardScenario()
	local, peer := newForwardPair(t, func(string) bool { return false })

	var n int
	err := local.SweepStreamLines(LocalOnly(context.Background()), SweepRequest{Scenario: sc}, func(SweepLine) error {
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no lines emitted")
	}
	if got := peer.calls.Load(); got != 0 {
		t.Fatalf("LocalOnly sweep still forwarded %d cells", got)
	}
	if got := local.Stats().CellsEvaluated; got != int64(n) {
		t.Fatalf("evaluated %d, want %d", got, n)
	}
}

func TestForwardedCellsLandInLocalStoreViaTier(t *testing.T) {
	// With a Tiered store whose remote tier is the peer's local store, a
	// second overlapping sweep on this node hits the remote tier instead of
	// re-forwarding: the evaluate-forward and the fetch path compose.
	sc := forwardScenario()
	digests, _, err := CellDigests(SweepRequest{Scenario: sc})
	if err != nil {
		t.Fatal(err)
	}
	local, peer := newForwardPair(t, func(string) bool { return false })

	if _, err := local.Sweep(context.Background(), SweepRequest{Scenario: sc}); err != nil {
		t.Fatal(err)
	}
	if got := peer.owner.Stats().CellsEvaluated; got != int64(len(digests)) {
		t.Fatalf("peer evaluated %d, want all %d", got, len(digests))
	}
	// Every forwarded cell is in the peer's store, none in the local one.
	lines := make([]json.RawMessage, len(digests))
	if n := func() int { l, h := peer.owner.Store().LookupCells(digests); copy(lines, l); return h }(); n != len(digests) {
		t.Fatalf("peer store holds %d cells, want %d", n, len(digests))
	}
	if _, n := local.Store().LookupCells(digests); n != 0 {
		t.Fatalf("local store holds %d forwarded cells, want 0 (owner stores, requester streams)", n)
	}
}
