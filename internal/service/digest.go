package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"batsched/internal/spec"
	"batsched/internal/sweep"
)

// DigestSweep returns the content digest of a sweep request — the key under
// which the job layer stores and dedups completed results — plus the number
// of scenario cells the request expands to.
//
// The digest covers exactly what determines the result bytes:
//
//   - every resolved display name (grid, bank, load, solver) — names label
//     the NDJSON lines, so requests with different labels must never share
//     an entry even when the physics agree;
//   - the resolved physics of every (grid, bank, load) cell, via the same
//     cellKey the Compiled cache uses — so a preset and its spelled-out
//     parameters share a digest when their labels agree;
//   - each solver's canonical registry identity (aliases collapse) with its
//     compacted parameters — a montecarlo seed or an optimal-ta budget
//     changes the output without changing any display name.
//
// Sweep workers are deliberately excluded: results are emitted in
// deterministic order regardless of pool size.
func DigestSweep(req SweepRequest) (digest string, cases int, err error) {
	sp, err := req.Scenario.Compile()
	if err != nil {
		return "", 0, &InvalidRequestError{Err: err}
	}
	grids := append([]sweep.GridSpec(nil), sp.Grids...)
	if len(grids) == 0 {
		grids = []sweep.GridSpec{sweep.PaperGrid()}
	}
	for i := range grids {
		if grids[i].Name == "" {
			// Mirror sweep.Run's default naming so the digest sees the same
			// labels the results will carry.
			grids[i].Name = fmt.Sprintf("T%g-G%g", grids[i].StepMin, grids[i].UnitAmpMin)
		}
	}

	h := sha256.New()
	// User-controlled strings (display names, solver params) are
	// length-prefixed so no choice of characters inside a name can mimic a
	// field boundary and collide two different scenarios onto one digest.
	field := func(tag byte, ss ...string) {
		h.Write([]byte{tag})
		for _, s := range ss {
			fmt.Fprintf(h, "%d:%s", len(s), s)
		}
	}
	field('V', "sweep-digest-v1")
	for _, g := range grids {
		field('G', g.Name)
	}
	for _, b := range sp.Banks {
		field('B', b.Name)
	}
	for _, l := range sp.Loads {
		field('L', l.Name)
	}
	for i, s := range req.Scenario.Solvers {
		cs, err := spec.CanonicalSolver(s)
		if err != nil {
			return "", 0, &InvalidRequestError{Err: err}
		}
		field('S', cs.Name, string(cs.Params), sp.Policies[i].Name)
	}
	for _, g := range grids {
		for _, b := range sp.Banks {
			for _, l := range sp.Loads {
				field('C', cellKey(b.Batteries, l.Load, g))
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil)), sp.Scenarios(), nil
}
