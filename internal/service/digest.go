package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sync"

	"batsched/internal/spec"
	"batsched/internal/sweep"
)

// The content-addressed unit of the result store is a single scenario cell:
// one (grid, bank, load, solver) combination, i.e. one NDJSON result line.
// A cell digest covers exactly what determines that line's bytes:
//
//   - the resolved display names of the grid, bank, load, and solver — the
//     names label the line, so cells with different labels must never share
//     an entry even when the physics agree;
//   - the resolved physics: grid sizes, battery parameters, load epochs —
//     so a preset and its spelled-out parameters share a digest when their
//     labels agree;
//   - the solver's canonical registry identity (aliases collapse) with its
//     compacted parameters — a montecarlo seed or an optimal-ta budget
//     changes the output without changing any display name.
//
// Sweep workers are deliberately excluded: results are emitted in
// deterministic order regardless of pool size, so the same cell evaluated
// under any worker count produces the same bytes. So is the surrounding
// request: which other cells a sweep happens to carry cannot change this
// cell's line, which is exactly what lets overlapping sweeps share entries.
//
// All fields are hashed in a binary form — length-prefixed strings, IEEE
// float bits — both so that no choice of characters inside a user-supplied
// name can mimic a field boundary and so that digesting a large grid stays
// allocation-lean (the fmt-based hashing this replaces dominated the jobs
// submit path).

// digestVersion tags every cell preimage; bump on incompatible layout
// changes so stale file-backed stores go inert instead of serving
// mislabeled bytes.
const digestVersion = "cell-digest-v1"

// component is the digest of one cell axis (grid, bank, load, or solver).
// Cells combine precomputed components, so an axis is hashed once per sweep
// instead of once per cell — a load with hundreds of epochs appearing in
// 100 cells is hashed one time, not 100.
type component = [sha256.Size]byte

// preimage accumulates binary fields for one hash; buffers are pooled
// because digesting runs on the request hot path.
type preimage struct{ buf []byte }

var preimagePool = sync.Pool{New: func() any { return new(preimage) }}

func (p *preimage) tag(b byte) { p.buf = append(p.buf, b) }

func (p *preimage) str(s string) {
	p.buf = binary.LittleEndian.AppendUint32(p.buf, uint32(len(s)))
	p.buf = append(p.buf, s...)
}

func (p *preimage) f64(v float64) {
	p.buf = binary.LittleEndian.AppendUint64(p.buf, math.Float64bits(v))
}

func (p *preimage) sum() component { return sha256.Sum256(p.buf) }

// CellDigests expands a sweep request and returns the content digest of
// every scenario cell in the sweep's deterministic order (grid, bank, load,
// solver — the same order the results stream in), plus the whole-request
// digest, which is the digest of the ordered cell-digest list. Two requests
// agree on the request digest exactly when they agree on every cell, which
// is what keeps the store's whole-request index byte-identical to a replay.
func CellDigests(req SweepRequest) (cells []string, request string, err error) {
	sp, err := req.Scenario.Compile()
	if err != nil {
		return nil, "", &InvalidRequestError{Err: err}
	}
	return cellDigestsCompiled(sp, req.Scenario.Solvers)
}

// cellDigestsCompiled is CellDigests for an already-compiled scenario; the
// service's sweep path uses it to avoid compiling the spec twice. solvers
// must be the spec solvers that produced sp.Policies (same order).
func cellDigestsCompiled(sp sweep.Spec, solvers []spec.Solver) (cells []string, request string, err error) {
	grids := append([]sweep.GridSpec(nil), sp.Grids...)
	if len(grids) == 0 {
		grids = []sweep.GridSpec{sweep.PaperGrid()}
	}
	for i := range grids {
		if grids[i].Name == "" {
			// Mirror sweep.Run's default naming so the digest sees the same
			// labels the results will carry.
			grids[i].Name = fmt.Sprintf("T%g-G%g", grids[i].StepMin, grids[i].UnitAmpMin)
		}
	}

	p := preimagePool.Get().(*preimage)
	defer preimagePool.Put(p)
	comp := func(fill func()) component {
		p.buf = p.buf[:0]
		p.str(digestVersion)
		fill()
		return p.sum()
	}

	gridComp := make([]component, len(grids))
	for i, g := range grids {
		gridComp[i] = comp(func() {
			p.tag('G')
			p.str(g.Name)
			p.f64(g.StepMin)
			p.f64(g.UnitAmpMin)
		})
	}
	bankComp := make([]component, len(sp.Banks))
	for i, b := range sp.Banks {
		bankComp[i] = comp(func() {
			p.tag('B')
			p.str(b.Name)
			for _, bat := range b.Batteries {
				p.f64(bat.Capacity)
				p.f64(bat.C)
				p.f64(bat.KPrime)
			}
		})
	}
	loadComp := make([]component, len(sp.Loads))
	for i, l := range sp.Loads {
		loadComp[i] = comp(func() {
			p.tag('L')
			p.str(l.Name)
			for j := 0; j < l.Load.Len(); j++ {
				s := l.Load.Segment(j)
				p.f64(s.Duration)
				p.f64(s.Current)
			}
		})
	}
	solverComp := make([]component, len(sp.Policies))
	for i, s := range solvers {
		cs, err := spec.CanonicalSolver(s)
		if err != nil {
			return nil, "", &InvalidRequestError{Err: err}
		}
		solverComp[i] = comp(func() {
			p.tag('S')
			p.str(cs.Name)
			p.str(string(cs.Params))
			p.str(sp.Policies[i].Name)
		})
	}

	// All cell digests are hex-encoded into one flat buffer converted to a
	// single string, then sliced per cell: one allocation for the whole
	// grid instead of one per cell (strings share backing storage).
	n := len(grids) * len(sp.Banks) * len(sp.Loads) * len(sp.Policies)
	const hexLen = 2 * sha256.Size
	hexBuf := make([]byte, 0, n*hexLen)
	req := sha256.New()
	req.Write([]byte("sweep-digest-v2"))
	for g := range grids {
		for b := range sp.Banks {
			for l := range sp.Loads {
				for s := range sp.Policies {
					p.buf = p.buf[:0]
					p.str(digestVersion)
					p.tag('C')
					p.buf = append(p.buf, gridComp[g][:]...)
					p.buf = append(p.buf, bankComp[b][:]...)
					p.buf = append(p.buf, loadComp[l][:]...)
					p.buf = append(p.buf, solverComp[s][:]...)
					d := p.sum()
					req.Write(d[:])
					hexBuf = hex.AppendEncode(hexBuf, d[:])
				}
			}
		}
	}
	all := string(hexBuf)
	cells = make([]string, n)
	for i := range cells {
		cells[i] = all[i*hexLen : (i+1)*hexLen]
	}
	return cells, hex.EncodeToString(req.Sum(nil)), nil
}

// DigestSweep returns the content digest of a sweep request — the key of
// the store's whole-request index — plus the number of scenario cells the
// request expands to. The digest is derived from the per-cell digests; see
// CellDigests for the keying rule.
func DigestSweep(req SweepRequest) (digest string, cases int, err error) {
	cells, request, err := CellDigests(req)
	if err != nil {
		return "", 0, err
	}
	return request, len(cells), nil
}
