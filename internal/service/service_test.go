package service

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"batsched/internal/core"
	"batsched/internal/sched"
	"batsched/internal/spec"
	"batsched/internal/store"
	"batsched/internal/sweep"
)

// testExecutions counts runs of the test-only "test-counting" solver. The
// registry is process-global and Register panics on duplicates, so the
// solver is registered at most once even under go test -count=N.
var (
	testExecutions   atomic.Int64
	registerTestOnce sync.Once
)

func registerCountingSolver() {
	registerTestOnce.Do(func() {
		spec.Register(spec.Builder{
			Name: "test-counting",
			Doc:  "test-only solver counting its executions",
			Build: func(json.RawMessage) (sweep.PolicyCase, error) {
				return sweep.PolicyCase{
					Name: "test-counting",
					Run: func(c *core.Compiled) (float64, int, error) {
						testExecutions.Add(1)
						lt, err := c.PolicyLifetime(sched.BestAvailable())
						return lt, 0, err
					},
				}, nil
			},
		})
	})
	testExecutions.Store(0)
}

func twoB1ILsAlt() spec.Run {
	return spec.Run{
		Bank:   spec.Bank{Battery: &spec.Battery{Preset: "B1"}, Count: 2},
		Load:   spec.Load{Paper: "ILs alt"},
		Solver: spec.Solver{Name: "bestof"},
	}
}

func TestEvaluate(t *testing.T) {
	s := New(Options{})
	res, err := s.Evaluate(context.Background(), twoB1ILsAlt())
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != "" {
		t.Fatal(res.Error)
	}
	if res.Bank != "2xB1" || res.Load != "ILs alt" || res.Solver != "best-of-two" || res.Grid != "paper" {
		t.Fatalf("labels: %+v", res)
	}
	// Paper Table 5: best-of-two on ILs alt lives 16.28 min.
	if res.LifetimeMin < 16.27 || res.LifetimeMin > 16.29 {
		t.Fatalf("lifetime %.2f, want ~16.28", res.LifetimeMin)
	}
	if res.Decisions == 0 {
		t.Fatal("no decisions recorded")
	}
}

func TestEvaluateSpecError(t *testing.T) {
	s := New(Options{})
	req := twoB1ILsAlt()
	req.Solver = spec.Solver{Name: "greedy"}
	if _, err := s.Evaluate(context.Background(), req); err == nil {
		t.Fatal("unknown solver accepted")
	}
}

func TestEvaluateRuntimeErrorInResult(t *testing.T) {
	s := New(Options{})
	req := twoB1ILsAlt()
	sv, err := spec.NamedSolver("optimal-ta", spec.OptimalTAParams{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	req.Solver = sv
	res, err := s.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Error, "budget") {
		t.Fatalf("expected budget-exhausted cell error, got %+v", res)
	}
}

// TestSweepMatchesLibrary asserts the service path produces byte-identical
// lifetimes to a direct library sweep of the same scenario.
func TestSweepMatchesLibrary(t *testing.T) {
	sc := spec.Scenario{
		Banks:   []spec.Bank{{Battery: &spec.Battery{Preset: "B1"}, Count: 2}},
		Loads:   []spec.Load{{Paper: "CL alt"}, {Paper: "ILs alt"}},
		Solvers: []spec.Solver{{Name: "sequential"}, {Name: "bestof"}, {Name: "optimal"}},
	}
	sp, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sweep.Run(sp, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	s := New(Options{})
	results, err := s.Sweep(context.Background(), SweepRequest{Scenario: sc, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(direct) {
		t.Fatalf("%d results, want %d", len(results), len(direct))
	}
	for i, r := range results {
		d := direct[i]
		if r.Bank != d.Bank || r.Load != d.Load || r.Solver != d.Policy {
			t.Fatalf("result %d order drifted: %+v vs %+v", i, r, d)
		}
		if r.LifetimeMin != d.Lifetime {
			t.Errorf("%s/%s/%s: service %v != library %v", r.Bank, r.Load, r.Solver, r.LifetimeMin, d.Lifetime)
		}
	}
}

// TestConcurrentCacheReuse is the issue's acceptance test: many concurrent
// clients asking for the same (bank, load, grid) share a single Compiled
// artifact.
func TestConcurrentCacheReuse(t *testing.T) {
	s := New(Options{MaxConcurrent: 8})
	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.Evaluate(context.Background(), twoB1ILsAlt())
			if err == nil && res.Error != "" {
				err = context.DeadlineExceeded // any sentinel; the text matters below
			}
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compiles != 1 {
		t.Fatalf("compiled %d times for %d identical clients, want 1", st.Compiles, clients)
	}
	if st.Hits != clients-1 {
		t.Fatalf("cache hits %d, want %d", st.Hits, clients-1)
	}
	if st.Entries != 1 {
		t.Fatalf("cache entries %d, want 1", st.Entries)
	}
}

// TestCacheKeySemantics: a preset and its spelled-out parameters are the
// same physics and must share one artifact; a different grid must not.
func TestCacheKeySemantics(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()

	if _, err := s.Evaluate(ctx, twoB1ILsAlt()); err != nil {
		t.Fatal(err)
	}
	explicit := twoB1ILsAlt()
	explicit.Bank = spec.Bank{
		Name: "explicit",
		Batteries: []spec.Battery{
			{Capacity: 5.5, C: 0.166, KPrime: 0.122},
			{Capacity: 5.5, C: 0.166, KPrime: 0.122},
		},
	}
	if _, err := s.Evaluate(ctx, explicit); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Compiles != 1 {
		t.Fatalf("equivalent banks compiled %d times, want 1", st.Compiles)
	}

	coarser := twoB1ILsAlt()
	coarser.Grid = &spec.Grid{StepMin: 0.02, UnitAmpMin: 0.02}
	if _, err := s.Evaluate(ctx, coarser); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Compiles != 2 {
		t.Fatalf("distinct grid reused stale artifact (compiles %d, want 2)", st.Compiles)
	}
}

func TestCacheEviction(t *testing.T) {
	s := New(Options{CacheEntries: 2})
	ctx := context.Background()
	for _, name := range []string{"CL 250", "CL 500", "CL alt"} {
		req := twoB1ILsAlt()
		req.Load = spec.Load{Paper: name, HorizonMin: 50}
		if _, err := s.Evaluate(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Entries != 2 {
		t.Fatalf("cache entries %d, want bound 2", st.Entries)
	}
}

// evictionCell builds the i-th distinct cell of the eviction tests: inline
// loads whose durations differ by construction, so each i resolves to its
// own cache key (paper loads snap horizons to whole periods and would
// collide).
func evictionCell(i int) spec.Run {
	req := twoB1ILsAlt()
	req.Load = spec.Load{
		Name:     fmt.Sprintf("evict-%d", i),
		Segments: []spec.Segment{{DurationMin: 20 + float64(i), CurrentA: 0.25}},
	}
	return req
}

// TestCacheEvictionConcurrent hammers the FIFO eviction path from many
// goroutines over far more distinct cells than the cache bound and asserts
// the invariants the lock is supposed to protect: the entry count never
// exceeds the bound, the insertion-order book matches the map exactly, and
// every evaluation still returns a correct result (eviction must force
// recompiles, never corrupt artifacts).
func TestCacheEvictionConcurrent(t *testing.T) {
	const (
		bound   = 3
		cells   = 12
		clients = 24
		rounds  = 3
	)
	s := New(Options{MaxConcurrent: 8, CacheEntries: bound})
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Distinct inline durations are distinct resolved loads,
				// hence distinct cache keys; striding by the client index
				// makes the goroutines fight over insertion and eviction
				// order.
				req := evictionCell((c + r) % cells)
				res, err := s.Evaluate(ctx, req)
				if err != nil {
					errs <- err
					return
				}
				if res.Error != "" || res.LifetimeMin <= 0 {
					errs <- fmt.Errorf("cell %d/%d: %+v", c, r, res)
					return
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	checkBook := func() {
		t.Helper()
		s.mu.Lock()
		defer s.mu.Unlock()
		if len(s.cache) > bound {
			t.Fatalf("cache holds %d entries, bound %d", len(s.cache), bound)
		}
		if len(s.cache) != len(s.order) {
			t.Fatalf("order book has %d keys, cache %d", len(s.order), len(s.cache))
		}
		seen := map[string]bool{}
		for _, key := range s.order {
			if seen[key] {
				t.Fatalf("key %s appears twice in the order book", key)
			}
			seen[key] = true
			if _, ok := s.cache[key]; !ok {
				t.Fatalf("order book lists evicted key %s", key)
			}
		}
	}
	checkBook()

	// Deterministic tail: two serial passes over all 12 cells in order. With
	// a 3-entry FIFO, visiting cell i always finds {i-3, i-2, i-1} cached, so
	// at most the bound's worth of leftovers from the concurrent phase can
	// hit — every other visit must recompile an evicted cell. That pins the
	// eviction-and-recompile path without depending on goroutine timing.
	before := s.compiles.Load()
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < cells; i++ {
			if _, err := s.Evaluate(ctx, evictionCell(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if delta := s.compiles.Load() - before; delta < 2*cells-bound {
		t.Fatalf("serial eviction passes recompiled %d cells, want >= %d", delta, 2*cells-bound)
	}
	checkBook()
}

func TestSweepStreamOrder(t *testing.T) {
	sc := spec.Scenario{
		Banks:   []spec.Bank{{Battery: &spec.Battery{Preset: "B1"}, Count: 2}},
		Loads:   []spec.Load{{Paper: "CL alt"}, {Paper: "ILs alt"}, {Paper: "CL 250"}},
		Solvers: []spec.Solver{{Name: "sequential"}, {Name: "bestof"}},
	}
	s := New(Options{})
	var got []string
	err := s.SweepStream(context.Background(), SweepRequest{Scenario: sc, Workers: 4}, func(r Result) error {
		got = append(got, r.Load+"/"+r.Solver)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"CL alt/sequential", "CL alt/best-of-two",
		"ILs alt/sequential", "ILs alt/best-of-two",
		"CL 250/sequential", "CL 250/best-of-two",
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stream order[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestSweepStreamEmitError(t *testing.T) {
	s := New(Options{})
	wantErr := context.Canceled
	calls := 0
	err := s.SweepStream(context.Background(),
		SweepRequest{Scenario: twoB1ILsAlt().Scenario()},
		func(Result) error { calls++; return wantErr })
	if err != wantErr {
		t.Fatalf("got %v, want the emit error", err)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after failing, want 1", calls)
	}
}

func TestCancelledContext(t *testing.T) {
	s := New(Options{MaxConcurrent: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Evaluate(ctx, twoB1ILsAlt()); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestEmitErrorCancelsRemainingCells: a consumer that stops reading (a
// disconnected NDJSON client) must abort the sweep's pending cells rather
// than keep computing the whole grid.
func TestEmitErrorCancelsRemainingCells(t *testing.T) {
	registerCountingSolver()
	sc := spec.Scenario{
		Banks: []spec.Bank{{Battery: &spec.Battery{Preset: "B1"}, Count: 2}},
		Loads: []spec.Load{
			{Paper: "CL 250"}, {Paper: "CL 500"}, {Paper: "CL alt"},
			{Paper: "ILs 250"}, {Paper: "ILs 500"}, {Paper: "ILs alt"},
		},
		Solvers: []spec.Solver{{Name: "test-counting"}},
	}
	s := New(Options{})
	emits := 0
	wantErr := context.Canceled
	// Workers: 1 makes the sequence strict: cell 0 runs, its emit fails,
	// and every later cell must be skipped as canceled — not executed.
	err := s.SweepStream(context.Background(), SweepRequest{Scenario: sc, Workers: 1},
		func(Result) error { emits++; return wantErr })
	if err != wantErr {
		t.Fatalf("got %v, want the emit error", err)
	}
	if emits != 1 {
		t.Fatalf("emit called %d times after failing, want 1", emits)
	}
	if got := testExecutions.Load(); got != 1 {
		t.Fatalf("%d cells executed after the consumer vanished, want 1", got)
	}
}

// sweepLines collects a line-path sweep: the raw NDJSON lines (copied) and
// the per-line cached flags.
func sweepLines(t *testing.T, s *Service, sc spec.Scenario) (lines []string, cached []bool) {
	t.Helper()
	err := s.SweepStreamLines(context.Background(), SweepRequest{Scenario: sc, Workers: 2},
		func(sl SweepLine) error {
			lines = append(lines, string(sl.Line))
			cached = append(cached, sl.Cached)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return lines, cached
}

// TestSweepCellStoreIncremental is the issue's acceptance scenario at the
// service layer: a sweep overlapping an earlier one evaluates only the
// novel cells, and its bytes are identical to a cold run of the same
// request.
func TestSweepCellStoreIncremental(t *testing.T) {
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(Options{Store: st})

	base := spec.Scenario{
		Banks:   []spec.Bank{{Battery: &spec.Battery{Preset: "B1"}, Count: 2}},
		Loads:   []spec.Load{{Paper: "CL alt"}, {Paper: "ILs alt"}},
		Solvers: []spec.Solver{{Name: "sequential"}, {Name: "bestof"}},
	}
	overlap := base
	overlap.Loads = append([]spec.Load{}, base.Loads...)
	overlap.Loads = append(overlap.Loads, spec.Load{Paper: "ILl 500"})

	_, cachedA := sweepLines(t, s, base)
	for i, c := range cachedA {
		if c {
			t.Fatalf("cold sweep cell %d reported cached", i)
		}
	}
	if got := s.Stats().CellsEvaluated; got != 4 {
		t.Fatalf("cold sweep evaluated %d cells, want 4", got)
	}

	linesB, cachedB := sweepLines(t, s, overlap)
	if len(linesB) != 6 {
		t.Fatalf("overlap sweep emitted %d lines, want 6", len(linesB))
	}
	nCached := 0
	for _, c := range cachedB {
		if c {
			nCached++
		}
	}
	if nCached != 4 {
		t.Fatalf("overlap sweep served %d cells from the store, want the 4 shared ones (flags %v)", nCached, cachedB)
	}
	if got := s.Stats().CellsEvaluated; got != 6 {
		t.Fatalf("after overlap sweep %d cells evaluated in total, want 6 (4 base + 2 novel)", got)
	}

	// Byte-identity: a cold run of the overlap request on a storeless
	// service must produce exactly the same lines.
	coldLines, _ := sweepLines(t, New(Options{}), overlap)
	if len(coldLines) != len(linesB) {
		t.Fatalf("cold run emitted %d lines, want %d", len(coldLines), len(linesB))
	}
	for i := range coldLines {
		if coldLines[i] != linesB[i] {
			t.Fatalf("line %d differs between cached and cold runs:\ncached: %s\ncold:   %s", i, linesB[i], coldLines[i])
		}
	}
}

// TestSweepStreamDecodesStoredCells: the struct-emitting path must yield
// full results for cache-served cells too (the /v1/run 422 discrimination
// and library consumers depend on the decoded fields).
func TestSweepStreamDecodesStoredCells(t *testing.T) {
	st, _ := store.Open("")
	defer st.Close()
	s := New(Options{Store: st})
	req := twoB1ILsAlt()
	first, err := s.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatalf("store-served result drifted: %+v vs %+v", again, first)
	}
	if again.LifetimeMin < 16.27 || again.LifetimeMin > 16.29 {
		t.Fatalf("lifetime %v, want ~16.28", again.LifetimeMin)
	}
	if got := s.Stats().CellsEvaluated; got != 1 {
		t.Fatalf("evaluated %d cells for two identical runs, want 1", got)
	}
}

// testSlowExecutions counts runs of the test-only "test-slow-counting"
// solver, whose per-cell sleep keeps sweeps in flight long enough for
// concurrent submissions to overlap.
var (
	testSlowExecutions   atomic.Int64
	registerTestSlowOnce sync.Once
)

func registerSlowCountingSolver() {
	registerTestSlowOnce.Do(func() {
		spec.Register(spec.Builder{
			Name: "test-slow-counting",
			Doc:  "test-only solver counting executions with a per-cell delay",
			Build: func(json.RawMessage) (sweep.PolicyCase, error) {
				return sweep.PolicyCase{
					Name: "test-slow-counting",
					Run: func(c *core.Compiled) (float64, int, error) {
						testSlowExecutions.Add(1)
						time.Sleep(10 * time.Millisecond)
						lt, err := c.PolicyLifetime(sched.BestAvailable())
						return lt, 0, err
					},
				}, nil
			},
		})
	})
	testSlowExecutions.Store(0)
}

// TestConcurrentSweepsEvaluateSharedCellsOnce extends the compiled cache's
// sync.Once-per-entry rule to evaluation: simultaneous sweeps sharing cells
// must compile and evaluate each shared cell at most once — the in-flight
// table parks the loser on the winner's flight instead of re-running the
// cell. The slow solver keeps both sweeps in flight together; the assertion
// holds for any interleaving (a sweep that arrives late reuses the store
// instead of the flight).
func TestConcurrentSweepsEvaluateSharedCellsOnce(t *testing.T) {
	registerSlowCountingSolver()
	st, _ := store.Open("")
	defer st.Close()
	s := New(Options{Store: st, MaxConcurrent: 4})
	sc := spec.Scenario{
		Banks:   []spec.Bank{{Battery: &spec.Battery{Preset: "B1"}, Count: 2}},
		Loads:   []spec.Load{{Paper: "CL alt"}, {Paper: "ILs alt"}, {Paper: "CL 250"}, {Paper: "ILs 250"}},
		Solvers: []spec.Solver{{Name: "test-slow-counting"}},
	}
	const sweeps = 4
	outputs := make([][]string, sweeps)
	var wg sync.WaitGroup
	errs := make(chan error, sweeps)
	for i := 0; i < sweeps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- s.SweepStreamLines(context.Background(), SweepRequest{Scenario: sc, Workers: 2},
				func(sl SweepLine) error {
					outputs[i] = append(outputs[i], string(sl.Line))
					return nil
				})
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := testSlowExecutions.Load(); got != 4 {
		t.Fatalf("%d evaluations of 4 distinct cells across %d concurrent sweeps, want 4", got, sweeps)
	}
	if got := s.Stats().CellsEvaluated; got != 4 {
		t.Fatalf("service counted %d evaluated cells, want 4", got)
	}
	for i := 1; i < sweeps; i++ {
		if len(outputs[i]) != len(outputs[0]) {
			t.Fatalf("sweep %d emitted %d lines, sweep 0 emitted %d", i, len(outputs[i]), len(outputs[0]))
		}
		for j := range outputs[i] {
			if outputs[i][j] != outputs[0][j] {
				t.Fatalf("sweep %d line %d differs:\n%s\nvs\n%s", i, j, outputs[i][j], outputs[0][j])
			}
		}
	}
}

// TestAbandonedFlightDoesNotStrandWaiters: a sweep that claims a cell and
// is then canceled must hand the cell over — a concurrent sweep parked on
// the flight re-claims and evaluates it rather than hanging or inheriting
// a canceled line.
func TestAbandonedFlightDoesNotStrandWaiters(t *testing.T) {
	registerSlowCountingSolver()
	st, _ := store.Open("")
	defer st.Close()
	s := New(Options{Store: st, MaxConcurrent: 4})
	sc := spec.Scenario{
		Banks:   []spec.Bank{{Battery: &spec.Battery{Preset: "B1"}, Count: 2}},
		Loads:   []spec.Load{{Paper: "CL alt"}, {Paper: "ILs alt"}},
		Solvers: []spec.Solver{{Name: "test-slow-counting"}},
	}
	// The first sweep dies on its first emit; its unfinished claims are
	// abandoned.
	wantErr := fmt.Errorf("consumer gone")
	err := s.SweepStreamLines(context.Background(), SweepRequest{Scenario: sc, Workers: 1},
		func(SweepLine) error { return wantErr })
	if err != wantErr {
		t.Fatalf("got %v, want the emit error", err)
	}
	// The second sweep must complete every cell with real results.
	lines, _ := sweepLines(t, s, sc)
	if len(lines) != 2 {
		t.Fatalf("emitted %d lines, want 2", len(lines))
	}
	for i, l := range lines {
		if strings.Contains(l, "error") {
			t.Fatalf("line %d carries an error after an abandoned flight: %s", i, l)
		}
	}
}
