// Package faults is a deterministic fault-injection harness. An Injector
// holds a seeded RNG and a set of rules keyed by operation name; hardened
// layers call Check (or CheckWrite for byte-granular operations) at their
// fault points and the injector decides — reproducibly for a given seed —
// whether that operation fails, panics, stalls, or tears.
//
// Rules trigger two ways: point-based (After: fire on exactly the Nth
// matching operation, which pins a fault to a precise step for regression
// tests) and rate-based (P: fire with probability p per operation, which
// drives the randomized chaos suites). A nil *Injector is valid and inert:
// every hook site can call it unconditionally, so the fault-free hot path
// pays one nil check and nothing else.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the default error returned by firing rules that do not
// carry their own. Layers that retry transient failures treat it like any
// other I/O error; tests assert on it with errors.Is.
var ErrInjected = errors.New("faults: injected fault")

// PanicValue is the value thrown by panic-injecting rules, recognizable in
// recovered stacks and job statuses.
const PanicValue = "faults: injected panic"

// Rule describes one fault source. Op selects the operations it applies to
// (exact match against the name passed to Check). Exactly one trigger is
// consulted: After (1-based ordinal of the matching operation) when set,
// else probability P. Count caps how many times the rule fires in total
// (0 = unlimited). The effect is, in order of precedence: Panic, torn write
// (Torn, only meaningful via CheckWrite), error (Err, defaulting to
// ErrInjected). Latency alone — no error, no panic — delays the operation
// and lets it proceed.
type Rule struct {
	Op      string        // operation name, e.g. "store.write", "jobs.run"
	P       float64       // rate trigger: fire with this probability
	After   int64         // point trigger: fire on the Nth matching op (1-based)
	Count   int64         // max fires (0 = unlimited)
	Err     error         // injected error (nil = ErrInjected)
	Panic   bool          // panic instead of returning an error
	Torn    bool          // writes only: deliver a random prefix, then fail
	Latency time.Duration // delay before the effect (or alone: delay and proceed)
}

type ruleState struct {
	Rule
	seen  int64 // matching operations observed
	fired int64 // times this rule fired
}

// Injector evaluates rules against named operations. Safe for concurrent
// use; a nil Injector is inert (all methods no-op).
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*ruleState
	fired map[string]int64
	ops   map[string]int64
}

// New builds an injector with a deterministic RNG. The same seed, rules,
// and operation sequence reproduce the same fault schedule exactly.
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		fired: make(map[string]int64),
		ops:   make(map[string]int64),
	}
	in.Add(rules...)
	return in
}

// Add appends rules; useful for arming an injector after a warm-up phase.
// No-op on a nil injector.
func (in *Injector) Add(rules ...Rule) {
	if in == nil {
		return
	}
	in.mu.Lock()
	for _, r := range rules {
		rc := r
		in.rules = append(in.rules, &ruleState{Rule: rc})
	}
	in.mu.Unlock()
}

// Check evaluates op against the rules: the first rule that fires decides
// the outcome (panic, or an error wrapping ErrInjected / the rule's Err).
// Latency-only rules sleep and keep scanning. Returns nil — at no cost
// beyond the receiver check — when the injector is nil or nothing fires.
func (in *Injector) Check(op string) error {
	_, err := in.check(op, 0)
	return err
}

// CheckWrite is Check for byte-granular writes of n bytes. When a torn
// rule fires it returns the number of bytes the caller should write before
// failing with the returned error — a random cut point in [1, n) — so a
// wrapper can deliver a genuine partial write. Non-torn rules return
// allow 0 with their error.
func (in *Injector) CheckWrite(op string, n int) (allow int, err error) {
	return in.check(op, n)
}

func (in *Injector) check(op string, n int) (int, error) {
	if in == nil {
		return 0, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops[op]++
	var delay time.Duration
	for _, r := range in.rules {
		if r.Op != op {
			continue
		}
		r.seen++
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		fire := false
		if r.After > 0 {
			fire = r.seen == r.After
		} else if r.P > 0 {
			fire = in.rng.Float64() < r.P
		}
		if !fire {
			continue
		}
		r.fired++
		in.fired[op]++
		delay += r.Latency
		if !r.Panic && r.Err == nil && !r.Torn && r.Latency > 0 {
			continue // latency-only: delay, operation proceeds
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		if r.Panic {
			panic(fmt.Sprintf("%s (op %s)", PanicValue, op))
		}
		allow := 0
		if r.Torn && n > 1 {
			allow = 1 + in.rng.Intn(n-1)
		}
		base := r.Err
		if base == nil {
			base = ErrInjected
		}
		return allow, fmt.Errorf("%w (op %s)", base, op)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return 0, nil
}

// Fired reports how many faults have fired for op (any op when op is "").
func (in *Injector) Fired(op string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if op == "" {
		var total int64
		for _, n := range in.fired {
			total += n
		}
		return total
	}
	return in.fired[op]
}

// Ops reports how many operations have been observed for op (any op when
// op is ""), fired or not — useful for asserting a hook site is wired.
func (in *Injector) Ops(op string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if op == "" {
		var total int64
		for _, n := range in.ops {
			total += n
		}
		return total
	}
	return in.ops[op]
}
