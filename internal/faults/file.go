// Store-backend wrapper: intercepts the write-side operations of a store
// file and consults the injector before delegating. Reads, stats, and
// truncates pass through untouched — replay and torn-tail repair are the
// recovery machinery under test, not the thing being broken.
package faults

import (
	"batsched/internal/store"
)

// Operation names the store wrapper consults. Rules target these.
const (
	OpStoreWrite = "store.write"
	OpStoreSync  = "store.sync"
)

// WrapStore returns a store.Options.WrapFile hook that injects faults on
// writes (including torn partial writes) and syncs. A nil injector yields
// a pass-through hook.
func WrapStore(in *Injector) func(store.File) store.File {
	return func(f store.File) store.File {
		return &storeFile{f: f, in: in}
	}
}

type storeFile struct {
	f  store.File
	in *Injector
}

func (s *storeFile) Read(p []byte) (int, error) { return s.f.Read(p) }

func (s *storeFile) Write(p []byte) (int, error) {
	allow, err := s.in.CheckWrite(OpStoreWrite, len(p))
	if err != nil {
		n := 0
		if allow > 0 {
			// Torn write: genuinely deliver the prefix so the file ends
			// mid-record, exactly like a crash between write syscalls.
			n, _ = s.f.Write(p[:allow])
		}
		return n, err
	}
	return s.f.Write(p)
}

func (s *storeFile) Sync() error {
	if err := s.in.Check(OpStoreSync); err != nil {
		return err
	}
	return s.f.Sync()
}

func (s *storeFile) Truncate(size int64) error { return s.f.Truncate(size) }

func (s *storeFile) Size() (int64, error) { return s.f.Size() }

func (s *storeFile) Close() error { return s.f.Close() }
