package faults

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Check("anything"); err != nil {
		t.Fatalf("nil Check = %v", err)
	}
	if n, err := in.CheckWrite("anything", 100); n != 0 || err != nil {
		t.Fatalf("nil CheckWrite = %d, %v", n, err)
	}
	in.Add(Rule{Op: "x", P: 1})
	if in.Fired("") != 0 || in.Ops("") != 0 {
		t.Fatal("nil counters non-zero")
	}
}

func TestPointTriggerFiresExactlyOnce(t *testing.T) {
	in := New(1, Rule{Op: "op", After: 3})
	for i := 1; i <= 5; i++ {
		err := in.Check("op")
		if (i == 3) != (err != nil) {
			t.Fatalf("op %d: err = %v", i, err)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d: err = %v, want ErrInjected", i, err)
		}
	}
	if in.Fired("op") != 1 {
		t.Fatalf("Fired = %d, want 1", in.Fired("op"))
	}
}

func TestRateTriggerIsDeterministicPerSeed(t *testing.T) {
	schedule := func(seed int64) string {
		in := New(seed, Rule{Op: "op", P: 0.5})
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if in.Check("op") != nil {
				b.WriteByte('F')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a, b := schedule(42), schedule(42)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if a == schedule(43) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
	if !strings.Contains(a, "F") || !strings.Contains(a, ".") {
		t.Fatalf("p=0.5 schedule degenerate: %s", a)
	}
}

func TestCountCapsFires(t *testing.T) {
	in := New(7, Rule{Op: "op", P: 1, Count: 2})
	fails := 0
	for i := 0; i < 10; i++ {
		if in.Check("op") != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("fired %d times, want 2", fails)
	}
}

func TestCustomError(t *testing.T) {
	sentinel := errors.New("disk on fire")
	in := New(1, Rule{Op: "op", P: 1, Err: sentinel})
	if err := in.Check("op"); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestPanicRule(t *testing.T) {
	in := New(1, Rule{Op: "op", After: 1, Panic: true})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(r.(string), PanicValue) {
			t.Fatalf("panic value %v lacks marker", r)
		}
		// The injector must remain usable after a recovered panic (the
		// mutex was released by the deferred unlock).
		if err := in.Check("op"); err != nil {
			t.Fatalf("post-panic Check = %v", err)
		}
	}()
	in.Check("op")
}

func TestTornWriteAllowRange(t *testing.T) {
	in := New(3, Rule{Op: "w", P: 1, Torn: true})
	for i := 0; i < 50; i++ {
		allow, err := in.CheckWrite("w", 100)
		if err == nil {
			t.Fatal("torn rule did not fire")
		}
		if allow < 1 || allow >= 100 {
			t.Fatalf("allow = %d, want in [1, 100)", allow)
		}
	}
	// A 1-byte write cannot tear: it fails with nothing allowed.
	if allow, err := in.CheckWrite("w", 1); err == nil || allow != 0 {
		t.Fatalf("1-byte torn write: allow=%d err=%v", allow, err)
	}
}

func TestLatencyOnlyRuleDelaysAndProceeds(t *testing.T) {
	in := New(1, Rule{Op: "op", P: 1, Latency: 5 * time.Millisecond})
	start := time.Now()
	if err := in.Check("op"); err != nil {
		t.Fatalf("latency-only rule returned error: %v", err)
	}
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Fatalf("no observable delay: %v", d)
	}
}

func TestOpsCountsAllObservations(t *testing.T) {
	in := New(1, Rule{Op: "a", P: 1, Count: 1})
	in.Check("a")
	in.Check("a")
	in.Check("b")
	if in.Ops("a") != 2 || in.Ops("b") != 1 || in.Ops("") != 3 {
		t.Fatalf("ops: a=%d b=%d all=%d", in.Ops("a"), in.Ops("b"), in.Ops(""))
	}
	if in.Fired("") != 1 {
		t.Fatalf("fired total = %d, want 1", in.Fired(""))
	}
}
